# Sanitizer matrix for all semitri targets (library, tests, benches,
# examples). Instrumentation must be uniform across a binary, so the
# flags are applied directory-wide from the top-level CMakeLists via
# add_compile_options/add_link_options before any target is declared.
#
# Usage:
#   cmake -B build-asan -S . -DSEMITRI_SANITIZE="address;undefined"
#   cmake -B build-tsan -S . -DSEMITRI_SANITIZE=thread
#   cmake -B build-lsan -S . -DSEMITRI_SANITIZE=leak
#
# Supported values: address, undefined, leak, thread. address/undefined/
# leak compose; thread composes with nothing else (the runtimes are
# mutually exclusive).

set(SEMITRI_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizers: address;undefined | thread | leak")

function(semitri_enable_sanitizers)
  if(NOT SEMITRI_SANITIZE)
    return()
  endif()

  set(flags "")
  set(has_thread FALSE)
  set(has_address_or_leak FALSE)
  foreach(sanitizer IN LISTS SEMITRI_SANITIZE)
    if(sanitizer STREQUAL "address")
      list(APPEND flags -fsanitize=address)
      set(has_address_or_leak TRUE)
    elseif(sanitizer STREQUAL "undefined")
      # Recover disabled so any UB report fails the test run instead of
      # printing and continuing.
      list(APPEND flags -fsanitize=undefined -fno-sanitize-recover=all)
    elseif(sanitizer STREQUAL "leak")
      list(APPEND flags -fsanitize=leak)
      set(has_address_or_leak TRUE)
    elseif(sanitizer STREQUAL "thread")
      list(APPEND flags -fsanitize=thread)
      set(has_thread TRUE)
    else()
      message(FATAL_ERROR
        "Unknown SEMITRI_SANITIZE value '${sanitizer}' "
        "(expected address, undefined, leak, or thread)")
    endif()
  endforeach()

  if(has_thread AND has_address_or_leak)
    message(FATAL_ERROR
      "SEMITRI_SANITIZE=thread cannot be combined with address/leak: "
      "the runtimes are mutually exclusive")
  endif()

  # Keep stacks readable in reports and inlined frames attributable.
  list(APPEND flags -fno-omit-frame-pointer -g)

  add_compile_options(${flags})
  add_link_options(${flags})
  message(STATUS "semitri: sanitizers enabled: ${SEMITRI_SANITIZE}")
endfunction()

semitri_enable_sanitizers()
