// semitri_cli — command-line front end over the library, working
// entirely through the CSV schemas of io/world_io.h and the Semantic
// Trajectory Store:
//
//   semitri_cli export-world <dir> [seed]
//       Generate a synthetic city and write regions.csv / roads.csv /
//       pois.csv / poi_categories.csv — templates for your own data.
//
//   semitri_cli simulate <world_dir> <out_gps.csv> [users] [days] [seed]
//       Simulate smartphone users on a previously exported world and
//       write their raw GPS stream (object_id,x,y,t).
//
//   semitri_cli annotate <world_dir> <gps.csv> <out_dir>
//       Load the semantic sources and a GPS stream, run the full
//       SeMiTri pipeline, and persist the semantic trajectory store
//       (gps/episodes/semantic_episodes CSV tables) to <out_dir>.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>

#include "common/strings.h"
#include "core/pipeline.h"
#include "datagen/presets.h"
#include "io/world_io.h"

using namespace semitri;

namespace {

int ExportWorld(const std::string& dir, uint64_t seed) {
  std::filesystem::create_directories(dir);
  datagen::WorldConfig config;
  config.seed = seed;
  datagen::World world = datagen::WorldGenerator(config).Generate();
  common::Status status =
      io::SaveRegions(world.regions, dir + "/regions.csv");
  if (status.ok()) {
    status = io::SaveRoadNetwork(world.roads, dir + "/roads.csv");
  }
  if (status.ok()) {
    status = io::SavePois(world.pois, dir + "/pois.csv",
                          dir + "/poi_categories.csv");
  }
  if (!status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("world exported to %s: %zu regions, %zu road segments, %zu "
              "POIs\n",
              dir.c_str(), world.regions.size(), world.roads.num_segments(),
              world.pois.size());
  return 0;
}

struct LoadedWorld {
  region::RegionSet regions;
  road::RoadNetwork roads;
  poi::PoiSet pois;
};

common::Result<LoadedWorld> LoadWorld(const std::string& dir) {
  auto regions = io::LoadRegions(dir + "/regions.csv");
  if (!regions.ok()) return regions.status();
  auto roads = io::LoadRoadNetwork(dir + "/roads.csv");
  if (!roads.ok()) return roads.status();
  auto pois =
      io::LoadPois(dir + "/pois.csv", dir + "/poi_categories.csv");
  if (!pois.ok()) return pois.status();
  return LoadedWorld{std::move(*regions), std::move(*roads),
                     std::move(*pois)};
}

int Simulate(const std::string& world_dir, const std::string& out_path,
             int users, int days, uint64_t seed) {
  // The simulator needs the full World structure; rebuild the synthetic
  // datagen world around the loaded sources.
  auto loaded = LoadWorld(world_dir);
  if (!loaded.ok()) {
    std::fprintf(stderr, "world load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  datagen::World world;
  world.regions = std::move(loaded->regions);
  world.roads = std::move(loaded->roads);
  world.pois = std::move(loaded->pois);
  world.extent = world.regions.Bounds();
  world.config.extent_meters = world.extent.Width();

  datagen::DatasetFactory factory(&world, seed);
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << "object_id,x,y,t\n";
  size_t total = 0;
  for (int u = 0; u < users; ++u) {
    datagen::PersonSpec spec = factory.MakePersonSpec(u);
    datagen::SimulatedTrack track =
        factory.SimulatePersonDays(u, spec, days);
    for (const core::GpsPoint& p : track.points) {
      out << common::StrFormat("%d,%.6f,%.6f,%.3f\n", u, p.position.x,
                               p.position.y, p.time);
    }
    total += track.points.size();
  }
  std::printf("wrote %zu GPS records for %d users x %d days to %s\n",
              total, users, days, out_path.c_str());
  return 0;
}

int Annotate(const std::string& world_dir, const std::string& gps_path,
             const std::string& out_dir) {
  auto loaded = LoadWorld(world_dir);
  if (!loaded.ok()) {
    std::fprintf(stderr, "world load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  // Read the raw stream grouped by object.
  std::ifstream in(gps_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", gps_path.c_str());
    return 1;
  }
  std::map<core::ObjectId, std::vector<core::GpsPoint>> streams;
  std::string line;
  std::getline(in, line);  // header
  size_t rows = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> f = common::Split(line, ',');
    int64_t object_id = 0;
    core::GpsPoint p;
    if (f.size() != 4 || !common::ParseInt64(f[0], &object_id) ||
        !common::ParseDouble(f[1], &p.position.x) ||
        !common::ParseDouble(f[2], &p.position.y) ||
        !common::ParseDouble(f[3], &p.time)) {
      std::fprintf(stderr, "bad gps row: %s\n", line.c_str());
      return 1;
    }
    streams[object_id].push_back(p);
    ++rows;
  }
  std::printf("loaded %zu records of %zu objects\n", rows, streams.size());

  store::SemanticTrajectoryStore store;
  analytics::LatencyProfiler profiler;
  core::SemiTriPipeline pipeline(&loaded->regions, &loaded->roads,
                                 &loaded->pois, core::PipelineConfig{},
                                 &store, &profiler);
  core::TrajectoryId next_id = 0;
  size_t trajectories = 0, stops = 0, moves = 0;
  for (auto& [object_id, stream] : streams) {
    auto results = pipeline.ProcessStream(object_id, stream, next_id);
    if (!results.ok()) {
      std::fprintf(stderr, "pipeline failed for object %lld: %s\n",
                   static_cast<long long>(object_id),
                   results.status().ToString().c_str());
      return 1;
    }
    next_id += static_cast<core::TrajectoryId>(results->size());
    trajectories += results->size();
    for (const core::PipelineResult& r : *results) {
      stops += r.NumStops();
      moves += r.NumMoves();
    }
  }
  common::Status status = store.SaveCsv(out_dir);
  if (!status.ok()) {
    std::fprintf(stderr, "store save failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("annotated %zu trajectories (%zu stops, %zu moves); %zu "
              "semantic episodes\n",
              trajectories, stops, moves, store.num_semantic_episodes());
  std::printf("tables written to %s\n", out_dir.c_str());
  std::printf("mean per-trajectory latency: compute %.4fs, map-match "
              "%.4fs, landuse %.4fs, point %.4fs\n",
              profiler.Mean(core::kStageComputeEpisode),
              profiler.Mean(core::kStageMapMatch),
              profiler.Mean(core::kStageLanduseJoin),
              profiler.Mean(core::kStagePointAnnotation));
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  semitri_cli export-world <dir> [seed]\n"
               "  semitri_cli simulate <world_dir> <out_gps.csv> [users] "
               "[days] [seed]\n"
               "  semitri_cli annotate <world_dir> <gps.csv> <out_dir>\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  std::string command = argv[1];
  if (command == "export-world" && argc >= 3) {
    int64_t seed = 42;
    if (argc >= 4 && !common::ParseInt64(argv[3], &seed)) {
      std::fprintf(stderr, "bad seed: %s\n", argv[3]);
      return 2;
    }
    return ExportWorld(argv[2], static_cast<uint64_t>(seed));
  }
  if (command == "simulate" && argc >= 4) {
    int64_t users = 3, days = 7, seed = 11;
    if ((argc >= 5 && !common::ParseInt64(argv[4], &users)) ||
        (argc >= 6 && !common::ParseInt64(argv[5], &days)) ||
        (argc >= 7 && !common::ParseInt64(argv[6], &seed))) {
      std::fprintf(stderr, "bad numeric argument\n");
      return 2;
    }
    return Simulate(argv[2], argv[3], static_cast<int>(users),
                    static_cast<int>(days), static_cast<uint64_t>(seed));
  }
  if (command == "annotate" && argc >= 5) {
    return Annotate(argv[2], argv[3], argv[4]);
  }
  Usage();
  return 2;
}
