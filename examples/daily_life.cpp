// Daily-life scenario (paper §1.1 + Figs. 15/16): a week of a metro
// commuter's smartphone traces turned into semantic timelines —
//
//   (home, -08:55, -) -> (road, 08:55-09:20, metro+walk)
//   -> (EPFL campus, 09:20-17:40, work) -> ...
//
// and KML export of the annotated week (the paper's web-interface
// product).
//
//   $ ./daily_life [output.kml]

#include <cstdio>

#include "analytics/sequence_mining.h"
#include "analytics/timeline.h"
#include "core/pipeline.h"
#include "datagen/presets.h"
#include "export/html_report.h"
#include "export/kml_writer.h"

using namespace semitri;

int main(int argc, char** argv) {
  datagen::WorldConfig world_config;
  world_config.seed = 2026;
  world_config.extent_meters = 6000.0;
  datagen::World world = datagen::WorldGenerator(world_config).Generate();

  datagen::DatasetFactory factory(&world, /*seed=*/7);
  // The Fig. 15 persona: commercial-center home, metro commuter.
  datagen::PersonSpec spec = factory.MakePersonSpec(3);
  datagen::SimulatedTrack week = factory.SimulatePersonDays(4, spec, 7);
  std::printf("simulated one week: %zu GPS fixes, %zu true activities\n\n",
              week.points.size(), week.stops.size());

  store::SemanticTrajectoryStore store;
  core::PipelineConfig config;
  core::SemiTriPipeline pipeline(&world.regions, &world.roads, &world.pois,
                                 config, &store);
  auto results = pipeline.ProcessStream(4, week.points);
  if (!results.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }

  // Discover the user's personal places (home/work) from the week's
  // stop history — the source of the §1.1 `home`/`office` labels.
  std::vector<analytics::StopVisit> visits;
  for (const core::PipelineResult& result : *results) {
    auto day_visits = analytics::CollectStopVisits(result.episodes);
    visits.insert(visits.end(), day_visits.begin(), day_visits.end());
  }
  analytics::PersonalPlaceDetector detector;
  std::vector<analytics::PersonalPlace> places = detector.Detect(visits);
  std::printf("discovered %zu personal places:\n", places.size());
  for (const auto& place : places) {
    std::printf("  %-10s %2zu visits, %5.1f h total dwell\n",
                place.label.c_str(), place.num_visits,
                place.total_dwell_seconds / 3600.0);
  }
  std::printf("\n");

  for (size_t day = 0; day < results->size(); ++day) {
    const core::PipelineResult& result = (*results)[day];
    std::printf("=== day %zu: %zu points, %zu stops, %zu moves\n", day + 1,
                result.cleaned.size(), result.NumStops(),
                result.NumMoves());
    auto timeline = analytics::BuildTimeline(result, &world.regions,
                                             &world.pois, &places);
    for (const auto& entry : timeline) {
      std::printf("  (%s, %s-%s, %s)\n", entry.place.c_str(),
                  analytics::FormatClock(entry.time_in).c_str(),
                  analytics::FormatClock(entry.time_out).c_str(),
                  entry.annotation.empty() ? "-" : entry.annotation.c_str());
    }
  }

  // Mine the week for routine patterns (the analytics layer's
  // "trajectory patterns").
  std::vector<std::vector<std::string>> day_sequences;
  std::vector<std::vector<analytics::TimelineEntry>> timelines;
  for (const core::PipelineResult& result : *results) {
    auto timeline = analytics::BuildTimeline(result, &world.regions,
                                             &world.pois, &places);
    std::vector<std::string> labels;
    for (const auto& entry : timeline) {
      if (entry.kind == core::EpisodeKind::kStop) {
        labels.push_back(entry.place);
      }
    }
    day_sequences.push_back(std::move(labels));
    timelines.push_back(std::move(timeline));
  }
  analytics::SequenceMiner miner;
  std::printf("\nfrequent stop patterns across the week:\n");
  auto patterns = miner.Mine(day_sequences);
  for (size_t i = 0; i < patterns.size() && i < 5; ++i) {
    std::printf("  [%lux] %s\n",
                static_cast<unsigned long>(patterns[i].support),
                patterns[i].ToString().c_str());
  }

  // Self-contained HTML report (the paper's web-interface product).
  export_::HtmlReportWriter report("SeMiTri — one commuter week");
  report.AddTrajectoryMap(results->front(), "day 1 trace (moves colored "
                                            "by inferred mode, stops red)");
  report.AddTimelineTable(timelines.front(), "day 1 semantic timeline");
  analytics::LabeledDistribution mode_share;
  for (const core::PipelineResult& result : *results) {
    if (!result.line_layer.has_value()) continue;
    for (const core::SemanticEpisode& ep : result.line_layer->episodes) {
      const std::string& mode = ep.FindAnnotation("transport_mode");
      if (!mode.empty()) {
        mode_share.Add(mode,
                       static_cast<uint64_t>(ep.DurationSeconds()) + 1);
      }
    }
  }
  report.AddDistributionChart(mode_share,
                              "transport-mode share of move time");
  common::Status html_status =
      report.WriteFile("/tmp/semitri_daily_life.html");
  if (html_status.ok()) {
    std::printf("\nHTML report written to /tmp/semitri_daily_life.html\n");
  }

  // Export the week to KML centered on Lausanne, like the paper's
  // Google-Earth visualizations.
  std::string kml_path = argc > 1 ? argv[1] : "/tmp/semitri_daily_life.kml";
  geo::LocalProjection projection({46.52, 6.63});
  export_::KmlWriter kml(projection);
  for (size_t day = 0; day < results->size(); ++day) {
    const core::PipelineResult& result = (*results)[day];
    kml.AddTrajectory(result.cleaned,
                      "day " + std::to_string(day + 1));
    kml.AddStops(result.cleaned, result.episodes);
  }
  common::Status status = kml.WriteFile(kml_path);
  if (!status.ok()) {
    std::fprintf(stderr, "KML export failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("\nKML written to %s\n", kml_path.c_str());
  std::printf("store now holds %zu semantic episodes across %zu "
              "interpretations x trajectories\n",
              store.num_semantic_episodes(), store.num_trajectories());
  return 0;
}
