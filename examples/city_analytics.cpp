// City-analytics scenario (paper §5.2, Fig. 11 + Eq. 8): a week of
// private-car traces from many drivers is annotated with POI categories
// by the HMM point layer; the city analyst reads activity distributions,
// classifies trajectories by dominant activity (Eq. 8), and inspects
// where each activity happens — the Semantic Trajectory Analytics Layer
// in use.
//
//   $ ./city_analytics

#include <cstdio>

#include "analytics/distribution.h"
#include "analytics/trajectory_stats.h"
#include "core/pipeline.h"
#include "datagen/presets.h"

using namespace semitri;

int main() {
  datagen::WorldConfig world_config;
  world_config.seed = 555;
  world_config.extent_meters = 6000.0;
  datagen::World world = datagen::WorldGenerator(world_config).Generate();

  datagen::DatasetFactory factory(&world, /*seed=*/556);
  datagen::Dataset cars = factory.MilanPrivateCars(/*num_cars=*/60,
                                                   /*num_days=*/7);
  std::printf("fleet: %zu cars, %zu GPS records, %zu true activities\n\n",
              cars.tracks.size(), cars.TotalRecords(), cars.TotalStops());

  core::PipelineConfig config;
  config.point.default_self_transition = 0.25;  // independent errands
  core::SemiTriPipeline pipeline(&world.regions, nullptr, &world.pois,
                                 config);
  region::RegionAnnotator annotator(&world.regions);

  analytics::LabeledDistribution activity_dist;
  analytics::LabeledDistribution trajectory_classes;
  // Where does each activity happen? activity -> landuse distribution.
  std::map<std::string, analytics::LabeledDistribution> activity_landuse;

  for (const datagen::SimulatedTrack& track : cars.tracks) {
    auto results = pipeline.ProcessStream(
        track.object_id, track.points,
        static_cast<core::TrajectoryId>(track.object_id) * 100);
    if (!results.ok()) {
      std::fprintf(stderr, "pipeline failed: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    for (const core::PipelineResult& day : *results) {
      if (!day.point_layer.has_value()) continue;
      for (const core::SemanticEpisode& ep : day.point_layer->episodes) {
        const std::string& activity = ep.FindAnnotation("poi_category");
        if (activity.empty()) continue;
        activity_dist.Add(activity);
        // Landuse at the stop location (region layer by source episode).
        if (day.region_layer.has_value() &&
            ep.source_episode != SIZE_MAX) {
          for (const core::SemanticEpisode& rep :
               day.region_layer->episodes) {
            if (rep.source_episode == ep.source_episode) {
              const std::string& landuse = rep.FindAnnotation("landuse");
              if (!landuse.empty()) {
                activity_landuse[activity].Add(landuse);
              }
              break;
            }
          }
        }
      }
      int category = analytics::TrajectoryCategory(
          *day.point_layer, world.pois.num_categories());
      if (category >= 0) {
        trajectory_classes.Add(
            world.pois.category_names()[static_cast<size_t>(category)]);
      }
    }
  }

  std::printf("activity distribution over stops (Fig. 11 middle column):\n");
  for (const auto& [activity, count] : activity_dist.counts()) {
    std::printf("  %-14s %5.1f%% (%lu stops)\n", activity.c_str(),
                activity_dist.Fraction(activity) * 100.0,
                static_cast<unsigned long>(count));
  }
  std::printf("\ntrajectory classes by dominant stop time (Eq. 8):\n");
  for (const auto& [cls, count] : trajectory_classes.counts()) {
    std::printf("  %-14s %5.1f%%\n", cls.c_str(),
                trajectory_classes.Fraction(cls) * 100.0);
  }
  std::printf("\nwhere activities happen (top landuse per activity):\n");
  for (const auto& [activity, dist] : activity_landuse) {
    auto top = dist.TopK(2);
    std::printf("  %-14s ->", activity.c_str());
    for (const auto& [code, share] : top) {
      std::printf(" %s %.0f%%", code.c_str(), share * 100.0);
    }
    std::printf("\n");
  }
  return 0;
}
