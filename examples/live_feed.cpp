// Live-feed scenario (paper §1.2: "annotation is even required in
// real-time"): a smartphone user's GPS fixes arrive one by one; a
// stream::AnnotationSession detects stop/move episodes incrementally
// and annotates each episode the moment it closes — long before the
// day's trajectory is complete. At each day boundary the trajectory is
// finalized, producing exactly what the offline batch pipeline would
// have computed.
//
//   $ ./live_feed

#include <cstdio>

#include "analytics/latency_profiler.h"
#include "core/pipeline.h"
#include "datagen/presets.h"
#include "store/semantic_trajectory_store.h"
#include "stream/annotation_session.h"

using namespace semitri;

namespace {

void PrintEpisode(const core::Episode& ep, size_t index) {
  double h_in = ep.time_in / 3600.0;
  double h_out = ep.time_out / 3600.0;
  std::printf("    episode %2zu  %-5s  %05.2fh - %05.2fh  (%4zu fixes, "
              "%.0f s dwell)\n",
              index, core::EpisodeKindName(ep.kind), h_in, h_out,
              ep.num_points(), ep.DurationSeconds());
}

}  // namespace

int main() {
  datagen::WorldConfig world_config;
  world_config.seed = 640;
  world_config.extent_meters = 5000.0;
  world_config.num_pois = 1500;
  datagen::World world = datagen::WorldGenerator(world_config).Generate();
  datagen::DatasetFactory factory(&world, /*seed=*/641);

  // Three days of one person's life, replayed as a live feed.
  datagen::PersonSpec spec = factory.MakePersonSpec(0);
  datagen::SimulatedTrack track = factory.SimulatePersonDays(0, spec, 3);
  std::printf("replaying %zu fixes (3 days) as a live stream...\n\n",
              track.points.size());

  store::SemanticTrajectoryStore store;
  analytics::LatencyProfiler profiler;
  core::SemiTriPipeline pipeline(&world.regions, &world.roads, &world.pois,
                                 core::PipelineConfig{}, &store, &profiler);

  stream::SessionConfig session_config;
  session_config.keep_results = true;
  stream::AnnotationSession session(&pipeline, track.object_id,
                                    session_config);

  size_t episode_count = 0;
  for (const core::GpsPoint& fix : track.points) {
    auto fed = session.Feed(fix);
    if (!fed.ok()) {
      std::fprintf(stderr, "feed failed: %s\n",
                   fed.status().ToString().c_str());
      return 1;
    }
    if (fed->trajectory_closed) {
      const core::PipelineResult& day = session.results().back();
      std::printf("  == trajectory %lld finalized: %zu episodes, "
                  "%zu region / %zu line / %zu point semantic episodes ==\n\n",
                  static_cast<long long>(day.cleaned.id),
                  day.episodes.size(),
                  day.region_layer ? day.region_layer->size() : 0,
                  day.line_layer ? day.line_layer->size() : 0,
                  day.point_layer ? day.point_layer->size() : 0);
      episode_count = 0;
    }
    if (fed->episodes_closed > 0) {
      // Episodes close with bounded delay behind the stream; the live
      // partial() view already carries their provisional annotations.
      const core::PipelineResult& partial = session.partial();
      size_t n = partial.episodes.size();
      for (size_t i = n - fed->episodes_closed; i < n; ++i) {
        PrintEpisode(partial.episodes[i], episode_count++);
      }
    }
  }
  if (auto status = session.Flush(); !status.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", status.ToString().c_str());
    return 1;
  }
  if (!session.results().empty()) {
    const core::PipelineResult& day = session.results().back();
    std::printf("  == trajectory %lld finalized at stream end: %zu "
                "episodes ==\n",
                static_cast<long long>(day.cleaned.id),
                day.episodes.size());
  }

  stream::AnnotationSession::Stats stats = session.stats();
  std::printf("\nsession: %zu fixes fed, %zu episodes closed live, %zu "
              "trajectories, %zu annotation passes\n",
              stats.detector.points_fed, stats.detector.episodes_closed,
              stats.detector.trajectories_closed, stats.annotation_passes);

  analytics::LatencyProfiler::StageSummary ep_latency =
      profiler.Summarize(stream::kStreamStageEpisodeAnnotation);
  analytics::LatencyProfiler::StageSummary fin_latency =
      profiler.Summarize(stream::kStreamStageFinalizeTrajectory);
  std::printf("episode close -> annotated: p50 %.3f ms, p99 %.3f ms over "
              "%zu episodes\n",
              ep_latency.p50 * 1e3, ep_latency.p99 * 1e3, ep_latency.count);
  std::printf("trajectory finalization:    p50 %.3f ms, p99 %.3f ms over "
              "%zu trajectories\n",
              fin_latency.p50 * 1e3, fin_latency.p99 * 1e3,
              fin_latency.count);
  std::printf("store: %zu trajectories, %zu semantic episodes\n",
              store.num_trajectories(), store.num_semantic_episodes());
  return 0;
}
