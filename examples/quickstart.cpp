// Quickstart: build a synthetic world, simulate a smartphone user for a
// few days, run the full SeMiTri pipeline, and print the resulting
// structured semantic trajectory — the (place, time, annotation) triple
// view of paper §1.1.
//
//   $ ./quickstart

#include <cstdio>

#include "core/pipeline.h"
#include "datagen/presets.h"
#include "datagen/world.h"

using namespace semitri;

int main() {
  // 1) A deterministic synthetic city: landuse grid, typed road network
  //    with metro lines, clustered POIs (stand-ins for Swisstopo / OSM /
  //    the Milan POI repository — see DESIGN.md).
  datagen::WorldConfig world_config;
  world_config.seed = 7;
  world_config.extent_meters = 6000.0;
  datagen::World world = datagen::WorldGenerator(world_config).Generate();
  std::printf("world: %zu road segments, %zu landuse cells, %zu POIs\n",
              world.roads.num_segments(), world.regions.size(),
              world.pois.size());

  // 2) Simulate one person for five days (commutes, lunches, errands).
  datagen::DatasetFactory factory(&world, /*seed=*/21);
  datagen::PersonSpec spec = factory.MakePersonSpec(3);  // metro commuter
  datagen::SimulatedTrack track = factory.SimulatePersonDays(0, spec, 5);
  std::printf("simulated %zu GPS fixes, %zu true stops\n",
              track.points.size(), track.stops.size());

  // 3) Run the pipeline: cleaning, daily-trajectory identification,
  //    stop/move episodes, then region + line + point annotation.
  store::SemanticTrajectoryStore store;
  analytics::LatencyProfiler profiler;
  core::PipelineConfig config;
  core::SemiTriPipeline pipeline(&world.regions, &world.roads, &world.pois,
                                 config, &store, &profiler);
  common::Result<std::vector<core::PipelineResult>> results =
      pipeline.ProcessStream(/*object_id=*/0, track.points);
  if (!results.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }
  std::printf("identified %zu daily trajectories\n\n", results->size());

  // 4) Print the first day as a semantic trajectory.
  const core::PipelineResult& day = results->front();
  std::printf("day 1: %zu points -> %zu episodes (%zu stops, %zu moves)\n",
              day.cleaned.size(), day.episodes.size(), day.NumStops(),
              day.NumMoves());
  if (day.region_layer.has_value()) {
    std::printf("\n-- region layer (landuse episodes) --\n");
    for (const core::SemanticEpisode& ep : day.region_layer->episodes) {
      std::printf("  [%5.0f..%5.0f] %-4s landuse=%s %s\n", ep.time_in,
                  ep.time_out, core::EpisodeKindName(ep.kind),
                  ep.FindAnnotation("landuse").c_str(),
                  ep.FindAnnotation("region_name").c_str());
    }
  }
  if (day.line_layer.has_value()) {
    std::printf("\n-- line layer (map-matched moves, first 12) --\n");
    size_t shown = 0;
    for (const core::SemanticEpisode& ep : day.line_layer->episodes) {
      if (shown++ >= 12) break;
      std::printf("  [%5.0f..%5.0f] road=%-18s type=%-11s mode=%s\n",
                  ep.time_in, ep.time_out,
                  ep.FindAnnotation("road_name").c_str(),
                  ep.FindAnnotation("road_type").c_str(),
                  ep.FindAnnotation("transport_mode").c_str());
    }
  }
  if (day.point_layer.has_value()) {
    std::printf("\n-- point layer (stop activities) --\n");
    for (const core::SemanticEpisode& ep : day.point_layer->episodes) {
      std::printf("  [%5.0f..%5.0f] category=%-12s poi=%s\n", ep.time_in,
                  ep.time_out, ep.FindAnnotation("poi_category").c_str(),
                  ep.FindAnnotation("poi_name").c_str());
    }
  }

  std::printf("\nstore: %zu GPS records, %zu episodes, %zu semantic "
              "episodes\n",
              store.num_gps_records(), store.num_episodes(),
              store.num_semantic_episodes());
  std::printf("stage latencies (mean s/trajectory):\n");
  for (const std::string& stage : profiler.Stages()) {
    std::printf("  %-22s %.6f\n", stage.c_str(), profiler.Mean(stage));
  }
  return 0;
}
