// Fleet-tracking scenario (paper §5.2): a taxi fleet's 1 Hz GPS feeds
// flow through the pipeline; the operator dashboard shows per-vehicle
// daily summaries, the landuse footprint of the fleet, and the storage
// compression from episode-level annotation. Results persist as CSV
// tables (the Semantic Trajectory Store).
//
//   $ ./fleet_tracking [store_dir]

#include <cstdio>

#include "analytics/trajectory_stats.h"
#include "core/pipeline.h"
#include "datagen/presets.h"

using namespace semitri;

int main(int argc, char** argv) {
  datagen::WorldConfig world_config;
  world_config.seed = 99;
  world_config.extent_meters = 6000.0;
  datagen::World world = datagen::WorldGenerator(world_config).Generate();

  datagen::DatasetFactory factory(&world, /*seed=*/3);
  datagen::Dataset fleet = factory.LausanneTaxis(/*num_taxis=*/3,
                                                 /*num_days=*/3,
                                                 /*shift_hours=*/5.0);

  store::SemanticTrajectoryStore store;
  analytics::LatencyProfiler profiler;
  core::PipelineConfig config;
  core::SemiTriPipeline pipeline(&world.regions, &world.roads, nullptr,
                                 config, &store, &profiler);
  region::RegionAnnotator annotator(&world.regions);

  analytics::LabeledDistribution fleet_landuse;
  analytics::CompressionStats compression;

  std::printf("%-8s %-6s %8s %7s %7s %10s %10s\n", "taxi", "day", "#GPS",
              "#stops", "#moves", "km driven", "top cell");
  for (const datagen::SimulatedTrack& track : fleet.tracks) {
    auto results = pipeline.ProcessStream(
        track.object_id, track.points,
        static_cast<core::TrajectoryId>(track.object_id) * 100);
    if (!results.ok()) {
      std::fprintf(stderr, "pipeline failed: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    for (size_t day = 0; day < results->size(); ++day) {
      const core::PipelineResult& result = (*results)[day];
      double km = 0.0;
      for (size_t i = 1; i < result.cleaned.size(); ++i) {
        km += result.cleaned.points[i].position.DistanceTo(
                  result.cleaned.points[i - 1].position) /
              1000.0;
      }
      analytics::LanduseBreakdown breakdown =
          analytics::ComputeLanduseBreakdown(result.cleaned, result.episodes,
                                             annotator, world.regions);
      auto top = breakdown.trajectory.TopK(1);
      for (const auto& [code, count] : breakdown.trajectory.counts()) {
        fleet_landuse.Add(code, count);
      }
      compression.raw_records += result.cleaned.size();
      compression.semantic_tuples +=
          result.region_layer.has_value()
              ? result.region_layer->episodes.size()
              : 0;
      std::printf("%-8lld %-6zu %8zu %7zu %7zu %9.1f %10s\n",
                  static_cast<long long>(track.object_id), day + 1,
                  result.cleaned.size(), result.NumStops(),
                  result.NumMoves(), km,
                  top.empty() ? "-" : top[0].first.c_str());
    }
  }

  std::printf("\nfleet landuse footprint (top 5):\n");
  for (const auto& [code, share] : fleet_landuse.TopK(5)) {
    std::printf("  %-5s %5.1f%%\n", code.c_str(), share * 100.0);
  }
  std::printf("\nepisode-level annotation: %zu raw records -> %zu semantic "
              "tuples (%.2f%% compression)\n",
              compression.raw_records, compression.semantic_tuples,
              compression.CompressionRatio() * 100.0);

  std::string dir = argc > 1 ? argv[1] : "/tmp/semitri_fleet_store";
  common::Status status = store.SaveCsv(dir);
  if (!status.ok()) {
    std::fprintf(stderr, "store save failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("semantic trajectory store saved to %s "
              "(gps.csv, episodes.csv, semantic_episodes.csv)\n",
              dir.c_str());
  return 0;
}
