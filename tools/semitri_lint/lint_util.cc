#include "lint_util.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace semitri::lint {

namespace {

// Splits on '\n', keeping empty lines; a trailing newline does not
// produce a phantom last line.
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(current);
  if (lines.empty()) lines.emplace_back();
  return lines;
}

// Parses `// semitri-lint: allow(a, b) — reason` out of a raw comment
// line. Returns true when the marker is present; fills `out` (reason
// may be empty = malformed).
bool ParseSuppression(const std::string& raw,
                      std::vector<Suppression>* out) {
  static const std::string kMarker = "semitri-lint:";
  size_t at = raw.find(kMarker);
  if (at == std::string::npos) return false;
  size_t allow = raw.find("allow(", at);
  if (allow == std::string::npos) return false;
  size_t close = raw.find(')', allow);
  if (close == std::string::npos) return false;
  std::string checks = raw.substr(allow + 6, close - allow - 6);

  // Reason: everything after the first dash-ish separator past ')'.
  std::string reason;
  size_t rest = close + 1;
  static const char* kSeps[] = {"\xE2\x80\x94", "--", "-"};  // — -- -
  size_t sep_at = std::string::npos;
  size_t sep_len = 0;
  for (const char* sep : kSeps) {
    size_t found = raw.find(sep, rest);
    if (found != std::string::npos &&
        (sep_at == std::string::npos || found < sep_at)) {
      sep_at = found;
      sep_len = std::char_traits<char>::length(sep);
    }
  }
  if (sep_at != std::string::npos) {
    reason = raw.substr(sep_at + sep_len);
    size_t begin = reason.find_first_not_of(" \t");
    reason = begin == std::string::npos ? "" : reason.substr(begin);
  }

  std::stringstream list(checks);
  std::string one;
  while (std::getline(list, one, ',')) {
    size_t b = one.find_first_not_of(" \t");
    size_t e = one.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    out->push_back({one.substr(b, e - b + 1), reason});
  }
  return !out->empty();
}

}  // namespace

std::string Finding::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << check << "] " << message;
  return os.str();
}

SourceFile::SourceFile(std::string path, const std::string& text)
    : path_(std::move(path)), raw_lines_(SplitLines(text)) {
  // Comment/string stripper: one pass over the raw lines, carrying
  // block-comment and raw-string state across newlines. Stripped bytes
  // become spaces so offsets line up between the views.
  code_lines_.reserve(raw_lines_.size());
  bool in_block_comment = false;
  bool in_raw_string = false;
  std::string raw_delim;  // )delim" that ends the active raw string

  for (size_t li = 0; li < raw_lines_.size(); ++li) {
    const std::string& raw = raw_lines_[li];
    std::string code(raw.size(), ' ');
    size_t i = 0;
    while (i < raw.size()) {
      if (in_block_comment) {
        if (raw.compare(i, 2, "*/") == 0) {
          in_block_comment = false;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      if (in_raw_string) {
        if (raw.compare(i, raw_delim.size(), raw_delim) == 0) {
          in_raw_string = false;
          i += raw_delim.size();
        } else {
          ++i;
        }
        continue;
      }
      char c = raw[i];
      if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '/') {
        // Line comment: might carry a suppression; parsed below from
        // the raw line either way.
        break;
      }
      if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (c == 'R' && raw.compare(i, 2, "R\"") == 0) {
        size_t paren = raw.find('(', i + 2);
        if (paren != std::string::npos) {
          raw_delim = ")" + raw.substr(i + 2, paren - i - 2) + "\"";
          in_raw_string = true;
          i = paren + 1;
          continue;
        }
      }
      if (c == '"' || c == '\'') {
        char quote = c;
        ++i;
        while (i < raw.size()) {
          if (raw[i] == '\\') {
            i += 2;
          } else if (raw[i] == quote) {
            ++i;
            break;
          } else {
            ++i;
          }
        }
        // The literal (quotes included) stays blanked; checks that
        // need literal text (fault-site extraction) read raw_line().
        continue;
      }
      code[i] = c;
      ++i;
    }

    std::vector<Suppression> sups;
    if (ParseSuppression(raw, &sups)) {
      for (const Suppression& s : sups) {
        if (s.reason.empty()) {
          malformed_suppressions_.push_back(
              {"suppression", path_, li + 1,
               "allow(" + s.check +
                   ") without a reason — append `— <why>` so the waiver "
                   "is auditable"});
        }
      }
      suppressions_[li + 1] = std::move(sups);
    }
    code_lines_.push_back(std::move(code));
  }
}

common::Result<SourceFile> SourceFile::Load(
    const std::string& disk_path, std::string repo_relative_path) {
  std::ifstream in(disk_path, std::ios::binary);
  if (!in) {
    return common::Status::IoError("cannot read " + disk_path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return SourceFile(std::move(repo_relative_path), buffer.str());
}

bool SourceFile::IsSuppressed(const std::string& check, size_t line) const {
  auto honored = [&](size_t candidate) {
    auto it = suppressions_.find(candidate);
    if (it == suppressions_.end()) return false;
    for (const Suppression& s : it->second) {
      if (s.check == check && !s.reason.empty()) return true;
    }
    return false;
  };
  if (line == 0 || line > raw_lines_.size()) return false;
  if (honored(line)) return true;
  // Walk up through the contiguous comment block directly above the
  // line — suppressions with multi-line reasons stay attached.
  for (size_t li = line; li-- > 1;) {
    size_t b = raw_lines_[li - 1].find_first_not_of(" \t");
    if (b == std::string::npos ||
        raw_lines_[li - 1].compare(b, 2, "//") != 0) {
      break;
    }
    if (honored(li)) return true;
  }
  return false;
}

bool SourceFile::FindMatching(char open, char close, size_t line,
                              size_t col, size_t* match_line,
                              size_t* match_col) const {
  int depth = 0;
  for (size_t li = line; li <= code_lines_.size(); ++li) {
    const std::string& code = code_lines_[li - 1];
    for (size_t ci = (li == line ? col : 0); ci < code.size(); ++ci) {
      if (code[ci] == open) {
        ++depth;
      } else if (code[ci] == close) {
        --depth;
        if (depth == 0) {
          *match_line = li;
          *match_col = ci;
          return true;
        }
      }
    }
  }
  return false;
}

std::string SourceFile::CodeRange(size_t first, size_t last) const {
  std::string out;
  for (size_t li = first; li <= last && li <= code_lines_.size(); ++li) {
    if (!out.empty()) out.push_back('\n');
    out += code_lines_[li - 1];
  }
  return out;
}

const SourceFile* Corpus::Find(const std::string& path_suffix) const {
  for (const SourceFile& f : files) {
    if (f.path().size() >= path_suffix.size() &&
        f.path().compare(f.path().size() - path_suffix.size(),
                         path_suffix.size(), path_suffix) == 0) {
      return &f;
    }
  }
  return nullptr;
}

bool ContainsWord(const std::string& text, const std::string& word) {
  size_t at = 0;
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  while ((at = text.find(word, at)) != std::string::npos) {
    bool left_ok = at == 0 || !is_ident(text[at - 1]);
    size_t end = at + word.size();
    bool right_ok = end >= text.size() || !is_ident(text[end]);
    if (left_ok && right_ok) return true;
    at = end;
  }
  return false;
}

}  // namespace semitri::lint
