#ifndef SEMITRI_TOOLS_SEMITRI_LINT_CHECKS_H_
#define SEMITRI_TOOLS_SEMITRI_LINT_CHECKS_H_

// The semitri-lint invariant checkers. Each check enforces a
// convention an earlier PR introduced but nothing verified
// mechanically until now:
//
//   unchecked-status          a call to a Status/Result-returning
//                             function used as a whole statement drops
//                             the error. Belt and suspenders over the
//                             class-level [[nodiscard]]: catches drops
//                             in macro bodies and uninstantiated
//                             templates, where the compiler attribute
//                             never fires, and drops with no explicit
//                             (void) cast. (PR 1 / this PR)
//
//   exec-checkpoint-coverage  in the annotator/stage/hmm TUs, a loop
//                             over points/candidates/categories/
//                             episodes/emissions must poll an
//                             ExecCheckpoint (directly or via an
//                             enclosing polled loop), and a function
//                             taking an ExecControl* must consult it.
//                             (PR 5)
//
//   guarded-by-completeness   a class with a std::mutex member must
//                             annotate every other mutable member
//                             SEMITRI_GUARDED_BY; clang -Wthread-safety
//                             only validates members that are already
//                             annotated, so unannotated ones silently
//                             escape analysis. (PR 1/PR 3)
//
//   fault-site-registry       SEMITRI_FAULT_FIRE site names must be
//                             unique, string-literal-discoverable, and
//                             registered in src/common/fault_sites.h,
//                             which tests/recovery_test.cc asserts
//                             against at runtime — so a new site cannot
//                             land without kill-at-site coverage. The
//                             self-healing sites (detector_probe,
//                             failover_promote) are additionally
//                             required entries while their owning
//                             files exist. (PR 4, PR 9)
//
//   raw-filesystem            src/ outside src/common/env* must not
//                             touch the filesystem directly (::open,
//                             ::fsync, std::[io]fstream,
//                             std::filesystem) — all file I/O routes
//                             through common::Env so disk faults are
//                             injectable and write errors surface as
//                             Status. (PR 10)
//
// Every finding honors the `// semitri-lint: allow(<check>) — reason`
// suppression protocol (see lint_util.h).

#include <string>
#include <vector>

#include "lint_util.h"

namespace semitri::lint {

// Names accepted by --check and allow(); RunChecks validates against
// this list.
std::vector<std::string> AllCheckNames();

// Runs the named checks (empty = all) over the corpus and returns the
// findings, deterministically ordered (file, line, check). Malformed
// suppression comments are always reported, whatever `checks` says.
std::vector<Finding> RunChecks(const Corpus& corpus,
                               const std::vector<std::string>& checks);

// Individual passes, exposed for the fixture tests.
std::vector<Finding> CheckUncheckedStatus(const Corpus& corpus);
std::vector<Finding> CheckExecCheckpointCoverage(const Corpus& corpus);
std::vector<Finding> CheckGuardedByCompleteness(const Corpus& corpus);
std::vector<Finding> CheckFaultSiteRegistry(const Corpus& corpus);
std::vector<Finding> CheckHotPathAlloc(const Corpus& corpus);
std::vector<Finding> CheckRawFilesystem(const Corpus& corpus);

}  // namespace semitri::lint

#endif  // SEMITRI_TOOLS_SEMITRI_LINT_CHECKS_H_
