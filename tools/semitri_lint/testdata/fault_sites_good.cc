// Fixture: compliant fault sites — a registered exact site, a
// registered prefix family, and a suppressed dynamic site. Zero
// findings expected. Loaded with the path "src/fixture/sites_good.cc".

#include <string>

#define SEMITRI_FAULT_FIRE(site) 0

namespace semitri::fixture {

int Fire(const std::string& stage_name, const char* forwarded) {
  int a = SEMITRI_FAULT_FIRE("registered_site");
  int b = SEMITRI_FAULT_FIRE("family:" + stage_name);
  // semitri-lint: allow(fault-site-registry) — fixture: the forwarded
  // name is always "registered_site", registered above.
  int c = SEMITRI_FAULT_FIRE(forwarded);
  return a + b + c;
}

}  // namespace semitri::fixture
