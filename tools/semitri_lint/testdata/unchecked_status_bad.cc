// Fixture: statements that drop a Status/Result and must be flagged.
// Loaded by semitri_lint_test with the path "src/fixture/bad_status.cc".

#include "common/status.h"

namespace semitri::fixture {

common::Status DoWork();
common::Result<int> ParseCount(const char* text);

void PlainDrop() {
  DoWork();  // FLAG: whole-statement call, result dropped
}

void QualifiedDrop(common::Status (*unused)()) {
  fixture::DoWork();  // FLAG: qualified call, result dropped
}

void ResultDrop(const char* text) {
  ParseCount(text);  // FLAG: Result<int> dropped
}

// FLAG: drops inside macro bodies are exactly what the compiler's
// [[nodiscard]] cannot see (the attribute fires at expansion sites
// only, and only in instantiated code).
#define FIXTURE_RESET_AND_IGNORE() \
  do {                             \
    DoWork();                      \
  } while (0)

}  // namespace semitri::fixture
