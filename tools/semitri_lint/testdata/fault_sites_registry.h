// Fixture registry, loaded with the path "src/common/fault_sites.h".

struct FaultSiteInfo {
  const char* name;
  bool prefix;
};

inline constexpr FaultSiteInfo kFaultSites[] = {
    {"family:", true},
    {"registered_site", false},
};
