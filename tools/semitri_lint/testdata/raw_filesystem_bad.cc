// Fixture: raw-filesystem must-flag cases (loaded under src/).

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace fixture {

void RawSyscalls(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY);  // FLAG: raw open
  ::fsync(fd);                              // FLAG: raw fsync
  ::close(fd);
}

void RawStreams(const std::string& path) {
  std::ofstream out(path);  // FLAG: ofstream
  std::ifstream in(path);   // FLAG: ifstream
  std::fstream both(path);  // FLAG: fstream
  out << "x";
  (void)in;
  (void)both;
}

bool RawFilesystemNamespace(const std::string& path) {
  return std::filesystem::exists(path);  // FLAG: std::filesystem
}

}  // namespace fixture
