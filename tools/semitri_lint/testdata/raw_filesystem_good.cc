// Fixture: raw-filesystem must-pass and suppression cases. Mentions of
// std::ofstream or ::fsync() in comments and string literals are not
// code and must never trip the check.

#include <string>

#include "common/env.h"
#include "common/status.h"

namespace fixture {

// All file I/O goes through common::Env, as the check demands. A doc
// comment may freely discuss why std::filesystem is forbidden here.
common::Status EnvRouted(common::Env* env, const std::string& path) {
  return env->WriteStringToFile(path, "payload", /*sync=*/true);
}

const char* ErrorMessage() {
  // Token inside a string literal: blanked before matching.
  return "do not use std::ofstream or ::open() outside common::Env";
}

void SuppressedRawUse(const std::string& path) {
  // semitri-lint: allow(raw-filesystem) — process-global lock file;
  // O_EXCL semantics are not expressible through Env (yet).
  int fd = ::open(path.c_str(), 0);
  (void)fd;
}

}  // namespace fixture
