// Fixture: a suppression without a reason is itself a finding, and the
// waiver is not honored. Loaded with the path
// "src/fixture/suppression_bad.cc".

#include "common/status.h"

namespace semitri::fixture {

common::Status DoWork();

void ReasonlessWaiver() {
  // semitri-lint: allow(unchecked-status)
  DoWork();  // FLAG: still reported — the allow() above has no reason
}

}  // namespace semitri::fixture
