// Fixture: fault-site violations — an unregistered site, a duplicate
// name, and a dynamic (non-literal) site with no suppression. Loaded
// with the path "src/fixture/sites_bad.cc".

#define SEMITRI_FAULT_FIRE(site) 0

namespace semitri::fixture {

int Fire(const char* dynamic_name) {
  int f = SEMITRI_FAULT_FIRE("family:" + std::string(dynamic_name));
  int a = f + SEMITRI_FAULT_FIRE("registered_site");
  int b = SEMITRI_FAULT_FIRE("rogue_site");       // FLAG: not registered
  int c = SEMITRI_FAULT_FIRE("registered_site");  // FLAG: duplicate
  int d = SEMITRI_FAULT_FIRE(dynamic_name);       // FLAG: no literal
  return a + b + c + d;
}

}  // namespace semitri::fixture
