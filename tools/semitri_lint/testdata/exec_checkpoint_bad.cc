// Fixture: hot-container loops with no checkpoint poll, and an
// ExecControl parameter that is silently ignored. Loaded with the
// in-scope path "src/hmm/hmm.cc".

#include <cstddef>
#include <vector>

namespace semitri::fixture {

struct ExecControl;

int UnpolledLoop(const std::vector<double>& emissions) {
  int acc = 0;
  for (size_t t = 0; t < emissions.size(); ++t) {  // FLAG: no poll
    acc += static_cast<int>(emissions[t]);
  }
  return acc;
}

int IgnoredExec(const std::vector<int>& values, ExecControl* exec) {
  // FLAG: `exec` is never consulted or forwarded.
  int acc = 0;
  for (int v : values) acc += v;
  return acc;
}

}  // namespace semitri::fixture
