// Fixture: hot-path-alloc must-pass and suppression cases.

#include <unordered_map>
#include <vector>

namespace fixture {

void Hoisted(const std::vector<int>& items) {
  std::vector<double> row;  // hoisted: reused across iterations
  for (int item : items) {
    row.clear();
    row.push_back(static_cast<double>(item));
  }
}

void ReferenceBinding(const std::vector<std::vector<double>>& table) {
  for (const std::vector<double>& row : table) {
    (void)row;
  }
}

// semitri-lint: allow(hot-path-alloc) — boundary API shape: callers
// hand in nested rows, converted to a flat matrix immediately.
std::vector<std::vector<double>> SuppressedBoundary() {
  // semitri-lint: allow(hot-path-alloc) — one-time construction at
  // model-build time, not on the annotation path.
  std::vector<std::vector<double>> rows;
  return rows;
}

void SuppressedPerIteration(const std::vector<int>& items) {
  for (int item : items) {
    // semitri-lint: allow(hot-path-alloc) — tiny bounded map, N <= 3.
    std::unordered_map<int, double> scores;
    scores[item] = 1.0;
  }
}

}  // namespace fixture
