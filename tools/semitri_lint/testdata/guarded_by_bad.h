// Fixture: a class owning a mutex with an unannotated mutable member.
// Loaded with the path "src/fixture/guarded_bad.h".

#include <map>
#include <mutex>
#include <string>

#define SEMITRI_GUARDED_BY(x)

namespace semitri::fixture {

class LeakyRegistry {
 public:
  void Put(const std::string& key, int value);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, int> entries_ SEMITRI_GUARDED_BY(mutex_);
  size_t total_puts_ = 0;  // FLAG: mutated under mutex_, not annotated
};

}  // namespace semitri::fixture
