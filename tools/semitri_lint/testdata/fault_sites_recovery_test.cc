// Fixture stand-in for the recovery test, loaded with the path
// "tests/recovery_test.cc". The include below is what the
// fault-site-registry check requires: the test must assert runtime
// discovery against the checked-in registry.

#include "common/fault_sites.h"
