// Fixture: hot-path-alloc must-flag cases (loaded as a data-plane TU).

#include <unordered_map>
#include <vector>

namespace fixture {

std::vector<std::vector<double>> BuildTable() {  // FLAG: nested return type
  std::vector<std::vector<double>> table;  // FLAG: nested local
  return table;
}

void PerIteration(const std::vector<int>& items) {
  for (int item : items) {
    std::vector<double> row(8);  // FLAG: constructed every iteration
    std::unordered_map<int, double> scores;  // FLAG: per-iteration map
    row[0] = scores[item];
  }
}

}  // namespace fixture
