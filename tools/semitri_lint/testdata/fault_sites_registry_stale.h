// Fixture registry with a stale entry, loaded with the path
// "src/common/fault_sites.h". No literal in the fixture corpus
// matches stale_site, so the check must flag the entry.

struct FaultSiteInfo {
  const char* name;
  bool prefix;
};

inline constexpr FaultSiteInfo kFaultSites[] = {
    {"family:", true},
    {"registered_site", false},
    {"stale_site", false},
};
