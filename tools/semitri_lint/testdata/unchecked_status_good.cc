// Fixture: every legal way to consume a Status/Result. Zero findings
// expected. Loaded with the path "src/fixture/good_status.cc".

#include "common/status.h"

namespace semitri::fixture {

common::Status DoWork();
common::Result<int> ParseCount(const char* text);

common::Status Propagate() {
  SEMITRI_RETURN_IF_ERROR(DoWork());
  return DoWork();
}

common::Status Assigned() {
  common::Status status = DoWork();
  if (!status.ok()) return status;
  auto parsed = ParseCount("3");
  return parsed.status();
}

void ExplicitDiscard() {
  // Sanctioned discard: the (void) cast plus a reason.
  (void)DoWork();
}

void Conditional() {
  if (!DoWork().ok()) {
    return;
  }
}

void Suppressed() {
  // semitri-lint: allow(unchecked-status) — fixture exercising the
  // suppression protocol; the drop below is intentional.
  DoWork();
}

}  // namespace semitri::fixture
