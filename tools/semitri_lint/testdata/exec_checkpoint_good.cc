// Fixture: compliant hot loops — polled directly, covered by a polled
// enclosing loop, or suppressed with a reason. Zero findings expected.
// Loaded with the in-scope path "src/road/map_matcher.cc".

#include <cstddef>
#include <vector>

namespace semitri::fixture {

struct ExecControl {
  int Check(const char* site);
};

struct ExecCheckpoint {
  ExecCheckpoint(ExecControl* exec, size_t check_interval);
  int Check(const char* site);
};

int PolledLoop(const std::vector<double>& points, ExecControl* exec) {
  ExecCheckpoint checkpoint(exec, 256);
  int acc = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    if (checkpoint.Check("fixture_polled") != 0) break;
    acc += static_cast<int>(points[i]);
  }
  return acc;
}

int EnclosingPoll(const std::vector<std::vector<int>>& candidates,
                  ExecControl* exec) {
  int acc = 0;
  for (size_t w = 0; w < candidates.size(); ++w) {
    if (exec->Check("fixture_window") != 0) break;
    // Inner loop inherits the enclosing loop's poll.
    for (size_t c = 0; c < candidates[w].size(); ++c) {
      acc += candidates[w][c];
    }
  }
  return acc;
}

int SuppressedLoop(const std::vector<int>& episodes) {
  int acc = 0;
  // semitri-lint: allow(exec-checkpoint-coverage) — fixture: episode
  // counts are tiny, a poll per element would dominate the loop.
  for (size_t e = 0; e < episodes.size(); ++e) {
    acc += episodes[e];
  }
  return acc;
}

}  // namespace semitri::fixture
