// Fixture: fully-annotated and exempt members; zero findings expected.
// Loaded with the path "src/fixture/guarded_good.h".

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#define SEMITRI_GUARDED_BY(x)

namespace semitri::fixture {

// No mutex at all: nothing to audit.
class PlainValue {
 public:
  int get() const { return value_; }

 private:
  int value_ = 0;
};

class TightRegistry {
 public:
  void Put(const std::string& key, int value);

 private:
  mutable std::mutex mutex_;
  std::condition_variable drained_;           // exempt: synchronizer
  std::atomic<size_t> lookups_{0};            // exempt: atomic
  const int capacity_ = 128;                  // exempt: immutable
  static constexpr int kShards = 4;           // exempt: not instance state
  std::map<std::string, int> entries_ SEMITRI_GUARDED_BY(mutex_);
  size_t total_puts_ SEMITRI_GUARDED_BY(mutex_) = 0;
  // semitri-lint: allow(guarded-by-completeness) — fixture: joined
  // outside the lock by construction, never accessed concurrently.
  std::thread flusher_;
};

}  // namespace semitri::fixture
