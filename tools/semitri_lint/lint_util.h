#ifndef SEMITRI_TOOLS_SEMITRI_LINT_LINT_UTIL_H_
#define SEMITRI_TOOLS_SEMITRI_LINT_LINT_UTIL_H_

// Shared plumbing for the semitri-lint invariant checkers: source
// loading, comment/string stripping (so the checks pattern-match only
// real code), and the line-level suppression-comment protocol.
//
// Suppression protocol (see DESIGN.md "Static analysis & project
// invariants"): a finding on line N is suppressed by
//
//   // semitri-lint: allow(<check>) — <reason>
//
// on line N itself or anywhere in the contiguous `//` comment block
// directly above it (so reasons may wrap). The reason is mandatory; an
// allow() without one is itself reported under the `suppression`
// check, so waivers stay auditable. `--` and `-` are accepted in
// place of the em dash.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace semitri::lint {

struct Finding {
  std::string check;    // e.g. "unchecked-status"
  std::string file;     // repo-relative path
  size_t line = 0;      // 1-based
  std::string message;

  std::string ToString() const;
};

struct Suppression {
  std::string check;
  std::string reason;  // empty = malformed (reported, never honored)
};

class SourceFile {
 public:
  // Parses `text` as the contents of `path` (repo-relative, used in
  // findings). Comments and string/char literals are blanked out into
  // code() with byte-for-byte layout preserved, so column/offset math
  // is valid on both views.
  SourceFile(std::string path, const std::string& text);

  // Loads from disk. IoError when unreadable.
  static common::Result<SourceFile> Load(const std::string& disk_path,
                                         std::string repo_relative_path);

  const std::string& path() const { return path_; }
  size_t line_count() const { return raw_lines_.size(); }
  // 1-based accessors.
  const std::string& raw_line(size_t line) const {
    return raw_lines_[line - 1];
  }
  const std::string& code_line(size_t line) const {
    return code_lines_[line - 1];
  }

  // True when a valid `allow(check)` suppression covers `line` (same
  // line, or within the contiguous comment block directly above).
  bool IsSuppressed(const std::string& check, size_t line) const;

  // Malformed suppressions (missing reason) found while parsing; the
  // driver reports these under the `suppression` check.
  const std::vector<Finding>& malformed_suppressions() const {
    return malformed_suppressions_;
  }

  // Index of the matching `close` for the `open` at (line, col) on the
  // code view, scanning forward across lines. Returns false when
  // unbalanced. Lines/cols are 1-based / 0-based respectively.
  bool FindMatching(char open, char close, size_t line, size_t col,
                    size_t* match_line, size_t* match_col) const;

  // Concatenated code text of [first, last] inclusive (1-based), with
  // '\n' separators — for multi-line declarations and loop headers.
  std::string CodeRange(size_t first, size_t last) const;

 private:
  std::string path_;
  std::vector<std::string> raw_lines_;
  std::vector<std::string> code_lines_;
  // line -> suppressions declared on that line.
  std::map<size_t, std::vector<Suppression>> suppressions_;
  std::vector<Finding> malformed_suppressions_;
};

// Every file the driver loaded, in deterministic (sorted) order.
struct Corpus {
  std::vector<SourceFile> files;

  const SourceFile* Find(const std::string& path_suffix) const;
};

// True when `text` contains `word` delimited by non-identifier chars.
bool ContainsWord(const std::string& text, const std::string& word);

}  // namespace semitri::lint

#endif  // SEMITRI_TOOLS_SEMITRI_LINT_LINT_UTIL_H_
