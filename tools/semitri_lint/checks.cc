#include "checks.h"

#include <algorithm>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>

namespace semitri::lint {

namespace {

// ---------------------------------------------------------------------
// shared helpers
// ---------------------------------------------------------------------

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Last non-space char of code before `line`, and the last word on that
// line — statement-start detection for unchecked-status.
void PreviousCodeContext(const SourceFile& f, size_t line, char* last_char,
                         std::string* last_word) {
  *last_char = '\0';
  last_word->clear();
  for (size_t li = line; li-- > 1;) {
    const std::string& code = f.code_line(li);
    size_t e = code.find_last_not_of(" \t");
    if (e == std::string::npos) continue;
    *last_char = code[e];
    size_t b = e;
    while (b > 0 && (std::isalnum(static_cast<unsigned char>(code[b - 1])) ||
                     code[b - 1] == '_')) {
      --b;
    }
    if (std::isalpha(static_cast<unsigned char>(code[b])) || code[b] == '_') {
      *last_word = code.substr(b, e - b + 1);
    }
    return;
  }
}

// Removes balanced <...> pairs so template parameter lists do not look
// like function parentheses or const qualifiers.
std::string StripAngleBrackets(std::string s) {
  bool changed = true;
  while (changed) {
    changed = false;
    int depth = 0;
    size_t open = std::string::npos;
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i] == '<') {
        if (depth == 0) open = i;
        ++depth;
      } else if (s[i] == '>' && depth > 0) {
        --depth;
        if (depth == 0) {
          s.erase(open, i - open + 1);
          changed = true;
          break;
        }
      }
    }
  }
  return s;
}

// Code text strictly between (l1, c1) and (l2, c2) — unlike
// SourceFile::CodeRange, partial first/last lines are trimmed to the
// span, so e.g. a function body excludes its signature.
std::string CodeSpan(const SourceFile& f, size_t l1, size_t c1, size_t l2,
                     size_t c2) {
  std::string out;
  for (size_t li = l1; li <= l2 && li <= f.line_count(); ++li) {
    std::string code = f.code_line(li);
    if (li == l2 && c2 <= code.size()) code = code.substr(0, c2);
    if (li == l1 && c1 < code.size()) code = code.substr(c1 + 1);
    if (li == l1 && c1 >= code.size()) code.clear();
    if (!out.empty()) out.push_back('\n');
    out += code;
  }
  return out;
}

std::string LastIdentifierComponent(const std::string& qualified) {
  size_t at = qualified.rfind("::");
  return at == std::string::npos ? qualified : qualified.substr(at + 2);
}

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.check != b.check) return a.check < b.check;
              return a.message < b.message;
            });
}

// ---------------------------------------------------------------------
// unchecked-status
// ---------------------------------------------------------------------

constexpr char kUncheckedStatus[] = "unchecked-status";

// Builds the set of function names declared to return
// common::Status / common::Result<T> anywhere in the corpus, minus the
// names that are *also* declared with a different return type (the
// check is name-based, so ambiguous names are skipped rather than
// guessed at).
std::set<std::string> StatusReturningFunctions(const Corpus& corpus) {
  static const std::regex kStatusDecl(
      R"(^\s*(?:\[\[nodiscard\]\]\s*)?(?:virtual\s+|static\s+|inline\s+)*)"
      R"((?:semitri::)?(?:common::)?(?:Status|Result\s*<.*>)\s+)"
      R"(([A-Za-z_][\w:]*)\s*\()");
  static const std::regex kStatusTypeOnly(
      R"(^\s*(?:\[\[nodiscard\]\]\s*)?(?:virtual\s+|static\s+|inline\s+)*)"
      R"((?:semitri::)?(?:common::)?(?:Status|Result\s*<.*>)\s*$)");
  static const std::regex kNextLineName(R"(^\s*([A-Za-z_][\w:]*)\s*\()");
  static const std::regex kOtherDecl(
      R"(^\s*(?:\[\[nodiscard\]\]\s*)?(?:virtual\s+|static\s+|inline\s+|constexpr\s+)*)"
      R"(([A-Za-z_][\w:]*(?:\s*<.*>)?[&*\s]+)([A-Za-z_][\w:]*)\s*\()");
  static const std::set<std::string> kKeywords = {
      "return", "if",  "while",  "for",    "switch",    "case",
      "else",   "do",  "goto",   "new",    "delete",    "throw",
      "using",  "co_return", "typedef",    "co_await",  "co_yield"};

  std::set<std::string> status_names;
  std::set<std::string> other_names;
  for (const SourceFile& f : corpus.files) {
    for (size_t li = 1; li <= f.line_count(); ++li) {
      const std::string& code = f.code_line(li);
      std::smatch m;
      if (std::regex_search(code, m, kStatusDecl)) {
        status_names.insert(LastIdentifierComponent(m[1].str()));
        continue;
      }
      if (std::regex_search(code, m, kStatusTypeOnly) &&
          li + 1 <= f.line_count()) {
        std::smatch next;
        const std::string& next_code = f.code_line(li + 1);
        if (std::regex_search(next_code, next, kNextLineName)) {
          status_names.insert(LastIdentifierComponent(next[1].str()));
        }
        continue;
      }
      if (std::regex_search(code, m, kOtherDecl)) {
        std::string type = Trim(m[1].str());
        std::string first_word = type.substr(0, type.find_first_of(" \t<&*"));
        if (kKeywords.count(first_word) != 0) continue;
        if (first_word == "Status" || first_word == "Result" ||
            EndsWith(first_word, "::Status") ||
            EndsWith(first_word, "::Result")) {
          continue;
        }
        other_names.insert(LastIdentifierComponent(m[2].str()));
      }
    }
  }
  std::set<std::string> result;
  for (const std::string& name : status_names) {
    if (other_names.count(name) == 0) result.insert(name);
  }
  return result;
}

std::vector<Finding> UncheckedStatusImpl(const Corpus& corpus) {
  std::vector<Finding> findings;
  std::set<std::string> registry = StatusReturningFunctions(corpus);
  // qualifier chain (a. / b-> / ns::) then the callee name, at line
  // start.
  static const std::regex kCallAtLineStart(
      R"(^\s*((?:[A-Za-z_]\w*(?:::|\.|->))*)([A-Za-z_]\w*)\s*\()");

  for (const SourceFile& f : corpus.files) {
    for (size_t li = 1; li <= f.line_count(); ++li) {
      const std::string& code = f.code_line(li);
      std::smatch m;
      if (!std::regex_search(code, m, kCallAtLineStart)) continue;
      std::string callee = m[2].str();
      if (registry.count(callee) == 0) continue;

      // Statement start: the previous code must have ended a statement
      // or opened a block/label; `\` keeps macro-definition bodies in
      // scope (that is where the compiler's [[nodiscard]] cannot see).
      char prev_char;
      std::string prev_word;
      PreviousCodeContext(f, li, &prev_char, &prev_word);
      bool starts_statement =
          prev_char == '\0' || prev_char == ';' || prev_char == '{' ||
          prev_char == '}' || prev_char == ':' || prev_char == '\\' ||
          prev_char == ')' || prev_word == "else" || prev_word == "do";
      if (!starts_statement) continue;
      // `)` only starts a statement as an if/for/while controller, not
      // after a call or condition used as an expression piece — require
      // the enclosing line shape to already have ended with `)`.

      // The call must be the whole statement: find its closing paren,
      // then require `;`.
      size_t open_col = static_cast<size_t>(m.position(0)) +
                        m[0].str().size() - 1;
      size_t close_line, close_col;
      if (!f.FindMatching('(', ')', li, open_col, &close_line, &close_col)) {
        continue;
      }
      const std::string& close_code = f.code_line(close_line);
      size_t after = close_code.find_first_not_of(" \t", close_col + 1);
      bool whole_statement =
          after != std::string::npos && close_code[after] == ';';
      if (!whole_statement && after == std::string::npos &&
          close_line < f.line_count()) {
        const std::string next =
            Trim(f.code_line(close_line + 1));
        whole_statement = StartsWith(next, ";");
      }
      if (!whole_statement) continue;
      if (f.IsSuppressed(kUncheckedStatus, li)) continue;
      findings.push_back(
          {kUncheckedStatus, f.path(), li,
           "result of Status/Result-returning `" + callee +
               "` is dropped; check it, propagate it, or discard "
               "explicitly with `(void)` and a comment"});
    }
  }
  return findings;
}

// ---------------------------------------------------------------------
// exec-checkpoint-coverage
// ---------------------------------------------------------------------

constexpr char kExecCheckpoint[] = "exec-checkpoint-coverage";

// The translation units whose loops PR 5 governs (annotators, map
// matcher, HMM, stage graph).
bool InExecCheckpointScope(const std::string& path) {
  if (!StartsWith(path, "src/")) return false;
  static const char* kBasenames[] = {
      "/hmm.cc",          "/map_matcher.cc",      "/line_annotator.cc",
      "/point_annotator.cc", "/region_annotator.cc", "/stage.cc",
      "/stages.cc"};
  for (const char* base : kBasenames) {
    if (EndsWith(path, base)) return true;
  }
  return false;
}

struct Loop {
  size_t header_line = 0;
  std::string header;     // text inside the loop parentheses
  size_t body_first = 0;  // inclusive line range of the body
  size_t body_last = 0;
  bool suppressed = false;
  bool polls = false;     // body contains a checkpoint consult
};

bool ContainsPoll(const std::string& text) {
  static const std::regex kPoll(
      R"((\.|->)\s*Check\s*\(|ExecCheckpoint|check_interval)");
  return std::regex_search(text, kPoll);
}

std::vector<Loop> CollectLoops(const SourceFile& f,
                               const char* suppression_check) {
  static const std::regex kLoopKeyword(R"((^|[^\w])(for|while)\s*\()");
  std::vector<Loop> loops;
  for (size_t li = 1; li <= f.line_count(); ++li) {
    const std::string& code = f.code_line(li);
    auto begin = std::sregex_iterator(code.begin(), code.end(), kLoopKeyword);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      size_t open_col =
          static_cast<size_t>(it->position(0)) + it->str(0).size() - 1;
      size_t hdr_close_line, hdr_close_col;
      if (!f.FindMatching('(', ')', li, open_col, &hdr_close_line,
                          &hdr_close_col)) {
        continue;
      }
      Loop loop;
      loop.header_line = li;
      // Header text: the code between the parens (possibly multi-line).
      std::string header = f.CodeRange(li, hdr_close_line);
      // Trim to the span between this open paren and its close; on a
      // single line that is exact, across lines keep it approximate.
      if (hdr_close_line == li) {
        header = code.substr(open_col + 1, hdr_close_col - open_col - 1);
      }
      loop.header = header;

      // Body: `{...}` block or a single statement ending in `;`.
      size_t bl = hdr_close_line, bc = hdr_close_col + 1;
      bool found_body = false;
      for (size_t scan = bl; scan <= f.line_count() && !found_body; ++scan) {
        const std::string& scode = f.code_line(scan);
        for (size_t col = (scan == bl ? bc : 0); col < scode.size(); ++col) {
          char c = scode[col];
          if (c == ' ' || c == '\t') continue;
          if (c == '{') {
            size_t close_l, close_c;
            if (!f.FindMatching('{', '}', scan, col, &close_l, &close_c)) {
              close_l = f.line_count();
            }
            loop.body_first = scan;
            loop.body_last = close_l;
          } else {
            // Single-statement body: runs to the next `;`.
            loop.body_first = scan;
            loop.body_last = scan;
            for (size_t sl = scan; sl <= f.line_count(); ++sl) {
              const std::string& t = f.code_line(sl);
              if (t.find(';', sl == scan ? col : 0) != std::string::npos) {
                loop.body_last = sl;
                break;
              }
            }
          }
          found_body = true;
          break;
        }
      }
      if (!found_body) continue;
      loop.suppressed = f.IsSuppressed(suppression_check, loop.header_line);
      loop.polls = ContainsPoll(f.CodeRange(loop.body_first, loop.body_last));
      loops.push_back(std::move(loop));
    }
  }
  return loops;
}

std::vector<Finding> ExecCheckpointImpl(const Corpus& corpus) {
  static const char* kHotContainers[] = {"points", "candidates",
                                         "categories", "episodes",
                                         "emissions"};
  std::vector<Finding> findings;
  for (const SourceFile& f : corpus.files) {
    if (!InExecCheckpointScope(f.path())) continue;

    // Rule 1: a loop over the hot containers must consult a checkpoint
    // in its body, or sit inside a loop that does (the enclosing poll
    // bounds how stale the deadline can get per outer iteration).
    std::vector<Loop> loops = CollectLoops(f, kExecCheckpoint);
    for (const Loop& loop : loops) {
      bool hot = false;
      for (const char* word : kHotContainers) {
        if (ContainsWord(loop.header, word)) {
          hot = true;
          break;
        }
      }
      if (!hot || loop.polls || loop.suppressed) continue;
      bool covered_by_enclosing = false;
      for (const Loop& outer : loops) {
        if (&outer == &loop) continue;
        if (outer.body_first <= loop.header_line &&
            loop.header_line <= outer.body_last &&
            (outer.polls || outer.suppressed)) {
          covered_by_enclosing = true;
          break;
        }
      }
      if (covered_by_enclosing) continue;
      findings.push_back(
          {kExecCheckpoint, f.path(), loop.header_line,
           "loop over a hot container has no ExecCheckpoint/check_interval "
           "poll in its body (PR 5 invariant: cooperative cancellation "
           "must be consulted every check_interval iterations)"});
    }

    // Rule 2: a function that accepts an ExecControl* must consult it
    // (construct an ExecCheckpoint, call Check, or forward it).
    for (size_t li = 1; li <= f.line_count(); ++li) {
      const std::string& code = f.code_line(li);
      size_t at = code.find("ExecControl*");
      if (at == std::string::npos) {
        at = code.find("ExecControl *");
        if (at == std::string::npos) continue;
      }
      // Find the end of this declaration: `;` = pure declaration
      // (nothing to verify), `{` = definition body.
      size_t body_open_line = 0, body_open_col = 0;
      bool is_definition = false;
      for (size_t scan = li; scan <= f.line_count() && scan < li + 8;
           ++scan) {
        const std::string& scode = f.code_line(scan);
        size_t from = scan == li ? at : 0;
        size_t semi = scode.find(';', from);
        size_t brace = scode.find('{', from);
        if (semi != std::string::npos &&
            (brace == std::string::npos || semi < brace)) {
          break;
        }
        if (brace != std::string::npos) {
          is_definition = true;
          body_open_line = scan;
          body_open_col = brace;
          break;
        }
      }
      if (!is_definition) continue;
      size_t body_close_line, body_close_col;
      if (!f.FindMatching('{', '}', body_open_line, body_open_col,
                          &body_close_line, &body_close_col)) {
        continue;
      }
      std::string body = CodeSpan(f, body_open_line, body_open_col,
                                  body_close_line, body_close_col);
      if (ContainsWord(body, "exec") || ContainsPoll(body)) continue;
      if (f.IsSuppressed(kExecCheckpoint, li)) continue;
      findings.push_back(
          {kExecCheckpoint, f.path(), li,
           "function takes an ExecControl* but never consults or "
           "forwards it — deadline/cancellation is silently ignored"});
    }
  }
  return findings;
}

// ---------------------------------------------------------------------
// guarded-by-completeness
// ---------------------------------------------------------------------

constexpr char kGuardedBy[] = "guarded-by-completeness";

struct MemberDecl {
  std::string text;  // logical declaration, angle brackets stripped later
  size_t line = 0;   // first line
};

// Walks a class body (between its braces), returning the logical
// member declarations at class depth. Inline method bodies, nested
// type bodies, and member initializer braces are skipped wholesale;
// nested classes are audited by their own discovery pass.
std::vector<MemberDecl> ClassMembers(const SourceFile& f, size_t open_line,
                                     size_t open_col, size_t close_line,
                                     size_t close_col) {
  std::vector<MemberDecl> members;
  MemberDecl current;
  int brace_skip = 0;
  int paren_depth = 0;
  for (size_t li = open_line; li <= close_line; ++li) {
    const std::string& code = f.code_line(li);
    size_t begin = li == open_line ? open_col + 1 : 0;
    size_t end = li == close_line ? close_col : code.size();
    for (size_t ci = begin; ci < end && ci < code.size(); ++ci) {
      char c = code[ci];
      if (brace_skip > 0) {
        if (c == '{') ++brace_skip;
        if (c == '}') --brace_skip;
        continue;
      }
      if (c == '{') {
        brace_skip = 1;
        continue;
      }
      if (c == '(') ++paren_depth;
      if (c == ')') --paren_depth;
      if (c == ';' && paren_depth == 0) {
        std::string text = Trim(current.text);
        if (!text.empty()) members.push_back({text, current.line});
        current = MemberDecl{};
        continue;
      }
      if (current.text.empty()) {
        if (c == ' ' || c == '\t') continue;
        current.line = li;
      }
      current.text.push_back(c);
    }
    if (!current.text.empty()) current.text.push_back(' ');

    // Access specifiers end with ':', not ';' — drop them so they do
    // not glue onto the next declaration.
    std::string t = Trim(current.text);
    if (t == "public:" || t == "private:" || t == "protected:") {
      current = MemberDecl{};
    }
  }
  return members;
}

bool IsMutexMember(const std::string& stripped) {
  static const std::regex kMutex(
      R"(std::(recursive_|shared_|timed_|recursive_timed_)?mutex)");
  return std::regex_search(stripped, kMutex);
}

bool IsExemptMember(const std::string& stripped) {
  static const std::regex kExempt(
      R"(std::condition_variable|std::atomic|std::once_flag)");
  if (std::regex_search(stripped, kExempt)) return true;
  // const members are immutable after construction; static members are
  // not instance state. (`mutable` is NOT exempt — mutable means
  // mutated under some lock.)
  if (ContainsWord(stripped, "const") &&
      !ContainsWord(stripped, "mutable")) {
    return true;
  }
  return false;
}

std::vector<Finding> GuardedByImpl(const Corpus& corpus) {
  static const std::regex kClassHead(
      R"((^|[^\w])(class|struct)\s+(\[\[nodiscard\]\]\s+)?([A-Za-z_]\w*))");
  static const std::set<std::string> kSkipPrefixes = {
      "using",  "typedef", "friend", "static", "template",
      "class",  "struct",  "enum",   "union",  "constexpr",
      "public", "private", "protected"};

  std::vector<Finding> findings;
  for (const SourceFile& f : corpus.files) {
    if (!StartsWith(f.path(), "src/")) continue;
    for (size_t li = 1; li <= f.line_count(); ++li) {
      const std::string& code = f.code_line(li);
      std::smatch m;
      std::string line_text = code;
      if (!std::regex_search(line_text, m, kClassHead)) continue;
      std::string class_name = m[4].str();

      // Find the opening brace of the class body, bailing at `;`
      // (forward declaration) or `(` (e.g. a class-keyword false hit).
      size_t open_line = 0, open_col = 0;
      bool has_body = false;
      size_t search_col = static_cast<size_t>(m.position(0)) + m[0].str().size();
      for (size_t scan = li; scan <= f.line_count() && scan < li + 6 &&
                             !has_body;
           ++scan) {
        const std::string& scode = f.code_line(scan);
        for (size_t ci = scan == li ? search_col : 0; ci < scode.size();
             ++ci) {
          if (scode[ci] == ';' || scode[ci] == '(') {
            scan = f.line_count();  // forward declaration — stop
            break;
          }
          if (scode[ci] == '{') {
            open_line = scan;
            open_col = ci;
            has_body = true;
            break;
          }
        }
      }
      if (!has_body) continue;
      size_t close_line, close_col;
      if (!f.FindMatching('{', '}', open_line, open_col, &close_line,
                          &close_col)) {
        continue;
      }

      std::vector<MemberDecl> members =
          ClassMembers(f, open_line, open_col, close_line, close_col);
      std::vector<std::string> mutexes;
      for (const MemberDecl& member : members) {
        std::string stripped = StripAngleBrackets(member.text);
        if (stripped.find('(') != std::string::npos) continue;
        if (IsMutexMember(stripped)) {
          std::string name = stripped;
          size_t sep = name.find_last_of(" \t");
          if (sep != std::string::npos) name = name.substr(sep + 1);
          mutexes.push_back(name);
        }
      }
      if (mutexes.empty()) continue;

      for (const MemberDecl& member : members) {
        std::string stripped = StripAngleBrackets(member.text);
        std::string first_word =
            stripped.substr(0, stripped.find_first_of(" \t<:("));
        if (kSkipPrefixes.count(first_word) != 0) continue;
        if (stripped.find('(') != std::string::npos) continue;  // function
        if (IsMutexMember(stripped) || IsExemptMember(stripped)) continue;
        if (member.text.find("SEMITRI_GUARDED_BY") != std::string::npos ||
            member.text.find("SEMITRI_PT_GUARDED_BY") != std::string::npos) {
          continue;
        }
        if (f.IsSuppressed(kGuardedBy, member.line)) continue;
        findings.push_back(
            {kGuardedBy, f.path(), member.line,
             "class `" + class_name + "` owns a mutex (" + mutexes[0] +
                 ") but member `" + member.text.substr(0, 48) +
                 "` has no SEMITRI_GUARDED_BY annotation — clang "
                 "-Wthread-safety only validates annotated members"});
      }
    }
  }
  return findings;
}

// ---------------------------------------------------------------------
// fault-site-registry
// ---------------------------------------------------------------------

constexpr char kFaultSites[] = "fault-site-registry";
constexpr char kRegistryPath[] = "src/common/fault_sites.h";
constexpr char kRecoveryTestPath[] = "tests/recovery_test.cc";

struct ExtractedSite {
  std::string name;
  bool prefix = false;
  std::string file;
  size_t line = 0;
};

std::vector<Finding> FaultSitesImpl(const Corpus& corpus) {
  std::vector<Finding> findings;

  // 1. Extract every SEMITRI_FAULT_FIRE site from src/.
  std::vector<ExtractedSite> sites;
  for (const SourceFile& f : corpus.files) {
    if (!StartsWith(f.path(), "src/")) continue;
    for (size_t li = 1; li <= f.line_count(); ++li) {
      if (f.raw_line(li).find("#define") != std::string::npos) continue;
      const std::string& code = f.code_line(li);
      size_t at = code.find("SEMITRI_FAULT_FIRE");
      if (at == std::string::npos) continue;
      size_t open = code.find('(', at);
      if (open == std::string::npos) continue;
      size_t close_line, close_col;
      if (!f.FindMatching('(', ')', li, open, &close_line, &close_col)) {
        continue;
      }
      // Argument in RAW text (the code view blanks string literals).
      std::string arg;
      for (size_t al = li; al <= close_line; ++al) {
        const std::string& raw = f.raw_line(al);
        size_t b = al == li ? open + 1 : 0;
        size_t e = al == close_line ? close_col : raw.size();
        if (b < raw.size()) arg += raw.substr(b, e - b);
      }
      arg = Trim(arg);
      size_t q1 = arg.find('"');
      if (q1 == std::string::npos) {
        if (!f.IsSuppressed(kFaultSites, li)) {
          findings.push_back(
              {kFaultSites, f.path(), li,
               "SEMITRI_FAULT_FIRE argument has no string literal — the "
               "site name cannot be statically registered; use a literal "
               "(or a literal prefix) or suppress with a reason"});
        }
        continue;
      }
      size_t q2 = arg.find('"', q1 + 1);
      if (q2 == std::string::npos) continue;
      std::string literal = arg.substr(q1 + 1, q2 - q1 - 1);
      bool whole_arg = q1 == 0 && q2 == arg.size() - 1;
      sites.push_back({literal, /*prefix=*/!whole_arg, f.path(), li});
    }
  }

  // 2. Duplicate site names: each name must identify one code location.
  std::map<std::string, const ExtractedSite*> first_seen;
  for (const ExtractedSite& site : sites) {
    auto [it, inserted] = first_seen.emplace(site.name, &site);
    if (!inserted) {
      findings.push_back(
          {kFaultSites, site.file, site.line,
           "duplicate fault site `" + site.name + "` (first fired at " +
               it->second->file + ":" + std::to_string(it->second->line) +
               ") — kill-at-site recovery coverage needs unique names"});
    }
  }

  // 3. Cross-check against the checked-in registry.
  const SourceFile* registry_file = corpus.Find(kRegistryPath);
  if (registry_file == nullptr) {
    findings.push_back({kFaultSites, kRegistryPath, 1,
                        "fault-site registry header is missing"});
    SortFindings(&findings);
    return findings;
  }
  static const std::regex kEntry(
      R"rx(\{\s*"([^"]+)"\s*,\s*(true|false)\s*\})rx");
  std::map<std::string, bool> registry;  // name -> prefix?
  for (size_t li = 1; li <= registry_file->line_count(); ++li) {
    const std::string& raw = registry_file->raw_line(li);
    std::smatch m;
    std::string text = raw;
    if (std::regex_search(text, m, kEntry)) {
      registry[m[1].str()] = m[2].str() == "true";
    }
  }
  for (const ExtractedSite& site : sites) {
    auto it = registry.find(site.name);
    if (it == registry.end() || it->second != site.prefix) {
      findings.push_back(
          {kFaultSites, site.file, site.line,
           "fault site `" + site.name + "` (" +
               (site.prefix ? "prefix" : "exact") +
               ") is not registered in " + kRegistryPath +
               " — add it so recovery_test's kill-at-site sweep covers "
               "it"});
    }
  }
  // Stale registry entries: every registered name must still appear as
  // a string literal somewhere in src/ (dynamic sites pass their names
  // through variables, so match literals, not just extraction results).
  for (const auto& [name, prefix] : registry) {
    bool found = false;
    std::string quoted = "\"" + name + "\"";
    for (const SourceFile& f : corpus.files) {
      if (!StartsWith(f.path(), "src/")) continue;
      if (&f == registry_file) continue;  // its own entry is not a use
      for (size_t li = 1; li <= f.line_count() && !found; ++li) {
        if (f.raw_line(li).find(quoted) != std::string::npos) found = true;
      }
      if (found) break;
    }
    if (!found) {
      findings.push_back(
          {kFaultSites, std::string(kRegistryPath), 1,
           "registry entry `" + name +
               "` no longer matches any string literal in src/ — remove "
               "the stale entry"});
    }
  }

  // 4. recovery_test must assert the registry against the runtime
  // discovery (fi.Sites()), so registration implies kill-at-site
  // coverage.
  const SourceFile* recovery = corpus.Find(kRecoveryTestPath);
  if (recovery == nullptr) {
    findings.push_back({kFaultSites, kRecoveryTestPath, 1,
                        "tests/recovery_test.cc not found in the corpus — "
                        "the kill-at-site harness is gone?"});
  } else {
    bool includes_registry = false;
    for (size_t li = 1; li <= recovery->line_count(); ++li) {
      if (recovery->raw_line(li).find("common/fault_sites.h") !=
          std::string::npos) {
        includes_registry = true;
        break;
      }
    }
    if (!includes_registry) {
      findings.push_back(
          {kFaultSites, kRecoveryTestPath, 1,
           "recovery_test.cc does not include common/fault_sites.h — it "
           "must assert discovered sites against the registry so "
           "registration implies kill-at-site coverage"});
    }
  }

  // 5. Self-healing coverage is mandatory: while the failover/detector
  // machinery exists, its fault sites must stay registered — even if a
  // refactor routes the FIRE call through a computed name, which the
  // literal extraction in step 1 cannot see. Each required site is
  // tied to the file that owns it; the requirement applies while that
  // file is in the corpus.
  struct RequiredSite {
    const char* site;
    const char* owner;
  };
  static constexpr RequiredSite kRequiredSites[] = {
      {"detector_probe", "src/shard/failure_detector.cc"},
      {"failover_promote", "src/shard/cluster.cc"},
  };
  for (const RequiredSite& required : kRequiredSites) {
    if (corpus.Find(required.owner) == nullptr) continue;
    if (registry.find(required.site) == registry.end()) {
      findings.push_back(
          {kFaultSites, std::string(kRegistryPath), 1,
           "required fault site `" + std::string(required.site) + "` (" +
               required.owner + ") is missing from the registry — the "
               "self-healing path must stay in the kill-at-site sweep"});
    }
  }
  return findings;
}

// ---------------------------------------------------------------------
// hot-path-alloc
// ---------------------------------------------------------------------

constexpr char kHotPathAlloc[] = "hot-path-alloc";

// The data-plane TUs whose steady state must not allocate (DESIGN.md
// "Data plane layout"): the three hot loops (map matching, POI
// emission/decode, move annotation) plus the observation-model
// precompute they share. Nested vector-of-vectors layouts and
// per-iteration container construction are findings here; everything
// transient comes from the run's AnnotationScratch/Arena instead.
bool InHotPathAllocScope(const std::string& path) {
  if (!StartsWith(path, "src/")) return false;
  static const char* kBasenames[] = {
      "/hmm.cc", "/map_matcher.cc", "/line_annotator.cc",
      "/point_annotator.cc", "/observation_model.cc"};
  for (const char* base : kBasenames) {
    if (EndsWith(path, base)) return true;
  }
  return false;
}

// A by-value container declaration at the start of a statement.
// Reference bindings (`const std::vector<T>& row = ...`) alias
// existing storage and are fine.
bool IsContainerDeclaration(const std::string& code) {
  static const std::regex kDecl(
      R"(^\s*(const\s+)?(std::)?(vector|unordered_map|unordered_set|map|set|deque)\s*<)");
  if (!std::regex_search(code, kDecl)) return false;
  return code.find(">&") == std::string::npos &&
         code.find("> &") == std::string::npos;
}

std::vector<Finding> HotPathAllocImpl(const Corpus& corpus) {
  std::vector<Finding> findings;
  for (const SourceFile& f : corpus.files) {
    if (!InHotPathAllocScope(f.path())) continue;

    // Rule 1: no vector-of-vectors layouts anywhere in the TU. The
    // data plane stores matrices flat (EmissionMatrix, the CSR
    // candidate table); a nested layout re-introduces one allocation
    // and one pointer chase per row.
    for (size_t li = 1; li <= f.line_count(); ++li) {
      const std::string& code = f.code_line(li);
      size_t at = code.find("std::vector<std::vector<");
      if (at == std::string::npos) continue;
      if (code.find(">&", at) != std::string::npos ||
          code.find("> &", at) != std::string::npos) {
        continue;  // reference to a caller-owned nested shape
      }
      if (f.IsSuppressed(kHotPathAlloc, li)) continue;
      findings.push_back(
          {kHotPathAlloc, f.path(), li,
           "vector-of-vectors in a data-plane TU — store the matrix "
           "flat (row-major + stride, like EmissionMatrix), or "
           "suppress with a reason if this is a boundary API shape"});
    }

    // Rule 2: no container constructed inside a loop body — that is
    // one allocation per iteration. Hoist the declaration and
    // clear()/reuse its capacity, or take storage from the Arena.
    std::vector<size_t> flagged;
    for (const Loop& loop : CollectLoops(f, kHotPathAlloc)) {
      if (loop.suppressed) continue;
      for (size_t li = loop.body_first; li <= loop.body_last; ++li) {
        if (li == loop.header_line) continue;
        if (!IsContainerDeclaration(f.code_line(li))) continue;
        if (f.IsSuppressed(kHotPathAlloc, li)) continue;
        if (std::find(flagged.begin(), flagged.end(), li) !=
            flagged.end()) {
          continue;  // already reported via an enclosing loop
        }
        flagged.push_back(li);
        findings.push_back(
            {kHotPathAlloc, f.path(), li,
             "container constructed inside a loop in a data-plane TU — "
             "hoist it out of the loop and reuse its capacity "
             "(clear()/assign()), or allocate from the run's Arena"});
      }
    }
  }
  return findings;
}

// ---------------------------------------------------------------------
// raw-filesystem
// ---------------------------------------------------------------------

constexpr char kRawFilesystem[] = "raw-filesystem";

// Everything under src/ except the Env implementation itself must
// route file I/O through common::Env — that is what makes disk faults
// injectable (common::FaultFs) and keeps ENOSPC/EIO/fsync failures
// surfacing as Status instead of being swallowed by an unchecked
// stream state. The Env implementation (src/common/env.*) is the one
// sanctioned home for raw syscalls.
bool InRawFilesystemScope(const std::string& path) {
  if (!StartsWith(path, "src/")) return false;
  if (StartsWith(path, "src/common/env")) return false;
  return true;
}

std::vector<Finding> RawFilesystemImpl(const Corpus& corpus) {
  struct Token {
    const char* text;
    const char* what;
  };
  // Matched on the comment/string-blanked code view, so mentions in
  // doc comments and error messages never trip the check.
  static const Token kTokens[] = {
      {"::open(", "raw ::open()"},
      {"::fsync(", "raw ::fsync()"},
      {"std::ofstream", "std::ofstream"},
      {"std::ifstream", "std::ifstream"},
      {"std::fstream", "std::fstream"},
      {"std::filesystem", "std::filesystem"},
  };
  std::vector<Finding> findings;
  for (const SourceFile& f : corpus.files) {
    if (!InRawFilesystemScope(f.path())) continue;
    for (size_t li = 1; li <= f.line_count(); ++li) {
      const std::string& code = f.code_line(li);
      for (const Token& t : kTokens) {
        if (code.find(t.text) == std::string::npos) continue;
        if (f.IsSuppressed(kRawFilesystem, li)) break;
        findings.push_back(
            {kRawFilesystem, f.path(), li,
             std::string(t.what) +
                 " in src/ — route file I/O through common::Env "
                 "(src/common/env.h) so disk faults stay injectable and "
                 "write/fsync failures surface as Status"});
        break;  // one finding per line is enough
      }
    }
  }
  return findings;
}

}  // namespace

// ---------------------------------------------------------------------
// driver
// ---------------------------------------------------------------------

std::vector<std::string> AllCheckNames() {
  return {kUncheckedStatus, kExecCheckpoint, kGuardedBy, kFaultSites,
          kHotPathAlloc, kRawFilesystem};
}

std::vector<Finding> CheckUncheckedStatus(const Corpus& corpus) {
  std::vector<Finding> findings = UncheckedStatusImpl(corpus);
  SortFindings(&findings);
  return findings;
}

std::vector<Finding> CheckExecCheckpointCoverage(const Corpus& corpus) {
  std::vector<Finding> findings = ExecCheckpointImpl(corpus);
  SortFindings(&findings);
  return findings;
}

std::vector<Finding> CheckGuardedByCompleteness(const Corpus& corpus) {
  std::vector<Finding> findings = GuardedByImpl(corpus);
  SortFindings(&findings);
  return findings;
}

std::vector<Finding> CheckFaultSiteRegistry(const Corpus& corpus) {
  std::vector<Finding> findings = FaultSitesImpl(corpus);
  SortFindings(&findings);
  return findings;
}

std::vector<Finding> CheckHotPathAlloc(const Corpus& corpus) {
  std::vector<Finding> findings = HotPathAllocImpl(corpus);
  SortFindings(&findings);
  return findings;
}

std::vector<Finding> CheckRawFilesystem(const Corpus& corpus) {
  std::vector<Finding> findings = RawFilesystemImpl(corpus);
  SortFindings(&findings);
  return findings;
}

std::vector<Finding> RunChecks(const Corpus& corpus,
                               const std::vector<std::string>& checks) {
  std::vector<std::string> selected = checks;
  if (selected.empty()) selected = AllCheckNames();

  std::vector<Finding> findings;
  for (const std::string& check : selected) {
    std::vector<Finding> batch;
    if (check == kUncheckedStatus) {
      batch = UncheckedStatusImpl(corpus);
    } else if (check == kExecCheckpoint) {
      batch = ExecCheckpointImpl(corpus);
    } else if (check == kGuardedBy) {
      batch = GuardedByImpl(corpus);
    } else if (check == kFaultSites) {
      batch = FaultSitesImpl(corpus);
    } else if (check == kHotPathAlloc) {
      batch = HotPathAllocImpl(corpus);
    } else if (check == kRawFilesystem) {
      batch = RawFilesystemImpl(corpus);
    } else {
      batch.push_back({"driver", "<args>", 0,
                       "unknown check `" + check + "`; known: " +
                           [&] {
                             std::string all;
                             for (const std::string& n : AllCheckNames()) {
                               if (!all.empty()) all += ", ";
                               all += n;
                             }
                             return all;
                           }()});
    }
    findings.insert(findings.end(), batch.begin(), batch.end());
  }
  // Malformed suppressions are findings regardless of check selection:
  // a waiver without a reason must never silently hold.
  for (const SourceFile& f : corpus.files) {
    const std::vector<Finding>& bad = f.malformed_suppressions();
    findings.insert(findings.end(), bad.begin(), bad.end());
  }
  SortFindings(&findings);
  return findings;
}

}  // namespace semitri::lint
