// Fixture tests for the semitri-lint checker suite. Each check gets a
// must-flag fixture, a must-pass fixture, and a suppression case; the
// fixtures live in testdata/ and are loaded with synthetic in-scope
// repo paths (the checks scope themselves by path, e.g. guarded-by
// audits src/ only).

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "checks.h"
#include "lint_util.h"

namespace semitri::lint {
namespace {

SourceFile LoadFixture(const std::string& file, const std::string& as_path) {
  auto loaded = SourceFile::Load(
      std::string(SEMITRI_LINT_TESTDATA_DIR) + "/" + file, as_path);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return std::move(loaded).value();
}

size_t CountOnLine(const std::vector<Finding>& findings,
                   const std::string& file, size_t line) {
  return std::count_if(findings.begin(), findings.end(),
                       [&](const Finding& f) {
                         return f.file == file && f.line == line;
                       });
}

size_t LineOfMarker(const SourceFile& f, const std::string& marker) {
  for (size_t li = 1; li <= f.line_count(); ++li) {
    if (f.raw_line(li).find(marker) != std::string::npos) return li;
  }
  ADD_FAILURE() << "marker not found: " << marker;
  return 0;
}

TEST(UncheckedStatusTest, FlagsDroppedStatuses) {
  Corpus corpus;
  corpus.files.push_back(
      LoadFixture("unchecked_status_bad.cc", "src/fixture/bad_status.cc"));
  const SourceFile& f = corpus.files[0];
  std::vector<Finding> findings = CheckUncheckedStatus(corpus);

  // Four drops: plain, qualified, Result, and inside a macro body.
  EXPECT_EQ(findings.size(), 4u);
  EXPECT_EQ(CountOnLine(findings, f.path(),
                        LineOfMarker(f, "DoWork();  // FLAG: whole")),
            1u);
  EXPECT_EQ(CountOnLine(findings, f.path(),
                        LineOfMarker(f, "fixture::DoWork();")),
            1u);
  EXPECT_EQ(CountOnLine(findings, f.path(),
                        LineOfMarker(f, "ParseCount(text);")),
            1u);
  EXPECT_EQ(CountOnLine(findings, f.path(),
                        LineOfMarker(f, "DoWork();                      \\")),
            1u);
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.check, "unchecked-status");
  }
}

TEST(UncheckedStatusTest, PassesConsumedAndSuppressed) {
  Corpus corpus;
  corpus.files.push_back(
      LoadFixture("unchecked_status_good.cc", "src/fixture/good_status.cc"));
  EXPECT_TRUE(CheckUncheckedStatus(corpus).empty());
}

TEST(UncheckedStatusTest, ReasonlessSuppressionIsNotHonored) {
  Corpus corpus;
  corpus.files.push_back(LoadFixture("suppression_bad.cc",
                                     "src/fixture/suppression_bad.cc"));
  // The drop is still reported (the waiver has no reason)...
  EXPECT_EQ(CheckUncheckedStatus(corpus).size(), 1u);
  // ...and RunChecks additionally reports the malformed waiver itself.
  std::vector<Finding> all = RunChecks(corpus, {"unchecked-status"});
  EXPECT_EQ(all.size(), 2u);
  EXPECT_TRUE(std::any_of(all.begin(), all.end(), [](const Finding& f) {
    return f.check == "suppression";
  }));
}

TEST(ExecCheckpointTest, FlagsUnpolledLoopAndIgnoredExec) {
  Corpus corpus;
  corpus.files.push_back(
      LoadFixture("exec_checkpoint_bad.cc", "src/hmm/hmm.cc"));
  const SourceFile& f = corpus.files[0];
  std::vector<Finding> findings = CheckExecCheckpointCoverage(corpus);

  EXPECT_EQ(findings.size(), 2u);
  EXPECT_EQ(CountOnLine(findings, f.path(),
                        LineOfMarker(f, "t < emissions.size()")),
            1u);
  EXPECT_EQ(CountOnLine(findings, f.path(), LineOfMarker(f, "IgnoredExec")),
            1u);
}

TEST(ExecCheckpointTest, OutOfScopePathIsIgnored) {
  Corpus corpus;
  // The same bad fixture under a non-designated TU: no findings.
  corpus.files.push_back(
      LoadFixture("exec_checkpoint_bad.cc", "src/traj/segmentation.cc"));
  EXPECT_TRUE(CheckExecCheckpointCoverage(corpus).empty());
}

TEST(ExecCheckpointTest, PassesPolledEnclosingAndSuppressed) {
  Corpus corpus;
  corpus.files.push_back(
      LoadFixture("exec_checkpoint_good.cc", "src/road/map_matcher.cc"));
  EXPECT_TRUE(CheckExecCheckpointCoverage(corpus).empty());
}

TEST(GuardedByTest, FlagsUnannotatedMemberNextToMutex) {
  Corpus corpus;
  corpus.files.push_back(
      LoadFixture("guarded_by_bad.h", "src/fixture/guarded_bad.h"));
  const SourceFile& f = corpus.files[0];
  std::vector<Finding> findings = CheckGuardedByCompleteness(corpus);

  EXPECT_EQ(findings.size(), 1u);
  EXPECT_EQ(CountOnLine(findings, f.path(), LineOfMarker(f, "total_puts_")),
            1u);
  EXPECT_EQ(findings[0].check, "guarded-by-completeness");
}

TEST(GuardedByTest, PassesAnnotatedExemptAndSuppressed) {
  Corpus corpus;
  corpus.files.push_back(
      LoadFixture("guarded_by_good.h", "src/fixture/guarded_good.h"));
  EXPECT_TRUE(CheckGuardedByCompleteness(corpus).empty());
}

TEST(GuardedByTest, TestFilesAreOutOfScope) {
  Corpus corpus;
  // guarded-by audits the library only: the same class in tests/ is
  // not a finding.
  corpus.files.push_back(
      LoadFixture("guarded_by_bad.h", "tests/guarded_bad.h"));
  EXPECT_TRUE(CheckGuardedByCompleteness(corpus).empty());
}

Corpus FaultCorpus(const std::string& src_fixture,
                   const std::string& registry_fixture) {
  Corpus corpus;
  corpus.files.push_back(
      LoadFixture(src_fixture, "src/fixture/sites.cc"));
  corpus.files.push_back(
      LoadFixture(registry_fixture, "src/common/fault_sites.h"));
  corpus.files.push_back(LoadFixture("fault_sites_recovery_test.cc",
                                     "tests/recovery_test.cc"));
  return corpus;
}

TEST(FaultSiteTest, FlagsRogueDuplicateAndDynamicSites) {
  Corpus corpus =
      FaultCorpus("fault_sites_bad.cc", "fault_sites_registry.h");
  const SourceFile& f = corpus.files[0];
  std::vector<Finding> findings = CheckFaultSiteRegistry(corpus);

  EXPECT_EQ(findings.size(), 3u);
  EXPECT_EQ(CountOnLine(findings, f.path(), LineOfMarker(f, "rogue_site")),
            1u);
  EXPECT_EQ(CountOnLine(findings, f.path(),
                        LineOfMarker(f, "// FLAG: duplicate")),
            1u);
  EXPECT_EQ(CountOnLine(findings, f.path(),
                        LineOfMarker(f, "// FLAG: no literal")),
            1u);
}

TEST(FaultSiteTest, FlagsStaleRegistryEntry) {
  Corpus corpus =
      FaultCorpus("fault_sites_good.cc", "fault_sites_registry_stale.h");
  std::vector<Finding> findings = CheckFaultSiteRegistry(corpus);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("stale_site"), std::string::npos);
}

TEST(FaultSiteTest, FlagsMissingRegistryInclude) {
  Corpus corpus;
  corpus.files.push_back(
      LoadFixture("fault_sites_good.cc", "src/fixture/sites.cc"));
  corpus.files.push_back(
      LoadFixture("fault_sites_registry.h", "src/common/fault_sites.h"));
  // No recovery_test in the corpus at all.
  std::vector<Finding> findings = CheckFaultSiteRegistry(corpus);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "tests/recovery_test.cc");
}

TEST(FaultSiteTest, PassesRegisteredPrefixAndSuppressed) {
  Corpus corpus =
      FaultCorpus("fault_sites_good.cc", "fault_sites_registry.h");
  EXPECT_TRUE(CheckFaultSiteRegistry(corpus).empty());
}

TEST(FaultSiteTest, RequiresSelfHealingSitesWhileOwnerExists) {
  // The owning file is present but fires nothing the extractor can see
  // (the refactored-to-computed-name hazard); the registry lacks the
  // required failover_promote entry, which must be a finding anyway.
  Corpus corpus =
      FaultCorpus("fault_sites_good.cc", "fault_sites_registry.h");
  corpus.files.push_back(
      LoadFixture("unchecked_status_good.cc", "src/shard/cluster.cc"));
  std::vector<Finding> findings = CheckFaultSiteRegistry(corpus);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/common/fault_sites.h");
  EXPECT_NE(findings[0].message.find("failover_promote"), std::string::npos);
}

TEST(RunChecksTest, UnknownCheckNameIsReported) {
  Corpus corpus;
  corpus.files.push_back(
      LoadFixture("unchecked_status_good.cc", "src/fixture/good_status.cc"));
  std::vector<Finding> findings = RunChecks(corpus, {"no-such-check"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "driver");
}

TEST(RunChecksTest, DeterministicOrder) {
  Corpus corpus;
  corpus.files.push_back(
      LoadFixture("unchecked_status_bad.cc", "src/fixture/bad_status.cc"));
  std::vector<Finding> first = RunChecks(corpus, {});
  std::vector<Finding> second = RunChecks(corpus, {});
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].ToString(), second[i].ToString());
  }
  for (size_t i = 1; i < first.size(); ++i) {
    EXPECT_LE(first[i - 1].file, first[i].file);
  }
}

TEST(HotPathAllocTest, FlagsNestedVectorsAndPerIterationContainers) {
  Corpus corpus;
  corpus.files.push_back(
      LoadFixture("hot_path_alloc_bad.cc", "src/hmm/hmm.cc"));
  const SourceFile& f = corpus.files[0];
  std::vector<Finding> findings = CheckHotPathAlloc(corpus);

  // Two nested-vector lines, two per-iteration constructions.
  EXPECT_EQ(findings.size(), 4u);
  EXPECT_EQ(CountOnLine(findings, f.path(),
                        LineOfMarker(f, "FLAG: nested return type")),
            1u);
  EXPECT_EQ(CountOnLine(findings, f.path(),
                        LineOfMarker(f, "FLAG: nested local")),
            1u);
  EXPECT_EQ(CountOnLine(findings, f.path(),
                        LineOfMarker(f, "FLAG: constructed every")),
            1u);
  EXPECT_EQ(CountOnLine(findings, f.path(),
                        LineOfMarker(f, "FLAG: per-iteration map")),
            1u);
}

TEST(HotPathAllocTest, OutOfScopePathIsIgnored) {
  // The check governs the data-plane TUs only; the same content in a
  // non-hot file (or under tests/) is not audited.
  Corpus corpus;
  corpus.files.push_back(
      LoadFixture("hot_path_alloc_bad.cc", "src/traj/segmentation.cc"));
  EXPECT_TRUE(CheckHotPathAlloc(corpus).empty());
  corpus.files.clear();
  corpus.files.push_back(
      LoadFixture("hot_path_alloc_bad.cc", "tests/some_test.cc"));
  EXPECT_TRUE(CheckHotPathAlloc(corpus).empty());
}

TEST(HotPathAllocTest, PassesHoistedReferenceAndSuppressed) {
  Corpus corpus;
  corpus.files.push_back(
      LoadFixture("hot_path_alloc_good.cc", "src/road/map_matcher.cc"));
  std::vector<Finding> findings = CheckHotPathAlloc(corpus);
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(RawFilesystemTest, FlagsSyscallsStreamsAndFilesystemNamespace) {
  Corpus corpus;
  corpus.files.push_back(
      LoadFixture("raw_filesystem_bad.cc", "src/store/some_store.cc"));
  const SourceFile& f = corpus.files[0];
  std::vector<Finding> findings = CheckRawFilesystem(corpus);

  // ::open, ::fsync, each stream class, and std::filesystem.
  EXPECT_EQ(findings.size(), 6u);
  EXPECT_EQ(CountOnLine(findings, f.path(),
                        LineOfMarker(f, "FLAG: raw open")),
            1u);
  EXPECT_EQ(CountOnLine(findings, f.path(),
                        LineOfMarker(f, "FLAG: raw fsync")),
            1u);
  EXPECT_EQ(CountOnLine(findings, f.path(),
                        LineOfMarker(f, "FLAG: ofstream")),
            1u);
  EXPECT_EQ(CountOnLine(findings, f.path(),
                        LineOfMarker(f, "FLAG: ifstream")),
            1u);
  EXPECT_EQ(CountOnLine(findings, f.path(),
                        LineOfMarker(f, "FLAG: fstream")),
            1u);
  EXPECT_EQ(CountOnLine(findings, f.path(),
                        LineOfMarker(f, "FLAG: std::filesystem")),
            1u);
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.check, "raw-filesystem");
  }
}

TEST(RawFilesystemTest, EnvImplementationAndTestsAreOutOfScope) {
  // The Env implementation is the sanctioned home for raw syscalls,
  // and the check governs src/ only.
  Corpus corpus;
  corpus.files.push_back(
      LoadFixture("raw_filesystem_bad.cc", "src/common/env.cc"));
  EXPECT_TRUE(CheckRawFilesystem(corpus).empty());
  corpus.files.clear();
  corpus.files.push_back(
      LoadFixture("raw_filesystem_bad.cc", "src/common/env_posix.cc"));
  EXPECT_TRUE(CheckRawFilesystem(corpus).empty());
  corpus.files.clear();
  corpus.files.push_back(
      LoadFixture("raw_filesystem_bad.cc", "tests/some_test.cc"));
  EXPECT_TRUE(CheckRawFilesystem(corpus).empty());
}

TEST(RawFilesystemTest, PassesEnvRoutedCommentsStringsAndSuppressed) {
  Corpus corpus;
  corpus.files.push_back(
      LoadFixture("raw_filesystem_good.cc", "src/store/some_store.cc"));
  std::vector<Finding> findings = CheckRawFilesystem(corpus);
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(SuppressionTest, MultiLineReasonBlockStaysAttached) {
  SourceFile f("src/fixture/inline.cc",
               "// semitri-lint: allow(unchecked-status) — the reason\n"
               "// wraps onto a second comment line.\n"
               "DoWork();\n"
               "\n"
               "AlsoWork();\n");
  EXPECT_TRUE(f.IsSuppressed("unchecked-status", 3));
  // The blank line breaks the comment block: line 5 is not covered.
  EXPECT_FALSE(f.IsSuppressed("unchecked-status", 5));
  // A different check name is not covered either.
  EXPECT_FALSE(f.IsSuppressed("guarded-by-completeness", 3));
}

}  // namespace
}  // namespace semitri::lint
