// semitri_lint — the project-invariant checker driver.
//
// Usage:
//   semitri_lint --repo <dir> [--compile-commands <file>]
//                [--check <name>]... [--output <file>] [--list-checks]
//
// Walks src/, tests/, bench/, and tools/shardd/ under --repo for
// .h/.cc files, runs the selected checks (default: all; see checks.h),
// and prints one finding per line as `file:line: [check] message`.
//
// --compile-commands points at the build tree's compile_commands.json;
// the driver verifies it exists and covers the tests/ and bench/
// translation units, so the clang-tidy leg (tools/lint.sh) cannot
// silently lint only the library. It is otherwise advisory — the
// checks themselves are text-based and need no compilation database.
//
// Exit codes: 0 = clean, 1 = findings, 2 = driver error (bad flag,
// unreadable repo, stale compile_commands).

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "checks.h"
#include "lint_util.h"

namespace fs = std::filesystem;

namespace {

struct Options {
  std::string repo;
  std::string compile_commands;
  std::string output;
  std::vector<std::string> checks;
  bool list_checks = false;
};

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --repo <dir> [--compile-commands <file>]"
               " [--check <name>]... [--output <file>] [--list-checks]\n";
  return 2;
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--repo") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->repo = v;
    } else if (arg == "--compile-commands") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->compile_commands = v;
    } else if (arg == "--check") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->checks.push_back(v);
    } else if (arg == "--output") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->output = v;
    } else if (arg == "--list-checks") {
      opts->list_checks = true;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return false;
    }
  }
  return true;
}

// Collects repo-relative paths of every .h/.cc under the scanned roots,
// sorted so findings are deterministic.
std::vector<std::string> CollectPaths(const fs::path& repo) {
  static const char* kRoots[] = {"src", "tests", "bench", "tools/shardd"};
  std::vector<std::string> paths;
  for (const char* root : kRoots) {
    fs::path dir = repo / root;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (auto it = fs::recursive_directory_iterator(dir, ec);
         it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file()) continue;
      std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      paths.push_back(fs::relative(it->path(), repo).generic_string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

// Verifies the compilation database exists and mentions tests/ and
// bench/ TUs — i.e. it was generated from a tree where the clang-tidy
// leg sees the whole project, not just the library.
bool CheckCompileCommands(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot read compile_commands at " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  for (const char* needle : {"tests/", "bench/"}) {
    if (text.find(needle) == std::string::npos) {
      *error = std::string(path) + " covers no " + needle +
               " translation units — regenerate with "
               "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON from the top-level "
               "CMakeLists (tests and benchmarks must be linted too)";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) return Usage(argv[0]);

  if (opts.list_checks) {
    for (const std::string& name : semitri::lint::AllCheckNames()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (opts.repo.empty()) return Usage(argv[0]);

  for (const std::string& check : opts.checks) {
    const std::vector<std::string> known = semitri::lint::AllCheckNames();
    if (std::find(known.begin(), known.end(), check) == known.end()) {
      std::cerr << "unknown check: " << check << " (see --list-checks)\n";
      return 2;
    }
  }

  fs::path repo(opts.repo);
  std::error_code ec;
  if (!fs::is_directory(repo, ec)) {
    std::cerr << "not a directory: " << opts.repo << "\n";
    return 2;
  }

  if (!opts.compile_commands.empty()) {
    std::string error;
    if (!CheckCompileCommands(opts.compile_commands, &error)) {
      std::cerr << "semitri_lint: " << error << "\n";
      return 2;
    }
  }

  semitri::lint::Corpus corpus;
  for (const std::string& rel : CollectPaths(repo)) {
    auto loaded =
        semitri::lint::SourceFile::Load((repo / rel).string(), rel);
    if (!loaded.ok()) {
      std::cerr << "semitri_lint: " << loaded.status().ToString() << "\n";
      return 2;
    }
    corpus.files.push_back(std::move(loaded).value());
  }
  if (corpus.files.empty()) {
    std::cerr << "semitri_lint: no sources under " << opts.repo
              << "/{src,tests,bench}\n";
    return 2;
  }

  std::vector<semitri::lint::Finding> findings =
      semitri::lint::RunChecks(corpus, opts.checks);

  std::ostringstream report;
  for (const semitri::lint::Finding& f : findings) {
    report << f.ToString() << "\n";
  }
  std::cout << report.str();
  if (!findings.empty()) {
    std::cout << findings.size() << " finding(s)\n";
  }
  if (!opts.output.empty()) {
    std::ofstream out(opts.output, std::ios::binary | std::ios::trunc);
    out << report.str();
    if (!out) {
      std::cerr << "semitri_lint: cannot write " << opts.output << "\n";
      return 2;
    }
  }
  return findings.empty() ? 0 : 1;
}
