// Tests for the bench_compare gating logic: flat-JSON parsing, gated
// ratio thresholds, and the exactly-zero contract.

#include "bench_compare.h"

#include <gtest/gtest.h>

namespace semitri::benchcompare {
namespace {

TEST(ParseFlatJsonTest, ParsesReporterOutput) {
  FlatJson record;
  ASSERT_TRUE(ParseFlatJson(
      "{\n  \"schema_version\": 1,\n  \"bench\": \"fig10\",\n"
      "  \"kernel_speedup\": 1.77,\n  \"gated_ratios\": \"kernel_speedup\"\n}\n",
      &record));
  EXPECT_EQ(record.at("schema_version"), "1");
  EXPECT_EQ(record.at("bench"), "fig10");
  EXPECT_EQ(record.at("kernel_speedup"), "1.77");
  EXPECT_EQ(record.at("gated_ratios"), "kernel_speedup");
}

TEST(ParseFlatJsonTest, HandlesEscapesAndEmptyObject) {
  FlatJson record;
  ASSERT_TRUE(ParseFlatJson("{\"k\": \"a\\\"b\\\\c\"}", &record));
  EXPECT_EQ(record.at("k"), "a\"b\\c");
  ASSERT_TRUE(ParseFlatJson("{ }", &record));
  EXPECT_TRUE(record.empty());
}

TEST(ParseFlatJsonTest, RejectsMalformed) {
  FlatJson record;
  EXPECT_FALSE(ParseFlatJson("", &record));
  EXPECT_FALSE(ParseFlatJson("[1, 2]", &record));
  EXPECT_FALSE(ParseFlatJson("{\"k\": }", &record));
  EXPECT_FALSE(ParseFlatJson("{\"k\" 1}", &record));
  EXPECT_FALSE(ParseFlatJson("{\"k\": 1", &record));
}

TEST(SplitKeysTest, SplitsCommaLists) {
  EXPECT_TRUE(SplitKeys("").empty());
  EXPECT_EQ(SplitKeys("a"), (std::vector<std::string>{"a"}));
  EXPECT_EQ(SplitKeys("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
}

FlatJson Record(double speedup, double zeros) {
  FlatJson record;
  record["bench"] = "demo";
  record["kernel_speedup"] = std::to_string(speedup);
  record["steady_allocs"] = std::to_string(zeros);
  record["gated_ratios"] = "kernel_speedup";
  record["gated_zeros"] = "steady_allocs";
  return record;
}

TEST(CompareRecordsTest, PassesWithinThreshold) {
  std::vector<Finding> findings;
  // 4% below baseline is within the 5% gate.
  EXPECT_EQ(CompareRecords("demo", Record(2.0, 0), Record(1.92, 0), 0.05,
                           &findings),
            0);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_FALSE(findings[0].regression);
  EXPECT_FALSE(findings[1].regression);
}

TEST(CompareRecordsTest, FailsBelowThreshold) {
  std::vector<Finding> findings;
  EXPECT_EQ(CompareRecords("demo", Record(2.0, 0), Record(1.8, 0), 0.05,
                           &findings),
            1);
  EXPECT_TRUE(findings[0].regression);
}

TEST(CompareRecordsTest, ImprovementAlwaysPasses) {
  std::vector<Finding> findings;
  EXPECT_EQ(CompareRecords("demo", Record(2.0, 0), Record(3.5, 0), 0.05,
                           &findings),
            0);
}

TEST(CompareRecordsTest, NonZeroCounterFails) {
  std::vector<Finding> findings;
  EXPECT_EQ(CompareRecords("demo", Record(2.0, 0), Record(2.0, 1), 0.05,
                           &findings),
            1);
  EXPECT_TRUE(findings[1].regression);
  // The baseline's own value is irrelevant: zero is an absolute gate.
  findings.clear();
  EXPECT_EQ(CompareRecords("demo", Record(2.0, 7), Record(2.0, 0), 0.05,
                           &findings),
            0);
}

TEST(CompareRecordsTest, MissingCandidateKeyFails) {
  FlatJson candidate = Record(2.0, 0);
  candidate.erase("kernel_speedup");
  std::vector<Finding> findings;
  EXPECT_EQ(CompareRecords("demo", Record(2.0, 0), candidate, 0.05,
                           &findings),
            1);
}

TEST(CompareRecordsTest, UngatedRecordComparesNothing) {
  FlatJson baseline;
  baseline["bench"] = "plain";
  baseline["wall_ns"] = "123";
  std::vector<Finding> findings;
  EXPECT_EQ(CompareRecords("plain", baseline, baseline, 0.05, &findings), 0);
  EXPECT_TRUE(findings.empty());
}

}  // namespace
}  // namespace semitri::benchcompare
