#ifndef SEMITRI_TOOLS_BENCH_COMPARE_BENCH_COMPARE_H_
#define SEMITRI_TOOLS_BENCH_COMPARE_BENCH_COMPARE_H_

// bench_compare: diffs two sets of BENCH_<name>.json run records (the
// flat-JSON files BenchReporter writes) and fails on perf regressions.
//
// Only *gated* metrics are compared — the keys each record names in its
// `gated_ratios` / `gated_zeros` lists:
//   gated_ratios  higher-is-better, machine-relative ratios (batched
//                 kernel vs. in-process scalar reference). A candidate
//                 regresses when it drops more than `threshold` (default
//                 5%) below the committed baseline value.
//   gated_zeros   counters that must be exactly zero in the candidate
//                 (the steady-state-allocation contract); the baseline
//                 value is irrelevant.
// Wall-clock sections are recorded for humans but never gated: absolute
// times do not transfer between the machine that committed the baseline
// and the machine running CI.

#include <map>
#include <string>
#include <vector>

namespace semitri::benchcompare {

// One flat JSON object: key -> raw value text ("1.77", "\"abc\"").
using FlatJson = std::map<std::string, std::string>;

// Parses the single flat object emitted by benchutil::JsonWriter
// (string or numeric values, no nesting). Returns false on malformed
// input; *out holds the pairs parsed so far.
bool ParseFlatJson(const std::string& text, FlatJson* out);

// Splits a comma-joined key list ("a,b,c"); empty string -> empty list.
std::vector<std::string> SplitKeys(const std::string& list);

struct Finding {
  std::string bench;
  std::string key;
  double baseline = 0.0;
  double candidate = 0.0;
  bool regression = false;  // vs. informational pass line
  std::string detail;
};

// Compares one baseline record against its candidate. Appends one
// Finding per gated key (pass or fail). Returns the number of
// regressions found; missing keys and unparsable values count as
// regressions.
int CompareRecords(const std::string& bench, const FlatJson& baseline,
                   const FlatJson& candidate, double threshold,
                   std::vector<Finding>* findings);

// Scans `baseline_dir` for BENCH_*.json, pairs each with the same file
// name under `candidate_dir`, compares, and prints a table to stdout.
// Returns the process exit code: 0 when every gate holds, 1 on any
// regression, missing candidate file, or parse failure.
int RunBenchCompare(const std::string& baseline_dir,
                    const std::string& candidate_dir, double threshold);

}  // namespace semitri::benchcompare

#endif  // SEMITRI_TOOLS_BENCH_COMPARE_BENCH_COMPARE_H_
