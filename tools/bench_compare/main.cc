// CLI: bench_compare <baseline_dir> <candidate_dir> [--threshold 0.05]
//
// Exit 0 when every gated metric in the baseline's BENCH_*.json records
// holds in the candidate set, 1 otherwise. CI's perf-gate job runs this
// with the repo root (committed baselines) against a fresh bench run.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_compare.h"

int main(int argc, char** argv) {
  const char* baseline = nullptr;
  const char* candidate = nullptr;
  double threshold = 0.05;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
      if (threshold <= 0.0 || threshold >= 1.0) {
        std::fprintf(stderr, "--threshold must be in (0, 1)\n");
        return 2;
      }
    } else if (baseline == nullptr) {
      baseline = argv[i];
    } else if (candidate == nullptr) {
      candidate = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (baseline == nullptr || candidate == nullptr) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline_dir> <candidate_dir> "
                 "[--threshold 0.05]\n");
    return 2;
  }
  return semitri::benchcompare::RunBenchCompare(baseline, candidate,
                                                threshold);
}
