#include "bench_compare.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace semitri::benchcompare {

namespace {

void SkipWhitespace(const std::string& text, size_t* i) {
  while (*i < text.size() &&
         (text[*i] == ' ' || text[*i] == '\n' || text[*i] == '\t' ||
          text[*i] == '\r')) {
    ++(*i);
  }
}

// Reads a quoted string starting at text[*i] == '"'; unescapes \" and
// \\ (the only escapes JsonWriter emits).
bool ReadQuoted(const std::string& text, size_t* i, std::string* out) {
  if (*i >= text.size() || text[*i] != '"') return false;
  ++(*i);
  out->clear();
  while (*i < text.size() && text[*i] != '"') {
    if (text[*i] == '\\' && *i + 1 < text.size()) ++(*i);
    *out += text[(*i)++];
  }
  if (*i >= text.size()) return false;
  ++(*i);  // closing quote
  return true;
}

}  // namespace

bool ParseFlatJson(const std::string& text, FlatJson* out) {
  out->clear();
  size_t i = 0;
  SkipWhitespace(text, &i);
  if (i >= text.size() || text[i] != '{') return false;
  ++i;
  SkipWhitespace(text, &i);
  if (i < text.size() && text[i] == '}') return true;  // empty object
  while (true) {
    SkipWhitespace(text, &i);
    std::string key;
    if (!ReadQuoted(text, &i, &key)) return false;
    SkipWhitespace(text, &i);
    if (i >= text.size() || text[i] != ':') return false;
    ++i;
    SkipWhitespace(text, &i);
    std::string value;
    if (i < text.size() && text[i] == '"') {
      if (!ReadQuoted(text, &i, &value)) return false;
    } else {
      size_t start = i;
      while (i < text.size() && text[i] != ',' && text[i] != '}' &&
             text[i] != ' ' && text[i] != '\n') {
        ++i;
      }
      value = text.substr(start, i - start);
      if (value.empty()) return false;
    }
    (*out)[key] = value;
    SkipWhitespace(text, &i);
    if (i >= text.size()) return false;
    if (text[i] == ',') {
      ++i;
      continue;
    }
    if (text[i] == '}') return true;
    return false;
  }
}

std::vector<std::string> SplitKeys(const std::string& list) {
  std::vector<std::string> keys;
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    if (comma > start) keys.push_back(list.substr(start, comma - start));
    start = comma + 1;
  }
  return keys;
}

namespace {

bool GetDouble(const FlatJson& record, const std::string& key, double* out) {
  auto it = record.find(key);
  if (it == record.end()) return false;
  char* end = nullptr;
  *out = std::strtod(it->second.c_str(), &end);
  return end != it->second.c_str();
}

std::string GetString(const FlatJson& record, const std::string& key) {
  auto it = record.find(key);
  return it == record.end() ? std::string() : it->second;
}

}  // namespace

int CompareRecords(const std::string& bench, const FlatJson& baseline,
                   const FlatJson& candidate, double threshold,
                   std::vector<Finding>* findings) {
  int regressions = 0;
  auto add = [&](const std::string& key, double base, double cand,
                 bool regression, std::string detail) {
    Finding f;
    f.bench = bench;
    f.key = key;
    f.baseline = base;
    f.candidate = cand;
    f.regression = regression;
    f.detail = std::move(detail);
    findings->push_back(std::move(f));
    if (regression) ++regressions;
  };
  for (const std::string& key : SplitKeys(GetString(baseline, "gated_ratios"))) {
    double base = 0.0;
    double cand = 0.0;
    if (!GetDouble(baseline, key, &base)) {
      add(key, 0.0, 0.0, true, "baseline value missing or not numeric");
      continue;
    }
    if (!GetDouble(candidate, key, &cand)) {
      add(key, base, 0.0, true, "candidate value missing or not numeric");
      continue;
    }
    double floor = base * (1.0 - threshold);
    if (cand < floor) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "below %.4g (baseline - %.0f%%)",
                    floor, threshold * 100.0);
      add(key, base, cand, true, buf);
    } else {
      add(key, base, cand, false, "ok");
    }
  }
  for (const std::string& key : SplitKeys(GetString(baseline, "gated_zeros"))) {
    double cand = 0.0;
    if (!GetDouble(candidate, key, &cand)) {
      add(key, 0.0, 0.0, true, "candidate value missing or not numeric");
      continue;
    }
    if (cand != 0.0) {
      add(key, 0.0, cand, true, "must be exactly 0");
    } else {
      add(key, 0.0, cand, false, "ok");
    }
  }
  return regressions;
}

namespace {

bool ReadFile(const std::filesystem::path& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int RunBenchCompare(const std::string& baseline_dir,
                    const std::string& candidate_dir, double threshold) {
  namespace fs = std::filesystem;
  std::vector<fs::path> baselines;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(baseline_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.substr(name.size() - 5) == ".json") {
      baselines.push_back(entry.path());
    }
  }
  if (ec) {
    std::fprintf(stderr, "cannot read baseline dir %s: %s\n",
                 baseline_dir.c_str(), ec.message().c_str());
    return 1;
  }
  if (baselines.empty()) {
    std::fprintf(stderr, "no BENCH_*.json records under %s\n",
                 baseline_dir.c_str());
    return 1;
  }
  std::sort(baselines.begin(), baselines.end());

  int regressions = 0;
  std::vector<Finding> findings;
  for (const fs::path& base_path : baselines) {
    const std::string file = base_path.filename().string();
    std::string base_text;
    FlatJson base_record;
    if (!ReadFile(base_path, &base_text) ||
        !ParseFlatJson(base_text, &base_record)) {
      std::fprintf(stderr, "FAIL %s: unreadable or malformed baseline\n",
                   file.c_str());
      ++regressions;
      continue;
    }
    // Records with no gated metrics are informational-only; a missing
    // candidate for them is not a regression.
    bool has_gates = base_record.count("gated_ratios") > 0 ||
                     base_record.count("gated_zeros") > 0;
    std::string cand_text;
    FlatJson cand_record;
    fs::path cand_path = fs::path(candidate_dir) / file;
    if (!ReadFile(cand_path, &cand_text) ||
        !ParseFlatJson(cand_text, &cand_record)) {
      if (has_gates) {
        std::fprintf(stderr, "FAIL %s: candidate missing or malformed (%s)\n",
                     file.c_str(), cand_path.string().c_str());
        ++regressions;
      }
      continue;
    }
    regressions += CompareRecords(base_record.count("bench") > 0
                                      ? cand_record["bench"]
                                      : file,
                                  base_record, cand_record, threshold,
                                  &findings);
  }

  std::printf("%-28s %-28s %12s %12s  %s\n", "bench", "metric", "baseline",
              "candidate", "verdict");
  for (const Finding& f : findings) {
    std::printf("%-28s %-28s %12.4g %12.4g  %s%s\n", f.bench.c_str(),
                f.key.c_str(), f.baseline, f.candidate,
                f.regression ? "REGRESSION: " : "", f.detail.c_str());
  }
  std::printf("%d gated metric(s) checked, %d regression(s)\n",
              static_cast<int>(findings.size()), regressions);
  return regressions > 0 ? 1 : 0;
}

}  // namespace semitri::benchcompare
