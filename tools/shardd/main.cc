// shardd — the sharded serving runtime as real processes.
//
// One binary, two modes:
//
//   shardd --mode=supervise [--shards N] [--base-dir DIR]
//          [--kill-shard K] [--checkpoint-every M] [--no-kill]
//          [--max-restarts R] [--failover]
//
//     Generates a deterministic multi-object GPS workload, partitions
//     it per shard with the same consistent-hash ring every worker
//     would compute (shard/ring.h), writes one feed file per shard,
//     and fork/execs one `--mode=worker` process per shard. Mid-run it
//     SIGKILLs one worker after its first checkpoint, exactly the
//     crash the in-process ShardCluster::KillShard models.
//
//     Every abnormal worker exit — the scripted kill included — is
//     healed by the supervision loop: the worker is respawned with
//     --resume after a capped-exponential backoff (the
//     common::RetryPolicy curve), at most --max-restarts times per
//     shard. With --failover the scripted victim's primary directory
//     is treated as lost instead: the supervisor promotes the standby
//     (shipped sealed WAL segments + manager-checkpoint sidecar) to be
//     the new durable directory, exactly like
//     ShardCluster::FailoverShard, and the respawned worker re-feeds
//     from the start of its feed — the promoted sessions reject the
//     already-consumed prefix per-fix, so the at-least-once
//     re-delivery converges.
//
//     When every worker has exited it recovers each shard's durable
//     directory into a scratch store, merges them, and compares
//     ContentEquals against an uninterrupted in-process reference run
//     of the same streams. Exit 0 = zero lost acknowledged fixes (and
//     nothing extra); exit 1 = divergence.
//
//   shardd --mode=worker --shard I --base-dir DIR --feed FILE
//          [--checkpoint-every M] [--resume] [--standby-epoch E]
//
//     One shard: opens shard::ShardRuntime on DIR/shard-I (standby at
//     DIR/standby-I, or DIR/standby-I-eE after E failovers), feeds the
//     CSV fix stream ("object,time,x,y"), checkpoints every M feeds
//     and then atomically records its progress (DIR/shard-I.progress)
//     — the ack point a supervisor may re-feed from. With --resume it
//     recovers the durable directory and skips the acked prefix;
//     re-fed fixes the restored sessions already consumed are rejected
//     as stale per-fix, so at-least-once redelivery is idempotent.
//
// The workload, world seed, and ring seed are compiled in: every
// process derives the identical placement without coordination.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "core/pipeline.h"
#include "core/types.h"
#include "datagen/presets.h"
#include "datagen/world.h"
#include "shard/ring.h"
#include "shard/shard_runtime.h"
#include "store/semantic_trajectory_store.h"
#include "stream/session_manager.h"

namespace semitri::shardd {
namespace {

namespace fs = std::filesystem;

// Every process (supervisor and workers) rebuilds this exact world, so
// the pipelines annotate against identical regions/roads/POIs.
constexpr uint64_t kWorldSeed = 211;
constexpr uint64_t kDatasetSeed = 212;
constexpr double kWorldExtentMeters = 3000.0;
constexpr int kWorldPois = 400;

struct Options {
  std::string mode;
  size_t shards = 2;
  std::string base_dir = "/tmp/semitri-shardd";
  size_t shard = 0;
  std::string feed;
  size_t checkpoint_every = 150;
  bool resume = false;
  // Supervisor: which shard to SIGKILL mid-run (--no-kill disables;
  // unset = the shard with the largest feed, so the kill window is
  // widest).
  size_t kill_shard = 0;
  bool kill_shard_set = false;
  bool kill = true;
  int days = 4;
  // Supervisor: respawn budget per shard for abnormal exits (the
  // scripted kill spends one).
  size_t max_restarts = 3;
  // Supervisor: heal the scripted kill by promoting the victim's
  // standby directory instead of restarting on the primary.
  bool failover = false;
  // Worker: failovers this shard has been through — names the standby
  // directory, mirroring the cluster's standby-<i>-e<N> scheme.
  size_t standby_epoch = 0;
};

datagen::World BuildWorld() {
  datagen::WorldConfig config;
  config.seed = kWorldSeed;
  config.extent_meters = kWorldExtentMeters;
  config.num_pois = kWorldPois;
  return datagen::WorldGenerator(config).Generate();
}

std::string FeedPath(const Options& options, size_t shard) {
  return options.base_dir + "/feed-" + std::to_string(shard) + ".csv";
}

std::string ProgressPath(const Options& options, size_t shard) {
  return options.base_dir + "/shard-" + std::to_string(shard) + ".progress";
}

// Atomic progress write: tmp + rename, like every other ack marker in
// the tree.
bool WriteProgress(const std::string& path, size_t fed) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << fed << "\n";
    if (!out.flush()) return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  return !ec;
}

size_t ReadProgress(const std::string& path) {
  std::ifstream in(path);
  size_t fed = 0;
  if (in) in >> fed;
  return fed;
}

struct FeedLine {
  core::ObjectId object = 0;
  core::GpsPoint fix;
};

std::vector<FeedLine> ReadFeed(const std::string& path) {
  std::vector<FeedLine> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    FeedLine parsed;
    if (std::sscanf(line.c_str(), "%ld,%lf,%lf,%lf", &parsed.object,
                    &parsed.fix.time, &parsed.fix.position.x,
                    &parsed.fix.position.y) == 4) {
      lines.push_back(parsed);
    }
  }
  return lines;
}

// --- worker ----------------------------------------------------------

int RunWorker(const Options& options) {
  datagen::World world = BuildWorld();
  shard::ShardRuntimeConfig config;
  config.shard_id = options.shard;
  config.durable_dir =
      options.base_dir + "/shard-" + std::to_string(options.shard);
  config.standby_dir =
      options.base_dir + "/standby-" + std::to_string(options.shard);
  if (options.standby_epoch > 0) {
    config.standby_dir += "-e" + std::to_string(options.standby_epoch);
  }
  auto runtime = shard::ShardRuntime::Open(&world.regions, &world.roads,
                                           &world.pois, config);
  if (!runtime.ok()) {
    std::fprintf(stderr, "shardd worker %zu: open failed: %s\n",
                 options.shard, runtime.status().ToString().c_str());
    return 1;
  }

  std::vector<FeedLine> feed = ReadFeed(options.feed);
  size_t start = 0;
  std::string progress = ProgressPath(options, options.shard);
  if (options.resume) {
    start = ReadProgress(progress);
    std::fprintf(stderr, "shardd worker %zu: resuming at %zu/%zu\n",
                 options.shard, start, feed.size());
  }
  for (size_t i = start; i < feed.size(); ++i) {
    auto fed = (*runtime)->Feed(feed[i].object, feed[i].fix);
    if (!fed.ok()) {
      std::fprintf(stderr, "shardd worker %zu: feed %zu failed: %s\n",
                   options.shard, i, fed.status().ToString().c_str());
      return 1;
    }
    if (options.checkpoint_every > 0 &&
        (i + 1) % options.checkpoint_every == 0) {
      common::Status checkpointed = (*runtime)->Checkpoint();
      if (!checkpointed.ok()) {
        std::fprintf(stderr, "shardd worker %zu: checkpoint failed: %s\n",
                     options.shard, checkpointed.ToString().c_str());
        return 1;
      }
      if (!WriteProgress(progress, i + 1)) return 1;
    }
  }
  if (!(*runtime)->CloseAll().ok()) return 1;
  common::Status final_ckpt = (*runtime)->Checkpoint();
  if (!final_ckpt.ok()) return 1;
  if (!WriteProgress(progress, feed.size())) return 1;
  return 0;
}

// --- supervisor ------------------------------------------------------

pid_t SpawnWorker(const char* self, const Options& options, size_t shard,
                  bool resume, size_t standby_epoch) {
  pid_t pid = ::fork();
  if (pid != 0) return pid;
  std::string shard_arg = std::to_string(shard);
  std::string every_arg = std::to_string(options.checkpoint_every);
  std::string epoch_arg = std::to_string(standby_epoch);
  std::string feed = FeedPath(options, shard);
  std::vector<const char*> argv = {self,
                                   "--mode=worker",
                                   "--shard",
                                   shard_arg.c_str(),
                                   "--base-dir",
                                   options.base_dir.c_str(),
                                   "--feed",
                                   feed.c_str(),
                                   "--checkpoint-every",
                                   every_arg.c_str(),
                                   "--standby-epoch",
                                   epoch_arg.c_str()};
  if (resume) argv.push_back("--resume");
  argv.push_back(nullptr);
  ::execv(self, const_cast<char* const*>(argv.data()));
  std::perror("shardd: execv");
  std::_Exit(127);
}

// ShardCluster::FailoverShard at the directory level: the primary is
// abandoned (renamed aside so post-mortems can read it) and the
// shipped standby becomes the durable directory. The progress marker
// is dropped with the primary — it may ack fixes the standby never
// received, and at-least-once re-delivery from zero is always safe.
bool PromoteStandby(const Options& options, size_t shard) {
  fs::path primary =
      fs::path(options.base_dir) / ("shard-" + std::to_string(shard));
  fs::path standby =
      fs::path(options.base_dir) / ("standby-" + std::to_string(shard));
  std::error_code ec;
  fs::rename(primary, fs::path(primary.string() + ".lost"), ec);
  if (ec) {
    std::fprintf(stderr, "shardd: cannot abandon %s: %s\n",
                 primary.c_str(), ec.message().c_str());
    return false;
  }
  fs::create_directories(standby, ec);  // an empty standby promotes too
  fs::rename(standby, primary, ec);
  if (ec) {
    std::fprintf(stderr, "shardd: cannot promote %s: %s\n", standby.c_str(),
                 ec.message().c_str());
    return false;
  }
  fs::remove(ProgressPath(options, shard), ec);
  return true;
}

common::Status CopyAllRows(const store::SemanticTrajectoryStore& from,
                           store::SemanticTrajectoryStore* to) {
  for (core::TrajectoryId id : from.ListTrajectories()) {
    auto raw = from.GetRawTrajectory(id);
    if (raw.ok()) {
      SEMITRI_RETURN_IF_ERROR(to->PutRawTrajectory(*raw));
    }
    auto episodes = from.GetEpisodes(id);
    if (episodes.ok()) {
      SEMITRI_RETURN_IF_ERROR(to->PutEpisodes(id, *episodes));
    }
    for (const std::string& interp : from.ListInterpretations(id)) {
      auto annotated = from.GetInterpretation(id, interp);
      if (annotated.ok()) {
        SEMITRI_RETURN_IF_ERROR(to->PutInterpretation(*annotated));
      }
    }
  }
  return common::Status::OK();
}

int RunSupervisor(const char* self, const Options& options) {
  std::error_code ec;
  fs::remove_all(options.base_dir, ec);
  fs::create_directories(options.base_dir, ec);
  if (ec) {
    std::fprintf(stderr, "shardd: cannot create %s\n",
                 options.base_dir.c_str());
    return 1;
  }

  std::fprintf(stderr, "shardd: generating workload...\n");
  datagen::World world = BuildWorld();
  datagen::DatasetFactory factory(&world, kDatasetSeed);
  datagen::Dataset dataset =
      factory.MilanPrivateCars(static_cast<int>(options.shards) * 4,
                               options.days);

  // Ring-partition the feed: the identical pure function every worker
  // could evaluate.
  shard::RingConfig ring_config;
  shard::ConsistentHashRing ring(ring_config);
  for (size_t s = 0; s < options.shards; ++s) ring.AddShard(s);
  std::map<size_t, size_t> feed_sizes;
  {
    std::vector<std::ofstream> feeds;
    for (size_t s = 0; s < options.shards; ++s) {
      feeds.emplace_back(FeedPath(options, s), std::ios::trunc);
    }
    for (const datagen::SimulatedTrack& track : dataset.tracks) {
      size_t shard = ring.ShardForObject(track.object_id);
      for (const core::GpsPoint& fix : track.points) {
        char line[128];
        std::snprintf(line, sizeof(line), "%ld,%.17g,%.17g,%.17g\n",
                      track.object_id, fix.time, fix.position.x,
                      fix.position.y);
        feeds[shard] << line;
        ++feed_sizes[shard];
      }
    }
  }
  size_t kill_shard = options.kill_shard;
  for (size_t s = 0; s < options.shards; ++s) {
    std::fprintf(stderr, "shardd: shard %zu feed: %zu fixes\n", s,
                 feed_sizes[s]);
    if (!options.kill_shard_set && feed_sizes[s] > feed_sizes[kill_shard]) {
      kill_shard = s;
    }
  }

  // The uninterrupted in-process reference.
  store::SemanticTrajectoryStore reference;
  {
    core::SemiTriPipeline pipeline(&world.regions, &world.roads, &world.pois,
                                   core::PipelineConfig{}, &reference);
    stream::SessionManager manager(&pipeline);
    for (const datagen::SimulatedTrack& track : dataset.tracks) {
      for (const core::GpsPoint& fix : track.points) {
        auto fed = manager.Feed(track.object_id, fix);
        if (!fed.ok()) {
          std::fprintf(stderr, "shardd: reference feed failed\n");
          return 1;
        }
      }
    }
    if (!manager.CloseAll().ok()) return 1;
  }

  std::fprintf(stderr, "shardd: spawning %zu workers...\n", options.shards);
  std::vector<pid_t> workers(options.shards, -1);
  std::vector<size_t> restarts(options.shards, 0);
  std::vector<size_t> epochs(options.shards, 0);
  for (size_t s = 0; s < options.shards; ++s) {
    workers[s] = SpawnWorker(self, options, s, /*resume=*/false,
                             /*standby_epoch=*/0);
  }
  size_t running = options.shards;

  bool killed = false;
  bool workers_ok = true;
  // Which shard the supervision loop should heal by standby promotion
  // (rather than an in-place restart) when it dies.
  size_t failover_shard = options.shards;
  if (options.kill && kill_shard < options.shards) {
    // Wait for the victim's first checkpointed ack, then SIGKILL it —
    // everything acked by then must survive. The supervision loop
    // below reaps the corpse and respawns it.
    std::string progress = ProgressPath(options, kill_shard);
    for (int spin = 0; spin < 20000; ++spin) {
      if (fs::exists(progress, ec)) break;
      int status = 0;
      pid_t reaped = ::waitpid(workers[kill_shard], &status, WNOHANG);
      if (reaped != 0) {
        // Finished before we could kill it.
        workers[kill_shard] = -1;
        --running;
        if (!(WIFEXITED(status) && WEXITSTATUS(status) == 0)) {
          std::fprintf(stderr, "shardd: worker %zu failed (status %d)\n",
                       kill_shard, status);
          workers_ok = false;
        }
        break;
      }
      ::usleep(1000);
    }
    if (workers[kill_shard] != -1) {
      ::kill(workers[kill_shard], SIGKILL);
      killed = true;
      if (options.failover) failover_shard = kill_shard;
      std::fprintf(stderr,
                   "shardd: killed worker %zu at acked progress %zu (%s "
                   "will heal it)\n",
                   kill_shard, ReadProgress(progress),
                   options.failover ? "standby promotion"
                                    : "restart with --resume");
    } else {
      std::fprintf(stderr,
                   "shardd: worker %zu finished before the kill window\n",
                   kill_shard);
    }
  }

  // Supervision loop: reap exits; clean ones retire the shard, crashes
  // are healed — restart with --resume (or standby promotion for the
  // scripted failover victim) after a capped-exponential backoff, at
  // most max_restarts times per shard.
  common::RetryPolicyConfig backoff_config;
  backoff_config.max_attempts = options.max_restarts + 1;
  backoff_config.initial_backoff_seconds = 0.05;
  backoff_config.max_backoff_seconds = 1.0;
  common::RetryPolicy backoff(backoff_config);
  while (running > 0) {
    int status = 0;
    pid_t pid = ::waitpid(-1, &status, 0);
    if (pid <= 0) break;
    size_t s = options.shards;
    for (size_t i = 0; i < options.shards; ++i) {
      if (workers[i] == pid) s = i;
    }
    if (s == options.shards) continue;  // not one of ours
    workers[s] = -1;
    --running;
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) continue;
    if (restarts[s] >= options.max_restarts) {
      std::fprintf(stderr,
                   "shardd: worker %zu failed (status %d), restart budget "
                   "exhausted\n",
                   s, status);
      workers_ok = false;
      continue;
    }
    double pause = backoff.BackoffSeconds(restarts[s], s);
    ++restarts[s];
    ::usleep(static_cast<useconds_t>(pause * 1e6));
    bool promote = s == failover_shard;
    if (promote) {
      failover_shard = options.shards;  // promote once
      if (!PromoteStandby(options, s)) {
        workers_ok = false;
        continue;
      }
      ++epochs[s];
    }
    std::fprintf(stderr,
                 "shardd: worker %zu died (status %d); %s after %.0f ms "
                 "backoff (restart %zu/%zu)\n",
                 s, status,
                 promote ? "promoting standby and re-feeding from zero"
                         : "restarting with --resume",
                 pause * 1e3, restarts[s], options.max_restarts);
    // A promoted standby may predate the progress marker, so the
    // failover respawn replays its whole feed; restored sessions
    // reject the consumed prefix either way.
    workers[s] = SpawnWorker(self, options, s, /*resume=*/!promote,
                             /*standby_epoch=*/epochs[s]);
    ++running;
  }
  if (!workers_ok) return 1;

  std::fprintf(stderr, "shardd: validating durable state...\n");
  store::SemanticTrajectoryStore merged;
  for (size_t s = 0; s < options.shards; ++s) {
    store::SemanticTrajectoryStore recovered;
    auto stats =
        recovered.Recover(options.base_dir + "/shard-" + std::to_string(s));
    if (!stats.ok()) {
      std::fprintf(stderr, "shardd: shard %zu recovery failed: %s\n", s,
                   stats.status().ToString().c_str());
      return 1;
    }
    if (!CopyAllRows(recovered, &merged).ok()) return 1;
  }
  if (!merged.ContentEquals(reference)) {
    std::fprintf(stderr,
                 "shardd: FAIL — merged worker stores diverged from the "
                 "uninterrupted reference (lost or corrupted acknowledged "
                 "fixes)\n");
    return 1;
  }
  std::fprintf(stderr,
               "shardd: OK — %zu shards, %zu objects, %zu records, kill %s, "
               "zero lost acknowledged fixes\n",
               options.shards, dataset.tracks.size(), dataset.TotalRecords(),
               killed ? "injected" : "skipped");
  return 0;
}

int Run(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string();
    };
    if (arg.rfind("--mode=", 0) == 0) {
      options.mode = arg.substr(7);
    } else if (arg == "--mode") {
      options.mode = next();
    } else if (arg == "--shards") {
      options.shards = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--shard") {
      options.shard = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--base-dir") {
      options.base_dir = next();
    } else if (arg == "--feed") {
      options.feed = next();
    } else if (arg == "--checkpoint-every") {
      options.checkpoint_every = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--kill-shard") {
      options.kill_shard = std::strtoul(next().c_str(), nullptr, 10);
      options.kill_shard_set = true;
    } else if (arg == "--days") {
      options.days = static_cast<int>(std::strtol(next().c_str(), nullptr, 10));
    } else if (arg == "--max-restarts") {
      options.max_restarts = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--standby-epoch") {
      options.standby_epoch = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--failover") {
      options.failover = true;
    } else if (arg == "--no-kill") {
      options.kill = false;
    } else if (arg == "--resume") {
      options.resume = true;
    } else {
      std::fprintf(stderr, "shardd: unknown argument %s\n", arg.c_str());
      return 2;
    }
  }
  if (options.mode == "worker") {
    if (options.feed.empty()) {
      std::fprintf(stderr, "shardd: worker mode needs --feed\n");
      return 2;
    }
    return RunWorker(options);
  }
  if (options.mode == "supervise" || options.mode.empty()) {
    if (options.shards == 0) {
      std::fprintf(stderr, "shardd: need at least one shard\n");
      return 2;
    }
    return RunSupervisor(argv[0], options);
  }
  std::fprintf(stderr, "shardd: unknown mode %s\n", options.mode.c_str());
  return 2;
}

}  // namespace
}  // namespace semitri::shardd

int main(int argc, char** argv) { return semitri::shardd::Run(argc, argv); }
