#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# translation unit and header in src/, using the compilation database
# exported by CMake (CMAKE_EXPORT_COMPILE_COMMANDS=ON).
#
# Usage: tools/lint.sh [build-dir]
#   build-dir defaults to ./build; it must contain compile_commands.json.
#
# Exits nonzero on any diagnostic. If clang-tidy is not installed the
# script prints a notice and exits 0 so the `lint` target is a no-op on
# machines without LLVM tooling (CI runs it with clang-tidy present).

set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

tidy=""
for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "${candidate}" >/dev/null 2>&1; then
    tidy="${candidate}"
    break
  fi
done
if [[ -z "${tidy}" ]]; then
  echo "lint: clang-tidy not found on PATH; skipping (install LLVM tools" \
       "to enable the lint target)"
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "lint: ${build_dir}/compile_commands.json not found." >&2
  echo "lint: configure first: cmake -B ${build_dir} -S ${repo_root}" >&2
  exit 1
fi

cd "${repo_root}"
mapfile -t sources < <(find src -name '*.cc' | sort)

echo "lint: ${tidy} over ${#sources[@]} translation units" \
     "(headers via --header-filter)"
status=0
for source in "${sources[@]}"; do
  # --quiet suppresses the "N warnings generated" chatter; --warnings-as-
  # errors promotes everything the config enables so CI fails on any hit.
  if ! "${tidy}" --quiet -p "${build_dir}" \
       --warnings-as-errors='*' "${source}"; then
    status=1
  fi
done

if [[ ${status} -ne 0 ]]; then
  echo "lint: clang-tidy reported diagnostics" >&2
fi
exit ${status}
