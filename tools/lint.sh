#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# translation unit in src/, tests/, bench/, and tools/shardd/, using the
# compilation database exported by CMake
# (CMAKE_EXPORT_COMPILE_COMMANDS=ON).
#
# Usage: tools/lint.sh [--require] [build-dir]
#   build-dir defaults to ./build; it must contain compile_commands.json.
#   --require  fail (exit 3) when clang-tidy is missing instead of
#              skipping. CI passes this so a misconfigured runner cannot
#              silently turn the lint leg green.
#
# Translation units are linted in parallel (one clang-tidy process per
# core via xargs -P); each TU's diagnostics are buffered to a private
# file and replayed in order, so output stays per-file readable and the
# exit code is nonzero iff any TU produced a diagnostic.

set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
require=0
build_dir=""
for arg in "$@"; do
  case "${arg}" in
    --require) require=1 ;;
    *) build_dir="${arg}" ;;
  esac
done
build_dir="${build_dir:-${repo_root}/build}"

tidy=""
for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "${candidate}" >/dev/null 2>&1; then
    tidy="${candidate}"
    break
  fi
done
if [[ -z "${tidy}" ]]; then
  if [[ ${require} -eq 1 ]]; then
    echo "lint: clang-tidy not found on PATH and --require was given" >&2
    exit 3
  fi
  echo "lint: clang-tidy not found on PATH; skipping (install LLVM tools" \
       "to enable the lint target)"
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "lint: ${build_dir}/compile_commands.json not found." >&2
  echo "lint: configure first: cmake -B ${build_dir} -S ${repo_root}" >&2
  exit 1
fi

cd "${repo_root}"
mapfile -t sources < <(find src tests bench tools/shardd -name '*.cc' | sort)

jobs="$(nproc 2>/dev/null || echo 2)"
outdir="$(mktemp -d)"
trap 'rm -rf "${outdir}"' EXIT

echo "lint: ${tidy} over ${#sources[@]} translation units," \
     "${jobs} in parallel (headers via --header-filter)"

# Each job writes diagnostics to ${outdir}/<mangled-path>.log and, on
# failure, touches <mangled-path>.failed. xargs returns nonzero when any
# job fails, but we derive the exit code from the marker files so a
# killed/oversubscribed xargs cannot mask findings.
export TIDY_BIN="${tidy}" TIDY_BUILD_DIR="${build_dir}" TIDY_OUT="${outdir}"
printf '%s\0' "${sources[@]}" | xargs -0 -n 1 -P "${jobs}" bash -c '
  source="$1"
  log="${TIDY_OUT}/${source//\//_}.log"
  # --quiet suppresses the "N warnings generated" chatter; --warnings-as-
  # errors promotes everything the config enables so CI fails on any hit.
  if ! "${TIDY_BIN}" --quiet -p "${TIDY_BUILD_DIR}" \
       --warnings-as-errors="*" "${source}" >"${log}" 2>&1; then
    touch "${log%.log}.failed"
  fi
' lint-one

status=0
for source in "${sources[@]}"; do
  log="${outdir}/${source//\//_}.log"
  if [[ -s "${log}" ]]; then
    cat "${log}"
  fi
  if [[ -e "${log%.log}.failed" ]]; then
    status=1
  fi
done

if [[ ${status} -ne 0 ]]; then
  echo "lint: clang-tidy reported diagnostics" >&2
fi
exit ${status}
