// Fig. 11 — Semantic stops/trajectories by point annotation on the
// Milan private-car data: percentage of each POI category in (a) the
// POI repository, (b) the HMM-annotated stops, (c) the trajectory
// categories (Eq. 8).
//
// Paper shape to reproduce: the repository is person-life/item-sale
// heavy; annotated stops concentrate on item sale (~56 %) then person
// life (~24 %); the trajectory-category distribution is statistically
// similar to the stop distribution (≈1.7 stops per trajectory).

#include <cmath>
#include <cstdio>
#include <vector>

#include "analytics/distribution.h"
#include "analytics/trajectory_stats.h"
#include "bench_util.h"
#include "core/pipeline.h"
#include "datagen/presets.h"
#include "poi/observation_model.h"

using namespace semitri;

namespace {

// Pre-refactor grid precompute, kept verbatim as the scalar reference
// for the kernel_speedup gate: per-cell nested-vector densities, and a
// per-POI AoS walk (PoiSet::Get + SigmaFor + per-POI sigma arithmetic)
// — the loop AccumulateGaussianDensities over the SoA POI mirror
// replaced. Returns a checksum so the work cannot be optimized away.
double ReferenceGridPrecompute(const poi::PoiSet& pois,
                               const poi::PoiObservationModel& model,
                               size_t neighbor_ring) {
  const auto& grid = model.grid();
  const size_t cols = grid.cols();
  const size_t rows = grid.rows();
  std::vector<std::vector<double>> cells(
      cols * rows, std::vector<double>(pois.num_categories(), 0.0));
  double checksum = 0.0;
  for (size_t cy = 0; cy < rows; ++cy) {
    for (size_t cx = 0; cx < cols; ++cx) {
      geo::Point center = grid.CellCenter(cx, cy);
      std::vector<double>& densities = cells[cy * cols + cx];
      for (core::PlaceId id : grid.Neighborhood(center, neighbor_ring)) {
        const poi::Poi& p = pois.Get(id);
        double sigma = model.SigmaFor(p.category);
        double d2 = center.SquaredDistanceTo(p.position);
        densities[static_cast<size_t>(p.category)] +=
            std::exp(-d2 / (2.0 * sigma * sigma)) /
            (2.0 * M_PI * sigma * sigma);
      }
      checksum += densities[0];
    }
  }
  return checksum;
}

}  // namespace

int main() {
  benchutil::PrintHeader("Fig. 11: stop/trajectory categories (HMM)",
                         "paper Fig. 11 + Eq. 8 classification");

  datagen::World world = benchutil::MakeCity(/*seed=*/401);
  datagen::DatasetFactory factory(&world, /*seed=*/402);
  datagen::Dataset cars =
      factory.MilanPrivateCars(/*num_cars=*/120, /*num_days=*/7);

  core::PipelineConfig config;
  // Independent errand stops: weakly sticky transitions.
  config.point.default_self_transition = 0.25;
  core::SemiTriPipeline pipeline(nullptr, nullptr, &world.pois, config);

  analytics::LabeledDistribution stop_dist, trajectory_dist;
  size_t num_trajectories = 0, num_stops = 0;
  size_t truth_correct = 0, truth_evaluated = 0;

  for (const datagen::SimulatedTrack& track : cars.tracks) {
    auto results = pipeline.ProcessStream(
        track.object_id, track.points,
        static_cast<core::TrajectoryId>(track.object_id) * 1000);
    if (!results.ok()) {
      std::fprintf(stderr, "pipeline failed: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    for (const core::PipelineResult& day : *results) {
      if (!day.point_layer.has_value()) continue;
      ++num_trajectories;
      for (const core::SemanticEpisode& ep : day.point_layer->episodes) {
        ++num_stops;
        stop_dist.Add(ep.FindAnnotation("poi_category"));
        // Ground-truth check against the simulated activity.
        for (const auto& true_stop : track.stops) {
          if (true_stop.poi_category < 0) continue;
          double overlap = std::min(ep.time_out, true_stop.time_out) -
                           std::max(ep.time_in, true_stop.time_in);
          if (overlap <
              0.5 * (true_stop.time_out - true_stop.time_in)) {
            continue;
          }
          ++truth_evaluated;
          if (ep.FindAnnotation("poi_category_id") ==
              std::to_string(true_stop.poi_category)) {
            ++truth_correct;
          }
          break;
        }
      }
      int category = analytics::TrajectoryCategory(
          *day.point_layer, world.pois.num_categories());
      if (category >= 0) {
        trajectory_dist.Add(
            world.pois.category_names()[static_cast<size_t>(category)]);
      }
    }
  }

  auto priors = world.pois.CategoryPriors();
  std::printf("%zu daily trajectories, %zu annotated stops (%.2f stops/"
              "trajectory; paper: 1.7)\n\n",
              num_trajectories, num_stops,
              static_cast<double>(num_stops) /
                  static_cast<double>(num_trajectories));
  std::printf("%-14s %8s %8s %12s   %s\n", "category", "POI", "stop",
              "trajectory", "paper (POI/stop)");
  const char* paper_values[] = {"10.9% / ~8%", "17.7% / ~9%",
                                "31.5% / ~56%", "38.6% / ~24%",
                                "1.3% / ~3%"};
  for (size_t c = 0; c < world.pois.num_categories(); ++c) {
    const std::string& name = world.pois.category_names()[c];
    std::printf("%-14s %8s %8s %12s   %s\n", name.c_str(),
                benchutil::Pct(priors[c]).c_str(),
                benchutil::Pct(stop_dist.Fraction(name)).c_str(),
                benchutil::Pct(trajectory_dist.Fraction(name)).c_str(),
                paper_values[c]);
  }
  std::printf("\nground-truth stop-category accuracy: %.1f%% (%zu/%zu)\n",
              100.0 * static_cast<double>(truth_correct) /
                  static_cast<double>(truth_evaluated),
              truth_correct, truth_evaluated);
  std::printf("(the paper has no stop ground truth; the simulator "
              "provides one)\n");

  // --- kernel section (perf-gate) ---------------------------------------
  // Full observation-model construction (grid insert + batched density
  // precompute) vs. the pre-refactor scalar precompute alone — the
  // batched side does strictly more work, so the ratio is conservative.
  benchutil::BenchReporter reporter("fig11_poi_annotation");
  poi::ObservationModelConfig model_config;
  const int kIters = 15;
  poi::PoiObservationModel sigma_model(&world.pois, model_config);
  double checksum = 0.0;
  double kernel_speedup = reporter.GatePairedSpeedup(
      "kernel_speedup", "gauss_batched", "gauss_scalar_ref", kIters,
      [&] {
        poi::PoiObservationModel model(&world.pois, model_config);
        if (model.num_categories() == 0) std::abort();
      },
      [&] {
        checksum += ReferenceGridPrecompute(world.pois, sigma_model,
                                            model_config.neighbor_ring);
      });
  reporter.Metric("scalar_ref_checksum", checksum);
  reporter.Metric("annotated_stops", num_stops);
  reporter.Metric("stop_accuracy",
                  static_cast<double>(truth_correct) /
                      static_cast<double>(truth_evaluated));
  std::printf("\nkernel section: paired-median speedup %.2fx\n",
              kernel_speedup);
  return reporter.Write() ? 0 : 1;
}
