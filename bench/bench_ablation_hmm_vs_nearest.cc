// Ablation — HMM point annotation (Algorithm 3) versus the traditional
// one-to-one nearest-POI matching ([28]), as a function of stop-location
// uncertainty.
//
// Expected shape (the paper's §4.3 motivation): with precise stops the
// nearest POI is simply the visited POI and one-to-one matching wins;
// as stop positions blur (indoor loss, low sampling rates, parking
// offsets — exactly the "heterogeneous trajectories" regime), the
// density-summing HMM degrades more slowly and crosses over.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "poi/point_annotator.h"

using namespace semitri;

int main() {
  benchutil::BenchReporter reporter("ablation_hmm_vs_nearest");
  benchutil::PrintHeader("Ablation: HMM (Alg. 3) vs nearest-POI baseline",
                         "design choice behind paper Sec 4.3");

  datagen::World world = benchutil::MakeCity(/*seed=*/131, 4000.0, 1200);
  common::Rng rng(132);

  poi::PointAnnotatorConfig config;
  config.default_self_transition = 0.25;
  poi::PointAnnotator hmm(&world.pois, config);
  poi::NearestPoiAnnotator nearest(&world.pois);

  std::printf("%-18s %10s %10s %10s\n", "stop noise (m)", "HMM",
              "nearest", "prior-max");
  auto priors = world.pois.CategoryPriors();
  size_t prior_best = static_cast<size_t>(
      std::max_element(priors.begin(), priors.end()) - priors.begin());

  for (double noise : {5.0, 15.0, 30.0, 60.0, 100.0, 150.0}) {
    size_t hmm_correct = 0, nearest_correct = 0, prior_correct = 0, n = 0;
    for (int seq = 0; seq < 80; ++seq) {
      std::vector<core::Episode> stops;
      std::vector<int> truth;
      for (int s = 0; s < 5; ++s) {
        auto poi_id = static_cast<core::PlaceId>(
            rng.UniformInt(0, static_cast<int64_t>(world.pois.size()) - 1));
        const poi::Poi& poi = world.pois.Get(poi_id);
        core::Episode ep;
        ep.kind = core::EpisodeKind::kStop;
        ep.time_in = s * 4000.0;
        ep.time_out = s * 4000.0 + 3000.0;
        ep.center = poi.position + geo::Point{rng.Gaussian(0, noise),
                                              rng.Gaussian(0, noise)};
        ep.bounds = geo::BoundingBox::FromPoint(ep.center).Inflated(20.0);
        stops.push_back(ep);
        truth.push_back(poi.category);
      }
      auto hmm_result = hmm.InferStopCategories(stops);
      if (!hmm_result.ok()) {
        std::fprintf(stderr, "HMM failed: %s\n",
                     hmm_result.status().ToString().c_str());
        return 1;
      }
      std::vector<int> nearest_result = nearest.InferStopCategories(stops);
      for (size_t i = 0; i < truth.size(); ++i) {
        ++n;
        if ((*hmm_result)[i] == truth[i]) ++hmm_correct;
        if (nearest_result[i] == truth[i]) ++nearest_correct;
        if (static_cast<int>(prior_best) == truth[i]) ++prior_correct;
      }
    }
    std::printf("%-18.0f %9.1f%% %9.1f%% %9.1f%%\n", noise,
                100.0 * hmm_correct / n, 100.0 * nearest_correct / n,
                100.0 * prior_correct / n);
  }
  std::printf("\nexpected: nearest wins at low noise; HMM crosses over as "
              "stop uncertainty grows.\n");
  return reporter.Write() ? 0 : 1;
}
