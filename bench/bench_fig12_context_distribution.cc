// Fig. 12 — log–log distribution of the number of GPS records per
// trajectory / move / stop for the people dataset.
//
// Paper shape to reproduce: trajectories and moves carry most of the
// records and stretch into long tails; stop sizes concentrate in a
// mid range (the indoor-throttled dwell regime) and fall off for very
// large sizes.

#include <cstdio>

#include "analytics/trajectory_stats.h"
#include "bench_util.h"
#include "core/pipeline.h"
#include "datagen/presets.h"

using namespace semitri;

int main() {
  benchutil::BenchReporter reporter("fig12_context_distribution");
  benchutil::PrintHeader(
      "Fig. 12: #GPS records per trajectory/move/stop (log-log)",
      "paper Fig. 12 + Table 2 context computation totals");

  datagen::World world = benchutil::MakeCity(/*seed=*/501);
  datagen::DatasetFactory factory(&world, /*seed=*/502);
  datagen::Dataset people =
      factory.NokiaPeople(/*num_users=*/12, /*num_days=*/14);

  core::SemiTriPipeline pipeline(nullptr, nullptr, nullptr);
  analytics::ContextCounts counts;
  for (const datagen::SimulatedTrack& track : people.tracks) {
    auto results = pipeline.ProcessStream(
        track.object_id, track.points,
        static_cast<core::TrajectoryId>(track.object_id) * 1000);
    if (!results.ok()) {
      std::fprintf(stderr, "pipeline failed: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    for (const core::PipelineResult& day : *results) {
      counts.Accumulate(day.cleaned, day.episodes);
    }
  }

  std::printf("people data: %zu GPS records -> %zu daily trajectories, "
              "%zu moves, %zu stops\n",
              counts.num_gps_records, counts.num_trajectories,
              counts.num_moves, counts.num_stops);
  std::printf("paper:       7.3M GPS records -> 23,188 daily trajectories, "
              "46,958 moves, 52,497 stops\n\n");

  auto print_hist = [](const char* name,
                       const analytics::LogHistogram& hist) {
    std::printf("%s (size bin -> count):\n", name);
    for (const auto& bin : hist.bins()) {
      std::printf("  [%7.0f, %7.0f)  %6lu  ",
                  bin.lo, bin.hi, static_cast<unsigned long>(bin.count));
      // Log-scaled bar.
      int stars = static_cast<int>(std::log10(bin.count + 1) * 12);
      for (int i = 0; i < stars; ++i) std::printf("*");
      std::printf("\n");
    }
  };
  print_hist("trajectory sizes", counts.trajectory_sizes);
  print_hist("move sizes", counts.move_sizes);
  print_hist("stop sizes", counts.stop_sizes);
  return reporter.Write() ? 0 : 1;
}
