// Fig. 17 — per-user latency distribution of SeMiTri's stages for
// processing phone trajectories: compute episodes, store episodes, map
// matching, store matched results, landuse join.
//
// Paper shape to reproduce: computing episodes is the cheapest stage by
// orders of magnitude; storing results dominates (the paper's
// PostgreSQL writes; here CSV write-through); map matching costs more
// than the landuse join. Paper means (s/daily trajectory): compute
// 0.008, store episodes 3.959, map match 0.162, store match 0.292,
// landuse 0.088.

#include <cstdio>
#include <filesystem>

#include "analytics/latency_profiler.h"
#include "bench_util.h"
#include "core/pipeline.h"
#include "datagen/presets.h"

using namespace semitri;

int main() {
  benchutil::BenchReporter reporter("fig17_latency");
  benchutil::PrintHeader("Fig. 17: per-layer latency per daily trajectory",
                         "paper Fig. 17 + the Sec 5.4 stage means");

  datagen::World world = benchutil::MakeCity(/*seed=*/901);
  datagen::DatasetFactory factory(&world, /*seed=*/902);
  const int kNumUsers = 6;
  datagen::Dataset people = factory.NokiaPeople(kNumUsers, /*num_days=*/14);

  std::string dir =
      (std::filesystem::temp_directory_path() / "semitri_fig17").string();
  std::filesystem::remove_all(dir);

  const char* stages[] = {core::kStageComputeEpisode,
                          core::kStageStoreEpisode, core::kStageMapMatch,
                          core::kStageStoreMatch, core::kStageLanduseJoin,
                          core::kStagePointAnnotation};

  std::printf("%-6s %14s %14s %14s %14s %14s %14s\n", "user",
              "compute_ep", "store_ep", "map_match", "store_match",
              "landuse", "point_annot");
  for (const datagen::SimulatedTrack& track : people.tracks) {
    store::StoreConfig store_config;
    store_config.write_through_dir =
        dir + "/user" + std::to_string(track.object_id);
    store::SemanticTrajectoryStore store(store_config);
    analytics::LatencyProfiler profiler;
    core::SemiTriPipeline pipeline(&world.regions, &world.roads,
                                   &world.pois, core::PipelineConfig{},
                                   &store, &profiler);
    auto results = pipeline.ProcessStream(
        track.object_id, track.points,
        static_cast<core::TrajectoryId>(track.object_id) * 1000);
    if (!results.ok()) {
      std::fprintf(stderr, "pipeline failed: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    std::printf("%-6lld", static_cast<long long>(track.object_id + 1));
    for (const char* stage : stages) {
      std::printf(" %12.6fs", profiler.Mean(stage));
    }
    std::printf("\n");
  }
  std::printf("\npaper means (s/daily trajectory, PostgreSQL store): "
              "compute 0.008, store episodes 3.959,\nmap match 0.162, "
              "store match 0.292, landuse join 0.088 — storing dominates "
              "computing,\nas it does above (CSV write-through store).\n");
  std::filesystem::remove_all(dir);
  return reporter.Write() ? 0 : 1;
}
