#ifndef SEMITRI_BENCH_BENCH_UTIL_H_
#define SEMITRI_BENCH_BENCH_UTIL_H_

// Shared scaffolding for the figure/table reproduction benches. Every
// bench prints the paper's rows/series next to the measured values;
// absolute sizes are scaled down (synthetic corpora regenerate per run)
// but distribution shapes are the reproduction target (see
// EXPERIMENTS.md).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "datagen/world.h"

namespace semitri::benchutil {

// Minimal flat-object JSON emitter for machine-readable bench output
// (CI archives these files next to the human-readable stdout tables).
// Keys are emitted in insertion order; values are numbers or strings.
class JsonWriter {
 public:
  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    entries_.emplace_back(key, buf);
  }
  void Add(const std::string& key, size_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    for (char c : value) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    entries_.emplace_back(key, quoted);
  }

  // Writes `{"k": v, ...}`; returns false on I/O failure.
  bool WriteToFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{");
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "%s\n  \"%s\": %s", i == 0 ? "" : ",",
                   entries_[i].first.c_str(), entries_[i].second.c_str());
    }
    std::fprintf(f, "\n}\n");
    return std::fclose(f) == 0;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

// --- machine-readable run records (BENCH_<name>.json) -----------------
// Every bench finishes by calling BenchReporter::Write(), which lands a
// flat-JSON run record at $SEMITRI_BENCH_DIR/BENCH_<name>.json (default:
// the working directory — CI runs benches from the repo root, so the
// committed baselines live there too). tools/bench_compare diffs two
// such sets; CI's perf-gate job fails on >5% regression of any gated
// metric. Schema (schema_version 1, all keys flat):
//   schema_version, bench, git_rev, wall_ns      always present
//   <section>_{iters,wall_ns,p50_ns,p99_ns}      one per TimeSection()
//   free-form numeric keys                       Metric()
//   gated_ratios / gated_zeros                   comma-joined key lists
//                                                naming the gated metrics
// Gated ratios are machine-relative (batched kernel vs. an in-process
// scalar reference), so a baseline recorded on one machine remains
// comparable on another; gated zeros are counters that must stay
// exactly zero (the steady-state-allocation contract).
class BenchReporter {
 public:
  explicit BenchReporter(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
    json_.Add("schema_version", static_cast<size_t>(1));
    json_.Add("bench", name_);
    const char* rev = std::getenv("SEMITRI_GIT_REV");
    json_.Add("git_rev", std::string(rev != nullptr ? rev : "unknown"));
  }

  // Runs `fn` `iters` times, recording the section's total wall time
  // and per-iteration p50/p99 under <section>_* keys. Returns the p50
  // per-iteration nanoseconds (the median is robust to scheduler
  // outliers, which a run total is not).
  template <typename Fn>
  double TimeSection(const std::string& section, int iters, Fn&& fn) {
    std::vector<double> ns(static_cast<size_t>(iters));
    for (int i = 0; i < iters; ++i) {
      auto t0 = std::chrono::steady_clock::now();
      fn();
      ns[static_cast<size_t>(i)] =
          std::chrono::duration<double, std::nano>(
              std::chrono::steady_clock::now() - t0)
              .count();
    }
    return RecordSection(section, &ns);
  }

  // The gated-speedup harness: interleaves batched/reference
  // iterations and gates the MEDIAN of the per-pair time ratios.
  // Adjacent measurements share the machine's momentary state (clock
  // frequency, cache pressure, co-tenant load), so the pairwise ratio
  // is far more reproducible run to run than a ratio of two
  // independently-timed sections — which is what lets the perf-gate
  // hold a 5% threshold against a committed baseline. Records both
  // sections' <section>_* keys, gates `key`, and returns the median
  // ratio (reference time / batched time, higher is better).
  template <typename FnBatched, typename FnReference>
  double GatePairedSpeedup(const std::string& key,
                           const std::string& batched_section,
                           const std::string& reference_section, int iters,
                           FnBatched&& batched, FnReference&& reference) {
    std::vector<double> batched_ns(static_cast<size_t>(iters));
    std::vector<double> reference_ns(static_cast<size_t>(iters));
    std::vector<double> ratio(static_cast<size_t>(iters));
    for (int i = 0; i < iters; ++i) {
      auto t0 = std::chrono::steady_clock::now();
      batched();
      auto t1 = std::chrono::steady_clock::now();
      reference();
      auto t2 = std::chrono::steady_clock::now();
      batched_ns[static_cast<size_t>(i)] =
          std::chrono::duration<double, std::nano>(t1 - t0).count();
      reference_ns[static_cast<size_t>(i)] =
          std::chrono::duration<double, std::nano>(t2 - t1).count();
      ratio[static_cast<size_t>(i)] =
          reference_ns[static_cast<size_t>(i)] /
          batched_ns[static_cast<size_t>(i)];
    }
    RecordSection(batched_section, &batched_ns);
    RecordSection(reference_section, &reference_ns);
    size_t mid = ratio.size() / 2;
    std::nth_element(ratio.begin(), ratio.begin() + static_cast<long>(mid),
                     ratio.end());
    GateRatio(key, ratio[mid]);
    return ratio[mid];
  }

  // Informational metric: recorded, but not gated by bench_compare.
  void Metric(const std::string& key, double value) { json_.Add(key, value); }
  void Metric(const std::string& key, size_t value) { json_.Add(key, value); }

  // Machine-relative higher-is-better ratio, gated by bench_compare at
  // the 5% threshold against the committed baseline.
  void GateRatio(const std::string& key, double value) {
    json_.Add(key, value);
    Append(&gated_ratios_, key);
  }

  // Counter that must be exactly zero in every run (e.g. steady-state
  // scratch allocations); bench_compare fails the moment it leaves 0.
  void GateZero(const std::string& key, size_t value) {
    json_.Add(key, value);
    Append(&gated_zeros_, key);
  }

  // Writes BENCH_<name>.json; false (with a message) on I/O failure.
  bool Write() {
    if (!gated_ratios_.empty()) json_.Add("gated_ratios", gated_ratios_);
    if (!gated_zeros_.empty()) json_.Add("gated_zeros", gated_zeros_);
    double wall = std::chrono::duration<double, std::nano>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
    json_.Add("wall_ns", wall);
    const char* dir = std::getenv("SEMITRI_BENCH_DIR");
    std::string path = std::string(dir != nullptr && dir[0] != '\0' ? dir : ".") +
                       "/BENCH_" + name_ + ".json";
    if (!json_.WriteToFile(path)) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::printf("bench json: %s\n", path.c_str());
    return true;
  }

 private:
  // Emits <section>_{iters,wall_ns,p50_ns,p99_ns}; reorders *samples.
  // Returns the p50 per-iteration nanoseconds.
  double RecordSection(const std::string& section,
                       std::vector<double>* samples) {
    std::vector<double>& ns = *samples;
    double total = 0.0;
    for (double d : ns) total += d;
    auto pct = [&](double p) {
      size_t idx =
          static_cast<size_t>(p * static_cast<double>(ns.size() - 1));
      std::nth_element(ns.begin(), ns.begin() + static_cast<long>(idx),
                       ns.end());
      return ns[idx];
    };
    double p99 = pct(0.99);
    double p50 = pct(0.50);
    json_.Add(section + "_iters", ns.size());
    json_.Add(section + "_wall_ns", total);
    json_.Add(section + "_p50_ns", p50);
    json_.Add(section + "_p99_ns", p99);
    return p50;
  }

  static void Append(std::string* list, const std::string& key) {
    if (!list->empty()) *list += ',';
    *list += key;
  }

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  JsonWriter json_;
  std::string gated_ratios_;
  std::string gated_zeros_;
};

// The standard synthetic city used by the benches.
inline datagen::World MakeCity(uint64_t seed, double extent_meters = 6000.0,
                               int num_pois = 3000) {
  datagen::WorldConfig config;
  config.seed = seed;
  config.extent_meters = extent_meters;
  config.num_pois = num_pois;
  return datagen::WorldGenerator(config).Generate();
}

inline void PrintHeader(const std::string& title,
                        const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline std::string Pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%5.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace semitri::benchutil

#endif  // SEMITRI_BENCH_BENCH_UTIL_H_
