#ifndef SEMITRI_BENCH_BENCH_UTIL_H_
#define SEMITRI_BENCH_BENCH_UTIL_H_

// Shared scaffolding for the figure/table reproduction benches. Every
// bench prints the paper's rows/series next to the measured values;
// absolute sizes are scaled down (synthetic corpora regenerate per run)
// but distribution shapes are the reproduction target (see
// EXPERIMENTS.md).

#include <cstdio>
#include <string>

#include "datagen/world.h"

namespace semitri::benchutil {

// The standard synthetic city used by the benches.
inline datagen::World MakeCity(uint64_t seed, double extent_meters = 6000.0,
                               int num_pois = 3000) {
  datagen::WorldConfig config;
  config.seed = seed;
  config.extent_meters = extent_meters;
  config.num_pois = num_pois;
  return datagen::WorldGenerator(config).Generate();
}

inline void PrintHeader(const std::string& title,
                        const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline std::string Pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%5.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace semitri::benchutil

#endif  // SEMITRI_BENCH_BENCH_UTIL_H_
