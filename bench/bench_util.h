#ifndef SEMITRI_BENCH_BENCH_UTIL_H_
#define SEMITRI_BENCH_BENCH_UTIL_H_

// Shared scaffolding for the figure/table reproduction benches. Every
// bench prints the paper's rows/series next to the measured values;
// absolute sizes are scaled down (synthetic corpora regenerate per run)
// but distribution shapes are the reproduction target (see
// EXPERIMENTS.md).

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "datagen/world.h"

namespace semitri::benchutil {

// Minimal flat-object JSON emitter for machine-readable bench output
// (CI archives these files next to the human-readable stdout tables).
// Keys are emitted in insertion order; values are numbers or strings.
class JsonWriter {
 public:
  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    entries_.emplace_back(key, buf);
  }
  void Add(const std::string& key, size_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    for (char c : value) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    entries_.emplace_back(key, quoted);
  }

  // Writes `{"k": v, ...}`; returns false on I/O failure.
  bool WriteToFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{");
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "%s\n  \"%s\": %s", i == 0 ? "" : ",",
                   entries_[i].first.c_str(), entries_[i].second.c_str());
    }
    std::fprintf(f, "\n}\n");
    return std::fclose(f) == 0;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

// The standard synthetic city used by the benches.
inline datagen::World MakeCity(uint64_t seed, double extent_meters = 6000.0,
                               int num_pois = 3000) {
  datagen::WorldConfig config;
  config.seed = seed;
  config.extent_meters = extent_meters;
  config.num_pois = num_pois;
  return datagen::WorldGenerator(config).Generate();
}

inline void PrintHeader(const std::string& title,
                        const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline std::string Pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%5.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace semitri::benchutil

#endif  // SEMITRI_BENCH_BENCH_UTIL_H_
