// Fig. 9 — Landuse category distribution for taxi data (trajectory /
// move / stop columns), plus the §5.2 episode counts and the storage-
// compression figure (99.7 % in the paper).
//
// Paper shape to reproduce: building areas (1.2) and transportation
// areas (1.3) dominate (~83 % of GPS points combined), moves cover more
// landuse than stops.

#include <cstdio>
#include <set>

#include "analytics/trajectory_stats.h"
#include "bench_util.h"
#include "core/pipeline.h"
#include "datagen/presets.h"

using namespace semitri;

int main() {
  benchutil::BenchReporter reporter("fig9_landuse");
  benchutil::PrintHeader(
      "Fig. 9: landuse distribution over taxi trajectories",
      "paper Fig. 9 + §5.2 episode counts and compression");

  datagen::World world = benchutil::MakeCity(/*seed=*/201);
  datagen::DatasetFactory factory(&world, /*seed=*/202);
  datagen::Dataset taxis = factory.LausanneTaxis(
      /*num_taxis=*/2, /*num_days=*/8, /*shift_hours=*/5.0);

  core::PipelineConfig config;
  core::SemiTriPipeline pipeline(&world.regions, nullptr, nullptr, config);
  region::RegionAnnotator annotator(&world.regions);

  analytics::LabeledDistribution trajectory_dist, move_dist, stop_dist;
  size_t num_trajectories = 0, num_moves = 0, num_stops = 0;
  size_t raw_records = 0, region_tuples = 0;
  std::set<core::PlaceId> distinct_cells;
  std::set<core::PlaceId> move_cells, stop_cells;

  for (const datagen::SimulatedTrack& track : taxis.tracks) {
    auto results = pipeline.ProcessStream(track.object_id, track.points,
                                          /*first_id=*/
                                          static_cast<core::TrajectoryId>(
                                              track.object_id) * 1000);
    if (!results.ok()) {
      std::fprintf(stderr, "pipeline failed: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    for (const core::PipelineResult& day : *results) {
      ++num_trajectories;
      num_moves += day.NumMoves();
      num_stops += day.NumStops();
      raw_records += day.cleaned.size();
      analytics::LanduseBreakdown breakdown =
          analytics::ComputeLanduseBreakdown(day.cleaned, day.episodes,
                                             annotator, world.regions);
      for (const auto& [code, count] : breakdown.trajectory.counts()) {
        trajectory_dist.Add(code, count);
      }
      for (const auto& [code, count] : breakdown.move.counts()) {
        move_dist.Add(code, count);
      }
      for (const auto& [code, count] : breakdown.stop.counts()) {
        stop_dist.Add(code, count);
      }
      // Region tuples for the compression figure (per-point Algorithm 1,
      // merged by category) + the distinct cells touched.
      core::StructuredSemanticTrajectory region_layer =
          annotator.AnnotateTrajectory(day.cleaned);
      region_tuples += region_layer.episodes.size();
      // Distinct landuse cells overall and split by motion context (the
      // §5.2 "move part covers 79.25% of the taxi landuse area" split).
      std::vector<core::PlaceId> point_cells =
          annotator.ClassifyPoints(day.cleaned);
      std::vector<core::EpisodeKind> kind(day.cleaned.size(),
                                          core::EpisodeKind::kMove);
      for (const core::Episode& ep : day.episodes) {
        for (size_t i = ep.begin; i < ep.end; ++i) kind[i] = ep.kind;
      }
      for (size_t i = 0; i < point_cells.size(); ++i) {
        if (point_cells[i] == core::kInvalidPlaceId) continue;
        distinct_cells.insert(point_cells[i]);
        if (kind[i] == core::EpisodeKind::kMove) {
          move_cells.insert(point_cells[i]);
        } else if (kind[i] == core::EpisodeKind::kStop) {
          stop_cells.insert(point_cells[i]);
        }
      }
    }
  }

  std::printf("context: %zu daily trajectories, %zu moves, %zu stops\n",
              num_trajectories, num_moves, num_stops);
  std::printf("paper:   172 daily trajectories, 1,824 moves, 1,786 stops\n\n");

  std::printf("%-6s %-38s %10s %10s %10s\n", "code", "category",
              "trajectory", "move", "stop");
  for (int c = 0; c < region::kNumLanduseCategories; ++c) {
    auto category = static_cast<region::LanduseCategory>(c);
    const char* code = region::LanduseCategoryCode(category);
    double t = trajectory_dist.Fraction(code);
    double m = move_dist.Fraction(code);
    double s = stop_dist.Fraction(code);
    if (t == 0.0 && m == 0.0 && s == 0.0) continue;
    std::printf("%-6s %-38s %10s %10s %10s\n", code,
                region::LanduseCategoryName(category),
                benchutil::Pct(t).c_str(), benchutil::Pct(m).c_str(),
                benchutil::Pct(s).c_str());
  }
  double urban_share = trajectory_dist.Fraction("1.2") +
                       trajectory_dist.Fraction("1.3");
  std::printf("\n1.2 + 1.3 share of GPS points: %s   (paper: ~83%%,"
              " 46.6%% + 36.1%%)\n",
              benchutil::Pct(urban_share).c_str());

  double area_total =
      static_cast<double>(move_cells.size() + stop_cells.size());
  if (area_total > 0.0) {
    std::printf("\nlanduse-area coverage: moves %.2f%%, stops %.2f%%   "
                "(paper: 79.25%% / 20.75%%)\n",
                100.0 * static_cast<double>(move_cells.size()) / area_total,
                100.0 * static_cast<double>(stop_cells.size()) / area_total);
  }

  analytics::CompressionStats compression;
  compression.raw_records = raw_records;
  compression.semantic_tuples = region_tuples;
  std::printf("\nstorage compression: %zu GPS records -> %zu region tuples"
              " (%zu distinct cells)\n",
              raw_records, region_tuples, distinct_cells.size());
  std::printf("compression ratio: %.2f%%   (paper: 99.7%%, 3M records ->"
              " 8,385 cells)\n",
              compression.CompressionRatio() * 100.0);
  return reporter.Write() ? 0 : 1;
}
