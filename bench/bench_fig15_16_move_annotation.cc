// Figs. 15 & 16 — qualitative move annotation: a home-office commute
// decomposed into (street name, start time, transportation mode) rows,
// via metro, bicycle and bus.
//
// Paper shape to reproduce: Fig. 15(d)'s table — walk legs on named
// streets bracketing a metro leg (M1); Fig. 16's bike and bus variants
// (bus trips begin and end with walking).

#include <cstdio>

#include "bench_util.h"
#include "datagen/movement.h"
#include "road/line_annotator.h"
#include "traj/point_batch.h"

using namespace semitri;

namespace {

void PrintCommute(const datagen::World& world,
                  datagen::MovementSimulator& sim,
                  road::TransportMode mode, const geo::Point& home,
                  const geo::Point& office) {
  datagen::SimulatedTrack track;
  datagen::SensorProfile sensor = datagen::SmartphoneSensor();
  sensor.sample_interval_seconds = 5.0;
  sensor.p_gap_start = 0.0;
  auto arrival = sim.AppendTrip(&track, home, office, mode,
                                /*start=*/8.0 * 3600.0 + 50.0 * 60.0,
                                sensor);
  if (!arrival.ok()) {
    std::printf("  (trip planning failed: %s)\n",
                arrival.status().ToString().c_str());
    return;
  }
  road::LineAnnotator annotator(&world.roads);
  traj::PointBatch batch;
  batch.BuildFrom(track.points);
  auto episodes = annotator.AnnotateMove(batch.View(), 0);
  std::printf("  %-22s %-10s %-9s\n", "street", "start", "mode");
  for (const auto& ep : episodes) {
    if (!ep.place.valid()) continue;
    int hh = static_cast<int>(ep.time_in) / 3600;
    int mm = (static_cast<int>(ep.time_in) % 3600) / 60;
    int ss = static_cast<int>(ep.time_in) % 60;
    std::printf("  %-22s %02d:%02d:%02d   %-9s\n",
                ep.FindAnnotation("road_name").c_str(), hh, mm, ss,
                ep.FindAnnotation("transport_mode").c_str());
  }
}

}  // namespace

int main() {
  benchutil::BenchReporter reporter("fig15_16_move_annotation");
  benchutil::PrintHeader(
      "Figs. 15/16: home-office move annotation (metro / bike / bus)",
      "paper Fig. 15(d) street table and Fig. 16 variants");

  datagen::World world = benchutil::MakeCity(/*seed=*/801);
  datagen::MovementSimulator sim(&world, /*seed=*/802);
  geo::Point home = world.Center() + geo::Point{-1700.0, -1400.0};
  geo::Point office = world.Center() + geo::Point{1500.0, 1100.0};

  std::printf("\n(a) via Metro (paper Fig. 15: walk -> M1 -> walk):\n");
  PrintCommute(world, sim, road::TransportMode::kMetro, home, office);
  std::printf("\n(b) via Bike (paper Fig. 16a):\n");
  PrintCommute(world, sim, road::TransportMode::kBicycle, home, office);
  std::printf("\n(c) via Bus (paper Fig. 16b: walking at both ends):\n");
  PrintCommute(world, sim, road::TransportMode::kBus, home, office);
  return reporter.Write() ? 0 : 1;
}
