// Streaming annotation throughput & latency: how fast the online
// subsystem (stream::SessionManager over a shared pipeline) ingests a
// multi-object GPS feed, and how long a closed episode waits for its
// provisional annotation pass.
//
// Reported:
//   * ingest throughput (points/s) for the live path vs. the offline
//     batch ProcessStream on the same corpus;
//   * per-episode annotation latency p50/p99 (close -> annotated, the
//     paper's §1.2 "annotation in real-time" requirement);
//   * per-trajectory finalization latency p50/p99;
//   * WAL durability overhead: the live pass repeated with the store in
//     durable mode (every Put framed into the write-ahead log, one
//     checkpoint at the end) vs. the in-memory baseline.
//
// `bench_stream_throughput smoke` runs a scaled-down corpus for CI.
// Machine-readable numbers (throughputs, WAL overhead, kernel speedup,
// steady-state allocation gate) are written to
// BENCH_stream_throughput.json (see benchutil::BenchReporter).

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <cmath>
#include <limits>

#include "analytics/latency_profiler.h"
#include "bench_util.h"
#include "common/rng.h"
#include "hmm/hmm.h"
#include "stream/annotation_session.h"
#include "core/pipeline.h"
#include "datagen/presets.h"
#include "store/semantic_trajectory_store.h"
#include "stream/session_manager.h"

using namespace semitri;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}


// Pre-refactor Viterbi over nested-vector delta/psi rows, kept verbatim
// as the scalar reference for the kernel_speedup gate — the per-row
// allocations and double-indirect walks the flat EmissionMatrix +
// arena-backed decode replaced. Returns the path log-probability as a
// checksum.
double ReferenceViterbiScalar(const hmm::HmmModel& model,
                              const hmm::EmissionMatrix& emissions) {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  auto safe_log = [](double p) { return p > 0.0 ? std::log(p) : kNegInf; };
  const size_t n = model.num_states();
  const size_t t_max = emissions.rows();
  if (t_max == 0) return 0.0;
  auto row_emission = [&](size_t t, size_t i) {
    double sum = 0.0;
    for (double e : emissions.Row(t)) sum += e;
    if (sum <= 0.0) return 1.0 / static_cast<double>(n);
    return emissions.At(t, i);
  };
  std::vector<std::vector<double>> delta(t_max, std::vector<double>(n));
  std::vector<std::vector<size_t>> psi(t_max, std::vector<size_t>(n, 0));
  for (size_t i = 0; i < n; ++i) {
    delta[0][i] = safe_log(model.initial[i]) + safe_log(row_emission(0, i));
  }
  for (size_t t = 1; t < t_max; ++t) {
    for (size_t j = 0; j < n; ++j) {
      double best = kNegInf;
      size_t best_i = 0;
      for (size_t i = 0; i < n; ++i) {
        double v = delta[t - 1][i] + safe_log(model.transition[i][j]);
        if (v > best) {
          best = v;
          best_i = i;
        }
      }
      delta[t][j] = best + safe_log(row_emission(t, j));
      psi[t][j] = best_i;
    }
  }
  double best = kNegInf;
  for (size_t i = 0; i < n; ++i) best = std::max(best, delta[t_max - 1][i]);
  return best;
}

void PrintSummary(const char* label,
                  const analytics::LatencyProfiler::StageSummary& s) {
  std::printf("  %-28s %7zu samples   p50 %9.3f ms   p99 %9.3f ms   "
              "mean %9.3f ms\n",
              label, s.count, s.p50 * 1e3, s.p99 * 1e3, s.mean * 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;
  benchutil::PrintHeader(
      "Streaming annotation throughput & episode latency",
      "Sec 1.2 real-time requirement; offline batch as baseline");

  datagen::World world = benchutil::MakeCity(/*seed=*/771,
                                             smoke ? 3000.0 : 6000.0,
                                             smoke ? 500 : 3000);
  datagen::DatasetFactory factory(&world, /*seed=*/772);
  const int kUsers = smoke ? 2 : 6;
  const int kDays = smoke ? 1 : 7;
  datagen::Dataset people = factory.NokiaPeople(kUsers, kDays);
  size_t total_points = people.TotalRecords();
  std::printf("corpus: %d users x %d days, %zu gps records%s\n\n", kUsers,
              kDays, total_points, smoke ? " (smoke)" : "");

  // --- offline baseline -------------------------------------------------
  double offline_seconds = 0.0;
  {
    store::SemanticTrajectoryStore store;
    core::SemiTriPipeline pipeline(&world.regions, &world.roads, &world.pois,
                                   core::PipelineConfig{}, &store);
    auto start = std::chrono::steady_clock::now();
    for (const datagen::SimulatedTrack& track : people.tracks) {
      auto results = pipeline.ProcessStream(
          track.object_id, track.points,
          static_cast<core::TrajectoryId>(track.object_id) * 1000);
      if (!results.ok()) {
        std::fprintf(stderr, "offline pipeline failed: %s\n",
                     results.status().ToString().c_str());
        return 1;
      }
    }
    offline_seconds = SecondsSince(start);
  }

  // --- streaming: sessions with per-episode annotation ------------------
  // Round-robin across users: the arrival pattern a live feed would
  // have, maximizing session switching.
  size_t longest = 0;
  for (const datagen::SimulatedTrack& t : people.tracks) {
    longest = std::max(longest, t.points.size());
  }
  auto run_live = [&](store::SemanticTrajectoryStore& store,
                      analytics::LatencyProfiler* profiler,
                      double* seconds) -> bool {
    core::SemiTriPipeline pipeline(&world.regions, &world.roads,
                                   &world.pois, core::PipelineConfig{},
                                   &store, profiler);
    stream::SessionManager manager(&pipeline,
                                   stream::SessionManagerConfig{});
    auto start = std::chrono::steady_clock::now();
    for (size_t k = 0; k < longest; ++k) {
      for (const datagen::SimulatedTrack& track : people.tracks) {
        if (k >= track.points.size()) continue;
        auto fed = manager.Feed(track.object_id, track.points[k]);
        if (!fed.ok()) {
          std::fprintf(stderr, "feed failed: %s\n",
                       fed.status().ToString().c_str());
          return false;
        }
      }
    }
    if (auto status = manager.CloseAll(); !status.ok()) {
      std::fprintf(stderr, "close failed: %s\n", status.ToString().c_str());
      return false;
    }
    *seconds = SecondsSince(start);
    stream::SessionManager::Stats stats = manager.stats();
    std::printf("%s %9.0f points/s  (%.3f s total, %zu "
                "episodes closed, %zu annotation passes)\n",
                profiler != nullptr ? "live sessions:  " : "live (WAL):     ",
                static_cast<double>(total_points) / *seconds, *seconds,
                stats.episodes_closed, stats.annotation_passes);
    return true;
  };

  std::printf("offline batch:   %9.0f points/s  (%.3f s total)\n",
              static_cast<double>(total_points) / offline_seconds,
              offline_seconds);

  store::SemanticTrajectoryStore store;
  analytics::LatencyProfiler profiler;
  double live_seconds = 0.0;
  if (!run_live(store, &profiler, &live_seconds)) return 1;

  // Same live pass in durable mode: every Put framed into the WAL
  // first, one atomic checkpoint compaction at the end. The delta vs.
  // the in-memory pass is the cost of crash safety.
  std::filesystem::path wal_dir =
      std::filesystem::temp_directory_path() /
      ("semitri_bench_wal_" + std::to_string(::getpid()));
  std::filesystem::remove_all(wal_dir);
  store::StoreConfig durable_config;
  durable_config.durable_dir = wal_dir.string();
  store::SemanticTrajectoryStore durable_store(durable_config);
  double wal_seconds = 0.0;
  bool wal_ok = run_live(durable_store, nullptr, &wal_seconds);
  if (wal_ok) {
    if (auto status = durable_store.Sync(); !status.ok()) {
      std::fprintf(stderr, "wal sync failed: %s\n",
                   status.ToString().c_str());
      wal_ok = false;
    }
  }
  if (wal_ok) {
    if (auto status = durable_store.Checkpoint(); !status.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n",
                   status.ToString().c_str());
      wal_ok = false;
    }
  }
  std::filesystem::remove_all(wal_dir);
  if (!wal_ok) return 1;
  if (!durable_store.ContentEquals(store)) {
    std::fprintf(stderr, "durable store diverged from in-memory store\n");
    return 1;
  }
  double wal_overhead =
      live_seconds > 0.0 ? (wal_seconds - live_seconds) / live_seconds : 0.0;
  std::printf("WAL durability overhead: %s  (%.3f s -> %.3f s)\n\n",
              benchutil::Pct(wal_overhead).c_str(), live_seconds,
              wal_seconds);

  PrintSummary("episode annotation latency",
               profiler.Summarize(stream::kStreamStageEpisodeAnnotation));
  PrintSummary("trajectory finalization",
               profiler.Summarize(stream::kStreamStageFinalizeTrajectory));

  // --- overloaded pass --------------------------------------------------
  // The same corpus pushed through deliberately tight admission budgets
  // (shed-oldest-idle): how much throughput costs when the manager has
  // to evict sessions to admit work, how often it sheds, and what the
  // admission decision itself costs per fix (p50/p99 Feed latency).
  double overload_seconds = 0.0;
  std::vector<double> admission_latencies;
  stream::SessionManager::Stats overload_stats;
  {
    store::SemanticTrajectoryStore overload_store;
    core::SemiTriPipeline pipeline(&world.regions, &world.roads, &world.pois,
                                   core::PipelineConfig{}, &overload_store);
    stream::SessionManagerConfig mc;
    mc.admission.max_sessions =
        std::max<size_t>(1, static_cast<size_t>(kUsers) / 3);
    mc.admission.max_buffered_fixes = smoke ? 2000 : 20000;
    mc.admission.overload_policy = stream::OverloadPolicy::kShedOldestIdle;
    stream::SessionManager manager(&pipeline, mc);

    admission_latencies.reserve(total_points);
    // Chunked round-robin: enough switching to force shedding without
    // degenerating into one eviction per fix.
    const size_t kChunk = 200;
    auto start = std::chrono::steady_clock::now();
    for (size_t base = 0; base < longest; base += kChunk) {
      for (const datagen::SimulatedTrack& track : people.tracks) {
        for (size_t k = base;
             k < std::min(base + kChunk, track.points.size()); ++k) {
          auto fed_start = std::chrono::steady_clock::now();
          auto fed = manager.Feed(track.object_id, track.points[k]);
          admission_latencies.push_back(SecondsSince(fed_start));
          if (!fed.ok()) {
            std::fprintf(stderr, "overloaded feed failed: %s\n",
                         fed.status().ToString().c_str());
            return 1;
          }
        }
      }
    }
    if (auto status = manager.CloseAll(); !status.ok()) {
      std::fprintf(stderr, "overloaded close failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    overload_seconds = SecondsSince(start);
    overload_stats = manager.stats();
  }
  auto percentile = [&](double p) {
    size_t idx = static_cast<size_t>(
        p * static_cast<double>(admission_latencies.size() - 1));
    std::nth_element(admission_latencies.begin(),
                     admission_latencies.begin() + idx,
                     admission_latencies.end());
    return admission_latencies[idx];
  };
  double admission_p50 = percentile(0.50);
  double admission_p99 = percentile(0.99);
  double shed_rate =
      static_cast<double>(overload_stats.sessions_shed) * 1000.0 /
      static_cast<double>(total_points);
  std::printf("\noverloaded:      %9.0f points/s  (%.3f s total, %zu sheds "
              "= %.2f per 1k fixes)\n",
              static_cast<double>(total_points) / overload_seconds,
              overload_seconds, overload_stats.sessions_shed, shed_rate);
  std::printf("  admission latency            p50 %9.3f ms   p99 %9.3f ms\n",
              admission_p50 * 1e3, admission_p99 * 1e3);

  std::printf("\nstore end state: %zu trajectories, %zu gps records, %zu "
              "semantic episodes\n",
              store.num_trajectories(), store.num_gps_records(),
              store.num_semantic_episodes());

  // --- kernel section (perf-gate) ---------------------------------------
  // Flat arena-backed Viterbi vs. the nested-vector reference above, on
  // a stop sequence shaped like the streaming workload's decode calls.
  benchutil::BenchReporter reporter("stream_throughput");
  {
    const size_t kStates = 8;
    const size_t kStops = smoke ? 2000 : 20000;
    hmm::HmmModel model;
    model.initial.assign(kStates, 1.0 / static_cast<double>(kStates));
    model.transition = hmm::MakeDefaultTransition(kStates, 0.6);
    hmm::EmissionMatrix emissions;
    emissions.Reset(kStates);
    common::Rng rng(99);
    for (size_t t = 0; t < kStops; ++t) {
      for (double& e : emissions.AppendRow()) e = rng.Uniform(0.01, 1.0);
    }
    common::Arena arena;
    const int kIters = 15;
    double checksum = 0.0;
    double kernel_speedup = reporter.GatePairedSpeedup(
        "kernel_speedup", "viterbi_flat", "viterbi_scalar_ref", kIters,
        [&] {
          arena.Reset();
          auto result = hmm::Viterbi(model, emissions, nullptr, &arena);
          if (!result.ok()) std::abort();
        },
        [&] { checksum += ReferenceViterbiScalar(model, emissions); });
    reporter.Metric("scalar_ref_checksum", checksum);
    std::printf("\nkernel section: flat-vs-nested viterbi paired-median "
                "speedup %.2fx\n",
                kernel_speedup);
  }

  // --- steady-state allocation gate -------------------------------------
  // One AnnotationSession fed the same track twice: after the warm-up
  // pass, replaying it must grow neither the arena block count nor any
  // scratch buffer (the zero steady-state-allocation contract; the
  // in-process assertion lives in tests/stream_scratch_test.cc).
  {
    core::SemiTriPipeline pipeline(&world.regions, &world.roads, &world.pois,
                                   core::PipelineConfig{});
    stream::AnnotationSession session(&pipeline, /*object_id=*/4242);
    const datagen::SimulatedTrack& track = people.tracks.front();
    auto feed_track = [&]() -> bool {
      for (const core::GpsPoint& fix : track.points) {
        if (!session.Feed(fix).ok()) return false;
      }
      return session.Flush().ok();
    };
    if (!feed_track()) {
      std::fprintf(stderr, "scratch warm-up pass failed\n");
      return 1;
    }
    size_t warm_blocks = session.scratch().point.arena.num_block_allocations();
    size_t warm_capacity = session.scratch().capacity_bytes();
    if (!feed_track()) {
      std::fprintf(stderr, "scratch steady-state pass failed\n");
      return 1;
    }
    size_t steady_allocs =
        (session.scratch().point.arena.num_block_allocations() - warm_blocks) +
        (session.scratch().capacity_bytes() != warm_capacity ? 1 : 0);
    reporter.GateZero("scratch_steady_state_allocs", steady_allocs);
    reporter.Metric("scratch_capacity_bytes", warm_capacity);
    std::printf("steady-state scratch allocations after warm-up: %zu "
                "(scratch capacity %zu bytes)\n",
                steady_allocs, warm_capacity);
  }

  reporter.Metric("smoke", static_cast<size_t>(smoke ? 1 : 0));
  reporter.Metric("gps_records", total_points);
  reporter.Metric("offline_points_per_s",
                  static_cast<double>(total_points) / offline_seconds);
  reporter.Metric("live_points_per_s",
                  static_cast<double>(total_points) / live_seconds);
  reporter.Metric("live_wal_points_per_s",
                  static_cast<double>(total_points) / wal_seconds);
  reporter.Metric("wal_overhead_fraction", wal_overhead);
  reporter.Metric("overload_points_per_s",
                  static_cast<double>(total_points) / overload_seconds);
  reporter.Metric("overload_sessions_shed", overload_stats.sessions_shed);
  reporter.Metric("overload_shed_per_1k_fixes", shed_rate);
  reporter.Metric("overload_rejected_fixes",
                  overload_stats.overload_rejected_fixes);
  reporter.Metric("admission_p50_ms", admission_p50 * 1e3);
  reporter.Metric("admission_p99_ms", admission_p99 * 1e3);
  return reporter.Write() ? 0 : 1;
}
