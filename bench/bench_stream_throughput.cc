// Streaming annotation throughput & latency: how fast the online
// subsystem (stream::SessionManager over a shared pipeline) ingests a
// multi-object GPS feed, and how long a closed episode waits for its
// provisional annotation pass.
//
// Reported:
//   * ingest throughput (points/s) for the live path vs. the offline
//     batch ProcessStream on the same corpus;
//   * per-episode annotation latency p50/p99 (close -> annotated, the
//     paper's §1.2 "annotation in real-time" requirement);
//   * per-trajectory finalization latency p50/p99.
//
// `bench_stream_throughput smoke` runs a scaled-down corpus for CI.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analytics/latency_profiler.h"
#include "bench_util.h"
#include "core/pipeline.h"
#include "datagen/presets.h"
#include "store/semantic_trajectory_store.h"
#include "stream/session_manager.h"

using namespace semitri;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

void PrintSummary(const char* label,
                  const analytics::LatencyProfiler::StageSummary& s) {
  std::printf("  %-28s %7zu samples   p50 %9.3f ms   p99 %9.3f ms   "
              "mean %9.3f ms\n",
              label, s.count, s.p50 * 1e3, s.p99 * 1e3, s.mean * 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;
  benchutil::PrintHeader(
      "Streaming annotation throughput & episode latency",
      "Sec 1.2 real-time requirement; offline batch as baseline");

  datagen::World world = benchutil::MakeCity(/*seed=*/771,
                                             smoke ? 3000.0 : 6000.0,
                                             smoke ? 500 : 3000);
  datagen::DatasetFactory factory(&world, /*seed=*/772);
  const int kUsers = smoke ? 2 : 6;
  const int kDays = smoke ? 1 : 7;
  datagen::Dataset people = factory.NokiaPeople(kUsers, kDays);
  size_t total_points = people.TotalRecords();
  std::printf("corpus: %d users x %d days, %zu gps records%s\n\n", kUsers,
              kDays, total_points, smoke ? " (smoke)" : "");

  // --- offline baseline -------------------------------------------------
  double offline_seconds = 0.0;
  {
    store::SemanticTrajectoryStore store;
    core::SemiTriPipeline pipeline(&world.regions, &world.roads, &world.pois,
                                   core::PipelineConfig{}, &store);
    auto start = std::chrono::steady_clock::now();
    for (const datagen::SimulatedTrack& track : people.tracks) {
      auto results = pipeline.ProcessStream(
          track.object_id, track.points,
          static_cast<core::TrajectoryId>(track.object_id) * 1000);
      if (!results.ok()) {
        std::fprintf(stderr, "offline pipeline failed: %s\n",
                     results.status().ToString().c_str());
        return 1;
      }
    }
    offline_seconds = SecondsSince(start);
  }

  // --- streaming: sessions with per-episode annotation ------------------
  store::SemanticTrajectoryStore store;
  analytics::LatencyProfiler profiler;
  core::SemiTriPipeline pipeline(&world.regions, &world.roads, &world.pois,
                                 core::PipelineConfig{}, &store, &profiler);
  stream::SessionManager manager(&pipeline, stream::SessionManagerConfig{});

  auto start = std::chrono::steady_clock::now();
  // Round-robin across users: the arrival pattern a live feed would
  // have, maximizing session switching.
  size_t longest = 0;
  for (const datagen::SimulatedTrack& t : people.tracks) {
    longest = std::max(longest, t.points.size());
  }
  for (size_t k = 0; k < longest; ++k) {
    for (const datagen::SimulatedTrack& track : people.tracks) {
      if (k >= track.points.size()) continue;
      auto fed = manager.Feed(track.object_id, track.points[k]);
      if (!fed.ok()) {
        std::fprintf(stderr, "feed failed: %s\n",
                     fed.status().ToString().c_str());
        return 1;
      }
    }
  }
  if (auto status = manager.CloseAll(); !status.ok()) {
    std::fprintf(stderr, "close failed: %s\n", status.ToString().c_str());
    return 1;
  }
  double live_seconds = SecondsSince(start);

  stream::SessionManager::Stats stats = manager.stats();
  std::printf("offline batch:   %9.0f points/s  (%.3f s total)\n",
              static_cast<double>(total_points) / offline_seconds,
              offline_seconds);
  std::printf("live sessions:   %9.0f points/s  (%.3f s total, %zu "
              "episodes closed, %zu annotation passes)\n\n",
              static_cast<double>(total_points) / live_seconds, live_seconds,
              stats.episodes_closed, stats.annotation_passes);

  PrintSummary("episode annotation latency",
               profiler.Summarize(stream::kStreamStageEpisodeAnnotation));
  PrintSummary("trajectory finalization",
               profiler.Summarize(stream::kStreamStageFinalizeTrajectory));

  std::printf("\nstore end state: %zu trajectories, %zu gps records, %zu "
              "semantic episodes\n",
              store.num_trajectories(), store.num_gps_records(),
              store.num_semantic_episodes());
  return 0;
}
