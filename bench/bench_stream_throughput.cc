// Streaming annotation throughput & latency: how fast the online
// subsystem (stream::SessionManager over a shared pipeline) ingests a
// multi-object GPS feed, and how long a closed episode waits for its
// provisional annotation pass.
//
// Reported:
//   * ingest throughput (points/s) for the live path vs. the offline
//     batch ProcessStream on the same corpus;
//   * per-episode annotation latency p50/p99 (close -> annotated, the
//     paper's §1.2 "annotation in real-time" requirement);
//   * per-trajectory finalization latency p50/p99;
//   * WAL durability overhead: the live pass repeated with the store in
//     durable mode (every Put framed into the write-ahead log, one
//     checkpoint at the end) vs. the in-memory baseline.
//
// `bench_stream_throughput smoke` runs a scaled-down corpus for CI.
// Machine-readable numbers (throughputs + WAL overhead) are written to
// bench_stream_throughput.json in the working directory.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "analytics/latency_profiler.h"
#include "bench_util.h"
#include "core/pipeline.h"
#include "datagen/presets.h"
#include "store/semantic_trajectory_store.h"
#include "stream/session_manager.h"

using namespace semitri;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

void PrintSummary(const char* label,
                  const analytics::LatencyProfiler::StageSummary& s) {
  std::printf("  %-28s %7zu samples   p50 %9.3f ms   p99 %9.3f ms   "
              "mean %9.3f ms\n",
              label, s.count, s.p50 * 1e3, s.p99 * 1e3, s.mean * 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;
  benchutil::PrintHeader(
      "Streaming annotation throughput & episode latency",
      "Sec 1.2 real-time requirement; offline batch as baseline");

  datagen::World world = benchutil::MakeCity(/*seed=*/771,
                                             smoke ? 3000.0 : 6000.0,
                                             smoke ? 500 : 3000);
  datagen::DatasetFactory factory(&world, /*seed=*/772);
  const int kUsers = smoke ? 2 : 6;
  const int kDays = smoke ? 1 : 7;
  datagen::Dataset people = factory.NokiaPeople(kUsers, kDays);
  size_t total_points = people.TotalRecords();
  std::printf("corpus: %d users x %d days, %zu gps records%s\n\n", kUsers,
              kDays, total_points, smoke ? " (smoke)" : "");

  // --- offline baseline -------------------------------------------------
  double offline_seconds = 0.0;
  {
    store::SemanticTrajectoryStore store;
    core::SemiTriPipeline pipeline(&world.regions, &world.roads, &world.pois,
                                   core::PipelineConfig{}, &store);
    auto start = std::chrono::steady_clock::now();
    for (const datagen::SimulatedTrack& track : people.tracks) {
      auto results = pipeline.ProcessStream(
          track.object_id, track.points,
          static_cast<core::TrajectoryId>(track.object_id) * 1000);
      if (!results.ok()) {
        std::fprintf(stderr, "offline pipeline failed: %s\n",
                     results.status().ToString().c_str());
        return 1;
      }
    }
    offline_seconds = SecondsSince(start);
  }

  // --- streaming: sessions with per-episode annotation ------------------
  // Round-robin across users: the arrival pattern a live feed would
  // have, maximizing session switching.
  size_t longest = 0;
  for (const datagen::SimulatedTrack& t : people.tracks) {
    longest = std::max(longest, t.points.size());
  }
  auto run_live = [&](store::SemanticTrajectoryStore& store,
                      analytics::LatencyProfiler* profiler,
                      double* seconds) -> bool {
    core::SemiTriPipeline pipeline(&world.regions, &world.roads,
                                   &world.pois, core::PipelineConfig{},
                                   &store, profiler);
    stream::SessionManager manager(&pipeline,
                                   stream::SessionManagerConfig{});
    auto start = std::chrono::steady_clock::now();
    for (size_t k = 0; k < longest; ++k) {
      for (const datagen::SimulatedTrack& track : people.tracks) {
        if (k >= track.points.size()) continue;
        auto fed = manager.Feed(track.object_id, track.points[k]);
        if (!fed.ok()) {
          std::fprintf(stderr, "feed failed: %s\n",
                       fed.status().ToString().c_str());
          return false;
        }
      }
    }
    if (auto status = manager.CloseAll(); !status.ok()) {
      std::fprintf(stderr, "close failed: %s\n", status.ToString().c_str());
      return false;
    }
    *seconds = SecondsSince(start);
    stream::SessionManager::Stats stats = manager.stats();
    std::printf("%s %9.0f points/s  (%.3f s total, %zu "
                "episodes closed, %zu annotation passes)\n",
                profiler != nullptr ? "live sessions:  " : "live (WAL):     ",
                static_cast<double>(total_points) / *seconds, *seconds,
                stats.episodes_closed, stats.annotation_passes);
    return true;
  };

  std::printf("offline batch:   %9.0f points/s  (%.3f s total)\n",
              static_cast<double>(total_points) / offline_seconds,
              offline_seconds);

  store::SemanticTrajectoryStore store;
  analytics::LatencyProfiler profiler;
  double live_seconds = 0.0;
  if (!run_live(store, &profiler, &live_seconds)) return 1;

  // Same live pass in durable mode: every Put framed into the WAL
  // first, one atomic checkpoint compaction at the end. The delta vs.
  // the in-memory pass is the cost of crash safety.
  std::filesystem::path wal_dir =
      std::filesystem::temp_directory_path() /
      ("semitri_bench_wal_" + std::to_string(::getpid()));
  std::filesystem::remove_all(wal_dir);
  store::StoreConfig durable_config;
  durable_config.durable_dir = wal_dir.string();
  store::SemanticTrajectoryStore durable_store(durable_config);
  double wal_seconds = 0.0;
  bool wal_ok = run_live(durable_store, nullptr, &wal_seconds);
  if (wal_ok) {
    if (auto status = durable_store.Sync(); !status.ok()) {
      std::fprintf(stderr, "wal sync failed: %s\n",
                   status.ToString().c_str());
      wal_ok = false;
    }
  }
  if (wal_ok) {
    if (auto status = durable_store.Checkpoint(); !status.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n",
                   status.ToString().c_str());
      wal_ok = false;
    }
  }
  std::filesystem::remove_all(wal_dir);
  if (!wal_ok) return 1;
  if (!durable_store.ContentEquals(store)) {
    std::fprintf(stderr, "durable store diverged from in-memory store\n");
    return 1;
  }
  double wal_overhead =
      live_seconds > 0.0 ? (wal_seconds - live_seconds) / live_seconds : 0.0;
  std::printf("WAL durability overhead: %s  (%.3f s -> %.3f s)\n\n",
              benchutil::Pct(wal_overhead).c_str(), live_seconds,
              wal_seconds);

  PrintSummary("episode annotation latency",
               profiler.Summarize(stream::kStreamStageEpisodeAnnotation));
  PrintSummary("trajectory finalization",
               profiler.Summarize(stream::kStreamStageFinalizeTrajectory));

  // --- overloaded pass --------------------------------------------------
  // The same corpus pushed through deliberately tight admission budgets
  // (shed-oldest-idle): how much throughput costs when the manager has
  // to evict sessions to admit work, how often it sheds, and what the
  // admission decision itself costs per fix (p50/p99 Feed latency).
  double overload_seconds = 0.0;
  std::vector<double> admission_latencies;
  stream::SessionManager::Stats overload_stats;
  {
    store::SemanticTrajectoryStore overload_store;
    core::SemiTriPipeline pipeline(&world.regions, &world.roads, &world.pois,
                                   core::PipelineConfig{}, &overload_store);
    stream::SessionManagerConfig mc;
    mc.admission.max_sessions =
        std::max<size_t>(1, static_cast<size_t>(kUsers) / 3);
    mc.admission.max_buffered_fixes = smoke ? 2000 : 20000;
    mc.admission.overload_policy = stream::OverloadPolicy::kShedOldestIdle;
    stream::SessionManager manager(&pipeline, mc);

    admission_latencies.reserve(total_points);
    // Chunked round-robin: enough switching to force shedding without
    // degenerating into one eviction per fix.
    const size_t kChunk = 200;
    auto start = std::chrono::steady_clock::now();
    for (size_t base = 0; base < longest; base += kChunk) {
      for (const datagen::SimulatedTrack& track : people.tracks) {
        for (size_t k = base;
             k < std::min(base + kChunk, track.points.size()); ++k) {
          auto fed_start = std::chrono::steady_clock::now();
          auto fed = manager.Feed(track.object_id, track.points[k]);
          admission_latencies.push_back(SecondsSince(fed_start));
          if (!fed.ok()) {
            std::fprintf(stderr, "overloaded feed failed: %s\n",
                         fed.status().ToString().c_str());
            return 1;
          }
        }
      }
    }
    if (auto status = manager.CloseAll(); !status.ok()) {
      std::fprintf(stderr, "overloaded close failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    overload_seconds = SecondsSince(start);
    overload_stats = manager.stats();
  }
  auto percentile = [&](double p) {
    size_t idx = static_cast<size_t>(
        p * static_cast<double>(admission_latencies.size() - 1));
    std::nth_element(admission_latencies.begin(),
                     admission_latencies.begin() + idx,
                     admission_latencies.end());
    return admission_latencies[idx];
  };
  double admission_p50 = percentile(0.50);
  double admission_p99 = percentile(0.99);
  double shed_rate =
      static_cast<double>(overload_stats.sessions_shed) * 1000.0 /
      static_cast<double>(total_points);
  std::printf("\noverloaded:      %9.0f points/s  (%.3f s total, %zu sheds "
              "= %.2f per 1k fixes)\n",
              static_cast<double>(total_points) / overload_seconds,
              overload_seconds, overload_stats.sessions_shed, shed_rate);
  std::printf("  admission latency            p50 %9.3f ms   p99 %9.3f ms\n",
              admission_p50 * 1e3, admission_p99 * 1e3);

  std::printf("\nstore end state: %zu trajectories, %zu gps records, %zu "
              "semantic episodes\n",
              store.num_trajectories(), store.num_gps_records(),
              store.num_semantic_episodes());

  benchutil::JsonWriter json;
  json.Add("bench", std::string("stream_throughput"));
  json.Add("smoke", static_cast<size_t>(smoke ? 1 : 0));
  json.Add("gps_records", total_points);
  json.Add("offline_points_per_s",
           static_cast<double>(total_points) / offline_seconds);
  json.Add("live_points_per_s",
           static_cast<double>(total_points) / live_seconds);
  json.Add("live_wal_points_per_s",
           static_cast<double>(total_points) / wal_seconds);
  json.Add("wal_overhead_fraction", wal_overhead);
  json.Add("overload_points_per_s",
           static_cast<double>(total_points) / overload_seconds);
  json.Add("overload_sessions_shed", overload_stats.sessions_shed);
  json.Add("overload_shed_per_1k_fixes", shed_rate);
  json.Add("overload_rejected_fixes", overload_stats.overload_rejected_fixes);
  json.Add("admission_p50_ms", admission_p50 * 1e3);
  json.Add("admission_p99_ms", admission_p99 * 1e3);
  const char* json_path = "bench_stream_throughput.json";
  if (!json.WriteToFile(json_path)) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::printf("json: %s\n", json_path);
  return 0;
}
