// Ablation — grid discretization + neighbor pruning of the POI
// observation model (paper §4.3 "discretization and neighboring
// techniques") versus exact evaluation over all POIs.
//
// Measures (a) emission-evaluation throughput for both variants via
// google-benchmark and (b) decoded-category agreement.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "datagen/world.h"
#include "poi/observation_model.h"

using namespace semitri;

namespace {

datagen::World& TestWorld() {
  static datagen::World* world = [] {
    datagen::WorldConfig config;
    config.seed = 141;
    config.extent_meters = 6000.0;
    config.num_pois = 8000;
    return new datagen::World(datagen::WorldGenerator(config).Generate());
  }();
  return *world;
}

void BM_EmissionsDiscretized(benchmark::State& state) {
  datagen::World& world = TestWorld();
  poi::PoiObservationModel model(&world.pois);
  common::Rng rng(7);
  for (auto _ : state) {
    geo::Point p{rng.Uniform(500, 5500), rng.Uniform(500, 5500)};
    benchmark::DoNotOptimize(model.EmissionsAt(p));
  }
}

void BM_EmissionsExact(benchmark::State& state) {
  datagen::World& world = TestWorld();
  poi::PoiObservationModel model(&world.pois);
  common::Rng rng(7);
  for (auto _ : state) {
    geo::Point p{rng.Uniform(500, 5500), rng.Uniform(500, 5500)};
    benchmark::DoNotOptimize(model.EmissionsExact(p));
  }
}

void BM_ModelConstruction(benchmark::State& state) {
  datagen::World& world = TestWorld();
  for (auto _ : state) {
    poi::PoiObservationModel model(&world.pois);
    benchmark::DoNotOptimize(model.grid().cols());
  }
}

}  // namespace

BENCHMARK(BM_EmissionsDiscretized);
BENCHMARK(BM_EmissionsExact);
BENCHMARK(BM_ModelConstruction)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchutil::BenchReporter reporter("ablation_grid_discretization");
  // Agreement report before the timing run.
  datagen::World& world = TestWorld();
  poi::PoiObservationModel model(&world.pois);
  common::Rng rng(11);
  size_t agree = 0;
  const size_t kQueries = 2000;
  for (size_t q = 0; q < kQueries; ++q) {
    geo::Point p{rng.Uniform(500, 5500), rng.Uniform(500, 5500)};
    auto grid = model.EmissionsAt(p);
    auto exact = model.EmissionsExact(p);
    size_t grid_best = static_cast<size_t>(
        std::max_element(grid.begin(), grid.end()) - grid.begin());
    size_t exact_best = static_cast<size_t>(
        std::max_element(exact.begin(), exact.end()) - exact.begin());
    if (grid_best == exact_best) ++agree;
  }
  std::printf("argmax-category agreement (grid vs exact): %.2f%% over %zu "
              "queries, %zu POIs\n\n",
              100.0 * static_cast<double>(agree) /
                  static_cast<double>(kQueries),
              kQueries, world.pois.size());

  reporter.Metric("argmax_agreement",
                  static_cast<double>(agree) /
                      static_cast<double>(kQueries));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return reporter.Write() ? 0 : 1;
}
