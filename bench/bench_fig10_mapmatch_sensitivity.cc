// Fig. 10 — Sensitivity of map-matching accuracy w.r.t. the global view
// radius R and kernel width σ.
//
// Paper shape to reproduce: accuracy is high (>90 %) across the sweep,
// peaks at small R (≈2) with σ = 0.5R, and degrades as R grows
// (over-smoothing) — more for large σ. The paper measured this on
// Krumm's Seattle benchmark; here the drive is simulated with exact
// ground truth.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "datagen/presets.h"
#include "road/map_matcher.h"
#include "traj/point_batch.h"

using namespace semitri;

namespace {

// Pre-refactor matcher, kept verbatim as the in-process scalar
// reference for the kernel_speedup gate: per-point allocating candidate
// sets, AoS Segment::DistanceTo, and hash-map Eq. 2/3 scores — exactly
// the loops the CSR/SoA data plane replaced. Returns a score checksum
// so the work cannot be optimized away.
double ReferenceMatchScalar(const road::RoadNetwork& roads,
                            const road::GlobalMatchConfig& config,
                            const traj::PointView& pts) {
  const size_t n = pts.size;
  if (n == 0) return 0.0;
  auto at = [&](size_t i) { return geo::Point{pts.xs[i], pts.ys[i]}; };
  std::vector<double> spacings;
  spacings.reserve(n - 1);
  for (size_t i = 1; i < n; ++i) {
    spacings.push_back(at(i).DistanceTo(at(i - 1)));
  }
  double spacing = 1.0;
  if (!spacings.empty()) {
    size_t mid = spacings.size() / 2;
    std::nth_element(spacings.begin(), spacings.begin() + mid,
                     spacings.end());
    spacing = spacings[mid] > 1e-6 ? spacings[mid] : 1.0;
  }
  const double radius_m = config.view_radius * spacing;
  const double sigma_m = config.sigma_ratio * radius_m;
  const double two_sigma2 = 2.0 * sigma_m * sigma_m;

  std::vector<std::unordered_map<core::PlaceId, double>> local(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<core::PlaceId> candidates =
        roads.CandidateSegments(at(i), config.candidate_radius_meters);
    if (candidates.empty()) continue;
    double dmin = std::numeric_limits<double>::infinity();
    std::vector<double> dists(candidates.size());
    for (size_t c = 0; c < candidates.size(); ++c) {
      dists[c] =
          std::max(roads.segment(candidates[c]).shape.DistanceTo(at(i)),
                   1e-3);
      dmin = std::min(dmin, dists[c]);
    }
    auto& scores = local[i];
    for (size_t c = 0; c < candidates.size(); ++c) {
      scores[candidates[c]] = dmin / dists[c];
    }
  }

  double checksum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (local[i].empty()) continue;
    struct Neighbor {
      size_t index;
      double weight;
    };
    std::vector<Neighbor> window;
    window.push_back({i, 1.0});
    for (size_t k = 1; k <= config.max_window_points; ++k) {
      bool any = false;
      if (i >= k) {
        double d = at(i).DistanceTo(at(i - k));
        if (d < radius_m) {
          window.push_back({i - k, std::exp(-(d * d) / two_sigma2)});
          any = true;
        }
      }
      if (i + k < n) {
        double d = at(i).DistanceTo(at(i + k));
        if (d < radius_m) {
          window.push_back({i + k, std::exp(-(d * d) / two_sigma2)});
          any = true;
        }
      }
      if (!any) break;
    }
    core::PlaceId best_seg = core::kInvalidPlaceId;
    double best_score = -1.0;
    for (const auto& [seg, local_score] : local[i]) {
      double num = 0.0;
      double den = 0.0;
      for (const Neighbor& nb : window) {
        den += nb.weight;
        auto it = local[nb.index].find(seg);
        if (it != local[nb.index].end()) num += nb.weight * it->second;
      }
      double score = den > 0.0 ? num / den : local_score;
      if (score > best_score || (score == best_score && seg < best_seg)) {
        best_score = score;
        best_seg = seg;
      }
    }
    checksum += best_score;
  }
  return checksum;
}

}  // namespace

int main() {
  benchutil::PrintHeader("Fig. 10: map-matching accuracy vs R and sigma",
                         "paper Fig. 10 (Krumm benchmark sweep)");

  // Dense downtown grid (120 m blocks) + noisy receiver: the regime
  // where context size genuinely trades off noise suppression against
  // corner smearing, as on Krumm's Seattle benchmark.
  datagen::WorldConfig wc;
  wc.seed = 301;
  wc.extent_meters = 4000.0;
  wc.street_spacing_meters = 120.0;
  wc.num_pois = 200;
  datagen::World world = datagen::WorldGenerator(wc).Generate();
  datagen::DatasetFactory factory(&world, /*seed=*/302);
  datagen::Dataset drive =
      factory.SeattleDrive(/*hours=*/2.0, /*gps_sigma_meters=*/12.0);
  const datagen::SimulatedTrack& track = drive.tracks[0];
  std::vector<core::PlaceId> truth;
  truth.reserve(track.truth.size());
  for (const auto& s : track.truth) truth.push_back(s.segment);
  traj::PointBatch batch;
  batch.BuildFrom(track.points);
  std::printf("benchmark drive: %zu GPS points over %zu road segments\n\n",
              track.points.size(), world.roads.num_segments());

  const double sigma_ratios[] = {0.5, 1.0, 1.5, 2.0};
  std::printf("%-6s", "R");
  for (double s : sigma_ratios) std::printf("  sigma=%.1fR", s);
  std::printf("\n");
  double best = 0.0, best_r = 0.0, best_s = 0.0;
  for (int r = 1; r <= 5; ++r) {
    std::printf("%-6d", r);
    for (double s : sigma_ratios) {
      road::GlobalMatchConfig config;
      config.view_radius = static_cast<double>(r);
      config.sigma_ratio = s;
      road::GlobalMapMatcher matcher(&world.roads, config);
      double accuracy =
          road::MatchingAccuracy(matcher.MatchPoints(batch.View()), truth);
      std::printf("  %8.2f%%", accuracy * 100.0);
      if (accuracy > best) {
        best = accuracy;
        best_r = r;
        best_s = s;
      }
    }
    std::printf("\n");
  }
  std::printf("\nbest: %.2f%% at R=%.0f, sigma=%.1fR   (paper: ~95-96%% at"
              " R=2, sigma=0.5R)\n",
              best * 100.0, best_r, best_s);

  road::GeometricMapMatcher baseline(&world.roads);
  double base_acc =
      road::MatchingAccuracy(baseline.MatchPoints(batch.View()), truth);
  std::printf("geometric point-to-curve baseline: %.2f%%\n",
              base_acc * 100.0);

  // --- kernel section (perf-gate) ---------------------------------------
  // The batched CSR matcher vs. the pre-refactor scalar reference above,
  // on identical input. The ratio is machine-relative, so the committed
  // baseline transfers across hosts; bench_compare fails CI when it
  // drops >5% below the committed value.
  benchutil::BenchReporter reporter("fig10_mapmatch_sensitivity");
  road::GlobalMapMatcher matcher(&world.roads);
  road::MatchScratch scratch;
  std::vector<road::MatchedPoint> matched;
  const int kIters = 15;
  double checksum = 0.0;
  double kernel_speedup = reporter.GatePairedSpeedup(
      "kernel_speedup", "match_batched", "match_scalar_ref", kIters,
      [&] {
        common::Status status =
            matcher.MatchPoints(batch.View(), nullptr, &scratch, &matched);
        if (!status.ok()) std::abort();
      },
      [&] {
        checksum += ReferenceMatchScalar(world.roads, matcher.config(),
                                         batch.View());
      });
  reporter.Metric("match_points", matched.size());
  reporter.Metric("scalar_ref_checksum", checksum);
  reporter.Metric("best_accuracy", best);
  std::printf("\nkernel section: paired-median speedup %.2fx\n",
              kernel_speedup);
  return reporter.Write() ? 0 : 1;
}
