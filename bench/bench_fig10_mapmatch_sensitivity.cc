// Fig. 10 — Sensitivity of map-matching accuracy w.r.t. the global view
// radius R and kernel width σ.
//
// Paper shape to reproduce: accuracy is high (>90 %) across the sweep,
// peaks at small R (≈2) with σ = 0.5R, and degrades as R grows
// (over-smoothing) — more for large σ. The paper measured this on
// Krumm's Seattle benchmark; here the drive is simulated with exact
// ground truth.

#include <cstdio>

#include "bench_util.h"
#include "datagen/presets.h"
#include "road/map_matcher.h"

using namespace semitri;

int main() {
  benchutil::PrintHeader("Fig. 10: map-matching accuracy vs R and sigma",
                         "paper Fig. 10 (Krumm benchmark sweep)");

  // Dense downtown grid (120 m blocks) + noisy receiver: the regime
  // where context size genuinely trades off noise suppression against
  // corner smearing, as on Krumm's Seattle benchmark.
  datagen::WorldConfig wc;
  wc.seed = 301;
  wc.extent_meters = 4000.0;
  wc.street_spacing_meters = 120.0;
  wc.num_pois = 200;
  datagen::World world = datagen::WorldGenerator(wc).Generate();
  datagen::DatasetFactory factory(&world, /*seed=*/302);
  datagen::Dataset drive =
      factory.SeattleDrive(/*hours=*/2.0, /*gps_sigma_meters=*/12.0);
  const datagen::SimulatedTrack& track = drive.tracks[0];
  std::vector<core::PlaceId> truth;
  truth.reserve(track.truth.size());
  for (const auto& s : track.truth) truth.push_back(s.segment);
  std::printf("benchmark drive: %zu GPS points over %zu road segments\n\n",
              track.points.size(), world.roads.num_segments());

  const double sigma_ratios[] = {0.5, 1.0, 1.5, 2.0};
  std::printf("%-6s", "R");
  for (double s : sigma_ratios) std::printf("  sigma=%.1fR", s);
  std::printf("\n");
  double best = 0.0, best_r = 0.0, best_s = 0.0;
  for (int r = 1; r <= 5; ++r) {
    std::printf("%-6d", r);
    for (double s : sigma_ratios) {
      road::GlobalMatchConfig config;
      config.view_radius = static_cast<double>(r);
      config.sigma_ratio = s;
      road::GlobalMapMatcher matcher(&world.roads, config);
      double accuracy =
          road::MatchingAccuracy(matcher.MatchPoints(track.points), truth);
      std::printf("  %8.2f%%", accuracy * 100.0);
      if (accuracy > best) {
        best = accuracy;
        best_r = r;
        best_s = s;
      }
    }
    std::printf("\n");
  }
  std::printf("\nbest: %.2f%% at R=%.0f, sigma=%.1fR   (paper: ~95-96%% at"
              " R=2, sigma=0.5R)\n",
              best * 100.0, best_r, best_s);

  road::GeometricMapMatcher baseline(&world.roads);
  double base_acc =
      road::MatchingAccuracy(baseline.MatchPoints(track.points), truth);
  std::printf("geometric point-to-curve baseline: %.2f%%\n",
              base_acc * 100.0);
  return 0;
}
