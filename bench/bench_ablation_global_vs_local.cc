// Ablation — global map matching (Algorithm 2's kernel-weighted
// globalScore) versus (a) localScore-only matching (no context window)
// and (b) the classical geometric point-to-curve baseline, across GPS
// noise levels.
//
// Expected shape: all three are equivalent on clean traces; as noise
// grows, the global matcher degrades most slowly — the reason the paper
// adopts global matching for heterogeneous trajectories (§4.2).

#include <cstdio>

#include "bench_util.h"
#include "datagen/presets.h"
#include "road/map_matcher.h"
#include "traj/point_batch.h"

using namespace semitri;

int main() {
  benchutil::BenchReporter reporter("ablation_global_vs_local");
  benchutil::PrintHeader(
      "Ablation: globalScore vs localScore vs geometric baseline",
      "design choice behind paper Sec 4.2 (global map matching)");

  datagen::WorldConfig wc;
  wc.seed = 121;
  wc.extent_meters = 4000.0;
  wc.street_spacing_meters = 120.0;
  wc.num_pois = 200;
  datagen::World world = datagen::WorldGenerator(wc).Generate();

  std::printf("%-12s %12s %12s %12s\n", "noise (m)", "global", "local-only",
              "geometric");
  for (double noise : {2.0, 5.0, 8.0, 12.0, 16.0, 24.0}) {
    datagen::DatasetFactory factory(&world, /*seed=*/122);
    datagen::Dataset drive = factory.SeattleDrive(/*hours=*/1.0, noise);
    const datagen::SimulatedTrack& track = drive.tracks[0];
    std::vector<core::PlaceId> truth;
    for (const auto& s : track.truth) truth.push_back(s.segment);

    road::GlobalMatchConfig global_config;
    global_config.view_radius = 3.0;
    global_config.sigma_ratio = 1.0;
    road::GlobalMapMatcher global(&world.roads, global_config);

    // localScore-only: shrink the context window to the point itself.
    road::GlobalMatchConfig local_config = global_config;
    local_config.view_radius = 1e-6;
    road::GlobalMapMatcher local_only(&world.roads, local_config);

    road::GeometricMapMatcher geometric(&world.roads);

    traj::PointBatch batch;
    batch.BuildFrom(track.points);
    double acc_global =
        road::MatchingAccuracy(global.MatchPoints(batch.View()), truth);
    double acc_local =
        road::MatchingAccuracy(local_only.MatchPoints(batch.View()), truth);
    double acc_geo =
        road::MatchingAccuracy(geometric.MatchPoints(batch.View()), truth);
    std::printf("%-12.0f %11.2f%% %11.2f%% %11.2f%%\n", noise,
                acc_global * 100.0, acc_local * 100.0, acc_geo * 100.0);
  }
  std::printf("\nexpected: global >= local-only ~= geometric, gap widening "
              "with noise.\n");
  return reporter.Write() ? 0 : 1;
}
