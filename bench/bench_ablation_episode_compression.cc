// Ablation — episode-level annotation versus per-GPS-point annotation:
// the storage/semantic-tuple savings behind the paper's design
// principle "context persistence supports annotating trajectory
// episodes rather than each individual GPS point" (§3.2) and the 99.7 %
// compression of §5.2.

#include <cstdio>

#include "analytics/trajectory_stats.h"
#include "bench_util.h"
#include "core/pipeline.h"
#include "datagen/presets.h"

using namespace semitri;

int main() {
  benchutil::BenchReporter reporter("ablation_episode_compression");
  benchutil::PrintHeader(
      "Ablation: per-episode vs per-point region annotation",
      "paper Sec 3.2 design principle + Sec 5.2 compression");

  datagen::World world = benchutil::MakeCity(/*seed=*/151);
  datagen::DatasetFactory factory(&world, /*seed=*/152);
  datagen::Dataset taxis = factory.LausanneTaxis(
      /*num_taxis=*/2, /*num_days=*/4, /*shift_hours=*/4.0);

  core::SemiTriPipeline pipeline(nullptr, nullptr, nullptr);
  region::RegionAnnotator annotator(&world.regions);

  size_t raw_records = 0;
  size_t per_point_tuples = 0;
  size_t per_episode_tuples = 0;
  double per_point_seconds = 0.0;
  double per_episode_seconds = 0.0;
  analytics::LatencyProfiler profiler;

  for (const datagen::SimulatedTrack& track : taxis.tracks) {
    auto results = pipeline.ProcessStream(
        track.object_id, track.points,
        static_cast<core::TrajectoryId>(track.object_id) * 1000);
    if (!results.ok()) return 1;
    for (const core::PipelineResult& day : *results) {
      raw_records += day.cleaned.size();
      {
        analytics::LatencyProfiler::Scope scope(&profiler, "per_point");
        per_point_tuples +=
            annotator.AnnotateTrajectory(day.cleaned).episodes.size();
      }
      {
        analytics::LatencyProfiler::Scope scope(&profiler, "per_episode");
        per_episode_tuples +=
            annotator.AnnotateEpisodes(day.cleaned, day.episodes)
                .episodes.size();
      }
    }
  }
  per_point_seconds = profiler.Total("per_point");
  per_episode_seconds = profiler.Total("per_episode");

  std::printf("raw GPS records:            %zu\n", raw_records);
  std::printf("per-point region tuples:    %zu  (%.2f%% compression, "
              "%.3f s)\n",
              per_point_tuples,
              100.0 * (1.0 - static_cast<double>(per_point_tuples) /
                                 static_cast<double>(raw_records)),
              per_point_seconds);
  std::printf("per-episode region tuples:  %zu  (%.2f%% compression, "
              "%.3f s)\n",
              per_episode_tuples,
              100.0 * (1.0 - static_cast<double>(per_episode_tuples) /
                                 static_cast<double>(raw_records)),
              per_episode_seconds);
  std::printf("\npaper: 3M records -> 8,385 annotated cells (99.7%%); "
              "episode-level annotation is\nthe coarser, cheaper "
              "representation the layered design feeds to applications.\n");
  return reporter.Write() ? 0 : 1;
}
