// Fig. 13 + Table 2 — per-user context computation for the six profiled
// smartphone users: #GPS records (divided by 100, as in the paper's
// plot), #daily trajectories, #stops, #moves.
//
// Paper shape to reproduce: GPS/100 dominates every user's bar group
// (the storage-compression motif), stop and move counts are of the same
// order as trajectory counts times a small factor, and users differ in
// overall volume.

#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"
#include "datagen/presets.h"

using namespace semitri;

int main() {
  benchutil::BenchReporter reporter("fig13_user_sample");
  benchutil::PrintHeader("Fig. 13: per-user context computation",
                         "paper Fig. 13 + Table 2 per-user rows");

  datagen::World world = benchutil::MakeCity(/*seed=*/601);
  datagen::DatasetFactory factory(&world, /*seed=*/602);
  const int kNumUsers = 6;
  const int kNumDays = 21;
  datagen::Dataset people = factory.NokiaPeople(kNumUsers, kNumDays);

  core::SemiTriPipeline pipeline(nullptr, nullptr, nullptr);

  std::printf("%-6s %10s %10s %12s %8s %8s\n", "user", "#GPS", "GPS/100",
              "#trajectory", "#stop", "#move");
  for (const datagen::SimulatedTrack& track : people.tracks) {
    auto results = pipeline.ProcessStream(
        track.object_id, track.points,
        static_cast<core::TrajectoryId>(track.object_id) * 1000);
    if (!results.ok()) {
      std::fprintf(stderr, "pipeline failed: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    size_t gps = 0, stops = 0, moves = 0;
    for (const core::PipelineResult& day : *results) {
      gps += day.cleaned.size();
      stops += day.NumStops();
      moves += day.NumMoves();
    }
    std::printf("%-6lld %10zu %10.0f %12zu %8zu %8zu\n",
                static_cast<long long>(track.object_id + 1), gps,
                static_cast<double>(gps) / 100.0, results->size(), stops,
                moves);
  }
  std::printf("\npaper (Table 2, full scale): users tracked 89-330 days "
              "with 45k-200k GPS records each;\nFig. 13 plots GPS/100 "
              "against per-user trajectory/stop/move counts.\n");
  return reporter.Write() ? 0 : 1;
}
