// Fig. 14 — landuse category distribution and top-5 categories per
// smartphone user.
//
// Paper shape to reproduce: building (1.2) and transportation (1.3)
// lead for most users but with a smaller combined share than for taxis
// (~61 % vs 83 %); individual users deviate characteristically — the
// lake-side user picks up water categories, the hiker picks up wooded
// areas (3.10), the commercial-center resident picks up 1.1.

#include <cstdio>

#include "analytics/trajectory_stats.h"
#include "bench_util.h"
#include "core/pipeline.h"
#include "datagen/presets.h"

using namespace semitri;

int main() {
  benchutil::BenchReporter reporter("fig14_people_landuse");
  benchutil::PrintHeader("Fig. 14: per-user landuse distribution + top-5",
                         "paper Fig. 14 (+ the 61% vs 83% contrast of "
                         "Sec 5.3)");

  datagen::World world = benchutil::MakeCity(/*seed=*/701);
  datagen::DatasetFactory factory(&world, /*seed=*/702);
  const int kNumUsers = 6;
  datagen::Dataset people = factory.NokiaPeople(kNumUsers, /*num_days=*/21);

  core::SemiTriPipeline pipeline(nullptr, nullptr, nullptr);
  region::RegionAnnotator annotator(&world.regions);

  analytics::LabeledDistribution all_users;
  for (const datagen::SimulatedTrack& track : people.tracks) {
    auto results = pipeline.ProcessStream(
        track.object_id, track.points,
        static_cast<core::TrajectoryId>(track.object_id) * 1000);
    if (!results.ok()) {
      std::fprintf(stderr, "pipeline failed: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    analytics::LabeledDistribution user_dist;
    for (const core::PipelineResult& day : *results) {
      analytics::LanduseBreakdown breakdown =
          analytics::ComputeLanduseBreakdown(day.cleaned, day.episodes,
                                             annotator, world.regions);
      for (const auto& [code, count] : breakdown.trajectory.counts()) {
        user_dist.Add(code, count);
        all_users.Add(code, count);
      }
    }
    std::printf("user%lld top-5: ",
                static_cast<long long>(track.object_id + 1));
    for (const auto& [code, share] : user_dist.TopK(5)) {
      std::printf("%s %s  ", code.c_str(), benchutil::Pct(share).c_str());
    }
    std::printf("\n");
  }

  std::printf("\npaper top-5 examples: user2 hikes -> 3.10 in top-5; "
              "user3 lake-side -> 3.12/4.13;\nuser4 commercial center -> "
              "1.1; user6 -> 1.5 (pool).\n");
  double urban = all_users.Fraction("1.2") + all_users.Fraction("1.3");
  std::printf("\nall-user 1.2+1.3 share: %s (paper: ~61%% for people vs "
              "~83%% for taxis)\n",
              benchutil::Pct(urban).c_str());
  return reporter.Write() ? 0 : 1;
}
