// Ablation — personalized transition matrices (Baum-Welch-learned A,
// the paper's §4.3 extension) versus the Fig. 6 default, for users with
// strong daily routines.
//
// Expected shape: for a routine-heavy user (the same
// feedings -> item sale -> person life loop every day), the learned A
// encodes the routine and lifts decoding accuracy over the generic
// diagonal-dominant default, especially under large stop-location
// noise where emissions alone are ambiguous.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "poi/point_annotator.h"

using namespace semitri;

namespace {

struct DayTruth {
  std::vector<core::Episode> stops;
  std::vector<int> categories;
};

// A routine day: lunch (feedings) -> shopping (item sale) -> gym
// (person life), each at a fixed POI of that category, observed with
// positional noise.
DayTruth MakeRoutineDay(const datagen::World& world, int day,
                        double noise, common::Rng& rng,
                        const std::vector<core::PlaceId>& anchors) {
  DayTruth out;
  double base = day * 86400.0 + 11.0 * 3600.0;
  for (size_t s = 0; s < anchors.size(); ++s) {
    const poi::Poi& poi = world.pois.Get(anchors[s]);
    core::Episode ep;
    ep.kind = core::EpisodeKind::kStop;
    ep.time_in = base + s * 2.5 * 3600.0;
    ep.time_out = ep.time_in + 3600.0;
    ep.center = poi.position + geo::Point{rng.Gaussian(0, noise),
                                          rng.Gaussian(0, noise)};
    ep.bounds = geo::BoundingBox::FromPoint(ep.center).Inflated(20.0);
    out.stops.push_back(ep);
    out.categories.push_back(poi.category);
  }
  return out;
}

double Accuracy(const poi::PointAnnotator& annotator,
                const std::vector<DayTruth>& days) {
  size_t correct = 0, total = 0;
  for (const DayTruth& day : days) {
    auto decoded = annotator.InferStopCategories(day.stops);
    if (!decoded.ok()) continue;
    for (size_t i = 0; i < day.categories.size(); ++i) {
      ++total;
      if ((*decoded)[i] == day.categories[i]) ++correct;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / total;
}

}  // namespace

int main() {
  benchutil::BenchReporter reporter("ablation_learned_transitions");
  benchutil::PrintHeader(
      "Ablation: learned (Baum-Welch) vs default transition matrix",
      "paper Sec 4.3 extension: personalized transition matrix A");

  datagen::World world = benchutil::MakeCity(/*seed=*/161, 4000.0, 1500);
  common::Rng rng(162);

  // Routine anchors: one *identifiable* POI per category 1, 2, 3 — a
  // POI whose category wins the local density argmax, so the emission
  // carries signal at low noise (a routine at an unidentifiable POI is
  // unlearnable from location data alone).
  poi::PointAnnotator probe(&world.pois);
  std::vector<core::PlaceId> anchors;
  for (int category : {1, 2, 3}) {
    core::PlaceId chosen = core::kInvalidPlaceId;
    for (const poi::Poi& p : world.pois.pois()) {
      if (p.category != category) continue;
      auto emissions = probe.observation_model().EmissionsAt(p.position);
      size_t best = static_cast<size_t>(
          std::max_element(emissions.begin(), emissions.end()) -
          emissions.begin());
      if (static_cast<int>(best) == category) {
        chosen = p.id;
        break;
      }
    }
    if (chosen == core::kInvalidPlaceId) {
      chosen = world.pois.NearestOfCategory(world.Center(), category);
    }
    anchors.push_back(chosen);
  }

  std::printf("%-14s %14s %14s %10s\n", "stop noise", "default A",
              "learned A", "gain");
  for (double noise : {40.0, 80.0, 120.0}) {
    // Training and evaluation days (disjoint noise draws).
    std::vector<DayTruth> train_days, eval_days;
    for (int d = 0; d < 30; ++d) {
      train_days.push_back(MakeRoutineDay(world, d, noise, rng, anchors));
    }
    for (int d = 30; d < 60; ++d) {
      eval_days.push_back(MakeRoutineDay(world, d, noise, rng, anchors));
    }

    poi::PointAnnotator default_annotator(&world.pois);
    double default_accuracy = Accuracy(default_annotator, eval_days);

    poi::PointAnnotator learned_annotator(&world.pois);
    std::vector<std::vector<core::Episode>> history;
    for (const DayTruth& day : train_days) history.push_back(day.stops);
    auto fitted = learned_annotator.FitTransitions(history);
    if (!fitted.ok()) {
      std::fprintf(stderr, "fit failed: %s\n",
                   fitted.status().ToString().c_str());
      return 1;
    }
    double learned_accuracy = Accuracy(learned_annotator, eval_days);
    std::printf("%-14.0f %13.1f%% %13.1f%% %+9.1f\n", noise,
                default_accuracy * 100.0, learned_accuracy * 100.0,
                (learned_accuracy - default_accuracy) * 100.0);
  }
  std::printf("\nexpected: the learned matrix encodes the routine and "
              "wins, most at high noise.\n");
  return reporter.Write() ? 0 : 1;
}
