// Table 1 — Datasets of Vehicle Trajectories.
//
// Regenerates the three vehicle corpora (scaled) and prints the same
// columns the paper reports: #objects, #GPS records, tracking time,
// sampling frequency, plus the semantic place sources available in the
// synthetic world. Paper values shown alongside for comparison.

#include <cstdio>

#include "bench_util.h"
#include "datagen/presets.h"

using namespace semitri;

namespace {

struct Row {
  const char* name;
  size_t objects;
  size_t records;
  const char* tracking;
  const char* sampling;
  const char* paper;
};

}  // namespace

int main() {
  benchutil::BenchReporter reporter("table1_datasets");
  benchutil::PrintHeader("Table 1: vehicle trajectory datasets",
                         "paper Table 1 (Lausanne taxis / Milan private "
                         "cars / Seattle drive)");

  datagen::World world = benchutil::MakeCity(/*seed=*/101);
  datagen::DatasetFactory factory(&world, /*seed=*/102);

  datagen::Dataset taxis =
      factory.LausanneTaxis(/*num_taxis=*/2, /*num_days=*/6,
                            /*shift_hours=*/5.0);
  datagen::Dataset cars =
      factory.MilanPrivateCars(/*num_cars=*/120, /*num_days=*/7);
  datagen::Dataset drive = factory.SeattleDrive(/*hours=*/2.0);

  Row rows[] = {
      {"(1) Lausanne taxis", taxis.tracks.size(), taxis.TotalRecords(),
       "6 days x ~5h shifts", "1 second",
       "2 objects, 3,064,248 records, 5 months, 1 s"},
      {"(2) Milan private cars", cars.tracks.size(), cars.TotalRecords(),
       "1 week", "avg. 40 seconds",
       "17,241 objects, 2,075,213 records, 1 week, ~40 s"},
      {"(3) Seattle drive", drive.tracks.size(), drive.TotalRecords(),
       "2 hours", "1 second", "1 object, 7,531 records, 2 h, 1 s"},
  };

  std::printf("%-24s %8s %12s %-20s %-14s\n", "Dataset", "#objects",
              "#GPS", "Tracking time", "Sampling");
  for (const Row& r : rows) {
    std::printf("%-24s %8zu %12zu %-20s %-14s\n", r.name, r.objects,
                r.records, r.tracking, r.sampling);
    std::printf("    paper (full scale): %s\n", r.paper);
  }

  std::printf("\nSemantic place sources (synthetic stand-ins):\n");
  std::printf("  landuse cells:   %zu (paper: 1,936,439 Swisstopo cells)\n",
              world.regions.size());
  std::printf("  POIs:            %zu in 5 categories (paper: 39,772 Milan"
              " POIs)\n",
              world.pois.size());
  std::printf("  road segments:   %zu (paper: 158,167 Seattle road lines)\n",
              world.roads.num_segments());
  std::printf("\nNOTE: corpora are scaled; per-record statistics and all "
              "distribution shapes\nare preserved (see EXPERIMENTS.md).\n");
  return reporter.Write() ? 0 : 1;
}
