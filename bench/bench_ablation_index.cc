// Ablation — spatial-index candidate retrieval versus linear scan, the
// efficiency claim behind Algorithm 1 (O(n log m)) and Algorithm 2
// ("candidate segments ... efficiently accessed with R*-tree index").
//
// Every repository programs against the SpatialIndex interface, so the
// backend ablation (R*-tree vs uniform grid) is a pure config flip: the
// same benchmark body runs once per IndexBackend, selected by the
// second benchmark argument.
//
// google-benchmark microbenchmark: candidate-segment queries,
// nearest-segment queries, and index construction against networks of
// growing size.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"
#include "index/spatial_index.h"
#include "road/road_network.h"

using namespace semitri;

namespace {

index::SpatialIndexConfig BackendConfig(int64_t which) {
  index::SpatialIndexConfig config;
  config.backend = which == 0 ? index::IndexBackend::kRStarTree
                              : index::IndexBackend::kUniformGrid;
  return config;
}

void SetBackendLabel(benchmark::State& state, const road::RoadNetwork& net) {
  state.SetLabel(std::string(index::IndexBackendName(
                     net.spatial_index().backend())) +
                 ", " + std::to_string(net.num_segments()) + " segments");
}

// Builds a synthetic grid-ish network with `approx_segments` segments
// over the configured index backend.
road::RoadNetwork MakeNetwork(size_t approx_segments,
                              index::SpatialIndexConfig index_config) {
  common::Rng rng(42);
  road::RoadNetwork net(index_config);
  size_t nodes_per_side = static_cast<size_t>(
      std::sqrt(static_cast<double>(approx_segments) / 2.0)) + 1;
  double extent = 10000.0;
  double spacing = extent / static_cast<double>(nodes_per_side);
  std::vector<std::vector<road::NodeId>> grid(
      nodes_per_side, std::vector<road::NodeId>(nodes_per_side));
  for (size_t y = 0; y < nodes_per_side; ++y) {
    for (size_t x = 0; x < nodes_per_side; ++x) {
      grid[y][x] = net.AddNode({x * spacing + rng.Gaussian(0, spacing / 10),
                                y * spacing + rng.Gaussian(0, spacing / 10)});
    }
  }
  for (size_t y = 0; y < nodes_per_side; ++y) {
    for (size_t x = 0; x + 1 < nodes_per_side; ++x) {
      net.AddSegment(grid[y][x], grid[y][x + 1],
                     road::RoadType::kResidential);
      net.AddSegment(grid[x][y], grid[x + 1][y],
                     road::RoadType::kResidential);
    }
  }
  return net;
}

void BM_CandidateSegments(benchmark::State& state) {
  road::RoadNetwork net = MakeNetwork(static_cast<size_t>(state.range(0)),
                                      BackendConfig(state.range(1)));
  common::Rng rng(7);
  for (auto _ : state) {
    geo::Point p{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    benchmark::DoNotOptimize(net.CandidateSegments(p, 60.0));
  }
  SetBackendLabel(state, net);
}

void BM_NearestSegment(benchmark::State& state) {
  road::RoadNetwork net = MakeNetwork(static_cast<size_t>(state.range(0)),
                                      BackendConfig(state.range(1)));
  common::Rng rng(7);
  for (auto _ : state) {
    geo::Point p{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    benchmark::DoNotOptimize(net.NearestSegment(p));
  }
  SetBackendLabel(state, net);
}

void BM_NearestSegmentLinear(benchmark::State& state) {
  road::RoadNetwork net = MakeNetwork(static_cast<size_t>(state.range(0)),
                                      index::SpatialIndexConfig{});
  common::Rng rng(7);
  for (auto _ : state) {
    geo::Point p{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    benchmark::DoNotOptimize(net.NearestSegmentLinear(p));
  }
}

// Construction cost through the unified interface: repeated insertion
// vs bulk loading, per backend.
void BM_IndexBuildIncremental(benchmark::State& state) {
  common::Rng rng(42);
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<index::SpatialEntry<int>> entries;
  for (size_t i = 0; i < n; ++i) {
    geo::Point p{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    entries.push_back({geo::BoundingBox::FromPoint(p), static_cast<int>(i)});
  }
  index::SpatialIndexConfig config = BackendConfig(state.range(1));
  for (auto _ : state) {
    auto idx = index::MakeSpatialIndex<int>(config);
    for (const auto& e : entries) idx->Insert(e.box, e.value);
    benchmark::DoNotOptimize(idx->size());
  }
  state.SetLabel(index::IndexBackendName(config.backend));
}

void BM_IndexBuildBulkLoad(benchmark::State& state) {
  common::Rng rng(42);
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<index::SpatialEntry<int>> entries;
  for (size_t i = 0; i < n; ++i) {
    geo::Point p{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    entries.push_back({geo::BoundingBox::FromPoint(p), static_cast<int>(i)});
  }
  index::SpatialIndexConfig config = BackendConfig(state.range(1));
  for (auto _ : state) {
    auto copy = entries;
    auto idx = index::MakeSpatialIndex<int>(config);
    idx->BulkLoad(std::move(copy));
    benchmark::DoNotOptimize(idx->size());
  }
  state.SetLabel(index::IndexBackendName(config.backend));
}

}  // namespace

// Second argument: 0 = rstar_tree, 1 = uniform_grid.
BENCHMARK(BM_CandidateSegments)
    ->ArgsProduct({{1000, 10000, 100000}, {0, 1}});
BENCHMARK(BM_NearestSegment)
    ->ArgsProduct({{1000, 10000, 100000}, {0, 1}});
BENCHMARK(BM_NearestSegmentLinear)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_IndexBuildIncremental)
    ->ArgsProduct({{10000, 100000}, {0, 1}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IndexBuildBulkLoad)
    ->ArgsProduct({{10000, 100000}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  semitri::benchutil::BenchReporter reporter("ablation_index");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return reporter.Write() ? 0 : 1;
}
