// Ablation — R*-tree candidate retrieval versus linear scan, the
// efficiency claim behind Algorithm 1 (O(n log m)) and Algorithm 2
// ("candidate segments ... efficiently accessed with R*-tree index").
//
// google-benchmark microbenchmark: candidate-segment queries and
// nearest-segment queries against networks of growing size.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "road/road_network.h"

using namespace semitri;

namespace {

// Builds a synthetic grid-ish network with `approx_segments` segments.
road::RoadNetwork MakeNetwork(size_t approx_segments) {
  common::Rng rng(42);
  road::RoadNetwork net;
  size_t nodes_per_side = static_cast<size_t>(
      std::sqrt(static_cast<double>(approx_segments) / 2.0)) + 1;
  double extent = 10000.0;
  double spacing = extent / static_cast<double>(nodes_per_side);
  std::vector<std::vector<road::NodeId>> grid(
      nodes_per_side, std::vector<road::NodeId>(nodes_per_side));
  for (size_t y = 0; y < nodes_per_side; ++y) {
    for (size_t x = 0; x < nodes_per_side; ++x) {
      grid[y][x] = net.AddNode({x * spacing + rng.Gaussian(0, spacing / 10),
                                y * spacing + rng.Gaussian(0, spacing / 10)});
    }
  }
  for (size_t y = 0; y < nodes_per_side; ++y) {
    for (size_t x = 0; x + 1 < nodes_per_side; ++x) {
      net.AddSegment(grid[y][x], grid[y][x + 1],
                     road::RoadType::kResidential);
      net.AddSegment(grid[x][y], grid[x + 1][y],
                     road::RoadType::kResidential);
    }
  }
  return net;
}

void BM_CandidateSegmentsRTree(benchmark::State& state) {
  road::RoadNetwork net = MakeNetwork(static_cast<size_t>(state.range(0)));
  common::Rng rng(7);
  for (auto _ : state) {
    geo::Point p{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    benchmark::DoNotOptimize(net.CandidateSegments(p, 60.0));
  }
  state.SetLabel(std::to_string(net.num_segments()) + " segments");
}

void BM_NearestSegmentRTree(benchmark::State& state) {
  road::RoadNetwork net = MakeNetwork(static_cast<size_t>(state.range(0)));
  common::Rng rng(7);
  for (auto _ : state) {
    geo::Point p{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    benchmark::DoNotOptimize(net.NearestSegment(p));
  }
}

void BM_NearestSegmentLinear(benchmark::State& state) {
  road::RoadNetwork net = MakeNetwork(static_cast<size_t>(state.range(0)));
  common::Rng rng(7);
  for (auto _ : state) {
    geo::Point p{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    benchmark::DoNotOptimize(net.NearestSegmentLinear(p));
  }
}

// Construction cost: repeated insertion vs STR bulk loading.
void BM_TreeBuildIncremental(benchmark::State& state) {
  common::Rng rng(42);
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<index::RStarTree<int>::Entry> entries;
  for (size_t i = 0; i < n; ++i) {
    geo::Point p{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    entries.push_back({geo::BoundingBox::FromPoint(p), static_cast<int>(i)});
  }
  for (auto _ : state) {
    index::RStarTree<int> tree(16);
    for (const auto& e : entries) tree.Insert(e.box, e.value);
    benchmark::DoNotOptimize(tree.size());
  }
}

void BM_TreeBuildStrBulkLoad(benchmark::State& state) {
  common::Rng rng(42);
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<index::RStarTree<int>::Entry> entries;
  for (size_t i = 0; i < n; ++i) {
    geo::Point p{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    entries.push_back({geo::BoundingBox::FromPoint(p), static_cast<int>(i)});
  }
  for (auto _ : state) {
    auto copy = entries;
    index::RStarTree<int> tree =
        index::RStarTree<int>::BulkLoad(std::move(copy), 16);
    benchmark::DoNotOptimize(tree.size());
  }
}

}  // namespace

BENCHMARK(BM_CandidateSegmentsRTree)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_NearestSegmentRTree)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_NearestSegmentLinear)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_TreeBuildIncremental)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TreeBuildStrBulkLoad)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
