// Table 2 — People trajectory data from mobile phones: per-user rows
// (days with GPS, #GPS records) plus the semantic-data inventory.
//
// Paper shape: 6 profiled users with differing tracking spans and
// record volumes; the all-dataset totals and the 3rd-party semantic
// sources (landuse cells, map points/lines/regions).

#include <cstdio>

#include "bench_util.h"
#include "datagen/presets.h"

using namespace semitri;

int main() {
  benchutil::BenchReporter reporter("table2_people");
  benchutil::PrintHeader("Table 2: people trajectory data",
                         "paper Table 2 (Nokia smartphone corpus)");

  datagen::World world = benchutil::MakeCity(/*seed=*/111);
  datagen::DatasetFactory factory(&world, /*seed=*/112);
  // Users get different tracking spans, like the paper's 89-330 days.
  const int days_per_user[] = {28, 42, 21, 21, 18, 12};
  const int kNumUsers = 6;

  std::printf("%-8s %12s %12s %12s\n", "user-id", "#days", "#GPS",
              "#true-stops");
  size_t total_records = 0;
  for (int u = 0; u < kNumUsers; ++u) {
    datagen::PersonSpec spec = factory.MakePersonSpec(u);
    datagen::SimulatedTrack track =
        factory.SimulatePersonDays(u, spec, days_per_user[u]);
    total_records += track.points.size();
    std::printf("%-8d %12d %12zu %12zu\n", u + 1, days_per_user[u],
                track.points.size(), track.stops.size());
  }
  std::printf("\ntotal: %d users, %zu GPS records\n", kNumUsers,
              total_records);
  std::printf("paper: 185 users, 23,188 daily trajectories, 7,306,044 GPS "
              "records;\n       profiled users 1-6: 89-330 days, "
              "45,137-200,418 records each\n");

  size_t lines = world.roads.num_segments();
  size_t regions = world.regions.size();
  size_t points = world.pois.size();
  std::printf("\nsemantic data (synthetic stand-ins):\n");
  std::printf("  landuse cells: %zu (paper: 1,936,439)\n", regions);
  std::printf("  map points:    %zu (paper: 109,954)\n", points);
  std::printf("  map lines:     %zu (paper: 344,975)\n", lines);
  return reporter.Write() ? 0 : 1;
}
