// Sharded serving soak: many-object churn against an in-process
// shard::ShardCluster — connect/disconnect, live migration waves, ring
// rebalance (AddShard), and a mid-run shard kill/restart — while an
// uninterrupted single-manager run of the same streams serves as the
// convergence reference.
//
// Reported:
//   * live migration latency p50/p99 (pack -> drain -> handoff ->
//     adopt, per object, mid-stream);
//   * recovery time for a killed shard (store WAL replay + manager
//     checkpoint restore) and the cost of the at-least-once re-feed;
//   * rebalance volume when a shard joins the ring;
//   * shed rate under deliberately tight per-shard admission budgets
//     (separate overload pass, not convergence-gated);
//   * the per-shard health rollup (core::HealthSnapshot::shards).
//
// The gate: after all of the above, MergeStores must ContentEquals the
// uninterrupted reference — zero lost acknowledged fixes
// (lost_acknowledged_fixes, a GateZero; CI's shard-soak-smoke leg runs
// `bench_shard_soak smoke` and fails the moment it leaves 0).

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/pipeline.h"
#include "datagen/presets.h"
#include "shard/cluster.h"
#include "store/semantic_trajectory_store.h"
#include "stream/session_manager.h"

using namespace semitri;

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double Percentile(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0.0;
  size_t idx = static_cast<size_t>(
      p * static_cast<double>(samples->size() - 1));
  std::nth_element(samples->begin(), samples->begin() + static_cast<long>(idx),
                   samples->end());
  return (*samples)[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;
  benchutil::PrintHeader(
      "Shard soak: churn, migration, rebalance, kill/restart",
      "sharded serving runtime (DESIGN.md: shard deployment model)");

  datagen::World world = benchutil::MakeCity(/*seed=*/801,
                                             smoke ? 3000.0 : 6000.0,
                                             smoke ? 500 : 2000);
  datagen::DatasetFactory factory(&world, /*seed=*/802);
  const int kObjects = smoke ? 12 : 32;
  const int kDays = smoke ? 1 : 2;
  datagen::Dataset dataset = factory.MilanPrivateCars(kObjects, kDays);
  const size_t total_points = dataset.TotalRecords();
  size_t longest = 0;
  for (const datagen::SimulatedTrack& t : dataset.tracks) {
    longest = std::max(longest, t.points.size());
  }
  std::printf("corpus: %d cars x %d days, %zu gps records%s\n\n", kObjects,
              kDays, total_points, smoke ? " (smoke)" : "");

  // Both runs execute the identical logical stream: chunked round-robin
  // feeds with a flushing Close for every 3rd object at the
  // disconnect barrier (reconnect = the next feed). Everything the
  // cluster layer adds on top — migration, rebalance, kill/restart,
  // at-least-once re-feeds — must be invisible in the merged stores.
  const size_t kDisconnectAt = longest / 4;
  const size_t kMigrateAt = longest / 2;
  const size_t kKillAt = 3 * longest / 4;
  auto disconnects = [&](size_t object_index) {
    return object_index % 3 == 0;
  };

  // --- uninterrupted reference -----------------------------------------
  store::SemanticTrajectoryStore reference;
  {
    core::SemiTriPipeline pipeline(&world.regions, &world.roads, &world.pois,
                                   core::PipelineConfig{}, &reference);
    stream::SessionManager manager(&pipeline);
    for (size_t k = 0; k < longest; ++k) {
      for (size_t i = 0; i < dataset.tracks.size(); ++i) {
        const datagen::SimulatedTrack& track = dataset.tracks[i];
        if (k < track.points.size()) {
          auto fed = manager.Feed(track.object_id, track.points[k]);
          if (!fed.ok()) {
            std::fprintf(stderr, "reference feed failed: %s\n",
                         fed.status().ToString().c_str());
            return 1;
          }
        }
        if (k + 1 == kDisconnectAt && disconnects(i)) {
          if (auto status = manager.Close(track.object_id); !status.ok()) {
            std::fprintf(stderr, "reference close failed: %s\n",
                         status.ToString().c_str());
            return 1;
          }
        }
      }
    }
    if (!manager.CloseAll().ok()) return 1;
  }

  // --- the soak --------------------------------------------------------
  std::filesystem::path base_dir =
      std::filesystem::temp_directory_path() /
      ("semitri_bench_shard_soak_" + std::to_string(::getpid()));
  std::filesystem::remove_all(base_dir);
  shard::ShardClusterConfig cluster_config;
  cluster_config.num_shards = smoke ? 3 : 4;
  cluster_config.base_dir = base_dir.string();
  auto opened = shard::ShardCluster::Open(&world.regions, &world.roads,
                                          &world.pois, cluster_config);
  if (!opened.ok()) {
    std::fprintf(stderr, "cluster open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<shard::ShardCluster> cluster = std::move(opened.value());

  std::vector<double> migration_ms;
  double rebalance_ms = 0.0;
  size_t rebalanced_objects = 0;
  double recovery_ms = 0.0;
  double refeed_ms = 0.0;
  size_t refed_fixes = 0;

  auto feed_one = [&](const datagen::SimulatedTrack& track,
                      size_t k) -> bool {
    auto fed = cluster->Feed(track.object_id, track.points[k]);
    if (!fed.ok()) {
      std::fprintf(stderr, "soak feed failed (object %ld, k %zu): %s\n",
                   track.object_id, k, fed.status().ToString().c_str());
      return false;
    }
    return true;
  };

  auto soak_start = std::chrono::steady_clock::now();
  for (size_t k = 0; k < longest; ++k) {
    for (size_t i = 0; i < dataset.tracks.size(); ++i) {
      const datagen::SimulatedTrack& track = dataset.tracks[i];
      if (k < track.points.size() && !feed_one(track, k)) return 1;
      if (k + 1 == kDisconnectAt && disconnects(i)) {
        if (auto status = cluster->CloseObject(track.object_id);
            !status.ok()) {
          std::fprintf(stderr, "soak close failed: %s\n",
                       status.ToString().c_str());
          return 1;
        }
      }
    }

    if (k + 1 == kMigrateAt) {
      // Migration wave: every object still mid-stream hops one shard
      // over — each hop is the full pack/drain/handoff/adopt protocol.
      for (const datagen::SimulatedTrack& track : dataset.tracks) {
        if (track.points.size() <= k + 1) continue;
        shard::ShardId src = cluster->OwnerOf(track.object_id);
        shard::ShardId dest = (src + 1) % cluster->num_shards();
        auto t0 = std::chrono::steady_clock::now();
        if (auto status = cluster->MigrateObject(track.object_id, dest);
            !status.ok()) {
          std::fprintf(stderr, "migration failed: %s\n",
                       status.ToString().c_str());
          return 1;
        }
        migration_ms.push_back(MsSince(t0));
      }
      // A shard joins the ring; everything whose placement moved
      // follows it.
      auto t0 = std::chrono::steady_clock::now();
      auto added = cluster->AddShard();
      if (!added.ok()) {
        std::fprintf(stderr, "add shard failed: %s\n",
                     added.status().ToString().c_str());
        return 1;
      }
      rebalance_ms = MsSince(t0);
      rebalanced_objects = *added;
    }

    if (k + 1 == kKillAt) {
      // Ack everything, SIGKILL the busiest shard, and recover it. The
      // driver then re-feeds the victim's objects from the start of
      // their streams — the restored sessions reject the already-
      // consumed prefix per-fix (at-least-once redelivery is
      // idempotent) and resume exactly at their checkpointed cursors.
      if (auto status = cluster->CheckpointAll(); !status.ok()) {
        std::fprintf(stderr, "checkpoint failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::vector<size_t> owned(cluster->num_shards(), 0);
      for (const datagen::SimulatedTrack& track : dataset.tracks) {
        ++owned[cluster->OwnerOf(track.object_id)];
      }
      shard::ShardId victim = 0;
      for (size_t s = 1; s < owned.size(); ++s) {
        if (owned[s] > owned[victim]) victim = s;
      }
      if (auto status = cluster->KillShard(victim); !status.ok()) {
        std::fprintf(stderr, "kill failed: %s\n", status.ToString().c_str());
        return 1;
      }
      auto t0 = std::chrono::steady_clock::now();
      if (auto status = cluster->RestartShard(victim); !status.ok()) {
        std::fprintf(stderr, "restart failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      recovery_ms = MsSince(t0);
      auto t1 = std::chrono::steady_clock::now();
      for (const datagen::SimulatedTrack& track : dataset.tracks) {
        if (cluster->OwnerOf(track.object_id) != victim) continue;
        for (size_t r = 0; r <= std::min(k, track.points.size() - 1); ++r) {
          if (!feed_one(track, r)) return 1;
          ++refed_fixes;
        }
      }
      refeed_ms = MsSince(t1);
    }
  }
  if (auto status = cluster->CloseAll(); !status.ok()) {
    std::fprintf(stderr, "soak close-all failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  double soak_seconds = MsSince(soak_start) / 1e3;

  // Residual replication lag after a final seal+ship should be zero.
  auto shipped = cluster->SealAndShipAll();
  if (!shipped.ok()) {
    std::fprintf(stderr, "seal+ship failed: %s\n",
                 shipped.status().ToString().c_str());
    return 1;
  }

  // --- convergence gate -------------------------------------------------
  store::SemanticTrajectoryStore merged;
  if (auto status = cluster->MergeStores(&merged); !status.ok()) {
    std::fprintf(stderr, "merge failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const bool converged = merged.ContentEquals(reference);
  shard::ShardCluster::Stats stats = cluster->stats();
  core::HealthSnapshot health = cluster->Health();

  double migration_p50 = Percentile(&migration_ms, 0.50);
  double migration_p99 = Percentile(&migration_ms, 0.99);
  std::printf("soak:            %9.0f points/s  (%.3f s total)\n",
              static_cast<double>(total_points) / soak_seconds, soak_seconds);
  std::printf("migrations:      %zu completed, %zu aborted   "
              "p50 %8.3f ms   p99 %8.3f ms\n",
              stats.migrations_completed, stats.migrations_aborted,
              migration_p50, migration_p99);
  std::printf("rebalance:       %zu objects followed the new shard "
              "(%.3f ms)\n",
              rebalanced_objects, rebalance_ms);
  std::printf("kill/restart:    recovery %8.3f ms, re-feed of %zu fixes "
              "%8.3f ms\n",
              recovery_ms, refed_fixes, refeed_ms);
  std::printf("wal shipping:    %zu segments / %zu bytes shipped\n",
              shipped->segments_shipped, shipped->bytes_shipped);
  std::printf("convergence:     %s\n\n",
              converged ? "merged == uninterrupted reference"
                        : "DIVERGED (lost acknowledged fixes)");
  std::printf("per-shard rollup:\n");
  for (const core::ShardHealth& shard : health.shards) {
    std::printf("  shard %zu: %s, %zu live sessions, %zu buffered bytes, "
                "ship lag %zu segments\n",
                shard.shard_id, shard.alive ? "alive" : "DEAD",
                shard.live_sessions, shard.buffered_bytes,
                shard.wal_ship_lag_segments);
  }

  // --- overload pass (not convergence-gated) ----------------------------
  // The same corpus against deliberately tight per-shard admission
  // budgets: how often the cluster sheds, and what survives. Shedding
  // changes trajectory segmentation, so this pass uses its own
  // directories and no reference comparison.
  size_t overload_shed = 0;
  size_t overload_rejected = 0;
  double overload_seconds = 0.0;
  {
    std::filesystem::path overload_dir =
        std::filesystem::temp_directory_path() /
        ("semitri_bench_shard_overload_" + std::to_string(::getpid()));
    std::filesystem::remove_all(overload_dir);
    shard::ShardClusterConfig config;
    config.num_shards = smoke ? 3 : 4;
    config.base_dir = overload_dir.string();
    config.ship_wal = false;
    config.manager.admission.max_sessions =
        std::max<size_t>(1, static_cast<size_t>(kObjects) /
                                (config.num_shards * 3));
    config.manager.admission.overload_policy =
        stream::OverloadPolicy::kShedOldestIdle;
    auto overload_opened = shard::ShardCluster::Open(
        &world.regions, &world.roads, &world.pois, config);
    if (!overload_opened.ok()) return 1;
    std::unique_ptr<shard::ShardCluster> overloaded =
        std::move(overload_opened.value());
    const size_t kChunk = 200;
    auto start = std::chrono::steady_clock::now();
    for (size_t base = 0; base < longest; base += kChunk) {
      for (const datagen::SimulatedTrack& track : dataset.tracks) {
        for (size_t k = base;
             k < std::min(base + kChunk, track.points.size()); ++k) {
          auto fed = overloaded->Feed(track.object_id, track.points[k]);
          if (!fed.ok()) ++overload_rejected;  // shed/reject is the point
        }
      }
    }
    if (!overloaded->CloseAll().ok()) return 1;
    overload_seconds = MsSince(start) / 1e3;
    core::HealthSnapshot overload_health = overloaded->Health();
    overload_shed = overload_health.sessions_shed;
    overloaded.reset();
    std::filesystem::remove_all(overload_dir);
  }
  double shed_per_1k =
      static_cast<double>(overload_shed) * 1000.0 /
      static_cast<double>(total_points);
  std::printf("\noverloaded:      %9.0f points/s  (%zu sheds = %.2f per 1k "
              "fixes, %zu rejected feeds)\n",
              static_cast<double>(total_points) / overload_seconds,
              overload_shed, shed_per_1k, overload_rejected);

  // --- machine-readable record ------------------------------------------
  benchutil::BenchReporter reporter("shard_soak");
  reporter.Metric("smoke", static_cast<size_t>(smoke ? 1 : 0));
  reporter.Metric("gps_records", total_points);
  reporter.Metric("num_shards", cluster_config.num_shards);
  reporter.Metric("soak_points_per_s",
                  static_cast<double>(total_points) / soak_seconds);
  reporter.Metric("migrations_completed", stats.migrations_completed);
  reporter.Metric("migrations_aborted", stats.migrations_aborted);
  reporter.Metric("migration_p50_ms", migration_p50);
  reporter.Metric("migration_p99_ms", migration_p99);
  reporter.Metric("rebalanced_objects", rebalanced_objects);
  reporter.Metric("rebalance_ms", rebalance_ms);
  reporter.Metric("recovery_ms", recovery_ms);
  reporter.Metric("refed_fixes", refed_fixes);
  reporter.Metric("refeed_ms", refeed_ms);
  reporter.Metric("shipped_segments", shipped->segments_shipped);
  reporter.Metric("shipped_bytes", shipped->bytes_shipped);
  reporter.Metric("overload_sessions_shed", overload_shed);
  reporter.Metric("overload_shed_per_1k_fixes", shed_per_1k);
  reporter.Metric("overload_rejected_feeds", overload_rejected);
  for (const core::ShardHealth& shard : health.shards) {
    std::string prefix = "shard" + std::to_string(shard.shard_id) + "_";
    reporter.Metric(prefix + "alive", static_cast<size_t>(shard.alive));
    reporter.Metric(prefix + "live_sessions", shard.live_sessions);
    reporter.Metric(prefix + "ship_lag_segments",
                    shard.wal_ship_lag_segments);
  }
  // The invariants that must hold in every run, smoke or full: nothing
  // acknowledged may be lost, and every sealed segment must have
  // shipped by the end.
  reporter.GateZero("lost_acknowledged_fixes",
                    static_cast<size_t>(converged ? 0 : 1));
  size_t residual_lag = 0;
  for (const core::ShardHealth& shard : cluster->Health().shards) {
    residual_lag += shard.wal_ship_lag_segments;
  }
  reporter.GateZero("residual_ship_lag_segments", residual_lag);

  cluster.reset();
  std::filesystem::remove_all(base_dir);
  return (reporter.Write() && converged) ? 0 : 1;
}
