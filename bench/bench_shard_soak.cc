// Sharded serving soak: many-object churn against an in-process
// shard::ShardCluster — connect/disconnect, live migration waves, ring
// rebalance (AddShard), and a mid-run shard kill/restart — while an
// uninterrupted single-manager run of the same streams serves as the
// convergence reference.
//
// Reported:
//   * live migration latency p50/p99 (pack -> drain -> handoff ->
//     adopt, per object, mid-stream);
//   * recovery time for a killed shard (store WAL replay + manager
//     checkpoint restore) and the cost of the at-least-once re-feed;
//   * rebalance volume when a shard joins the ring;
//   * shed rate under deliberately tight per-shard admission budgets
//     (separate overload pass, not convergence-gated);
//   * the per-shard health rollup (core::HealthSnapshot::shards).
//
// The gate: after all of the above, MergeStores must ContentEquals the
// uninterrupted reference — zero lost acknowledged fixes
// (lost_acknowledged_fixes, a GateZero; CI's shard-soak-smoke leg runs
// `bench_shard_soak smoke` and fails the moment it leaves 0).
//
// A second, chaos pass then replays the identical stream against a
// self-healing cluster (auto_failover + retry_feeds) while a seeded
// shard::ChaosSchedule storms it with kills, extra migrations,
// seal+ship waves and (fault-injection builds) injected wal_ship
// failures. Kills heal without driver intervention — detection,
// standby promotion, retrying feeds — and the pass has its own
// convergence gate plus time-to-detect / time-to-failover percentiles.
//
// Scale knobs (CI's chaos-soak-smoke leg sets these):
//   SEMITRI_SOAK_OBJECTS      cars in the corpus
//   SEMITRI_SOAK_DAYS         days of stream per car
//   SEMITRI_SOAK_CHAOS_SEED   chaos schedule seed
//   SEMITRI_SOAK_CHAOS_KILLS  shard kills in the storm

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/env.h"
#include "common/fault_injection.h"
#include "core/pipeline.h"
#include "datagen/presets.h"
#include "shard/chaos.h"
#include "shard/cluster.h"
#include "store/integrity_scrubber.h"
#include "store/semantic_trajectory_store.h"
#include "stream/session_manager.h"

using namespace semitri;

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(value, nullptr, 10));
}

double Percentile(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0.0;
  size_t idx = static_cast<size_t>(
      p * static_cast<double>(samples->size() - 1));
  std::nth_element(samples->begin(), samples->begin() + static_cast<long>(idx),
                   samples->end());
  return (*samples)[idx];
}

// Flips one byte in the middle of `path` in place (size unchanged) —
// the silent bit-rot shape only a CRC walk can see.
bool CorruptMiddleByte(const std::string& path) {
  common::Env* env = common::Env::Default();
  std::string data;
  if (!env->ReadFileToString(path, &data).ok() || data.size() < 3) {
    return false;
  }
  data[data.size() / 2] ^= 0x5A;
  return env->WriteStringToFile(path, data, /*sync=*/true).ok();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;
  benchutil::PrintHeader(
      "Shard soak: churn, migration, rebalance, kill/restart",
      "sharded serving runtime (DESIGN.md: shard deployment model)");

  datagen::World world = benchutil::MakeCity(/*seed=*/801,
                                             smoke ? 3000.0 : 6000.0,
                                             smoke ? 500 : 2000);
  datagen::DatasetFactory factory(&world, /*seed=*/802);
  const int kObjects = static_cast<int>(
      EnvSize("SEMITRI_SOAK_OBJECTS", smoke ? 12 : 32));
  const int kDays =
      static_cast<int>(EnvSize("SEMITRI_SOAK_DAYS", smoke ? 1 : 2));
  datagen::Dataset dataset = factory.MilanPrivateCars(kObjects, kDays);
  const size_t total_points = dataset.TotalRecords();
  size_t longest = 0;
  for (const datagen::SimulatedTrack& t : dataset.tracks) {
    longest = std::max(longest, t.points.size());
  }
  std::printf("corpus: %d cars x %d days, %zu gps records%s\n\n", kObjects,
              kDays, total_points, smoke ? " (smoke)" : "");

  // Both runs execute the identical logical stream: chunked round-robin
  // feeds with a flushing Close for every 3rd object at the
  // disconnect barrier (reconnect = the next feed). Everything the
  // cluster layer adds on top — migration, rebalance, kill/restart,
  // at-least-once re-feeds — must be invisible in the merged stores.
  const size_t kDisconnectAt = longest / 4;
  const size_t kMigrateAt = longest / 2;
  const size_t kKillAt = 3 * longest / 4;
  auto disconnects = [&](size_t object_index) {
    return object_index % 3 == 0;
  };

  // --- uninterrupted reference -----------------------------------------
  store::SemanticTrajectoryStore reference;
  {
    core::SemiTriPipeline pipeline(&world.regions, &world.roads, &world.pois,
                                   core::PipelineConfig{}, &reference);
    stream::SessionManager manager(&pipeline);
    for (size_t k = 0; k < longest; ++k) {
      for (size_t i = 0; i < dataset.tracks.size(); ++i) {
        const datagen::SimulatedTrack& track = dataset.tracks[i];
        if (k < track.points.size()) {
          auto fed = manager.Feed(track.object_id, track.points[k]);
          if (!fed.ok()) {
            std::fprintf(stderr, "reference feed failed: %s\n",
                         fed.status().ToString().c_str());
            return 1;
          }
        }
        if (k + 1 == kDisconnectAt && disconnects(i)) {
          if (auto status = manager.Close(track.object_id); !status.ok()) {
            std::fprintf(stderr, "reference close failed: %s\n",
                         status.ToString().c_str());
            return 1;
          }
        }
      }
    }
    if (!manager.CloseAll().ok()) return 1;
  }

  // --- the soak --------------------------------------------------------
  std::filesystem::path base_dir =
      std::filesystem::temp_directory_path() /
      ("semitri_bench_shard_soak_" + std::to_string(::getpid()));
  std::filesystem::remove_all(base_dir);
  shard::ShardClusterConfig cluster_config;
  cluster_config.num_shards = smoke ? 3 : 4;
  cluster_config.base_dir = base_dir.string();
  auto opened = shard::ShardCluster::Open(&world.regions, &world.roads,
                                          &world.pois, cluster_config);
  if (!opened.ok()) {
    std::fprintf(stderr, "cluster open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<shard::ShardCluster> cluster = std::move(opened.value());

  std::vector<double> migration_ms;
  double rebalance_ms = 0.0;
  size_t rebalanced_objects = 0;
  double recovery_ms = 0.0;
  double refeed_ms = 0.0;
  size_t refed_fixes = 0;

  auto feed_one = [&](const datagen::SimulatedTrack& track,
                      size_t k) -> bool {
    auto fed = cluster->Feed(track.object_id, track.points[k]);
    if (!fed.ok()) {
      std::fprintf(stderr, "soak feed failed (object %ld, k %zu): %s\n",
                   track.object_id, k, fed.status().ToString().c_str());
      return false;
    }
    return true;
  };

  auto soak_start = std::chrono::steady_clock::now();
  for (size_t k = 0; k < longest; ++k) {
    for (size_t i = 0; i < dataset.tracks.size(); ++i) {
      const datagen::SimulatedTrack& track = dataset.tracks[i];
      if (k < track.points.size() && !feed_one(track, k)) return 1;
      if (k + 1 == kDisconnectAt && disconnects(i)) {
        if (auto status = cluster->CloseObject(track.object_id);
            !status.ok()) {
          std::fprintf(stderr, "soak close failed: %s\n",
                       status.ToString().c_str());
          return 1;
        }
      }
    }

    if (k + 1 == kMigrateAt) {
      // Migration wave: every object still mid-stream hops one shard
      // over — each hop is the full pack/drain/handoff/adopt protocol.
      for (const datagen::SimulatedTrack& track : dataset.tracks) {
        if (track.points.size() <= k + 1) continue;
        shard::ShardId src = cluster->OwnerOf(track.object_id);
        shard::ShardId dest = (src + 1) % cluster->num_shards();
        auto t0 = std::chrono::steady_clock::now();
        if (auto status = cluster->MigrateObject(track.object_id, dest);
            !status.ok()) {
          std::fprintf(stderr, "migration failed: %s\n",
                       status.ToString().c_str());
          return 1;
        }
        migration_ms.push_back(MsSince(t0));
      }
      // A shard joins the ring; everything whose placement moved
      // follows it.
      auto t0 = std::chrono::steady_clock::now();
      auto added = cluster->AddShard();
      if (!added.ok()) {
        std::fprintf(stderr, "add shard failed: %s\n",
                     added.status().ToString().c_str());
        return 1;
      }
      rebalance_ms = MsSince(t0);
      rebalanced_objects = *added;
    }

    if (k + 1 == kKillAt) {
      // Ack everything, SIGKILL the busiest shard, and recover it. The
      // driver then re-feeds the victim's objects from the start of
      // their streams — the restored sessions reject the already-
      // consumed prefix per-fix (at-least-once redelivery is
      // idempotent) and resume exactly at their checkpointed cursors.
      if (auto status = cluster->CheckpointAll(); !status.ok()) {
        std::fprintf(stderr, "checkpoint failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::vector<size_t> owned(cluster->num_shards(), 0);
      for (const datagen::SimulatedTrack& track : dataset.tracks) {
        ++owned[cluster->OwnerOf(track.object_id)];
      }
      shard::ShardId victim = 0;
      for (size_t s = 1; s < owned.size(); ++s) {
        if (owned[s] > owned[victim]) victim = s;
      }
      if (auto status = cluster->KillShard(victim); !status.ok()) {
        std::fprintf(stderr, "kill failed: %s\n", status.ToString().c_str());
        return 1;
      }
      auto t0 = std::chrono::steady_clock::now();
      if (auto status = cluster->RestartShard(victim); !status.ok()) {
        std::fprintf(stderr, "restart failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      recovery_ms = MsSince(t0);
      auto t1 = std::chrono::steady_clock::now();
      for (const datagen::SimulatedTrack& track : dataset.tracks) {
        if (cluster->OwnerOf(track.object_id) != victim) continue;
        for (size_t r = 0; r <= std::min(k, track.points.size() - 1); ++r) {
          if (!feed_one(track, r)) return 1;
          ++refed_fixes;
        }
      }
      refeed_ms = MsSince(t1);
    }
  }
  if (auto status = cluster->CloseAll(); !status.ok()) {
    std::fprintf(stderr, "soak close-all failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  double soak_seconds = MsSince(soak_start) / 1e3;

  // Residual replication lag after a final seal+ship should be zero.
  auto shipped = cluster->SealAndShipAll();
  if (!shipped.ok()) {
    std::fprintf(stderr, "seal+ship failed: %s\n",
                 shipped.status().ToString().c_str());
    return 1;
  }

  // --- convergence gate -------------------------------------------------
  store::SemanticTrajectoryStore merged;
  if (auto status = cluster->MergeStores(&merged); !status.ok()) {
    std::fprintf(stderr, "merge failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const bool converged = merged.ContentEquals(reference);
  shard::ShardCluster::Stats stats = cluster->stats();
  core::HealthSnapshot health = cluster->Health();

  double migration_p50 = Percentile(&migration_ms, 0.50);
  double migration_p99 = Percentile(&migration_ms, 0.99);
  std::printf("soak:            %9.0f points/s  (%.3f s total)\n",
              static_cast<double>(total_points) / soak_seconds, soak_seconds);
  std::printf("migrations:      %zu completed, %zu aborted   "
              "p50 %8.3f ms   p99 %8.3f ms\n",
              stats.migrations_completed, stats.migrations_aborted,
              migration_p50, migration_p99);
  std::printf("rebalance:       %zu objects followed the new shard "
              "(%.3f ms)\n",
              rebalanced_objects, rebalance_ms);
  std::printf("kill/restart:    recovery %8.3f ms, re-feed of %zu fixes "
              "%8.3f ms\n",
              recovery_ms, refed_fixes, refeed_ms);
  std::printf("wal shipping:    %zu segments / %zu bytes shipped\n",
              shipped->segments_shipped, shipped->bytes_shipped);
  std::printf("convergence:     %s\n\n",
              converged ? "merged == uninterrupted reference"
                        : "DIVERGED (lost acknowledged fixes)");
  std::printf("per-shard rollup:\n");
  for (const core::ShardHealth& shard : health.shards) {
    std::printf("  shard %zu: %s, %zu live sessions, %zu buffered bytes, "
                "ship lag %zu segments\n",
                shard.shard_id, shard.alive ? "alive" : "DEAD",
                shard.live_sessions, shard.buffered_bytes,
                shard.wal_ship_lag_segments);
  }

  // --- overload pass (not convergence-gated) ----------------------------
  // The same corpus against deliberately tight per-shard admission
  // budgets: how often the cluster sheds, and what survives. Shedding
  // changes trajectory segmentation, so this pass uses its own
  // directories and no reference comparison.
  size_t overload_shed = 0;
  size_t overload_rejected = 0;
  double overload_seconds = 0.0;
  {
    std::filesystem::path overload_dir =
        std::filesystem::temp_directory_path() /
        ("semitri_bench_shard_overload_" + std::to_string(::getpid()));
    std::filesystem::remove_all(overload_dir);
    shard::ShardClusterConfig config;
    config.num_shards = smoke ? 3 : 4;
    config.base_dir = overload_dir.string();
    config.ship_wal = false;
    config.manager.admission.max_sessions =
        std::max<size_t>(1, static_cast<size_t>(kObjects) /
                                (config.num_shards * 3));
    config.manager.admission.overload_policy =
        stream::OverloadPolicy::kShedOldestIdle;
    auto overload_opened = shard::ShardCluster::Open(
        &world.regions, &world.roads, &world.pois, config);
    if (!overload_opened.ok()) return 1;
    std::unique_ptr<shard::ShardCluster> overloaded =
        std::move(overload_opened.value());
    const size_t kChunk = 200;
    auto start = std::chrono::steady_clock::now();
    for (size_t base = 0; base < longest; base += kChunk) {
      for (const datagen::SimulatedTrack& track : dataset.tracks) {
        for (size_t k = base;
             k < std::min(base + kChunk, track.points.size()); ++k) {
          auto fed = overloaded->Feed(track.object_id, track.points[k]);
          if (!fed.ok()) ++overload_rejected;  // shed/reject is the point
        }
      }
    }
    if (!overloaded->CloseAll().ok()) return 1;
    overload_seconds = MsSince(start) / 1e3;
    core::HealthSnapshot overload_health = overloaded->Health();
    overload_shed = overload_health.sessions_shed;
    overloaded.reset();
    std::filesystem::remove_all(overload_dir);
  }
  double shed_per_1k =
      static_cast<double>(overload_shed) * 1000.0 /
      static_cast<double>(total_points);
  std::printf("\noverloaded:      %9.0f points/s  (%zu sheds = %.2f per 1k "
              "fixes, %zu rejected feeds)\n",
              static_cast<double>(total_points) / overload_seconds,
              overload_shed, shed_per_1k, overload_rejected);

  // --- chaos pass (convergence-gated) -----------------------------------
  // The identical logical stream against a self-healing cluster while a
  // seeded ChaosSchedule storms it. Kills are healed entirely by the
  // cluster — detection walks the dead slot to kDead, auto failover
  // promotes the standby, and retrying feeds ride the outage out — the
  // driver only acks (drain + checkpoint) right before each kill and
  // re-delivers the victim's prefix afterwards, which the restored
  // sessions must reject per-fix (at-least-once idempotence). Because
  // replication is drained at the ack, the promoted standby resumes
  // exactly there and the convergence gate stays exact: zero lost
  // acknowledged fixes, not "zero beyond lag".
  shard::ChaosScheduleConfig chaos_config;
  chaos_config.seed = EnvSize("SEMITRI_SOAK_CHAOS_SEED", 1234);
  chaos_config.num_steps = longest;
  chaos_config.num_shards = cluster_config.num_shards;
  chaos_config.num_objects = dataset.tracks.size();
  chaos_config.kills =
      EnvSize("SEMITRI_SOAK_CHAOS_KILLS", smoke ? 2 : 3);
  chaos_config.migrations = smoke ? 2 : 4;
  chaos_config.seal_ships = 2;
  chaos_config.ship_faults = common::FaultInjector::enabled() ? 1 : 0;
  chaos_config.min_kill_spacing = std::max<size_t>(8, longest / 8);
  shard::ChaosSchedule storm = shard::ChaosSchedule::Generate(chaos_config);

  bool chaos_converged = false;
  size_t chaos_kills_executed = 0;
  size_t chaos_migrations_requested = 0;
  size_t chaos_refed_fixes = 0;
  size_t chaos_refed_accepted = 0;
  size_t chaos_reshipped_corrupt = 0;
  double chaos_seconds = 0.0;
  shard::ShardCluster::Stats chaos_stats;
  // Scrub-chaos leg: one shipped sealed segment gets a mid-soak bit
  // flip; the shard's integrity scrubber must detect it and repair it
  // from the standby copy without quarantining anything — and without
  // disturbing the convergence gate.
  bool scrub_planted = false;
  size_t scrub_ticks_to_repair = 0;
  size_t scrub_detected_delta = 0;
  size_t scrub_repaired_delta = 0;
  core::HealthSnapshot chaos_health;
  {
    std::filesystem::path chaos_dir =
        std::filesystem::temp_directory_path() /
        ("semitri_bench_shard_chaos_" + std::to_string(::getpid()));
    std::filesystem::remove_all(chaos_dir);
    shard::ShardClusterConfig config;
    config.num_shards = chaos_config.num_shards;
    config.base_dir = chaos_dir.string();
    config.auto_failover = true;
    config.retry_feeds = true;
    // Probe on every tick; three straight failures declare death. The
    // retry budget covers the whole detect -> promote walk (each
    // backoff ticks the detector once) with room to spare.
    config.detector.probe_interval_seconds = 0.0;
    config.detector.suspect_after = 1;
    config.detector.dead_after = 3;
    config.feed_retry.max_attempts = 8;
    config.feed_retry.initial_backoff_seconds = 0.001;
    config.feed_retry.max_backoff_seconds = 0.01;
    auto chaos_opened = shard::ShardCluster::Open(&world.regions,
                                                  &world.roads, &world.pois,
                                                  config);
    if (!chaos_opened.ok()) {
      std::fprintf(stderr, "chaos cluster open failed: %s\n",
                   chaos_opened.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<shard::ShardCluster> chaos =
        std::move(chaos_opened.value());

    std::printf("\nchaos schedule (seed %llu):\n%s",
                static_cast<unsigned long long>(chaos_config.seed),
                storm.ToString().c_str());

    // Drains replication to zero lag; retried because an armed
    // wal_ship fault may eat the first attempt, and a fresh
    // CheckpointAll afterwards re-ships the manager sidecar so the
    // standby pair (ckpt, WAL) sits exactly at the ack.
    auto ack_all = [&]() -> bool {
      for (int round = 0; round < 3; ++round) {
        auto drained = chaos->SealAndShipAll();
        if (!drained.ok()) continue;  // injected ship fault: retry
        if (auto status = chaos->CheckpointAll(); !status.ok()) {
          std::fprintf(stderr, "chaos checkpoint failed: %s\n",
                       status.ToString().c_str());
          return false;
        }
        size_t lag = 0;
        for (const core::ShardHealth& shard : chaos->Health().shards) {
          lag += shard.wal_ship_lag_segments;
        }
        if (lag == 0) return true;
      }
      std::fprintf(stderr, "chaos ack could not drain replication lag\n");
      return false;
    };

    // Victims awaiting their post-heal at-least-once re-delivery:
    // (object index, ack step) pairs recorded at kill time.
    std::vector<std::pair<size_t, size_t>> pending_refeed;
    auto chaos_feed = [&](const datagen::SimulatedTrack& track,
                          size_t k) -> bool {
      auto fed = chaos->Feed(track.object_id, track.points[k]);
      if (!fed.ok()) {
        std::fprintf(stderr, "chaos feed failed (object %ld, k %zu): %s\n",
                     track.object_id, k, fed.status().ToString().c_str());
        return false;
      }
      return true;
    };

    auto chaos_start = std::chrono::steady_clock::now();
    for (size_t k = 0; k < longest; ++k) {
      for (const shard::ChaosEvent& event : storm.EventsAt(k)) {
        switch (event.kind) {
          case shard::ChaosKind::kKill: {
            shard::ShardId victim = event.shard;
            if (chaos->runtime(victim) == nullptr) break;  // still healing
            if (!ack_all()) return 1;
            for (size_t i = 0; i < dataset.tracks.size(); ++i) {
              if (chaos->OwnerOf(dataset.tracks[i].object_id) == victim) {
                pending_refeed.emplace_back(i, k);
              }
            }
            if (auto status = chaos->KillShard(victim); !status.ok()) {
              std::fprintf(stderr, "chaos kill failed: %s\n",
                           status.ToString().c_str());
              return 1;
            }
            ++chaos_kills_executed;
            break;
          }
          case shard::ChaosKind::kMigrate: {
            const datagen::SimulatedTrack& track =
                dataset.tracks[event.object_index % dataset.tracks.size()];
            if (k >= track.points.size()) break;  // stream already over
            shard::ShardId src = chaos->OwnerOf(track.object_id);
            shard::ShardId dest = (src + 1) % chaos->num_shards();
            if (chaos->runtime(src) == nullptr ||
                chaos->runtime(dest) == nullptr) {
              break;  // an endpoint is mid-failover; skip this one
            }
            ++chaos_migrations_requested;
            if (auto status = chaos->MigrateObject(track.object_id, dest);
                !status.ok()) {
              std::fprintf(stderr, "chaos migration aborted: %s\n",
                           status.ToString().c_str());
            }
            break;
          }
          case shard::ChaosKind::kSealShip: {
            // May fail if a ship fault is armed; the lag drains later.
            if (auto drained = chaos->SealAndShipAll(); !drained.ok()) {
              std::fprintf(stderr, "chaos seal+ship deferred: %s\n",
                           drained.status().ToString().c_str());
              break;
            }
            if (scrub_planted) break;
            // Bit-rot storm: flip a byte in the first sealed segment
            // that has a shipped standby copy, then drive that shard's
            // scrubber through one full walk. Detection + repair must
            // land within the cycle; the repaired bytes keep the later
            // failovers (and the convergence gate) exact.
            for (size_t s = 0; s < chaos->num_shards() && !scrub_planted;
                 ++s) {
              auto runtime = chaos->runtime(static_cast<shard::ShardId>(s));
              if (runtime == nullptr || runtime->scrubber() == nullptr) {
                continue;
              }
              const std::string& durable = runtime->config().durable_dir;
              const std::string& standby = runtime->config().standby_dir;
              for (const std::string& name :
                   store::SemanticTrajectoryStore::ListSealedWalSegments(
                       durable)) {
                if (!common::Env::Default()->FileExists(standby + "/" +
                                                        name)) {
                  continue;
                }
                if (!CorruptMiddleByte(durable + "/" + name)) continue;
                scrub_planted = true;
                const store::IntegrityScrubber::Counters before =
                    runtime->scrubber()->counters();
                // Two completed cycles bound "one full scrub cycle
                // after the corruption": the walk in progress may have
                // already passed the file.
                while (runtime->scrubber()->counters().cycles_completed <
                           before.cycles_completed + 2 &&
                       scrub_ticks_to_repair < 64) {
                  if (auto st = runtime->ScrubTick(); !st.ok()) {
                    std::fprintf(stderr, "scrub tick failed: %s\n",
                                 st.ToString().c_str());
                    return 1;
                  }
                  ++scrub_ticks_to_repair;
                  const store::IntegrityScrubber::Counters& now =
                      runtime->scrubber()->counters();
                  if (now.repaired > before.repaired) break;
                }
                const store::IntegrityScrubber::Counters after =
                    runtime->scrubber()->counters();
                scrub_detected_delta =
                    after.corrupt_detected - before.corrupt_detected;
                scrub_repaired_delta = after.repaired - before.repaired;
                break;
              }
            }
            break;
          }
          case shard::ChaosKind::kShipFault: {
            if (common::FaultInjector::enabled()) {
              common::FaultInjector::Global().Arm(
                  "wal_ship", common::FaultPolicy::FailOnce());
            }
            break;
          }
        }
      }

      for (size_t i = 0; i < dataset.tracks.size(); ++i) {
        const datagen::SimulatedTrack& track = dataset.tracks[i];
        if (k < track.points.size() && !chaos_feed(track, k)) return 1;
        if (k + 1 == kDisconnectAt && disconnects(i)) {
          if (auto status = chaos->CloseObject(track.object_id);
              !status.ok()) {
            std::fprintf(stderr, "chaos close failed: %s\n",
                         status.ToString().c_str());
            return 1;
          }
        }
      }

      // One external detector pass per step: a victim no feed touched
      // this step still walks alive -> suspect -> dead -> promoted.
      if (auto ticked = chaos->Tick(); !ticked.ok()) {
        std::fprintf(stderr, "chaos tick failed: %s\n",
                     ticked.status().ToString().c_str());
        return 1;
      }

      // Once a victim's slot is live again (auto failover completed),
      // re-deliver its owners' acked prefixes. The promoted sessions
      // sit exactly at the ack, so every one of these fixes must come
      // back rejected — divergence here would fail the gate below.
      if (!pending_refeed.empty()) {
        std::vector<std::pair<size_t, size_t>> still_pending;
        for (const auto& [object_index, ack_step] : pending_refeed) {
          const datagen::SimulatedTrack& track =
              dataset.tracks[object_index];
          if (chaos->runtime(chaos->OwnerOf(track.object_id)) == nullptr) {
            still_pending.emplace_back(object_index, ack_step);
            continue;
          }
          size_t upto = std::min(ack_step, track.points.size());
          for (size_t r = 0; r < upto; ++r) {
            auto fed = chaos->Feed(track.object_id, track.points[r]);
            if (!fed.ok()) {
              std::fprintf(stderr, "chaos re-feed failed: %s\n",
                           fed.status().ToString().c_str());
              return 1;
            }
            ++chaos_refed_fixes;
            if (fed->accepted) ++chaos_refed_accepted;
          }
        }
        pending_refeed = std::move(still_pending);
      }
    }
    if (!pending_refeed.empty()) {
      std::fprintf(stderr, "chaos storm left a shard unhealed\n");
      return 1;
    }
    if (auto status = chaos->CloseAll(); !status.ok()) {
      std::fprintf(stderr, "chaos close-all failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    if (!ack_all()) return 1;  // final drain (eats any armed ship fault)
    chaos_seconds = MsSince(chaos_start) / 1e3;

    store::SemanticTrajectoryStore chaos_merged;
    if (auto status = chaos->MergeStores(&chaos_merged); !status.ok()) {
      std::fprintf(stderr, "chaos merge failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    chaos_converged = chaos_merged.ContentEquals(reference);
    chaos_stats = chaos->stats();
    chaos_health = chaos->Health();
    for (size_t s = 0; s < chaos->num_shards(); ++s) {
      if (auto runtime = chaos->runtime(static_cast<shard::ShardId>(s));
          runtime != nullptr && runtime->shipper() != nullptr) {
        chaos_reshipped_corrupt +=
            runtime->shipper()->total_reshipped_corrupt();
      }
    }
    chaos.reset();
    std::filesystem::remove_all(chaos_dir);
  }

  std::vector<double> ttd_ms, ttf_ms;
  for (double s : chaos_stats.time_to_detect_seconds) {
    ttd_ms.push_back(s * 1e3);
  }
  for (double s : chaos_stats.time_to_failover_seconds) {
    ttf_ms.push_back(s * 1e3);
  }
  double ttd_p50 = Percentile(&ttd_ms, 0.50);
  double ttd_p99 = Percentile(&ttd_ms, 0.99);
  double ttf_p50 = Percentile(&ttf_ms, 0.50);
  double ttf_p99 = Percentile(&ttf_ms, 0.99);
  std::printf("chaos:           %9.0f points/s  (%.3f s total)\n",
              static_cast<double>(total_points) / chaos_seconds,
              chaos_seconds);
  std::printf("chaos kills:     %zu executed -> %zu failovers completed, "
              "%zu aborted, %zu deaths declared\n",
              chaos_kills_executed, chaos_stats.failovers_completed,
              chaos_stats.failovers_aborted,
              chaos_stats.detector_deaths_declared);
  std::printf("time to detect:  p50 %8.3f ms   p99 %8.3f ms\n", ttd_p50,
              ttd_p99);
  std::printf("time to failover:p50 %8.3f ms   p99 %8.3f ms\n", ttf_p50,
              ttf_p99);
  std::printf("chaos feeds:     %zu retried, %zu recovered, %zu rejected "
              "attempts\n",
              chaos_stats.feeds_retried, chaos_stats.feeds_recovered,
              chaos_stats.feeds_rejected_dead_shard);
  std::printf("chaos re-feeds:  %zu delivered, %zu accepted (0 = promoted "
              "standbys sat exactly at the ack)\n",
              chaos_refed_fixes, chaos_refed_accepted);
  std::printf("chaos loss:      %zu unshipped segments, %zu tail bytes "
              "abandoned; %zu corrupt standby copies re-shipped\n",
              chaos_stats.failover_lost_segments,
              chaos_stats.failover_lost_tail_bytes, chaos_reshipped_corrupt);
  std::printf("chaos scrub:     %s; %zu scanned, %zu corrupt, %zu repaired, "
              "%zu quarantined (%zu ticks to repair the planted rot)\n",
              scrub_planted ? "1 sealed segment bit-flipped mid-soak"
                            : "no shipped segment to corrupt",
              chaos_health.scrub_files_scanned,
              chaos_health.scrub_corrupt_detected,
              chaos_health.scrub_repaired, chaos_health.scrub_quarantined,
              scrub_ticks_to_repair);
  std::printf("chaos converge:  %s\n",
              chaos_converged ? "merged == uninterrupted reference"
                              : "DIVERGED (lost acknowledged fixes)");

  // --- machine-readable record ------------------------------------------
  benchutil::BenchReporter reporter("shard_soak");
  reporter.Metric("smoke", static_cast<size_t>(smoke ? 1 : 0));
  reporter.Metric("gps_records", total_points);
  reporter.Metric("num_shards", cluster_config.num_shards);
  reporter.Metric("soak_points_per_s",
                  static_cast<double>(total_points) / soak_seconds);
  reporter.Metric("migrations_completed", stats.migrations_completed);
  reporter.Metric("migrations_aborted", stats.migrations_aborted);
  reporter.Metric("migration_p50_ms", migration_p50);
  reporter.Metric("migration_p99_ms", migration_p99);
  reporter.Metric("rebalanced_objects", rebalanced_objects);
  reporter.Metric("rebalance_ms", rebalance_ms);
  reporter.Metric("recovery_ms", recovery_ms);
  reporter.Metric("refed_fixes", refed_fixes);
  reporter.Metric("refeed_ms", refeed_ms);
  reporter.Metric("shipped_segments", shipped->segments_shipped);
  reporter.Metric("shipped_bytes", shipped->bytes_shipped);
  reporter.Metric("overload_sessions_shed", overload_shed);
  reporter.Metric("overload_shed_per_1k_fixes", shed_per_1k);
  reporter.Metric("overload_rejected_feeds", overload_rejected);
  for (const core::ShardHealth& shard : health.shards) {
    std::string prefix = "shard" + std::to_string(shard.shard_id) + "_";
    reporter.Metric(prefix + "alive", static_cast<size_t>(shard.alive));
    reporter.Metric(prefix + "live_sessions", shard.live_sessions);
    reporter.Metric(prefix + "ship_lag_segments",
                    shard.wal_ship_lag_segments);
  }
  reporter.Metric("chaos_seed", chaos_config.seed);
  reporter.Metric("chaos_points_per_s",
                  static_cast<double>(total_points) / chaos_seconds);
  reporter.Metric("chaos_kills_executed", chaos_kills_executed);
  reporter.Metric("chaos_migrations_requested", chaos_migrations_requested);
  reporter.Metric("chaos_failovers_completed",
                  chaos_stats.failovers_completed);
  reporter.Metric("chaos_failovers_aborted", chaos_stats.failovers_aborted);
  reporter.Metric("chaos_deaths_declared",
                  chaos_stats.detector_deaths_declared);
  reporter.Metric("time_to_detect_p50_ms", ttd_p50);
  reporter.Metric("time_to_detect_p99_ms", ttd_p99);
  reporter.Metric("time_to_failover_p50_ms", ttf_p50);
  reporter.Metric("time_to_failover_p99_ms", ttf_p99);
  reporter.Metric("chaos_feeds_retried", chaos_stats.feeds_retried);
  reporter.Metric("chaos_feeds_recovered", chaos_stats.feeds_recovered);
  reporter.Metric("chaos_refed_fixes", chaos_refed_fixes);
  reporter.Metric("chaos_refed_accepted", chaos_refed_accepted);
  reporter.Metric("chaos_failover_lost_segments",
                  chaos_stats.failover_lost_segments);
  reporter.Metric("chaos_failover_lost_tail_bytes",
                  chaos_stats.failover_lost_tail_bytes);
  reporter.Metric("chaos_reshipped_corrupt_segments", chaos_reshipped_corrupt);
  reporter.Metric("scrub_files_scanned", chaos_health.scrub_files_scanned);
  reporter.Metric("scrub_corrupt_detected",
                  chaos_health.scrub_corrupt_detected);
  reporter.Metric("scrub_repaired", chaos_health.scrub_repaired);
  reporter.Metric("scrub_cycles_completed",
                  chaos_health.scrub_cycles_completed);
  reporter.Metric("scrub_ticks_to_repair", scrub_ticks_to_repair);
  // The invariants that must hold in every run, smoke or full: nothing
  // acknowledged may be lost (in either pass), every sealed segment
  // must have shipped by the end, and a storm with kills must have
  // healed through actual failovers (not silently skipped them).
  reporter.GateZero("lost_acknowledged_fixes",
                    static_cast<size_t>(converged ? 0 : 1));
  size_t residual_lag = 0;
  for (const core::ShardHealth& shard : cluster->Health().shards) {
    residual_lag += shard.wal_ship_lag_segments;
  }
  reporter.GateZero("residual_ship_lag_segments", residual_lag);
  reporter.GateZero("chaos_lost_acknowledged_fixes",
                    static_cast<size_t>(chaos_converged ? 0 : 1));
  reporter.GateZero(
      "chaos_failovers_missing",
      static_cast<size_t>(
          (chaos_kills_executed > 0 && chaos_stats.failovers_completed == 0)
              ? 1
              : 0));
  // Scrub-chaos gates: the bit flip must have been planted (a storm
  // that never had a shipped segment to rot would quietly skip the
  // whole leg), detected AND repaired within the driven cycle, with
  // nothing quarantined — a quarantine here means the standby copy
  // could not repair what it verifiably held.
  reporter.GateZero("scrub_corruption_not_planted",
                    static_cast<size_t>(scrub_planted ? 0 : 1));
  reporter.GateZero("scrub_corruption_missed",
                    static_cast<size_t>(
                        (scrub_planted && scrub_detected_delta == 0) ? 1 : 0));
  reporter.GateZero("scrub_corruption_unrepaired",
                    static_cast<size_t>(
                        (scrub_planted && scrub_repaired_delta == 0) ? 1 : 0));
  reporter.GateZero("scrub_quarantined", chaos_health.scrub_quarantined);

  cluster.reset();
  std::filesystem::remove_all(base_dir);
  return (reporter.Write() && converged && chaos_converged) ? 0 : 1;
}
