# Empty compiler generated dependencies file for kml_writer_test.
# This may be replaced when dependencies are built.
