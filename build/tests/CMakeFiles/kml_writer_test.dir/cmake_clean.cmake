file(REMOVE_RECURSE
  "CMakeFiles/kml_writer_test.dir/kml_writer_test.cc.o"
  "CMakeFiles/kml_writer_test.dir/kml_writer_test.cc.o.d"
  "kml_writer_test"
  "kml_writer_test.pdb"
  "kml_writer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kml_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
