file(REMOVE_RECURSE
  "CMakeFiles/line_annotator_test.dir/line_annotator_test.cc.o"
  "CMakeFiles/line_annotator_test.dir/line_annotator_test.cc.o.d"
  "line_annotator_test"
  "line_annotator_test.pdb"
  "line_annotator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/line_annotator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
