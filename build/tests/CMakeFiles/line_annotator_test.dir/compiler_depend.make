# Empty compiler generated dependencies file for line_annotator_test.
# This may be replaced when dependencies are built.
