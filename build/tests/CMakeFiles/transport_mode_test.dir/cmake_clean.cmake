file(REMOVE_RECURSE
  "CMakeFiles/transport_mode_test.dir/transport_mode_test.cc.o"
  "CMakeFiles/transport_mode_test.dir/transport_mode_test.cc.o.d"
  "transport_mode_test"
  "transport_mode_test.pdb"
  "transport_mode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
