# Empty dependencies file for transport_mode_test.
# This may be replaced when dependencies are built.
