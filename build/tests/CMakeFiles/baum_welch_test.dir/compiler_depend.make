# Empty compiler generated dependencies file for baum_welch_test.
# This may be replaced when dependencies are built.
