file(REMOVE_RECURSE
  "CMakeFiles/baum_welch_test.dir/baum_welch_test.cc.o"
  "CMakeFiles/baum_welch_test.dir/baum_welch_test.cc.o.d"
  "baum_welch_test"
  "baum_welch_test.pdb"
  "baum_welch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baum_welch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
