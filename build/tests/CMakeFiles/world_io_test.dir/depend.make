# Empty dependencies file for world_io_test.
# This may be replaced when dependencies are built.
