file(REMOVE_RECURSE
  "CMakeFiles/relations_similarity_test.dir/relations_similarity_test.cc.o"
  "CMakeFiles/relations_similarity_test.dir/relations_similarity_test.cc.o.d"
  "relations_similarity_test"
  "relations_similarity_test.pdb"
  "relations_similarity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relations_similarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
