# Empty compiler generated dependencies file for relations_similarity_test.
# This may be replaced when dependencies are built.
