# Empty dependencies file for personal_places_test.
# This may be replaced when dependencies are built.
