file(REMOVE_RECURSE
  "CMakeFiles/personal_places_test.dir/personal_places_test.cc.o"
  "CMakeFiles/personal_places_test.dir/personal_places_test.cc.o.d"
  "personal_places_test"
  "personal_places_test.pdb"
  "personal_places_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/personal_places_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
