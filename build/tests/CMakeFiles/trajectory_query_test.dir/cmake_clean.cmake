file(REMOVE_RECURSE
  "CMakeFiles/trajectory_query_test.dir/trajectory_query_test.cc.o"
  "CMakeFiles/trajectory_query_test.dir/trajectory_query_test.cc.o.d"
  "trajectory_query_test"
  "trajectory_query_test.pdb"
  "trajectory_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
