# Empty compiler generated dependencies file for semitri.
# This may be replaced when dependencies are built.
