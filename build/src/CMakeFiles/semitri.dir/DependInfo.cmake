
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/distribution.cc" "src/CMakeFiles/semitri.dir/analytics/distribution.cc.o" "gcc" "src/CMakeFiles/semitri.dir/analytics/distribution.cc.o.d"
  "/root/repo/src/analytics/latency_profiler.cc" "src/CMakeFiles/semitri.dir/analytics/latency_profiler.cc.o" "gcc" "src/CMakeFiles/semitri.dir/analytics/latency_profiler.cc.o.d"
  "/root/repo/src/analytics/personal_places.cc" "src/CMakeFiles/semitri.dir/analytics/personal_places.cc.o" "gcc" "src/CMakeFiles/semitri.dir/analytics/personal_places.cc.o.d"
  "/root/repo/src/analytics/sequence_mining.cc" "src/CMakeFiles/semitri.dir/analytics/sequence_mining.cc.o" "gcc" "src/CMakeFiles/semitri.dir/analytics/sequence_mining.cc.o.d"
  "/root/repo/src/analytics/similarity.cc" "src/CMakeFiles/semitri.dir/analytics/similarity.cc.o" "gcc" "src/CMakeFiles/semitri.dir/analytics/similarity.cc.o.d"
  "/root/repo/src/analytics/timeline.cc" "src/CMakeFiles/semitri.dir/analytics/timeline.cc.o" "gcc" "src/CMakeFiles/semitri.dir/analytics/timeline.cc.o.d"
  "/root/repo/src/analytics/trajectory_stats.cc" "src/CMakeFiles/semitri.dir/analytics/trajectory_stats.cc.o" "gcc" "src/CMakeFiles/semitri.dir/analytics/trajectory_stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/semitri.dir/common/status.cc.o" "gcc" "src/CMakeFiles/semitri.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/semitri.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/semitri.dir/common/strings.cc.o.d"
  "/root/repo/src/core/batch.cc" "src/CMakeFiles/semitri.dir/core/batch.cc.o" "gcc" "src/CMakeFiles/semitri.dir/core/batch.cc.o.d"
  "/root/repo/src/core/ingest.cc" "src/CMakeFiles/semitri.dir/core/ingest.cc.o" "gcc" "src/CMakeFiles/semitri.dir/core/ingest.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/semitri.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/semitri.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/types.cc" "src/CMakeFiles/semitri.dir/core/types.cc.o" "gcc" "src/CMakeFiles/semitri.dir/core/types.cc.o.d"
  "/root/repo/src/datagen/movement.cc" "src/CMakeFiles/semitri.dir/datagen/movement.cc.o" "gcc" "src/CMakeFiles/semitri.dir/datagen/movement.cc.o.d"
  "/root/repo/src/datagen/presets.cc" "src/CMakeFiles/semitri.dir/datagen/presets.cc.o" "gcc" "src/CMakeFiles/semitri.dir/datagen/presets.cc.o.d"
  "/root/repo/src/datagen/world.cc" "src/CMakeFiles/semitri.dir/datagen/world.cc.o" "gcc" "src/CMakeFiles/semitri.dir/datagen/world.cc.o.d"
  "/root/repo/src/export/html_report.cc" "src/CMakeFiles/semitri.dir/export/html_report.cc.o" "gcc" "src/CMakeFiles/semitri.dir/export/html_report.cc.o.d"
  "/root/repo/src/export/kml_writer.cc" "src/CMakeFiles/semitri.dir/export/kml_writer.cc.o" "gcc" "src/CMakeFiles/semitri.dir/export/kml_writer.cc.o.d"
  "/root/repo/src/geo/latlon.cc" "src/CMakeFiles/semitri.dir/geo/latlon.cc.o" "gcc" "src/CMakeFiles/semitri.dir/geo/latlon.cc.o.d"
  "/root/repo/src/geo/relations.cc" "src/CMakeFiles/semitri.dir/geo/relations.cc.o" "gcc" "src/CMakeFiles/semitri.dir/geo/relations.cc.o.d"
  "/root/repo/src/geo/simplify.cc" "src/CMakeFiles/semitri.dir/geo/simplify.cc.o" "gcc" "src/CMakeFiles/semitri.dir/geo/simplify.cc.o.d"
  "/root/repo/src/hmm/hmm.cc" "src/CMakeFiles/semitri.dir/hmm/hmm.cc.o" "gcc" "src/CMakeFiles/semitri.dir/hmm/hmm.cc.o.d"
  "/root/repo/src/io/world_io.cc" "src/CMakeFiles/semitri.dir/io/world_io.cc.o" "gcc" "src/CMakeFiles/semitri.dir/io/world_io.cc.o.d"
  "/root/repo/src/poi/observation_model.cc" "src/CMakeFiles/semitri.dir/poi/observation_model.cc.o" "gcc" "src/CMakeFiles/semitri.dir/poi/observation_model.cc.o.d"
  "/root/repo/src/poi/poi_set.cc" "src/CMakeFiles/semitri.dir/poi/poi_set.cc.o" "gcc" "src/CMakeFiles/semitri.dir/poi/poi_set.cc.o.d"
  "/root/repo/src/poi/point_annotator.cc" "src/CMakeFiles/semitri.dir/poi/point_annotator.cc.o" "gcc" "src/CMakeFiles/semitri.dir/poi/point_annotator.cc.o.d"
  "/root/repo/src/region/landuse.cc" "src/CMakeFiles/semitri.dir/region/landuse.cc.o" "gcc" "src/CMakeFiles/semitri.dir/region/landuse.cc.o.d"
  "/root/repo/src/region/region_annotator.cc" "src/CMakeFiles/semitri.dir/region/region_annotator.cc.o" "gcc" "src/CMakeFiles/semitri.dir/region/region_annotator.cc.o.d"
  "/root/repo/src/region/region_set.cc" "src/CMakeFiles/semitri.dir/region/region_set.cc.o" "gcc" "src/CMakeFiles/semitri.dir/region/region_set.cc.o.d"
  "/root/repo/src/road/line_annotator.cc" "src/CMakeFiles/semitri.dir/road/line_annotator.cc.o" "gcc" "src/CMakeFiles/semitri.dir/road/line_annotator.cc.o.d"
  "/root/repo/src/road/map_matcher.cc" "src/CMakeFiles/semitri.dir/road/map_matcher.cc.o" "gcc" "src/CMakeFiles/semitri.dir/road/map_matcher.cc.o.d"
  "/root/repo/src/road/road_network.cc" "src/CMakeFiles/semitri.dir/road/road_network.cc.o" "gcc" "src/CMakeFiles/semitri.dir/road/road_network.cc.o.d"
  "/root/repo/src/road/router.cc" "src/CMakeFiles/semitri.dir/road/router.cc.o" "gcc" "src/CMakeFiles/semitri.dir/road/router.cc.o.d"
  "/root/repo/src/road/transport_mode.cc" "src/CMakeFiles/semitri.dir/road/transport_mode.cc.o" "gcc" "src/CMakeFiles/semitri.dir/road/transport_mode.cc.o.d"
  "/root/repo/src/store/semantic_trajectory_store.cc" "src/CMakeFiles/semitri.dir/store/semantic_trajectory_store.cc.o" "gcc" "src/CMakeFiles/semitri.dir/store/semantic_trajectory_store.cc.o.d"
  "/root/repo/src/store/trajectory_query.cc" "src/CMakeFiles/semitri.dir/store/trajectory_query.cc.o" "gcc" "src/CMakeFiles/semitri.dir/store/trajectory_query.cc.o.d"
  "/root/repo/src/traj/identification.cc" "src/CMakeFiles/semitri.dir/traj/identification.cc.o" "gcc" "src/CMakeFiles/semitri.dir/traj/identification.cc.o.d"
  "/root/repo/src/traj/preprocess.cc" "src/CMakeFiles/semitri.dir/traj/preprocess.cc.o" "gcc" "src/CMakeFiles/semitri.dir/traj/preprocess.cc.o.d"
  "/root/repo/src/traj/segmentation.cc" "src/CMakeFiles/semitri.dir/traj/segmentation.cc.o" "gcc" "src/CMakeFiles/semitri.dir/traj/segmentation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
