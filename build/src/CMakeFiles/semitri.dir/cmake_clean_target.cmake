file(REMOVE_RECURSE
  "libsemitri.a"
)
