# Empty compiler generated dependencies file for bench_ablation_hmm_vs_nearest.
# This may be replaced when dependencies are built.
