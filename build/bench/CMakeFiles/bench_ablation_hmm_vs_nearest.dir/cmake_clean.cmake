file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hmm_vs_nearest.dir/bench_ablation_hmm_vs_nearest.cc.o"
  "CMakeFiles/bench_ablation_hmm_vs_nearest.dir/bench_ablation_hmm_vs_nearest.cc.o.d"
  "bench_ablation_hmm_vs_nearest"
  "bench_ablation_hmm_vs_nearest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hmm_vs_nearest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
