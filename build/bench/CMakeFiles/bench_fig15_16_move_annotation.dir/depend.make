# Empty dependencies file for bench_fig15_16_move_annotation.
# This may be replaced when dependencies are built.
