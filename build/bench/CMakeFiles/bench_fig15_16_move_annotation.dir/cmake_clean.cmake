file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_16_move_annotation.dir/bench_fig15_16_move_annotation.cc.o"
  "CMakeFiles/bench_fig15_16_move_annotation.dir/bench_fig15_16_move_annotation.cc.o.d"
  "bench_fig15_16_move_annotation"
  "bench_fig15_16_move_annotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_16_move_annotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
