# Empty dependencies file for bench_ablation_episode_compression.
# This may be replaced when dependencies are built.
