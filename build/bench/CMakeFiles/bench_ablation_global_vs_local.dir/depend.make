# Empty dependencies file for bench_ablation_global_vs_local.
# This may be replaced when dependencies are built.
