file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_grid_discretization.dir/bench_ablation_grid_discretization.cc.o"
  "CMakeFiles/bench_ablation_grid_discretization.dir/bench_ablation_grid_discretization.cc.o.d"
  "bench_ablation_grid_discretization"
  "bench_ablation_grid_discretization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_grid_discretization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
