# Empty dependencies file for bench_ablation_grid_discretization.
# This may be replaced when dependencies are built.
