file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_mapmatch_sensitivity.dir/bench_fig10_mapmatch_sensitivity.cc.o"
  "CMakeFiles/bench_fig10_mapmatch_sensitivity.dir/bench_fig10_mapmatch_sensitivity.cc.o.d"
  "bench_fig10_mapmatch_sensitivity"
  "bench_fig10_mapmatch_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_mapmatch_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
