# Empty dependencies file for bench_fig13_user_sample.
# This may be replaced when dependencies are built.
