file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_user_sample.dir/bench_fig13_user_sample.cc.o"
  "CMakeFiles/bench_fig13_user_sample.dir/bench_fig13_user_sample.cc.o.d"
  "bench_fig13_user_sample"
  "bench_fig13_user_sample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_user_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
