# Empty dependencies file for bench_fig9_landuse.
# This may be replaced when dependencies are built.
