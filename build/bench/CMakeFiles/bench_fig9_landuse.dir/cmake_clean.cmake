file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_landuse.dir/bench_fig9_landuse.cc.o"
  "CMakeFiles/bench_fig9_landuse.dir/bench_fig9_landuse.cc.o.d"
  "bench_fig9_landuse"
  "bench_fig9_landuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_landuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
