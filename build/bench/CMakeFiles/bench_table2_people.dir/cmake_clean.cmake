file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_people.dir/bench_table2_people.cc.o"
  "CMakeFiles/bench_table2_people.dir/bench_table2_people.cc.o.d"
  "bench_table2_people"
  "bench_table2_people.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_people.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
