file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_poi_annotation.dir/bench_fig11_poi_annotation.cc.o"
  "CMakeFiles/bench_fig11_poi_annotation.dir/bench_fig11_poi_annotation.cc.o.d"
  "bench_fig11_poi_annotation"
  "bench_fig11_poi_annotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_poi_annotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
