# Empty dependencies file for bench_fig11_poi_annotation.
# This may be replaced when dependencies are built.
