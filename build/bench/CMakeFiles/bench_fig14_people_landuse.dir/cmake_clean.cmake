file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_people_landuse.dir/bench_fig14_people_landuse.cc.o"
  "CMakeFiles/bench_fig14_people_landuse.dir/bench_fig14_people_landuse.cc.o.d"
  "bench_fig14_people_landuse"
  "bench_fig14_people_landuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_people_landuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
