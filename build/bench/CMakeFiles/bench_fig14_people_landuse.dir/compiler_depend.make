# Empty compiler generated dependencies file for bench_fig14_people_landuse.
# This may be replaced when dependencies are built.
