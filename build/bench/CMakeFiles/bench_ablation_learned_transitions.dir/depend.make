# Empty dependencies file for bench_ablation_learned_transitions.
# This may be replaced when dependencies are built.
