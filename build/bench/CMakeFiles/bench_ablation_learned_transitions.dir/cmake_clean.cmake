file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_learned_transitions.dir/bench_ablation_learned_transitions.cc.o"
  "CMakeFiles/bench_ablation_learned_transitions.dir/bench_ablation_learned_transitions.cc.o.d"
  "bench_ablation_learned_transitions"
  "bench_ablation_learned_transitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_learned_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
