file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_context_distribution.dir/bench_fig12_context_distribution.cc.o"
  "CMakeFiles/bench_fig12_context_distribution.dir/bench_fig12_context_distribution.cc.o.d"
  "bench_fig12_context_distribution"
  "bench_fig12_context_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_context_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
