file(REMOVE_RECURSE
  "CMakeFiles/daily_life.dir/daily_life.cpp.o"
  "CMakeFiles/daily_life.dir/daily_life.cpp.o.d"
  "daily_life"
  "daily_life.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daily_life.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
