# Empty dependencies file for daily_life.
# This may be replaced when dependencies are built.
