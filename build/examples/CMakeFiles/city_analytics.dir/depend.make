# Empty dependencies file for city_analytics.
# This may be replaced when dependencies are built.
