file(REMOVE_RECURSE
  "CMakeFiles/city_analytics.dir/city_analytics.cpp.o"
  "CMakeFiles/city_analytics.dir/city_analytics.cpp.o.d"
  "city_analytics"
  "city_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
