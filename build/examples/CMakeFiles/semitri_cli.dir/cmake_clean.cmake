file(REMOVE_RECURSE
  "CMakeFiles/semitri_cli.dir/semitri_cli.cpp.o"
  "CMakeFiles/semitri_cli.dir/semitri_cli.cpp.o.d"
  "semitri_cli"
  "semitri_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semitri_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
