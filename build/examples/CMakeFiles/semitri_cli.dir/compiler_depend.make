# Empty compiler generated dependencies file for semitri_cli.
# This may be replaced when dependencies are built.
