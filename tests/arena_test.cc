// Tests for the bump allocator behind the annotation scratch: block
// growth, Reset() recycling, alignment, and the monotonic block-count
// stat the steady-state-allocation contract is asserted with.

#include "common/arena.h"

#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

namespace semitri::common {
namespace {

TEST(ArenaTest, StartsEmpty) {
  Arena arena;
  EXPECT_EQ(arena.num_block_allocations(), 0u);
  EXPECT_EQ(arena.capacity_bytes(), 0u);
  EXPECT_EQ(arena.used_bytes(), 0u);
}

TEST(ArenaTest, AllocSpanIsWritableAndCounted) {
  Arena arena;
  std::span<double> a = arena.AllocSpan<double>(100);
  ASSERT_EQ(a.size(), 100u);
  for (size_t i = 0; i < a.size(); ++i) a[i] = static_cast<double>(i);
  EXPECT_DOUBLE_EQ(a[99], 99.0);
  EXPECT_EQ(arena.num_block_allocations(), 1u);
  EXPECT_GE(arena.capacity_bytes(), Arena::kInitialBlockBytes);
  EXPECT_GE(arena.used_bytes(), 100 * sizeof(double));
}

TEST(ArenaTest, DistinctAllocationsDoNotOverlap) {
  Arena arena;
  std::span<uint64_t> a = arena.AllocSpan<uint64_t>(16);
  std::span<uint64_t> b = arena.AllocSpan<uint64_t>(16);
  std::memset(a.data(), 0xaa, a.size_bytes());
  std::memset(b.data(), 0x55, b.size_bytes());
  EXPECT_EQ(a[0], 0xaaaaaaaaaaaaaaaaULL);
  EXPECT_EQ(b[0], 0x5555555555555555ULL);
}

TEST(ArenaTest, AlignmentIsHonored) {
  Arena arena;
  // Interleave odd-sized char allocations with aligned types.
  for (int i = 0; i < 8; ++i) {
    arena.AllocSpan<char>(3);
    std::span<double> d = arena.AllocSpan<double>(1);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(d.data()) % alignof(double), 0u);
    void* p16 = arena.AllocBytes(16, 16);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p16) % 16, 0u);
  }
}

TEST(ArenaTest, ResetKeepsCapacityAndBlocks) {
  Arena arena;
  arena.AllocSpan<double>(10000);
  size_t blocks = arena.num_block_allocations();
  size_t capacity = arena.capacity_bytes();
  arena.Reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_EQ(arena.num_block_allocations(), blocks);
  EXPECT_EQ(arena.capacity_bytes(), capacity);
  // A warm arena serves the same working set with no fresh blocks.
  arena.AllocSpan<double>(10000);
  EXPECT_EQ(arena.num_block_allocations(), blocks);
  EXPECT_EQ(arena.capacity_bytes(), capacity);
}

TEST(ArenaTest, GrowsBeyondInitialBlock) {
  Arena arena;
  // More than kInitialBlockBytes in one go forces a larger block.
  size_t big = (Arena::kInitialBlockBytes / sizeof(double)) * 4;
  std::span<double> a = arena.AllocSpan<double>(big);
  ASSERT_EQ(a.size(), big);
  a[big - 1] = 1.0;
  EXPECT_GE(arena.capacity_bytes(), big * sizeof(double));
}

TEST(ArenaTest, ManySmallAllocationsReachSteadyState) {
  Arena arena;
  // Warm up with two identical passes; afterwards, repeated passes must
  // not fetch any new blocks (the streaming steady-state contract).
  auto pass = [&] {
    arena.Reset();
    for (int i = 0; i < 200; ++i) {
      arena.AllocSpan<double>(64);
      arena.AllocSpan<int32_t>(33);
    }
  };
  pass();
  pass();
  size_t blocks = arena.num_block_allocations();
  for (int run = 0; run < 5; ++run) pass();
  EXPECT_EQ(arena.num_block_allocations(), blocks);
}

}  // namespace
}  // namespace semitri::common
