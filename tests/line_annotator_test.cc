// Tests for the Semantic Line Annotation Layer: run grouping, mode
// annotation, and multimodal trips (the Fig. 15 walk–metro–walk case).

#include "road/line_annotator.h"

#include <gtest/gtest.h>

#include "traj/point_batch.h"

#include "common/rng.h"
#include "datagen/movement.h"
#include "datagen/world.h"
#include "traj/segmentation.h"

namespace semitri::road {
namespace {

// Adapts AoS test fixtures to the SoA data plane.
traj::PointBatch Batch(const std::vector<core::GpsPoint>& points) {
  traj::PointBatch batch;
  batch.BuildFrom(points);
  return batch;
}

// A straight two-segment street; trace walks segment 0 then rides
// segment 1 (faster).
RoadNetwork TwoSegmentStreet() {
  RoadNetwork net;
  NodeId a = net.AddNode({0, 0});
  NodeId b = net.AddNode({300, 0});
  NodeId c = net.AddNode({1300, 0});
  net.AddSegment(a, b, RoadType::kResidential, "walkway");
  net.AddSegment(b, c, RoadType::kRailMetro, "M1");
  return net;
}

std::vector<core::GpsPoint> WalkThenRide(uint64_t seed) {
  common::Rng rng(seed);
  std::vector<core::GpsPoint> points;
  double t = 0.0;
  // Walk 0..300 at 1.4 m/s.
  for (double x = 0.0; x < 300.0; x += 1.4 * 5.0) {  // 5 s sampling
    points.push_back({{x + rng.Gaussian(0, 3), rng.Gaussian(0, 3)}, t});
    t += 5.0;
  }
  // Ride 300..1300 at 13 m/s.
  for (double x = 300.0; x < 1300.0; x += 13.0 * 5.0) {
    points.push_back({{x + rng.Gaussian(0, 3), rng.Gaussian(0, 3)}, t});
    t += 5.0;
  }
  return points;
}

TEST(LineAnnotatorTest, GroupsRunsAndInfersModes) {
  RoadNetwork net = TwoSegmentStreet();
  LineAnnotator annotator(&net);
  auto points = WalkThenRide(3);
  auto episodes =
      annotator.AnnotateMove(Batch(points).View(), /*source_episode=*/7);
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_EQ(episodes[0].place.id, 0);
  EXPECT_EQ(episodes[0].FindAnnotation("transport_mode"), "walk");
  EXPECT_EQ(episodes[0].FindAnnotation("road_name"), "walkway");
  EXPECT_EQ(episodes[0].source_episode, 7u);
  EXPECT_EQ(episodes[1].place.id, 1);
  EXPECT_EQ(episodes[1].FindAnnotation("transport_mode"), "metro");
  EXPECT_EQ(episodes[1].FindAnnotation("road_type"), "rail_metro");
  // Time continuity.
  EXPECT_LT(episodes[0].time_out, episodes[1].time_in + 1e-9);
  EXPECT_EQ(episodes[0].place.kind, core::PlaceKind::kLine);
}

TEST(LineAnnotatorTest, AnnotateProcessesOnlyMoveEpisodes) {
  RoadNetwork net = TwoSegmentStreet();
  LineAnnotator annotator(&net);
  core::RawTrajectory t;
  t.id = 9;
  auto points = WalkThenRide(5);
  t.points = points;
  core::Episode stop;
  stop.kind = core::EpisodeKind::kStop;
  stop.begin = 0;
  stop.end = 5;
  core::Episode move;
  move.kind = core::EpisodeKind::kMove;
  move.begin = 5;
  move.end = t.size();
  traj::FinalizeEpisode(t, &stop);
  traj::FinalizeEpisode(t, &move);
  traj::PointBatch batch;
  batch.BuildFrom(t);
  auto out = annotator.Annotate(batch, {stop, move});
  EXPECT_EQ(out.interpretation, "line");
  EXPECT_EQ(out.trajectory_id, 9);
  for (const auto& ep : out.episodes) {
    EXPECT_EQ(ep.kind, core::EpisodeKind::kMove);
    EXPECT_EQ(ep.source_episode, 1u);
  }
}

TEST(LineAnnotatorTest, MatchScoreAnnotationPresent) {
  RoadNetwork net = TwoSegmentStreet();
  LineAnnotator annotator(&net);
  auto episodes = annotator.AnnotateMove(Batch(WalkThenRide(7)).View(), 0);
  for (const auto& ep : episodes) {
    if (!ep.place.valid()) continue;
    double score = std::stod(ep.FindAnnotation("match_score"));
    EXPECT_GT(score, 0.0);
    EXPECT_LE(score, 1.0 + 1e-9);
  }
}

TEST(LineAnnotatorTest, EmptyMove) {
  RoadNetwork net = TwoSegmentStreet();
  LineAnnotator annotator(&net);
  EXPECT_TRUE(annotator.AnnotateMove(traj::PointView{}, 0).empty());
}

TEST(LineAnnotatorTest, MinRunFilterSuppressesFlicker) {
  RoadNetwork net = TwoSegmentStreet();
  LineAnnotatorConfig config;
  config.min_run_points = 3;
  LineAnnotator annotator(&net, config);
  auto episodes = annotator.AnnotateMove(Batch(WalkThenRide(11)).View(), 0);
  for (const auto& ep : episodes) {
    // After absorption no episode should span fewer than ~2 samples.
    EXPECT_GE(ep.time_out - ep.time_in, 5.0 - 1e-9);
  }
}

// End-to-end Fig. 15 scenario: a simulated metro commute must contain a
// metro-annotated run bracketed by walk runs.
TEST(LineAnnotatorTest, SimulatedMetroCommuteRecovered) {
  datagen::WorldConfig wc;
  wc.seed = 29;
  wc.extent_meters = 5000.0;
  wc.num_pois = 100;
  datagen::World world = datagen::WorldGenerator(wc).Generate();
  datagen::MovementSimulator sim(&world, 31);
  datagen::SimulatedTrack track;
  datagen::SensorProfile sensor = datagen::SmartphoneSensor();
  sensor.sample_interval_seconds = 5.0;
  sensor.p_gap_start = 0.0;
  geo::Point from = world.Center() + geo::Point{-1500, -1200};
  geo::Point to = world.Center() + geo::Point{1500, 1200};
  auto arrival = sim.AppendTrip(&track, from, to, TransportMode::kMetro,
                                1000.0, sensor);
  ASSERT_TRUE(arrival.ok());
  ASSERT_GT(track.points.size(), 30u);

  LineAnnotator annotator(&world.roads);
  auto episodes = annotator.AnnotateMove(Batch(track.points).View(), 0);
  ASSERT_FALSE(episodes.empty());
  bool has_metro = false, has_walk = false;
  for (const auto& ep : episodes) {
    std::string mode = ep.FindAnnotation("transport_mode");
    if (mode == "metro") has_metro = true;
    if (mode == "walk") has_walk = true;
  }
  EXPECT_TRUE(has_metro);
  EXPECT_TRUE(has_walk);
}

}  // namespace
}  // namespace semitri::road
