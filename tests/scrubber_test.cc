// Tests for the background integrity scrubber: detection of bit rot in
// sealed WAL segments and checkpoint CSVs, repair from a standby's
// shipped copy, quarantine when no intact copy exists, and the
// incremental Tick() walk. No fault injection needed — corruption is
// planted by rewriting bytes directly, which is exactly what the
// scrubber exists to catch.

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/env.h"
#include "shard/wal_shipper.h"
#include "store/integrity_scrubber.h"
#include "store/semantic_trajectory_store.h"
#include "store/wal.h"

namespace semitri {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  return dir;
}

core::RawTrajectory MakeTrajectory(core::TrajectoryId id, int n) {
  core::RawTrajectory t;
  t.id = id;
  t.object_id = 9;
  for (int i = 0; i < n; ++i) {
    t.points.push_back({{i * 2.0 + id, i * 3.0}, i * 10.0});
  }
  return t;
}

// Flips a byte in the middle of `path`, keeping the size unchanged —
// the silent-bit-rot shape a metadata check cannot see.
void CorruptMiddleByte(const std::string& path) {
  common::Env* env = common::Env::Default();
  std::string data;
  ASSERT_TRUE(env->ReadFileToString(path, &data).ok());
  ASSERT_GT(data.size(), 2u);
  data[data.size() / 2] ^= 0x5A;
  ASSERT_TRUE(env->WriteStringToFile(path, data, /*sync=*/true).ok());
}

bool SegmentIntact(const std::string& path) {
  auto scanned = store::ReplayWal(
      path,
      [](store::WalRecordType, std::string_view) {
        return common::Status::OK();
      },
      /*truncate_torn_tail=*/false);
  return scanned.ok() && scanned->torn_bytes_truncated == 0;
}

// A durable directory with one checkpoint generation (checksums.csv
// sidecar included), one sealed segment, and an active WAL tail; the
// sealed segment optionally shipped to `standby`.
class ScrubberFixture : public ::testing::Test {
 protected:
  void BuildPrimary(const std::string& dir, const std::string& standby) {
    store::StoreConfig config;
    config.durable_dir = dir;
    store::SemanticTrajectoryStore primary(config);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(primary.PutRawTrajectory(MakeTrajectory(i, 6)).ok());
    }
    ASSERT_TRUE(primary.Checkpoint().ok());
    for (int i = 4; i < 8; ++i) {
      ASSERT_TRUE(primary.PutRawTrajectory(MakeTrajectory(i, 6)).ok());
    }
    auto sealed = primary.SealWalSegment();
    ASSERT_TRUE(sealed.ok());
    ASSERT_FALSE(sealed->empty());
    sealed_name_ = *sealed;
    ASSERT_TRUE(primary.PutRawTrajectory(MakeTrajectory(8, 6)).ok());
    ASSERT_TRUE(primary.Sync().ok());
    if (!standby.empty()) {
      shard::WalShipper shipper(dir, standby);
      auto shipped = shipper.ShipSealedSegments();
      ASSERT_TRUE(shipped.ok()) << shipped.status().ToString();
      ASSERT_EQ(shipped->segments_shipped, 1u);
    }
    // The reference the repaired primary must still recover to.
    for (int i = 0; i < 9; ++i) {
      ASSERT_TRUE(reference_.PutRawTrajectory(MakeTrajectory(i, 6)).ok());
    }
  }

  std::string CurrentGeneration(const std::string& dir) {
    common::Env* env = common::Env::Default();
    std::string current;
    EXPECT_TRUE(env->ReadFileToString(dir + "/CURRENT", &current).ok());
    size_t eol = current.find('\n');
    if (eol != std::string::npos) current = current.substr(0, eol);
    return dir + "/" + current;
  }

  std::string sealed_name_;
  store::SemanticTrajectoryStore reference_;
};

TEST_F(ScrubberFixture, CleanDirectoryScansWithoutFindings) {
  std::string dir = TempDir("semitri_scrub_clean");
  BuildPrimary(dir, "");
  store::ScrubberConfig config;
  config.dir = dir;
  config.files_per_cycle = 0;  // everything in one Tick
  store::IntegrityScrubber scrubber(config);
  ASSERT_TRUE(scrubber.Tick().ok());
  const auto& c = scrubber.counters();
  // One sealed segment + the four checkpoint CSVs named by the sidecar.
  EXPECT_EQ(c.files_scanned, 5u);
  EXPECT_EQ(c.corrupt_detected, 0u);
  EXPECT_EQ(c.repaired, 0u);
  EXPECT_EQ(c.quarantined, 0u);
  EXPECT_EQ(c.cycles_completed, 1u);
  EXPECT_TRUE(scrubber.last_quarantine().empty());
  fs::remove_all(dir);
}

TEST_F(ScrubberFixture, RepairsCorruptSealedSegmentFromStandby) {
  std::string dir = TempDir("semitri_scrub_repair");
  std::string standby = TempDir("semitri_scrub_repair_standby");
  BuildPrimary(dir, standby);
  CorruptMiddleByte(dir + "/" + sealed_name_);
  ASSERT_FALSE(SegmentIntact(dir + "/" + sealed_name_));

  store::ScrubberConfig config;
  config.dir = dir;
  config.repair_dir = standby;
  config.files_per_cycle = 0;
  store::IntegrityScrubber scrubber(config);
  ASSERT_TRUE(scrubber.Tick().ok());
  const auto& c = scrubber.counters();
  EXPECT_EQ(c.corrupt_detected, 1u);
  EXPECT_EQ(c.repaired, 1u);
  EXPECT_EQ(c.quarantined, 0u);
  EXPECT_TRUE(SegmentIntact(dir + "/" + sealed_name_));

  // Recovery over the repaired directory converges to the clean state.
  store::SemanticTrajectoryStore recovered;
  auto stats = recovered.Recover(dir);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(recovered.ContentEquals(reference_));
  fs::remove_all(dir);
  fs::remove_all(standby);
}

TEST_F(ScrubberFixture, QuarantinesWithoutARepairSource) {
  std::string dir = TempDir("semitri_scrub_quarantine");
  BuildPrimary(dir, "");
  std::string segment = dir + "/" + sealed_name_;
  CorruptMiddleByte(segment);

  store::ScrubberConfig config;
  config.dir = dir;  // no repair_dir: quarantine is the only option
  config.files_per_cycle = 0;
  store::IntegrityScrubber scrubber(config);
  ASSERT_TRUE(scrubber.Tick().ok());
  const auto& c = scrubber.counters();
  EXPECT_EQ(c.corrupt_detected, 1u);
  EXPECT_EQ(c.repaired, 0u);
  EXPECT_EQ(c.quarantined, 1u);
  EXPECT_EQ(scrubber.last_quarantine(), segment);
  common::Env* env = common::Env::Default();
  EXPECT_FALSE(env->FileExists(segment));
  EXPECT_TRUE(env->FileExists(segment + ".quarantined"));

  // The loss is loud (counter + renamed file), not a CRC surprise at
  // the next failover: recovery itself still succeeds on what's left.
  store::SemanticTrajectoryStore recovered;
  EXPECT_TRUE(recovered.Recover(dir).ok());
  fs::remove_all(dir);
}

TEST_F(ScrubberFixture, RefusesToRepairFromACorruptStandbyCopy) {
  std::string dir = TempDir("semitri_scrub_bad_standby");
  std::string standby = TempDir("semitri_scrub_bad_standby_sb");
  BuildPrimary(dir, standby);
  // Both copies rot: copying the standby's corruption over the
  // primary's would launder bad data into a "repaired" file.
  CorruptMiddleByte(dir + "/" + sealed_name_);
  CorruptMiddleByte(standby + "/" + sealed_name_);

  store::ScrubberConfig config;
  config.dir = dir;
  config.repair_dir = standby;
  config.files_per_cycle = 0;
  store::IntegrityScrubber scrubber(config);
  ASSERT_TRUE(scrubber.Tick().ok());
  const auto& c = scrubber.counters();
  EXPECT_EQ(c.corrupt_detected, 1u);
  EXPECT_EQ(c.repaired, 0u);
  EXPECT_EQ(c.quarantined, 1u);
  fs::remove_all(dir);
  fs::remove_all(standby);
}

TEST_F(ScrubberFixture, DetectsCorruptCheckpointCsvAgainstSidecar) {
  std::string dir = TempDir("semitri_scrub_ckpt");
  BuildPrimary(dir, "");
  std::string gps = CurrentGeneration(dir) + "/gps.csv";
  CorruptMiddleByte(gps);

  store::ScrubberConfig config;
  config.dir = dir;
  config.files_per_cycle = 0;
  store::IntegrityScrubber scrubber(config);
  ASSERT_TRUE(scrubber.Tick().ok());
  const auto& c = scrubber.counters();
  // Generations are never shipped, so a corrupt CSV can only
  // quarantine — which makes the generation unusable loudly.
  EXPECT_EQ(c.corrupt_detected, 1u);
  EXPECT_EQ(c.quarantined, 1u);
  EXPECT_EQ(scrubber.last_quarantine(), gps);
  fs::remove_all(dir);
}

TEST_F(ScrubberFixture, GenerationWithoutSidecarIsUnverifiableNotGuessed) {
  std::string dir = TempDir("semitri_scrub_nosidecar");
  BuildPrimary(dir, "");
  ASSERT_TRUE(common::Env::Default()
                  ->RemoveFile(CurrentGeneration(dir) + "/checksums.csv")
                  .ok());

  store::ScrubberConfig config;
  config.dir = dir;
  config.files_per_cycle = 0;
  store::IntegrityScrubber scrubber(config);
  ASSERT_TRUE(scrubber.Tick().ok());
  const auto& c = scrubber.counters();
  EXPECT_EQ(c.unverifiable_skipped, 1u);
  // Only the sealed segment was scannable.
  EXPECT_EQ(c.files_scanned, 1u);
  EXPECT_EQ(c.corrupt_detected, 0u);
  fs::remove_all(dir);
}

TEST_F(ScrubberFixture, TickWalksIncrementallyAndCyclesPickUpNewDamage) {
  std::string dir = TempDir("semitri_scrub_incremental");
  std::string standby = TempDir("semitri_scrub_incremental_sb");
  BuildPrimary(dir, standby);

  store::ScrubberConfig config;
  config.dir = dir;
  config.repair_dir = standby;
  config.files_per_cycle = 2;  // 5 files: 3 Ticks per cycle
  store::IntegrityScrubber scrubber(config);
  ASSERT_TRUE(scrubber.Tick().ok());
  EXPECT_EQ(scrubber.counters().files_scanned, 2u);
  EXPECT_EQ(scrubber.counters().cycles_completed, 0u);
  ASSERT_TRUE(scrubber.Tick().ok());
  ASSERT_TRUE(scrubber.Tick().ok());
  EXPECT_EQ(scrubber.counters().files_scanned, 5u);
  EXPECT_EQ(scrubber.counters().cycles_completed, 1u);

  // Damage landing after a cycle completed is caught by the next walk.
  CorruptMiddleByte(dir + "/" + sealed_name_);
  while (scrubber.counters().cycles_completed < 2) {
    ASSERT_TRUE(scrubber.Tick().ok());
  }
  EXPECT_EQ(scrubber.counters().corrupt_detected, 1u);
  EXPECT_EQ(scrubber.counters().repaired, 1u);
  EXPECT_TRUE(SegmentIntact(dir + "/" + sealed_name_));
  fs::remove_all(dir);
  fs::remove_all(standby);
}

TEST_F(ScrubberFixture, VanishedFilesAreARaceNotCorruption) {
  std::string dir = TempDir("semitri_scrub_vanish");
  BuildPrimary(dir, "");
  store::ScrubberConfig config;
  config.dir = dir;
  config.files_per_cycle = 1;  // worklist built on the first Tick
  store::IntegrityScrubber scrubber(config);
  ASSERT_TRUE(scrubber.Tick().ok());
  // A checkpoint compacts the directory mid-walk: the sealed segment
  // and old generation the worklist still names get GC'd.
  {
    store::SemanticTrajectoryStore reopened;
    ASSERT_TRUE(reopened.Recover(dir).ok());
    ASSERT_TRUE(reopened.Checkpoint().ok());
  }
  while (scrubber.counters().cycles_completed < 1) {
    ASSERT_TRUE(scrubber.Tick().ok());
  }
  EXPECT_EQ(scrubber.counters().corrupt_detected, 0u);
  EXPECT_EQ(scrubber.counters().quarantined, 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace semitri
