// Randomized stress tests ("fuzz-style", deterministic seeds):
//   * R*-tree under interleaved inserts/removes vs a brute-force oracle;
//   * preprocessing + segmentation on adversarial GPS streams;
//   * store round-trips on randomized content;
//   * world I/O round-trips on randomized worlds + malformed-input
//     rejection (every failure a Status, never UB — run these under
//     ASan/UBSan);
//   * KML export fed non-finite geometry.

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/strings.h"
#include "export/kml_writer.h"
#include "index/rstar_tree.h"
#include "io/world_io.h"
#include "store/semantic_trajectory_store.h"
#include "traj/preprocess.h"
#include "traj/segmentation.h"

namespace semitri {
namespace {

using geo::BoundingBox;
using geo::Point;

class RStarFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RStarFuzz, InterleavedInsertRemoveMatchesOracle) {
  common::Rng rng(GetParam());
  index::RStarTree<int> tree(6);
  std::map<int, BoundingBox> oracle;
  int next_id = 0;
  for (int op = 0; op < 3000; ++op) {
    double dice = rng.Uniform(0.0, 1.0);
    if (dice < 0.6 || oracle.empty()) {
      Point min{rng.Uniform(0, 500), rng.Uniform(0, 500)};
      BoundingBox box(min, min + Point{rng.Uniform(0, 10),
                                       rng.Uniform(0, 10)});
      tree.Insert(box, next_id);
      oracle[next_id] = box;
      ++next_id;
    } else {
      // Remove a random live entry.
      auto it = oracle.begin();
      std::advance(it, rng.UniformInt(0, static_cast<int64_t>(
                                             oracle.size()) - 1));
      ASSERT_TRUE(tree.Remove(it->second, it->first));
      oracle.erase(it);
    }
    if (op % 250 == 0) {
      ASSERT_EQ(tree.size(), oracle.size());
      Point min{rng.Uniform(0, 500), rng.Uniform(0, 500)};
      BoundingBox query(min, min + Point{50, 50});
      std::vector<int> got = tree.Query(query);
      std::sort(got.begin(), got.end());
      std::vector<int> expected;
      for (const auto& [id, box] : oracle) {
        if (box.Intersects(query)) expected.push_back(id);
      }
      ASSERT_EQ(got, expected) << "op " << op;
    }
  }
  // Final sweep: every live entry findable, every removed entry gone.
  for (const auto& [id, box] : oracle) {
    std::vector<int> hits = tree.Query(box);
    EXPECT_NE(std::find(hits.begin(), hits.end(), id), hits.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RStarFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(PipelineRobustness, AdversarialGpsStreams) {
  // Streams with duplicates, out-of-order stamps, teleports, and
  // constant positions must never crash the computation layer and must
  // keep its output invariants.
  common::Rng rng(99);
  traj::Preprocessor preprocessor;
  traj::StopMoveSegmenter segmenter;
  for (int trial = 0; trial < 50; ++trial) {
    core::RawTrajectory t;
    double time = 0.0;
    int n = static_cast<int>(rng.UniformInt(0, 400));
    for (int i = 0; i < n; ++i) {
      core::GpsPoint p;
      double dice = rng.Uniform(0, 1);
      if (dice < 0.05) {
        time -= rng.Uniform(0, 5);  // clock glitch
      } else if (dice < 0.1) {
        time += rng.Uniform(100, 2000);  // gap
      } else {
        time += rng.Uniform(0.5, 30);
      }
      if (rng.Bernoulli(0.03)) {
        p.position = {rng.Uniform(-1e6, 1e6), rng.Uniform(-1e6, 1e6)};
      } else {
        p.position = {rng.Gaussian(0, 200), rng.Gaussian(0, 200)};
      }
      p.time = time;
      t.points.push_back(p);
    }
    core::RawTrajectory cleaned = preprocessor.Clean(t);
    // Cleaned stream is strictly time-ordered.
    for (size_t i = 1; i < cleaned.points.size(); ++i) {
      EXPECT_GT(cleaned.points[i].time, cleaned.points[i - 1].time);
    }
    std::vector<core::Episode> episodes = segmenter.Segment(cleaned);
    // Episodes partition the cleaned points.
    size_t covered = 0;
    size_t expected_begin = 0;
    for (const core::Episode& ep : episodes) {
      EXPECT_EQ(ep.begin, expected_begin);
      EXPECT_GT(ep.end, ep.begin);
      EXPECT_LE(ep.time_in, ep.time_out);
      covered += ep.num_points();
      expected_begin = ep.end;
    }
    EXPECT_EQ(covered, cleaned.points.size());
  }
}

TEST(StoreRobustness, LoadRejectsCorruptRows) {
  namespace fs = std::filesystem;
  std::string dir = (fs::temp_directory_path() / "semitri_corrupt").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  auto write = [&](const std::string& name, const std::string& content) {
    std::ofstream out(dir + "/" + name);
    out << content;
  };
  write("gps.csv", "object_id,trajectory_id,x,y,t\n1,2,3.0\n");  // short row
  write("episodes.csv",
        "trajectory_id,index,kind,begin,end,time_in,time_out,center_x,"
        "center_y,min_x,min_y,max_x,max_y\n");
  write("semantic_episodes.csv",
        "object_id,trajectory_id,interpretation,index,kind,place_kind,"
        "place_id,time_in,time_out,annotations\n");
  store::SemanticTrajectoryStore store;
  common::Status status = store.LoadCsv(dir);
  EXPECT_EQ(status.code(), common::StatusCode::kCorruption);
  fs::remove_all(dir);
}

TEST(StoreRobustness, RandomizedRoundTrips) {
  namespace fs = std::filesystem;
  common::Rng rng(123);
  std::string dir =
      (fs::temp_directory_path() / "semitri_fuzz_store").string();
  for (int trial = 0; trial < 5; ++trial) {
    fs::remove_all(dir);
    store::SemanticTrajectoryStore store;
    size_t expected_records = 0, expected_semantic = 0;
    int num_trajectories = static_cast<int>(rng.UniformInt(1, 6));
    for (int t = 0; t < num_trajectories; ++t) {
      core::RawTrajectory raw;
      raw.id = t;
      raw.object_id = t % 3;
      int n = static_cast<int>(rng.UniformInt(1, 50));
      double time = 0.0;
      for (int i = 0; i < n; ++i) {
        time += rng.Uniform(1, 60);
        raw.points.push_back({{rng.Uniform(-1e4, 1e4),
                               rng.Uniform(-1e4, 1e4)},
                              time});
      }
      expected_records += raw.points.size();
      ASSERT_TRUE(store.PutRawTrajectory(raw).ok());
      core::StructuredSemanticTrajectory sst;
      sst.trajectory_id = t;
      sst.object_id = raw.object_id;
      sst.interpretation = "region";
      int m = static_cast<int>(rng.UniformInt(0, 10));
      for (int e = 0; e < m; ++e) {
        core::SemanticEpisode ep;
        ep.kind = rng.Bernoulli(0.5) ? core::EpisodeKind::kStop
                                     : core::EpisodeKind::kMove;
        ep.time_in = e * 100.0;
        ep.time_out = e * 100.0 + 50.0;
        ep.place = {core::PlaceKind::kRegion, rng.UniformInt(-1, 100)};
        if (rng.Bernoulli(0.7)) {
          ep.AddAnnotation("landuse", "1.2");
        }
        sst.episodes.push_back(ep);
      }
      expected_semantic += sst.episodes.size();
      ASSERT_TRUE(store.PutInterpretation(sst).ok());
    }
    ASSERT_TRUE(store.SaveCsv(dir).ok());
    store::SemanticTrajectoryStore loaded;
    ASSERT_TRUE(loaded.LoadCsv(dir).ok());
    EXPECT_EQ(loaded.num_gps_records(), expected_records);
    EXPECT_EQ(loaded.num_semantic_episodes(), expected_semantic);
    EXPECT_EQ(loaded.num_trajectories(),
              static_cast<size_t>(num_trajectories));
  }
  fs::remove_all(dir);
}

TEST(WorldIoRobustness, RandomizedRoundTrips) {
  namespace fs = std::filesystem;
  common::Rng rng(321);
  std::string dir =
      (fs::temp_directory_path() / "semitri_fuzz_world").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  for (int trial = 0; trial < 5; ++trial) {
    // Regions: random mix of grid cells and polygons, names with CSV
    // metacharacters and extreme (but finite) coordinates.
    region::RegionSet regions;
    int num_regions = static_cast<int>(rng.UniformInt(1, 20));
    for (int i = 0; i < num_regions; ++i) {
      auto category = static_cast<region::LanduseCategory>(
          rng.UniformInt(0, 5));
      std::string name = rng.Bernoulli(0.5)
                             ? common::StrFormat("r,\"%d\"", i)
                             : common::StrFormat("region %d", i);
      if (rng.Bernoulli(0.5)) {
        geo::Point min{rng.Uniform(-1e8, 1e8), rng.Uniform(-1e8, 1e8)};
        regions.AddCell(
            geo::BoundingBox(min, min + geo::Point{rng.Uniform(0.001, 1e4),
                                                   rng.Uniform(0.001, 1e4)}),
            category, name);
      } else {
        geo::Point base{rng.Uniform(-1e6, 1e6), rng.Uniform(-1e6, 1e6)};
        regions.AddPolygon(
            geo::Polygon({base, base + geo::Point{rng.Uniform(1, 100), 0},
                          base + geo::Point{rng.Uniform(1, 100),
                                            rng.Uniform(1, 100)}}),
            category, name);
      }
    }
    std::string regions_path = dir + "/regions.csv";
    ASSERT_TRUE(io::SaveRegions(regions, regions_path).ok());
    auto loaded_regions = io::LoadRegions(regions_path);
    ASSERT_TRUE(loaded_regions.ok());
    ASSERT_EQ(loaded_regions->size(), regions.size());
    for (size_t i = 0; i < regions.size(); ++i) {
      auto id = static_cast<core::PlaceId>(i);
      EXPECT_EQ(loaded_regions->Get(id).category, regions.Get(id).category);
      EXPECT_EQ(loaded_regions->Get(id).name, regions.Get(id).name);
      EXPECT_EQ(loaded_regions->Get(id).polygon.has_value(),
                regions.Get(id).polygon.has_value());
    }

    // Roads: random connected-ish graph.
    road::RoadNetwork roads;
    int num_nodes = static_cast<int>(rng.UniformInt(2, 30));
    for (int i = 0; i < num_nodes; ++i) {
      roads.AddNode({rng.Uniform(-1e5, 1e5), rng.Uniform(-1e5, 1e5)});
    }
    int num_segments = static_cast<int>(rng.UniformInt(1, 40));
    for (int i = 0; i < num_segments; ++i) {
      auto from = rng.UniformInt(0, num_nodes - 1);
      auto to = rng.UniformInt(0, num_nodes - 1);
      if (from == to) to = (to + 1) % num_nodes;
      roads.AddSegment(from, to,
                       static_cast<road::RoadType>(rng.UniformInt(0, 4)),
                       common::StrFormat("road \"%d\", fuzz", i));
    }
    std::string roads_path = dir + "/roads.csv";
    ASSERT_TRUE(io::SaveRoadNetwork(roads, roads_path).ok());
    auto loaded_roads = io::LoadRoadNetwork(roads_path);
    ASSERT_TRUE(loaded_roads.ok());
    ASSERT_EQ(loaded_roads->num_segments(), roads.num_segments());
    for (size_t s = 0; s < roads.num_segments(); ++s) {
      auto id = static_cast<core::PlaceId>(s);
      EXPECT_EQ(loaded_roads->segment(id).name, roads.segment(id).name);
      EXPECT_EQ(loaded_roads->segment(id).type, roads.segment(id).type);
      EXPECT_NEAR(loaded_roads->segment(id).Length(),
                  roads.segment(id).Length(), 1e-3);
    }

    // POIs with round-trippable positions and hostile names.
    poi::PoiSet pois({"a", "b,c", "d\"e\""});
    int num_pois = static_cast<int>(rng.UniformInt(0, 50));
    for (int i = 0; i < num_pois; ++i) {
      pois.Add({rng.Uniform(-1e6, 1e6), rng.Uniform(-1e6, 1e6)},
               static_cast<int>(rng.UniformInt(0, 2)),
               common::StrFormat("poi,%d", i));
    }
    std::string pois_path = dir + "/pois.csv";
    std::string categories_path = dir + "/poi_categories.csv";
    ASSERT_TRUE(io::SavePois(pois, pois_path, categories_path).ok());
    auto loaded_pois = io::LoadPois(pois_path, categories_path);
    ASSERT_TRUE(loaded_pois.ok());
    ASSERT_EQ(loaded_pois->size(), pois.size());
    ASSERT_EQ(loaded_pois->num_categories(), pois.num_categories());
  }
  fs::remove_all(dir);
}

TEST(WorldIoRobustness, MalformedRowsRejectedAsStatus) {
  namespace fs = std::filesystem;
  std::string dir =
      (fs::temp_directory_path() / "semitri_fuzz_world_bad").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  auto write = [&](const std::string& name, const std::string& content) {
    std::ofstream out(dir + "/" + name);
    out << content;
    return dir + "/" + name;
  };
  // Each corruption must surface as kCorruption — short rows, numeric
  // garbage, nan/inf smuggled into coordinate fields, broken rings.
  const char* kRegionHeader = "id,category,name,min_x,min_y,max_x,max_y,ring\n";
  for (const std::string& row :
       {std::string("0,1,x,0,0\n"), std::string("0,zero,x,0,0,1,1,\n"),
        std::string("0,1,x,nan,0,1,1,\n"), std::string("0,1,x,0,inf,1,1,\n"),
        std::string("0,1,x,0,0,1,1,\"5 5;bad\"\n"),
        std::string("0,1,x,0,0,1,1,\"1 2;3\"\n")}) {
    std::string path = write("regions.csv", kRegionHeader + row);
    auto loaded = io::LoadRegions(path);
    ASSERT_FALSE(loaded.ok()) << row;
    EXPECT_EQ(loaded.status().code(), common::StatusCode::kCorruption) << row;
  }
  const char* kRoadHeader = "id,from,to,type,name,ax,ay,bx,by\n";
  for (const std::string& row :
       {std::string("0,1,2,0,x,0,0,1\n"), std::string("0,a,2,0,x,0,0,1,1\n"),
        std::string("0,1,2,0,x,nan,0,1,1\n"),
        std::string("0,1,2,0,x,0,0,1,-inf\n"),
        std::string("0,1,2,ten,x,0,0,1,1\n")}) {
    std::string path = write("roads.csv", kRoadHeader + row);
    auto loaded = io::LoadRoadNetwork(path);
    ASSERT_FALSE(loaded.ok()) << row;
    EXPECT_EQ(loaded.status().code(), common::StatusCode::kCorruption) << row;
  }
  std::string categories = write("poi_categories.csv", "id,name\n0,bar\n");
  const char* kPoiHeader = "id,category,name,x,y\n";
  for (const std::string& row :
       {std::string("0,0,x,1\n"), std::string("0,seven,x,1,2\n"),
        std::string("0,0,x,nan,2\n"), std::string("0,0,x,1,1e999\n"),
        std::string("0,5,x,1,2\n")}) {  // category out of range
    std::string path = write("pois.csv", kPoiHeader + row);
    auto loaded = io::LoadPois(path, categories);
    ASSERT_FALSE(loaded.ok()) << row;
    EXPECT_EQ(loaded.status().code(), common::StatusCode::kCorruption) << row;
  }
  fs::remove_all(dir);
}

TEST(WorldIoRobustness, NonFiniteGeometryRejectedOnSave) {
  namespace fs = std::filesystem;
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  std::string dir =
      (fs::temp_directory_path() / "semitri_fuzz_world_nonfinite").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  region::RegionSet regions;
  regions.AddCell(geo::BoundingBox({0, kNan}, {1, 1}),
                  region::LanduseCategory::kBuilding);
  common::Status status = io::SaveRegions(regions, dir + "/regions.csv");
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);

  road::RoadNetwork roads;
  road::NodeId a = roads.AddNode({0, 0});
  road::NodeId b = roads.AddNode(
      {std::numeric_limits<double>::infinity(), 0});
  roads.AddSegment(a, b, road::RoadType::kArterial, "bad");
  status = io::SaveRoadNetwork(roads, dir + "/roads.csv");
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);

  poi::PoiSet pois({"cat"});
  pois.Add({kNan, kNan}, 0, "lost");
  status = io::SavePois(pois, dir + "/pois.csv", dir + "/cats.csv");
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
  fs::remove_all(dir);
}

TEST(KmlRobustness, NonFiniteCoordinatesNeverReachTheFile) {
  namespace fs = std::filesystem;
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  export_::KmlWriter writer(geo::LocalProjection({46.52, 6.63}));
  core::RawTrajectory bad;
  bad.id = 7;
  bad.points.push_back({{0.0, 0.0}, 0.0});
  bad.points.push_back({{kNan, 100.0}, 10.0});
  writer.AddTrajectory(bad, "corrupted trace");
  EXPECT_FALSE(writer.status().ok());

  core::Episode stop;
  stop.kind = core::EpisodeKind::kStop;
  stop.begin = 0;
  stop.end = 1;
  stop.center = {std::numeric_limits<double>::infinity(), 0.0};
  writer.AddStops(bad, {stop});

  // The poisoned document refuses to write, and nothing was emitted.
  std::string path =
      (fs::temp_directory_path() / "semitri_fuzz_bad.kml").string();
  fs::remove(path);
  common::Status status = writer.WriteFile(path);
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
  EXPECT_FALSE(fs::exists(path));
  EXPECT_EQ(writer.ToString().find("nan"), std::string::npos);
  EXPECT_EQ(writer.ToString().find("inf"), std::string::npos);

  // A clean writer with finite geometry still exports normally.
  export_::KmlWriter clean(geo::LocalProjection({46.52, 6.63}));
  core::RawTrajectory good;
  good.id = 8;
  good.points.push_back({{0.0, 0.0}, 0.0});
  good.points.push_back({{50.0, 50.0}, 10.0});
  clean.AddTrajectory(good, "fine");
  EXPECT_TRUE(clean.status().ok());
  ASSERT_TRUE(clean.WriteFile(path).ok());
  EXPECT_TRUE(fs::exists(path));
  fs::remove(path);
}

}  // namespace
}  // namespace semitri
