// Randomized stress tests ("fuzz-style", deterministic seeds):
//   * R*-tree under interleaved inserts/removes vs a brute-force oracle;
//   * preprocessing + segmentation on adversarial GPS streams;
//   * store round-trips on randomized content.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/rstar_tree.h"
#include "store/semantic_trajectory_store.h"
#include "traj/preprocess.h"
#include "traj/segmentation.h"

namespace semitri {
namespace {

using geo::BoundingBox;
using geo::Point;

class RStarFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RStarFuzz, InterleavedInsertRemoveMatchesOracle) {
  common::Rng rng(GetParam());
  index::RStarTree<int> tree(6);
  std::map<int, BoundingBox> oracle;
  int next_id = 0;
  for (int op = 0; op < 3000; ++op) {
    double dice = rng.Uniform(0.0, 1.0);
    if (dice < 0.6 || oracle.empty()) {
      Point min{rng.Uniform(0, 500), rng.Uniform(0, 500)};
      BoundingBox box(min, min + Point{rng.Uniform(0, 10),
                                       rng.Uniform(0, 10)});
      tree.Insert(box, next_id);
      oracle[next_id] = box;
      ++next_id;
    } else {
      // Remove a random live entry.
      auto it = oracle.begin();
      std::advance(it, rng.UniformInt(0, static_cast<int64_t>(
                                             oracle.size()) - 1));
      ASSERT_TRUE(tree.Remove(it->second, it->first));
      oracle.erase(it);
    }
    if (op % 250 == 0) {
      ASSERT_EQ(tree.size(), oracle.size());
      Point min{rng.Uniform(0, 500), rng.Uniform(0, 500)};
      BoundingBox query(min, min + Point{50, 50});
      std::vector<int> got = tree.Query(query);
      std::sort(got.begin(), got.end());
      std::vector<int> expected;
      for (const auto& [id, box] : oracle) {
        if (box.Intersects(query)) expected.push_back(id);
      }
      ASSERT_EQ(got, expected) << "op " << op;
    }
  }
  // Final sweep: every live entry findable, every removed entry gone.
  for (const auto& [id, box] : oracle) {
    std::vector<int> hits = tree.Query(box);
    EXPECT_NE(std::find(hits.begin(), hits.end(), id), hits.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RStarFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(PipelineRobustness, AdversarialGpsStreams) {
  // Streams with duplicates, out-of-order stamps, teleports, and
  // constant positions must never crash the computation layer and must
  // keep its output invariants.
  common::Rng rng(99);
  traj::Preprocessor preprocessor;
  traj::StopMoveSegmenter segmenter;
  for (int trial = 0; trial < 50; ++trial) {
    core::RawTrajectory t;
    double time = 0.0;
    int n = static_cast<int>(rng.UniformInt(0, 400));
    for (int i = 0; i < n; ++i) {
      core::GpsPoint p;
      double dice = rng.Uniform(0, 1);
      if (dice < 0.05) {
        time -= rng.Uniform(0, 5);  // clock glitch
      } else if (dice < 0.1) {
        time += rng.Uniform(100, 2000);  // gap
      } else {
        time += rng.Uniform(0.5, 30);
      }
      if (rng.Bernoulli(0.03)) {
        p.position = {rng.Uniform(-1e6, 1e6), rng.Uniform(-1e6, 1e6)};
      } else {
        p.position = {rng.Gaussian(0, 200), rng.Gaussian(0, 200)};
      }
      p.time = time;
      t.points.push_back(p);
    }
    core::RawTrajectory cleaned = preprocessor.Clean(t);
    // Cleaned stream is strictly time-ordered.
    for (size_t i = 1; i < cleaned.points.size(); ++i) {
      EXPECT_GT(cleaned.points[i].time, cleaned.points[i - 1].time);
    }
    std::vector<core::Episode> episodes = segmenter.Segment(cleaned);
    // Episodes partition the cleaned points.
    size_t covered = 0;
    size_t expected_begin = 0;
    for (const core::Episode& ep : episodes) {
      EXPECT_EQ(ep.begin, expected_begin);
      EXPECT_GT(ep.end, ep.begin);
      EXPECT_LE(ep.time_in, ep.time_out);
      covered += ep.num_points();
      expected_begin = ep.end;
    }
    EXPECT_EQ(covered, cleaned.points.size());
  }
}

TEST(StoreRobustness, LoadRejectsCorruptRows) {
  namespace fs = std::filesystem;
  std::string dir = (fs::temp_directory_path() / "semitri_corrupt").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  auto write = [&](const std::string& name, const std::string& content) {
    std::ofstream out(dir + "/" + name);
    out << content;
  };
  write("gps.csv", "object_id,trajectory_id,x,y,t\n1,2,3.0\n");  // short row
  write("episodes.csv",
        "trajectory_id,index,kind,begin,end,time_in,time_out,center_x,"
        "center_y,min_x,min_y,max_x,max_y\n");
  write("semantic_episodes.csv",
        "object_id,trajectory_id,interpretation,index,kind,place_kind,"
        "place_id,time_in,time_out,annotations\n");
  store::SemanticTrajectoryStore store;
  common::Status status = store.LoadCsv(dir);
  EXPECT_EQ(status.code(), common::StatusCode::kCorruption);
  fs::remove_all(dir);
}

TEST(StoreRobustness, RandomizedRoundTrips) {
  namespace fs = std::filesystem;
  common::Rng rng(123);
  std::string dir =
      (fs::temp_directory_path() / "semitri_fuzz_store").string();
  for (int trial = 0; trial < 5; ++trial) {
    fs::remove_all(dir);
    store::SemanticTrajectoryStore store;
    size_t expected_records = 0, expected_semantic = 0;
    int num_trajectories = static_cast<int>(rng.UniformInt(1, 6));
    for (int t = 0; t < num_trajectories; ++t) {
      core::RawTrajectory raw;
      raw.id = t;
      raw.object_id = t % 3;
      int n = static_cast<int>(rng.UniformInt(1, 50));
      double time = 0.0;
      for (int i = 0; i < n; ++i) {
        time += rng.Uniform(1, 60);
        raw.points.push_back({{rng.Uniform(-1e4, 1e4),
                               rng.Uniform(-1e4, 1e4)},
                              time});
      }
      expected_records += raw.points.size();
      ASSERT_TRUE(store.PutRawTrajectory(raw).ok());
      core::StructuredSemanticTrajectory sst;
      sst.trajectory_id = t;
      sst.object_id = raw.object_id;
      sst.interpretation = "region";
      int m = static_cast<int>(rng.UniformInt(0, 10));
      for (int e = 0; e < m; ++e) {
        core::SemanticEpisode ep;
        ep.kind = rng.Bernoulli(0.5) ? core::EpisodeKind::kStop
                                     : core::EpisodeKind::kMove;
        ep.time_in = e * 100.0;
        ep.time_out = e * 100.0 + 50.0;
        ep.place = {core::PlaceKind::kRegion, rng.UniformInt(-1, 100)};
        if (rng.Bernoulli(0.7)) {
          ep.AddAnnotation("landuse", "1.2");
        }
        sst.episodes.push_back(ep);
      }
      expected_semantic += sst.episodes.size();
      ASSERT_TRUE(store.PutInterpretation(sst).ok());
    }
    ASSERT_TRUE(store.SaveCsv(dir).ok());
    store::SemanticTrajectoryStore loaded;
    ASSERT_TRUE(loaded.LoadCsv(dir).ok());
    EXPECT_EQ(loaded.num_gps_records(), expected_records);
    EXPECT_EQ(loaded.num_semantic_episodes(), expected_semantic);
    EXPECT_EQ(loaded.num_trajectories(),
              static_cast<size_t>(num_trajectories));
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace semitri
