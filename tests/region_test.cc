// Tests for the Semantic Region Annotation Layer: landuse ontology,
// region repository queries, Algorithm 1 tuple building/merging, and
// episode-level annotation.

#include <gtest/gtest.h>

#include "region/landuse.h"
#include "region/region_annotator.h"
#include "region/region_set.h"
#include "core/ingest.h"

namespace semitri::region {
namespace {

using core::EpisodeKind;
using geo::BoundingBox;
using geo::Point;

TEST(LanduseTest, CodesMatchPaperFig4) {
  EXPECT_STREQ(LanduseCategoryCode(LanduseCategory::kIndustrialCommercial),
               "1.1");
  EXPECT_STREQ(LanduseCategoryCode(LanduseCategory::kBuilding), "1.2");
  EXPECT_STREQ(LanduseCategoryCode(LanduseCategory::kTransportation), "1.3");
  EXPECT_STREQ(LanduseCategoryCode(LanduseCategory::kForest), "3.10");
  EXPECT_STREQ(LanduseCategoryCode(LanduseCategory::kGlaciers), "4.17");
  EXPECT_EQ(kNumLanduseCategories, 17);
}

TEST(LanduseTest, GroupsMatchPaperFig4) {
  EXPECT_EQ(LanduseGroupOf(LanduseCategory::kBuilding),
            LanduseGroup::kSettlement);
  EXPECT_EQ(LanduseGroupOf(LanduseCategory::kRecreational),
            LanduseGroup::kSettlement);
  EXPECT_EQ(LanduseGroupOf(LanduseCategory::kOrchard),
            LanduseGroup::kAgricultural);
  EXPECT_EQ(LanduseGroupOf(LanduseCategory::kWoods), LanduseGroup::kWooded);
  EXPECT_EQ(LanduseGroupOf(LanduseCategory::kLakes),
            LanduseGroup::kUnproductive);
}

RegionSet MakeCellGrid() {
  // 4 cells of 100 m: building, transport, building, forest.
  RegionSet regions;
  regions.AddCell(BoundingBox({0, 0}, {100, 100}),
                  LanduseCategory::kBuilding);
  regions.AddCell(BoundingBox({100, 0}, {200, 100}),
                  LanduseCategory::kTransportation);
  regions.AddCell(BoundingBox({200, 0}, {300, 100}),
                  LanduseCategory::kBuilding);
  regions.AddCell(BoundingBox({300, 0}, {400, 100}),
                  LanduseCategory::kForest);
  return regions;
}

TEST(RegionSetTest, FindContaining) {
  RegionSet regions = MakeCellGrid();
  auto hits = regions.FindContaining(Point{50, 50});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(regions.Get(hits[0]).category, LanduseCategory::kBuilding);
  EXPECT_TRUE(regions.FindContaining(Point{5000, 5000}).empty());
}

TEST(RegionSetTest, PolygonRefinement) {
  RegionSet regions;
  // Triangle region: bounding box contains (9,1) but the polygon does not.
  regions.AddPolygon(geo::Polygon({{0, 0}, {10, 10}, {0, 10}}),
                     LanduseCategory::kRecreational, "park");
  EXPECT_EQ(regions.FindContaining(Point{1, 9}).size(), 1u);
  EXPECT_TRUE(regions.FindContaining(Point{9, 1}).empty());
}

TEST(RegionSetTest, OverlappingRegions) {
  RegionSet regions = MakeCellGrid();
  regions.AddPolygon(
      geo::Polygon::FromBox(BoundingBox({0, 0}, {400, 100})),
      LanduseCategory::kSpecialUrban, "campus");
  auto hits = regions.FindContaining(Point{50, 50});
  EXPECT_EQ(hits.size(), 2u);
}

TEST(RegionAnnotatorTest, PrefersNamedRegions) {
  RegionSet regions = MakeCellGrid();
  regions.AddPolygon(
      geo::Polygon::FromBox(BoundingBox({40, 40}, {60, 60})),
      LanduseCategory::kSpecialUrban, "campus");
  RegionAnnotator annotator(&regions);
  core::PlaceId best = annotator.BestRegionFor(Point{50, 50});
  EXPECT_EQ(regions.Get(best).name, "campus");
  // Outside the named region the cell wins.
  core::PlaceId cell = annotator.BestRegionFor(Point{10, 10});
  EXPECT_EQ(regions.Get(cell).name, "");
}

core::RawTrajectory WalkAcrossCells() {
  // 40 points marching +10 m/s in x across the 4 cells.
  core::RawTrajectory t;
  t.id = 5;
  t.object_id = 2;
  for (int i = 0; i < 40; ++i) {
    t.points.push_back({{i * 10.0 + 5.0, 50.0}, static_cast<double>(i)});
  }
  return t;
}

TEST(RegionAnnotatorTest, Algorithm1MergesByCategory) {
  RegionSet regions = MakeCellGrid();
  RegionAnnotator annotator(&regions);  // default merge: by category
  core::StructuredSemanticTrajectory out =
      annotator.AnnotateTrajectory(WalkAcrossCells());
  // building, transport, building, forest -> 4 tuples (categories
  // alternate, no adjacent duplicates to merge).
  ASSERT_EQ(out.episodes.size(), 4u);
  EXPECT_EQ(out.episodes[0].FindAnnotation("landuse"), "1.2");
  EXPECT_EQ(out.episodes[1].FindAnnotation("landuse"), "1.3");
  EXPECT_EQ(out.episodes[2].FindAnnotation("landuse"), "1.2");
  EXPECT_EQ(out.episodes[3].FindAnnotation("landuse"), "3.10");
  EXPECT_EQ(out.interpretation, "region");
  EXPECT_EQ(out.trajectory_id, 5);
}

TEST(RegionAnnotatorTest, MergeByCategoryCompressesSameTypeCells) {
  // Two adjacent building cells -> one tuple when merging by category,
  // two when merging by region.
  RegionSet regions;
  regions.AddCell(BoundingBox({0, 0}, {100, 100}),
                  LanduseCategory::kBuilding);
  regions.AddCell(BoundingBox({100, 0}, {200, 100}),
                  LanduseCategory::kBuilding);
  core::RawTrajectory t;
  for (int i = 0; i < 20; ++i) {
    t.points.push_back({{i * 10.0 + 5.0, 50.0}, static_cast<double>(i)});
  }
  RegionAnnotator by_category(&regions);
  EXPECT_EQ(by_category.AnnotateTrajectory(t).episodes.size(), 1u);

  RegionAnnotatorConfig config;
  config.merge_policy = RegionAnnotatorConfig::MergePolicy::kByRegion;
  RegionAnnotator by_region(&regions, config);
  EXPECT_EQ(by_region.AnnotateTrajectory(t).episodes.size(), 2u);
}

TEST(RegionAnnotatorTest, UncoveredPointsFormGapTuples) {
  RegionSet regions = MakeCellGrid();
  RegionAnnotator annotator(&regions);
  core::RawTrajectory t;
  // Inside, outside (y > 100), inside.
  for (int i = 0; i < 10; ++i) {
    t.points.push_back({{50.0, 50.0}, static_cast<double>(i)});
  }
  for (int i = 10; i < 20; ++i) {
    t.points.push_back({{50.0, 500.0}, static_cast<double>(i)});
  }
  for (int i = 20; i < 30; ++i) {
    t.points.push_back({{50.0, 50.0}, static_cast<double>(i)});
  }
  auto out = annotator.AnnotateTrajectory(t);
  ASSERT_EQ(out.episodes.size(), 3u);
  EXPECT_TRUE(out.episodes[0].place.valid());
  EXPECT_FALSE(out.episodes[1].place.valid());
  EXPECT_TRUE(out.episodes[2].place.valid());
}

TEST(RegionAnnotatorTest, EpisodeAnnotationStopUsesCenter) {
  RegionSet regions = MakeCellGrid();
  RegionAnnotator annotator(&regions);
  core::RawTrajectory t = WalkAcrossCells();
  core::Episode stop;
  stop.kind = EpisodeKind::kStop;
  stop.begin = 0;
  stop.end = 10;  // points at x = 5..95, center ~50 -> building cell
  stop.time_in = 0;
  stop.time_out = 9;
  stop.center = {50, 50};
  stop.bounds = BoundingBox({5, 50}, {95, 50});
  auto out = annotator.AnnotateEpisodes(t, {stop});
  ASSERT_EQ(out.episodes.size(), 1u);
  EXPECT_EQ(out.episodes[0].FindAnnotation("landuse"), "1.2");
  EXPECT_EQ(out.episodes[0].kind, EpisodeKind::kStop);
  EXPECT_EQ(out.episodes[0].source_episode, 0u);
}

TEST(RegionAnnotatorTest, EpisodeAnnotationMoveUsesMajority) {
  RegionSet regions = MakeCellGrid();
  RegionAnnotator annotator(&regions);
  core::RawTrajectory t;
  // 15 points in the transport cell, 3 in the first building cell.
  for (int i = 0; i < 3; ++i) {
    t.points.push_back({{50.0 + i, 50.0}, static_cast<double>(i)});
  }
  for (int i = 3; i < 18; ++i) {
    t.points.push_back({{150.0 + i, 50.0}, static_cast<double>(i)});
  }
  core::Episode move;
  move.kind = EpisodeKind::kMove;
  move.begin = 0;
  move.end = t.size();
  move.time_in = 0;
  move.time_out = 17;
  move.center = {130, 50};
  move.bounds = t.Bounds();
  auto out = annotator.AnnotateEpisodes(t, {move});
  ASSERT_EQ(out.episodes.size(), 1u);
  EXPECT_EQ(out.episodes[0].FindAnnotation("landuse"), "1.3");
}


TEST(RegionSetTest, FindByPredicate) {
  RegionSet regions = MakeCellGrid();
  // Box spanning the middle two cells exactly.
  geo::BoundingBox two_cells({100, 0}, {300, 100});
  // Within: cells fully inside the box (the transport + second building
  // cell).
  auto within = regions.FindByPredicate(
      geo::SpatialPredicate::kWithin, two_cells);
  EXPECT_EQ(within, (std::vector<core::PlaceId>{1, 2}));
  // Touches: the neighbors sharing only a boundary edge.
  auto touching = regions.FindByPredicate(
      geo::SpatialPredicate::kTouches, two_cells);
  EXPECT_EQ(touching, (std::vector<core::PlaceId>{0, 3}));
  // Disjoint (scan path): none — every cell touches or overlaps.
  auto disjoint = regions.FindByPredicate(
      geo::SpatialPredicate::kDisjoint, two_cells);
  EXPECT_TRUE(disjoint.empty());
  // Directional (scan path): cells east of the first cell's box.
  auto east = regions.FindByPredicate(
      geo::SpatialPredicate::kEastOf, geo::BoundingBox({0, 0}, {100, 100}));
  EXPECT_EQ(east.size(), 3u);
}

TEST(GpsIngestTest, LatLonRoundTripThroughPipelineFrame) {
  std::vector<core::LatLonFix> fixes = {
      {{46.5200, 6.6300}, 0.0},
      {{46.5210, 6.6315}, 10.0},
      {{46.5220, 6.6330}, 20.0},
      {{91.0, 0.0}, 30.0},  // invalid latitude: dropped
  };
  auto ingestor = core::GpsIngestor::AroundCentroid(fixes);
  ASSERT_TRUE(ingestor.ok());
  std::vector<core::GpsPoint> local = ingestor->ToLocal(fixes);
  ASSERT_EQ(local.size(), 3u);
  // Spacing ~ 115 m per step at this latitude.
  double step = local[1].position.DistanceTo(local[0].position);
  EXPECT_NEAR(step, 157.0, 40.0);
  // Round trip.
  auto back = ingestor->ToLatLon(local);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_NEAR(back[0].position.lat, 46.52, 1e-9);
  EXPECT_NEAR(back[0].position.lon, 6.63, 1e-9);
  // Empty stream has no centroid.
  EXPECT_FALSE(core::GpsIngestor::AroundCentroid({}).ok());
}

}  // namespace
}  // namespace semitri::region
