// Tests for the HMM module: model validation, Viterbi decoding against
// hand-computed cases, consistency with the forward algorithm.

#include "hmm/hmm.h"

#include <cmath>
#include <span>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace semitri::hmm {
namespace {

HmmModel TwoStateModel() {
  HmmModel m;
  m.initial = {0.6, 0.4};
  m.transition = {{0.7, 0.3}, {0.4, 0.6}};
  return m;
}

// Builds the flat emission matrix from well-formed nested rows.
EmissionMatrix Em(const std::vector<std::vector<double>>& rows) {
  auto matrix = EmissionMatrix::FromRows(rows);
  EXPECT_TRUE(matrix.ok()) << matrix.status().message();
  return std::move(matrix).value();
}

TEST(HmmModelTest, ValidatesShapes) {
  HmmModel m = TwoStateModel();
  EXPECT_TRUE(ValidateModel(m).ok());

  HmmModel bad = m;
  bad.transition[0] = {0.5, 0.4};  // sums to 0.9
  EXPECT_FALSE(ValidateModel(bad).ok());

  bad = m;
  bad.initial = {0.5, 0.4, 0.1};
  EXPECT_FALSE(ValidateModel(bad).ok());

  bad = m;
  bad.initial = {1.5, -0.5};
  EXPECT_FALSE(ValidateModel(bad).ok());

  HmmModel empty;
  EXPECT_FALSE(ValidateModel(empty).ok());
}

TEST(HmmModelTest, DefaultTransitionIsStochastic) {
  auto a = MakeDefaultTransition(5, 0.8);
  ASSERT_EQ(a.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    double row_sum = 0.0;
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_GE(a[i][j], 0.0);
      row_sum += a[i][j];
      if (i == j) EXPECT_DOUBLE_EQ(a[i][j], 0.8);
      else EXPECT_DOUBLE_EQ(a[i][j], 0.05);
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-12);
  }
  auto single = MakeDefaultTransition(1, 0.8);
  EXPECT_DOUBLE_EQ(single[0][0], 1.0);
}

TEST(ViterbiTest, EmptyObservationSequence) {
  auto result = Viterbi(TwoStateModel(), EmissionMatrix());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->states.empty());
}

TEST(ViterbiTest, SingleObservationPicksMaxPosterior) {
  HmmModel m = TwoStateModel();
  // Emission strongly favors state 1.
  auto result = Viterbi(m, Em({{0.1, 0.9}}));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->states.size(), 1u);
  EXPECT_EQ(result->states[0], 1u);
  // 0.6*0.1 = 0.06 < 0.4*0.9 = 0.36.
  EXPECT_NEAR(result->log_probability, std::log(0.36), 1e-9);
}

TEST(ViterbiTest, HandComputedThreeSteps) {
  // Classic umbrella-world-style check, hand-solved.
  HmmModel m;
  m.initial = {0.5, 0.5};
  m.transition = {{0.9, 0.1}, {0.1, 0.9}};
  // Observations favor state 0, then 0, then 1.
  EmissionMatrix emissions = Em({{0.8, 0.2}, {0.8, 0.2}, {0.2, 0.8}});
  auto result = Viterbi(m, emissions);
  ASSERT_TRUE(result.ok());
  // delta1 = {.4, .1}; delta2 = {.4*.9*.8=.288, .4*.1*.2=.008};
  // delta3: state0 = .288*.9*.2=.05184, state1 = .288*.1*.8=.02304
  // -> best path stays in state 0 throughout.
  EXPECT_EQ(result->states, (std::vector<size_t>{0, 0, 0}));
  EXPECT_NEAR(result->log_probability, std::log(0.05184), 1e-9);
}

TEST(ViterbiTest, StickyTransitionsSmoothNoisyEmissions) {
  // With highly sticky states, one outlier observation does not flip
  // the decoded state — the motivation for the HMM over per-stop
  // nearest-POI in §4.3.
  HmmModel m;
  m.initial = {0.5, 0.5};
  m.transition = {{0.95, 0.05}, {0.05, 0.95}};
  EmissionMatrix emissions =
      Em({{0.9, 0.1}, {0.9, 0.1}, {0.45, 0.55}, {0.9, 0.1}, {0.9, 0.1}});
  auto result = Viterbi(m, emissions);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->states, (std::vector<size_t>{0, 0, 0, 0, 0}));
}

TEST(ViterbiTest, AllZeroEmissionRowTreatedUniform) {
  HmmModel m = TwoStateModel();
  auto result = Viterbi(m, Em({{0.9, 0.1}, {0.0, 0.0}, {0.9, 0.1}}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->states.size(), 3u);
  EXPECT_EQ(result->states[1], 0u);  // carried by transitions
}

TEST(ViterbiTest, RejectsBadEmissionShape) {
  auto result = Viterbi(TwoStateModel(), Em({{0.5, 0.4, 0.1}}));
  EXPECT_FALSE(result.ok());
  auto neg = Viterbi(TwoStateModel(), Em({{0.5, -0.1}}));
  EXPECT_FALSE(neg.ok());
  // Ragged nested rows are rejected at conversion time.
  EXPECT_FALSE(EmissionMatrix::FromRows({{0.5, 0.5}, {0.1}}).ok());
}

TEST(ForwardTest, MatchesDirectEnumerationSmallCase) {
  HmmModel m = TwoStateModel();
  EmissionMatrix emissions = Em({{0.8, 0.2}, {0.3, 0.7}});
  // Direct: sum over 4 paths.
  double total = 0.0;
  for (int s0 = 0; s0 < 2; ++s0) {
    for (int s1 = 0; s1 < 2; ++s1) {
      total += m.initial[s0] * emissions.At(0, s0) * m.transition[s0][s1] *
               emissions.At(1, s1);
    }
  }
  auto ll = ForwardLogLikelihood(m, emissions);
  ASSERT_TRUE(ll.ok());
  EXPECT_NEAR(*ll, std::log(total), 1e-12);
}

TEST(ForwardTest, ViterbiPathNeverBeatsTotalLikelihood) {
  common::Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    size_t num_states = static_cast<size_t>(rng.UniformInt(2, 5));
    HmmModel m;
    m.initial.resize(num_states);
    double sum = 0.0;
    for (double& p : m.initial) {
      p = rng.Uniform(0.01, 1.0);
      sum += p;
    }
    for (double& p : m.initial) p /= sum;
    m.transition.resize(num_states);
    for (auto& row : m.transition) {
      row.resize(num_states);
      double row_sum = 0.0;
      for (double& p : row) {
        p = rng.Uniform(0.01, 1.0);
        row_sum += p;
      }
      for (double& p : row) p /= row_sum;
    }
    size_t t_len = static_cast<size_t>(rng.UniformInt(1, 12));
    EmissionMatrix emissions;
    emissions.Reset(num_states);
    for (size_t t = 0; t < t_len; ++t) {
      for (double& e : emissions.AppendRow()) e = rng.Uniform(0.0, 1.0);
    }
    auto viterbi = Viterbi(m, emissions);
    auto forward = ForwardLogLikelihood(m, emissions);
    ASSERT_TRUE(viterbi.ok());
    ASSERT_TRUE(forward.ok());
    EXPECT_LE(viterbi->log_probability, *forward + 1e-9);
    EXPECT_EQ(viterbi->states.size(), t_len);
  }
}

TEST(ViterbiTest, LongSequenceNoUnderflow) {
  // 5,000 observations would underflow a probability-space
  // implementation; log space must survive.
  HmmModel m = TwoStateModel();
  EmissionMatrix emissions;
  emissions.Reset(2);
  for (int t = 0; t < 5000; ++t) {
    std::span<double> row = emissions.AppendRow();
    row[0] = 1e-5;
    row[1] = 2e-5;
  }
  auto result = Viterbi(m, emissions);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::isfinite(result->log_probability));
  EXPECT_EQ(result->states.size(), 5000u);
}


TEST(PosteriorTest, RowsAreDistributions) {
  HmmModel m = TwoStateModel();
  auto gamma = PosteriorDecode(m, Em({{0.8, 0.2}, {0.1, 0.9}, {0.5, 0.5}}));
  ASSERT_TRUE(gamma.ok());
  ASSERT_EQ(gamma->rows(), 3u);
  for (size_t t = 0; t < gamma->rows(); ++t) {
    double sum = 0.0;
    for (double g : gamma->Row(t)) {
      EXPECT_GE(g, 0.0);
      sum += g;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(PosteriorTest, MatchesDirectEnumerationSmallCase) {
  HmmModel m = TwoStateModel();
  EmissionMatrix emissions = Em({{0.8, 0.2}, {0.3, 0.7}});
  // gamma_0(i) = sum_j pi_i b_i(0) A_ij b_j(1) / Z.
  double z = 0.0;
  double g00 = 0.0, g01 = 0.0;
  for (int s0 = 0; s0 < 2; ++s0) {
    for (int s1 = 0; s1 < 2; ++s1) {
      double p = m.initial[s0] * emissions.At(0, s0) * m.transition[s0][s1] *
                 emissions.At(1, s1);
      z += p;
      if (s0 == 0) g00 += p;
      if (s1 == 0) g01 += p;
    }
  }
  auto gamma = PosteriorDecode(m, emissions);
  ASSERT_TRUE(gamma.ok());
  EXPECT_NEAR(gamma->At(0, 0), g00 / z, 1e-12);
  EXPECT_NEAR(gamma->At(1, 0), g01 / z, 1e-12);
}

TEST(PosteriorTest, EmptySequence) {
  auto gamma = PosteriorDecode(TwoStateModel(), EmissionMatrix());
  ASSERT_TRUE(gamma.ok());
  EXPECT_TRUE(gamma->empty());
}

}  // namespace
}  // namespace semitri::hmm
