// Tests for the CSV world I/O — the ingestion boundary for real
// 3rd-party semantic sources.

#include "io/world_io.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "datagen/world.h"

namespace semitri::io {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

TEST(WorldIoTest, RegionsRoundTrip) {
  region::RegionSet regions;
  regions.AddCell(geo::BoundingBox({0, 0}, {100, 100}),
                  region::LanduseCategory::kBuilding);
  regions.AddCell(geo::BoundingBox({100, 0}, {200, 100}),
                  region::LanduseCategory::kLakes, "lake, small");
  regions.AddPolygon(geo::Polygon({{0, 0}, {50, 10}, {25, 60}}),
                     region::LanduseCategory::kRecreational, "park");
  std::string path = TempPath("semitri_regions.csv");
  ASSERT_TRUE(SaveRegions(regions, path).ok());

  auto loaded = LoadRegions(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->Get(0).category, region::LanduseCategory::kBuilding);
  EXPECT_EQ(loaded->Get(1).name, "lake, small");  // comma survives CSV
  const region::SemanticRegion& park = loaded->Get(2);
  ASSERT_TRUE(park.polygon.has_value());
  EXPECT_EQ(park.polygon->size(), 3u);
  EXPECT_TRUE(park.Contains({25, 20}));
  EXPECT_FALSE(park.Contains({49, 55}));
  // Spatial queries work on the loaded set.
  EXPECT_EQ(loaded->FindContaining({50, 50}).size(), 1u);
  fs::remove(path);
}

TEST(WorldIoTest, RoadNetworkRoundTrip) {
  road::RoadNetwork roads;
  road::NodeId a = roads.AddNode({0, 0});
  road::NodeId b = roads.AddNode({100, 0});
  road::NodeId c = roads.AddNode({100, 100});
  roads.AddSegment(a, b, road::RoadType::kArterial, "Av. de la Gare");
  roads.AddSegment(b, c, road::RoadType::kRailMetro, "M1");
  std::string path = TempPath("semitri_roads.csv");
  ASSERT_TRUE(SaveRoadNetwork(roads, path).ok());

  auto loaded = LoadRoadNetwork(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_segments(), 2u);
  EXPECT_EQ(loaded->num_nodes(), 3u);
  EXPECT_EQ(loaded->segment(0).name, "Av. de la Gare");
  EXPECT_EQ(loaded->segment(1).type, road::RoadType::kRailMetro);
  // Connectivity survives: segments 0 and 1 share node b.
  EXPECT_EQ(loaded->AdjacentSegments(0).size(), 1u);
  EXPECT_DOUBLE_EQ(loaded->segment(0).Length(), 100.0);
  fs::remove(path);
}

TEST(WorldIoTest, PoisRoundTrip) {
  poi::PoiSet pois = poi::PoiSet::MilanCategories();
  pois.Add({10, 20}, 2, "shop \"quoted\"");
  pois.Add({30, 40}, 4);
  std::string path = TempPath("semitri_pois.csv");
  std::string categories = TempPath("semitri_poi_categories.csv");
  ASSERT_TRUE(SavePois(pois, path, categories).ok());

  auto loaded = LoadPois(path, categories);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->num_categories(), 5u);
  EXPECT_EQ(loaded->Get(0).name, "shop \"quoted\"");
  EXPECT_EQ(loaded->Get(0).category, 2);
  EXPECT_EQ(loaded->category_names()[2], "item sale");
  EXPECT_DOUBLE_EQ(loaded->CategoryPriors()[4], 0.5);
  fs::remove(path);
  fs::remove(categories);
}

TEST(WorldIoTest, MissingFilesError) {
  EXPECT_FALSE(LoadRegions("/nonexistent/regions.csv").ok());
  EXPECT_FALSE(LoadRoadNetwork("/nonexistent/roads.csv").ok());
  EXPECT_FALSE(
      LoadPois("/nonexistent/pois.csv", "/nonexistent/cats.csv").ok());
}

TEST(WorldIoTest, FullSyntheticWorldRoundTrip) {
  datagen::WorldConfig config;
  config.seed = 3;
  config.extent_meters = 2000.0;
  config.num_pois = 200;
  datagen::World world = datagen::WorldGenerator(config).Generate();

  std::string regions_path = TempPath("semitri_world_regions.csv");
  std::string roads_path = TempPath("semitri_world_roads.csv");
  std::string pois_path = TempPath("semitri_world_pois.csv");
  std::string cats_path = TempPath("semitri_world_cats.csv");
  ASSERT_TRUE(SaveRegions(world.regions, regions_path).ok());
  ASSERT_TRUE(SaveRoadNetwork(world.roads, roads_path).ok());
  ASSERT_TRUE(SavePois(world.pois, pois_path, cats_path).ok());

  auto regions = LoadRegions(regions_path);
  auto roads = LoadRoadNetwork(roads_path);
  auto pois = LoadPois(pois_path, cats_path);
  ASSERT_TRUE(regions.ok());
  ASSERT_TRUE(roads.ok());
  ASSERT_TRUE(pois.ok());
  EXPECT_EQ(regions->size(), world.regions.size());
  EXPECT_EQ(roads->num_segments(), world.roads.num_segments());
  EXPECT_EQ(pois->size(), world.pois.size());
  // Spot-check a spatial query parity.
  geo::Point probe = world.Center();
  EXPECT_EQ(regions->FindContaining(probe).size(),
            world.regions.FindContaining(probe).size());
  EXPECT_EQ(roads->CandidateSegments(probe, 100.0).size(),
            world.roads.CandidateSegments(probe, 100.0).size());
  fs::remove(regions_path);
  fs::remove(roads_path);
  fs::remove(pois_path);
  fs::remove(cats_path);
}

}  // namespace
}  // namespace semitri::io
