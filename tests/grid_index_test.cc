// Cell-geometry tests for the uniform grid index. Brute-force query
// parity for the grid-backed SpatialIndex lives in spatial_index_test.cc.

#include "index/grid_index.h"

#include <gtest/gtest.h>

namespace semitri::index {
namespace {

using geo::BoundingBox;
using geo::Point;

TEST(GridIndexTest, Dimensions) {
  GridIndex<int> grid(BoundingBox({0, 0}, {100, 50}), 10.0);
  EXPECT_EQ(grid.cols(), 10u);
  EXPECT_EQ(grid.rows(), 5u);
  EXPECT_DOUBLE_EQ(grid.cell_size(), 10.0);
}

TEST(GridIndexTest, NonDivisibleExtentRoundsUp) {
  GridIndex<int> grid(BoundingBox({0, 0}, {95, 41}), 10.0);
  EXPECT_EQ(grid.cols(), 10u);
  EXPECT_EQ(grid.rows(), 5u);
}

TEST(GridIndexTest, CellOfClampsOutOfRange) {
  GridIndex<int> grid(BoundingBox({0, 0}, {100, 100}), 10.0);
  auto [cx1, cy1] = grid.CellOf(Point{-5, -5});
  EXPECT_EQ(cx1, 0u);
  EXPECT_EQ(cy1, 0u);
  auto [cx2, cy2] = grid.CellOf(Point{150, 150});
  EXPECT_EQ(cx2, 9u);
  EXPECT_EQ(cy2, 9u);
}

TEST(GridIndexTest, CellBoundsContainInsertedPoint) {
  GridIndex<int> grid(BoundingBox({0, 0}, {100, 100}), 10.0);
  Point p{37.5, 62.5};
  auto [cx, cy] = grid.CellOf(p);
  EXPECT_TRUE(grid.CellBounds(cx, cy).Contains(p));
  EXPECT_EQ(grid.CellCenter(cx, cy), grid.CellBounds(cx, cy).Center());
}

TEST(GridIndexTest, InsertAndRetrieve) {
  GridIndex<int> grid(BoundingBox({0, 0}, {100, 100}), 10.0);
  grid.Insert(Point{15, 15}, 1);
  grid.Insert(Point{16, 14}, 2);
  grid.Insert(Point{85, 85}, 3);
  auto [cx, cy] = grid.CellOf(Point{15, 15});
  EXPECT_EQ(grid.Cell(cx, cy).size(), 2u);
}

TEST(GridIndexTest, NeighborhoodCoversRing) {
  GridIndex<int> grid(BoundingBox({0, 0}, {100, 100}), 10.0);
  // One value per cell center.
  int id = 0;
  for (size_t cy = 0; cy < grid.rows(); ++cy) {
    for (size_t cx = 0; cx < grid.cols(); ++cx) {
      grid.Insert(grid.CellCenter(cx, cy), id++);
    }
  }
  // Ring 1 around an interior cell covers 9 cells.
  EXPECT_EQ(grid.Neighborhood(Point{55, 55}, 1).size(), 9u);
  // Ring 2 covers 25.
  EXPECT_EQ(grid.Neighborhood(Point{55, 55}, 2).size(), 25u);
  // Corner cells clip the window.
  EXPECT_EQ(grid.Neighborhood(Point{5, 5}, 1).size(), 4u);
  // Ring 0 is the cell itself.
  EXPECT_EQ(grid.Neighborhood(Point{55, 55}, 0).size(), 1u);
}

TEST(GridIndexTest, InsertAtCellRetrievable) {
  GridIndex<int> grid(BoundingBox({0, 0}, {100, 100}), 10.0);
  grid.InsertAtCell(3, 7, 42);
  ASSERT_EQ(grid.Cell(3, 7).size(), 1u);
  EXPECT_EQ(grid.Cell(3, 7)[0], 42);
}

}  // namespace
}  // namespace semitri::index
