// Tests for common utilities: Status/Result, string helpers, RNG
// determinism.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace semitri::common {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("trajectory 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "trajectory 7");
  EXPECT_EQ(s.ToString(), "NotFound: trajectory 7");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    SEMITRI_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, SplitAndJoin) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Join({"a", "b", "c"}, "; "), "a; b; c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringsTest, CsvEscapeRoundTrip) {
  std::vector<std::string> fields = {"plain", "with,comma", "with\"quote",
                                     "multi\nline", ""};
  std::vector<std::string> escaped;
  for (const auto& f : fields) escaped.push_back(CsvEscape(f));
  std::string line = Join(escaped, ",");
  EXPECT_EQ(CsvParseLine(line), fields);
}

TEST(StringsTest, CsvParsePlainLine) {
  EXPECT_EQ(CsvParseLine("1,2,3"),
            (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(CsvParseLine("a,,b"), (std::vector<std::string>{"a", "", "b"}));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(11);
  std::vector<double> weights = {1.0, 0.0, 9.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 10000.0, 0.9, 0.03);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(99);
  Rng b = a.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace semitri::common
