// Admission control & backpressure tests for stream::SessionManager:
// global session / buffered-fix / byte budgets, the three overload
// policies (reject-new, shed-oldest-idle, block-with-deadline),
// per-object token buckets, heap-driven idle eviction, checkpoint /
// restore of the budget accounting, the Health() operator view, and a
// deterministic 10x-oversubscribed saturation run under a FakeClock.

#include "stream/session_manager.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "core/pipeline.h"
#include "datagen/presets.h"
#include "datagen/world.h"
#include "store/semantic_trajectory_store.h"

namespace semitri::stream {
namespace {

using common::FakeClock;
using common::StatusCode;

core::GpsPoint Fix(double t, double x = 100.0, double y = 100.0) {
  return core::GpsPoint{{x, y}, t};
}

class OverloadFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::WorldConfig wc;
    wc.seed = 57;
    wc.extent_meters = 4000.0;
    wc.num_pois = 400;
    world_ = std::make_unique<datagen::World>(
        datagen::WorldGenerator(wc).Generate());
    factory_ = std::make_unique<datagen::DatasetFactory>(world_.get(), 23);
    // Regions-only pipeline: full annotation behaviour without the cost
    // of map matching / HMM inference in overload-shaped loops.
    pipeline_ = std::make_unique<core::SemiTriPipeline>(
        &world_->regions, nullptr, nullptr);
  }

  std::vector<core::GpsPoint> PersonStream(int index, int days) {
    datagen::PersonSpec spec = factory_->MakePersonSpec(index);
    return factory_->SimulatePersonDays(index, spec, days).points;
  }

  SessionManagerConfig ConfigWith(AdmissionConfig admission) {
    SessionManagerConfig config;
    config.admission = admission;
    return config;
  }

  FakeClock clock_;
  std::unique_ptr<datagen::World> world_;
  std::unique_ptr<datagen::DatasetFactory> factory_;
  std::unique_ptr<core::SemiTriPipeline> pipeline_;
};

// ---------------------------------------------------------------------
// Budgets and the reject-new policy.
// ---------------------------------------------------------------------

TEST_F(OverloadFixture, RejectNewSessionWhenSessionBudgetFull) {
  AdmissionConfig admission;
  admission.max_sessions = 2;
  SessionManager manager(pipeline_.get(), ConfigWith(admission), &clock_);

  ASSERT_TRUE(manager.Feed(1, Fix(0.0)).ok());
  ASSERT_TRUE(manager.Feed(2, Fix(0.0)).ok());
  // Third object exceeds the session budget; fail fast.
  common::Result<AnnotationSession::FeedResult> rejected =
      manager.Feed(3, Fix(0.0));
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(manager.ActiveSessions(), 2u);
  EXPECT_EQ(manager.stats().admission_rejected_sessions, 1u);

  // Existing sessions keep feeding: the budget gates admissions, not
  // already-admitted work.
  EXPECT_TRUE(manager.Feed(1, Fix(1.0)).ok());
  EXPECT_TRUE(manager.Feed(2, Fix(1.0)).ok());
}

TEST_F(OverloadFixture, BufferedFixBudgetRejectsFixesToExistingSessions) {
  AdmissionConfig admission;
  admission.max_buffered_fixes = 5;
  SessionManager manager(pipeline_.get(), ConfigWith(admission), &clock_);

  for (int k = 0; k < 5; ++k) {
    ASSERT_TRUE(manager.Feed(7, Fix(k)).ok());
  }
  EXPECT_EQ(manager.stats().buffered_fixes, 5u);

  common::Result<AnnotationSession::FeedResult> rejected =
      manager.Feed(7, Fix(5.0));
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  // The optimistic claim was rolled back: usage is unchanged.
  EXPECT_EQ(manager.stats().buffered_fixes, 5u);
  EXPECT_EQ(manager.stats().overload_rejected_fixes, 1u);
  EXPECT_EQ(manager.stats().admission_rejected_sessions, 0u);
}

TEST_F(OverloadFixture, ByteBudgetChargesFixesPlusSessionOverhead) {
  AdmissionConfig admission;
  // Exactly 10 buffered fixes for one session fit; the 11th does not.
  admission.max_buffered_bytes =
      SessionManager::kSessionOverheadBytes + 10 * sizeof(core::GpsPoint);
  SessionManager manager(pipeline_.get(), ConfigWith(admission), &clock_);

  for (int k = 0; k < 10; ++k) {
    ASSERT_TRUE(manager.Feed(1, Fix(k)).ok()) << "fix " << k;
  }
  common::Result<AnnotationSession::FeedResult> rejected =
      manager.Feed(1, Fix(10.0));
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(manager.stats().buffered_fixes, 10u);
}

TEST_F(OverloadFixture, BudgetsReleasedOnFlushCloseAndEvict) {
  AdmissionConfig admission;
  admission.max_buffered_fixes = 5;
  SessionManager manager(pipeline_.get(), ConfigWith(admission), &clock_);

  for (int k = 0; k < 5; ++k) ASSERT_TRUE(manager.Feed(1, Fix(k)).ok());
  EXPECT_FALSE(manager.Feed(1, Fix(5.0)).ok());

  // Flush finalizes the open trajectory and releases its buffer charge.
  ASSERT_TRUE(manager.Flush(1).ok());
  EXPECT_EQ(manager.stats().buffered_fixes, 0u);
  for (int k = 0; k < 5; ++k) ASSERT_TRUE(manager.Feed(1, Fix(10.0 + k)).ok());

  // Close releases both the fixes and the session slot.
  ASSERT_TRUE(manager.Close(1).ok());
  EXPECT_EQ(manager.stats().buffered_fixes, 0u);
  EXPECT_EQ(manager.ActiveSessions(), 0u);

  for (int k = 0; k < 5; ++k) ASSERT_TRUE(manager.Feed(2, Fix(k)).ok());
  auto evicted = manager.EvictIdle(0.0);
  ASSERT_TRUE(evicted.ok());
  EXPECT_EQ(*evicted, 1u);
  EXPECT_EQ(manager.stats().buffered_fixes, 0u);
}

// ---------------------------------------------------------------------
// Shed-oldest-idle.
// ---------------------------------------------------------------------

TEST_F(OverloadFixture, ShedOldestIdleEvictsLeastRecentlyFedFirst) {
  AdmissionConfig admission;
  admission.max_sessions = 2;
  admission.overload_policy = OverloadPolicy::kShedOldestIdle;
  SessionManager manager(pipeline_.get(), ConfigWith(admission), &clock_);

  ASSERT_TRUE(manager.Feed(1, Fix(0.0)).ok());
  clock_.Advance(1.0);
  ASSERT_TRUE(manager.Feed(2, Fix(0.0)).ok());
  clock_.Advance(1.0);
  // Refresh object 1: object 2 is now the least recently fed.
  ASSERT_TRUE(manager.Feed(1, Fix(1.0)).ok());
  clock_.Advance(1.0);

  ASSERT_TRUE(manager.Feed(3, Fix(0.0)).ok());
  EXPECT_EQ(manager.ActiveSessions(), 2u);
  EXPECT_EQ(manager.stats().sessions_shed, 1u);
  // Object 2 (stale) was shed; 1 and 3 are live.
  EXPECT_EQ(manager.Close(2).code(), StatusCode::kNotFound);
  EXPECT_TRUE(manager.Flush(1).ok());
  EXPECT_TRUE(manager.Flush(3).ok());
}

TEST_F(OverloadFixture, ShedNeverTargetsTheObjectBeingAdmitted) {
  AdmissionConfig admission;
  admission.max_buffered_fixes = 3;
  admission.overload_policy = OverloadPolicy::kShedOldestIdle;
  SessionManager manager(pipeline_.get(), ConfigWith(admission), &clock_);

  // One object alone exceeds the budget: there is nothing to shed but
  // itself, which the policy refuses — the fix is rejected instead.
  for (int k = 0; k < 3; ++k) ASSERT_TRUE(manager.Feed(1, Fix(k)).ok());
  common::Result<AnnotationSession::FeedResult> rejected =
      manager.Feed(1, Fix(3.0));
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(manager.stats().sessions_shed, 0u);
  EXPECT_TRUE(manager.Flush(1).ok());  // still live
}

TEST_F(OverloadFixture, SheddingPreservesDurableRows) {
  // Shedding goes through the flushing Close path: the shed session's
  // rows must equal what the offline pipeline produces for the same
  // stream — nothing durable is lost to load shedding.
  std::vector<core::GpsPoint> stream = PersonStream(0, 1);

  store::SemanticTrajectoryStore offline_store;
  core::SemiTriPipeline offline(&world_->regions, nullptr, nullptr,
                                core::PipelineConfig{}, &offline_store);
  ASSERT_TRUE(offline.ProcessStream(4, stream, 4 * 1000).ok());

  store::SemanticTrajectoryStore live_store;
  core::SemiTriPipeline live(&world_->regions, nullptr, nullptr,
                             core::PipelineConfig{}, &live_store);
  AdmissionConfig admission;
  admission.max_sessions = 1;
  admission.overload_policy = OverloadPolicy::kShedOldestIdle;
  SessionManager manager(&live, ConfigWith(admission), &clock_);

  for (const core::GpsPoint& fix : stream) {
    ASSERT_TRUE(manager.Feed(4, fix).ok());
  }
  clock_.Advance(1.0);
  // Admitting object 5 sheds object 4 through Close.
  ASSERT_TRUE(manager.Feed(5, Fix(0.0)).ok());
  EXPECT_EQ(manager.stats().sessions_shed, 1u);
  EXPECT_EQ(manager.Close(4).code(), StatusCode::kNotFound);

  // Object 5 has written nothing yet (one fix, no closed episodes), so
  // the live store holds exactly object 4's offline end state.
  EXPECT_TRUE(live_store.ContentEquals(offline_store));
}

// ---------------------------------------------------------------------
// Block-with-deadline.
// ---------------------------------------------------------------------

TEST_F(OverloadFixture, BlockWithDeadlineTimesOutDeterministically) {
  AdmissionConfig admission;
  admission.max_sessions = 1;
  admission.overload_policy = OverloadPolicy::kBlockWithDeadline;
  admission.block_deadline_seconds = 0.5;
  admission.block_poll_seconds = 0.01;
  SessionManager manager(pipeline_.get(), ConfigWith(admission), &clock_);

  ASSERT_TRUE(manager.Feed(1, Fix(0.0)).ok());
  const int64_t before = clock_.NowNanos();
  // No other thread frees capacity: the poll loop (paced by the fake
  // clock, so it consumes no wall time) must give up at the deadline.
  common::Result<AnnotationSession::FeedResult> timed_out =
      manager.Feed(2, Fix(0.0));
  EXPECT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);
  const double waited =
      static_cast<double>(clock_.NowNanos() - before) * 1e-9;
  EXPECT_GE(waited, 0.5);
  EXPECT_LT(waited, 0.6);

  SessionManager::Stats stats = manager.stats();
  EXPECT_EQ(stats.admission_deferred, 1u);
  EXPECT_EQ(stats.admission_timeouts, 1u);
  EXPECT_EQ(stats.admission_rejected_sessions, 1u);
  EXPECT_EQ(manager.ActiveSessions(), 1u);
}

// ---------------------------------------------------------------------
// Per-object token buckets.
// ---------------------------------------------------------------------

TEST_F(OverloadFixture, TokenBucketRateLimitsPerObject) {
  AdmissionConfig admission;
  admission.fix_rate_per_second = 1.0;
  admission.fix_burst = 2.0;
  SessionManager manager(pipeline_.get(), ConfigWith(admission), &clock_);

  // Burst of 2 is admitted back to back; the 3rd fix finds the bucket
  // empty.
  ASSERT_TRUE(manager.Feed(1, Fix(0.0)).ok());
  ASSERT_TRUE(manager.Feed(1, Fix(1.0)).ok());
  common::Result<AnnotationSession::FeedResult> limited =
      manager.Feed(1, Fix(2.0));
  EXPECT_FALSE(limited.ok());
  EXPECT_EQ(limited.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(manager.stats().rate_limited_fixes, 1u);

  // Buckets are per object: another feeder is unaffected.
  ASSERT_TRUE(manager.Feed(2, Fix(0.0)).ok());

  // One second refills one token.
  clock_.Advance(1.0);
  EXPECT_TRUE(manager.Feed(1, Fix(2.0)).ok());
  EXPECT_FALSE(manager.Feed(1, Fix(3.0)).ok());
  EXPECT_EQ(manager.stats().rate_limited_fixes, 2u);
}

// ---------------------------------------------------------------------
// Heap-driven idle eviction.
// ---------------------------------------------------------------------

TEST_F(OverloadFixture, EvictIdleUsesAuthoritativeActivityNotStaleHeapTicks) {
  SessionManager manager(pipeline_.get(), SessionManagerConfig{}, &clock_);

  ASSERT_TRUE(manager.Feed(1, Fix(0.0)).ok());  // heap entry at t=0
  clock_.Advance(10.0);
  ASSERT_TRUE(manager.Feed(2, Fix(0.0)).ok());  // t=10
  clock_.Advance(10.0);
  // Refresh object 1 at t=20: its t=0 heap entry is now stale.
  ASSERT_TRUE(manager.Feed(1, Fix(1.0)).ok());

  // cutoff = now - 5 = t=15: object 2 (t=10) is idle, object 1 (t=20)
  // is not — even though object 1's *stale* heap tick (t=0) is oldest.
  auto evicted = manager.EvictIdle(5.0);
  ASSERT_TRUE(evicted.ok());
  EXPECT_EQ(*evicted, 1u);
  EXPECT_EQ(manager.ActiveSessions(), 1u);
  EXPECT_TRUE(manager.Flush(1).ok());
  EXPECT_EQ(manager.Flush(2).code(), StatusCode::kNotFound);

  // Nothing else is idle past the threshold.
  auto again = manager.EvictIdle(5.0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

// ---------------------------------------------------------------------
// Checkpoint / restore rebuilds the budget accounting.
// ---------------------------------------------------------------------

TEST_F(OverloadFixture, RestoreRebuildsBudgetAccountingAndActivity) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "semitri_overload_ckpt.bin").string();

  AdmissionConfig admission;
  admission.max_buffered_fixes = 20;
  SessionManagerConfig config = ConfigWith(admission);

  SessionManager manager(pipeline_.get(), config, &clock_);
  for (int k = 0; k < 10; ++k) ASSERT_TRUE(manager.Feed(1, Fix(k)).ok());
  for (int k = 0; k < 5; ++k) ASSERT_TRUE(manager.Feed(2, Fix(k)).ok());
  ASSERT_EQ(manager.stats().buffered_fixes, 15u);
  ASSERT_TRUE(manager.Checkpoint(path).ok());

  SessionManager restored(pipeline_.get(), config, &clock_);
  ASSERT_TRUE(restored.Restore(path).ok());
  EXPECT_EQ(restored.ActiveSessions(), 2u);
  // The budget charge was rebuilt from the restored sessions' buffers.
  EXPECT_EQ(restored.stats().buffered_fixes, 15u);

  // Enforcement picks up where the original left off: 5 more fixes fill
  // the budget, the 21st is rejected.
  for (int k = 0; k < 5; ++k) {
    ASSERT_TRUE(restored.Feed(1, Fix(10.0 + k)).ok()) << "fix " << k;
  }
  common::Result<AnnotationSession::FeedResult> rejected =
      restored.Feed(1, Fix(20.0));
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  // The activity heap was rebuilt too: idle eviction still works.
  auto evicted = restored.EvictIdle(0.0);
  ASSERT_TRUE(evicted.ok());
  EXPECT_EQ(*evicted, 2u);
  EXPECT_EQ(restored.stats().buffered_fixes, 0u);
  fs::remove(path);
}

// ---------------------------------------------------------------------
// Health snapshot.
// ---------------------------------------------------------------------

TEST_F(OverloadFixture, HealthReportsBudgetGaugesAndOverloadCounters) {
  AdmissionConfig admission;
  admission.max_sessions = 4;
  admission.max_buffered_fixes = 100;
  SessionManager manager(pipeline_.get(), ConfigWith(admission), &clock_);

  ASSERT_TRUE(manager.Feed(1, Fix(0.0)).ok());
  ASSERT_TRUE(manager.Feed(2, Fix(0.0)).ok());

  core::HealthSnapshot health = manager.Health();
  // Per-stage rows come from the pipeline's graph.
  EXPECT_EQ(health.stages.size(), pipeline_->graph().size());
  EXPECT_EQ(health.sessions.used, 2u);
  EXPECT_EQ(health.sessions.limit, 4u);
  EXPECT_EQ(health.buffered_fixes.used, 2u);
  EXPECT_EQ(health.buffered_fixes.limit, 100u);
  EXPECT_EQ(health.buffered_bytes.used,
            2 * sizeof(core::GpsPoint) +
                2 * SessionManager::kSessionOverheadBytes);
  EXPECT_FALSE(health.degraded());  // 50% of the session budget

  ASSERT_TRUE(manager.Feed(3, Fix(0.0)).ok());
  ASSERT_TRUE(manager.Feed(4, Fix(0.0)).ok());
  core::HealthSnapshot full = manager.Health();
  EXPECT_DOUBLE_EQ(full.sessions.utilization(), 1.0);
  EXPECT_TRUE(full.degraded());  // >= 90% utilized
  EXPECT_FALSE(full.ToString().empty());

  // A bare pipeline snapshot carries stages but no budgets.
  core::HealthSnapshot bare = pipeline_->Health();
  EXPECT_EQ(bare.stages.size(), pipeline_->graph().size());
  EXPECT_EQ(bare.sessions.limit, 0u);
  EXPECT_FALSE(bare.degraded());
}

// ---------------------------------------------------------------------
// Saturation: a 10x-oversubscribed synthetic feed stays within budget,
// sheds deterministically, and keeps accepting work.
// ---------------------------------------------------------------------

TEST_F(OverloadFixture, TenfoldOversubscriptionStaysWithinBudgetsAndSheds) {
  constexpr int kObjects = 10;       // 10 feeders...
  constexpr size_t kMaxSessions = 1; // ...per session slot
  constexpr size_t kMaxFixes = 400;
  constexpr size_t kChunk = 50;

  std::vector<std::vector<core::GpsPoint>> streams;
  for (int i = 0; i < kObjects; ++i) streams.push_back(PersonStream(i, 1));

  auto run_once = [&](SessionManager::Stats* out) {
    FakeClock clock;
    AdmissionConfig admission;
    admission.max_sessions = kMaxSessions;
    admission.max_buffered_fixes = kMaxFixes;
    admission.overload_policy = OverloadPolicy::kShedOldestIdle;
    SessionManager manager(pipeline_.get(), ConfigWith(admission), &clock);

    size_t longest = 0;
    for (const auto& s : streams) longest = std::max(longest, s.size());
    for (size_t base = 0; base < longest; base += kChunk) {
      for (int i = 0; i < kObjects; ++i) {
        for (size_t k = base; k < std::min(base + kChunk, streams[i].size());
             ++k) {
          common::Result<AnnotationSession::FeedResult> fed =
              manager.Feed(i, streams[i][k]);
          // Shed-oldest-idle admits every fix here: there is always an
          // idle session to shed (9 idle feeders per slot).
          ASSERT_TRUE(fed.ok()) << fed.status().ToString();
        }
        clock.Advance(0.1);
        // Budget invariants hold at every admission boundary.
        SessionManager::Stats stats = manager.stats();
        ASSERT_LE(manager.ActiveSessions(), kMaxSessions);
        ASSERT_LE(stats.buffered_fixes, kMaxFixes);
      }
    }
    ASSERT_TRUE(manager.CloseAll().ok());
    *out = manager.stats();
  };

  SessionManager::Stats first;
  run_once(&first);
  // 10 feeders sharing one slot: shedding must have happened, and every
  // fed fix was accepted (shed-oldest-idle back-pressures by evicting,
  // not by dropping inbound work).
  EXPECT_GT(first.sessions_shed, 0u);
  size_t total_points = 0;
  for (const auto& s : streams) total_points += s.size();
  EXPECT_EQ(first.points_fed, total_points);
  EXPECT_EQ(first.buffered_fixes, 0u);  // everything drained by CloseAll
  EXPECT_EQ(first.overload_rejected_fixes, 0u);
  EXPECT_EQ(first.admission_rejected_sessions, 0u);

  // The whole overload schedule is deterministic under the fake clock:
  // a second identical run reproduces every counter exactly.
  SessionManager::Stats second;
  run_once(&second);
  EXPECT_EQ(second.sessions_shed, first.sessions_shed);
  EXPECT_EQ(second.sessions_opened, first.sessions_opened);
  EXPECT_EQ(second.sessions_evicted, first.sessions_evicted);
  EXPECT_EQ(second.points_fed, first.points_fed);
  EXPECT_EQ(second.episodes_closed, first.episodes_closed);
  EXPECT_EQ(second.trajectories_closed, first.trajectories_closed);
  EXPECT_EQ(second.trajectories_discarded, first.trajectories_discarded);
}

}  // namespace
}  // namespace semitri::stream
