// Streaming annotation subsystem tests: the headline contract is that
// feeding a stream fix by fix and closing reproduces the offline
// Trajectory Computation Layer bit for bit — same splits, same cleaned
// traces, same episode tables — and that live sessions leave the
// semantic trajectory store in exactly the offline end state.

#include "stream/session_manager.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/ingest.h"
#include "datagen/presets.h"
#include "datagen/world.h"
#include "stream/annotation_session.h"
#include "stream/episode_detector.h"
#include "traj/identification.h"
#include "traj/preprocess.h"
#include "traj/segmentation.h"

namespace semitri::stream {
namespace {

// The offline Trajectory Computation Layer, verbatim: identify ->
// clean -> segment. This is the reference the detector must reproduce.
struct OfflineReference {
  std::vector<core::RawTrajectory> cleaned;
  std::vector<std::vector<core::Episode>> episodes;
};

OfflineReference OfflineCompute(core::ObjectId object_id,
                                const std::vector<core::GpsPoint>& stream,
                                const EpisodeDetectorConfig& config,
                                core::TrajectoryId first_id = 0) {
  traj::TrajectoryIdentifier identifier(config.identification);
  traj::Preprocessor preprocessor(config.preprocess);
  traj::StopMoveSegmenter segmenter(config.segmentation);
  OfflineReference ref;
  for (const core::RawTrajectory& raw :
       identifier.Identify(object_id, stream, first_id)) {
    core::RawTrajectory cleaned = preprocessor.Clean(raw);
    ref.episodes.push_back(segmenter.Segment(cleaned));
    ref.cleaned.push_back(std::move(cleaned));
  }
  return ref;
}

struct DrainResult {
  std::vector<ClosedTrajectory> closed;
  // Per closed trajectory: episodes delivered incrementally (via
  // closed_episodes events) before the trajectory itself closed.
  std::vector<size_t> early_episodes;
};

DrainResult Drain(EpisodeDetector* detector,
                  const std::vector<core::GpsPoint>& stream) {
  DrainResult out;
  size_t early = 0;
  DetectorEvents events;
  auto collect = [&](const DetectorEvents& ev) {
    if (ev.closed_trajectory.has_value()) {
      out.closed.push_back(*ev.closed_trajectory);
      out.early_episodes.push_back(early);
      early = 0;
    }
    early += ev.closed_episodes.size();
  };
  for (const core::GpsPoint& fix : stream) {
    detector->Feed(fix, &events);
    collect(events);
  }
  detector->Close(&events);
  collect(events);
  return out;
}

// Full bit-for-bit equivalence of a drained stream vs. the offline
// pipeline, for one detector configuration.
void ExpectDetectorMatchesOffline(core::ObjectId object_id,
                                  const std::vector<core::GpsPoint>& stream,
                                  const EpisodeDetectorConfig& config) {
  OfflineReference ref = OfflineCompute(object_id, stream, config);
  EpisodeDetector detector(object_id, config);
  DrainResult drained = Drain(&detector, stream);
  ASSERT_EQ(drained.closed.size(), ref.cleaned.size());
  for (size_t t = 0; t < ref.cleaned.size(); ++t) {
    EXPECT_EQ(drained.closed[t].cleaned, ref.cleaned[t])
        << "cleaned trace mismatch, trajectory " << t;
    EXPECT_EQ(drained.closed[t].episodes, ref.episodes[t])
        << "episode table mismatch, trajectory " << t;
  }
  EXPECT_EQ(detector.stats().trajectories_closed, ref.cleaned.size());
}

class StreamFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::WorldConfig wc;
    wc.seed = 33;
    wc.extent_meters = 4000.0;
    wc.num_pois = 800;
    world_ = std::make_unique<datagen::World>(
        datagen::WorldGenerator(wc).Generate());
    factory_ = std::make_unique<datagen::DatasetFactory>(world_.get(), 35);
  }

  std::vector<core::GpsPoint> PersonStream(int index, int days) {
    datagen::PersonSpec spec = factory_->MakePersonSpec(index);
    return factory_->SimulatePersonDays(index, spec, days).points;
  }

  std::unique_ptr<datagen::World> world_;
  std::unique_ptr<datagen::DatasetFactory> factory_;
};

TEST_F(StreamFixture, DetectorMatchesOfflineVelocityPolicy) {
  EpisodeDetectorConfig config;
  ExpectDetectorMatchesOffline(0, PersonStream(0, 3), config);
}

TEST_F(StreamFixture, DetectorMatchesOfflineWithBeginEndMarkers) {
  EpisodeDetectorConfig config;
  config.segmentation.emit_begin_end = true;
  ExpectDetectorMatchesOffline(0, PersonStream(0, 2), config);
}

TEST_F(StreamFixture, DetectorMatchesOfflineDensityPolicy) {
  EpisodeDetectorConfig config;
  config.segmentation.policy = traj::StopPolicy::kDensity;
  ExpectDetectorMatchesOffline(1, PersonStream(1, 3), config);
}

TEST_F(StreamFixture, DetectorMatchesOfflineWithoutSmoothing) {
  EpisodeDetectorConfig config;
  config.preprocess.smoothing_bandwidth_seconds = 0.0;
  config.segmentation.speed_smoothing_half_window = 0;
  ExpectDetectorMatchesOffline(2, PersonStream(2, 2), config);
}

TEST_F(StreamFixture, DetectorMatchesOfflineOnEveryPreset) {
  struct Case {
    std::string name;
    datagen::Dataset dataset;
  };
  std::vector<Case> cases;
  cases.push_back({"taxis", factory_->LausanneTaxis(1, 2)});
  cases.push_back({"cars", factory_->MilanPrivateCars(3, 2)});
  cases.push_back({"drive", factory_->SeattleDrive(0.5)});
  cases.push_back({"people", factory_->NokiaPeople(2, 3)});
  for (const Case& c : cases) {
    for (const datagen::SimulatedTrack& track : c.dataset.tracks) {
      SCOPED_TRACE(c.name + " object " + std::to_string(track.object_id));
      EpisodeDetectorConfig config;
      ExpectDetectorMatchesOffline(track.object_id, track.points, config);
    }
  }
}

TEST_F(StreamFixture, DetectorClosesEpisodesBeforeTrajectoryEnd) {
  std::vector<core::GpsPoint> stream = PersonStream(0, 3);
  EpisodeDetector detector(0, EpisodeDetectorConfig{});
  DrainResult drained = Drain(&detector, stream);
  ASSERT_FALSE(drained.closed.empty());
  // A multi-stop day must close episodes incrementally — well before
  // the trajectory's own close — and everything delivered early must be
  // an exact prefix of the final episode table.
  size_t total_early = 0;
  for (size_t t = 0; t < drained.closed.size(); ++t) {
    size_t early = drained.early_episodes[t];
    total_early += early;
    ASSERT_LE(early, drained.closed[t].episodes.size());
  }
  EXPECT_GT(total_early, 0u);
}

TEST_F(StreamFixture, IncrementalEpisodesArePrefixOfFinalTable) {
  std::vector<core::GpsPoint> stream = PersonStream(1, 2);
  EpisodeDetector detector(1, EpisodeDetectorConfig{});
  DetectorEvents events;
  std::vector<core::Episode> early;
  auto check = [&](const DetectorEvents& ev) {
    if (ev.closed_trajectory.has_value()) {
      const std::vector<core::Episode>& final_table =
          ev.closed_trajectory->episodes;
      ASSERT_LE(early.size(), final_table.size());
      for (size_t i = 0; i < early.size(); ++i) {
        EXPECT_EQ(early[i], final_table[i]) << "early episode " << i;
      }
      early.clear();
    }
    early.insert(early.end(), ev.closed_episodes.begin(),
                 ev.closed_episodes.end());
  };
  for (const core::GpsPoint& fix : stream) {
    detector.Feed(fix, &events);
    check(events);
  }
  detector.Close(&events);
  check(events);
}

TEST(EpisodeDetectorTest, RejectsOutOfOrderAndNonFiniteFixes) {
  EpisodeDetector detector(7, EpisodeDetectorConfig{});
  DetectorEvents events;
  detector.Feed({{0.0, 0.0}, 100.0}, &events);
  EXPECT_TRUE(events.accepted);
  detector.Feed({{1.0, 0.0}, 50.0}, &events);  // time went backwards
  EXPECT_FALSE(events.accepted);
  double nan = std::nan("");
  detector.Feed({{nan, 0.0}, 200.0}, &events);
  EXPECT_FALSE(events.accepted);
  detector.Feed({{2.0, 0.0}, 200.0}, &events);
  EXPECT_TRUE(events.accepted);
  EXPECT_EQ(detector.stats().points_fed, 4u);
  EXPECT_EQ(detector.stats().points_rejected, 2u);
}

TEST(EpisodeDetectorTest, DiscardsNoiseTrajectoriesWithoutConsumingIds) {
  EpisodeDetectorConfig config;
  DetectorEvents events;
  EpisodeDetector detector(7, config, /*first_id=*/42);
  // 3 points then a gap: below min_points, so discarded as noise.
  for (int i = 0; i < 3; ++i) {
    detector.Feed({{static_cast<double>(i), 0.0}, 10.0 * i}, &events);
  }
  detector.Feed({{0.0, 0.0}, 10000.0}, &events);
  EXPECT_TRUE(events.discarded_trajectory);
  EXPECT_FALSE(events.closed_trajectory.has_value());
  EXPECT_EQ(detector.stats().trajectories_discarded, 1u);
  EXPECT_EQ(detector.next_trajectory_id(), 42);
}

TEST(EpisodeDetectorTest, ForcedSplitBoundsBufferedPoints) {
  EpisodeDetectorConfig config;
  config.max_buffered_points = 50;
  config.identification.min_points = 10;
  config.identification.min_duration_seconds = 10.0;
  EpisodeDetector detector(3, config);
  DetectorEvents events;
  size_t closed = 0;
  for (int i = 0; i < 200; ++i) {
    detector.Feed({{i * 5.0, 0.0}, i * 10.0}, &events);
    if (events.closed_trajectory.has_value()) {
      ++closed;
      EXPECT_LE(events.closed_trajectory->cleaned.size(), 50u);
    }
  }
  EXPECT_GE(detector.stats().forced_splits, 3u);
  EXPECT_EQ(closed, detector.stats().trajectories_closed);
  EXPECT_GE(closed, 3u);
}

void ExpectResultsEqual(const core::PipelineResult& streaming,
                        const core::PipelineResult& offline) {
  EXPECT_EQ(streaming.cleaned, offline.cleaned);
  EXPECT_EQ(streaming.episodes, offline.episodes);
  EXPECT_EQ(streaming.region_layer, offline.region_layer);
  EXPECT_EQ(streaming.line_layer, offline.line_layer);
  EXPECT_EQ(streaming.point_layer, offline.point_layer);
}

TEST_F(StreamFixture, AnnotationSessionMatchesOfflinePipeline) {
  std::vector<core::GpsPoint> stream = PersonStream(0, 3);

  store::SemanticTrajectoryStore offline_store;
  core::SemiTriPipeline offline(&world_->regions, &world_->roads,
                                &world_->pois, core::PipelineConfig{},
                                &offline_store);
  auto offline_results = offline.ProcessStream(0, stream);
  ASSERT_TRUE(offline_results.ok());
  ASSERT_FALSE(offline_results->empty());

  store::SemanticTrajectoryStore live_store;
  core::SemiTriPipeline live(&world_->regions, &world_->roads, &world_->pois,
                             core::PipelineConfig{}, &live_store);
  SessionConfig sc;
  sc.keep_results = true;
  AnnotationSession session(&live, 0, sc);
  for (const core::GpsPoint& fix : stream) {
    auto fed = session.Feed(fix);
    ASSERT_TRUE(fed.ok()) << fed.status().ToString();
  }
  ASSERT_TRUE(session.Flush().ok());

  ASSERT_EQ(session.results().size(), offline_results->size());
  for (size_t t = 0; t < offline_results->size(); ++t) {
    SCOPED_TRACE("trajectory " + std::to_string(t));
    ExpectResultsEqual(session.results()[t], (*offline_results)[t]);
  }
  // Provisional mid-stream writes are all keyed overwrites, so the
  // final store states are identical.
  EXPECT_TRUE(live_store.ContentEquals(offline_store));
  EXPECT_GT(session.stats().annotation_passes, 0u);
}

TEST_F(StreamFixture, SessionWithoutPerEpisodeAnnotationSameEndState) {
  std::vector<core::GpsPoint> stream = PersonStream(1, 2);

  store::SemanticTrajectoryStore eager_store;
  core::SemiTriPipeline eager(&world_->regions, &world_->roads,
                              &world_->pois, core::PipelineConfig{},
                              &eager_store);
  AnnotationSession eager_session(&eager, 1, SessionConfig{});
  for (const core::GpsPoint& fix : stream) {
    ASSERT_TRUE(eager_session.Feed(fix).ok());
  }
  ASSERT_TRUE(eager_session.Flush().ok());

  store::SemanticTrajectoryStore lazy_store;
  core::SemiTriPipeline lazy(&world_->regions, &world_->roads, &world_->pois,
                             core::PipelineConfig{}, &lazy_store);
  SessionConfig lazy_config;
  lazy_config.annotate_on_episode = false;
  AnnotationSession lazy_session(&lazy, 1, lazy_config);
  for (const core::GpsPoint& fix : stream) {
    ASSERT_TRUE(lazy_session.Feed(fix).ok());
  }
  ASSERT_TRUE(lazy_session.Flush().ok());

  EXPECT_TRUE(lazy_store.ContentEquals(eager_store));
  EXPECT_EQ(lazy_session.stats().annotation_passes, 0u);
}

TEST_F(StreamFixture, SessionManagerMatchesOfflinePerObjectRuns) {
  constexpr int kObjects = 3;
  std::vector<std::vector<core::GpsPoint>> streams;
  for (int i = 0; i < kObjects; ++i) streams.push_back(PersonStream(i, 2));

  // Offline reference: one ProcessStream per object with the
  // BatchProcessor id-block convention.
  store::SemanticTrajectoryStore offline_store;
  core::SemiTriPipeline offline(&world_->regions, &world_->roads,
                                &world_->pois, core::PipelineConfig{},
                                &offline_store);
  for (int i = 0; i < kObjects; ++i) {
    auto results = offline.ProcessStream(i, streams[i], i * 1000);
    ASSERT_TRUE(results.ok());
  }

  // Streaming: interleave the objects' fixes round-robin through one
  // manager.
  store::SemanticTrajectoryStore live_store;
  core::SemiTriPipeline live(&world_->regions, &world_->roads, &world_->pois,
                             core::PipelineConfig{}, &live_store);
  SessionManager manager(&live, SessionManagerConfig{});
  size_t longest = 0;
  for (const auto& s : streams) longest = std::max(longest, s.size());
  for (size_t k = 0; k < longest; ++k) {
    for (int i = 0; i < kObjects; ++i) {
      if (k >= streams[i].size()) continue;
      auto fed = manager.Feed(i, streams[i][k]);
      ASSERT_TRUE(fed.ok()) << fed.status().ToString();
    }
  }
  EXPECT_EQ(manager.ActiveSessions(), static_cast<size_t>(kObjects));
  ASSERT_TRUE(manager.CloseAll().ok());
  EXPECT_EQ(manager.ActiveSessions(), 0u);

  EXPECT_TRUE(live_store.ContentEquals(offline_store));

  SessionManager::Stats stats = manager.stats();
  EXPECT_EQ(stats.sessions_opened, static_cast<size_t>(kObjects));
  EXPECT_EQ(stats.sessions_evicted, static_cast<size_t>(kObjects));
  size_t total_points = 0;
  for (const auto& s : streams) total_points += s.size();
  EXPECT_EQ(stats.points_fed, total_points);
  EXPECT_EQ(stats.trajectories_closed, offline_store.num_trajectories());
}

TEST_F(StreamFixture, SessionManagerFlushEvictAndNotFound) {
  core::SemiTriPipeline pipeline(&world_->regions, nullptr, nullptr);
  SessionManager manager(&pipeline, SessionManagerConfig{});

  EXPECT_EQ(manager.Flush(9).code(), common::StatusCode::kNotFound);
  EXPECT_EQ(manager.Close(9).code(), common::StatusCode::kNotFound);

  std::vector<core::GpsPoint> stream = PersonStream(0, 1);
  for (size_t k = 0; k < stream.size() / 2; ++k) {
    ASSERT_TRUE(manager.Feed(4, stream[k]).ok());
    ASSERT_TRUE(manager.Feed(5, stream[k]).ok());
  }
  EXPECT_EQ(manager.ActiveSessions(), 2u);
  // Flush finalizes the open trajectory but keeps the session live.
  ASSERT_TRUE(manager.Flush(4).ok());
  EXPECT_EQ(manager.ActiveSessions(), 2u);

  // Everything has been idle for >= 0 s, so a zero threshold evicts all.
  auto evicted = manager.EvictIdle(0.0);
  ASSERT_TRUE(evicted.ok());
  EXPECT_EQ(*evicted, 2u);
  EXPECT_EQ(manager.ActiveSessions(), 0u);
  // Counters survive eviction.
  EXPECT_EQ(manager.stats().points_fed, 2 * (stream.size() / 2));
  EXPECT_EQ(manager.stats().sessions_evicted, 2u);
}

TEST(GpsIngestorTest, IncrementalProjectionMatchesBatch) {
  std::vector<core::LatLonFix> fixes;
  for (int i = 0; i < 20; ++i) {
    fixes.push_back({{46.52 + i * 1e-4, 6.63 + i * 1e-4}, 10.0 * i});
  }
  fixes.push_back({{91.0, 0.0}, 210.0});                // out of range
  fixes.push_back({{std::nan(""), 6.63}, 220.0});       // non-finite
  fixes.push_back({{46.53, 6.64}, 230.0});

  auto ingestor = core::GpsIngestor::AroundCentroid(fixes);
  ASSERT_TRUE(ingestor.ok());
  std::vector<core::GpsPoint> batch = ingestor->ToLocal(fixes);
  std::vector<core::GpsPoint> incremental;
  for (const core::LatLonFix& fix : fixes) {
    if (auto p = ingestor->ToLocalFix(fix)) incremental.push_back(*p);
  }
  EXPECT_EQ(incremental, batch);
  ASSERT_EQ(batch.size(), fixes.size() - 2);  // the two invalid fixes drop
}

TEST(GpsIngestorTest, AroundFixAnchorsSessionAtFirstFix) {
  core::LatLonFix first{{46.52, 6.63}, 0.0};
  auto ingestor = core::GpsIngestor::AroundFix(first);
  ASSERT_TRUE(ingestor.ok());
  auto p = ingestor->ToLocalFix(first);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->position.x, 0.0, 1e-6);
  EXPECT_NEAR(p->position.y, 0.0, 1e-6);

  core::LatLonFix bad{{200.0, 0.0}, 0.0};
  EXPECT_FALSE(core::GpsIngestor::AroundFix(bad).ok());
  EXPECT_FALSE(ingestor->ToLocalFix(bad).has_value());
}

}  // namespace
}  // namespace semitri::stream
