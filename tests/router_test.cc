// Tests for Dijkstra routing with per-mode segment filters.

#include "road/router.h"

#include <gtest/gtest.h>

namespace semitri::road {
namespace {

// A 3x3 grid of nodes with 100 m spacing; all residential except one
// rail line across the middle row.
//
//   6 - 7 - 8
//   |   |   |
//   3 = 4 = 5   (= rail)
//   |   |   |
//   0 - 1 - 2
struct GridWorld {
  RoadNetwork net;
  GridWorld() {
    for (int y = 0; y < 3; ++y) {
      for (int x = 0; x < 3; ++x) {
        net.AddNode({x * 100.0, y * 100.0});
      }
    }
    auto add = [&](int a, int b, RoadType t) {
      net.AddSegment(a, b, t);
    };
    // Horizontal.
    add(0, 1, RoadType::kResidential);
    add(1, 2, RoadType::kResidential);
    add(3, 4, RoadType::kRailMetro);
    add(4, 5, RoadType::kRailMetro);
    add(6, 7, RoadType::kResidential);
    add(7, 8, RoadType::kResidential);
    // Vertical.
    add(0, 3, RoadType::kResidential);
    add(3, 6, RoadType::kResidential);
    add(1, 4, RoadType::kResidential);
    add(4, 7, RoadType::kResidential);
    add(2, 5, RoadType::kResidential);
    add(5, 8, RoadType::kResidential);
  }
};

TEST(RouterTest, ShortestPathUnfiltered) {
  GridWorld world;
  Router router(&world.net);
  auto path = router.ShortestPath(0, 8);
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(path->length_meters, 400.0);
  EXPECT_EQ(path->nodes.front(), 0);
  EXPECT_EQ(path->nodes.back(), 8);
  EXPECT_EQ(path->segments.size(), path->nodes.size() - 1);
}

TEST(RouterTest, WalkFilterAvoidsRail) {
  GridWorld world;
  Router router(&world.net);
  // 3 -> 5 directly along rail is 200 m; walking must detour (400 m).
  auto direct = router.ShortestPath(3, 5);
  ASSERT_TRUE(direct.ok());
  EXPECT_DOUBLE_EQ(direct->length_meters, 200.0);
  auto walk = router.ShortestPath(3, 5, WalkFilter());
  ASSERT_TRUE(walk.ok());
  EXPECT_DOUBLE_EQ(walk->length_meters, 400.0);
  for (core::PlaceId seg : walk->segments) {
    EXPECT_NE(world.net.segment(seg).type, RoadType::kRailMetro);
  }
}

TEST(RouterTest, MetroFilterUsesOnlyRail) {
  GridWorld world;
  Router router(&world.net);
  auto ride = router.ShortestPath(3, 5, MetroFilter());
  ASSERT_TRUE(ride.ok());
  EXPECT_EQ(ride->segments.size(), 2u);
  // Off-rail node unreachable by metro.
  auto bad = router.ShortestPath(3, 0, MetroFilter());
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), common::StatusCode::kNotFound);
}

TEST(RouterTest, SameOriginDestination) {
  GridWorld world;
  Router router(&world.net);
  auto path = router.ShortestPath(4, 4);
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(path->length_meters, 0.0);
  EXPECT_EQ(path->nodes.size(), 1u);
  EXPECT_TRUE(path->segments.empty());
}

TEST(RouterTest, InvalidNodeIds) {
  GridWorld world;
  Router router(&world.net);
  EXPECT_FALSE(router.ShortestPath(-1, 2).ok());
  EXPECT_FALSE(router.ShortestPath(0, 99).ok());
}

TEST(RouterTest, NearestNodeWithFilter) {
  GridWorld world;
  Router router(&world.net);
  // Nearest any-node to (90, 10) is node 1 at (100, 0).
  EXPECT_EQ(router.NearestNode({90, 10}), 1);
  // Nearest *rail* node to (90, 10) is node 4 at (100, 100).
  EXPECT_EQ(router.NearestNode({90, 10}, MetroFilter()), 4);
}

TEST(RouterTest, NearestNodeEmptyNetwork) {
  RoadNetwork empty;
  Router router(&empty);
  EXPECT_EQ(router.NearestNode({0, 0}), -1);
}

TEST(RouterTest, PathSegmentsConnectNodes) {
  GridWorld world;
  Router router(&world.net);
  auto path = router.ShortestPath(0, 8, WalkFilter());
  ASSERT_TRUE(path.ok());
  for (size_t i = 0; i + 1 < path->nodes.size(); ++i) {
    const RoadSegment& seg = world.net.segment(path->segments[i]);
    bool connects = (seg.from == path->nodes[i] && seg.to == path->nodes[i + 1]) ||
                    (seg.to == path->nodes[i] && seg.from == path->nodes[i + 1]);
    EXPECT_TRUE(connects) << "segment " << i;
  }
}

}  // namespace
}  // namespace semitri::road
