// Tests for GPS cleansing: duplicate removal, speed-gate outlier
// rejection, Gaussian smoothing.

#include "traj/preprocess.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace semitri::traj {
namespace {

core::RawTrajectory MakeTrajectory(
    std::vector<std::pair<geo::Point, double>> samples) {
  core::RawTrajectory t;
  t.id = 1;
  for (auto& [p, time] : samples) t.points.push_back({p, time});
  return t;
}

TEST(PreprocessTest, RemovesDuplicateTimestamps) {
  Preprocessor pre;
  auto t = MakeTrajectory({{{0, 0}, 0}, {{1, 0}, 1}, {{2, 0}, 1}, {{3, 0}, 2}});
  auto out = pre.RemoveDuplicates(t.points);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[1].position.x, 1.0);
  EXPECT_DOUBLE_EQ(out[2].time, 2.0);
}

TEST(PreprocessTest, SpeedGateDropsJumps) {
  PreprocessConfig config;
  config.max_speed_mps = 50.0;
  Preprocessor pre(config);
  // A 1000 m jump within 1 s is impossible at 50 m/s.
  auto t = MakeTrajectory(
      {{{0, 0}, 0}, {{10, 0}, 1}, {{1000, 0}, 2}, {{20, 0}, 3}});
  auto out = pre.RemoveOutliers(t.points);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[2].position.x, 20.0);
}

TEST(PreprocessTest, SpeedGateDisabled) {
  PreprocessConfig config;
  config.max_speed_mps = 0.0;
  Preprocessor pre(config);
  auto t = MakeTrajectory({{{0, 0}, 0}, {{1e6, 0}, 1}});
  EXPECT_EQ(pre.RemoveOutliers(t.points).size(), 2u);
}

TEST(PreprocessTest, SmoothingReducesNoiseVariance) {
  common::Rng rng(3);
  PreprocessConfig config;
  config.smoothing_bandwidth_seconds = 5.0;
  config.smoothing_half_window = 3;
  Preprocessor pre(config);
  // Straight-line motion at 10 m/s with 5 m noise.
  core::RawTrajectory t;
  for (int i = 0; i < 200; ++i) {
    t.points.push_back({{i * 10.0 + rng.Gaussian(0, 5.0),
                         rng.Gaussian(0, 5.0)},
                        static_cast<double>(i)});
  }
  auto smoothed = pre.Smooth(t.points);
  ASSERT_EQ(smoothed.size(), t.points.size());
  double raw_err = 0.0, smooth_err = 0.0;
  for (int i = 0; i < 200; ++i) {
    geo::Point truth{i * 10.0, 0.0};
    raw_err += t.points[static_cast<size_t>(i)].position.SquaredDistanceTo(truth);
    smooth_err +=
        smoothed[static_cast<size_t>(i)].position.SquaredDistanceTo(truth);
  }
  EXPECT_LT(smooth_err, raw_err * 0.6);
}

TEST(PreprocessTest, SmoothingPreservesTimestamps) {
  Preprocessor pre;
  auto t = MakeTrajectory(
      {{{0, 0}, 0}, {{5, 0}, 1}, {{10, 0}, 2}, {{15, 0}, 3}, {{20, 0}, 4}});
  auto smoothed = pre.Smooth(t.points);
  for (size_t i = 0; i < t.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(smoothed[i].time, t.points[i].time);
  }
}

TEST(PreprocessTest, SmoothingDisabledReturnsInput) {
  PreprocessConfig config;
  config.smoothing_bandwidth_seconds = 0.0;
  Preprocessor pre(config);
  auto t = MakeTrajectory({{{0, 0}, 0}, {{100, 0}, 1}, {{0, 0}, 2}});
  auto smoothed = pre.Smooth(t.points);
  EXPECT_DOUBLE_EQ(smoothed[1].position.x, 100.0);
}

TEST(PreprocessTest, CleanPipelinePreservesMetadata) {
  Preprocessor pre;
  core::RawTrajectory t;
  t.id = 7;
  t.object_id = 3;
  for (int i = 0; i < 20; ++i) {
    t.points.push_back({{i * 1.0, 0.0}, static_cast<double>(i)});
  }
  core::RawTrajectory cleaned = pre.Clean(t);
  EXPECT_EQ(cleaned.id, 7);
  EXPECT_EQ(cleaned.object_id, 3);
  EXPECT_EQ(cleaned.size(), 20u);
}

TEST(PreprocessTest, EmptyAndTinyInputs) {
  Preprocessor pre;
  core::RawTrajectory empty;
  EXPECT_TRUE(pre.Clean(empty).empty());
  auto single = MakeTrajectory({{{1, 1}, 0}});
  EXPECT_EQ(pre.Clean(single).size(), 1u);
}

}  // namespace
}  // namespace semitri::traj
