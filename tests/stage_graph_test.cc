// Unit tests for the annotation stage graph: registration rules,
// dependency validation, stable topological ordering, execution, and
// single-stage runs.

#include "core/stage.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analytics/latency_profiler.h"
#include "core/stages.h"

namespace semitri::core {
namespace {

std::unique_ptr<FunctionStage> Recorder(std::string name,
                                        std::vector<std::string> deps,
                                        std::vector<std::string>* trace,
                                        bool profiled = true) {
  std::string stage_name = name;
  return std::make_unique<FunctionStage>(
      std::move(name), std::move(deps),
      [trace, stage_name](AnnotationContext&) {
        trace->push_back(stage_name);
        return common::Status::OK();
      },
      profiled);
}

TEST(StageGraphTest, RunsInStableTopologicalOrder) {
  std::vector<std::string> trace;
  StageGraph graph;
  // Registered: sink depends on both branches; branches depend on root.
  // Stable sort keeps registration order among ready stages, so the
  // expected order is exactly root, a, b, sink.
  ASSERT_TRUE(graph.Add(Recorder("root", {}, &trace)).ok());
  ASSERT_TRUE(graph.Add(Recorder("a", {"root"}, &trace)).ok());
  ASSERT_TRUE(graph.Add(Recorder("b", {"root"}, &trace)).ok());
  ASSERT_TRUE(graph.Add(Recorder("sink", {"a", "b"}, &trace)).ok());
  ASSERT_TRUE(graph.Finalize().ok());
  EXPECT_TRUE(graph.finalized());
  EXPECT_EQ(graph.ExecutionOrder(),
            (std::vector<std::string>{"root", "a", "b", "sink"}));

  AnnotationContext context;
  ASSERT_TRUE(graph.Run(context).ok());
  EXPECT_EQ(trace, (std::vector<std::string>{"root", "a", "b", "sink"}));
}

TEST(StageGraphTest, OrderIndependentOfRegistrationWhenDepsForce) {
  std::vector<std::string> trace;
  StageGraph graph;
  // `late` registered first but depends on `early`.
  ASSERT_TRUE(graph.Add(Recorder("late", {"early"}, &trace)).ok());
  ASSERT_TRUE(graph.Add(Recorder("early", {}, &trace)).ok());
  ASSERT_TRUE(graph.Finalize().ok());
  EXPECT_EQ(graph.ExecutionOrder(),
            (std::vector<std::string>{"early", "late"}));
}

TEST(StageGraphTest, DuplicateNameRejected) {
  std::vector<std::string> trace;
  StageGraph graph;
  ASSERT_TRUE(graph.Add(Recorder("stage", {}, &trace)).ok());
  common::Status status = graph.Add(Recorder("stage", {}, &trace));
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
}

TEST(StageGraphTest, AddAfterFinalizeRejected) {
  std::vector<std::string> trace;
  StageGraph graph;
  ASSERT_TRUE(graph.Add(Recorder("stage", {}, &trace)).ok());
  ASSERT_TRUE(graph.Finalize().ok());
  common::Status status = graph.Add(Recorder("another", {}, &trace));
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
}

TEST(StageGraphTest, UnknownDependencyRejected) {
  std::vector<std::string> trace;
  StageGraph graph;
  ASSERT_TRUE(graph.Add(Recorder("stage", {"missing"}, &trace)).ok());
  common::Status status = graph.Finalize();
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("missing"), std::string::npos);
}

TEST(StageGraphTest, CycleRejectedAndNamed) {
  std::vector<std::string> trace;
  StageGraph graph;
  ASSERT_TRUE(graph.Add(Recorder("a", {"b"}, &trace)).ok());
  ASSERT_TRUE(graph.Add(Recorder("b", {"a"}, &trace)).ok());
  common::Status status = graph.Finalize();
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("a"), std::string::npos);
  EXPECT_NE(status.message().find("b"), std::string::npos);
}

TEST(StageGraphTest, RunStopsAtFirstError) {
  std::vector<std::string> trace;
  StageGraph graph;
  ASSERT_TRUE(graph.Add(Recorder("ok", {}, &trace)).ok());
  ASSERT_TRUE(graph
                  .Add(std::make_unique<FunctionStage>(
                      "boom", std::vector<std::string>{"ok"},
                      [](AnnotationContext&) {
                        return common::Status::Internal("boom");
                      }))
                  .ok());
  ASSERT_TRUE(graph.Add(Recorder("never", {"boom"}, &trace)).ok());
  ASSERT_TRUE(graph.Finalize().ok());
  AnnotationContext context;
  common::Status status = graph.Run(context);
  EXPECT_EQ(status.code(), common::StatusCode::kInternal);
  EXPECT_EQ(trace, (std::vector<std::string>{"ok"}));
}

TEST(StageGraphTest, RunStageIgnoresDependenciesAndProfiles) {
  std::vector<std::string> trace;
  StageGraph graph;
  ASSERT_TRUE(graph.Add(Recorder("root", {}, &trace)).ok());
  ASSERT_TRUE(graph.Add(Recorder("leaf", {"root"}, &trace)).ok());
  ASSERT_TRUE(
      graph.Add(Recorder("silent", {}, &trace, /*profiled=*/false)).ok());
  ASSERT_TRUE(graph.Finalize().ok());

  analytics::LatencyProfiler profiler;
  AnnotationContext context;
  context.profiler = &profiler;
  ASSERT_TRUE(graph.RunStage("leaf", context).ok());
  ASSERT_TRUE(graph.RunStage("silent", context).ok());
  EXPECT_EQ(trace, (std::vector<std::string>{"leaf", "silent"}));
  EXPECT_EQ(profiler.Count("leaf"), 1u);
  // Unprofiled stages leave no latency samples.
  EXPECT_EQ(profiler.Count("silent"), 0u);

  common::Status status = graph.RunStage("nonexistent", context);
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
}

TEST(StageGraphTest, FindLocatesRegisteredStages) {
  std::vector<std::string> trace;
  StageGraph graph;
  ASSERT_TRUE(graph.Add(Recorder("present", {}, &trace)).ok());
  EXPECT_NE(graph.Find("present"), nullptr);
  EXPECT_EQ(graph.Find("absent"), nullptr);
  EXPECT_EQ(graph.size(), 1u);
}

// A stage that fails its first `failures` runs, then succeeds.
std::unique_ptr<FunctionStage> Flaky(std::string name, size_t failures,
                                     size_t* runs) {
  return std::make_unique<FunctionStage>(
      std::move(name), std::vector<std::string>{},
      [failures, runs](AnnotationContext&) {
        if ((*runs)++ < failures) {
          return common::Status::IoError("transient failure");
        }
        return common::Status::OK();
      });
}

TEST(StageGraphTest, FailFastAbortsRunAndReports) {
  std::vector<std::string> trace;
  size_t runs = 0;
  StageGraph graph;
  ASSERT_TRUE(graph.Add(Flaky("broken", /*failures=*/100, &runs)).ok());
  ASSERT_TRUE(graph.Add(Recorder("after", {"broken"}, &trace)).ok());
  ASSERT_TRUE(graph.Finalize().ok());
  AnnotationContext context;
  common::Status status = graph.Run(context);
  EXPECT_EQ(status.code(), common::StatusCode::kIoError);
  EXPECT_TRUE(trace.empty());  // downstream stage never ran
  auto it = context.result.stage_reports.find("broken");
  ASSERT_TRUE(it != context.result.stage_reports.end());
  EXPECT_FALSE(it->second.status.ok());
  EXPECT_FALSE(it->second.skipped);
}

TEST(StageGraphTest, SkipPolicyContinuesAndRecords) {
  std::vector<std::string> trace;
  size_t runs = 0;
  StageGraph graph;
  ASSERT_TRUE(graph.Add(Flaky("broken", /*failures=*/100, &runs)).ok());
  ASSERT_TRUE(graph.Add(Recorder("after", {"broken"}, &trace)).ok());
  ASSERT_TRUE(
      graph.SetFailurePolicy("broken", FailurePolicy::SkipAndRecord()).ok());
  ASSERT_TRUE(graph.Finalize().ok());
  AnnotationContext context;
  EXPECT_TRUE(graph.Run(context).ok());
  EXPECT_EQ(trace, (std::vector<std::string>{"after"}));
  auto it = context.result.stage_reports.find("broken");
  ASSERT_TRUE(it != context.result.stage_reports.end());
  EXPECT_TRUE(it->second.skipped);
  EXPECT_FALSE(it->second.status.ok());
  EXPECT_TRUE(context.result.degraded());
}

TEST(StageGraphTest, RetryPolicyAbsorbsTransientFailures) {
  size_t runs = 0;
  StageGraph graph;
  ASSERT_TRUE(graph.Add(Flaky("flaky", /*failures=*/2, &runs)).ok());
  ASSERT_TRUE(
      graph.SetFailurePolicy("flaky", FailurePolicy::Retry(3)).ok());
  ASSERT_TRUE(graph.Finalize().ok());
  AnnotationContext context;
  EXPECT_TRUE(graph.Run(context).ok());
  EXPECT_EQ(runs, 3u);
  auto it = context.result.stage_reports.find("flaky");
  ASSERT_TRUE(it != context.result.stage_reports.end());
  EXPECT_EQ(it->second.attempts, 3u);
  EXPECT_TRUE(it->second.status.ok());
  EXPECT_FALSE(it->second.skipped);
  EXPECT_FALSE(context.result.degraded());
}

TEST(StageGraphTest, RetryExhaustionFollowsOnFailure) {
  // Retries exhausted + kAbort -> error; + kSkip -> run continues.
  size_t runs_abort = 0;
  StageGraph abort_graph;
  ASSERT_TRUE(
      abort_graph.Add(Flaky("dead", /*failures=*/100, &runs_abort)).ok());
  ASSERT_TRUE(
      abort_graph.SetFailurePolicy("dead", FailurePolicy::Retry(3)).ok());
  ASSERT_TRUE(abort_graph.Finalize().ok());
  AnnotationContext context;
  EXPECT_FALSE(abort_graph.Run(context).ok());
  EXPECT_EQ(runs_abort, 3u);

  size_t runs_skip = 0;
  StageGraph skip_graph;
  ASSERT_TRUE(
      skip_graph.Add(Flaky("dead", /*failures=*/100, &runs_skip)).ok());
  FailurePolicy policy = FailurePolicy::Retry(2);
  policy.on_failure = FailurePolicy::OnFailure::kSkip;
  ASSERT_TRUE(skip_graph.SetFailurePolicy("dead", policy).ok());
  ASSERT_TRUE(skip_graph.Finalize().ok());
  AnnotationContext skip_context;
  EXPECT_TRUE(skip_graph.Run(skip_context).ok());
  EXPECT_EQ(runs_skip, 2u);
  auto it = skip_context.result.stage_reports.find("dead");
  ASSERT_TRUE(it != skip_context.result.stage_reports.end());
  EXPECT_EQ(it->second.attempts, 2u);
  EXPECT_TRUE(it->second.skipped);
}

TEST(StageGraphTest, CleanRunLeavesNoReports) {
  std::vector<std::string> trace;
  StageGraph graph;
  ASSERT_TRUE(graph.Add(Recorder("ok", {}, &trace)).ok());
  ASSERT_TRUE(graph.SetFailurePolicy("ok", FailurePolicy::Retry(5)).ok());
  ASSERT_TRUE(graph.Finalize().ok());
  AnnotationContext context;
  EXPECT_TRUE(graph.Run(context).ok());
  // First-attempt success is the hot path: no allocation, no report.
  EXPECT_TRUE(context.result.stage_reports.empty());
}

TEST(StageGraphTest, SetFailurePolicyRejectsUnknownStage) {
  StageGraph graph;
  EXPECT_EQ(graph.SetFailurePolicy("ghost", FailurePolicy::FailFast()).code(),
            common::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace semitri::core
