// Unit tests for the annotation stage graph: registration rules,
// dependency validation, stable topological ordering, execution, and
// single-stage runs.

#include "core/stage.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analytics/latency_profiler.h"
#include "core/stages.h"

namespace semitri::core {
namespace {

std::unique_ptr<FunctionStage> Recorder(std::string name,
                                        std::vector<std::string> deps,
                                        std::vector<std::string>* trace,
                                        bool profiled = true) {
  std::string stage_name = name;
  return std::make_unique<FunctionStage>(
      std::move(name), std::move(deps),
      [trace, stage_name](AnnotationContext&) {
        trace->push_back(stage_name);
        return common::Status::OK();
      },
      profiled);
}

TEST(StageGraphTest, RunsInStableTopologicalOrder) {
  std::vector<std::string> trace;
  StageGraph graph;
  // Registered: sink depends on both branches; branches depend on root.
  // Stable sort keeps registration order among ready stages, so the
  // expected order is exactly root, a, b, sink.
  ASSERT_TRUE(graph.Add(Recorder("root", {}, &trace)).ok());
  ASSERT_TRUE(graph.Add(Recorder("a", {"root"}, &trace)).ok());
  ASSERT_TRUE(graph.Add(Recorder("b", {"root"}, &trace)).ok());
  ASSERT_TRUE(graph.Add(Recorder("sink", {"a", "b"}, &trace)).ok());
  ASSERT_TRUE(graph.Finalize().ok());
  EXPECT_TRUE(graph.finalized());
  EXPECT_EQ(graph.ExecutionOrder(),
            (std::vector<std::string>{"root", "a", "b", "sink"}));

  AnnotationContext context;
  ASSERT_TRUE(graph.Run(context).ok());
  EXPECT_EQ(trace, (std::vector<std::string>{"root", "a", "b", "sink"}));
}

TEST(StageGraphTest, OrderIndependentOfRegistrationWhenDepsForce) {
  std::vector<std::string> trace;
  StageGraph graph;
  // `late` registered first but depends on `early`.
  ASSERT_TRUE(graph.Add(Recorder("late", {"early"}, &trace)).ok());
  ASSERT_TRUE(graph.Add(Recorder("early", {}, &trace)).ok());
  ASSERT_TRUE(graph.Finalize().ok());
  EXPECT_EQ(graph.ExecutionOrder(),
            (std::vector<std::string>{"early", "late"}));
}

TEST(StageGraphTest, DuplicateNameRejected) {
  std::vector<std::string> trace;
  StageGraph graph;
  ASSERT_TRUE(graph.Add(Recorder("stage", {}, &trace)).ok());
  common::Status status = graph.Add(Recorder("stage", {}, &trace));
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
}

TEST(StageGraphTest, AddAfterFinalizeRejected) {
  std::vector<std::string> trace;
  StageGraph graph;
  ASSERT_TRUE(graph.Add(Recorder("stage", {}, &trace)).ok());
  ASSERT_TRUE(graph.Finalize().ok());
  common::Status status = graph.Add(Recorder("another", {}, &trace));
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
}

TEST(StageGraphTest, UnknownDependencyRejected) {
  std::vector<std::string> trace;
  StageGraph graph;
  ASSERT_TRUE(graph.Add(Recorder("stage", {"missing"}, &trace)).ok());
  common::Status status = graph.Finalize();
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("missing"), std::string::npos);
}

TEST(StageGraphTest, CycleRejectedAndNamed) {
  std::vector<std::string> trace;
  StageGraph graph;
  ASSERT_TRUE(graph.Add(Recorder("a", {"b"}, &trace)).ok());
  ASSERT_TRUE(graph.Add(Recorder("b", {"a"}, &trace)).ok());
  common::Status status = graph.Finalize();
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("a"), std::string::npos);
  EXPECT_NE(status.message().find("b"), std::string::npos);
}

TEST(StageGraphTest, RunStopsAtFirstError) {
  std::vector<std::string> trace;
  StageGraph graph;
  ASSERT_TRUE(graph.Add(Recorder("ok", {}, &trace)).ok());
  ASSERT_TRUE(graph
                  .Add(std::make_unique<FunctionStage>(
                      "boom", std::vector<std::string>{"ok"},
                      [](AnnotationContext&) {
                        return common::Status::Internal("boom");
                      }))
                  .ok());
  ASSERT_TRUE(graph.Add(Recorder("never", {"boom"}, &trace)).ok());
  ASSERT_TRUE(graph.Finalize().ok());
  AnnotationContext context;
  common::Status status = graph.Run(context);
  EXPECT_EQ(status.code(), common::StatusCode::kInternal);
  EXPECT_EQ(trace, (std::vector<std::string>{"ok"}));
}

TEST(StageGraphTest, RunStageIgnoresDependenciesAndProfiles) {
  std::vector<std::string> trace;
  StageGraph graph;
  ASSERT_TRUE(graph.Add(Recorder("root", {}, &trace)).ok());
  ASSERT_TRUE(graph.Add(Recorder("leaf", {"root"}, &trace)).ok());
  ASSERT_TRUE(
      graph.Add(Recorder("silent", {}, &trace, /*profiled=*/false)).ok());
  ASSERT_TRUE(graph.Finalize().ok());

  analytics::LatencyProfiler profiler;
  AnnotationContext context;
  context.profiler = &profiler;
  ASSERT_TRUE(graph.RunStage("leaf", context).ok());
  ASSERT_TRUE(graph.RunStage("silent", context).ok());
  EXPECT_EQ(trace, (std::vector<std::string>{"leaf", "silent"}));
  EXPECT_EQ(profiler.Count("leaf"), 1u);
  // Unprofiled stages leave no latency samples.
  EXPECT_EQ(profiler.Count("silent"), 0u);

  common::Status status = graph.RunStage("nonexistent", context);
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
}

TEST(StageGraphTest, FindLocatesRegisteredStages) {
  std::vector<std::string> trace;
  StageGraph graph;
  ASSERT_TRUE(graph.Add(Recorder("present", {}, &trace)).ok());
  EXPECT_NE(graph.Find("present"), nullptr);
  EXPECT_EQ(graph.Find("absent"), nullptr);
  EXPECT_EQ(graph.size(), 1u);
}

}  // namespace
}  // namespace semitri::core
