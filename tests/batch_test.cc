// Tests for the parallel batch processor: parity with serial
// processing, deterministic ids, error propagation, store persistence,
// and a TSan-targeted oversubscription stress test.

#include "core/batch.h"

#include <thread>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/fault_injection.h"
#include "datagen/presets.h"
#include "hmm/hmm.h"
#include "poi/point_annotator.h"

namespace semitri::core {
namespace {

class BatchFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::WorldConfig wc;
    wc.seed = 55;
    wc.extent_meters = 4000.0;
    wc.num_pois = 500;
    world_ = std::make_unique<datagen::World>(
        datagen::WorldGenerator(wc).Generate());
    factory_ = std::make_unique<datagen::DatasetFactory>(world_.get(), 56);
    dataset_ = factory_->MilanPrivateCars(/*num_cars=*/6, /*num_days=*/2);
    for (const datagen::SimulatedTrack& track : dataset_.tracks) {
      streams_[track.object_id] = track.points;
    }
  }
  std::unique_ptr<datagen::World> world_;
  std::unique_ptr<datagen::DatasetFactory> factory_;
  datagen::Dataset dataset_;
  std::map<ObjectId, std::vector<GpsPoint>> streams_;
};

TEST_F(BatchFixture, ParityWithSerialProcessing) {
  SemiTriPipeline pipeline(&world_->regions, &world_->roads, &world_->pois);
  BatchOptions options;
  options.num_threads = 4;
  BatchProcessor batch(&pipeline, options);
  auto parallel = batch.Process(streams_);
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(parallel->size(), streams_.size());

  // Deterministic merge: results come back ordered by ascending object
  // id regardless of which worker ran which stream.
  for (size_t i = 1; i < parallel->size(); ++i) {
    EXPECT_LT((*parallel)[i - 1].object_id, (*parallel)[i].object_id);
  }

  size_t object_index = 0;
  for (const auto& [object_id, stream] : streams_) {
    auto serial = pipeline.ProcessStream(
        object_id, stream,
        static_cast<TrajectoryId>(object_index) * 1000);
    ASSERT_TRUE(serial.ok());
    const ObjectResults& got = (*parallel)[object_index];
    EXPECT_EQ(got.object_id, object_id);
    ASSERT_EQ(got.results.size(), serial->size());
    for (size_t d = 0; d < serial->size(); ++d) {
      const PipelineResult& a = (*serial)[d];
      const PipelineResult& b = got.results[d];
      EXPECT_EQ(a.cleaned.id, b.cleaned.id);
      EXPECT_EQ(a.cleaned.size(), b.cleaned.size());
      EXPECT_EQ(a.episodes.size(), b.episodes.size());
      ASSERT_EQ(a.point_layer.has_value(), b.point_layer.has_value());
      if (a.point_layer.has_value()) {
        ASSERT_EQ(a.point_layer->episodes.size(),
                  b.point_layer->episodes.size());
        for (size_t e = 0; e < a.point_layer->episodes.size(); ++e) {
          EXPECT_EQ(a.point_layer->episodes[e].annotations,
                    b.point_layer->episodes[e].annotations);
        }
      }
    }
    ++object_index;
  }
}

TEST_F(BatchFixture, SingleThreadMatchesMultiThread) {
  SemiTriPipeline pipeline(&world_->regions, nullptr, nullptr);
  BatchOptions one;
  one.num_threads = 1;
  BatchOptions many;
  many.num_threads = 8;
  auto a = BatchProcessor(&pipeline, one).Process(streams_);
  auto b = BatchProcessor(&pipeline, many).Process(streams_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].object_id, (*b)[i].object_id);
    ASSERT_EQ((*a)[i].results.size(), (*b)[i].results.size());
    for (size_t d = 0; d < (*a)[i].results.size(); ++d) {
      const PipelineResult& ra = (*a)[i].results[d];
      const PipelineResult& rb = (*b)[i].results[d];
      ASSERT_TRUE(ra.region_layer.has_value());
      ASSERT_TRUE(rb.region_layer.has_value());
      // Worker count must not change a single bit of the output.
      EXPECT_EQ(*ra.region_layer, *rb.region_layer);
    }
  }
}

TEST_F(BatchFixture, StoreResultsPersistsEverything) {
  SemiTriPipeline pipeline(&world_->regions, &world_->roads, &world_->pois);
  BatchProcessor batch(&pipeline);
  auto results = batch.Process(streams_);
  ASSERT_TRUE(results.ok());
  store::SemanticTrajectoryStore store;
  ASSERT_TRUE(BatchProcessor::StoreResults(*results, &store).ok());
  size_t expected_trajectories = 0;
  for (const auto& object : *results) {
    expected_trajectories += object.results.size();
  }
  EXPECT_EQ(store.num_trajectories(), expected_trajectories);
  EXPECT_GT(store.num_semantic_episodes(), 0u);
}

// Concurrency stress test, written for TSan builds: far more objects
// than worker slots, more workers than hardware threads (forced
// preemption), and a store + profiler sink shared by every worker so
// their internal locking is actually exercised. The assertions pin the
// deterministic-merge contract: results ordered by object id with
// per-object trajectory-id blocks, independent of scheduling.
TEST(BatchProcessorStress, OversubscribedThreadsDeterministicMerge) {
  datagen::WorldConfig wc;
  wc.seed = 77;
  wc.extent_meters = 3000.0;
  wc.num_pois = 200;
  datagen::World world = datagen::WorldGenerator(wc).Generate();
  datagen::DatasetFactory factory(&world, 78);
  datagen::Dataset dataset =
      factory.MilanPrivateCars(/*num_cars=*/24, /*num_days=*/1);
  std::map<ObjectId, std::vector<GpsPoint>> streams;
  for (const datagen::SimulatedTrack& track : dataset.tracks) {
    streams[track.object_id] = track.points;
  }
  ASSERT_GT(streams.size(), 8u);

  store::SemanticTrajectoryStore store;
  analytics::LatencyProfiler profiler;
  SemiTriPipeline pipeline(&world.regions, &world.roads, &world.pois,
                           PipelineConfig{}, &store, &profiler);
  BatchOptions options;
  options.num_threads = std::thread::hardware_concurrency() + 4;
  BatchProcessor batch(&pipeline, options);

  const TrajectoryId ids_per_object = 1000;
  auto first = batch.Process(streams, ids_per_object);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->size(), streams.size());

  // Merge order: ascending object ids, trajectory ids inside object k
  // drawn from [k * ids_per_object, (k + 1) * ids_per_object).
  size_t object_index = 0;
  auto stream_it = streams.begin();
  for (const ObjectResults& object : *first) {
    EXPECT_EQ(object.object_id, stream_it->first);
    TrajectoryId block =
        static_cast<TrajectoryId>(object_index) * ids_per_object;
    for (size_t d = 0; d < object.results.size(); ++d) {
      EXPECT_EQ(object.results[d].cleaned.id,
                block + static_cast<TrajectoryId>(d));
    }
    ++object_index;
    ++stream_it;
  }

  // Scheduling independence: a rerun with different worker counts
  // merges identically.
  BatchOptions two;
  two.num_threads = 2;
  auto second = BatchProcessor(&pipeline, two).Process(streams,
                                                       ids_per_object);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->size(), first->size());
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i].object_id, (*second)[i].object_id);
    ASSERT_EQ((*first)[i].results.size(), (*second)[i].results.size());
    for (size_t d = 0; d < (*first)[i].results.size(); ++d) {
      EXPECT_EQ((*first)[i].results[d].cleaned.id,
                (*second)[i].results[d].cleaned.id);
      EXPECT_EQ((*first)[i].results[d].episodes.size(),
                (*second)[i].results[d].episodes.size());
    }
  }

  // The shared sinks saw every trajectory (store keys are ids, so the
  // double run overwrites rather than duplicates).
  size_t expected_trajectories = 0;
  for (const ObjectResults& object : *first) {
    expected_trajectories += object.results.size();
  }
  EXPECT_EQ(store.num_trajectories(), expected_trajectories);
  EXPECT_GT(profiler.Count(kStageComputeEpisode), 0u);
}

TEST_F(BatchFixture, ProcessAllMatchesProcessOnCleanRun) {
  SemiTriPipeline pipeline(&world_->regions, &world_->roads, &world_->pois);
  BatchOptions options;
  options.num_threads = 2;
  BatchProcessor batch(&pipeline, options);
  auto report = batch.ProcessAll(streams_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->all_succeeded());
  EXPECT_TRUE(report->failed.empty());
  EXPECT_EQ(report->total_retries, 0u);
  ASSERT_EQ(report->succeeded.size(), streams_.size());
  auto results = batch.Process(streams_);
  ASSERT_TRUE(results.ok());
  for (size_t i = 0; i < results->size(); ++i) {
    EXPECT_EQ(report->succeeded[i].object_id, (*results)[i].object_id);
    EXPECT_EQ(report->succeeded[i].results.size(),
              (*results)[i].results.size());
  }
}

TEST_F(BatchFixture, ProcessAllReportsPartialFailure) {
  if (!common::FaultInjector::enabled()) {
    GTEST_SKIP() << "built without SEMITRI_FAULT_INJECTION";
  }
  common::FaultInjector& fi = common::FaultInjector::Global();
  fi.Reset();
  SemiTriPipeline pipeline(&world_->regions, &world_->roads, &world_->pois);
  BatchOptions options;
  options.num_threads = 1;  // deterministic object order for FailNth
  BatchProcessor batch(&pipeline, options);

  // Discovery: how often does the landuse stage run across the batch?
  ASSERT_TRUE(batch.ProcessAll(streams_).ok());
  std::string site = std::string("stage:") + kStageLanduseJoin;
  uint64_t stage_runs = fi.HitCount(site);
  ASSERT_GT(stage_runs, 2u);

  // One injected failure mid-batch: exactly one object fails, every
  // other object's results still come back.
  fi.Reset();
  fi.Arm(site, common::FaultPolicy::FailNth(stage_runs / 2));
  auto report = batch.ProcessAll(streams_);
  fi.Reset();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->all_succeeded());
  ASSERT_EQ(report->failed.size(), 1u);
  EXPECT_EQ(report->succeeded.size(), streams_.size() - 1);
  EXPECT_FALSE(report->failed[0].status.ok());
  EXPECT_EQ(report->failed[0].attempts, 1u);
  // And Process (fail-fast wrapper) surfaces that same status.
  fi.Arm(site, common::FaultPolicy::FailNth(stage_runs / 2));
  auto failfast = batch.Process(streams_);
  fi.Reset();
  EXPECT_FALSE(failfast.ok());
}

TEST_F(BatchFixture, ProcessAllRetriesTransientFailure) {
  if (!common::FaultInjector::enabled()) {
    GTEST_SKIP() << "built without SEMITRI_FAULT_INJECTION";
  }
  common::FaultInjector& fi = common::FaultInjector::Global();
  fi.Reset();
  SemiTriPipeline pipeline(&world_->regions, &world_->roads, &world_->pois);
  BatchOptions options;
  options.num_threads = 1;
  options.max_attempts_per_object = 2;  // zero-backoff immediate retry
  BatchProcessor batch(&pipeline, options);
  // FailNth triggers exactly once, so the per-object retry re-runs the
  // stream and succeeds: the batch completes with one retry on record.
  fi.Arm(std::string("stage:") + kStageLanduseJoin,
         common::FaultPolicy::FailNth(2));
  auto report = batch.ProcessAll(streams_);
  fi.Reset();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->all_succeeded());
  EXPECT_EQ(report->succeeded.size(), streams_.size());
  EXPECT_EQ(report->total_retries, 1u);
}

TEST_F(BatchFixture, RetryBackoffRunsOnInjectedClock) {
  if (!common::FaultInjector::enabled()) {
    GTEST_SKIP() << "built without SEMITRI_FAULT_INJECTION";
  }
  common::FaultInjector& fi = common::FaultInjector::Global();
  fi.Reset();
  SemiTriPipeline pipeline(&world_->regions, &world_->roads, &world_->pois);

  // One object, every attempt failing: the worker walks the whole
  // capped exponential backoff schedule. With the FakeClock injected,
  // the sleeps advance fake time instead of blocking — the schedule is
  // observable exactly (1 + 2 + 4 seconds; no sleep after the last
  // attempt) and the test costs no wall time.
  std::map<ObjectId, std::vector<GpsPoint>> one;
  one.insert(*streams_.begin());

  common::FakeClock clock;
  BatchOptions options;
  options.num_threads = 1;
  options.max_attempts_per_object = 4;
  options.initial_backoff_seconds = 1.0;
  options.backoff_multiplier = 2.0;
  options.max_backoff_seconds = 4.0;
  BatchProcessor batch(&pipeline, options, &clock);

  fi.Arm(std::string("stage:") + kStageLanduseJoin,
         common::FaultPolicy::FailAlways());
  auto report = batch.ProcessAll(one);
  fi.Reset();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->failed.size(), 1u);
  EXPECT_EQ(report->failed[0].attempts, 4u);
  EXPECT_EQ(report->total_retries, 3u);
  EXPECT_DOUBLE_EQ(clock.NowNanos() * 1e-9, 7.0);
}

TEST(BatchProcessorTest, EmptyInput) {
  datagen::WorldConfig wc;
  wc.seed = 1;
  wc.extent_meters = 1500.0;
  wc.num_pois = 50;
  datagen::World world = datagen::WorldGenerator(wc).Generate();
  SemiTriPipeline pipeline(&world.regions, nullptr, nullptr);
  BatchProcessor batch(&pipeline);
  auto results = batch.Process({});
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

}  // namespace
}  // namespace semitri::core
