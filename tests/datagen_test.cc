// Tests for the synthetic-world generator and the movement simulator:
// determinism, structural invariants, ground-truth consistency, and
// dataset-preset shapes.

#include <gtest/gtest.h>

#include "datagen/movement.h"
#include "datagen/presets.h"
#include "datagen/world.h"
#include "traj/point_batch.h"

namespace semitri::datagen {
namespace {

WorldConfig SmallWorld(uint64_t seed) {
  WorldConfig c;
  c.seed = seed;
  c.extent_meters = 4000.0;
  c.num_pois = 500;
  c.num_patches = 15;
  return c;
}

TEST(WorldGeneratorTest, DeterministicForSeed) {
  World a = WorldGenerator(SmallWorld(5)).Generate();
  World b = WorldGenerator(SmallWorld(5)).Generate();
  ASSERT_EQ(a.roads.num_segments(), b.roads.num_segments());
  ASSERT_EQ(a.regions.size(), b.regions.size());
  ASSERT_EQ(a.pois.size(), b.pois.size());
  for (size_t i = 0; i < a.roads.num_segments(); ++i) {
    const auto& sa = a.roads.segment(static_cast<core::PlaceId>(i));
    const auto& sb = b.roads.segment(static_cast<core::PlaceId>(i));
    EXPECT_EQ(sa.shape.a, sb.shape.a);
    EXPECT_EQ(sa.type, sb.type);
  }
  for (size_t i = 0; i < a.pois.size(); ++i) {
    EXPECT_EQ(a.pois.Get(static_cast<core::PlaceId>(i)).position,
              b.pois.Get(static_cast<core::PlaceId>(i)).position);
  }
}

TEST(WorldGeneratorTest, DifferentSeedsDiffer) {
  World a = WorldGenerator(SmallWorld(5)).Generate();
  World b = WorldGenerator(SmallWorld(6)).Generate();
  bool any_diff = false;
  size_t n = std::min(a.pois.size(), b.pois.size());
  for (size_t i = 0; i < n; ++i) {
    if (!(a.pois.Get(static_cast<core::PlaceId>(i)).position ==
          b.pois.Get(static_cast<core::PlaceId>(i)).position)) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(WorldGeneratorTest, ContainsAllRoadTypes) {
  World world = WorldGenerator(SmallWorld(7)).Generate();
  bool has[6] = {false, false, false, false, false, false};
  for (const auto& seg : world.roads.segments()) {
    has[static_cast<int>(seg.type)] = true;
  }
  EXPECT_TRUE(has[static_cast<int>(road::RoadType::kHighway)]);
  EXPECT_TRUE(has[static_cast<int>(road::RoadType::kArterial)]);
  EXPECT_TRUE(has[static_cast<int>(road::RoadType::kResidential)]);
  EXPECT_TRUE(has[static_cast<int>(road::RoadType::kFootway)]);
  EXPECT_TRUE(has[static_cast<int>(road::RoadType::kCycleway)]);
  EXPECT_TRUE(has[static_cast<int>(road::RoadType::kRailMetro)]);
}

TEST(WorldGeneratorTest, LanduseCoversExtentWithCells) {
  World world = WorldGenerator(SmallWorld(9)).Generate();
  // 4000/100 = 40x40 cells plus 2 named polygon regions.
  EXPECT_GE(world.regions.size(), 1600u);
  // Every interior point is covered by at least one region.
  common::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    geo::Point p{rng.Uniform(100, 3900), rng.Uniform(100, 3900)};
    EXPECT_FALSE(world.regions.FindContaining(p).empty()) << p.x << "," << p.y;
  }
}

TEST(WorldGeneratorTest, UrbanCoreIsSettlementDominated) {
  World world = WorldGenerator(SmallWorld(11)).Generate();
  common::Rng rng(5);
  int settlement = 0, total = 0;
  for (int i = 0; i < 300; ++i) {
    geo::Point p = world.Center() +
                   geo::Point{rng.Uniform(-800, 800), rng.Uniform(-800, 800)};
    auto hits = world.regions.FindContaining(p);
    if (hits.empty()) continue;
    ++total;
    region::LanduseGroup group =
        region::LanduseGroupOf(world.regions.Get(hits[0]).category);
    if (group == region::LanduseGroup::kSettlement) ++settlement;
  }
  ASSERT_GT(total, 200);
  EXPECT_GT(static_cast<double>(settlement) / total, 0.7);
}

TEST(WorldGeneratorTest, PoiCategorySharesMatchMilanWeights) {
  WorldConfig config = SmallWorld(13);
  config.num_pois = 4000;
  World world = WorldGenerator(config).Generate();
  auto priors = world.pois.CategoryPriors();
  // Milan: ~10.9%, 17.7%, 31.5%, 38.6%, 1.3%.
  EXPECT_NEAR(priors[0], 0.109, 0.03);
  EXPECT_NEAR(priors[1], 0.177, 0.03);
  EXPECT_NEAR(priors[2], 0.315, 0.03);
  EXPECT_NEAR(priors[3], 0.386, 0.03);
  EXPECT_NEAR(priors[4], 0.013, 0.01);
}

TEST(WorldGeneratorTest, NamedRegionsExist) {
  World world = WorldGenerator(SmallWorld(15)).Generate();
  bool campus = false, pool = false;
  for (size_t i = 0; i < world.regions.size(); ++i) {
    const auto& r = world.regions.Get(static_cast<core::PlaceId>(i));
    if (r.name == "EPFL campus") campus = true;
    if (r.name == "swimming pool") pool = true;
  }
  EXPECT_TRUE(campus);
  EXPECT_TRUE(pool);
}

TEST(WorldGeneratorTest, MetroLinesInterconnected) {
  // Any two rail nodes must be mutually reachable via rail plus station
  // entrances (footways): lines interchange through shared stations.
  World world = WorldGenerator(SmallWorld(17)).Generate();
  road::Router router(&world.roads);
  std::vector<road::NodeId> rail_nodes;
  for (const auto& seg : world.roads.segments()) {
    if (seg.type == road::RoadType::kRailMetro) {
      rail_nodes.push_back(seg.from);
      rail_nodes.push_back(seg.to);
    }
  }
  ASSERT_GE(rail_nodes.size(), 4u);
  auto rail_or_walk = [](const road::RoadSegment& s) {
    return s.type == road::RoadType::kRailMetro ||
           road::IsRoadTypeWalkable(s.type);
  };
  auto path = router.ShortestPath(rail_nodes.front(), rail_nodes.back(),
                                  rail_or_walk);
  EXPECT_TRUE(path.ok());
  // And a single line is contiguous on rail alone.
  const auto& first_rail = *std::find_if(
      world.roads.segments().begin(), world.roads.segments().end(),
      [](const road::RoadSegment& s) {
        return s.type == road::RoadType::kRailMetro;
      });
  auto same_line = router.ShortestPath(
      first_rail.from, first_rail.to, road::MetroFilter());
  EXPECT_TRUE(same_line.ok());
}

class SimulatorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<World>(
        WorldGenerator(SmallWorld(19)).Generate());
    sim_ = std::make_unique<MovementSimulator>(world_.get(), 23);
  }
  std::unique_ptr<World> world_;
  std::unique_ptr<MovementSimulator> sim_;
};

TEST_F(SimulatorFixture, TruthParallelToPoints) {
  SimulatedTrack track;
  SensorProfile sensor = VehicleSensor();
  geo::Point from = world_->RandomCorePoint(sim_->rng());
  geo::Point to = world_->RandomCorePoint(sim_->rng());
  auto arrival = sim_->AppendTrip(&track, from, to,
                                  road::TransportMode::kCar, 100.0, sensor);
  ASSERT_TRUE(arrival.ok());
  EXPECT_EQ(track.points.size(), track.truth.size());
  EXPECT_GT(track.points.size(), 0u);
}

TEST_F(SimulatorFixture, TimestampsStrictlyIncrease) {
  SimulatedTrack track;
  SensorProfile sensor = SmartphoneSensor();
  geo::Point a = world_->RandomCorePoint(sim_->rng());
  geo::Point b = world_->RandomCorePoint(sim_->rng());
  double t = 0.0;
  auto r1 = sim_->AppendTrip(&track, a, b, road::TransportMode::kBus, t,
                             sensor);
  ASSERT_TRUE(r1.ok());
  sim_->AppendStop(&track, b, *r1, 1200.0, sensor);
  auto r2 = sim_->AppendTrip(&track, b, a, road::TransportMode::kWalk,
                             *r1 + 1200.0, sensor);
  ASSERT_TRUE(r2.ok());
  for (size_t i = 1; i < track.points.size(); ++i) {
    EXPECT_GT(track.points[i].time, track.points[i - 1].time - 1e-9);
  }
}

TEST_F(SimulatorFixture, TruthSegmentsMatchPositions) {
  SimulatedTrack track;
  SensorProfile sensor = VehicleSensor();
  sensor.gps_sigma_meters = 0.0;  // no noise: positions exactly on roads
  geo::Point from = world_->RandomCorePoint(sim_->rng());
  geo::Point to = world_->RandomCorePoint(sim_->rng());
  auto arrival = sim_->AppendTrip(&track, from, to,
                                  road::TransportMode::kCar, 0.0, sensor);
  ASSERT_TRUE(arrival.ok());
  for (size_t i = 0; i < track.points.size(); ++i) {
    ASSERT_NE(track.truth[i].segment, core::kInvalidPlaceId);
    double d = world_->roads.segment(track.truth[i].segment)
                   .shape.DistanceTo(track.points[i].position);
    EXPECT_LT(d, 1.0) << "sample " << i;
  }
}

TEST_F(SimulatorFixture, StopRecordsTruth) {
  SimulatedTrack track;
  SensorProfile sensor = SmartphoneSensor();
  sim_->AppendStop(&track, {1000, 1000}, 50.0, 600.0, sensor, 42, 2, "shop");
  ASSERT_EQ(track.stops.size(), 1u);
  EXPECT_EQ(track.stops[0].poi, 42);
  EXPECT_EQ(track.stops[0].poi_category, 2);
  EXPECT_EQ(track.stops[0].label, "shop");
  EXPECT_DOUBLE_EQ(track.stops[0].time_in, 50.0);
  EXPECT_DOUBLE_EQ(track.stops[0].time_out, 650.0);
  for (const auto& truth : track.truth) {
    EXPECT_EQ(truth.segment, core::kInvalidPlaceId);
    EXPECT_FALSE(truth.mode.has_value());
  }
}

TEST_F(SimulatorFixture, ModeSpeedsAreDistinct) {
  SensorProfile sensor = VehicleSensor();
  sensor.gps_sigma_meters = 0.0;
  geo::Point from = world_->Center() + geo::Point{-1200, -1200};
  geo::Point to = world_->Center() + geo::Point{1200, 1200};
  auto mean_speed = [&](road::TransportMode mode) {
    SimulatedTrack track;
    auto r = sim_->AppendTrip(&track, from, to, mode, 0.0, sensor);
    EXPECT_TRUE(r.ok());
    traj::PointBatch batch;
    batch.BuildFrom(track.points);
    auto f = road::ComputeMotionFeatures(batch.View());
    return f.mean_speed_mps;
  };
  double walk = mean_speed(road::TransportMode::kWalk);
  double bike = mean_speed(road::TransportMode::kBicycle);
  double car = mean_speed(road::TransportMode::kCar);
  EXPECT_LT(walk, 2.2);
  EXPECT_GT(bike, walk);
  EXPECT_GT(car, bike);
}

TEST_F(SimulatorFixture, RambleStaysNearAnchor) {
  SimulatedTrack track;
  SensorProfile sensor = SmartphoneSensor();
  geo::Point anchor{2000, 2000};
  double end = sim_->AppendRamble(&track, anchor, 300.0, 0.0, 1800.0, sensor);
  EXPECT_NEAR(end, 1800.0, 2.0);
  EXPECT_GT(track.points.size(), 50u);
  for (const auto& p : track.points) {
    EXPECT_LT(p.position.DistanceTo(anchor), 300.0 * 1.6 + 50.0);
  }
}

TEST(DatasetFactoryTest, TaxiPresetShape) {
  World world = WorldGenerator(SmallWorld(21)).Generate();
  DatasetFactory factory(&world, 3);
  Dataset taxis = factory.LausanneTaxis(/*num_taxis=*/2, /*num_days=*/2,
                                        /*shift_hours=*/2.0);
  EXPECT_EQ(taxis.tracks.size(), 2u);
  EXPECT_GT(taxis.TotalRecords(), 5000u);  // 1 s sampling
  EXPECT_GT(taxis.TotalStops(), 4u);
  EXPECT_EQ(taxis.name, "lausanne_taxis");
}

TEST(DatasetFactoryTest, MilanPresetStopsAtPois) {
  World world = WorldGenerator(SmallWorld(23)).Generate();
  DatasetFactory factory(&world, 5);
  Dataset cars = factory.MilanPrivateCars(/*num_cars=*/5, /*num_days=*/3);
  EXPECT_EQ(cars.tracks.size(), 5u);
  size_t poi_stops = 0;
  for (const auto& track : cars.tracks) {
    for (const auto& stop : track.stops) {
      if (stop.poi != core::kInvalidPlaceId) {
        ++poi_stops;
        EXPECT_EQ(world.pois.Get(stop.poi).category, stop.poi_category);
      }
    }
  }
  EXPECT_GT(poi_stops, 10u);
}

TEST(DatasetFactoryTest, PeoplePresetDistinctUsers) {
  World world = WorldGenerator(SmallWorld(25)).Generate();
  DatasetFactory factory(&world, 7);
  Dataset people = factory.NokiaPeople(/*num_users=*/3, /*num_days=*/3);
  ASSERT_EQ(people.tracks.size(), 3u);
  for (const auto& track : people.tracks) {
    EXPECT_GT(track.points.size(), 100u);
    EXPECT_GT(track.stops.size(), 3u);  // at least home/work dwells
  }
}

TEST(DatasetFactoryTest, DeterministicForSeed) {
  World world = WorldGenerator(SmallWorld(27)).Generate();
  DatasetFactory f1(&world, 9);
  DatasetFactory f2(&world, 9);
  Dataset a = f1.SeattleDrive(0.2);
  Dataset b = f2.SeattleDrive(0.2);
  ASSERT_EQ(a.TotalRecords(), b.TotalRecords());
  for (size_t i = 0; i < a.tracks[0].points.size(); ++i) {
    EXPECT_EQ(a.tracks[0].points[i].position,
              b.tracks[0].points[i].position);
  }
}

}  // namespace
}  // namespace semitri::datagen
