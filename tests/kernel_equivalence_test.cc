// Bit-identical equivalence of the batched data-plane kernels against
// their scalar definitions.
//
// The golden-CRC suite (dataplane_equivalence_test.cc) pins the full
// pipeline; this suite pins each kernel in isolation so a drift points
// at the exact loop that introduced it. Every comparison is exact
// (EXPECT_EQ on doubles): the batched forms are required to perform
// the same operations in the same order as the scalar code, not merely
// to agree within a tolerance.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/presets.h"
#include "datagen/world.h"
#include "geo/kernels.h"
#include "geo/point.h"
#include "geo/segment.h"
#include "hmm/hmm.h"
#include "poi/observation_model.h"
#include "road/road_network.h"
#include "traj/point_batch.h"

namespace semitri {
namespace {

datagen::World MakeWorld() {
  datagen::WorldConfig config;
  config.seed = 771;
  config.extent_meters = 3000.0;
  config.num_pois = 400;
  return datagen::WorldGenerator(config).Generate();
}

// --- geo kernels -----------------------------------------------------

TEST(GeoKernelEquivalenceTest, SegmentDistancesMatchScalarFuzz) {
  common::Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = static_cast<size_t>(rng.UniformInt(1, 64));
    std::vector<geo::Segment> segments(n);
    std::vector<double> ax(n), ay(n), bx(n), by(n), batched(n);
    for (size_t i = 0; i < n; ++i) {
      segments[i].a = {rng.Uniform(-500.0, 500.0), rng.Uniform(-500.0, 500.0)};
      // Include degenerate (zero-length) segments.
      segments[i].b = trial % 7 == 0
                          ? segments[i].a
                          : geo::Point{rng.Uniform(-500.0, 500.0),
                                       rng.Uniform(-500.0, 500.0)};
      ax[i] = segments[i].a.x;
      ay[i] = segments[i].a.y;
      bx[i] = segments[i].b.x;
      by[i] = segments[i].b.y;
    }
    geo::Point q{rng.Uniform(-600.0, 600.0), rng.Uniform(-600.0, 600.0)};
    geo::DistancesToSegments(ax.data(), ay.data(), bx.data(), by.data(), n,
                             q.x, q.y, batched.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(batched[i], segments[i].DistanceTo(q))
          << "lane " << i << " trial " << trial;
    }
  }
}

TEST(GeoKernelEquivalenceTest, SegmentDistancesMatchScalarOnRoadNetwork) {
  // Real geometry: every segment of the datagen road network against
  // every point of a simulated track.
  datagen::World world = MakeWorld();
  datagen::DatasetFactory factory(&world, /*seed=*/772);
  datagen::Dataset drive = factory.SeattleDrive(/*hours=*/0.1);
  ASSERT_FALSE(drive.tracks.empty());
  const road::RoadNetwork& roads = world.roads;
  const size_t m = roads.seg_ax().size();
  ASSERT_GT(m, 0u);
  std::vector<double> batched(m);
  size_t checked = 0;
  for (const core::GpsPoint& fix : drive.tracks.front().points) {
    if (++checked > 25) break;  // bounded: m distances per point
    geo::DistancesToSegments(roads.seg_ax().data(), roads.seg_ay().data(),
                             roads.seg_bx().data(), roads.seg_by().data(), m,
                             fix.position.x, fix.position.y, batched.data());
    for (size_t s = 0; s < m; ++s) {
      EXPECT_EQ(batched[s],
                roads.segment(static_cast<core::PlaceId>(s))
                    .shape.DistanceTo(fix.position));
    }
  }
}

TEST(GeoKernelEquivalenceTest, PointDistancesMatchScalarFuzz) {
  common::Rng rng(43);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = static_cast<size_t>(rng.UniformInt(1, 64));
    std::vector<geo::Point> points(n);
    std::vector<double> xs(n), ys(n), batched(n);
    for (size_t i = 0; i < n; ++i) {
      points[i] = {rng.Uniform(-500.0, 500.0), rng.Uniform(-500.0, 500.0)};
      xs[i] = points[i].x;
      ys[i] = points[i].y;
    }
    geo::Point q{rng.Uniform(-600.0, 600.0), rng.Uniform(-600.0, 600.0)};
    geo::DistancesToPoints(xs.data(), ys.data(), n, q.x, q.y,
                           batched.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(batched[i], q.DistanceTo(points[i]));
    }
  }
}

// --- poi Gaussian kernel ---------------------------------------------

TEST(PoiKernelEquivalenceTest, GaussianDensitiesMatchScalarFormula) {
  common::Rng rng(44);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = static_cast<size_t>(rng.UniformInt(1, 40));
    size_t num_cat = static_cast<size_t>(rng.UniformInt(1, 6));
    std::vector<double> px(n), py(n), two_sigma2(n), norm(n);
    std::vector<int32_t> cat(n);
    for (size_t i = 0; i < n; ++i) {
      px[i] = rng.Uniform(-200.0, 200.0);
      py[i] = rng.Uniform(-200.0, 200.0);
      double sigma = rng.Uniform(5.0, 80.0);
      two_sigma2[i] = 2.0 * sigma * sigma;
      norm[i] = 2.0 * M_PI * sigma * sigma;
      cat[i] = static_cast<int32_t>(
          rng.UniformInt(0, static_cast<int>(num_cat) - 1));
    }
    double qx = rng.Uniform(-250.0, 250.0);
    double qy = rng.Uniform(-250.0, 250.0);
    std::vector<double> batched(num_cat, 0.0);
    poi::AccumulateGaussianDensities(px.data(), py.data(), two_sigma2.data(),
                                     norm.data(), cat.data(), n, qx, qy,
                                     batched.data());
    // Scalar reference: the seed's per-POI accumulation, same order.
    std::vector<double> scalar(num_cat, 0.0);
    for (size_t i = 0; i < n; ++i) {
      double dx = qx - px[i];
      double dy = qy - py[i];
      double d2 = dx * dx + dy * dy;
      scalar[static_cast<size_t>(cat[i])] +=
          std::exp(-d2 / two_sigma2[i]) / norm[i];
    }
    for (size_t c = 0; c < num_cat; ++c) {
      EXPECT_EQ(batched[c], scalar[c]) << "category " << c;
    }
  }
}

TEST(PoiKernelEquivalenceTest, PrecomputedCellsMatchGatherPerCell) {
  // The ctor's row-slab precompute against a literal Neighborhood
  // gather per cell (the seed's shape) — every cell, every category.
  datagen::World world = MakeWorld();
  poi::ObservationModelConfig config;
  poi::PoiObservationModel model(&world.pois, config);
  const auto& grid = model.grid();
  const size_t num_cat = world.pois.num_categories();
  std::vector<double> gx, gy, gs2, gn, expected;
  std::vector<int32_t> gc;
  for (size_t cy = 0; cy < grid.rows(); ++cy) {
    for (size_t cx = 0; cx < grid.cols(); ++cx) {
      geo::Point center = grid.CellCenter(cx, cy);
      gx.clear();
      gy.clear();
      gs2.clear();
      gn.clear();
      gc.clear();
      for (core::PlaceId id : grid.Neighborhood(center, config.neighbor_ring)) {
        const poi::Poi& p = world.pois.Get(id);
        double sigma = model.SigmaFor(p.category);
        gx.push_back(p.position.x);
        gy.push_back(p.position.y);
        gs2.push_back(2.0 * sigma * sigma);
        gn.push_back(2.0 * M_PI * sigma * sigma);
        gc.push_back(static_cast<int32_t>(p.category));
      }
      expected.assign(num_cat, 0.0);
      poi::AccumulateGaussianDensities(gx.data(), gy.data(), gs2.data(),
                                       gn.data(), gc.data(), gx.size(),
                                       center.x, center.y, expected.data());
      std::span<const double> cell = model.CellDensities(cx, cy);
      for (size_t c = 0; c < num_cat; ++c) {
        EXPECT_EQ(cell[c], expected[c]) << "cell " << cx << "," << cy;
      }
    }
  }
}

// --- flat Viterbi ----------------------------------------------------

// The seed's nested-vector Viterbi, kept verbatim as the reference.
hmm::ViterbiResult ReferenceViterbi(const hmm::HmmModel& model,
                                    const hmm::EmissionMatrix& emissions) {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  auto safe_log = [](double p) { return p > 0.0 ? std::log(p) : kNegInf; };
  const size_t n = model.num_states();
  const size_t t_max = emissions.rows();
  auto effective_row = [&](size_t t) {
    std::vector<double> row(emissions.Row(t).begin(),
                            emissions.Row(t).end());
    double sum = 0.0;
    for (double v : row) sum += v;
    if (sum <= 0.0) {
      for (double& v : row) v = 1.0 / static_cast<double>(n);
    }
    return row;
  };
  std::vector<std::vector<double>> delta(t_max, std::vector<double>(n));
  std::vector<std::vector<size_t>> psi(t_max, std::vector<size_t>(n, 0));
  std::vector<double> b0 = effective_row(0);
  for (size_t i = 0; i < n; ++i) {
    delta[0][i] = safe_log(model.initial[i]) + safe_log(b0[i]);
  }
  for (size_t t = 1; t < t_max; ++t) {
    std::vector<double> bt = effective_row(t);
    for (size_t j = 0; j < n; ++j) {
      double best = kNegInf;
      size_t best_i = 0;
      for (size_t i = 0; i < n; ++i) {
        double v = delta[t - 1][i] + safe_log(model.transition[i][j]);
        if (v > best) {
          best = v;
          best_i = i;
        }
      }
      delta[t][j] = best + safe_log(bt[j]);
      psi[t][j] = best_i;
    }
  }
  hmm::ViterbiResult result;
  size_t best_state = 0;
  double best = kNegInf;
  for (size_t i = 0; i < n; ++i) {
    if (delta[t_max - 1][i] > best) {
      best = delta[t_max - 1][i];
      best_state = i;
    }
  }
  result.log_probability = best;
  result.states.resize(t_max);
  result.states[t_max - 1] = best_state;
  for (size_t t = t_max - 1; t > 0; --t) {
    result.states[t - 1] = psi[t][result.states[t]];
  }
  return result;
}

TEST(ViterbiEquivalenceTest, FlatMatchesNestedReferenceFuzz) {
  common::Rng rng(45);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = static_cast<size_t>(rng.UniformInt(1, 8));
    hmm::HmmModel model;
    model.initial.assign(n, 1.0 / static_cast<double>(n));
    model.transition = hmm::MakeDefaultTransition(n, 0.6);
    size_t t_max = static_cast<size_t>(rng.UniformInt(1, 40));
    hmm::EmissionMatrix emissions;
    emissions.Reset(n);
    for (size_t t = 0; t < t_max; ++t) {
      std::span<double> row = emissions.AppendRow();
      // Every ~9th row all-zero: exercises the uniform fallback.
      if (trial % 3 == 0 && t % 9 == 8) continue;
      for (double& e : row) e = rng.Uniform(0.0, 1.0);
    }
    auto flat = hmm::Viterbi(model, emissions);
    ASSERT_TRUE(flat.ok()) << flat.status().ToString();
    hmm::ViterbiResult reference = ReferenceViterbi(model, emissions);
    EXPECT_EQ(flat->states, reference.states) << "trial " << trial;
    EXPECT_EQ(flat->log_probability, reference.log_probability);
  }
}

// --- EmissionMatrix shape/validation edges ---------------------------

TEST(EmissionMatrixTest, FromRowsRejectsRaggedInput) {
  EXPECT_FALSE(hmm::EmissionMatrix::FromRows({{0.5, 0.5}, {0.1}}).ok());
  EXPECT_FALSE(
      hmm::EmissionMatrix::FromRows({{0.1}, {0.5, 0.5}, {0.2}}).ok());
}

TEST(EmissionMatrixTest, FromRowsAcceptsEmptyAndUniform) {
  auto empty = hmm::EmissionMatrix::FromRows({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  auto two = hmm::EmissionMatrix::FromRows({{0.2, 0.8}, {0.6, 0.4}});
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(two->rows(), 2u);
  EXPECT_EQ(two->cols(), 2u);
  EXPECT_EQ(two->At(1, 0), 0.6);
}

TEST(EmissionMatrixTest, ResetKeepsCapacityAcrossRefills) {
  hmm::EmissionMatrix m;
  m.Reset(4);
  for (int t = 0; t < 100; ++t) {
    for (double& e : m.AppendRow()) e = 0.25;
  }
  const double* data = m.data().data();
  m.Reset(4);
  EXPECT_EQ(m.rows(), 0u);
  for (int t = 0; t < 100; ++t) m.AppendRow();
  // Refilling to the old high-water mark reuses the same storage.
  EXPECT_EQ(m.data().data(), data);
}

TEST(EmissionMatrixTest, ViterbiRejectsShapeAndSignErrors) {
  hmm::HmmModel model;
  model.initial = {0.5, 0.5};
  model.transition = hmm::MakeDefaultTransition(2, 0.7);
  // Width mismatch vs. the model.
  auto wide = hmm::EmissionMatrix::FromRows({{0.2, 0.3, 0.5}});
  ASSERT_TRUE(wide.ok());
  EXPECT_FALSE(hmm::Viterbi(model, *wide).ok());
  // Negative emission.
  auto negative = hmm::EmissionMatrix::FromRows({{0.5, -0.1}});
  ASSERT_TRUE(negative.ok());
  EXPECT_FALSE(hmm::Viterbi(model, *negative).ok());
}

}  // namespace
}  // namespace semitri
