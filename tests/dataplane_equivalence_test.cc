// Bit-identical equivalence of the SoA data plane against the seed
// scalar implementation.
//
// The golden CRC-32 fingerprints below were captured from the
// pre-refactor (AoS / nested-vector) pipeline over every datagen
// preset, offline and streaming. The SoA batches, flat EmissionMatrix,
// and batched geo/poi kernels must reproduce every annotation bit for
// bit: the fingerprint covers the full serialized PipelineResult
// (cleaned trace, episodes, all three annotation layers, every score
// and confidence string), so a single ULP of drift anywhere in the
// data plane fails the suite.

#include <cstdio>
#include <vector>

#include <gtest/gtest.h>

#include "common/serial.h"
#include "core/pipeline.h"
#include "core/state_serialization.h"
#include "datagen/presets.h"
#include "datagen/world.h"
#include "stream/annotation_session.h"

namespace semitri {
namespace {

datagen::World MakeWorld() {
  datagen::WorldConfig config;
  config.seed = 9001;
  config.extent_meters = 4000.0;
  config.num_pois = 600;
  return datagen::WorldGenerator(config).Generate();
}

uint32_t Fingerprint(const std::vector<core::PipelineResult>& results,
                     uint32_t seed) {
  common::StateWriter w;
  for (const core::PipelineResult& result : results) {
    core::SaveState(result, &w);
  }
  return common::Crc32(w.data(), seed);
}

// Offline fingerprint: ProcessStream over every track of the dataset.
uint32_t OfflineFingerprint(const core::SemiTriPipeline& pipeline,
                            const datagen::Dataset& data) {
  uint32_t crc = 0;
  for (const datagen::SimulatedTrack& track : data.tracks) {
    auto results = pipeline.ProcessStream(
        track.object_id, track.points,
        static_cast<core::TrajectoryId>(track.object_id) * 1000);
    EXPECT_TRUE(results.ok()) << results.status().ToString();
    if (!results.ok()) return 0;
    crc = Fingerprint(*results, crc);
  }
  return crc;
}

// Streaming fingerprint: the same corpus fed fix-by-fix through
// AnnotationSessions (keep_results), fingerprinting the finalized
// results in arrival order.
uint32_t StreamingFingerprint(const core::SemiTriPipeline& pipeline,
                              const datagen::Dataset& data) {
  uint32_t crc = 0;
  for (const datagen::SimulatedTrack& track : data.tracks) {
    stream::SessionConfig config;
    config.keep_results = true;
    stream::AnnotationSession session(
        &pipeline, track.object_id, config,
        static_cast<core::TrajectoryId>(track.object_id) * 1000);
    for (const core::GpsPoint& fix : track.points) {
      auto fed = session.Feed(fix);
      EXPECT_TRUE(fed.ok()) << fed.status().ToString();
      if (!fed.ok()) return 0;
    }
    EXPECT_TRUE(session.Flush().ok());
    crc = Fingerprint(session.results(), crc);
  }
  return crc;
}

class DataplaneEquivalenceTest : public ::testing::Test {
 protected:
  DataplaneEquivalenceTest()
      : world_(MakeWorld()),
        factory_(&world_, /*seed=*/9002),
        pipeline_(&world_.regions, &world_.roads, &world_.pois) {}

  datagen::World world_;
  datagen::DatasetFactory factory_;
  core::SemiTriPipeline pipeline_;
};

// Golden CRCs captured from the seed (pre-SoA) implementation. Do NOT
// regenerate these to make a failing refactor pass: a mismatch means
// the data plane changed observable output.
constexpr uint32_t kGoldenLausanneTaxis = 2829730864u;
constexpr uint32_t kGoldenMilanCars = 3820830064u;
constexpr uint32_t kGoldenSeattleDrive = 830526352u;
constexpr uint32_t kGoldenNokiaPeople = 3846160842u;
constexpr uint32_t kGoldenNokiaStreaming = 3846160842u;

TEST_F(DataplaneEquivalenceTest, LausanneTaxisOffline) {
  uint32_t crc = OfflineFingerprint(
      pipeline_, factory_.LausanneTaxis(/*num_taxis=*/2, /*num_days=*/3));
  std::printf("GOLDEN LausanneTaxis %uu\n", crc);
  EXPECT_EQ(crc, kGoldenLausanneTaxis);
}

TEST_F(DataplaneEquivalenceTest, MilanPrivateCarsOffline) {
  uint32_t crc = OfflineFingerprint(
      pipeline_, factory_.MilanPrivateCars(/*num_cars=*/20, /*num_days=*/3));
  std::printf("GOLDEN MilanCars %uu\n", crc);
  EXPECT_EQ(crc, kGoldenMilanCars);
}

TEST_F(DataplaneEquivalenceTest, SeattleDriveOffline) {
  uint32_t crc = OfflineFingerprint(
      pipeline_,
      factory_.SeattleDrive(/*hours=*/1.0, /*gps_sigma_meters=*/8.0));
  std::printf("GOLDEN SeattleDrive %uu\n", crc);
  EXPECT_EQ(crc, kGoldenSeattleDrive);
}

TEST_F(DataplaneEquivalenceTest, NokiaPeopleOffline) {
  uint32_t crc = OfflineFingerprint(
      pipeline_, factory_.NokiaPeople(/*num_users=*/3, /*num_days=*/3));
  std::printf("GOLDEN NokiaPeople %uu\n", crc);
  EXPECT_EQ(crc, kGoldenNokiaPeople);
}

TEST_F(DataplaneEquivalenceTest, NokiaPeopleStreaming) {
  uint32_t crc = StreamingFingerprint(
      pipeline_, factory_.NokiaPeople(/*num_users=*/3, /*num_days=*/3));
  std::printf("GOLDEN NokiaStreaming %uu\n", crc);
  EXPECT_EQ(crc, kGoldenNokiaStreaming);
}

}  // namespace
}  // namespace semitri
