// Tests for personal-place discovery (home/work detection) and the
// semantic timeline composition.

#include <gtest/gtest.h>

#include "analytics/personal_places.h"
#include "analytics/timeline.h"
#include "common/rng.h"
#include "datagen/presets.h"

namespace semitri::analytics {
namespace {

constexpr double kDay = 86400.0;
constexpr double kHour = 3600.0;

// A week of synthetic home/work/shop visits with GPS scatter.
std::vector<StopVisit> MakeWeek(common::Rng& rng) {
  std::vector<StopVisit> visits;
  geo::Point home{100, 100};
  geo::Point work{3000, 2500};
  geo::Point shop{1500, 900};
  for (int day = 0; day < 7; ++day) {
    double base = day * kDay;
    auto scattered = [&](geo::Point p) {
      return geo::Point{p.x + rng.Gaussian(0, 20),
                        p.y + rng.Gaussian(0, 20)};
    };
    // Night at home (00:00-08:00) and evening (19:00-24:00).
    visits.push_back({scattered(home), base, base + 8 * kHour});
    visits.push_back({scattered(home), base + 19 * kHour, base + 24 * kHour});
    if (day % 7 < 5) {
      // Weekday work 09:00-17:00.
      visits.push_back(
          {scattered(work), base + 9 * kHour, base + 17 * kHour});
    }
    if (day % 3 == 0) {
      visits.push_back(
          {scattered(shop), base + 17.5 * kHour, base + 18.5 * kHour});
    }
  }
  return visits;
}

TEST(PersonalPlacesTest, DetectsHomeWorkAndShop) {
  common::Rng rng(3);
  PersonalPlaceDetector detector;
  std::vector<PersonalPlace> places = detector.Detect(MakeWeek(rng));
  ASSERT_EQ(places.size(), 3u);
  // Ordered by dwell: home > work > shop.
  EXPECT_EQ(places[0].label, "home");
  EXPECT_EQ(places[1].label, "work");
  EXPECT_EQ(places[2].label, "place-1");
  EXPECT_NEAR(places[0].center.x, 100.0, 25.0);
  EXPECT_NEAR(places[1].center.x, 3000.0, 25.0);
  EXPECT_EQ(places[0].num_visits, 14u);
  EXPECT_EQ(places[1].num_visits, 5u);
}

TEST(PersonalPlacesTest, OvernightDwellDrivesHome) {
  common::Rng rng(5);
  std::vector<PersonalPlace> places =
      PersonalPlaceDetector().Detect(MakeWeek(rng));
  ASSERT_GE(places.size(), 2u);
  EXPECT_GT(places[0].overnight_dwell_seconds,
            places[1].overnight_dwell_seconds);
  EXPECT_GT(places[1].workhour_dwell_seconds,
            places[0].workhour_dwell_seconds);
}

TEST(PersonalPlacesTest, MinVisitsFilters) {
  PersonalPlacesConfig config;
  config.min_visits = 3;
  PersonalPlaceDetector detector(config);
  std::vector<StopVisit> visits = {
      {{0, 0}, 0, 3600},
      {{5, 5}, 86400, 90000},
      {{2, 2}, 2 * 86400.0, 2 * 86400.0 + 3600},
      {{5000, 5000}, 3600, 7200},  // single visit elsewhere
  };
  std::vector<PersonalPlace> places = detector.Detect(visits);
  ASSERT_EQ(places.size(), 1u);
  EXPECT_EQ(places[0].num_visits, 3u);
}

TEST(PersonalPlacesTest, EmptyInput) {
  EXPECT_TRUE(PersonalPlaceDetector().Detect({}).empty());
}

TEST(PersonalPlacesTest, PlaceForLookup) {
  common::Rng rng(7);
  std::vector<PersonalPlace> places =
      PersonalPlaceDetector().Detect(MakeWeek(rng));
  size_t at_home =
      PersonalPlaceDetector::PlaceFor(places, {105, 95}, 150.0);
  ASSERT_NE(at_home, SIZE_MAX);
  EXPECT_EQ(places[at_home].label, "home");
  EXPECT_EQ(PersonalPlaceDetector::PlaceFor(places, {9000, 9000}, 150.0),
            SIZE_MAX);
}

TEST(PersonalPlacesTest, CollectStopVisits) {
  core::Episode stop;
  stop.kind = core::EpisodeKind::kStop;
  stop.center = {10, 20};
  stop.time_in = 100;
  stop.time_out = 500;
  core::Episode move;
  move.kind = core::EpisodeKind::kMove;
  auto visits = CollectStopVisits({stop, move, stop});
  ASSERT_EQ(visits.size(), 2u);
  EXPECT_DOUBLE_EQ(visits[0].center.x, 10.0);
  EXPECT_DOUBLE_EQ(visits[1].time_out, 500.0);
}

TEST(TimelineTest, ClockFormatting) {
  EXPECT_EQ(FormatClock(0.0), "00:00");
  EXPECT_EQ(FormatClock(9.5 * kHour), "09:30");
  EXPECT_EQ(FormatClock(kDay + 13 * kHour + 59 * 60), "13:59");
}

// End-to-end: a simulated commuter week yields home/work-labeled
// timelines.
TEST(TimelineTest, CommuterWeekGetsHomeWorkLabels) {
  datagen::WorldConfig wc;
  wc.seed = 77;
  wc.extent_meters = 5000.0;
  wc.num_pois = 1000;
  datagen::World world = datagen::WorldGenerator(wc).Generate();
  datagen::DatasetFactory factory(&world, 78);
  datagen::PersonSpec spec = factory.MakePersonSpec(0);
  datagen::SimulatedTrack week = factory.SimulatePersonDays(0, spec, 7);

  core::SemiTriPipeline pipeline(&world.regions, &world.roads, &world.pois);
  auto results = pipeline.ProcessStream(0, week.points);
  ASSERT_TRUE(results.ok());
  ASSERT_GE(results->size(), 5u);

  std::vector<StopVisit> visits;
  for (const core::PipelineResult& day : *results) {
    auto day_visits = CollectStopVisits(day.episodes);
    visits.insert(visits.end(), day_visits.begin(), day_visits.end());
  }
  std::vector<PersonalPlace> places =
      PersonalPlaceDetector().Detect(visits);
  bool has_home = false, has_work = false;
  for (const auto& p : places) {
    if (p.label == "home") has_home = true;
    if (p.label == "work") has_work = true;
  }
  EXPECT_TRUE(has_home);
  EXPECT_TRUE(has_work);

  // Timelines alternate stops and moves and carry the labels.
  size_t home_entries = 0;
  for (const core::PipelineResult& day : *results) {
    auto timeline =
        BuildTimeline(day, &world.regions, &world.pois, &places);
    ASSERT_EQ(timeline.size(), day.episodes.size());
    for (size_t i = 0; i < timeline.size(); ++i) {
      EXPECT_EQ(timeline[i].kind, day.episodes[i].kind);
      if (timeline[i].place == "home") ++home_entries;
      if (timeline[i].kind == core::EpisodeKind::kMove) {
        EXPECT_EQ(timeline[i].place, "road");
      }
    }
  }
  EXPECT_GE(home_entries, results->size());  // at least one home/day
}

}  // namespace
}  // namespace semitri::analytics
