// Tests for common::RetryPolicy: deterministic capped-exponential
// backoff with jitter, deadline-aware Run(), retryable-code
// classification, and the on_backoff hook the shard router hangs its
// failure-detector ticks on. Everything runs on a FakeClock — sleeping
// advances fake time, so the whole retry timeline is asserted exactly.

#include "common/retry.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/clock.h"
#include "common/exec_control.h"
#include "common/status.h"

namespace semitri::common {
namespace {

TEST(RetryPolicyTest, ClassifiesRetryableCodes) {
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::Unavailable("down")));
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::ResourceExhausted("full")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::InvalidArgument("bad")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::NotFound("gone")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::OK()));
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicyConfig config;
  config.initial_backoff_seconds = 0.1;
  config.backoff_multiplier = 2.0;
  config.max_backoff_seconds = 0.5;
  config.jitter_fraction = 0.0;  // exact curve
  RetryPolicy policy(config);

  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(0), 0.0);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(1), 0.1);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(2), 0.2);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(3), 0.4);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(4), 0.5);   // capped
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(10), 0.5);  // stays capped
}

TEST(RetryPolicyTest, JitterIsBoundedAndDeterministic) {
  RetryPolicyConfig config;
  config.initial_backoff_seconds = 1.0;
  config.backoff_multiplier = 1.0;
  config.max_backoff_seconds = 1.0;
  config.jitter_fraction = 0.25;
  RetryPolicy policy(config);
  RetryPolicy twin(config);

  bool spread = false;
  double first = policy.BackoffSeconds(1, /*stream=*/0);
  for (uint64_t stream = 0; stream < 32; ++stream) {
    for (size_t retry = 1; retry <= 4; ++retry) {
      double b = policy.BackoffSeconds(retry, stream);
      EXPECT_GE(b, 1.0);
      EXPECT_LT(b, 1.25);
      // Same (seed, stream, retry) always replays the same backoff.
      EXPECT_DOUBLE_EQ(b, twin.BackoffSeconds(retry, stream));
      if (b != first) spread = true;
    }
  }
  // Different streams decorrelate: not every draw is identical.
  EXPECT_TRUE(spread);
}

TEST(RetryPolicyTest, SucceedsAfterTransientFailures) {
  FakeClock clock;
  RetryPolicyConfig config;
  config.max_attempts = 5;
  config.jitter_fraction = 0.0;
  RetryPolicy policy(config, &clock);

  size_t calls = 0;
  auto outcome = policy.Run([&]() -> Status {
    ++calls;
    return calls < 3 ? Status::Unavailable("warming up") : Status::OK();
  });
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_TRUE(outcome.recovered);
  // Slept exactly backoff(1) + backoff(2), advancing the fake clock.
  EXPECT_DOUBLE_EQ(outcome.slept_seconds,
                   policy.BackoffSeconds(1) + policy.BackoffSeconds(2));
  EXPECT_DOUBLE_EQ(static_cast<double>(clock.NowNanos()) * 1e-9,
                   outcome.slept_seconds);
}

TEST(RetryPolicyTest, FirstTrySuccessIsNotRecovered) {
  FakeClock clock;
  RetryPolicy policy({}, &clock);
  auto outcome = policy.Run([]() { return Status::OK(); });
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_FALSE(outcome.recovered);
  EXPECT_DOUBLE_EQ(outcome.slept_seconds, 0.0);
}

TEST(RetryPolicyTest, NonRetryableFailsFast) {
  FakeClock clock;
  RetryPolicyConfig config;
  config.max_attempts = 6;
  RetryPolicy policy(config, &clock);

  size_t calls = 0;
  auto outcome = policy.Run([&]() {
    ++calls;
    return Status::InvalidArgument("permanent");
  });
  EXPECT_EQ(outcome.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(clock.NowNanos(), 0);
}

TEST(RetryPolicyTest, ExhaustsAttemptsAndReportsLastError) {
  FakeClock clock;
  RetryPolicyConfig config;
  config.max_attempts = 4;
  config.jitter_fraction = 0.0;
  RetryPolicy policy(config, &clock);

  size_t calls = 0;
  auto outcome = policy.Run([&]() {
    ++calls;
    return Status::Unavailable("still down");
  });
  EXPECT_EQ(outcome.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(outcome.attempts, 4u);
  EXPECT_EQ(calls, 4u);
  // Three backoffs: after attempts 1, 2 and 3.
  EXPECT_DOUBLE_EQ(outcome.slept_seconds, policy.BackoffSeconds(1) +
                                              policy.BackoffSeconds(2) +
                                              policy.BackoffSeconds(3));
}

TEST(RetryPolicyTest, DeadlineClampsBackoffAndStopsRetrying) {
  FakeClock clock;
  RetryPolicyConfig config;
  config.max_attempts = 10;
  config.initial_backoff_seconds = 1.0;
  config.backoff_multiplier = 1.0;
  config.max_backoff_seconds = 1.0;
  config.jitter_fraction = 0.0;
  RetryPolicy policy(config, &clock);

  ExecControl exec;
  exec.clock = &clock;
  exec.deadline = Deadline::After(1.5, &clock);

  size_t calls = 0;
  auto outcome = policy.Run([&]() {
    ++calls;
    return Status::Unavailable("down");
  }, &exec);
  // Attempt 1 at t=0, full 1 s backoff; attempt 2 at t=1, backoff
  // clamped to the 0.5 s remaining; the pre-attempt deadline check at
  // t=1.5 then fails without burning another attempt.
  EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(outcome.attempts, 2u);
  EXPECT_EQ(calls, 2u);
  EXPECT_DOUBLE_EQ(outcome.slept_seconds, 1.5);
}

TEST(RetryPolicyTest, ExpiredDeadlineSkipsTheFirstAttempt) {
  FakeClock clock;
  RetryPolicy policy({}, &clock);
  ExecControl exec;
  exec.clock = &clock;
  exec.deadline = Deadline::After(1.0, &clock);
  clock.Advance(2.0);

  size_t calls = 0;
  auto outcome = policy.Run([&]() {
    ++calls;
    return Status::OK();
  }, &exec);
  EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(outcome.attempts, 0u);
  EXPECT_EQ(calls, 0u);
}

TEST(RetryPolicyTest, CancellationStopsBetweenAttempts) {
  FakeClock clock;
  RetryPolicyConfig config;
  config.max_attempts = 10;
  RetryPolicy policy(config, &clock);
  ExecControl exec;
  exec.clock = &clock;

  size_t calls = 0;
  auto outcome = policy.Run([&]() {
    ++calls;
    if (calls == 2) exec.token.Cancel();
    return Status::Unavailable("down");
  }, &exec);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(calls, 2u);
}

TEST(RetryPolicyTest, OnBackoffHookRunsBeforeEverySleep) {
  FakeClock clock;
  RetryPolicyConfig config;
  config.max_attempts = 4;
  config.jitter_fraction = 0.0;
  RetryPolicy policy(config, &clock);

  std::vector<double> hook_times;
  auto outcome = policy.Run(
      []() { return Status::Unavailable("down"); },
      /*exec=*/nullptr, /*stream=*/0,
      [&]() {
        hook_times.push_back(static_cast<double>(clock.NowNanos()) * 1e-9);
      });
  EXPECT_FALSE(outcome.status.ok());
  // One hook call per backoff, fired before the sleep advances time —
  // this is where the shard cluster ticks its failure detector.
  ASSERT_EQ(hook_times.size(), 3u);
  EXPECT_DOUBLE_EQ(hook_times[0], 0.0);
  EXPECT_DOUBLE_EQ(hook_times[1], policy.BackoffSeconds(1));
  EXPECT_DOUBLE_EQ(hook_times[2],
                   policy.BackoffSeconds(1) + policy.BackoffSeconds(2));
}

}  // namespace
}  // namespace semitri::common
