// Tests for raw-trajectory identification: gap splitting, daily
// periods, minimum-size filters.

#include "traj/identification.h"

#include <gtest/gtest.h>

namespace semitri::traj {
namespace {

std::vector<core::GpsPoint> MakeStream(
    const std::vector<double>& times) {
  std::vector<core::GpsPoint> out;
  for (size_t i = 0; i < times.size(); ++i) {
    out.push_back({{static_cast<double>(i), 0.0}, times[i]});
  }
  return out;
}

IdentificationConfig Permissive() {
  IdentificationConfig c;
  c.min_points = 1;
  c.min_duration_seconds = 0.0;
  c.period_seconds = 0.0;
  return c;
}

TEST(IdentificationTest, SplitsAtGaps) {
  IdentificationConfig config = Permissive();
  config.max_gap_seconds = 100.0;
  TrajectoryIdentifier ident(config);
  auto trajectories =
      ident.Identify(1, MakeStream({0, 10, 20, 500, 510, 520}));
  ASSERT_EQ(trajectories.size(), 2u);
  EXPECT_EQ(trajectories[0].size(), 3u);
  EXPECT_EQ(trajectories[1].size(), 3u);
  EXPECT_EQ(trajectories[0].id, 0);
  EXPECT_EQ(trajectories[1].id, 1);
}

TEST(IdentificationTest, SplitsAtDayBoundary) {
  IdentificationConfig config = Permissive();
  config.max_gap_seconds = 0.0;  // gap splitting off
  config.period_seconds = 86400.0;
  TrajectoryIdentifier ident(config);
  auto trajectories = ident.Identify(
      1, MakeStream({86300, 86350, 86450, 86500}));
  ASSERT_EQ(trajectories.size(), 2u);
  EXPECT_EQ(trajectories[0].size(), 2u);
  EXPECT_EQ(trajectories[1].size(), 2u);
}

TEST(IdentificationTest, FiltersShortTrajectories) {
  IdentificationConfig config = Permissive();
  config.max_gap_seconds = 100.0;
  config.min_points = 3;
  TrajectoryIdentifier ident(config);
  auto trajectories =
      ident.Identify(1, MakeStream({0, 10, 500, 510, 520, 530}));
  ASSERT_EQ(trajectories.size(), 1u);
  EXPECT_EQ(trajectories[0].size(), 4u);
}

TEST(IdentificationTest, FiltersByDuration) {
  IdentificationConfig config = Permissive();
  config.max_gap_seconds = 100.0;
  config.min_duration_seconds = 50.0;
  TrajectoryIdentifier ident(config);
  // First chunk lasts 20 s, second 60 s.
  auto trajectories =
      ident.Identify(1, MakeStream({0, 10, 20, 500, 530, 560}));
  ASSERT_EQ(trajectories.size(), 1u);
  EXPECT_DOUBLE_EQ(trajectories[0].StartTime(), 500.0);
}

TEST(IdentificationTest, AssignsObjectAndSequentialIds) {
  IdentificationConfig config = Permissive();
  config.max_gap_seconds = 50.0;
  TrajectoryIdentifier ident(config);
  auto trajectories = ident.Identify(
      42, MakeStream({0, 10, 200, 210, 400, 410}), /*first_id=*/100);
  ASSERT_EQ(trajectories.size(), 3u);
  for (size_t i = 0; i < trajectories.size(); ++i) {
    EXPECT_EQ(trajectories[i].object_id, 42);
    EXPECT_EQ(trajectories[i].id, 100 + static_cast<int64_t>(i));
  }
}

TEST(IdentificationTest, EmptyStream) {
  TrajectoryIdentifier ident(Permissive());
  EXPECT_TRUE(ident.Identify(1, {}).empty());
}

TEST(IdentificationTest, DefaultsProduceDailyTrajectories) {
  // A stream spanning three days with continuous 60 s sampling splits
  // into three daily trajectories under the default config.
  std::vector<core::GpsPoint> stream;
  for (double t = 0; t < 3 * 86400.0; t += 60.0) {
    stream.push_back({{t * 0.1, 0.0}, t});
  }
  TrajectoryIdentifier ident;
  auto trajectories = ident.Identify(1, stream);
  EXPECT_EQ(trajectories.size(), 3u);
}


TEST(IdentificationTest, SplitsAtSpatialJumps) {
  IdentificationConfig config = Permissive();
  config.max_gap_seconds = 0.0;
  config.max_spatial_gap_meters = 100.0;
  TrajectoryIdentifier ident(config);
  std::vector<core::GpsPoint> stream = {
      {{0, 0}, 0},  {{10, 0}, 10},  {{20, 0}, 20},
      {{5000, 0}, 30},  // teleport: receiver was off on a train
      {{5010, 0}, 40}, {{5020, 0}, 50},
  };
  auto trajectories = ident.Identify(1, stream);
  ASSERT_EQ(trajectories.size(), 2u);
  EXPECT_EQ(trajectories[0].size(), 3u);
  EXPECT_DOUBLE_EQ(trajectories[1].points[0].position.x, 5000.0);
}

}  // namespace
}  // namespace semitri::traj
