// Tests for the Semantic Trajectory Store: table semantics, CSV
// persistence round-trips, write-through mode.

#include "store/semantic_trajectory_store.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace semitri::store {
namespace {

namespace fs = std::filesystem;

core::RawTrajectory MakeTrajectory(core::TrajectoryId id,
                                   core::ObjectId object, int n) {
  core::RawTrajectory t;
  t.id = id;
  t.object_id = object;
  for (int i = 0; i < n; ++i) {
    t.points.push_back({{i * 2.0, i * 3.0}, i * 10.0});
  }
  return t;
}

std::vector<core::Episode> MakeEpisodes(const core::RawTrajectory& t) {
  core::Episode stop;
  stop.kind = core::EpisodeKind::kStop;
  stop.begin = 0;
  stop.end = t.size() / 2;
  stop.time_in = 0;
  stop.time_out = 40;
  stop.center = {1, 1};
  stop.bounds = geo::BoundingBox({0, 0}, {2, 2});
  core::Episode move = stop;
  move.kind = core::EpisodeKind::kMove;
  move.begin = t.size() / 2;
  move.end = t.size();
  return {stop, move};
}

core::StructuredSemanticTrajectory MakeInterpretation(
    core::TrajectoryId id, const std::string& name) {
  core::StructuredSemanticTrajectory t;
  t.trajectory_id = id;
  t.object_id = 9;
  t.interpretation = name;
  core::SemanticEpisode ep;
  ep.kind = core::EpisodeKind::kStop;
  ep.place = {core::PlaceKind::kRegion, 42};
  ep.time_in = 5;
  ep.time_out = 15;
  ep.AddAnnotation("landuse", "1.2");
  ep.AddAnnotation("region_name", "EPFL campus");
  t.episodes.push_back(ep);
  return t;
}

TEST(StoreTest, PutAndGetRoundTrip) {
  SemanticTrajectoryStore store;
  core::RawTrajectory t = MakeTrajectory(1, 9, 10);
  ASSERT_TRUE(store.PutRawTrajectory(t).ok());
  ASSERT_TRUE(store.PutEpisodes(1, MakeEpisodes(t)).ok());
  ASSERT_TRUE(store.PutInterpretation(MakeInterpretation(1, "region")).ok());

  auto raw = store.GetRawTrajectory(1);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->size(), 10u);
  EXPECT_EQ(raw->object_id, 9);

  auto episodes = store.GetEpisodes(1);
  ASSERT_TRUE(episodes.ok());
  EXPECT_EQ(episodes->size(), 2u);

  auto interp = store.GetInterpretation(1, "region");
  ASSERT_TRUE(interp.ok());
  EXPECT_EQ(interp->episodes[0].FindAnnotation("region_name"),
            "EPFL campus");

  EXPECT_FALSE(store.GetRawTrajectory(2).ok());
  EXPECT_FALSE(store.GetInterpretation(1, "line").ok());
}

TEST(StoreTest, CountsAndOverwrite) {
  SemanticTrajectoryStore store;
  core::RawTrajectory t = MakeTrajectory(1, 9, 10);
  ASSERT_TRUE(store.PutRawTrajectory(t).ok());
  EXPECT_EQ(store.num_gps_records(), 10u);
  // Overwrite with a shorter version.
  core::RawTrajectory shorter = MakeTrajectory(1, 9, 4);
  ASSERT_TRUE(store.PutRawTrajectory(shorter).ok());
  EXPECT_EQ(store.num_gps_records(), 4u);
  EXPECT_EQ(store.num_trajectories(), 1u);

  ASSERT_TRUE(store.PutInterpretation(MakeInterpretation(1, "region")).ok());
  ASSERT_TRUE(store.PutInterpretation(MakeInterpretation(1, "region")).ok());
  EXPECT_EQ(store.num_semantic_episodes(), 1u);
}

TEST(StoreTest, RejectsUnnamedInterpretation) {
  SemanticTrajectoryStore store;
  core::StructuredSemanticTrajectory t;
  t.trajectory_id = 1;
  EXPECT_EQ(store.PutInterpretation(t).code(),
            common::StatusCode::kInvalidArgument);
}

TEST(StoreTest, ListTrajectories) {
  SemanticTrajectoryStore store;
  ASSERT_TRUE(store.PutRawTrajectory(MakeTrajectory(3, 1, 5)).ok());
  ASSERT_TRUE(store.PutRawTrajectory(MakeTrajectory(1, 1, 5)).ok());
  EXPECT_EQ(store.ListTrajectories(),
            (std::vector<core::TrajectoryId>{1, 3}));
}

TEST(StoreTest, SaveLoadCsvRoundTrip) {
  std::string dir = (fs::temp_directory_path() / "semitri_store_test").string();
  fs::remove_all(dir);
  {
    SemanticTrajectoryStore store;
    core::RawTrajectory t = MakeTrajectory(7, 2, 6);
    ASSERT_TRUE(store.PutRawTrajectory(t).ok());
    ASSERT_TRUE(store.PutEpisodes(7, MakeEpisodes(t)).ok());
    ASSERT_TRUE(
        store.PutInterpretation(MakeInterpretation(7, "region")).ok());
    ASSERT_TRUE(
        store.PutInterpretation(MakeInterpretation(7, "point")).ok());
    ASSERT_TRUE(store.SaveCsv(dir).ok());
  }
  SemanticTrajectoryStore loaded;
  ASSERT_TRUE(loaded.LoadCsv(dir).ok());
  EXPECT_EQ(loaded.num_trajectories(), 1u);
  EXPECT_EQ(loaded.num_gps_records(), 6u);
  EXPECT_EQ(loaded.num_episodes(), 2u);
  EXPECT_EQ(loaded.num_semantic_episodes(), 2u);

  auto raw = loaded.GetRawTrajectory(7);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->object_id, 2);
  EXPECT_NEAR(raw->points[3].position.x, 6.0, 1e-6);
  EXPECT_NEAR(raw->points[3].time, 30.0, 1e-3);

  auto episodes = loaded.GetEpisodes(7);
  ASSERT_TRUE(episodes.ok());
  EXPECT_EQ((*episodes)[0].kind, core::EpisodeKind::kStop);
  EXPECT_EQ((*episodes)[1].kind, core::EpisodeKind::kMove);

  auto interp = loaded.GetInterpretation(7, "region");
  ASSERT_TRUE(interp.ok());
  const auto& ep = interp->episodes[0];
  EXPECT_EQ(ep.place.kind, core::PlaceKind::kRegion);
  EXPECT_EQ(ep.place.id, 42);
  EXPECT_EQ(ep.FindAnnotation("landuse"), "1.2");
  EXPECT_EQ(ep.FindAnnotation("region_name"), "EPFL campus");
  fs::remove_all(dir);
}

TEST(StoreTest, LoadMissingDirectoryFails) {
  SemanticTrajectoryStore store;
  EXPECT_EQ(store.LoadCsv("/nonexistent/semitri").code(),
            common::StatusCode::kIoError);
}

TEST(StoreTest, WriteThroughAppendsFiles) {
  std::string dir =
      (fs::temp_directory_path() / "semitri_write_through").string();
  fs::remove_all(dir);
  StoreConfig config;
  config.write_through_dir = dir;
  SemanticTrajectoryStore store(config);
  core::RawTrajectory t = MakeTrajectory(1, 1, 5);
  ASSERT_TRUE(store.PutRawTrajectory(t).ok());
  ASSERT_TRUE(store.PutEpisodes(1, MakeEpisodes(t)).ok());
  ASSERT_TRUE(store.PutInterpretation(MakeInterpretation(1, "line")).ok());
  EXPECT_TRUE(fs::exists(dir + "/gps.csv"));
  EXPECT_TRUE(fs::exists(dir + "/episodes.csv"));
  EXPECT_TRUE(fs::exists(dir + "/semantic_episodes.csv"));
  // Header + 5 rows.
  std::ifstream in(dir + "/gps.csv");
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 6u);
  fs::remove_all(dir);
}

TEST(StoreTest, TornFinalRowIsToleratedAndCounted) {
  std::string dir = (fs::temp_directory_path() / "semitri_torn_row").string();
  fs::remove_all(dir);
  {
    SemanticTrajectoryStore store;
    core::RawTrajectory t = MakeTrajectory(1, 9, 5);
    ASSERT_TRUE(store.PutRawTrajectory(t).ok());
    ASSERT_TRUE(store.SaveCsv(dir).ok());
  }
  // Simulate a crash mid-append: a half-written record with no trailing
  // newline at the end of gps.csv.
  {
    std::ofstream out(dir + "/gps.csv", std::ios::app);
    out << "1,99,3.25";  // torn: too few fields, no '\n'
  }
  SemanticTrajectoryStore loaded;
  ASSERT_TRUE(loaded.LoadCsv(dir).ok());
  EXPECT_EQ(loaded.torn_rows_tolerated(), 1u);
  EXPECT_EQ(loaded.num_gps_records(), 5u);  // the torn row was dropped

  // The same malformed row *with* a trailing newline is a fully written
  // corrupt record — that is still Corruption, not a torn tail.
  {
    std::ofstream out(dir + "/gps.csv", std::ios::app);
    out << "\n";
  }
  SemanticTrajectoryStore strict;
  EXPECT_EQ(strict.LoadCsv(dir).code(), common::StatusCode::kCorruption);
  fs::remove_all(dir);
}

TEST(StoreTest, TornMidFileRowIsStillCorruption) {
  std::string dir =
      (fs::temp_directory_path() / "semitri_torn_mid").string();
  fs::remove_all(dir);
  {
    SemanticTrajectoryStore store;
    ASSERT_TRUE(store.PutRawTrajectory(MakeTrajectory(1, 9, 3)).ok());
    ASSERT_TRUE(store.SaveCsv(dir).ok());
  }
  // A bad row *before* intact rows cannot be a crash artifact.
  std::ifstream in(dir + "/gps.csv");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  in.close();
  ASSERT_GE(lines.size(), 3u);
  std::ofstream out(dir + "/gps.csv", std::ios::trunc);
  out << lines[0] << "\n" << "garbage,row" << "\n";
  for (size_t i = 1; i < lines.size(); ++i) out << lines[i] << "\n";
  out.close();
  SemanticTrajectoryStore loaded;
  EXPECT_EQ(loaded.LoadCsv(dir).code(), common::StatusCode::kCorruption);
  fs::remove_all(dir);
}

TEST(StoreTest, SourceEpisodeSurvivesCsvRoundTrip) {
  std::string dir =
      (fs::temp_directory_path() / "semitri_source_episode").string();
  fs::remove_all(dir);
  core::StructuredSemanticTrajectory t = MakeInterpretation(3, "region");
  t.episodes[0].source_episode = 7;
  {
    SemanticTrajectoryStore store;
    ASSERT_TRUE(store.PutInterpretation(t).ok());
    ASSERT_TRUE(store.SaveCsv(dir).ok());
  }
  SemanticTrajectoryStore loaded;
  ASSERT_TRUE(loaded.LoadCsv(dir).ok());
  auto interp = loaded.GetInterpretation(3, "region");
  ASSERT_TRUE(interp.ok());
  EXPECT_EQ(interp->episodes[0].source_episode, 7u);
  // Full bit-exact equality via the recovery contract's comparator.
  SemanticTrajectoryStore original;
  ASSERT_TRUE(original.PutInterpretation(t).ok());
  EXPECT_TRUE(loaded.ContentEquals(original));
  fs::remove_all(dir);
}

TEST(StoreTest, ContentEqualsDetectsDifferences) {
  SemanticTrajectoryStore a;
  SemanticTrajectoryStore b;
  EXPECT_TRUE(a.ContentEquals(b));
  core::RawTrajectory t = MakeTrajectory(1, 9, 4);
  ASSERT_TRUE(a.PutRawTrajectory(t).ok());
  EXPECT_FALSE(a.ContentEquals(b));
  ASSERT_TRUE(b.PutRawTrajectory(t).ok());
  EXPECT_TRUE(a.ContentEquals(b));
  // A one-bit float difference must be visible.
  t.points[2].position.x += 1e-12;
  ASSERT_TRUE(b.PutRawTrajectory(t).ok());
  EXPECT_FALSE(a.ContentEquals(b));
}

}  // namespace
}  // namespace semitri::store
