// Overload-resilience primitives: deadlines, cooperative cancellation,
// per-stage circuit breakers and the watchdog backstop — plus the
// end-to-end contract that every profiled annotation stage honors a
// per-stage deadline within its checkpoint interval (returning
// DeadlineExceeded, or degrading per its FailurePolicy).
//
// Everything runs under a common::FakeClock, so deadline expiry, breaker
// open/half-open transitions and watchdog force-cancels are exercised
// deterministically in zero wall time.

#include "common/exec_control.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/fault_injection.h"
#include "core/circuit_breaker.h"
#include "core/pipeline.h"
#include "core/stage.h"
#include "core/stages.h"
#include "core/watchdog.h"
#include "datagen/presets.h"
#include "datagen/world.h"
#include "hmm/hmm.h"
#include "poi/point_annotator.h"
#include "region/region_annotator.h"
#include "road/map_matcher.h"
#include "traj/point_batch.h"

namespace semitri {
namespace {

using common::Deadline;
using common::ExecControl;
using common::FakeClock;
using common::StatusCode;

// ---------------------------------------------------------------------
// Deadline / CancellationToken / ExecControl units.
// ---------------------------------------------------------------------

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_seconds()));
}

TEST(DeadlineTest, ExpiresOnFakeClock) {
  FakeClock clock;
  Deadline d = Deadline::After(1.0, &clock);
  EXPECT_FALSE(d.expired());
  EXPECT_NEAR(d.remaining_seconds(), 1.0, 1e-9);
  clock.Advance(0.5);
  EXPECT_FALSE(d.expired());
  clock.Advance(0.5);
  EXPECT_TRUE(d.expired());
  clock.Advance(1.0);
  EXPECT_LT(d.remaining_seconds(), 0.0);
}

TEST(DeadlineTest, EarlierPicksTheTighterDeadline) {
  FakeClock clock;
  Deadline near = Deadline::After(1.0, &clock);
  Deadline far = Deadline::After(5.0, &clock);
  EXPECT_EQ(Deadline::Earlier(near, far).nanos(), near.nanos());
  EXPECT_EQ(Deadline::Earlier(far, near).nanos(), near.nanos());
  EXPECT_EQ(Deadline::Earlier(Deadline::Infinite(), far).nanos(), far.nanos());
  EXPECT_TRUE(
      Deadline::Earlier(Deadline::Infinite(), Deadline::Infinite()).infinite());
}

TEST(CancellationTokenTest, CopiesShareTheFlag) {
  common::CancellationToken token;
  common::CancellationToken copy = token;
  EXPECT_FALSE(copy.cancelled());
  token.Cancel();
  EXPECT_TRUE(copy.cancelled());
}

TEST(ExecControlTest, CheckReportsCancellationAndExpiry) {
  FakeClock clock;
  ExecControl exec;
  exec.clock = &clock;
  exec.deadline = Deadline::After(1.0, &clock);
  EXPECT_TRUE(exec.Check("here").ok());

  clock.Advance(2.0);
  common::Status expired = exec.Check("landuse_join");
  EXPECT_EQ(expired.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(expired.message().find("landuse_join"), std::string::npos);

  ExecControl cancelled;
  cancelled.token.Cancel();
  common::Status s = cancelled.Check("map_match");
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(s.message().find("cancelled"), std::string::npos);
}

TEST(ExecCheckpointTest, ConsultsEveryIntervalThCall) {
  FakeClock clock;
  ExecControl exec;
  exec.clock = &clock;
  exec.check_interval = 4;
  exec.token.Cancel();  // every real consult must now fail

  common::ExecCheckpoint checkpoint(&exec);
  // Calls 1..3 are amortized away; the 4th consults and fails.
  EXPECT_TRUE(checkpoint.Check().ok());
  EXPECT_TRUE(checkpoint.Check().ok());
  EXPECT_TRUE(checkpoint.Check().ok());
  EXPECT_EQ(checkpoint.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecCheckpointTest, NullExecIsFree) {
  common::ExecCheckpoint checkpoint(nullptr);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(checkpoint.Check().ok());
}

// ---------------------------------------------------------------------
// Circuit breaker state machine.
// ---------------------------------------------------------------------

core::CircuitBreakerConfig NoJitterConfig() {
  core::CircuitBreakerConfig config;
  config.failure_threshold = 2;
  config.open_backoff_seconds = 1.0;
  config.backoff_multiplier = 2.0;
  config.max_backoff_seconds = 4.0;
  config.jitter_fraction = 0.0;  // exact transition times
  config.half_open_successes = 2;
  return config;
}

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresAndRecloses) {
  FakeClock clock;
  core::CircuitBreaker breaker(NoJitterConfig(), &clock);
  EXPECT_EQ(breaker.state(), core::BreakerState::kClosed);

  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), core::BreakerState::kClosed);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), core::BreakerState::kOpen);

  // Open: executions are short-circuited and counted.
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.stats().rejected, 2u);

  // Backoff elapses -> half-open probe allowed.
  clock.Advance(1.0);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), core::BreakerState::kHalfOpen);

  // half_open_successes = 2: one success is not enough.
  breaker.RecordSuccess(0.0);
  EXPECT_EQ(breaker.state(), core::BreakerState::kHalfOpen);
  breaker.RecordSuccess(0.0);
  EXPECT_EQ(breaker.state(), core::BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().times_opened, 1u);
}

TEST(CircuitBreakerTest, ReopenDoublesBackoffUpToCap) {
  FakeClock clock;
  core::CircuitBreaker breaker(NoJitterConfig(), &clock);

  auto open_it = [&] {
    breaker.RecordFailure();
    breaker.RecordFailure();
    ASSERT_EQ(breaker.state(), core::BreakerState::kOpen);
  };
  auto probe_and_fail = [&](double backoff) {
    clock.Advance(backoff - 0.01);
    EXPECT_FALSE(breaker.Allow()) << "opened early before " << backoff << "s";
    clock.Advance(0.01);
    ASSERT_TRUE(breaker.Allow());
    ASSERT_EQ(breaker.state(), core::BreakerState::kHalfOpen);
    breaker.RecordFailure();  // half-open failure -> re-open immediately
    ASSERT_EQ(breaker.state(), core::BreakerState::kOpen);
  };

  open_it();
  probe_and_fail(1.0);  // first open period
  probe_and_fail(2.0);  // doubled
  probe_and_fail(4.0);  // doubled again
  probe_and_fail(4.0);  // capped at max_backoff_seconds
  EXPECT_EQ(breaker.stats().times_opened, 5u);
}

TEST(CircuitBreakerTest, SlowSuccessCountsAsFailure) {
  FakeClock clock;
  core::CircuitBreakerConfig config = NoJitterConfig();
  config.failure_threshold = 1;
  config.latency_threshold_seconds = 0.5;
  core::CircuitBreaker breaker(config, &clock);

  breaker.RecordSuccess(0.4);  // fast: stays closed
  EXPECT_EQ(breaker.state(), core::BreakerState::kClosed);
  breaker.RecordSuccess(0.6);  // wedged-but-not-erroring: trips
  EXPECT_EQ(breaker.state(), core::BreakerState::kOpen);
}

TEST(CircuitBreakerTest, JitterIsDeterministicPerSeed) {
  // Two breakers with the same seed must transition at the same fake
  // instant — reproducibility is the whole point of seeded jitter.
  FakeClock clock_a, clock_b;
  core::CircuitBreakerConfig config = NoJitterConfig();
  config.jitter_fraction = 0.5;
  config.jitter_seed = 7;
  core::CircuitBreaker a(config, &clock_a);
  core::CircuitBreaker b(config, &clock_b);

  for (core::CircuitBreaker* breaker : {&a, &b}) {
    breaker->RecordFailure();
    breaker->RecordFailure();
  }
  int first_allow_a = -1, first_allow_b = -1;
  for (int step = 0; step < 20; ++step) {  // 0.1s steps cover [1, 1.5]+slack
    clock_a.Advance(0.1);
    clock_b.Advance(0.1);
    if (first_allow_a < 0 && a.Allow()) first_allow_a = step;
    if (first_allow_b < 0 && b.Allow()) first_allow_b = step;
  }
  EXPECT_GE(first_allow_a, 0);
  EXPECT_EQ(first_allow_a, first_allow_b);
}

// ---------------------------------------------------------------------
// Watchdog.
// ---------------------------------------------------------------------

TEST(WatchdogTest, ScanOnceForceCancelsOverdueExecutions) {
  FakeClock clock;
  core::WatchdogConfig config;
  config.deadline_multiple = 3.0;
  core::Watchdog watchdog(config, &clock);

  common::CancellationToken token;
  uint64_t id = watchdog.Watch("map_match", /*budget_seconds=*/1.0, token);
  ASSERT_NE(id, 0u);
  EXPECT_EQ(watchdog.ScanOnce(), 0u);
  EXPECT_FALSE(token.cancelled());

  clock.Advance(2.9);  // within 3x budget
  EXPECT_EQ(watchdog.ScanOnce(), 0u);
  clock.Advance(0.2);  // past it
  EXPECT_EQ(watchdog.ScanOnce(), 1u);
  EXPECT_TRUE(token.cancelled());
  // Already-cancelled executions are not cancelled twice.
  EXPECT_EQ(watchdog.ScanOnce(), 0u);

  core::Watchdog::Stats stats = watchdog.stats();
  EXPECT_EQ(stats.total_watched, 1u);
  EXPECT_EQ(stats.force_cancels, 1u);
  EXPECT_EQ(stats.watched_now, 1u);
  watchdog.Unwatch(id);
  EXPECT_EQ(watchdog.stats().watched_now, 0u);
}

TEST(WatchdogTest, NonPositiveBudgetRegistersNothing) {
  FakeClock clock;
  core::Watchdog watchdog({}, &clock);
  common::CancellationToken token;
  EXPECT_EQ(watchdog.Watch("s", 0.0, token), 0u);
  EXPECT_EQ(watchdog.stats().total_watched, 0u);
}

TEST(WatchdogTest, GuardUnwatchesOnScopeExit) {
  FakeClock clock;
  core::Watchdog watchdog({}, &clock);
  common::CancellationToken token;
  {
    core::Watchdog::Guard guard(&watchdog, "s", 1.0, token);
    EXPECT_EQ(watchdog.stats().watched_now, 1u);
  }
  EXPECT_EQ(watchdog.stats().watched_now, 0u);
  EXPECT_EQ(watchdog.stats().total_watched, 1u);
}

// ---------------------------------------------------------------------
// Stage graph integration: breakers short-circuit, the watchdog
// rescues a wedged stage, and the between-stage gate enforces the run
// deadline.
// ---------------------------------------------------------------------

TEST(StageGraphGovernanceTest, OpenBreakerShortCircuitsBeforeAnyAttempt) {
  FakeClock clock;
  std::atomic<int> runs{0};
  core::StageGraph graph;
  ASSERT_TRUE(graph
                  .Add(std::make_unique<core::FunctionStage>(
                      "flaky", std::vector<std::string>{},
                      [&](core::AnnotationContext&) {
                        ++runs;
                        return common::Status::IoError("boom");
                      },
                      /*profiled=*/false))
                  .ok());
  ASSERT_TRUE(
      graph.SetFailurePolicy("flaky", core::FailurePolicy::SkipAndRecord())
          .ok());
  core::CircuitBreakerConfig config = NoJitterConfig();
  config.failure_threshold = 1;
  ASSERT_TRUE(graph.SetCircuitBreaker("flaky", config, &clock).ok());
  ASSERT_TRUE(graph.Finalize().ok());

  // First run executes the stage, fails it, opens the breaker — and the
  // skip policy still lets the run complete.
  core::AnnotationContext first;
  first.clock = &clock;
  ASSERT_TRUE(graph.Run(first).ok());
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(first.result.stage_reports.at("flaky").status.code(),
            StatusCode::kIoError);

  // Second run: breaker is open, the stage is never attempted, the
  // report carries Unavailable with zero attempts and the run degrades.
  core::AnnotationContext second;
  second.clock = &clock;
  ASSERT_TRUE(graph.Run(second).ok());
  EXPECT_EQ(runs.load(), 1);
  const core::StageReport& report = second.result.stage_reports.at("flaky");
  EXPECT_EQ(report.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(report.attempts, 0u);
  EXPECT_TRUE(report.skipped);
  EXPECT_TRUE(second.result.degraded());

  // After the backoff a half-open probe reaches the stage again.
  clock.Advance(1.0);
  core::AnnotationContext third;
  third.clock = &clock;
  ASSERT_TRUE(graph.Run(third).ok());
  EXPECT_EQ(runs.load(), 2);
}

TEST(StageGraphGovernanceTest, WatchdogRescuesWedgedStage) {
  FakeClock clock;
  core::WatchdogConfig wd_config;
  wd_config.deadline_multiple = 2.0;
  core::Watchdog watchdog(wd_config, &clock);

  core::StageGraph graph;
  // The stage spins until cancelled — a cooperative loop wedged past any
  // deadline check interval. Each iteration burns fake time and lets the
  // watchdog scan, exactly what the monitor thread would do in
  // production; ScanOnce keeps the test single-threaded.
  ASSERT_TRUE(graph
                  .Add(std::make_unique<core::FunctionStage>(
                      "wedged", std::vector<std::string>{},
                      [&](core::AnnotationContext& context) {
                        // Models a loop with no deadline checkpoints: only
                        // the force-fired token can stop it.
                        for (int i = 0; i < 1000; ++i) {
                          clock.Advance(0.5);
                          watchdog.ScanOnce();
                          if (context.exec->token.cancelled()) {
                            return context.exec->Check("wedged");
                          }
                        }
                        return common::Status::OK();
                      },
                      /*profiled=*/false))
                  .ok());
  ASSERT_TRUE(graph.Finalize().ok());

  common::ExecControl exec;
  exec.clock = &clock;
  exec.stage_timeout_seconds = 1.0;  // watchdog fires at 2x = 2.0s
  core::AnnotationContext context;
  context.exec = &exec;
  context.watchdog = &watchdog;
  context.clock = &clock;

  common::Status status = graph.Run(context);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(watchdog.stats().force_cancels, 1u);
  // The guard unregistered the execution on the way out.
  EXPECT_EQ(watchdog.stats().watched_now, 0u);
}

// ---------------------------------------------------------------------
// Pipeline-level deadline tests over a synthetic world: every profiled
// annotation stage must honor a per-stage deadline from inside its
// expensive loops, and degrade per FailurePolicy when asked to.
// ---------------------------------------------------------------------

class DeadlineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::WorldConfig wc;
    wc.seed = 91;
    wc.extent_meters = 4000.0;
    wc.num_pois = 500;
    world_ = std::make_unique<datagen::World>(
        datagen::WorldGenerator(wc).Generate());
    factory_ = std::make_unique<datagen::DatasetFactory>(world_.get(), 17);
    pipeline_ = std::make_unique<core::SemiTriPipeline>(
        &world_->regions, &world_->roads, &world_->pois);

    // One ungoverned pass yields the trajectory-computation artifacts
    // the per-stage deadline runs below re-annotate.
    datagen::PersonSpec spec = factory_->MakePersonSpec(0);
    stream_ = factory_->SimulatePersonDays(0, spec, 3).points;
    common::Result<std::vector<core::PipelineResult>> results =
        pipeline_->ProcessStream(0, stream_);
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    ASSERT_FALSE(results->empty());
    // Use the trajectory with the most episodes, so every annotation
    // stage has real work (and therefore real checkpoint consults).
    size_t best = 0;
    for (size_t i = 1; i < results->size(); ++i) {
      if ((*results)[i].episodes.size() > (*results)[best].episodes.size()) {
        best = i;
      }
    }
    computed_.cleaned = (*results)[best].cleaned;
    computed_.episodes = (*results)[best].episodes;
    ASSERT_GE(computed_.episodes.size(), 3u);
  }

  // An ExecControl whose per-stage millisecond budget is consumed by the
  // deadline checks themselves: auto-advance makes every clock read move
  // fake time, so the budget expires mid-loop after a handful of
  // checkpoint consults — without threads or real waiting.
  common::ExecControl MillisecondStageBudget() {
    common::ExecControl exec;
    exec.clock = &clock_;
    exec.stage_timeout_seconds = 1e-3;
    exec.check_interval = 1;
    clock_.set_auto_advance(1e-4);
    return exec;
  }

  FakeClock clock_;
  std::unique_ptr<datagen::World> world_;
  std::unique_ptr<datagen::DatasetFactory> factory_;
  std::unique_ptr<core::SemiTriPipeline> pipeline_;
  std::vector<core::GpsPoint> stream_;
  core::PipelineResult computed_;
};

TEST_F(DeadlineFixture, ExpiredRunDeadlineAbortsBeforeAnyStage) {
  common::ExecControl exec;
  exec.clock = &clock_;
  exec.deadline = Deadline::After(1.0, &clock_);
  clock_.Advance(2.0);

  core::RunControls controls;
  controls.exec = &exec;
  controls.clock = &clock_;
  common::Result<std::vector<core::PipelineResult>> result =
      pipeline_->ProcessStream(0, stream_, 0, controls);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(DeadlineFixture, PreCancelledTokenAbortsRun) {
  common::ExecControl exec;
  exec.clock = &clock_;
  exec.token.Cancel();

  core::RunControls controls;
  controls.exec = &exec;
  common::Result<std::vector<core::PipelineResult>> result =
      pipeline_->ProcessStream(0, stream_, 0, controls);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(result.status().message().find("cancelled"), std::string::npos);
}

// Each profiled annotation stage, run in isolation against the cached
// trajectory computation, must notice a 1 ms stage budget from inside
// its loops and fail with DeadlineExceeded under the default fail-fast
// policy.
TEST_F(DeadlineFixture, EveryAnnotationStageHonorsStageDeadline) {
  common::ExecControl exec = MillisecondStageBudget();
  for (const char* stage : {core::kStageLanduseJoin, core::kStageMapMatch,
                            core::kStagePointAnnotation}) {
    SCOPED_TRACE(stage);
    core::AnnotationContext context;
    context.result = computed_;
    context.exec = &exec;
    context.clock = &clock_;
    common::Status status = pipeline_->graph().RunStage(stage, context);
    EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded)
        << status.ToString();
  }
}

TEST_F(DeadlineFixture, SkipPolicyDegradesTimedOutStageInsteadOfFailing) {
  common::ExecControl exec = MillisecondStageBudget();
  for (const char* stage : {core::kStageLanduseJoin, core::kStageMapMatch,
                            core::kStagePointAnnotation}) {
    SCOPED_TRACE(stage);
    ASSERT_TRUE(pipeline_->mutable_graph()
                    .SetFailurePolicy(stage, core::FailurePolicy::SkipAndRecord())
                    .ok());
    core::AnnotationContext context;
    context.result = computed_;
    context.exec = &exec;
    context.clock = &clock_;
    ASSERT_TRUE(pipeline_->graph().RunStage(stage, context).ok());
    const core::StageReport& report = context.result.stage_reports.at(stage);
    EXPECT_TRUE(report.skipped);
    EXPECT_EQ(report.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(context.result.degraded());
    // Restore fail-fast for the next iteration / other tests.
    ASSERT_TRUE(pipeline_->mutable_graph()
                    .SetFailurePolicy(stage, core::FailurePolicy::FailFast())
                    .ok());
  }
}

// Direct annotator-level proof that the cancellation is noticed inside
// the expensive loops (not only at stage entry): the deadline is alive
// when the call starts and expires strictly within the loop.
TEST_F(DeadlineFixture, AnnotatorLoopsNoticeMidLoopExpiry) {
  auto make_exec = [&] {
    common::ExecControl exec;
    exec.clock = &clock_;
    exec.check_interval = 1;
    exec.deadline = Deadline::After(1e-3, &clock_);
    clock_.set_auto_advance(1e-4);
    return exec;
  };

  {
    common::ExecControl exec = make_exec();
    road::GlobalMapMatcher matcher(&world_->roads);
    traj::PointBatch batch;
    batch.BuildFrom(computed_.cleaned.points);
    std::vector<road::MatchedPoint> matched;
    common::Status status =
        matcher.MatchPoints(batch.View(), &exec, nullptr, &matched);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  }
  {
    common::ExecControl exec = make_exec();
    region::RegionAnnotator annotator(&world_->regions);
    common::Result<core::StructuredSemanticTrajectory> annotated =
        annotator.Annotate(computed_.cleaned, computed_.episodes, &exec);
    EXPECT_FALSE(annotated.ok());
    EXPECT_EQ(annotated.status().code(), StatusCode::kDeadlineExceeded);
  }
  {
    common::ExecControl exec = make_exec();
    poi::PointAnnotator annotator(&world_->pois);
    common::Result<core::StructuredSemanticTrajectory> annotated =
        annotator.Annotate(computed_.cleaned, computed_.episodes, &exec);
    EXPECT_FALSE(annotated.ok());
    EXPECT_EQ(annotated.status().code(), StatusCode::kDeadlineExceeded);
  }
  clock_.set_auto_advance(0.0);
}

TEST(ViterbiDeadlineTest, GridSweepNoticesExpiry) {
  FakeClock clock;
  common::ExecControl exec;
  exec.clock = &clock;
  exec.check_interval = 1;
  exec.deadline = Deadline::After(1e-3, &clock);
  clock.set_auto_advance(1e-4);

  hmm::HmmModel model;
  model.initial = {0.5, 0.5};
  model.transition = {{0.5, 0.5}, {0.5, 0.5}};
  hmm::EmissionMatrix emissions;
  emissions.Reset(2);
  for (int t = 0; t < 100; ++t) {
    for (double& e : emissions.AppendRow()) e = 0.5;
  }
  common::Result<hmm::ViterbiResult> result =
      hmm::Viterbi(model, emissions, &exec);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  // And the ungoverned call still succeeds on the same input.
  clock.set_auto_advance(0.0);
  EXPECT_TRUE(hmm::Viterbi(model, emissions).ok());
}

// The stage_slow:<name> fault site wedges a stage past its remaining
// deadline (instantly, under the FakeClock), exercising the timeout
// path end to end: fail-fast aborts the run, skip-and-record degrades.
TEST_F(DeadlineFixture, SlowStageFaultSiteTimesOutAndDegrades) {
  if (!common::FaultInjector::enabled()) {
    GTEST_SKIP() << "built without SEMITRI_FAULT_INJECTION";
  }
  common::FaultInjector& fi = common::FaultInjector::Global();

  common::ExecControl exec;
  exec.clock = &clock_;
  exec.stage_timeout_seconds = 0.01;
  core::RunControls controls;
  controls.exec = &exec;
  controls.clock = &clock_;

  fi.Reset();
  fi.Arm("stage_slow:" + std::string(core::kStageMapMatch),
         common::FaultPolicy::FailAlways());
  common::Result<std::vector<core::PipelineResult>> failed =
      pipeline_->ProcessStream(0, stream_, 0, controls);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kDeadlineExceeded);

  ASSERT_TRUE(pipeline_->mutable_graph()
                  .SetFailurePolicy(core::kStageMapMatch,
                                    core::FailurePolicy::SkipAndRecord())
                  .ok());
  common::Result<std::vector<core::PipelineResult>> degraded =
      pipeline_->ProcessStream(0, stream_, 0, controls);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  for (const core::PipelineResult& result : *degraded) {
    EXPECT_FALSE(result.line_layer.has_value());
    EXPECT_TRUE(result.region_layer.has_value());
    const core::StageReport& report =
        result.stage_reports.at(core::kStageMapMatch);
    EXPECT_TRUE(report.skipped);
    EXPECT_EQ(report.status.code(), StatusCode::kDeadlineExceeded);
  }
  fi.Reset();
  ASSERT_TRUE(pipeline_->mutable_graph()
                  .SetFailurePolicy(core::kStageMapMatch,
                                    core::FailurePolicy::FailFast())
                  .ok());
}

}  // namespace
}  // namespace semitri
