// Tests for the Semantic Point Annotation Layer: POI repository,
// Gaussian observation model (Lemma 1), discretization, and the
// HMM stop annotator (Algorithm 3) including the dense-area advantage
// over the nearest-POI baseline.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "poi/observation_model.h"
#include "poi/point_annotator.h"
#include "poi/poi_set.h"

namespace semitri::poi {
namespace {

using geo::Point;

TEST(PoiSetTest, MilanCategories) {
  PoiSet pois = PoiSet::MilanCategories();
  EXPECT_EQ(pois.num_categories(), 5u);
  EXPECT_EQ(pois.category_names()[2], "item sale");
}

TEST(PoiSetTest, PriorsMatchCategoryShares) {
  PoiSet pois = PoiSet::MilanCategories();
  // Milan proportions scaled down: 4, 7, 12, 15, 2 of 40.
  int counts[5] = {4, 7, 12, 15, 2};
  common::Rng rng(5);
  for (int c = 0; c < 5; ++c) {
    for (int i = 0; i < counts[c]; ++i) {
      pois.Add({rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, c);
    }
  }
  auto priors = pois.CategoryPriors();
  EXPECT_DOUBLE_EQ(priors[0], 4.0 / 40.0);
  EXPECT_DOUBLE_EQ(priors[3], 15.0 / 40.0);
  double sum = 0.0;
  for (double p : priors) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(PoiSetTest, EmptyPriorsAreUniform) {
  PoiSet pois = PoiSet::MilanCategories();
  auto priors = pois.CategoryPriors();
  for (double p : priors) EXPECT_DOUBLE_EQ(p, 0.2);
}

TEST(PoiSetTest, NearestAndNearestOfCategory) {
  PoiSet pois = PoiSet::MilanCategories();
  core::PlaceId a = pois.Add({0, 0}, 0, "a");
  core::PlaceId b = pois.Add({100, 0}, 1, "b");
  core::PlaceId c = pois.Add({200, 0}, 1, "c");
  EXPECT_EQ(pois.Nearest({10, 0}), a);
  EXPECT_EQ(pois.NearestOfCategory({10, 0}, 1), b);
  EXPECT_EQ(pois.NearestOfCategory({210, 0}, 1), c);
  EXPECT_EQ(pois.NearestOfCategory({0, 0}, 4), core::kInvalidPlaceId);
}

TEST(PoiSetTest, WithinRadius) {
  PoiSet pois = PoiSet::MilanCategories();
  pois.Add({0, 0}, 0);
  pois.Add({30, 0}, 1);
  pois.Add({300, 0}, 2);
  EXPECT_EQ(pois.WithinRadius({0, 0}, 50.0).size(), 2u);
  EXPECT_EQ(pois.WithinRadius({0, 0}, 500.0).size(), 3u);
}

TEST(ObservationModelTest, DensityPeaksAtPoiCluster) {
  PoiSet pois = PoiSet::MilanCategories();
  common::Rng rng(7);
  // Category-2 cluster at (200,200); category-0 cluster at (800,800).
  for (int i = 0; i < 30; ++i) {
    pois.Add({200 + rng.Gaussian(0, 30), 200 + rng.Gaussian(0, 30)}, 2);
    pois.Add({800 + rng.Gaussian(0, 30), 800 + rng.Gaussian(0, 30)}, 0);
  }
  PoiObservationModel model(&pois);
  auto near_item_sale = model.EmissionsAt({200, 200});
  EXPECT_GT(near_item_sale[2], near_item_sale[0]);
  auto near_services = model.EmissionsAt({800, 800});
  EXPECT_GT(near_services[0], near_services[2]);
}

TEST(ObservationModelTest, DiscretizedApproximatesExact) {
  PoiSet pois = PoiSet::MilanCategories();
  common::Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    pois.Add({rng.Uniform(0, 2000), rng.Uniform(0, 2000)},
             static_cast<int>(rng.UniformInt(0, 4)));
  }
  ObservationModelConfig config;
  config.grid_cell_meters = 40.0;
  config.neighbor_ring = 5;
  PoiObservationModel model(&pois, config);
  common::Rng qrng(11);
  for (int q = 0; q < 20; ++q) {
    Point p{qrng.Uniform(200, 1800), qrng.Uniform(200, 1800)};
    auto grid = model.EmissionsAt(p);
    auto exact = model.EmissionsExact(p);
    // The winning category must agree whenever the exact model has a
    // clear winner.
    size_t grid_best =
        std::max_element(grid.begin(), grid.end()) - grid.begin();
    size_t exact_best =
        std::max_element(exact.begin(), exact.end()) - exact.begin();
    double second = 0.0;
    for (size_t c = 0; c < exact.size(); ++c) {
      if (c != exact_best) second = std::max(second, exact[c]);
    }
    if (exact[exact_best] > 1.5 * second) {
      EXPECT_EQ(grid_best, exact_best) << "query " << q;
    }
  }
}

TEST(ObservationModelTest, CategorySigmaOverride) {
  PoiSet pois = PoiSet::MilanCategories();
  pois.Add({100, 100}, 0);
  ObservationModelConfig config;
  config.default_sigma_meters = 50.0;
  config.category_sigma = {200.0};  // category 0 spreads wide
  PoiObservationModel model(&pois, config);
  EXPECT_DOUBLE_EQ(model.SigmaFor(0), 200.0);
  EXPECT_DOUBLE_EQ(model.SigmaFor(1), 50.0);
}

TEST(ObservationModelTest, BoundingRectangleAveragesCells) {
  PoiSet pois = PoiSet::MilanCategories();
  pois.Add({100, 100}, 1);
  PoiObservationModel model(&pois);
  auto rect = model.EmissionsFor(
      geo::BoundingBox({50, 50}, {150, 150}));
  EXPECT_GT(rect[1], 0.0);
  EXPECT_DOUBLE_EQ(rect[0], 0.0);
}

// Builds a stop episode centered at p.
core::Episode StopAt(Point p, double t0, double t1) {
  core::Episode ep;
  ep.kind = core::EpisodeKind::kStop;
  ep.time_in = t0;
  ep.time_out = t1;
  ep.center = p;
  ep.bounds = geo::BoundingBox::FromPoint(p).Inflated(20.0);
  return ep;
}

class AnnotatorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    pois_ = std::make_unique<PoiSet>(PoiSet::MilanCategories());
    common::Rng rng(13);
    // Dense mixed downtown around (500,500): many item-sale (2) with
    // scattered others; a services cluster (0) at (1500,500).
    for (int i = 0; i < 60; ++i) {
      pois_->Add({500 + rng.Gaussian(0, 60), 500 + rng.Gaussian(0, 60)}, 2);
    }
    for (int i = 0; i < 12; ++i) {
      pois_->Add({500 + rng.Gaussian(0, 60), 500 + rng.Gaussian(0, 60)},
                 static_cast<int>(rng.UniformInt(0, 4)));
    }
    for (int i = 0; i < 40; ++i) {
      pois_->Add({1500 + rng.Gaussian(0, 50), 500 + rng.Gaussian(0, 50)}, 0);
    }
  }
  std::unique_ptr<PoiSet> pois_;
};

TEST_F(AnnotatorFixture, DecodesDominantCategoryInDenseArea) {
  PointAnnotator annotator(pois_.get());
  std::vector<core::Episode> stops = {StopAt({505, 495}, 0, 3600),
                                      StopAt({1495, 505}, 4000, 7600)};
  auto categories = annotator.InferStopCategories(stops);
  ASSERT_TRUE(categories.ok());
  ASSERT_EQ(categories->size(), 2u);
  EXPECT_EQ((*categories)[0], 2);  // item sale downtown
  EXPECT_EQ((*categories)[1], 0);  // services cluster
}

TEST_F(AnnotatorFixture, AnnotateEmitsEpisodesWithPlaceLinks) {
  PointAnnotator annotator(pois_.get());
  core::RawTrajectory t;
  t.id = 3;
  std::vector<core::Episode> episodes = {StopAt({505, 495}, 0, 3600)};
  episodes[0].kind = core::EpisodeKind::kStop;
  auto out = annotator.Annotate(t, episodes);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->episodes.size(), 1u);
  const auto& ep = out->episodes[0];
  EXPECT_EQ(ep.FindAnnotation("poi_category"), "item sale");
  EXPECT_EQ(ep.place.kind, core::PlaceKind::kPoint);
  EXPECT_TRUE(ep.place.valid());
  EXPECT_EQ(pois_->Get(ep.place.id).category, 2);
}

TEST_F(AnnotatorFixture, MovesAreIgnored) {
  PointAnnotator annotator(pois_.get());
  core::Episode move = StopAt({505, 495}, 0, 100);
  move.kind = core::EpisodeKind::kMove;
  auto categories = annotator.InferStopCategories({move});
  ASSERT_TRUE(categories.ok());
  EXPECT_TRUE(categories->empty());
}

TEST_F(AnnotatorFixture, HmmBeatsNearestPoiOnAmbiguousStop) {
  // A stop whose *nearest* POI is an outlier of the wrong category but
  // whose neighborhood is dominated by item-sale POIs. The HMM's
  // density-summing observation model (Lemma 1) resists the outlier;
  // the one-to-one baseline does not.
  core::PlaceId outlier = pois_->Add({600, 600}, 4, "outlier");
  (void)outlier;
  PointAnnotator annotator(pois_.get());
  NearestPoiAnnotator baseline(pois_.get());
  std::vector<core::Episode> stops = {StopAt({599, 601}, 0, 3600)};
  auto hmm_categories = annotator.InferStopCategories(stops);
  ASSERT_TRUE(hmm_categories.ok());
  auto baseline_categories = baseline.InferStopCategories(stops);
  EXPECT_EQ(baseline_categories[0], 4);     // fooled by the outlier
  EXPECT_EQ((*hmm_categories)[0], 2);       // density wins
}

TEST_F(AnnotatorFixture, TransitionMatrixOverride) {
  PointAnnotatorConfig config;
  config.transition = hmm::MakeDefaultTransition(5, 0.4);
  PointAnnotator annotator(pois_.get(), config);
  EXPECT_DOUBLE_EQ(annotator.model().transition[0][0], 0.4);
  EXPECT_EQ(annotator.model().initial.size(), 5u);
}

TEST(PointAnnotatorEdge, NoStopsYieldsEmpty) {
  PoiSet pois = PoiSet::MilanCategories();
  pois.Add({0, 0}, 0);
  PointAnnotator annotator(&pois);
  auto categories = annotator.InferStopCategories({});
  ASSERT_TRUE(categories.ok());
  EXPECT_TRUE(categories->empty());
}


TEST(Fig6MatrixTest, MatchesPaperFigure) {
  auto a = Fig6TransitionMatrix();
  ASSERT_EQ(a.size(), 5u);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(a[static_cast<size_t>(i)][static_cast<size_t>(j)],
                       i == j ? 0.80 : 0.05);
    }
  }
  for (int j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(a[4][static_cast<size_t>(j)], 0.15);
  }
  EXPECT_DOUBLE_EQ(a[4][4], 0.40);
  // Rows are stochastic.
  for (const auto& row : a) {
    double sum = 0.0;
    for (double p : row) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Fig6MatrixTest, UsedAsMilanDefault) {
  PoiSet pois = PoiSet::MilanCategories();
  pois.Add({0, 0}, 0);
  PointAnnotator annotator(&pois);  // 5 categories, default self 0.8
  EXPECT_DOUBLE_EQ(annotator.model().transition[4][4], 0.40);
  EXPECT_DOUBLE_EQ(annotator.model().transition[4][0], 0.15);
  // Explicit self-transition overrides fall back to the uniform form.
  PointAnnotatorConfig config;
  config.default_self_transition = 0.5;
  PointAnnotator overridden(&pois, config);
  EXPECT_DOUBLE_EQ(overridden.model().transition[4][4], 0.5);
}

}  // namespace
}  // namespace semitri::poi
