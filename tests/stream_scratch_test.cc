// Steady-state allocation contract of the streaming data plane: once
// an AnnotationSession has annotated a workload, re-annotating the
// same workload allocates nothing — every per-run buffer (the SoA
// point batch, CSR candidate tables, the emission arena) has grown to
// its high-water mark and is only reused. bench_stream_throughput
// gates the same property in CI (gated_zeros); this test pins it at
// the unit level with a real datagen corpus.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "datagen/presets.h"
#include "datagen/world.h"
#include "stream/annotation_session.h"

namespace semitri {
namespace {

class StreamScratchTest : public ::testing::Test {
 protected:
  StreamScratchTest()
      : world_(MakeWorld()),
        factory_(&world_, /*seed=*/515),
        pipeline_(&world_.regions, &world_.roads, &world_.pois) {}

  static datagen::World MakeWorld() {
    datagen::WorldConfig config;
    config.seed = 514;
    config.extent_meters = 4000.0;
    config.num_pois = 600;
    return datagen::WorldGenerator(config).Generate();
  }

  // Feeds every fix of `track` and flushes; the session annotates each
  // closed episode and finalizes each closed trajectory along the way.
  static void FeedTrack(stream::AnnotationSession* session,
                        const datagen::SimulatedTrack& track) {
    for (const core::GpsPoint& fix : track.points) {
      auto fed = session->Feed(fix);
      ASSERT_TRUE(fed.ok()) << fed.status().ToString();
    }
    ASSERT_TRUE(session->Flush().ok());
  }

  datagen::World world_;
  datagen::DatasetFactory factory_;
  core::SemiTriPipeline pipeline_;
};

TEST_F(StreamScratchTest, SteadyStateMakesNoArenaAllocations) {
  datagen::Dataset people = factory_.NokiaPeople(/*num_users=*/1,
                                                 /*num_days=*/2);
  ASSERT_FALSE(people.tracks.empty());
  const datagen::SimulatedTrack& track = people.tracks.front();
  stream::AnnotationSession session(&pipeline_, track.object_id);

  // Warm-up pass: the scratch grows to the workload's high-water mark.
  FeedTrack(&session, track);
  const size_t warm_blocks =
      session.scratch().point.arena.num_block_allocations();
  const size_t warm_capacity = session.scratch().capacity_bytes();
  EXPECT_GT(warm_capacity, 0u);

  // Steady state: the same workload again, five times over. No new
  // arena blocks, no scratch buffer growth.
  for (int run = 0; run < 5; ++run) {
    FeedTrack(&session, track);
    EXPECT_EQ(session.scratch().point.arena.num_block_allocations(),
              warm_blocks)
        << "arena fetched a fresh block on steady-state run " << run;
    EXPECT_EQ(session.scratch().capacity_bytes(), warm_capacity)
        << "scratch buffers grew on steady-state run " << run;
  }
}

TEST_F(StreamScratchTest, CapacityStabilizesAcrossHeterogeneousTracks) {
  // A mixed corpus: after one full pass over every track, a second
  // pass must run entirely within the reserved capacity — the scratch
  // is sized by the largest run, not the most recent one.
  datagen::Dataset people = factory_.NokiaPeople(/*num_users=*/2,
                                                 /*num_days=*/2);
  ASSERT_GE(people.tracks.size(), 2u);
  stream::AnnotationSession session(&pipeline_, people.tracks[0].object_id);
  for (const datagen::SimulatedTrack& track : people.tracks) {
    FeedTrack(&session, track);
  }
  const size_t warm_blocks =
      session.scratch().point.arena.num_block_allocations();
  const size_t warm_capacity = session.scratch().capacity_bytes();
  for (const datagen::SimulatedTrack& track : people.tracks) {
    FeedTrack(&session, track);
  }
  EXPECT_EQ(session.scratch().point.arena.num_block_allocations(),
            warm_blocks);
  EXPECT_EQ(session.scratch().capacity_bytes(), warm_capacity);
}

}  // namespace
}  // namespace semitri
