// Tests for the store's write-ahead log: frame round-trips, torn-tail
// truncation, CRC corruption detection, and append-after-recovery.

#include "store/wal.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace semitri::store {
namespace {

namespace fs = std::filesystem;

struct Replayed {
  WalRecordType type;
  std::string payload;
};

std::string TempWal(const char* name) {
  std::string path = (fs::temp_directory_path() / name).string();
  fs::remove(path);
  return path;
}

common::Result<std::vector<Replayed>> ReplayAll(const std::string& path,
                                                bool truncate = false) {
  std::vector<Replayed> records;
  auto stats = ReplayWal(
      path,
      [&](WalRecordType type, std::string_view payload) {
        records.push_back({type, std::string(payload)});
        return common::Status::OK();
      },
      truncate);
  if (!stats.ok()) return stats.status();
  return records;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << data;
}

TEST(WalTest, AppendReplayRoundTrip) {
  std::string path = TempWal("semitri_wal_roundtrip.log");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(
        (*writer)->Append(WalRecordType::kPutRawTrajectory, "alpha").ok());
    ASSERT_TRUE((*writer)->Append(WalRecordType::kPutEpisodes, "").ok());
    std::string binary("\x00\x01\xff payload", 11);
    ASSERT_TRUE(
        (*writer)->Append(WalRecordType::kPutInterpretation, binary).ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  auto records = ReplayAll(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].type, WalRecordType::kPutRawTrajectory);
  EXPECT_EQ((*records)[0].payload, "alpha");
  EXPECT_EQ((*records)[1].type, WalRecordType::kPutEpisodes);
  EXPECT_EQ((*records)[1].payload, "");
  EXPECT_EQ((*records)[2].type, WalRecordType::kPutInterpretation);
  EXPECT_EQ((*records)[2].payload.size(), 11u);
  fs::remove(path);
}

TEST(WalTest, MissingFileIsEmptyLog) {
  auto records = ReplayAll("/nonexistent/semitri/wal.log");
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(WalTest, TornTailIsTruncated) {
  std::string path = TempWal("semitri_wal_torn.log");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(WalRecordType::kPutEpisodes, "keep1").ok());
    ASSERT_TRUE((*writer)->Append(WalRecordType::kPutEpisodes, "keep2").ok());
  }
  std::string intact = ReadFile(path);
  // Simulate a power cut mid-append: half of a third frame.
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(WalRecordType::kPutEpisodes, "torn").ok());
  }
  std::string full = ReadFile(path);
  ASSERT_GT(full.size(), intact.size());
  WriteFile(path, full.substr(0, intact.size() + (full.size() - intact.size()) / 2));

  std::vector<Replayed> records;
  auto stats = ReplayWal(
      path,
      [&](WalRecordType type, std::string_view payload) {
        records.push_back({type, std::string(payload)});
        return common::Status::OK();
      },
      /*truncate_torn_tail=*/true);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_applied, 2u);
  EXPECT_GT(stats->torn_bytes_truncated, 0u);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].payload, "keep1");
  EXPECT_EQ(records[1].payload, "keep2");
  // The tail is gone: the file is byte-identical to the intact prefix,
  // so appending can safely resume.
  EXPECT_EQ(ReadFile(path), intact);
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(WalRecordType::kPutEpisodes, "after").ok());
  }
  auto again = ReplayAll(path);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->size(), 3u);
  EXPECT_EQ((*again)[2].payload, "after");
  fs::remove(path);
}

TEST(WalTest, CorruptCrcEndsReplayAtBadFrame) {
  std::string path = TempWal("semitri_wal_crc.log");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(WalRecordType::kPutEpisodes, "good").ok());
    ASSERT_TRUE((*writer)->Append(WalRecordType::kPutEpisodes, "bitrot").ok());
  }
  std::string data = ReadFile(path);
  data.back() ^= 0x01;  // flip a payload bit in the second frame
  WriteFile(path, data);

  auto stats = ReplayWal(
      path, [](WalRecordType, std::string_view) { return common::Status::OK(); },
      /*truncate_torn_tail=*/false);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_applied, 1u);
  EXPECT_GT(stats->torn_bytes_truncated, 0u);
  // truncate_torn_tail=false left the file untouched.
  EXPECT_EQ(ReadFile(path), data);
  fs::remove(path);
}

TEST(WalTest, TruncateEmptiesLog) {
  std::string path = TempWal("semitri_wal_truncate.log");
  auto writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(WalRecordType::kPutEpisodes, "x").ok());
  ASSERT_TRUE((*writer)->Truncate().ok());
  EXPECT_EQ(fs::file_size(path), 0u);
  // Appends continue after compaction.
  ASSERT_TRUE((*writer)->Append(WalRecordType::kPutEpisodes, "y").ok());
  auto records = ReplayAll(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].payload, "y");
  fs::remove(path);
}

TEST(WalTest, ApplyErrorAbortsReplay) {
  std::string path = TempWal("semitri_wal_apply_err.log");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(WalRecordType::kPutEpisodes, "a").ok());
    ASSERT_TRUE((*writer)->Append(WalRecordType::kPutEpisodes, "b").ok());
  }
  size_t applied = 0;
  auto stats = ReplayWal(
      path,
      [&](WalRecordType, std::string_view) {
        ++applied;
        return common::Status::Corruption("bad record");
      },
      /*truncate_torn_tail=*/false);
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(applied, 1u);
  fs::remove(path);
}

}  // namespace
}  // namespace semitri::store
