// Streaming checkpoint/restore tests: a serialized EpisodeDetector /
// AnnotationSession / SessionManager resumes mid-stream and produces —
// bit for bit — the output an uninterrupted run would have produced,
// including the final semantic trajectory store state.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/serial.h"
#include "core/pipeline.h"
#include "datagen/presets.h"
#include "datagen/world.h"
#include "store/semantic_trajectory_store.h"
#include "stream/annotation_session.h"
#include "stream/episode_detector.h"
#include "stream/session_manager.h"

namespace semitri::stream {
namespace {

namespace fs = std::filesystem;

class CheckpointFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::WorldConfig wc;
    wc.seed = 57;
    wc.extent_meters = 3000.0;
    wc.num_pois = 400;
    world_ = std::make_unique<datagen::World>(
        datagen::WorldGenerator(wc).Generate());
    factory_ = std::make_unique<datagen::DatasetFactory>(world_.get(), 58);
  }

  std::vector<core::GpsPoint> PersonStream(int index, int days) {
    datagen::PersonSpec spec = factory_->MakePersonSpec(index);
    return factory_->SimulatePersonDays(index, spec, days).points;
  }

  std::unique_ptr<datagen::World> world_;
  std::unique_ptr<datagen::DatasetFactory> factory_;
};

// Drains `stream` through `detector` collecting every closed
// trajectory.
std::vector<ClosedTrajectory> DrainDetector(
    EpisodeDetector* detector, const std::vector<core::GpsPoint>& stream,
    size_t start = 0) {
  std::vector<ClosedTrajectory> closed;
  DetectorEvents events;
  for (size_t i = start; i < stream.size(); ++i) {
    detector->Feed(stream[i], &events);
    if (events.closed_trajectory.has_value()) {
      closed.push_back(*events.closed_trajectory);
    }
  }
  detector->Close(&events);
  if (events.closed_trajectory.has_value()) {
    closed.push_back(*events.closed_trajectory);
  }
  return closed;
}

TEST_F(CheckpointFixture, DetectorResumesBitIdentical) {
  std::vector<core::GpsPoint> stream = PersonStream(0, 2);
  ASSERT_GT(stream.size(), 100u);
  EpisodeDetectorConfig config;

  // Uninterrupted reference.
  EpisodeDetector reference(0, config);
  std::vector<ClosedTrajectory> expected = DrainDetector(&reference, stream);
  ASSERT_FALSE(expected.empty());

  // Checkpoint mid-stream (deliberately mid-trajectory, not at a split
  // boundary), restore into a fresh detector, resume.
  size_t cut = stream.size() / 2;
  EpisodeDetector first(0, config);
  std::vector<ClosedTrajectory> closed_before;
  DetectorEvents events;
  for (size_t i = 0; i < cut; ++i) {
    first.Feed(stream[i], &events);
    if (events.closed_trajectory.has_value()) {
      closed_before.push_back(*events.closed_trajectory);
    }
  }
  common::StateWriter w;
  first.SaveState(&w);
  std::string blob = w.Release();

  EpisodeDetector resumed(0, config);
  common::StateReader r(blob);
  ASSERT_TRUE(resumed.RestoreState(&r).ok());
  EXPECT_TRUE(r.AtEnd());
  std::vector<ClosedTrajectory> closed_after =
      DrainDetector(&resumed, stream, cut);

  std::vector<ClosedTrajectory> combined = closed_before;
  combined.insert(combined.end(), closed_after.begin(), closed_after.end());
  ASSERT_EQ(combined.size(), expected.size());
  for (size_t t = 0; t < expected.size(); ++t) {
    EXPECT_EQ(combined[t].cleaned, expected[t].cleaned)
        << "cleaned trace mismatch, trajectory " << t;
    EXPECT_EQ(combined[t].episodes, expected[t].episodes)
        << "episode table mismatch, trajectory " << t;
  }
  EXPECT_EQ(resumed.stats().trajectories_closed,
            reference.stats().trajectories_closed);
  EXPECT_EQ(resumed.stats().points_fed, reference.stats().points_fed);
}

TEST_F(CheckpointFixture, DetectorRestoreRejectsWrongObject) {
  EpisodeDetector a(1, EpisodeDetectorConfig{});
  common::StateWriter w;
  a.SaveState(&w);
  std::string blob = w.Release();
  EpisodeDetector b(2, EpisodeDetectorConfig{});
  common::StateReader r(blob);
  EXPECT_EQ(b.RestoreState(&r).code(),
            common::StatusCode::kInvalidArgument);
}

TEST_F(CheckpointFixture, DetectorRestoreRejectsTruncatedBlob) {
  std::vector<core::GpsPoint> stream = PersonStream(1, 1);
  EpisodeDetector a(1, EpisodeDetectorConfig{});
  DetectorEvents events;
  for (size_t i = 0; i < std::min<size_t>(stream.size(), 200); ++i) {
    a.Feed(stream[i], &events);
  }
  common::StateWriter w;
  a.SaveState(&w);
  std::string blob = w.Release();
  ASSERT_GT(blob.size(), 16u);
  std::string truncated = blob.substr(0, blob.size() / 2);
  EpisodeDetector b(1, EpisodeDetectorConfig{});
  common::StateReader r(truncated);
  EXPECT_FALSE(b.RestoreState(&r).ok());
}

TEST_F(CheckpointFixture, SessionResumesToExactStoreState) {
  std::vector<core::GpsPoint> stream = PersonStream(0, 2);

  // Uninterrupted session -> reference store.
  store::SemanticTrajectoryStore reference_store;
  {
    core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                   &world_->pois, core::PipelineConfig{},
                                   &reference_store);
    AnnotationSession session(&pipeline, 0);
    for (const core::GpsPoint& fix : stream) {
      ASSERT_TRUE(session.Feed(fix).ok());
    }
    ASSERT_TRUE(session.Flush().ok());
  }

  // Interrupted session: feed half, checkpoint, restore into a fresh
  // session over a *new* pipeline (same config/world/store), resume.
  store::SemanticTrajectoryStore store;
  size_t cut = stream.size() / 2;
  std::string blob;
  size_t passes_at_cut = 0;
  {
    core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                   &world_->pois, core::PipelineConfig{},
                                   &store);
    AnnotationSession session(&pipeline, 0);
    for (size_t i = 0; i < cut; ++i) {
      ASSERT_TRUE(session.Feed(stream[i]).ok());
    }
    passes_at_cut = session.stats().annotation_passes;
    common::StateWriter w;
    session.SaveState(&w);
    blob = w.Release();
  }  // first process "exits"
  {
    core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                   &world_->pois, core::PipelineConfig{},
                                   &store);
    AnnotationSession session(&pipeline, 0);
    common::StateReader r(blob);
    ASSERT_TRUE(session.RestoreState(&r).ok());
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(session.stats().annotation_passes, passes_at_cut);
    for (size_t i = cut; i < stream.size(); ++i) {
      ASSERT_TRUE(session.Feed(stream[i]).ok());
    }
    ASSERT_TRUE(session.Flush().ok());
  }
  EXPECT_TRUE(store.ContentEquals(reference_store));
}

TEST_F(CheckpointFixture, SessionRestoreRejectsWrongObject) {
  core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                 &world_->pois);
  AnnotationSession a(&pipeline, 5);
  common::StateWriter w;
  a.SaveState(&w);
  std::string blob = w.Release();
  AnnotationSession b(&pipeline, 6);
  common::StateReader r(blob);
  EXPECT_EQ(b.RestoreState(&r).code(),
            common::StatusCode::kInvalidArgument);
}

TEST_F(CheckpointFixture, ManagerCheckpointRestoreResumes) {
  // Two-object interleaved feed, cut mid-stream.
  std::vector<core::GpsPoint> s0 = PersonStream(0, 2);
  std::vector<core::GpsPoint> s1 = PersonStream(1, 2);
  auto feed_range = [&](SessionManager& manager, size_t from, size_t to) {
    size_t longest = std::max(s0.size(), s1.size());
    size_t index = 0;
    for (size_t k = 0; k < longest; ++k) {
      for (core::ObjectId object = 0; object < 2; ++object) {
        const std::vector<core::GpsPoint>& s = object == 0 ? s0 : s1;
        if (k >= s.size()) continue;
        if (index >= from && index < to) {
          auto fed = manager.Feed(object, s[k]);
          ASSERT_TRUE(fed.ok()) << fed.status().ToString();
        }
        ++index;
      }
    }
  };
  size_t total = s0.size() + s1.size();
  size_t cut = total / 2;

  store::SemanticTrajectoryStore reference_store;
  {
    core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                   &world_->pois, core::PipelineConfig{},
                                   &reference_store);
    SessionManager manager(&pipeline);
    feed_range(manager, 0, total);
    ASSERT_TRUE(manager.CloseAll().ok());
  }

  std::string ckpt =
      (fs::temp_directory_path() / "semitri_manager_ckpt.bin").string();
  fs::remove(ckpt);
  store::SemanticTrajectoryStore store;
  SessionManager::Stats stats_at_cut;
  {
    core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                   &world_->pois, core::PipelineConfig{},
                                   &store);
    SessionManager manager(&pipeline);
    feed_range(manager, 0, cut);
    stats_at_cut = manager.stats();
    ASSERT_TRUE(manager.Checkpoint(ckpt).ok());
  }  // process "exits" with live sessions
  {
    core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                   &world_->pois, core::PipelineConfig{},
                                   &store);
    SessionManager manager(&pipeline);
    ASSERT_TRUE(manager.Restore(ckpt).ok());
    EXPECT_EQ(manager.ActiveSessions(), stats_at_cut.active_sessions);
    SessionManager::Stats restored = manager.stats();
    EXPECT_EQ(restored.points_fed, stats_at_cut.points_fed);
    EXPECT_EQ(restored.sessions_opened, stats_at_cut.sessions_opened);
    EXPECT_EQ(restored.annotation_passes, stats_at_cut.annotation_passes);
    feed_range(manager, cut, total);
    ASSERT_TRUE(manager.CloseAll().ok());
  }
  EXPECT_TRUE(store.ContentEquals(reference_store));
  fs::remove(ckpt);
}

TEST_F(CheckpointFixture, ManagerRestoreRejectsCorruptFile) {
  core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                 &world_->pois);
  std::string ckpt =
      (fs::temp_directory_path() / "semitri_manager_corrupt.bin").string();
  {
    SessionManager manager(&pipeline);
    std::vector<core::GpsPoint> s = PersonStream(0, 1);
    for (size_t i = 0; i < std::min<size_t>(s.size(), 300); ++i) {
      ASSERT_TRUE(manager.Feed(0, s[i]).ok());
    }
    ASSERT_TRUE(manager.Checkpoint(ckpt).ok());
  }
  // Flip one payload byte: the CRC frame must reject the file.
  {
    std::fstream f(ckpt, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    char c = 0;
    f.seekg(-1, std::ios::end);
    f.get(c);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(c ^ 0x01));
  }
  SessionManager manager(&pipeline);
  EXPECT_EQ(manager.Restore(ckpt).code(), common::StatusCode::kCorruption);
  fs::remove(ckpt);
}

TEST_F(CheckpointFixture, CleanEvictionHasNoDataLoss) {
  store::SemanticTrajectoryStore store;
  core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                 &world_->pois, core::PipelineConfig{},
                                 &store);
  SessionManager manager(&pipeline);
  std::vector<core::GpsPoint> s = PersonStream(0, 1);
  for (const core::GpsPoint& fix : s) {
    ASSERT_TRUE(manager.Feed(0, fix).ok());
  }
  // Idle eviction goes through the flushing Close path: the open
  // trajectory is finalized, nothing is lost.
  auto evicted = manager.EvictIdle(0.0);
  ASSERT_TRUE(evicted.ok());
  EXPECT_EQ(*evicted, 1u);
  SessionManager::Stats stats = manager.stats();
  EXPECT_EQ(stats.sessions_evicted, 1u);
  EXPECT_EQ(stats.evictions_with_data_loss, 0u);
  EXPECT_GT(store.num_trajectories(), 0u);
}

TEST_F(CheckpointFixture, EvictionWithFailingFlushCountsDataLoss) {
  if (!common::FaultInjector::enabled()) {
    GTEST_SKIP() << "built without SEMITRI_FAULT_INJECTION";
  }
  common::FaultInjector& fi = common::FaultInjector::Global();
  fi.Reset();
  store::SemanticTrajectoryStore store;
  core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                 &world_->pois, core::PipelineConfig{},
                                 &store);
  SessionManager manager(&pipeline);
  std::vector<core::GpsPoint> s = PersonStream(0, 1);
  for (const core::GpsPoint& fix : s) {
    ASSERT_TRUE(manager.Feed(0, fix).ok());
  }
  // The finalization pass fails (e.g. the store's disk is gone): the
  // eviction still happens, but the open trajectory's rows are lost and
  // the Stats say so.
  fi.Arm(std::string("stage:") + core::kStageLanduseJoin,
         common::FaultPolicy::FailAlways());
  auto evicted = manager.EvictIdle(0.0);
  fi.Reset();
  EXPECT_FALSE(evicted.ok());  // the flush failure is reported
  SessionManager::Stats stats = manager.stats();
  EXPECT_EQ(stats.sessions_evicted, 1u);
  EXPECT_EQ(stats.evictions_with_data_loss, 1u);
  EXPECT_EQ(manager.ActiveSessions(), 0u);
}

// Regression: an idle-evicted object that reconnects must RESUME its
// trajectory-id block past the rows its retired session already
// finalized — not restart at object_id * ids_per_object and overwrite
// them. The reference is the same stream with an explicit flushing
// Close at the cut, which is exactly what an eviction does.
TEST_F(CheckpointFixture, EvictedObjectReconnectsWithoutOverwriting) {
  std::vector<core::GpsPoint> s = PersonStream(0, 2);
  size_t cut = s.size() / 2;

  store::SemanticTrajectoryStore reference_store;
  {
    core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                   &world_->pois, core::PipelineConfig{},
                                   &reference_store);
    SessionManager manager(&pipeline);
    for (size_t i = 0; i < cut; ++i) ASSERT_TRUE(manager.Feed(0, s[i]).ok());
    ASSERT_TRUE(manager.Close(0).ok());
    for (size_t i = cut; i < s.size(); ++i) {
      ASSERT_TRUE(manager.Feed(0, s[i]).ok());
    }
    ASSERT_TRUE(manager.CloseAll().ok());
  }

  store::SemanticTrajectoryStore store;
  core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                 &world_->pois, core::PipelineConfig{},
                                 &store);
  SessionManager manager(&pipeline);
  for (size_t i = 0; i < cut; ++i) ASSERT_TRUE(manager.Feed(0, s[i]).ok());
  auto evicted = manager.EvictIdle(0.0);
  ASSERT_TRUE(evicted.ok());
  ASSERT_EQ(*evicted, 1u);
  std::vector<core::TrajectoryId> durable_before = store.ListTrajectories();
  ASSERT_FALSE(durable_before.empty());

  // Reconnect: the fresh session must continue past the durable rows.
  for (size_t i = cut; i < s.size(); ++i) {
    ASSERT_TRUE(manager.Feed(0, s[i]).ok());
  }
  ASSERT_TRUE(manager.CloseAll().ok());

  // Every pre-eviction trajectory survived the reconnect untouched.
  std::vector<core::TrajectoryId> durable_after = store.ListTrajectories();
  for (core::TrajectoryId id : durable_before) {
    EXPECT_TRUE(std::find(durable_after.begin(), durable_after.end(), id) !=
                durable_after.end())
        << "reconnect overwrote trajectory " << id;
  }
  EXPECT_GT(durable_after.size(), durable_before.size());
  EXPECT_TRUE(store.ContentEquals(reference_store));
}

// The same regression across a checkpoint/restore boundary: the resume
// cursor a previous eviction left behind must survive the manager
// checkpoint, or a restored-then-reconnected object overwrites its own
// durable rows.
TEST_F(CheckpointFixture, EvictedObjectResumesAcrossCheckpointRestore) {
  std::vector<core::GpsPoint> s = PersonStream(0, 2);
  size_t cut = s.size() / 2;

  store::SemanticTrajectoryStore reference_store;
  {
    core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                   &world_->pois, core::PipelineConfig{},
                                   &reference_store);
    SessionManager manager(&pipeline);
    for (size_t i = 0; i < cut; ++i) ASSERT_TRUE(manager.Feed(0, s[i]).ok());
    ASSERT_TRUE(manager.Close(0).ok());
    for (size_t i = cut; i < s.size(); ++i) {
      ASSERT_TRUE(manager.Feed(0, s[i]).ok());
    }
    ASSERT_TRUE(manager.CloseAll().ok());
  }

  std::string ckpt =
      (fs::temp_directory_path() / "semitri_evict_restore_ckpt.bin").string();
  fs::remove(ckpt);
  store::SemanticTrajectoryStore store;
  {
    core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                   &world_->pois, core::PipelineConfig{},
                                   &store);
    SessionManager manager(&pipeline);
    for (size_t i = 0; i < cut; ++i) ASSERT_TRUE(manager.Feed(0, s[i]).ok());
    auto evicted = manager.EvictIdle(0.0);
    ASSERT_TRUE(evicted.ok());
    ASSERT_EQ(*evicted, 1u);
    ASSERT_TRUE(manager.Checkpoint(ckpt).ok());
  }  // process "exits" with the object evicted
  {
    core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                   &world_->pois, core::PipelineConfig{},
                                   &store);
    SessionManager manager(&pipeline);
    ASSERT_TRUE(manager.Restore(ckpt).ok());
    EXPECT_EQ(manager.ActiveSessions(), 0u);
    for (size_t i = cut; i < s.size(); ++i) {
      ASSERT_TRUE(manager.Feed(0, s[i]).ok());
    }
    ASSERT_TRUE(manager.CloseAll().ok());
  }
  EXPECT_TRUE(store.ContentEquals(reference_store));
  fs::remove(ckpt);
}

}  // namespace
}  // namespace semitri::stream
