// Concurrency stress for stream::SessionManager: many ingestion threads
// hammering one manager over one shared pipeline (store + profiler
// sinks attached), with concurrent Flush / EvictIdle / stats readers.
// Runs under the TSan CI leg (-DSEMITRI_SANITIZE=thread) like every
// other test, which is where it earns its keep: any unguarded shared
// state in the streaming subsystem shows up as a data-race report.

#include "stream/session_manager.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "analytics/latency_profiler.h"
#include "common/rng.h"
#include "datagen/presets.h"
#include "datagen/world.h"
#include "store/semantic_trajectory_store.h"

namespace semitri::stream {
namespace {

TEST(StreamStressTest, ConcurrentFeedersSharedPipeline) {
  datagen::WorldConfig wc;
  wc.seed = 51;
  wc.extent_meters = 3000.0;
  wc.num_pois = 400;
  datagen::World world = datagen::WorldGenerator(wc).Generate();
  datagen::DatasetFactory factory(&world, 52);

  constexpr int kObjects = 8;
  constexpr int kFeeders = 4;
  std::vector<std::vector<core::GpsPoint>> streams;
  for (int i = 0; i < kObjects; ++i) {
    datagen::PersonSpec spec = factory.MakePersonSpec(i);
    streams.push_back(factory.SimulatePersonDays(i, spec, 1).points);
  }

  store::SemanticTrajectoryStore store;
  analytics::LatencyProfiler profiler;
  core::SemiTriPipeline pipeline(&world.regions, &world.roads, &world.pois,
                                 core::PipelineConfig{}, &store, &profiler);
  SessionManagerConfig mc;
  mc.num_shards = 4;
  SessionManager manager(&pipeline, mc);

  // Each feeder owns a disjoint set of objects (per-object feeds must
  // stay time-ordered) and drives them round-robin; feeders contend on
  // shards, the store, and the profiler.
  std::atomic<bool> failed{false};
  std::vector<std::thread> feeders;
  for (int f = 0; f < kFeeders; ++f) {
    feeders.emplace_back([&, f] {
      size_t longest = 0;
      for (int i = f; i < kObjects; i += kFeeders) {
        longest = std::max(longest, streams[i].size());
      }
      for (size_t k = 0; k < longest; ++k) {
        for (int i = f; i < kObjects; i += kFeeders) {
          if (k >= streams[i].size()) continue;
          auto fed = manager.Feed(i, streams[i][k]);
          if (!fed.ok() || !fed->accepted) failed.store(true);
        }
      }
    });
  }

  // Concurrent control plane: stats readers, idle eviction with a
  // threshold long enough to never fire, and flushes of a live object.
  std::atomic<bool> done{false};
  std::thread control([&] {
    common::Rng rng(7);
    while (!done.load()) {
      (void)manager.stats();
      (void)manager.ActiveSessions();
      auto evicted = manager.EvictIdle(3600.0);
      if (!evicted.ok()) failed.store(true);
      (void)manager.Flush(static_cast<core::ObjectId>(rng.UniformInt(0, 63)));
      std::this_thread::yield();
    }
  });

  for (std::thread& t : feeders) t.join();
  done.store(true);
  control.join();

  ASSERT_TRUE(manager.CloseAll().ok());
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(manager.ActiveSessions(), 0u);

  SessionManager::Stats stats = manager.stats();
  size_t total_points = 0;
  for (const auto& s : streams) total_points += s.size();
  EXPECT_EQ(stats.points_fed, total_points);
  EXPECT_EQ(stats.points_rejected, 0u);
  EXPECT_EQ(stats.sessions_opened, static_cast<size_t>(kObjects));
  EXPECT_GT(stats.episodes_closed, 0u);
  // Every object produced at least one stored trajectory, all written
  // through the shared (internally synchronized) store.
  EXPECT_GE(store.num_trajectories(), static_cast<size_t>(kObjects));
  EXPECT_GT(profiler.Count(kStreamStageFinalizeTrajectory), 0u);
}

TEST(StreamStressTest, ChurningSessionsUnderEviction) {
  // No semantic sources: exercises pure session lifecycle (create,
  // feed, evict, recreate) under contention without annotation cost.
  core::SemiTriPipeline pipeline(nullptr, nullptr, nullptr);
  SessionManagerConfig mc;
  mc.num_shards = 2;
  mc.session.max_buffered_points = 64;
  SessionManager manager(&pipeline, mc);

  constexpr int kThreads = 4;
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      // Disjoint object ranges; clocks are per object so feeds stay
      // ordered even as sessions are evicted and recreated mid-stream.
      for (int round = 0; round < 40; ++round) {
        for (int o = 0; o < 6; ++o) {
          core::ObjectId id = w * 100 + o;
          double t = round * 100.0;
          for (int k = 0; k < 10; ++k) {
            core::GpsPoint fix{{o * 10.0 + k, w * 5.0}, t + k * 5.0};
            auto fed = manager.Feed(id, fix);
            if (!fed.ok()) failed.store(true);
          }
        }
        if (round % 8 == 3) {
          if (!manager.EvictIdle(0.0).ok()) failed.store(true);
        }
      }
    });
  }
  std::thread closer([&] {
    for (int i = 0; i < 50; ++i) {
      (void)manager.Close(static_cast<core::ObjectId>(i * 7 % 400));
      (void)manager.stats();
      std::this_thread::yield();
    }
  });
  for (std::thread& t : workers) t.join();
  closer.join();

  ASSERT_TRUE(manager.CloseAll().ok());
  EXPECT_FALSE(failed.load());
  SessionManager::Stats stats = manager.stats();
  EXPECT_EQ(stats.points_fed,
            static_cast<size_t>(kThreads) * 40u * 6u * 10u);
  EXPECT_GT(stats.sessions_evicted, 0u);
}

TEST(StreamStressTest, ContendedAdmissionWithShedOldestIdle) {
  // Overload machinery under contention: tight global budgets with the
  // shed-oldest-idle policy, so admissions on one shard evict sessions
  // on other shards while feeders, idle eviction, closes and Health
  // readers all run concurrently. TSan checks the claim/rollback budget
  // accounting and the activity heap; the final invariants check that
  // no claim leaks whatever interleaving happened.
  core::SemiTriPipeline pipeline(nullptr, nullptr, nullptr);
  SessionManagerConfig mc;
  mc.num_shards = 4;
  mc.admission.max_sessions = 6;
  mc.admission.max_buffered_fixes = 256;
  mc.admission.overload_policy = OverloadPolicy::kShedOldestIdle;
  SessionManager manager(&pipeline, mc);

  constexpr int kThreads = 4;
  std::atomic<bool> failed{false};
  std::atomic<size_t> accepted{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int round = 0; round < 30; ++round) {
        for (int o = 0; o < 8; ++o) {
          core::ObjectId id = w * 100 + o;
          double t = round * 100.0;
          for (int k = 0; k < 8; ++k) {
            core::GpsPoint fix{{o * 10.0 + k, w * 5.0}, t + k * 5.0};
            auto fed = manager.Feed(id, fix);
            if (fed.ok()) {
              accepted.fetch_add(1);
            } else if (fed.status().code() !=
                       common::StatusCode::kResourceExhausted) {
              // Shedding may legitimately fail to find a candidate in a
              // race; any other error is a real bug.
              failed.store(true);
            }
          }
        }
      }
    });
  }
  std::atomic<bool> done{false};
  std::thread control([&] {
    while (!done.load()) {
      if (!manager.EvictIdle(0.0).ok()) failed.store(true);
      (void)manager.Close(static_cast<core::ObjectId>(107));
      (void)manager.Health();
      (void)manager.stats();
      std::this_thread::yield();
    }
  });
  for (std::thread& t : workers) t.join();
  done.store(true);
  control.join();

  ASSERT_TRUE(manager.CloseAll().ok());
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(manager.ActiveSessions(), 0u);

  SessionManager::Stats stats = manager.stats();
  // Claim/rollback accounting balanced out: nothing left charged after
  // every session closed, and every accepted fix reached a session.
  EXPECT_EQ(stats.buffered_fixes, 0u);
  EXPECT_EQ(stats.points_fed, accepted.load());
  EXPECT_GT(stats.sessions_shed, 0u);
}

}  // namespace
}  // namespace semitri::stream
