// Tests for Baum-Welch transition learning (the §4.3 "personalized
// transition matrix" extension) and its integration with the point
// annotator.

#include <span>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "hmm/hmm.h"
#include "poi/point_annotator.h"

namespace semitri::hmm {
namespace {

// Samples hidden states and soft emissions from a known model. Emission
// rows favor the true state with the given strength.
EmissionMatrix SampleSequence(const HmmModel& truth, size_t length,
                              double emission_strength, common::Rng& rng) {
  const size_t n = truth.num_states();
  EmissionMatrix emissions;
  emissions.Reset(n);
  size_t state = rng.Discrete(truth.initial);
  for (size_t t = 0; t < length; ++t) {
    std::span<double> row = emissions.AppendRow();
    double off = (1.0 - emission_strength) / static_cast<double>(n - 1);
    for (double& e : row) e = off;
    row[state] = emission_strength;
    state = rng.Discrete(truth.transition[state]);
  }
  return emissions;
}

HmmModel StickyTruth() {
  HmmModel m;
  m.initial = {0.7, 0.3};
  m.transition = {{0.9, 0.1}, {0.2, 0.8}};
  return m;
}

TEST(BaumWelchTest, RecoversStickyTransitions) {
  common::Rng rng(5);
  HmmModel truth = StickyTruth();
  std::vector<EmissionMatrix> sequences;
  for (int s = 0; s < 60; ++s) {
    sequences.push_back(SampleSequence(truth, 40, 0.9, rng));
  }
  HmmModel start;
  start.initial = {0.5, 0.5};
  start.transition = MakeDefaultTransition(2, 0.5);
  auto result = BaumWelch(start, sequences);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->model.transition[0][0], 0.9, 0.05);
  EXPECT_NEAR(result->model.transition[1][1], 0.8, 0.1);
}

TEST(BaumWelchTest, LikelihoodMonotonicallyImproves) {
  common::Rng rng(7);
  HmmModel truth = StickyTruth();
  std::vector<EmissionMatrix> sequences;
  for (int s = 0; s < 10; ++s) {
    sequences.push_back(SampleSequence(truth, 25, 0.85, rng));
  }
  HmmModel start;
  start.initial = {0.5, 0.5};
  start.transition = MakeDefaultTransition(2, 0.6);
  double previous = -std::numeric_limits<double>::infinity();
  // Run EM one iteration at a time; each step must not decrease the
  // training likelihood (the EM guarantee, modulo smoothing epsilon).
  HmmModel current = start;
  for (int step = 0; step < 8; ++step) {
    BaumWelchOptions options;
    options.max_iterations = 1;
    options.smoothing = 0.0;
    auto result = BaumWelch(current, sequences, options);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->log_likelihood, previous - 1e-9) << "step " << step;
    previous = result->log_likelihood;
    current = result->model;
  }
}

TEST(BaumWelchTest, LearnedModelIsStochastic) {
  common::Rng rng(9);
  HmmModel truth = StickyTruth();
  std::vector<EmissionMatrix> sequences = {
      SampleSequence(truth, 30, 0.9, rng)};
  HmmModel start;
  start.initial = {0.5, 0.5};
  start.transition = MakeDefaultTransition(2, 0.5);
  auto result = BaumWelch(start, sequences);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ValidateModel(result->model).ok());
}

TEST(BaumWelchTest, RejectsEmptyInput) {
  HmmModel start;
  start.initial = {0.5, 0.5};
  start.transition = MakeDefaultTransition(2, 0.5);
  EXPECT_FALSE(BaumWelch(start, {}).ok());
  std::vector<EmissionMatrix> only_empty = {EmissionMatrix()};
  EXPECT_FALSE(BaumWelch(start, only_empty).ok());
}

TEST(BaumWelchTest, KeepsInitialWhenAsked) {
  common::Rng rng(11);
  HmmModel truth = StickyTruth();
  std::vector<EmissionMatrix> sequences = {
      SampleSequence(truth, 30, 0.9, rng)};
  HmmModel start;
  start.initial = {0.25, 0.75};
  start.transition = MakeDefaultTransition(2, 0.5);
  BaumWelchOptions options;
  options.learn_initial = false;
  auto result = BaumWelch(start, sequences, options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->model.initial[0], 0.25);
  EXPECT_DOUBLE_EQ(result->model.initial[1], 0.75);
}

// Integration: a user who alternates feedings -> item sale stops every
// day teaches the annotator that transition.
TEST(BaumWelchIntegration, PointAnnotatorLearnsRoutine) {
  common::Rng rng(13);
  poi::PoiSet pois = poi::PoiSet::MilanCategories();
  // Two clean clusters: feedings (1) at x=0, item sale (2) at x=2000.
  for (int i = 0; i < 40; ++i) {
    pois.Add({rng.Gaussian(0, 40), rng.Gaussian(0, 40)}, 1);
    pois.Add({2000 + rng.Gaussian(0, 40), rng.Gaussian(0, 40)}, 2);
  }
  poi::PointAnnotator annotator(&pois);
  double before = annotator.model().transition[1][2];

  auto stop_at = [&](double x, double t) {
    core::Episode ep;
    ep.kind = core::EpisodeKind::kStop;
    ep.time_in = t;
    ep.time_out = t + 1800;
    ep.center = {x, 0.0};
    ep.bounds = geo::BoundingBox::FromPoint(ep.center).Inflated(20.0);
    return ep;
  };
  std::vector<std::vector<core::Episode>> history;
  for (int day = 0; day < 20; ++day) {
    history.push_back({stop_at(0, day * 86400.0 + 43000.0),
                       stop_at(2000, day * 86400.0 + 50000.0)});
  }
  auto fitted = annotator.FitTransitions(history);
  ASSERT_TRUE(fitted.ok());
  double after = annotator.model().transition[1][2];
  // The lunch -> shopping transition should now dominate row 1.
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.5);
}

}  // namespace
}  // namespace semitri::hmm
