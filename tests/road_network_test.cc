// Tests for the road network substrate: construction, candidate
// retrieval, nearest segment (indexed vs linear), connectivity.

#include "road/road_network.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace semitri::road {
namespace {

using geo::Point;

RoadNetwork MakeCross() {
  // Two perpendicular streets crossing at the origin node.
  RoadNetwork net;
  NodeId center = net.AddNode({0, 0});
  NodeId east = net.AddNode({100, 0});
  NodeId west = net.AddNode({-100, 0});
  NodeId north = net.AddNode({0, 100});
  net.AddSegment(center, east, RoadType::kArterial, "EW");
  net.AddSegment(west, center, RoadType::kArterial, "EW");
  net.AddSegment(center, north, RoadType::kResidential, "NS");
  return net;
}

TEST(RoadNetworkTest, ConstructionAndAccessors) {
  RoadNetwork net = MakeCross();
  EXPECT_EQ(net.num_nodes(), 4u);
  EXPECT_EQ(net.num_segments(), 3u);
  EXPECT_DOUBLE_EQ(net.TotalLengthMeters(), 300.0);
  EXPECT_EQ(net.segment(0).name, "EW");
  EXPECT_DOUBLE_EQ(net.segment(0).Length(), 100.0);
}

TEST(RoadNetworkTest, CandidateSegmentsWithinRadius) {
  RoadNetwork net = MakeCross();
  auto candidates = net.CandidateSegments({50, 5}, 10.0);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], 0);
  // Near the crossing, all three are candidates.
  EXPECT_EQ(net.CandidateSegments({0, 0}, 10.0).size(), 3u);
  EXPECT_TRUE(net.CandidateSegments({500, 500}, 10.0).empty());
}

TEST(RoadNetworkTest, NearestSegmentMatchesLinear) {
  common::Rng rng(3);
  RoadNetwork net;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 100; ++i) {
    nodes.push_back(net.AddNode(
        {rng.Uniform(0, 1000), rng.Uniform(0, 1000)}));
  }
  for (int i = 0; i < 200; ++i) {
    NodeId a = nodes[static_cast<size_t>(rng.UniformInt(0, 99))];
    NodeId b = nodes[static_cast<size_t>(rng.UniformInt(0, 99))];
    if (a == b) continue;
    net.AddSegment(a, b, RoadType::kResidential);
  }
  for (int q = 0; q < 50; ++q) {
    Point p{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    core::PlaceId fast = net.NearestSegment(p);
    core::PlaceId slow = net.NearestSegmentLinear(p);
    // Equal distance ties can pick either; compare distances.
    EXPECT_DOUBLE_EQ(net.segment(fast).shape.DistanceTo(p),
                     net.segment(slow).shape.DistanceTo(p));
  }
}

TEST(RoadNetworkTest, Connectivity) {
  RoadNetwork net = MakeCross();
  EXPECT_EQ(net.SegmentsAtNode(0).size(), 3u);  // center
  EXPECT_EQ(net.SegmentsAtNode(1).size(), 1u);  // east
  auto adjacent = net.AdjacentSegments(0);      // EW east half
  EXPECT_EQ(adjacent.size(), 2u);
  EXPECT_TRUE(std::find(adjacent.begin(), adjacent.end(), 1) !=
              adjacent.end());
  EXPECT_TRUE(std::find(adjacent.begin(), adjacent.end(), 2) !=
              adjacent.end());
}

TEST(RoadNetworkTest, WalkabilityByType) {
  EXPECT_TRUE(IsRoadTypeWalkable(RoadType::kFootway));
  EXPECT_TRUE(IsRoadTypeWalkable(RoadType::kResidential));
  EXPECT_FALSE(IsRoadTypeWalkable(RoadType::kHighway));
  EXPECT_FALSE(IsRoadTypeWalkable(RoadType::kRailMetro));
}

TEST(RoadNetworkTest, EmptyNetworkNearest) {
  RoadNetwork net;
  EXPECT_EQ(net.NearestSegment({0, 0}), core::kInvalidPlaceId);
  EXPECT_EQ(net.NearestSegmentLinear({0, 0}), core::kInvalidPlaceId);
}

}  // namespace
}  // namespace semitri::road
