// Structural tests for the R*-tree: invariants under inserts and
// deletes, height bounds, clustered data, fanout sweeps. Brute-force
// query parity lives in spatial_index_test.cc, which runs the same
// conformance suite against every SpatialIndex backend.

#include "index/rstar_tree.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/box.h"

namespace semitri::index {
namespace {

using geo::BoundingBox;
using geo::Point;

BoundingBox RandomBox(common::Rng& rng, double extent, double max_size) {
  Point min{rng.Uniform(0.0, extent), rng.Uniform(0.0, extent)};
  Point size{rng.Uniform(0.0, max_size), rng.Uniform(0.0, max_size)};
  return {min, min + size};
}

TEST(RStarTreeTest, EmptyTree) {
  RStarTree<int> tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Query(BoundingBox({0, 0}, {100, 100})).empty());
  EXPECT_TRUE(tree.NearestNeighbors({0, 0}, 3).empty());
}

TEST(RStarTreeTest, SingleEntry) {
  RStarTree<int> tree;
  tree.Insert(BoundingBox({1, 1}, {2, 2}), 42);
  EXPECT_EQ(tree.size(), 1u);
  auto hits = tree.Query(BoundingBox({0, 0}, {3, 3}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42);
  EXPECT_TRUE(tree.Query(BoundingBox({5, 5}, {6, 6})).empty());
}

TEST(RStarTreeTest, RemoveDeletesExactlyOneEntry) {
  common::Rng rng(23);
  RStarTree<int> tree(8);
  std::vector<BoundingBox> boxes;
  for (int i = 0; i < 400; ++i) {
    BoundingBox b = RandomBox(rng, 100.0, 10.0);
    boxes.push_back(b);
    tree.Insert(b, i);
  }
  // Remove every third entry.
  std::set<int> removed;
  for (int i = 0; i < 400; i += 3) {
    EXPECT_TRUE(tree.Remove(boxes[static_cast<size_t>(i)], i)) << i;
    removed.insert(i);
  }
  EXPECT_EQ(tree.size(), 400u - removed.size());
  // Removing again fails.
  EXPECT_FALSE(tree.Remove(boxes[0], 0));
  // Remaining entries are all still queryable.
  for (int i = 0; i < 400; ++i) {
    std::vector<int> hits = tree.Query(boxes[static_cast<size_t>(i)]);
    bool found = std::find(hits.begin(), hits.end(), i) != hits.end();
    EXPECT_EQ(found, removed.count(i) == 0) << i;
  }
}

TEST(RStarTreeTest, RemoveDownToEmptyAndReuse) {
  RStarTree<int> tree(4);
  std::vector<BoundingBox> boxes;
  for (int i = 0; i < 100; ++i) {
    BoundingBox b({static_cast<double>(i), 0.0},
                  {static_cast<double>(i) + 0.5, 1.0});
    boxes.push_back(b);
    tree.Insert(b, i);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(tree.Remove(boxes[static_cast<size_t>(i)], i));
  }
  EXPECT_TRUE(tree.empty());
  tree.Insert(BoundingBox({0, 0}, {1, 1}), 7);
  EXPECT_EQ(tree.Query(BoundingBox({0, 0}, {2, 2})).size(), 1u);
}

TEST(RStarTreeTest, DuplicateBoxesAllRetrievable) {
  RStarTree<int> tree(4);
  BoundingBox b({5, 5}, {6, 6});
  for (int i = 0; i < 50; ++i) tree.Insert(b, i);
  std::vector<int> hits = tree.Query(b);
  EXPECT_EQ(hits.size(), 50u);
}

TEST(RStarTreeTest, HeightGrowsLogarithmically) {
  common::Rng rng(31);
  RStarTree<int> tree(16);
  for (int i = 0; i < 10000; ++i) {
    tree.Insert(RandomBox(rng, 10000.0, 5.0), i);
  }
  // With fanout ~16 and min fill ~6, 10k entries need height <= 6.
  EXPECT_LE(tree.Height(), 6u);
  EXPECT_GE(tree.Height(), 3u);
}

TEST(RStarTreeTest, ClusteredDataStillCorrect) {
  // Pathological input: tight clusters stress forced reinsertion.
  common::Rng rng(37);
  RStarTree<int> tree(8);
  std::vector<Point> points;
  for (int cluster = 0; cluster < 20; ++cluster) {
    Point c{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    for (int i = 0; i < 100; ++i) {
      Point p = c + Point{rng.Gaussian(0.0, 1.0), rng.Gaussian(0.0, 1.0)};
      points.push_back(p);
      tree.Insert(BoundingBox::FromPoint(p), static_cast<int>(points.size()) - 1);
    }
  }
  for (int q = 0; q < 20; ++q) {
    Point query{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    double radius = 50.0;
    std::vector<int> got = tree.QueryRadius(query, radius);
    size_t expected = 0;
    for (const Point& p : points) {
      if (p.DistanceTo(query) <= radius) ++expected;
    }
    EXPECT_EQ(got.size(), expected);
  }
}

// Property-style sweep: brute-force parity across tree fanouts.
class RStarTreeFanout : public ::testing::TestWithParam<size_t> {};

TEST_P(RStarTreeFanout, ParityAcrossFanouts) {
  common::Rng rng(GetParam());
  RStarTree<int> tree(GetParam());
  std::vector<BoundingBox> boxes;
  for (int i = 0; i < 1000; ++i) {
    BoundingBox b = RandomBox(rng, 500.0, 12.0);
    boxes.push_back(b);
    tree.Insert(b, i);
  }
  for (int q = 0; q < 25; ++q) {
    BoundingBox query = RandomBox(rng, 500.0, 50.0);
    std::vector<int> got = tree.Query(query);
    std::sort(got.begin(), got.end());
    std::vector<int> expected;
    for (int i = 0; i < 1000; ++i) {
      if (boxes[static_cast<size_t>(i)].Intersects(query)) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, RStarTreeFanout,
                         ::testing::Values(4, 6, 8, 16, 32, 64));

}  // namespace
}  // namespace semitri::index
