// Parameterized property sweeps across the data-quality axes the paper
// emphasizes (§1.2: "sampling rates and GPS signal availability
// influence the quality of raw trajectory data"): the pipeline's
// invariants must hold for every sampling rate, noise level, and seed.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/pipeline.h"
#include "datagen/presets.h"
#include "road/map_matcher.h"
#include "traj/point_batch.h"
#include "traj/segmentation.h"

namespace semitri {
namespace {

// ---------------------------------------------------------------------
// Segmentation must find the move-stop-move structure at any sampling
// rate from 1 s (vehicles) to 40 s (Milan cars).

class SamplingRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(SamplingRateSweep, SegmentationStructureStable) {
  const double interval = GetParam();
  common::Rng rng(41);
  core::RawTrajectory t;
  double time = 0.0;
  double x = 0.0;
  // 10 minutes moving at 8 m/s, 10 minutes dwell, 10 minutes moving.
  auto emit = [&](double speed, double duration) {
    for (double end = time + duration; time < end; time += interval) {
      x += speed * interval;
      t.points.push_back({{x + rng.Gaussian(0, 4.0), rng.Gaussian(0, 4.0)},
                          time});
    }
  };
  emit(8.0, 600.0);
  emit(0.0, 600.0);
  emit(8.0, 600.0);

  traj::StopMoveSegmenter segmenter;
  auto episodes = segmenter.Segment(t);
  size_t stops = 0, moves = 0;
  for (const auto& ep : episodes) {
    if (ep.kind == core::EpisodeKind::kStop) ++stops;
    if (ep.kind == core::EpisodeKind::kMove) ++moves;
  }
  EXPECT_EQ(stops, 1u) << "interval " << interval;
  EXPECT_EQ(moves, 2u) << "interval " << interval;
}

INSTANTIATE_TEST_SUITE_P(Rates, SamplingRateSweep,
                         ::testing::Values(1.0, 5.0, 10.0, 20.0, 40.0));

// ---------------------------------------------------------------------
// Global map matching must beat or equal the geometric baseline for
// every seed at phone-grade noise.

class MatcherSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatcherSeedSweep, GlobalNeverWorseThanBaseline) {
  datagen::WorldConfig wc;
  wc.seed = GetParam();
  wc.extent_meters = 3000.0;
  wc.num_pois = 100;
  datagen::World world = datagen::WorldGenerator(wc).Generate();
  datagen::DatasetFactory factory(&world, GetParam() + 1);
  datagen::Dataset drive =
      factory.SeattleDrive(/*hours=*/0.4, /*gps_sigma_meters=*/10.0);
  const auto& track = drive.tracks[0];
  ASSERT_GT(track.points.size(), 100u);
  std::vector<core::PlaceId> truth;
  for (const auto& s : track.truth) truth.push_back(s.segment);

  road::GlobalMapMatcher global(&world.roads);
  road::GeometricMapMatcher baseline(&world.roads);
  traj::PointBatch batch;
  batch.BuildFrom(track.points);
  double acc_global =
      road::MatchingAccuracy(global.MatchPoints(batch.View()), truth);
  double acc_baseline =
      road::MatchingAccuracy(baseline.MatchPoints(batch.View()), truth);
  EXPECT_GE(acc_global, acc_baseline - 0.01) << "seed " << GetParam();
  EXPECT_GT(acc_global, 0.6) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherSeedSweep,
                         ::testing::Values(201, 202, 203, 204, 205));

// ---------------------------------------------------------------------
// Pipeline invariants across dataset presets.

struct PresetCase {
  const char* name;
  int preset;  // 0 = taxi, 1 = cars, 2 = people
};

class PresetSweep : public ::testing::TestWithParam<PresetCase> {};

TEST_P(PresetSweep, PipelineInvariantsHold) {
  datagen::WorldConfig wc;
  wc.seed = 71;
  wc.extent_meters = 3500.0;
  wc.num_pois = 400;
  datagen::World world = datagen::WorldGenerator(wc).Generate();
  datagen::DatasetFactory factory(&world, 72);
  datagen::Dataset dataset;
  switch (GetParam().preset) {
    case 0: dataset = factory.LausanneTaxis(1, 2, 2.0); break;
    case 1: dataset = factory.MilanPrivateCars(3, 2); break;
    default: dataset = factory.NokiaPeople(2, 3); break;
  }
  core::SemiTriPipeline pipeline(&world.regions, &world.roads,
                                 &world.pois);
  for (const auto& track : dataset.tracks) {
    auto results = pipeline.ProcessStream(track.object_id, track.points);
    ASSERT_TRUE(results.ok());
    for (const core::PipelineResult& day : *results) {
      // Episodes partition the cleaned points and are time-ordered.
      size_t covered = 0;
      double last_out = -1e18;
      for (const core::Episode& ep : day.episodes) {
        covered += ep.num_points();
        EXPECT_GE(ep.time_in, last_out - 1e-6);
        EXPECT_LE(ep.time_in, ep.time_out);
        last_out = ep.time_out;
      }
      EXPECT_EQ(covered, day.cleaned.size());
      // Region layer: one episode per stop/move episode.
      ASSERT_TRUE(day.region_layer.has_value());
      EXPECT_EQ(day.region_layer->episodes.size(), day.episodes.size());
      // Point layer: one per stop, each with category + confidence in
      // (0, 1].
      ASSERT_TRUE(day.point_layer.has_value());
      EXPECT_EQ(day.point_layer->episodes.size(), day.NumStops());
      for (const core::SemanticEpisode& ep : day.point_layer->episodes) {
        EXPECT_FALSE(ep.FindAnnotation("poi_category").empty());
        const std::string& conf =
            ep.FindAnnotation("poi_category_confidence");
        ASSERT_FALSE(conf.empty());
        double c = std::stod(conf);
        EXPECT_GT(c, 0.0);
        EXPECT_LE(c, 1.0 + 1e-9);
      }
      // Line layer: every matched episode has a mode annotation.
      ASSERT_TRUE(day.line_layer.has_value());
      for (const core::SemanticEpisode& ep : day.line_layer->episodes) {
        if (ep.place.valid()) {
          EXPECT_FALSE(ep.FindAnnotation("transport_mode").empty());
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Presets, PresetSweep,
    ::testing::Values(PresetCase{"taxi", 0}, PresetCase{"cars", 1},
                      PresetCase{"people", 2}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace semitri
