// Integration tests for the end-to-end SeMiTri pipeline: all layers on
// simulated data, partial-source behaviour, store contents, latency
// accounting.

#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "datagen/presets.h"
#include "datagen/world.h"

namespace semitri::core {
namespace {

class PipelineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::WorldConfig wc;
    wc.seed = 33;
    wc.extent_meters = 4000.0;
    wc.num_pois = 800;
    world_ = std::make_unique<datagen::World>(
        datagen::WorldGenerator(wc).Generate());
    factory_ = std::make_unique<datagen::DatasetFactory>(world_.get(), 35);
  }
  std::unique_ptr<datagen::World> world_;
  std::unique_ptr<datagen::DatasetFactory> factory_;
};

TEST_F(PipelineFixture, FullPipelineProducesAllLayers) {
  datagen::PersonSpec spec = factory_->MakePersonSpec(0);
  datagen::SimulatedTrack track = factory_->SimulatePersonDays(0, spec, 3);

  store::SemanticTrajectoryStore store;
  analytics::LatencyProfiler profiler;
  SemiTriPipeline pipeline(&world_->regions, &world_->roads, &world_->pois,
                           PipelineConfig{}, &store, &profiler);
  auto results = pipeline.ProcessStream(0, track.points);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 3u);  // daily trajectories

  size_t total_stops = 0;
  for (const PipelineResult& day : *results) {
    EXPECT_FALSE(day.episodes.empty());
    ASSERT_TRUE(day.region_layer.has_value());
    ASSERT_TRUE(day.line_layer.has_value());
    ASSERT_TRUE(day.point_layer.has_value());
    EXPECT_EQ(day.region_layer->episodes.size(), day.episodes.size());
    // Point layer has one episode per stop.
    EXPECT_EQ(day.point_layer->episodes.size(), day.NumStops());
    total_stops += day.NumStops();
  }
  EXPECT_GT(total_stops, 3u);

  // Store holds everything.
  EXPECT_EQ(store.num_trajectories(), 3u);
  EXPECT_GT(store.num_gps_records(), 0u);
  EXPECT_GT(store.num_semantic_episodes(), 0u);
  // All Fig. 17 stages recorded.
  EXPECT_EQ(profiler.Count(kStageComputeEpisode), 3u);
  EXPECT_EQ(profiler.Count(kStageStoreEpisode), 3u);
  EXPECT_EQ(profiler.Count(kStageMapMatch), 3u);
  EXPECT_EQ(profiler.Count(kStageLanduseJoin), 3u);
}

TEST_F(PipelineFixture, PartialSourcesSkipLayers) {
  datagen::PersonSpec spec = factory_->MakePersonSpec(1);
  datagen::SimulatedTrack track = factory_->SimulatePersonDays(1, spec, 2);

  SemiTriPipeline regions_only(&world_->regions, nullptr, nullptr);
  auto results = regions_only.ProcessStream(1, track.points);
  ASSERT_TRUE(results.ok());
  for (const PipelineResult& day : *results) {
    EXPECT_TRUE(day.region_layer.has_value());
    EXPECT_FALSE(day.line_layer.has_value());
    EXPECT_FALSE(day.point_layer.has_value());
  }

  SemiTriPipeline roads_only(nullptr, &world_->roads, nullptr);
  auto road_results = roads_only.ProcessStream(1, track.points);
  ASSERT_TRUE(road_results.ok());
  for (const PipelineResult& day : *road_results) {
    EXPECT_FALSE(day.region_layer.has_value());
    EXPECT_TRUE(day.line_layer.has_value());
  }
}

TEST_F(PipelineFixture, PerPointRegionInterpretation) {
  datagen::PersonSpec spec = factory_->MakePersonSpec(2);
  datagen::SimulatedTrack track = factory_->SimulatePersonDays(2, spec, 1);
  PipelineConfig config;
  config.region.granularity =
      region::RegionAnnotatorConfig::Granularity::kPerPoint;
  SemiTriPipeline pipeline(&world_->regions, nullptr, nullptr, config);
  auto results = pipeline.ProcessStream(2, track.points);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  const PipelineResult& day = results->front();
  ASSERT_TRUE(day.region_layer.has_value());
  // Per-point tuples compress versus raw records (the §5.2 storage-
  // compression claim; smartphone-rate data compresses less than the
  // paper's 1 Hz taxi feed but still substantially).
  EXPECT_LT(day.region_layer->episodes.size(), day.cleaned.size() / 3);
  EXPECT_GT(day.region_layer->episodes.size(), 0u);
}

TEST_F(PipelineFixture, AnnotateComputedMatchesFullRun) {
  datagen::PersonSpec spec = factory_->MakePersonSpec(3);
  datagen::SimulatedTrack track = factory_->SimulatePersonDays(3, spec, 2);

  store::SemanticTrajectoryStore full_store;
  SemiTriPipeline full(&world_->regions, &world_->roads, &world_->pois,
                       PipelineConfig{}, &full_store);
  auto full_results = full.ProcessStream(3, track.points);
  ASSERT_TRUE(full_results.ok());
  ASSERT_FALSE(full_results->empty());

  // Re-annotating from the cached trajectory computation reproduces
  // every layer and every store row of the full run.
  store::SemanticTrajectoryStore computed_store;
  SemiTriPipeline from_computed(&world_->regions, &world_->roads,
                                &world_->pois, PipelineConfig{},
                                &computed_store);
  for (const PipelineResult& day : *full_results) {
    PipelineResult computed;
    computed.cleaned = day.cleaned;
    computed.episodes = day.episodes;
    auto annotated = from_computed.AnnotateComputed(std::move(computed));
    ASSERT_TRUE(annotated.ok());
    EXPECT_EQ(*annotated->region_layer, *day.region_layer);
    EXPECT_EQ(*annotated->line_layer, *day.line_layer);
    EXPECT_EQ(*annotated->point_layer, *day.point_layer);
  }
  EXPECT_TRUE(computed_store.ContentEquals(full_store));
}

TEST_F(PipelineFixture, StageGraphExecutionOrderMatchesLegacyPipeline) {
  store::SemanticTrajectoryStore store;
  SemiTriPipeline pipeline(&world_->regions, &world_->roads, &world_->pois,
                           PipelineConfig{}, &store);
  EXPECT_EQ(pipeline.graph().ExecutionOrder(),
            (std::vector<std::string>{
                kStageComputeEpisode, kStageStoreEpisode, kStageLanduseJoin,
                kStageMapMatch, kStageStoreMatch, kStagePointAnnotation,
                kStageStoreInterpretation}));

  // Without sinks/sources only the registered stages appear.
  SemiTriPipeline regions_only(&world_->regions, nullptr, nullptr);
  EXPECT_EQ(regions_only.graph().ExecutionOrder(),
            (std::vector<std::string>{kStageComputeEpisode,
                                      kStageLanduseJoin}));
}

TEST_F(PipelineFixture, ReannotatePointLayerMatchesFullRun) {
  datagen::PersonSpec spec = factory_->MakePersonSpec(3);
  datagen::SimulatedTrack track = factory_->SimulatePersonDays(3, spec, 2);
  analytics::LatencyProfiler profiler;
  SemiTriPipeline pipeline(&world_->regions, &world_->roads, &world_->pois,
                           PipelineConfig{}, nullptr, &profiler);
  auto results = pipeline.ProcessStream(3, track.points);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  for (const PipelineResult& day : *results) {
    ASSERT_TRUE(day.point_layer.has_value());
    auto redone = pipeline.ReannotateLayer(day, Layer::kPoint);
    ASSERT_TRUE(redone.ok());
    ASSERT_TRUE(redone->point_layer.has_value());
    // Bit-identical to the layer the full run produced...
    EXPECT_EQ(*redone->point_layer, *day.point_layer);
    // ...and the other layers ride along untouched.
    EXPECT_EQ(*redone->region_layer, *day.region_layer);
    EXPECT_EQ(*redone->line_layer, *day.line_layer);
  }
  // Reannotation is profiled under the same Fig. 17 stage name.
  EXPECT_EQ(profiler.Count(kStagePointAnnotation), 2 * results->size());
}

TEST_F(PipelineFixture, ReannotateAfterPoiSetSwapMatchesFreshRun) {
  datagen::PersonSpec spec = factory_->MakePersonSpec(4);
  datagen::SimulatedTrack track = factory_->SimulatePersonDays(4, spec, 1);
  SemiTriPipeline pipeline(&world_->regions, &world_->roads, &world_->pois);
  auto cached = pipeline.ProcessStream(4, track.points);
  ASSERT_TRUE(cached.ok());
  ASSERT_FALSE(cached->empty());

  // A POI repository refresh: same category space, but only every other
  // POI survives, so decoding changes.
  poi::PoiSet modified = poi::PoiSet::MilanCategories();
  const std::vector<poi::Poi>& original = world_->pois.pois();
  for (size_t i = 0; i < original.size(); i += 2) {
    modified.Add(original[i].position, original[i].category,
                 original[i].name);
  }
  store::SemanticTrajectoryStore store;
  SemiTriPipeline swapped(&world_->regions, &world_->roads, &modified,
                          PipelineConfig{}, &store);
  auto fresh = swapped.ProcessStream(4, track.points);
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ(fresh->size(), cached->size());

  for (size_t i = 0; i < cached->size(); ++i) {
    auto redone = swapped.ReannotateLayer((*cached)[i], Layer::kPoint);
    ASSERT_TRUE(redone.ok());
    ASSERT_TRUE(redone->point_layer.has_value());
    // Recomputing just the point layer from cached episodes matches a
    // fresh end-to-end run against the new repository...
    EXPECT_EQ(*redone->point_layer, *(*fresh)[i].point_layer);
    // ...leaves the cached region/line layers alone...
    EXPECT_EQ(*redone->region_layer, *(*cached)[i].region_layer);
    EXPECT_EQ(*redone->line_layer, *(*cached)[i].line_layer);
    // ...and writes the refreshed interpretation through to the store.
    auto stored = store.GetInterpretation(redone->cleaned.id, "point");
    ASSERT_TRUE(stored.ok());
    EXPECT_EQ(*stored, *redone->point_layer);
  }
}

TEST_F(PipelineFixture, ReannotateLayerWithoutSourceFails) {
  datagen::PersonSpec spec = factory_->MakePersonSpec(0);
  datagen::SimulatedTrack track = factory_->SimulatePersonDays(0, spec, 1);
  SemiTriPipeline regions_only(&world_->regions, nullptr, nullptr);
  auto results = regions_only.ProcessStream(0, track.points);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  auto redone = regions_only.ReannotateLayer(results->front(), Layer::kPoint);
  EXPECT_FALSE(redone.ok());
  EXPECT_EQ(redone.status().code(), common::StatusCode::kFailedPrecondition);
}

TEST_F(PipelineFixture, StopsAnnotatedWithPlausibleCategories) {
  // Milan-style car data: true stop categories are known; the point
  // layer should recover a majority of them.
  datagen::Dataset cars = factory_->MilanPrivateCars(/*num_cars=*/8,
                                                     /*num_days=*/3);
  PipelineConfig config;
  // Errand stops are near-independent; a weakly sticky transition
  // matrix fits this workload better than the Fig. 6 default.
  config.point.default_self_transition = 0.25;
  SemiTriPipeline pipeline(&world_->regions, nullptr, &world_->pois, config);

  size_t correct = 0, evaluated = 0;
  for (const auto& track : cars.tracks) {
    auto results = pipeline.ProcessStream(track.object_id, track.points);
    ASSERT_TRUE(results.ok());
    for (const PipelineResult& day : *results) {
      if (!day.point_layer.has_value()) continue;
      for (const SemanticEpisode& ep : day.point_layer->episodes) {
        // Find the overlapping true stop.
        for (const auto& true_stop : track.stops) {
          if (true_stop.poi_category < 0) continue;
          double overlap =
              std::min(ep.time_out, true_stop.time_out) -
              std::max(ep.time_in, true_stop.time_in);
          if (overlap < 0.5 * (true_stop.time_out - true_stop.time_in)) {
            continue;
          }
          ++evaluated;
          if (ep.FindAnnotation("poi_category_id") ==
              std::to_string(true_stop.poi_category)) {
            ++correct;
          }
          break;
        }
      }
    }
  }
  ASSERT_GT(evaluated, 20u);
  // Must clearly beat the best-prior baseline (item sale ≈ 31 % of the
  // repository; errand truth is drawn with item sale at 55 %, so
  // always-guess-item-sale sits near 0.55 only on the *activity* mix —
  // against the decoded mix the informative bar is ~0.45).
  EXPECT_GT(static_cast<double>(correct) / evaluated, 0.45)
      << correct << "/" << evaluated;
}

TEST_F(PipelineFixture, EmptyStream) {
  SemiTriPipeline pipeline(&world_->regions, &world_->roads, &world_->pois);
  auto results = pipeline.ProcessStream(0, {});
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST_F(PipelineFixture, ResultRoundTripsThroughStore) {
  datagen::PersonSpec spec = factory_->MakePersonSpec(0);
  datagen::SimulatedTrack track = factory_->SimulatePersonDays(0, spec, 1);
  store::SemanticTrajectoryStore store;
  SemiTriPipeline pipeline(&world_->regions, &world_->roads, &world_->pois,
                           PipelineConfig{}, &store);
  auto results = pipeline.ProcessStream(0, track.points);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  TrajectoryId id = results->front().cleaned.id;
  auto region = store.GetInterpretation(id, "region");
  auto line = store.GetInterpretation(id, "line");
  auto point = store.GetInterpretation(id, "point");
  EXPECT_TRUE(region.ok());
  EXPECT_TRUE(line.ok());
  EXPECT_TRUE(point.ok());
  EXPECT_EQ(region->episodes.size(),
            results->front().region_layer->episodes.size());
}


TEST_F(PipelineFixture, StoreWriteFailureSurfaces) {
  // Write-through into an unwritable location must surface an IoError
  // from ProcessStream rather than being swallowed.
  datagen::PersonSpec spec = factory_->MakePersonSpec(0);
  datagen::SimulatedTrack track = factory_->SimulatePersonDays(5, spec, 1);
  store::StoreConfig bad;
  bad.write_through_dir = "/proc/semitri_definitely_unwritable";
  store::SemanticTrajectoryStore store(bad);
  SemiTriPipeline pipeline(&world_->regions, nullptr, nullptr,
                           PipelineConfig{}, &store);
  auto results = pipeline.ProcessStream(5, track.points);
  EXPECT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), common::StatusCode::kIoError);
}

}  // namespace
}  // namespace semitri::core
