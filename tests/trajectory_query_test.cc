// Tests for the trajectory query engine over the semantic trajectory
// store (spatio-temporal range, stop proximity, annotation queries).

#include "store/trajectory_query.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "datagen/presets.h"

namespace semitri::store {
namespace {

core::RawTrajectory LineTrajectory(core::TrajectoryId id, double y,
                                   double t_start) {
  core::RawTrajectory t;
  t.id = id;
  t.object_id = id;
  for (int i = 0; i < 50; ++i) {
    t.points.push_back({{i * 10.0, y}, t_start + i});
  }
  return t;
}

core::Episode MakeStop(geo::Point center, double t0, double t1) {
  core::Episode ep;
  ep.kind = core::EpisodeKind::kStop;
  ep.begin = 0;
  ep.end = 1;
  ep.center = center;
  ep.bounds = geo::BoundingBox::FromPoint(center).Inflated(10.0);
  ep.time_in = t0;
  ep.time_out = t1;
  return ep;
}

class QueryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // Three west-east traces at y = 0 / 1000 / 2000, staggered in time.
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(store_
                      .PutRawTrajectory(
                          LineTrajectory(i, i * 1000.0, i * 10000.0))
                      .ok());
    }
    // Stops for trajectory 0 and 2.
    ASSERT_TRUE(store_
                    .PutEpisodes(0, {MakeStop({100, 0}, 100, 400),
                                     MakeStop({400, 0}, 600, 900)})
                    .ok());
    ASSERT_TRUE(
        store_.PutEpisodes(2, {MakeStop({100, 2000}, 20100, 20400)}).ok());
    // A line interpretation with a metro episode for trajectory 1.
    core::StructuredSemanticTrajectory line;
    line.trajectory_id = 1;
    line.interpretation = "line";
    core::SemanticEpisode ep;
    ep.kind = core::EpisodeKind::kMove;
    ep.time_in = 10000;
    ep.time_out = 10040;
    ep.AddAnnotation("transport_mode", "metro");
    line.episodes.push_back(ep);
    core::SemanticEpisode walk = ep;
    walk.annotations.clear();
    walk.AddAnnotation("transport_mode", "walk");
    walk.time_in = 10040;
    walk.time_out = 10050;
    line.episodes.push_back(walk);
    ASSERT_TRUE(store_.PutInterpretation(line).ok());
  }
  SemanticTrajectoryStore store_;
};

TEST_F(QueryFixture, SpatialWindow) {
  TrajectoryQueryEngine engine(&store_);
  EXPECT_EQ(engine.num_indexed_trajectories(), 3u);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Window around y = 1000 catches only trajectory 1.
  auto hits = engine.FindTrajectories(
      geo::BoundingBox({0, 900}, {500, 1100}), -kInf, kInf);
  EXPECT_EQ(hits, (std::vector<core::TrajectoryId>{1}));
  // A window covering everything.
  hits = engine.FindTrajectories(geo::BoundingBox({-10, -10}, {5000, 2500}),
                                 -kInf, kInf);
  EXPECT_EQ(hits.size(), 3u);
  // Empty window.
  hits = engine.FindTrajectories(geo::BoundingBox({9000, 9000}, {9100, 9100}),
                                 -kInf, kInf);
  EXPECT_TRUE(hits.empty());
}

TEST_F(QueryFixture, TemporalFilter) {
  TrajectoryQueryEngine engine(&store_);
  geo::BoundingBox everywhere({-10, -10}, {5000, 2500});
  // Only trajectory 1 lives around t = 10000.
  auto hits = engine.FindTrajectories(everywhere, 10000, 10049);
  EXPECT_EQ(hits, (std::vector<core::TrajectoryId>{1}));
  // Interval covering 0 and 1.
  hits = engine.FindTrajectories(everywhere, 0, 10049);
  EXPECT_EQ(hits, (std::vector<core::TrajectoryId>{0, 1}));
}

TEST_F(QueryFixture, StopsNear) {
  TrajectoryQueryEngine engine(&store_);
  EXPECT_EQ(engine.num_indexed_stops(), 3u);
  auto hits = engine.FindStopsNear({100, 0}, 50.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].trajectory_id, 0);
  EXPECT_DOUBLE_EQ(hits[0].time_in, 100.0);
  // Larger radius pulls in the second stop of trajectory 0, newest
  // first.
  hits = engine.FindStopsNear({250, 0}, 200.0);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_GT(hits[0].time_in, hits[1].time_in);
  EXPECT_TRUE(engine.FindStopsNear({100, 5000}, 100.0).empty());
}

TEST_F(QueryFixture, AnnotationQuery) {
  TrajectoryQueryEngine engine(&store_);
  auto metro = engine.FindEpisodesByAnnotation("transport_mode", "metro");
  ASSERT_EQ(metro.size(), 1u);
  EXPECT_EQ(metro[0].trajectory_id, 1);
  EXPECT_EQ(metro[0].interpretation, "line");
  EXPECT_EQ(metro[0].episode.FindAnnotation("transport_mode"), "metro");
  // Interpretation filter that excludes it.
  EXPECT_TRUE(engine
                  .FindEpisodesByAnnotation("transport_mode", "metro",
                                            std::string("region"))
                  .empty());
  // Time filter that excludes it.
  EXPECT_TRUE(engine
                  .FindEpisodesByAnnotation("transport_mode", "metro",
                                            std::nullopt, 0.0, 500.0)
                  .empty());
  // Time window that includes it.
  EXPECT_EQ(engine
                .FindEpisodesByAnnotation("transport_mode", "metro",
                                          std::nullopt, 10000.0, 10050.0)
                .size(),
            1u);
}

TEST_F(QueryFixture, ListInterpretations) {
  EXPECT_EQ(store_.ListInterpretations(1),
            (std::vector<std::string>{"line"}));
  EXPECT_TRUE(store_.ListInterpretations(0).empty());
}

// End-to-end: query stops of a simulated commuter near their home.
TEST(QueryIntegration, FindsCommuterStops) {
  datagen::WorldConfig wc;
  wc.seed = 91;
  wc.extent_meters = 4000.0;
  wc.num_pois = 300;
  datagen::World world = datagen::WorldGenerator(wc).Generate();
  datagen::DatasetFactory factory(&world, 92);
  datagen::PersonSpec spec = factory.MakePersonSpec(0);
  datagen::SimulatedTrack track = factory.SimulatePersonDays(0, spec, 3);

  SemanticTrajectoryStore store;
  core::SemiTriPipeline pipeline(&world.regions, nullptr, nullptr,
                                 core::PipelineConfig{}, &store);
  ASSERT_TRUE(pipeline.ProcessStream(0, track.points).ok());

  TrajectoryQueryEngine engine(&store);
  auto home_stops = engine.FindStopsNear(spec.home, 150.0);
  // Home dwells recur daily.
  EXPECT_GE(home_stops.size(), 3u);
  for (size_t i = 1; i < home_stops.size(); ++i) {
    EXPECT_GE(home_stops[i - 1].time_in, home_stops[i].time_in);
  }
}

}  // namespace
}  // namespace semitri::store
