// Tests for the extension modules: Douglas-Peucker simplification, STR
// bulk loading, sequential pattern mining.

#include <gtest/gtest.h>

#include "analytics/sequence_mining.h"
#include "common/rng.h"
#include "geo/simplify.h"
#include "index/rstar_tree.h"

namespace semitri {
namespace {

using geo::Point;
using geo::Polyline;

TEST(DouglasPeuckerTest, KeepsEndpointsOnly) {
  // Collinear points simplify to the two endpoints.
  std::vector<Point> line = {{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}};
  auto kept = geo::DouglasPeuckerIndices(line, 0.1);
  EXPECT_EQ(kept, (std::vector<size_t>{0, 4}));
}

TEST(DouglasPeuckerTest, KeepsCorner) {
  std::vector<Point> line = {{0, 0}, {5, 0}, {10, 0}, {10, 5}, {10, 10}};
  auto kept = geo::DouglasPeuckerIndices(line, 0.5);
  EXPECT_EQ(kept, (std::vector<size_t>{0, 2, 4}));
}

TEST(DouglasPeuckerTest, ToleranceControlsDetail) {
  // A noisy sine-ish wiggle: smaller tolerance keeps more points.
  common::Rng rng(3);
  std::vector<Point> line;
  for (int i = 0; i <= 200; ++i) {
    line.push_back({i * 5.0, 20.0 * std::sin(i * 0.2)});
  }
  auto coarse = geo::DouglasPeuckerIndices(line, 15.0);
  auto fine = geo::DouglasPeuckerIndices(line, 1.0);
  EXPECT_LT(coarse.size(), fine.size());
  EXPECT_LT(fine.size(), line.size());
  EXPECT_GT(coarse.size(), 2u);
}

TEST(DouglasPeuckerTest, ErrorBoundHolds) {
  common::Rng rng(7);
  std::vector<Point> line;
  Point p{0, 0};
  for (int i = 0; i < 300; ++i) {
    p = p + Point{rng.Uniform(1.0, 5.0), rng.Gaussian(0, 3.0)};
    line.push_back(p);
  }
  const double tolerance = 8.0;
  Polyline simplified = geo::SimplifyPolyline(Polyline(line), tolerance);
  // Every original point lies within tolerance of the simplification.
  for (const Point& q : line) {
    EXPECT_LE(simplified.DistanceTo(q), tolerance + 1e-9);
  }
}

TEST(DouglasPeuckerTest, DegenerateInputs) {
  EXPECT_TRUE(geo::DouglasPeuckerIndices({}, 1.0).empty());
  EXPECT_EQ(geo::DouglasPeuckerIndices({{1, 1}}, 1.0).size(), 1u);
  EXPECT_EQ(geo::DouglasPeuckerIndices({{1, 1}, {2, 2}}, 1.0).size(), 2u);
}

TEST(StrBulkLoadTest, QueryParityWithIncrementalTree) {
  common::Rng rng(11);
  using Tree = index::RStarTree<int>;
  std::vector<Tree::Entry> entries;
  Tree incremental(8);
  for (int i = 0; i < 3000; ++i) {
    Point min{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    geo::BoundingBox box(min, min + Point{rng.Uniform(0, 15),
                                          rng.Uniform(0, 15)});
    entries.push_back({box, i});
    incremental.Insert(box, i);
  }
  Tree bulk = Tree::BulkLoad(entries, 8);
  EXPECT_EQ(bulk.size(), 3000u);
  for (int q = 0; q < 50; ++q) {
    Point min{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    geo::BoundingBox query(min, min + Point{60, 60});
    auto a = incremental.Query(query);
    auto b = bulk.Query(query);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(StrBulkLoadTest, SupportsSubsequentMutation) {
  using Tree = index::RStarTree<int>;
  std::vector<Tree::Entry> entries;
  for (int i = 0; i < 500; ++i) {
    Point p{static_cast<double>(i % 25) * 10,
            static_cast<double>(i / 25) * 10};
    entries.push_back({geo::BoundingBox::FromPoint(p), i});
  }
  Tree tree = Tree::BulkLoad(entries);
  tree.Insert(geo::BoundingBox({999, 999}, {1000, 1000}), 9999);
  EXPECT_EQ(tree.size(), 501u);
  EXPECT_EQ(tree.Query(geo::BoundingBox({998, 998}, {1001, 1001})).size(),
            1u);
  EXPECT_TRUE(tree.Remove(entries[0].box, 0));
  EXPECT_EQ(tree.size(), 500u);
}

TEST(StrBulkLoadTest, EmptyAndSingle) {
  using Tree = index::RStarTree<int>;
  Tree empty = Tree::BulkLoad({});
  EXPECT_TRUE(empty.empty());
  Tree single = Tree::BulkLoad({{geo::BoundingBox({1, 1}, {2, 2}), 7}});
  EXPECT_EQ(single.size(), 1u);
  EXPECT_EQ(single.QueryPoint({1.5, 1.5}).size(), 1u);
}

TEST(StrBulkLoadTest, BalancedHeight) {
  using Tree = index::RStarTree<int>;
  common::Rng rng(13);
  std::vector<Tree::Entry> entries;
  for (int i = 0; i < 10000; ++i) {
    Point p{rng.Uniform(0, 5000), rng.Uniform(0, 5000)};
    entries.push_back({geo::BoundingBox::FromPoint(p), i});
  }
  Tree tree = Tree::BulkLoad(std::move(entries), 16);
  // STR packs nodes nearly full: 10k entries at fanout 16 -> height 4
  // at most (16^3 = 4096 < 10000 <= 16^4).
  EXPECT_LE(tree.Height(), 4u);
}

TEST(SequenceMiningTest, FindsDailyRoutine) {
  analytics::SequenceMiner miner;
  std::vector<std::vector<std::string>> days = {
      {"home", "work", "market", "home"},
      {"home", "work", "home"},
      {"home", "work", "market", "home"},
      {"home", "gym", "home"},
  };
  auto patterns = miner.Mine(days);
  ASSERT_FALSE(patterns.empty());
  // home -> work occurs in 3 of 4 days and must rank at the top.
  EXPECT_EQ(patterns[0].labels,
            (std::vector<std::string>{"home", "work"}));
  EXPECT_EQ(patterns[0].support, 3u);
  // The full errand loop occurs twice.
  bool found_loop = false;
  for (const auto& p : patterns) {
    if (p.labels == std::vector<std::string>{"home", "work", "market",
                                             "home"}) {
      found_loop = true;
      EXPECT_EQ(p.support, 2u);
    }
  }
  EXPECT_TRUE(found_loop);
}

TEST(SequenceMiningTest, SupportCountsSequencesNotOccurrences) {
  analytics::SequenceMiner miner;
  std::vector<std::vector<std::string>> days = {
      {"a", "b", "a", "b", "a", "b"},  // many occurrences, one sequence
      {"a", "b"},
  };
  auto patterns = miner.Mine(days);
  ASSERT_FALSE(patterns.empty());
  for (const auto& p : patterns) {
    if (p.labels == std::vector<std::string>{"a", "b"}) {
      EXPECT_EQ(p.support, 2u);
    }
  }
}

TEST(SequenceMiningTest, CollapseRepeats) {
  analytics::SequenceMinerConfig config;
  config.collapse_repeats = true;
  config.min_support = 2;
  analytics::SequenceMiner miner(config);
  std::vector<std::vector<std::string>> days = {
      {"home", "home", "work"},
      {"home", "work", "work"},
  };
  auto patterns = miner.Mine(days);
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_EQ(patterns[0].labels,
            (std::vector<std::string>{"home", "work"}));
  EXPECT_EQ(patterns[0].support, 2u);
}

TEST(SequenceMiningTest, MinSupportFilters) {
  analytics::SequenceMinerConfig config;
  config.min_support = 3;
  analytics::SequenceMiner miner(config);
  std::vector<std::vector<std::string>> days = {
      {"x", "y"}, {"x", "y"}, {"p", "q"}};
  auto patterns = miner.Mine(days);
  EXPECT_TRUE(patterns.empty());
}

TEST(SequenceMiningTest, PatternToString) {
  analytics::SequencePattern p;
  p.labels = {"home", "work", "home"};
  EXPECT_EQ(p.ToString(), "home -> work -> home");
}

}  // namespace
}  // namespace semitri
