// Sharded serving runtime tests. The headline contract: a cluster of
// shards — with objects live-migrating between them mid-stream, shards
// killed and restarted, rebalances, and injected migration faults —
// must leave a merged store ContentEquals to the uninterrupted
// single-process run of the same streams. Secondary contracts: ring
// placement is deterministic and membership changes move only the
// affected keys; at every migration abort point the session is
// recoverable on exactly one shard; WAL shipping keeps a standby
// rebuildable to the last shipped seal; the cluster health rollup
// reports dead shards.

#include "shard/cluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/fault_injection.h"
#include "core/pipeline.h"
#include "datagen/presets.h"
#include "datagen/world.h"
#include "shard/ring.h"
#include "shard/shard_runtime.h"
#include "store/semantic_trajectory_store.h"
#include "stream/session_manager.h"

namespace semitri::shard {
namespace {

namespace fs = std::filesystem;

// --- consistent-hash ring --------------------------------------------

TEST(ConsistentHashRingTest, PlacementIsDeterministicAndBalanced) {
  RingConfig config;
  ConsistentHashRing a(config);
  ConsistentHashRing b(config);
  for (ShardId s = 0; s < 4; ++s) {
    a.AddShard(s);
    b.AddShard(s);
  }
  std::map<ShardId, size_t> owned;
  for (core::ObjectId id = 0; id < 1000; ++id) {
    ShardId owner = a.ShardForObject(id);
    EXPECT_EQ(owner, b.ShardForObject(id)) << "object " << id;
    ++owned[owner];
  }
  // Virtual nodes keep the split rough but real: every shard owns a
  // non-trivial slice.
  ASSERT_EQ(owned.size(), 4u);
  for (const auto& [shard, count] : owned) {
    EXPECT_GT(count, 50u) << "shard " << shard << " starved";
    EXPECT_LT(count, 600u) << "shard " << shard << " hot";
  }
}

TEST(ConsistentHashRingTest, MembershipChangeMovesOnlyAffectedKeys) {
  ConsistentHashRing ring;
  for (ShardId s = 0; s < 4; ++s) ring.AddShard(s);
  std::map<core::ObjectId, ShardId> before;
  for (core::ObjectId id = 0; id < 1000; ++id) {
    before[id] = ring.ShardForObject(id);
  }
  ring.RemoveShard(2);
  size_t moved = 0;
  for (const auto& [id, owner] : before) {
    ShardId now = ring.ShardForObject(id);
    if (owner == 2) {
      EXPECT_NE(now, 2u);  // orphans must move...
    } else {
      EXPECT_EQ(now, owner) << "object " << id
                            << " moved although its shard stayed";
    }
    if (now != owner) ++moved;
  }
  // ...and nothing else does: the churn is exactly shard 2's share.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, 500u);
  // Re-adding restores the original placement bit for bit.
  ring.AddShard(2);
  for (const auto& [id, owner] : before) {
    EXPECT_EQ(ring.ShardForObject(id), owner);
  }
}

TEST(ConsistentHashRingTest, SeedChangesPlacement) {
  RingConfig a_config;
  RingConfig b_config;
  b_config.seed = a_config.seed + 1;
  ConsistentHashRing a(a_config);
  ConsistentHashRing b(b_config);
  for (ShardId s = 0; s < 4; ++s) {
    a.AddShard(s);
    b.AddShard(s);
  }
  size_t differs = 0;
  for (core::ObjectId id = 0; id < 200; ++id) {
    if (a.ShardForObject(id) != b.ShardForObject(id)) ++differs;
  }
  EXPECT_GT(differs, 0u);
}

// --- cluster fixture -------------------------------------------------

class ShardClusterFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    common::FaultInjector::Global().Reset();
    datagen::WorldConfig wc;
    wc.seed = 171;
    wc.extent_meters = 3000.0;
    wc.num_pois = 400;
    world_ = std::make_unique<datagen::World>(
        datagen::WorldGenerator(wc).Generate());
    factory_ = std::make_unique<datagen::DatasetFactory>(world_.get(), 172);
  }
  void TearDown() override {
    common::FaultInjector::Global().Reset();
    for (const std::string& dir : temp_dirs_) fs::remove_all(dir);
  }

  std::string TempDir(const std::string& name) {
    std::string dir = (fs::temp_directory_path() / name).string();
    fs::remove_all(dir);
    temp_dirs_.push_back(dir);
    return dir;
  }

  ShardClusterConfig ClusterConfig(const std::string& name,
                                   size_t num_shards) {
    ShardClusterConfig config;
    config.num_shards = num_shards;
    config.base_dir = TempDir(name);
    return config;
  }

  std::unique_ptr<ShardCluster> OpenCluster(const std::string& name,
                                            size_t num_shards) {
    auto cluster = ShardCluster::Open(&world_->regions, &world_->roads,
                                      &world_->pois,
                                      ClusterConfig(name, num_shards));
    EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
    return std::move(cluster.value());
  }

  // The uninterrupted single-process run the cluster must converge to:
  // one SessionManager over one store, identical streams, CloseAll.
  std::unique_ptr<store::SemanticTrajectoryStore> ReferenceStore(
      const datagen::Dataset& dataset) {
    auto store = std::make_unique<store::SemanticTrajectoryStore>();
    core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                   &world_->pois, core::PipelineConfig{},
                                   store.get());
    stream::SessionManager manager(&pipeline);
    for (const datagen::SimulatedTrack& track : dataset.tracks) {
      for (const core::GpsPoint& fix : track.points) {
        auto fed = manager.Feed(track.object_id, fix);
        EXPECT_TRUE(fed.ok()) << fed.status().ToString();
      }
    }
    EXPECT_TRUE(manager.CloseAll().ok());
    return store;
  }

  // Round-robin feed of every track's fixes with index in [from, to).
  void FeedRange(ShardCluster* cluster, const datagen::Dataset& dataset,
                 size_t from, size_t to) {
    for (size_t k = from; k < to; ++k) {
      for (const datagen::SimulatedTrack& track : dataset.tracks) {
        if (k >= track.points.size()) continue;
        auto fed = cluster->Feed(track.object_id, track.points[k]);
        ASSERT_TRUE(fed.ok()) << "object " << track.object_id << " fix " << k
                              << ": " << fed.status().ToString();
      }
    }
  }

  static size_t LongestTrack(const datagen::Dataset& dataset) {
    size_t longest = 0;
    for (const datagen::SimulatedTrack& t : dataset.tracks) {
      longest = std::max(longest, t.points.size());
    }
    return longest;
  }

  static size_t ShortestTrack(const datagen::Dataset& dataset) {
    size_t shortest = dataset.tracks.front().points.size();
    for (const datagen::SimulatedTrack& t : dataset.tracks) {
      shortest = std::min(shortest, t.points.size());
    }
    return shortest;
  }

  // Drives the cluster to a clean replication point: checkpoint (which
  // seals, ships, and replicates the manager sidecar), ship any
  // residue, then assert zero lag — a standby promoted after this ack
  // sits exactly at it, so re-fed prefixes are rejected per-fix.
  void AckAll(ShardCluster* cluster) {
    ASSERT_TRUE(cluster->CheckpointAll().ok());
    auto shipped = cluster->SealAndShipAll();
    ASSERT_TRUE(shipped.ok()) << shipped.status().ToString();
    for (size_t i = 0; i < cluster->num_shards(); ++i) {
      std::shared_ptr<ShardRuntime> runtime = cluster->runtime(i);
      if (runtime == nullptr) continue;
      EXPECT_EQ(runtime->ShardHealthInfo().wal_ship_lag_segments, 0u)
          << "shard " << i << " still lagging after the ack";
    }
  }

  // Two shards, probe every tick, dead after three consecutive
  // failures, automatic standby promotion.
  ShardClusterConfig SelfHealingConfig(const std::string& name) {
    ShardClusterConfig config = ClusterConfig(name, 2);
    config.detector.probe_interval_seconds = 0.0;
    config.detector.suspect_after = 1;
    config.detector.dead_after = 3;
    config.auto_failover = true;
    return config;
  }

  std::unique_ptr<ShardCluster> OpenWith(ShardClusterConfig config,
                                         const common::Clock* clock) {
    auto cluster = ShardCluster::Open(&world_->regions, &world_->roads,
                                      &world_->pois, std::move(config), clock);
    EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
    return std::move(cluster.value());
  }

  void ExpectConverged(const ShardCluster& cluster,
                       const store::SemanticTrajectoryStore& reference,
                       const std::string& label) {
    store::SemanticTrajectoryStore merged;
    ASSERT_TRUE(cluster.MergeStores(&merged).ok()) << label;
    EXPECT_TRUE(merged.ContentEquals(reference))
        << label << ": merged cluster store diverged from the "
        << "uninterrupted single-process run";
  }

  std::unique_ptr<datagen::World> world_;
  std::unique_ptr<datagen::DatasetFactory> factory_;
  std::vector<std::string> temp_dirs_;
};

// --- live migration: the headline ------------------------------------

// Every preset, every object: pack mid-stream, hand off, resume on the
// destination, and the merged cluster state matches the uninterrupted
// run bit for bit.
TEST_F(ShardClusterFixture, LiveMigrationConvergesOnEveryPreset) {
  struct Case {
    std::string name;
    datagen::Dataset dataset;
  };
  std::vector<Case> cases;
  cases.push_back({"taxis", factory_->LausanneTaxis(2, 1, 2.0)});
  cases.push_back({"cars", factory_->MilanPrivateCars(3, 1)});
  cases.push_back({"drive", factory_->SeattleDrive(0.25)});
  cases.push_back({"people", factory_->NokiaPeople(2, 1)});
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    auto reference = ReferenceStore(c.dataset);
    auto cluster = OpenCluster("semitri_shard_migrate_" + c.name, 3);
    size_t longest = LongestTrack(c.dataset);
    FeedRange(cluster.get(), c.dataset, 0, longest / 2);
    // Migrate every object one shard over, mid-stream.
    for (const datagen::SimulatedTrack& track : c.dataset.tracks) {
      ShardId src = cluster->OwnerOf(track.object_id);
      ShardId dest = (src + 1) % cluster->num_shards();
      ASSERT_TRUE(cluster->MigrateObject(track.object_id, dest).ok());
      EXPECT_EQ(cluster->OwnerOf(track.object_id), dest);
      // Exactly one shard holds the live session, and it is the
      // destination.
      std::vector<ShardId> owners =
          cluster->LiveSessionShards(track.object_id);
      ASSERT_EQ(owners.size(), 1u);
      EXPECT_EQ(owners[0], dest);
    }
    EXPECT_GE(cluster->stats().migrations_completed, c.dataset.tracks.size());
    // The sessions resume on their new shards as if nothing happened.
    FeedRange(cluster.get(), c.dataset, longest / 2, longest);
    ASSERT_TRUE(cluster->CloseAll().ok());
    ExpectConverged(*cluster, *reference, c.name);
  }
}

// A second hop (and a hop back) keeps converging: ownership history
// longer than two entries merges in chronological order.
TEST_F(ShardClusterFixture, RepeatedMigrationConverges) {
  datagen::Dataset dataset = factory_->NokiaPeople(2, 1);
  auto reference = ReferenceStore(dataset);
  auto cluster = OpenCluster("semitri_shard_remigrate", 3);
  size_t longest = LongestTrack(dataset);
  for (size_t leg = 0; leg < 3; ++leg) {
    FeedRange(cluster.get(), dataset, leg * longest / 3,
              (leg + 1) * longest / 3);
    for (const datagen::SimulatedTrack& track : dataset.tracks) {
      ShardId dest = (cluster->OwnerOf(track.object_id) + 1) % 3;
      ASSERT_TRUE(cluster->MigrateObject(track.object_id, dest).ok());
    }
  }
  ASSERT_TRUE(cluster->CloseAll().ok());
  ExpectConverged(*cluster, *reference, "remigrate");
}

// Migrating an object the cluster has never fed is a pure routing flip.
TEST_F(ShardClusterFixture, MigratingUnknownObjectFlipsRoutingOnly) {
  auto cluster = OpenCluster("semitri_shard_unknown", 2);
  core::ObjectId object = 7;
  ShardId dest = (cluster->OwnerOf(object) + 1) % 2;
  ASSERT_TRUE(cluster->MigrateObject(object, dest).ok());
  EXPECT_EQ(cluster->OwnerOf(object), dest);
  EXPECT_TRUE(cluster->LiveSessionShards(object).empty());
}

// --- migration fault sites -------------------------------------------

// A fault at any migration site aborts the handoff with the session
// recoverable on exactly one shard, a later retry succeeds, and the
// run still converges.
TEST_F(ShardClusterFixture, MigrationFaultAtEverySiteAbortsCleanly) {
  if (!common::FaultInjector::enabled()) {
    GTEST_SKIP() << "built without SEMITRI_FAULT_INJECTION";
  }
  const std::vector<std::string> sites = {"migration_pack",
                                          "migration_handoff",
                                          "migration_unpack"};
  for (const std::string& site : sites) {
    for (common::FaultAction action :
         {common::FaultAction::kFail, common::FaultAction::kCrash}) {
      SCOPED_TRACE(site + (action == common::FaultAction::kFail ? "/fail"
                                                                : "/crash"));
      common::FaultInjector& fi = common::FaultInjector::Global();
      fi.Reset();
      datagen::Dataset dataset = factory_->NokiaPeople(2, 1);
      auto reference = ReferenceStore(dataset);
      auto cluster = OpenCluster("semitri_shard_fault", 2);
      size_t longest = LongestTrack(dataset);
      FeedRange(cluster.get(), dataset, 0, longest / 2);
      const datagen::SimulatedTrack& victim = dataset.tracks.front();
      ShardId src = cluster->OwnerOf(victim.object_id);
      ShardId dest = (src + 1) % 2;

      common::FaultPolicy policy;
      policy.action = action;
      fi.Arm(site, policy);
      EXPECT_FALSE(cluster->MigrateObject(victim.object_id, dest).ok());
      fi.Disarm(site);

      // Abort semantics: routing unchanged, live session on exactly
      // one shard — the source.
      EXPECT_EQ(cluster->OwnerOf(victim.object_id), src);
      std::vector<ShardId> owners =
          cluster->LiveSessionShards(victim.object_id);
      ASSERT_EQ(owners.size(), 1u) << "session lost or duplicated";
      EXPECT_EQ(owners[0], src);
      EXPECT_GE(cluster->stats().migrations_aborted, 1u);

      // The retry goes through...
      ASSERT_TRUE(cluster->MigrateObject(victim.object_id, dest).ok());
      EXPECT_EQ(cluster->OwnerOf(victim.object_id), dest);
      // ...and the interrupted-then-retried run still converges.
      FeedRange(cluster.get(), dataset, longest / 2, longest);
      ASSERT_TRUE(cluster->CloseAll().ok());
      ExpectConverged(*cluster, *reference, site);
    }
  }
}

// --- kill / restart --------------------------------------------------

// Killing a shard loses nothing acknowledged: after restart the driver
// re-feeds from the last checkpoint and the cluster converges to the
// uninterrupted run.
TEST_F(ShardClusterFixture, KillRestartRecoversToCheckpoint) {
  datagen::Dataset dataset = factory_->NokiaPeople(2, 1);
  auto reference = ReferenceStore(dataset);
  auto cluster = OpenCluster("semitri_shard_kill", 2);
  size_t shortest = dataset.tracks.front().points.size();
  for (const datagen::SimulatedTrack& t : dataset.tracks) {
    shortest = std::min(shortest, t.points.size());
  }
  size_t acked = shortest / 2;
  size_t killed_at = shortest * 3 / 4;

  FeedRange(cluster.get(), dataset, 0, acked);
  ASSERT_TRUE(cluster->CheckpointAll().ok());  // the ack point
  FeedRange(cluster.get(), dataset, acked, killed_at);

  // Pick a victim shard that actually owns an object.
  ShardId victim = cluster->OwnerOf(dataset.tracks.front().object_id);
  ASSERT_TRUE(cluster->KillShard(victim).ok());

  // Feeds to the dead shard's objects are shed, visibly.
  size_t rejected = 0;
  for (const datagen::SimulatedTrack& track : dataset.tracks) {
    if (cluster->OwnerOf(track.object_id) != victim) continue;
    auto fed = cluster->Feed(track.object_id, track.points[killed_at]);
    EXPECT_FALSE(fed.ok());
    ++rejected;
  }
  ASSERT_GT(rejected, 0u);
  EXPECT_GE(cluster->stats().feeds_rejected_dead_shard, rejected);

  ASSERT_TRUE(cluster->RestartShard(victim).ok());
  // The restarted shard resumed from its checkpoint: re-feed its
  // objects from the ack point; everyone else continues uninterrupted.
  for (const datagen::SimulatedTrack& track : dataset.tracks) {
    size_t from = cluster->OwnerOf(track.object_id) == victim ? acked
                                                              : killed_at;
    for (size_t k = from; k < track.points.size(); ++k) {
      auto fed = cluster->Feed(track.object_id, track.points[k]);
      ASSERT_TRUE(fed.ok()) << fed.status().ToString();
    }
  }
  ASSERT_TRUE(cluster->CloseAll().ok());
  EXPECT_EQ(cluster->stats().shard_kills, 1u);
  EXPECT_EQ(cluster->stats().shard_restarts, 1u);
  ExpectConverged(*cluster, *reference, "kill/restart");
}

// --- WAL shipping ----------------------------------------------------

// A standby rebuilt purely from shipped sealed segments matches the
// primary as of the last shipped seal, and the lag gauges track what
// it would lose.
TEST_F(ShardClusterFixture, WalShippingKeepsStandbyRebuildable) {
  datagen::Dataset dataset = factory_->NokiaPeople(1, 1);
  auto cluster = OpenCluster("semitri_shard_ship", 1);
  FeedRange(cluster.get(), dataset, 0, LongestTrack(dataset));
  ASSERT_TRUE(cluster->CloseAll().ok());
  auto shipped = cluster->SealAndShipAll();
  ASSERT_TRUE(shipped.ok()) << shipped.status().ToString();
  EXPECT_GT(shipped->segments_shipped, 0u);
  EXPECT_GT(shipped->bytes_shipped, 0u);

  std::shared_ptr<ShardRuntime> runtime = cluster->runtime(0);
  ASSERT_NE(runtime, nullptr);

  // More writes, sealed but not shipped: the health rollup must show
  // the lag a failover would lose.
  auto existing = runtime->store()->ListTrajectories();
  ASSERT_FALSE(existing.empty());
  auto raw = runtime->store()->GetRawTrajectory(existing.front());
  ASSERT_TRUE(raw.ok());
  core::RawTrajectory extra = *raw;
  extra.id = existing.back() + 1;
  ASSERT_TRUE(runtime->store()->PutRawTrajectory(extra).ok());
  auto sealed = runtime->store()->SealWalSegment();
  ASSERT_TRUE(sealed.ok());
  ASSERT_FALSE(sealed->empty());
  core::ShardHealth lagging = runtime->ShardHealthInfo();
  EXPECT_GT(lagging.wal_ship_lag_segments, 0u);
  EXPECT_GT(lagging.wal_ship_lag_bytes, 0u);

  auto shipped2 = cluster->SealAndShipAll();
  ASSERT_TRUE(shipped2.ok());
  EXPECT_EQ(runtime->ShardHealthInfo().wal_ship_lag_segments, 0u);

  // Rebuild from the standby directory alone.
  store::SemanticTrajectoryStore standby;
  auto recovered = standby.Recover(runtime->config().standby_dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_GT(recovered->wal_segments_replayed, 0u);
  EXPECT_TRUE(standby.ContentEquals(*runtime->store()))
      << "standby diverged from the primary at the shipped seal";
}

// --- elasticity ------------------------------------------------------

TEST_F(ShardClusterFixture, AddAndRemoveShardRebalanceAndConverge) {
  datagen::Dataset dataset = factory_->MilanPrivateCars(4, 1);
  auto reference = ReferenceStore(dataset);
  auto cluster = OpenCluster("semitri_shard_elastic", 2);
  size_t longest = LongestTrack(dataset);
  FeedRange(cluster.get(), dataset, 0, longest / 3);

  auto added = cluster->AddShard();
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(cluster->num_shards(), 3u);
  // After a rebalance the recorded placement agrees with the ring; a
  // second Rebalance is a no-op.
  auto again = cluster->Rebalance();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);

  FeedRange(cluster.get(), dataset, longest / 3, 2 * longest / 3);

  auto drained = cluster->RemoveShard(2);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  for (const datagen::SimulatedTrack& track : dataset.tracks) {
    EXPECT_NE(cluster->OwnerOf(track.object_id), 2u);
  }

  FeedRange(cluster.get(), dataset, 2 * longest / 3, longest);
  ASSERT_TRUE(cluster->CloseAll().ok());
  ExpectConverged(*cluster, *reference, "elastic");
}

// --- health rollup ---------------------------------------------------

TEST_F(ShardClusterFixture, HealthRollupReportsShardsAndDeaths) {
  datagen::Dataset dataset = factory_->NokiaPeople(2, 1);
  auto cluster = OpenCluster("semitri_shard_health", 2);
  FeedRange(cluster.get(), dataset, 0, LongestTrack(dataset) / 2);

  core::HealthSnapshot healthy = cluster->Health();
  ASSERT_EQ(healthy.shards.size(), 2u);
  size_t rolled_up = 0;
  for (const core::ShardHealth& s : healthy.shards) {
    EXPECT_TRUE(s.alive);
    rolled_up += s.live_sessions;
  }
  EXPECT_EQ(rolled_up, dataset.tracks.size());
  EXPECT_EQ(healthy.sessions.used, dataset.tracks.size());
  EXPECT_FALSE(healthy.degraded());
  // The rollup renders.
  EXPECT_NE(healthy.ToString().find("shard"), std::string::npos);

  ASSERT_TRUE(cluster->KillShard(0).ok());
  core::HealthSnapshot wounded = cluster->Health();
  ASSERT_EQ(wounded.shards.size(), 2u);
  EXPECT_FALSE(wounded.shards[0].alive);
  EXPECT_TRUE(wounded.shards[1].alive);
  EXPECT_TRUE(wounded.degraded());
  ASSERT_TRUE(cluster->CloseAll().ok());
}

// A re-opened cluster (same base_dir) recovers each shard's durable
// state: the manager checkpoint brings sessions back and the stores
// replay their WALs.
TEST_F(ShardClusterFixture, ReopenedClusterRecoversAllShards) {
  datagen::Dataset dataset = factory_->NokiaPeople(2, 1);
  auto reference = ReferenceStore(dataset);
  ShardClusterConfig config = ClusterConfig("semitri_shard_reopen", 2);
  size_t longest = LongestTrack(dataset);
  {
    auto opened = ShardCluster::Open(&world_->regions, &world_->roads,
                                     &world_->pois, config);
    ASSERT_TRUE(opened.ok());
    std::unique_ptr<ShardCluster> first = std::move(opened.value());
    FeedRange(first.get(), dataset, 0, longest / 2);
    ASSERT_TRUE(first->CheckpointAll().ok());
    // The cluster is destroyed without CloseAll — an orderly shutdown
    // is not required for what was checkpointed.
  }
  auto reopened = ShardCluster::Open(&world_->regions, &world_->roads,
                                     &world_->pois, config);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::unique_ptr<ShardCluster> cluster = std::move(reopened.value());
  for (size_t i = 0; i < cluster->num_shards(); ++i) {
    std::shared_ptr<ShardRuntime> runtime = cluster->runtime(i);
    ASSERT_NE(runtime, nullptr);
    EXPECT_TRUE(runtime->manager_restored());
  }
  // NOTE: placement is re-derived from the ring on reopen — identical
  // because nothing was migrated off its ring placement here.
  FeedRange(cluster.get(), dataset, longest / 2, longest);
  ASSERT_TRUE(cluster->CloseAll().ok());
  ExpectConverged(*cluster, *reference, "reopen");
}

// --- failure detection -----------------------------------------------

TEST(FailureDetectorTest, WalksSuspectToDeadAndMeasuresTimeToDetect) {
  common::FakeClock clock;
  FailureDetectorConfig config;
  config.probe_interval_seconds = 0.0;
  config.suspect_after = 1;
  config.dead_after = 3;
  FailureDetector detector(config, &clock);

  EXPECT_EQ(detector.StateOf(7), Liveness::kAlive);  // never probed
  EXPECT_EQ(detector.Observe(0, true), Liveness::kAlive);
  EXPECT_EQ(detector.Observe(0, false), Liveness::kSuspect);
  clock.Advance(0.25);
  EXPECT_EQ(detector.Observe(0, false), Liveness::kSuspect);
  clock.Advance(0.25);
  EXPECT_EQ(detector.Observe(0, false), Liveness::kDead);
  EXPECT_EQ(detector.deaths_declared(), 1u);

  FailureDetector::ShardObservation obs = detector.observation(0);
  EXPECT_EQ(obs.consecutive_failures, 3u);
  EXPECT_EQ(obs.deaths_declared, 1u);
  // First failed probe to declaration: the two 0.25 s advances.
  EXPECT_NEAR(obs.last_time_to_detect_seconds, 0.5, 1e-9);
}

TEST(FailureDetectorTest, SuccessResetsTheStreakBeforeDeath) {
  FailureDetectorConfig config;
  config.suspect_after = 1;
  config.dead_after = 3;
  FailureDetector detector(config);
  EXPECT_EQ(detector.Observe(0, false), Liveness::kSuspect);
  EXPECT_EQ(detector.Observe(0, false), Liveness::kSuspect);
  // A flap short of dead_after clears everything.
  EXPECT_EQ(detector.Observe(0, true), Liveness::kAlive);
  EXPECT_EQ(detector.observation(0).consecutive_failures, 0u);
  EXPECT_EQ(detector.Observe(0, false), Liveness::kSuspect);
  EXPECT_EQ(detector.deaths_declared(), 0u);
}

TEST(FailureDetectorTest, DeadIsStickyUntilForgotten) {
  FailureDetectorConfig config;
  config.suspect_after = 1;
  config.dead_after = 2;
  FailureDetector detector(config);
  EXPECT_EQ(detector.Observe(3, false), Liveness::kSuspect);
  EXPECT_EQ(detector.Observe(3, false), Liveness::kDead);
  // One good probe must not cancel a failover already in flight.
  EXPECT_EQ(detector.Observe(3, true), Liveness::kDead);
  EXPECT_EQ(detector.deaths_declared(), 1u);

  detector.Forget(3);
  EXPECT_EQ(detector.StateOf(3), Liveness::kAlive);
  EXPECT_EQ(detector.observation(3).consecutive_failures, 0u);
  // Lifetime counters survive the reset, and a fresh walk re-declares.
  EXPECT_EQ(detector.observation(3).deaths_declared, 1u);
  EXPECT_EQ(detector.Observe(3, false), Liveness::kSuspect);
  EXPECT_EQ(detector.Observe(3, false), Liveness::kDead);
  EXPECT_EQ(detector.deaths_declared(), 2u);
}

TEST(FailureDetectorTest, ProbePacingHonorsTheInterval) {
  common::FakeClock clock;
  FailureDetectorConfig config;
  config.probe_interval_seconds = 0.5;
  FailureDetector detector(config, &clock);

  EXPECT_TRUE(detector.ProbeDue(0));  // never probed: always due
  (void)detector.Observe(0, true);
  EXPECT_FALSE(detector.ProbeDue(0));
  clock.Advance(0.3);
  EXPECT_FALSE(detector.ProbeDue(0));
  clock.Advance(0.3);
  EXPECT_TRUE(detector.ProbeDue(0));
}

// --- failover ---------------------------------------------------------

// The headline self-healing contract: kill a shard, let the detector
// walk it to dead, and the automatic promotion brings the standby up
// at the last ack — after re-feeding from that ack the cluster still
// converges to the uninterrupted run.
TEST_F(ShardClusterFixture, FailoverPromotesStandbyAndConverges) {
  datagen::Dataset dataset = factory_->NokiaPeople(2, 1);
  auto reference = ReferenceStore(dataset);
  common::FakeClock clock;
  auto cluster = OpenWith(SelfHealingConfig("semitri_shard_failover"), &clock);
  size_t shortest = ShortestTrack(dataset);
  size_t acked = shortest / 2;
  size_t killed_at = shortest * 3 / 4;

  FeedRange(cluster.get(), dataset, 0, acked);
  AckAll(cluster.get());
  // Unacked tail: everything past the ack is the replication lag a
  // promotion is allowed to lose.
  FeedRange(cluster.get(), dataset, acked, killed_at);

  ShardId victim = cluster->OwnerOf(dataset.tracks.front().object_id);
  ASSERT_TRUE(cluster->KillShard(victim).ok());

  // Three failed probes walk the slot through suspect to dead; the
  // declaring tick promotes in the same pass.
  auto tick1 = cluster->Tick();
  ASSERT_TRUE(tick1.ok()) << tick1.status().ToString();
  EXPECT_EQ(*tick1, 0u);
  EXPECT_EQ(cluster->ShardLiveness(victim), Liveness::kSuspect);
  clock.Advance(0.1);
  auto tick2 = cluster->Tick();
  ASSERT_TRUE(tick2.ok());
  EXPECT_EQ(*tick2, 0u);
  clock.Advance(0.1);
  auto tick3 = cluster->Tick();
  ASSERT_TRUE(tick3.ok());
  EXPECT_EQ(*tick3, 1u);
  // Forget() after promotion: the replacement starts with a clean
  // streak.
  EXPECT_EQ(cluster->ShardLiveness(victim), Liveness::kAlive);

  ShardCluster::Stats stats = cluster->stats();
  EXPECT_EQ(stats.failovers_completed, 1u);
  EXPECT_EQ(stats.detector_deaths_declared, 1u);
  ASSERT_EQ(stats.time_to_detect_seconds.size(), 1u);
  EXPECT_NEAR(stats.time_to_detect_seconds[0], 0.2, 1e-9);
  EXPECT_EQ(stats.time_to_failover_seconds.size(), 1u);

  // The promoted runtime restored the shipped manager checkpoint, and
  // routing is untouched: the same shard id serves.
  std::shared_ptr<ShardRuntime> promoted = cluster->runtime(victim);
  ASSERT_NE(promoted, nullptr);
  EXPECT_TRUE(promoted->manager_restored());
  EXPECT_EQ(cluster->OwnerOf(dataset.tracks.front().object_id), victim);
  std::vector<ShardId> owners =
      cluster->LiveSessionShards(dataset.tracks.front().object_id);
  ASSERT_EQ(owners.size(), 1u);
  EXPECT_EQ(owners[0], victim);

  // Re-feed the victims from the ack (the restored sessions reject the
  // consumed prefix per-fix); survivors continue where they stopped.
  for (const datagen::SimulatedTrack& track : dataset.tracks) {
    size_t from =
        cluster->OwnerOf(track.object_id) == victim ? acked : killed_at;
    for (size_t k = from; k < track.points.size(); ++k) {
      auto fed = cluster->Feed(track.object_id, track.points[k]);
      ASSERT_TRUE(fed.ok()) << fed.status().ToString();
    }
  }
  ASSERT_TRUE(cluster->CloseAll().ok());
  ExpectConverged(*cluster, *reference, "failover");
}

TEST_F(ShardClusterFixture, FailoverWithoutStandbyIsFailedPrecondition) {
  ShardClusterConfig config = ClusterConfig("semitri_shard_nostandby", 2);
  config.ship_wal = false;
  auto cluster = OpenWith(std::move(config), nullptr);
  common::Status status = cluster->FailoverShard(0);
  EXPECT_EQ(status.code(), common::StatusCode::kFailedPrecondition);
  // The precondition is checked before the fence: the live runtime
  // survives the refused promotion.
  EXPECT_NE(cluster->runtime(0), nullptr);
  EXPECT_EQ(cluster->stats().shards_fenced, 0u);
  ASSERT_TRUE(cluster->CloseAll().ok());
}

// --- retrying data plane ---------------------------------------------

// A single retrying Feed to a dead shard rides out the whole detect ->
// declare -> promote -> recover arc: each backoff ticks the detector,
// so the waiting feed is what drives its own healing.
TEST_F(ShardClusterFixture, RetryingFeedRidesOutAutoFailover) {
  datagen::Dataset dataset = factory_->NokiaPeople(2, 1);
  auto reference = ReferenceStore(dataset);
  common::FakeClock clock;
  ShardClusterConfig config = SelfHealingConfig("semitri_shard_retryfeed");
  config.retry_feeds = true;
  config.feed_retry.max_attempts = 8;
  config.feed_retry.initial_backoff_seconds = 0.001;
  config.feed_retry.jitter_fraction = 0.0;
  auto cluster = OpenWith(std::move(config), &clock);
  size_t acked = ShortestTrack(dataset) / 2;

  FeedRange(cluster.get(), dataset, 0, acked);
  AckAll(cluster.get());
  const datagen::SimulatedTrack& victim_track = dataset.tracks.front();
  ShardId victim = cluster->OwnerOf(victim_track.object_id);
  ASSERT_TRUE(cluster->KillShard(victim).ok());

  // No manual Tick(): the feed's own backoffs advance detection until
  // the promotion lands, then the next attempt succeeds.
  auto fed = cluster->Feed(victim_track.object_id, victim_track.points[acked]);
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();
  EXPECT_TRUE(fed->accepted) << "first fix past the ack must be fresh";

  ShardCluster::Stats stats = cluster->stats();
  EXPECT_EQ(stats.failovers_completed, 1u);
  EXPECT_GE(stats.feeds_retried, 1u);
  EXPECT_GE(stats.feeds_recovered, 1u);
  // Every failed attempt counted: three probes' worth before death.
  EXPECT_GE(stats.feeds_rejected_dead_shard, 3u);

  for (const datagen::SimulatedTrack& track : dataset.tracks) {
    size_t from =
        track.object_id == victim_track.object_id ? acked + 1 : acked;
    for (size_t k = from; k < track.points.size(); ++k) {
      auto rest = cluster->Feed(track.object_id, track.points[k]);
      ASSERT_TRUE(rest.ok()) << rest.status().ToString();
    }
  }
  ASSERT_TRUE(cluster->CloseAll().ok());
  ExpectConverged(*cluster, *reference, "retrying feed");
}

// TSan target: concurrent feeds during a kill-plus-auto-failover either
// retry to success or fail cleanly — no feed ever touches a dead
// runtime, and the merged state still converges.
TEST_F(ShardClusterFixture, ConcurrentFeedsSurviveKillAndAutoFailover) {
  datagen::Dataset dataset = factory_->MilanPrivateCars(3, 1);
  auto reference = ReferenceStore(dataset);
  common::FakeClock clock;
  ShardClusterConfig config = SelfHealingConfig("semitri_shard_feedrace");
  config.retry_feeds = true;
  config.feed_retry.max_attempts = 10;
  config.feed_retry.initial_backoff_seconds = 0.001;
  auto cluster = OpenWith(std::move(config), &clock);
  size_t acked = ShortestTrack(dataset) / 2;

  FeedRange(cluster.get(), dataset, 0, acked);
  AckAll(cluster.get());
  ShardId victim = cluster->OwnerOf(dataset.tracks.front().object_id);
  // Kill before the feeders start: a feed acknowledged past the ack
  // and then lost would otherwise let a later fix slip in after a gap,
  // which restored sessions accept (divergent segmentation).
  ASSERT_TRUE(cluster->KillShard(victim).ok());

  // One feeder per object streams the remainder in order. Feeders
  // whose object sits on the dead shard block inside the retry loop —
  // and their backoff ticks are exactly what detects the death and
  // promotes the standby, while the other feeders stream on.
  std::vector<std::thread> feeders;
  feeders.reserve(dataset.tracks.size());
  for (const datagen::SimulatedTrack& track : dataset.tracks) {
    feeders.emplace_back([&cluster, &track, acked]() {
      for (size_t k = acked; k < track.points.size(); ++k) {
        auto fed = cluster->Feed(track.object_id, track.points[k]);
        EXPECT_TRUE(fed.ok()) << "object " << track.object_id << " fix " << k
                              << ": " << fed.status().ToString();
        if (!fed.ok()) return;
      }
    });
  }
  for (std::thread& feeder : feeders) feeder.join();

  ShardCluster::Stats stats = cluster->stats();
  EXPECT_EQ(stats.failovers_completed, 1u);
  EXPECT_GE(stats.feeds_recovered, 1u);
  ASSERT_TRUE(cluster->CloseAll().ok());
  ExpectConverged(*cluster, *reference, "concurrent feeds over failover");
}

// --- standby corruption ----------------------------------------------

// Same-name-same-size is not proof of a good copy: a corrupted standby
// segment must fail the CRC frame scan of a freshly opened shipper and
// be shipped again.
TEST_F(ShardClusterFixture, CorruptStandbySegmentIsReshippedAfterReopen) {
  datagen::Dataset dataset = factory_->NokiaPeople(1, 1);
  auto cluster = OpenCluster("semitri_shard_corrupt", 1);
  FeedRange(cluster.get(), dataset, 0, LongestTrack(dataset));
  ASSERT_TRUE(cluster->CloseAll().ok());
  auto shipped = cluster->SealAndShipAll();
  ASSERT_TRUE(shipped.ok()) << shipped.status().ToString();
  ASSERT_GT(shipped->segments_shipped, 0u);
  EXPECT_EQ(shipped->reshipped_corrupt_segments, 0u);

  // Flip one byte in the middle of a shipped standby segment — the
  // size (and name) stay identical, so a metadata-only skip check
  // would accept the corrupt copy forever.
  std::string standby = cluster->runtime(0)->config().standby_dir;
  std::string segment;
  for (const auto& entry : fs::directory_iterator(standby)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0) {
      segment = entry.path().string();
      break;
    }
  }
  ASSERT_FALSE(segment.empty()) << "no shipped segment under " << standby;
  const auto original_size = fs::file_size(segment);
  {
    std::fstream file(segment,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(static_cast<std::streamoff>(original_size / 2));
    char byte = 0;
    file.get(byte);
    file.seekp(static_cast<std::streamoff>(original_size / 2));
    file.put(static_cast<char>(byte ^ 0x5a));
  }
  ASSERT_EQ(fs::file_size(segment), original_size);

  // Kill/restart gives the shard a fresh shipper whose verified-names
  // cache is empty — the next ship re-scans every standby segment.
  ASSERT_TRUE(cluster->KillShard(0).ok());
  ASSERT_TRUE(cluster->RestartShard(0).ok());
  std::shared_ptr<ShardRuntime> runtime = cluster->runtime(0);
  ASSERT_NE(runtime, nullptr);

  // New writes so the re-ship pass has fresh work alongside the repair.
  auto existing = runtime->store()->ListTrajectories();
  ASSERT_FALSE(existing.empty());
  auto raw = runtime->store()->GetRawTrajectory(existing.front());
  ASSERT_TRUE(raw.ok());
  core::RawTrajectory extra = *raw;
  extra.id = existing.back() + 1;
  ASSERT_TRUE(runtime->store()->PutRawTrajectory(extra).ok());

  auto reshipped = cluster->SealAndShipAll();
  ASSERT_TRUE(reshipped.ok()) << reshipped.status().ToString();
  EXPECT_GE(reshipped->reshipped_corrupt_segments, 1u);
  ASSERT_NE(runtime->shipper(), nullptr);
  EXPECT_GE(runtime->shipper()->total_reshipped_corrupt(), 1u);

  // The healed standby rebuilds to the primary's state.
  store::SemanticTrajectoryStore standby_store;
  auto recovered = standby_store.Recover(standby);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(standby_store.ContentEquals(*runtime->store()))
      << "standby diverged after the corrupt segment was re-shipped";
}

// --- failover fault sites --------------------------------------------

// A fault at failover_promote lands after the fence: the shard stays
// down with both directories intact, and the retried failover heals it.
TEST_F(ShardClusterFixture, FailoverPromoteFaultAbortsCleanlyAndRetries) {
  if (!common::FaultInjector::enabled()) {
    GTEST_SKIP() << "built without SEMITRI_FAULT_INJECTION";
  }
  datagen::Dataset dataset = factory_->NokiaPeople(2, 1);
  auto reference = ReferenceStore(dataset);
  auto cluster = OpenCluster("semitri_shard_failover_fault", 2);
  size_t acked = ShortestTrack(dataset) / 2;
  FeedRange(cluster.get(), dataset, 0, acked);
  AckAll(cluster.get());
  ShardId victim = cluster->OwnerOf(dataset.tracks.front().object_id);
  ASSERT_TRUE(cluster->KillShard(victim).ok());

  common::FaultInjector& fi = common::FaultInjector::Global();
  fi.Arm("failover_promote", common::FaultPolicy::FailOnce());
  EXPECT_FALSE(cluster->FailoverShard(victim).ok());
  fi.Disarm("failover_promote");
  EXPECT_GE(cluster->stats().failovers_aborted, 1u);
  EXPECT_EQ(cluster->runtime(victim), nullptr) << "half-promoted runtime";

  // Both directories are untouched, so the retry promotes cleanly.
  ASSERT_TRUE(cluster->FailoverShard(victim).ok());
  EXPECT_EQ(cluster->stats().failovers_completed, 1u);
  ASSERT_NE(cluster->runtime(victim), nullptr);

  for (const datagen::SimulatedTrack& track : dataset.tracks) {
    for (size_t k = acked; k < track.points.size(); ++k) {
      auto fed = cluster->Feed(track.object_id, track.points[k]);
      ASSERT_TRUE(fed.ok()) << fed.status().ToString();
    }
  }
  ASSERT_TRUE(cluster->CloseAll().ok());
  ExpectConverged(*cluster, *reference, "failover_promote fault");
}

// A detector driven to a false positive (probes of healthy shards made
// to fail) must fence the live runtime before promoting — one writer
// per placement, exactly one live session owner, and convergence from
// the ack afterwards.
TEST_F(ShardClusterFixture, FalsePositiveDetectionFencesLiveRuntimes) {
  if (!common::FaultInjector::enabled()) {
    GTEST_SKIP() << "built without SEMITRI_FAULT_INJECTION";
  }
  datagen::Dataset dataset = factory_->NokiaPeople(2, 1);
  auto reference = ReferenceStore(dataset);
  common::FakeClock clock;
  auto cluster = OpenWith(SelfHealingConfig("semitri_shard_falsepos"), &clock);
  size_t acked = ShortestTrack(dataset) / 2;
  FeedRange(cluster.get(), dataset, 0, acked);
  AckAll(cluster.get());

  common::FaultInjector& fi = common::FaultInjector::Global();
  fi.Arm("detector_probe", common::FaultPolicy::FailAlways());
  size_t failovers = 0;
  for (int i = 0; i < 3; ++i) {
    auto ticked = cluster->Tick();
    ASSERT_TRUE(ticked.ok()) << ticked.status().ToString();
    failovers += *ticked;
    clock.Advance(0.05);
  }
  fi.Disarm("detector_probe");

  // Every (healthy) shard was declared dead and promoted; each
  // promotion dropped a live runtime behind the fence.
  EXPECT_EQ(failovers, 2u);
  ShardCluster::Stats stats = cluster->stats();
  EXPECT_EQ(stats.failovers_completed, 2u);
  EXPECT_EQ(stats.shards_fenced, 2u);
  EXPECT_EQ(stats.detector_deaths_declared, 2u);
  for (size_t i = 0; i < cluster->num_shards(); ++i) {
    std::shared_ptr<ShardRuntime> runtime = cluster->runtime(i);
    ASSERT_NE(runtime, nullptr);
    EXPECT_TRUE(runtime->manager_restored());
  }
  for (const datagen::SimulatedTrack& track : dataset.tracks) {
    EXPECT_EQ(cluster->LiveSessionShards(track.object_id).size(), 1u)
        << "object " << track.object_id;
  }

  // All promoted standbys sit at the ack: re-feed everyone from there.
  for (const datagen::SimulatedTrack& track : dataset.tracks) {
    for (size_t k = acked; k < track.points.size(); ++k) {
      auto fed = cluster->Feed(track.object_id, track.points[k]);
      ASSERT_TRUE(fed.ok()) << fed.status().ToString();
    }
  }
  ASSERT_TRUE(cluster->CloseAll().ok());
  ExpectConverged(*cluster, *reference, "false-positive failover");
}

// Failover racing an aborted in-flight migration: after a handoff
// fault rolls the session back to the source and the source then dies
// and fails over, exactly one shard holds the recoverable session.
TEST_F(ShardClusterFixture, FailoverAfterAbortedHandoffLeavesOneOwner) {
  if (!common::FaultInjector::enabled()) {
    GTEST_SKIP() << "built without SEMITRI_FAULT_INJECTION";
  }
  datagen::Dataset dataset = factory_->NokiaPeople(2, 1);
  auto reference = ReferenceStore(dataset);
  auto cluster = OpenCluster("semitri_shard_handoff_failover", 2);
  size_t acked = ShortestTrack(dataset) / 2;
  FeedRange(cluster.get(), dataset, 0, acked);
  AckAll(cluster.get());

  const datagen::SimulatedTrack& victim = dataset.tracks.front();
  ShardId src = cluster->OwnerOf(victim.object_id);
  ShardId dest = (src + 1) % 2;
  common::FaultInjector& fi = common::FaultInjector::Global();
  fi.Arm("migration_handoff", common::FaultPolicy::FailOnce());
  EXPECT_FALSE(cluster->MigrateObject(victim.object_id, dest).ok());
  fi.Disarm("migration_handoff");
  std::vector<ShardId> owners = cluster->LiveSessionShards(victim.object_id);
  ASSERT_EQ(owners.size(), 1u);
  EXPECT_EQ(owners[0], src);

  // The rolled-back source dies and its standby is promoted: the
  // restored session (from the pre-migration ack) is the one owner.
  ASSERT_TRUE(cluster->KillShard(src).ok());
  ASSERT_TRUE(cluster->FailoverShard(src).ok());
  owners = cluster->LiveSessionShards(victim.object_id);
  ASSERT_EQ(owners.size(), 1u) << "session lost or duplicated";
  EXPECT_EQ(owners[0], src);

  for (const datagen::SimulatedTrack& track : dataset.tracks) {
    for (size_t k = acked; k < track.points.size(); ++k) {
      auto fed = cluster->Feed(track.object_id, track.points[k]);
      ASSERT_TRUE(fed.ok()) << fed.status().ToString();
    }
  }
  ASSERT_TRUE(cluster->CloseAll().ok());
  ExpectConverged(*cluster, *reference, "failover after aborted handoff");
}

}  // namespace
}  // namespace semitri::shard
