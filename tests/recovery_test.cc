// Crash-recovery and graceful-degradation harness.
//
// The durability contract under test: after a crash at *any* fault site
// — WAL append, WAL sync, checkpoint compaction, write-through append,
// stage execution — re-opening the durable directory with
// SemanticTrajectoryStore::Recover and re-running the workload leaves
// the store ContentEquals-identical to a run that never crashed. The
// harness discovers every registered fault site dynamically (sites
// self-register on first fire), so a new SEMITRI_FAULT_FIRE site added
// anywhere in the write path is covered automatically.
//
// The non-injected tests (plain durable round-trips, torn-tail
// truncation, degradation with a missing source) run in every build;
// the kill-at-every-site harnesses need the hooks compiled in and skip
// themselves unless SEMITRI_FAULT_INJECTION=ON.

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/fault_sites.h"
#include "core/pipeline.h"
#include "datagen/presets.h"
#include "datagen/world.h"
#include "shard/cluster.h"
#include "store/semantic_trajectory_store.h"
#include "stream/session_manager.h"

namespace semitri {
namespace {

namespace fs = std::filesystem;

class RecoveryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    common::FaultInjector::Global().Reset();
    datagen::WorldConfig wc;
    wc.seed = 91;
    wc.extent_meters = 3000.0;
    wc.num_pois = 400;
    world_ = std::make_unique<datagen::World>(
        datagen::WorldGenerator(wc).Generate());
    datagen::DatasetFactory factory(world_.get(), 92);
    dataset_ = factory.NokiaPeople(/*users=*/2, /*days=*/1);
  }
  void TearDown() override { common::FaultInjector::Global().Reset(); }

  std::string TempDir(const std::string& name) {
    std::string dir = (fs::temp_directory_path() / name).string();
    fs::remove_all(dir);
    return dir;
  }

  // The offline annotation workload: every track through ProcessStream,
  // a checkpoint compaction between tracks (so the wal_checkpoint site
  // fires mid-workload), a Sync at the end. Returns the first error —
  // under crash injection, the simulated moment of death.
  common::Status RunOfflineWorkload(store::SemanticTrajectoryStore* store) {
    core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                   &world_->pois, core::PipelineConfig{},
                                   store);
    bool checkpointed = false;
    for (const datagen::SimulatedTrack& track : dataset_.tracks) {
      auto results = pipeline.ProcessStream(
          track.object_id, track.points,
          static_cast<core::TrajectoryId>(track.object_id) * 1000);
      if (!results.ok()) return results.status();
      if (!checkpointed) {
        checkpointed = true;
        SEMITRI_RETURN_IF_ERROR(store->Checkpoint());
      }
    }
    return store->Sync();
  }

  // The same tracks through the streaming subsystem, round-robin across
  // objects starting at fix index `start`, with a manager checkpoint +
  // store sync every `checkpoint_every` feeds. `*checkpointed_at` tracks
  // the feed index the latest durable manager checkpoint corresponds
  // to. First error = moment of death.
  common::Status RunStreamingWorkload(stream::SessionManager* manager,
                                      store::SemanticTrajectoryStore* store,
                                      const std::string& manager_ckpt,
                                      size_t start, size_t checkpoint_every,
                                      size_t* checkpointed_at) {
    size_t longest = 0;
    for (const datagen::SimulatedTrack& t : dataset_.tracks) {
      longest = std::max(longest, t.points.size());
    }
    size_t index = 0;
    for (size_t k = 0; k < longest; ++k) {
      for (const datagen::SimulatedTrack& track : dataset_.tracks) {
        if (k >= track.points.size()) continue;
        if (index >= start) {
          auto fed = manager->Feed(track.object_id, track.points[k]);
          if (!fed.ok()) return fed.status();
          if (checkpoint_every > 0 && (index + 1) % checkpoint_every == 0) {
            SEMITRI_RETURN_IF_ERROR(manager->Checkpoint(manager_ckpt));
            SEMITRI_RETURN_IF_ERROR(store->Sync());
            if (checkpointed_at != nullptr) *checkpointed_at = index + 1;
          }
        }
        ++index;
      }
    }
    SEMITRI_RETURN_IF_ERROR(manager->CloseAll());
    return store->Sync();
  }

  // Clean in-memory reference the durable/recovered stores must match.
  void MakeOfflineReference(store::SemanticTrajectoryStore* reference) {
    ASSERT_TRUE(RunOfflineWorkload(reference).ok());
  }

  std::unique_ptr<datagen::World> world_;
  datagen::Dataset dataset_;
};

TEST_F(RecoveryFixture, DurableRunRecoversBitIdentical) {
  std::string dir = TempDir("semitri_recover_basic");
  store::SemanticTrajectoryStore reference;
  MakeOfflineReference(&reference);
  {
    store::StoreConfig config;
    config.durable_dir = dir;
    store::SemanticTrajectoryStore durable(config);
    ASSERT_TRUE(RunOfflineWorkload(&durable).ok());
    ASSERT_TRUE(durable.ContentEquals(reference));
  }  // store destroyed without further checkpoint: WAL holds the tail
  store::SemanticTrajectoryStore recovered;
  auto stats = recovered.Recover(dir);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->checkpoint_loaded);       // mid-workload checkpoint
  EXPECT_GT(stats->wal_records_replayed, 0u);  // puts after it
  EXPECT_EQ(stats->wal_torn_bytes_truncated, 0u);
  EXPECT_TRUE(recovered.ContentEquals(reference));
  fs::remove_all(dir);
}

TEST_F(RecoveryFixture, CheckpointCompactsWalCompletely) {
  std::string dir = TempDir("semitri_recover_compact");
  store::SemanticTrajectoryStore reference;
  MakeOfflineReference(&reference);
  {
    store::StoreConfig config;
    config.durable_dir = dir;
    store::SemanticTrajectoryStore durable(config);
    ASSERT_TRUE(RunOfflineWorkload(&durable).ok());
    ASSERT_TRUE(durable.Checkpoint().ok());
  }
  EXPECT_EQ(fs::file_size(dir + "/wal.log"), 0u);
  store::SemanticTrajectoryStore recovered;
  auto stats = recovered.Recover(dir);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->checkpoint_loaded);
  EXPECT_EQ(stats->wal_records_replayed, 0u);
  EXPECT_TRUE(recovered.ContentEquals(reference));
  // Recovery leaves the store appendable: more writes + a second
  // recovery still match a reference that saw the same extra write.
  core::RawTrajectory extra;
  extra.id = 999999;
  extra.object_id = 7;
  extra.points.push_back({{1.0, 2.0}, 3.0});
  extra.points.push_back({{4.0, 5.0}, 6.0});
  ASSERT_TRUE(recovered.PutRawTrajectory(extra).ok());
  ASSERT_TRUE(recovered.Sync().ok());
  ASSERT_TRUE(reference.PutRawTrajectory(extra).ok());
  store::SemanticTrajectoryStore again;
  ASSERT_TRUE(again.Recover(dir).ok());
  EXPECT_TRUE(again.ContentEquals(reference));
  fs::remove_all(dir);
}

TEST_F(RecoveryFixture, RecoverTruncatesGarbageWalTail) {
  std::string dir = TempDir("semitri_recover_torn");
  store::SemanticTrajectoryStore reference;
  MakeOfflineReference(&reference);
  {
    store::StoreConfig config;
    config.durable_dir = dir;
    store::SemanticTrajectoryStore durable(config);
    ASSERT_TRUE(RunOfflineWorkload(&durable).ok());
  }
  {
    // A power cut mid-append: garbage bytes after the last intact frame.
    std::ofstream wal(dir + "/wal.log",
                      std::ios::binary | std::ios::app);
    wal << "\x13\x00\x00\x00torn-frame";
  }
  store::SemanticTrajectoryStore recovered;
  auto stats = recovered.Recover(dir);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->wal_torn_bytes_truncated, 0u);
  EXPECT_TRUE(recovered.ContentEquals(reference));
  fs::remove_all(dir);
}

TEST_F(RecoveryFixture, MissingSourceDegradesWithoutInjection) {
  // The paper's partial-annotation contract, no faults needed: a
  // pipeline with no POI repository still produces region+line layers.
  core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                 /*pois=*/nullptr);
  const datagen::SimulatedTrack& track = dataset_.tracks.front();
  auto results = pipeline.ProcessStream(track.object_id, track.points, 0);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  for (const core::PipelineResult& r : *results) {
    EXPECT_TRUE(r.region_layer.has_value());
    EXPECT_TRUE(r.line_layer.has_value());
    EXPECT_FALSE(r.point_layer.has_value());
  }
}

// ---------------------------------------------------------------------
// Fault-injected harnesses (SEMITRI_FAULT_INJECTION=ON builds only).
// ---------------------------------------------------------------------

TEST_F(RecoveryFixture, CrashAtEverySiteOfflineRecovers) {
  if (!common::FaultInjector::enabled()) {
    GTEST_SKIP() << "built without SEMITRI_FAULT_INJECTION";
  }
  common::FaultInjector& fi = common::FaultInjector::Global();
  store::SemanticTrajectoryStore reference;
  MakeOfflineReference(&reference);

  // Discovery: the same durable workload, enabled but unarmed, to
  // register every site it crosses and count hits per site.
  {
    std::string dir = TempDir("semitri_crash_discover");
    store::StoreConfig config;
    config.durable_dir = dir;
    store::SemanticTrajectoryStore durable(config);
    ASSERT_TRUE(RunOfflineWorkload(&durable).ok());
    fs::remove_all(dir);
  }
  std::vector<std::string> sites = fi.Sites();
  ASSERT_FALSE(sites.empty());
  // The headline write-path sites must all have registered.
  for (const char* expected :
       {"wal_append", "wal_sync", "wal_checkpoint"}) {
    EXPECT_TRUE(std::find(sites.begin(), sites.end(), expected) !=
                sites.end())
        << "site never fired: " << expected;
  }
  // Every runtime-discovered site must match the checked-in registry
  // (common/fault_sites.h): semitri_lint verifies the registry against
  // the SEMITRI_FAULT_FIRE call sites statically, and this assert
  // closes the loop at runtime — a site that self-registers without a
  // registry entry fails here, so registration implies the
  // kill-at-site sweep below actually covers it.
  for (const std::string& site : sites) {
    bool registered = false;
    for (const common::FaultSiteInfo& info : common::kFaultSites) {
      if (common::FaultSiteMatches(info, site.c_str())) {
        registered = true;
        break;
      }
    }
    EXPECT_TRUE(registered)
        << "fault site `" << site
        << "` is not in common/fault_sites.h — register it so the "
           "crash sweep and semitri_lint both know about it";
  }

  for (const std::string& site : sites) {
    uint64_t hits = fi.HitCount(site);
    if (hits == 0) continue;  // registered by another test path
    // Kill at the first hit and somewhere in the middle of the run.
    std::vector<uint64_t> kill_points = {1};
    if (hits / 2 > 1) kill_points.push_back(hits / 2);
    for (uint64_t n : kill_points) {
      SCOPED_TRACE(site + " crash at hit " + std::to_string(n));
      std::string dir =
          TempDir("semitri_crash_" + std::to_string(std::hash<std::string>{}(
                                         site + std::to_string(n))));
      fi.Reset();
      fi.Arm(site, common::FaultPolicy::CrashNth(n));
      {
        store::StoreConfig config;
        config.durable_dir = dir;
        store::SemanticTrajectoryStore durable(config);
        common::Status died = RunOfflineWorkload(&durable);
        EXPECT_FALSE(died.ok()) << "crash policy never fired";
      }  // process "dies" here
      fi.Reset();  // the rebooted process has no armed faults
      store::SemanticTrajectoryStore recovered;
      auto stats = recovered.Recover(dir);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      // Re-run the workload on the recovered store: every Put is a
      // keyed overwrite, so replaying from the start converges.
      ASSERT_TRUE(RunOfflineWorkload(&recovered).ok());
      EXPECT_TRUE(recovered.ContentEquals(reference))
          << "store diverged after crash at " << site << " hit " << n;
      fs::remove_all(dir);
    }
  }
}

TEST_F(RecoveryFixture, CrashAtEverySiteStreamingRecovers) {
  if (!common::FaultInjector::enabled()) {
    GTEST_SKIP() << "built without SEMITRI_FAULT_INJECTION";
  }
  common::FaultInjector& fi = common::FaultInjector::Global();
  constexpr size_t kCheckpointEvery = 200;

  // Clean streaming reference (in-memory store, same feed order).
  store::SemanticTrajectoryStore reference;
  {
    core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                   &world_->pois, core::PipelineConfig{},
                                   &reference);
    stream::SessionManager manager(&pipeline);
    ASSERT_TRUE(RunStreamingWorkload(&manager, &reference, "", 0,
                                     /*checkpoint_every=*/0, nullptr)
                    .ok());
  }

  // Discovery pass over the durable streaming workload.
  fi.Reset();
  {
    std::string dir = TempDir("semitri_scrash_discover");
    std::string ckpt = dir + "_mgr.ckpt";
    store::StoreConfig config;
    config.durable_dir = dir;
    store::SemanticTrajectoryStore durable(config);
    core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                   &world_->pois, core::PipelineConfig{},
                                   &durable);
    stream::SessionManager manager(&pipeline);
    size_t at = 0;
    ASSERT_TRUE(RunStreamingWorkload(&manager, &durable, ckpt, 0,
                                     kCheckpointEvery, &at)
                    .ok());
    ASSERT_TRUE(durable.ContentEquals(reference));
    fs::remove_all(dir);
    fs::remove(ckpt);
  }
  std::vector<std::string> sites = fi.Sites();
  ASSERT_FALSE(sites.empty());

  for (const std::string& site : sites) {
    uint64_t hits = fi.HitCount(site);
    if (hits == 0) continue;
    uint64_t n = hits / 2 + 1;  // kill mid-run
    SCOPED_TRACE(site + " streaming crash at hit " + std::to_string(n));
    std::string dir =
        TempDir("semitri_scrash_" +
                std::to_string(std::hash<std::string>{}(site)));
    std::string ckpt = dir + "_mgr.ckpt";
    fs::remove(ckpt);
    fi.Reset();
    fi.Arm(site, common::FaultPolicy::CrashNth(n));
    size_t checkpointed_at = 0;
    {
      store::StoreConfig config;
      config.durable_dir = dir;
      store::SemanticTrajectoryStore durable(config);
      core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                     &world_->pois, core::PipelineConfig{},
                                     &durable);
      stream::SessionManager manager(&pipeline);
      common::Status died =
          RunStreamingWorkload(&manager, &durable, ckpt, 0,
                               kCheckpointEvery, &checkpointed_at);
      EXPECT_FALSE(died.ok()) << "crash policy never fired";
    }  // process "dies"
    fi.Reset();

    // Reboot: recover the store, restore live sessions from the last
    // durable manager checkpoint, resume the feed from that point.
    store::SemanticTrajectoryStore recovered;
    auto stats = recovered.Recover(dir);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                   &world_->pois, core::PipelineConfig{},
                                   &recovered);
    stream::SessionManager manager(&pipeline);
    if (checkpointed_at > 0) {
      ASSERT_TRUE(manager.Restore(ckpt).ok());
    }
    ASSERT_TRUE(RunStreamingWorkload(&manager, &recovered, ckpt,
                                     checkpointed_at, kCheckpointEvery,
                                     nullptr)
                    .ok());
    EXPECT_TRUE(recovered.ContentEquals(reference))
        << "streaming store diverged after crash at " << site;
    fs::remove_all(dir);
    fs::remove(ckpt);
  }
}

TEST_F(RecoveryFixture, PoiFailureDegradesToRegionAndLine) {
  if (!common::FaultInjector::enabled()) {
    GTEST_SKIP() << "built without SEMITRI_FAULT_INJECTION";
  }
  common::FaultInjector& fi = common::FaultInjector::Global();
  // An unreachable POI repository: the point_annotation stage fails on
  // every trajectory. With SkipAndRecord the run completes with
  // region+line layers and a per-stage skip report.
  store::SemanticTrajectoryStore store;
  core::PipelineConfig config;
  config.annotation_failure = core::FailurePolicy::SkipAndRecord();
  core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                 &world_->pois, config, &store);
  fi.Arm(std::string("stage:") + core::kStagePointAnnotation,
         common::FaultPolicy::FailAlways());
  const datagen::SimulatedTrack& track = dataset_.tracks.front();
  auto results = pipeline.ProcessStream(track.object_id, track.points, 0);
  fi.Reset();
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_FALSE(results->empty());
  for (const core::PipelineResult& r : *results) {
    EXPECT_TRUE(r.region_layer.has_value());
    EXPECT_TRUE(r.line_layer.has_value());
    EXPECT_FALSE(r.point_layer.has_value());
    EXPECT_TRUE(r.degraded());
    auto it = r.stage_reports.find(core::kStagePointAnnotation);
    ASSERT_TRUE(it != r.stage_reports.end());
    EXPECT_TRUE(it->second.skipped);
    EXPECT_FALSE(it->second.status.ok());
    // Store side: region+line rows landed, no point rows.
    auto interps = store.ListInterpretations(r.cleaned.id);
    EXPECT_TRUE(std::find(interps.begin(), interps.end(), "region") !=
                interps.end());
    EXPECT_TRUE(std::find(interps.begin(), interps.end(), "point") ==
                interps.end());
  }
}

TEST_F(RecoveryFixture, TransientStoreFaultIsRetried) {
  if (!common::FaultInjector::enabled()) {
    GTEST_SKIP() << "built without SEMITRI_FAULT_INJECTION";
  }
  common::FaultInjector& fi = common::FaultInjector::Global();
  // A transient fault in the landuse join: one failure, then success.
  // Retry(3) with zero backoff absorbs it; the result is complete and
  // the stage report records the extra attempt.
  store::SemanticTrajectoryStore store;
  core::PipelineConfig config;
  config.annotation_failure = core::FailurePolicy::Retry(3);
  core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                 &world_->pois, config, &store);
  fi.Arm(std::string("stage:") + core::kStageLanduseJoin,
         common::FaultPolicy::FailOnce());
  const datagen::SimulatedTrack& track = dataset_.tracks.front();
  auto results = pipeline.ProcessStream(track.object_id, track.points, 0);
  fi.Reset();
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_FALSE(results->empty());
  const core::PipelineResult& first = results->front();
  EXPECT_TRUE(first.region_layer.has_value());
  EXPECT_FALSE(first.degraded());
  auto it = first.stage_reports.find(core::kStageLanduseJoin);
  ASSERT_TRUE(it != first.stage_reports.end());
  EXPECT_EQ(it->second.attempts, 2u);
  EXPECT_TRUE(it->second.status.ok());
  EXPECT_FALSE(it->second.skipped);
}

// The migration leg of the kill-at-every-site sweep: a live session
// migration killed at any of its fault sites must abort with the
// session recoverable on exactly one shard — and the interrupted run,
// once the driver retries and finishes the streams, must converge
// ContentEquals to an uninterrupted single-process run.
TEST_F(RecoveryFixture, MigrationKilledAtEverySiteLeavesOneOwner) {
  if (!common::FaultInjector::enabled()) {
    GTEST_SKIP() << "built without SEMITRI_FAULT_INJECTION";
  }
  common::FaultInjector& fi = common::FaultInjector::Global();

  // Uninterrupted reference.
  store::SemanticTrajectoryStore reference;
  {
    core::SemiTriPipeline pipeline(&world_->regions, &world_->roads,
                                   &world_->pois, core::PipelineConfig{},
                                   &reference);
    stream::SessionManager manager(&pipeline);
    for (const datagen::SimulatedTrack& track : dataset_.tracks) {
      for (const core::GpsPoint& fix : track.points) {
        ASSERT_TRUE(manager.Feed(track.object_id, fix).ok());
      }
    }
    ASSERT_TRUE(manager.CloseAll().ok());
  }

  for (const char* site :
       {"migration_pack", "migration_handoff", "migration_unpack"}) {
    SCOPED_TRACE(site);
    fi.Reset();
    shard::ShardClusterConfig config;
    config.num_shards = 2;
    config.base_dir = TempDir(std::string("semitri_migration_kill_") + site);
    auto opened = shard::ShardCluster::Open(&world_->regions, &world_->roads,
                                            &world_->pois, config);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<shard::ShardCluster> cluster = std::move(opened.value());

    // Feed the first half of every track, then kill the migration of
    // each object at `site`.
    size_t longest = 0;
    for (const datagen::SimulatedTrack& t : dataset_.tracks) {
      longest = std::max(longest, t.points.size());
    }
    for (size_t k = 0; k < longest / 2; ++k) {
      for (const datagen::SimulatedTrack& track : dataset_.tracks) {
        if (k >= track.points.size()) continue;
        ASSERT_TRUE(cluster->Feed(track.object_id, track.points[k]).ok());
      }
    }
    for (const datagen::SimulatedTrack& track : dataset_.tracks) {
      shard::ShardId src = cluster->OwnerOf(track.object_id);
      shard::ShardId dest = (src + 1) % 2;
      fi.Arm(site, common::FaultPolicy::CrashNth(1));
      EXPECT_FALSE(cluster->MigrateObject(track.object_id, dest).ok());
      fi.Disarm(site);
      // Killed mid-migration: the session lives on exactly one shard,
      // the source, and the routing still points there.
      std::vector<shard::ShardId> owners =
          cluster->LiveSessionShards(track.object_id);
      ASSERT_EQ(owners.size(), 1u)
          << "session lost or duplicated after kill at " << site;
      EXPECT_EQ(owners[0], src);
      EXPECT_EQ(cluster->OwnerOf(track.object_id), src);
      // The driver retries once the fault clears.
      ASSERT_TRUE(cluster->MigrateObject(track.object_id, dest).ok());
    }
    for (size_t k = longest / 2; k < longest; ++k) {
      for (const datagen::SimulatedTrack& track : dataset_.tracks) {
        if (k >= track.points.size()) continue;
        ASSERT_TRUE(cluster->Feed(track.object_id, track.points[k]).ok());
      }
    }
    ASSERT_TRUE(cluster->CloseAll().ok());
    store::SemanticTrajectoryStore merged;
    ASSERT_TRUE(cluster->MergeStores(&merged).ok());
    EXPECT_TRUE(merged.ContentEquals(reference))
        << "cluster diverged after migration killed at " << site;
    fs::remove_all(config.base_dir);
  }
  fi.Reset();
}

// WAL shipping killed mid-ship: the primary's durability is untouched
// (shipping is replication, not the ack path), the lag is visible, and
// a restarted shard ships the backlog so a standby rebuild converges.
TEST_F(RecoveryFixture, WalShipKilledMidShipRecoversAfterRestart) {
  if (!common::FaultInjector::enabled()) {
    GTEST_SKIP() << "built without SEMITRI_FAULT_INJECTION";
  }
  common::FaultInjector& fi = common::FaultInjector::Global();
  fi.Reset();
  shard::ShardClusterConfig config;
  config.num_shards = 1;
  config.base_dir = TempDir("semitri_wal_ship_kill");
  auto opened = shard::ShardCluster::Open(&world_->regions, &world_->roads,
                                          &world_->pois, config);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<shard::ShardCluster> cluster = std::move(opened.value());
  for (const datagen::SimulatedTrack& track : dataset_.tracks) {
    for (const core::GpsPoint& fix : track.points) {
      ASSERT_TRUE(cluster->Feed(track.object_id, fix).ok());
    }
  }
  ASSERT_TRUE(cluster->CloseAll().ok());

  // The ship is killed mid-flight: the seal lands, the copy does not.
  fi.Arm("wal_ship", common::FaultPolicy::CrashNth(1));
  EXPECT_FALSE(cluster->SealAndShipAll().ok());
  fi.Disarm("wal_ship");
  std::shared_ptr<shard::ShardRuntime> runtime = cluster->runtime(0);
  ASSERT_NE(runtime, nullptr);
  EXPECT_GT(runtime->ShardHealthInfo().wal_ship_lag_segments, 0u);
  // The crashed shipper stays dead, like the sidecar process it
  // models...
  EXPECT_FALSE(cluster->SealAndShipAll().ok());
  // ...but the primary's own ack path does not depend on it.
  ASSERT_TRUE(cluster->CheckpointAll().ok());

  // Restarting the shard brings a fresh shipper that drains the
  // backlog.
  ASSERT_TRUE(cluster->KillShard(0).ok());
  ASSERT_TRUE(cluster->RestartShard(0).ok());
  auto shipped = cluster->SealAndShipAll();
  ASSERT_TRUE(shipped.ok()) << shipped.status().ToString();
  EXPECT_GT(shipped->segments_shipped, 0u);
  runtime = cluster->runtime(0);
  ASSERT_NE(runtime, nullptr);
  EXPECT_EQ(runtime->ShardHealthInfo().wal_ship_lag_segments, 0u);

  // A standby rebuilt purely from shipped segments has everything.
  store::SemanticTrajectoryStore standby;
  ASSERT_TRUE(standby.Recover(runtime->config().standby_dir).ok());
  EXPECT_TRUE(standby.ContentEquals(*runtime->store()))
      << "standby diverged after the shipping crash + restart";
  fs::remove_all(config.base_dir);
  fi.Reset();
}

}  // namespace
}  // namespace semitri
