// Tests for the analytics layer: distributions, landuse breakdowns,
// Eq. 8 trajectory categorization, compression stats, latency profiler.

#include <gtest/gtest.h>

#include "analytics/distribution.h"
#include "analytics/latency_profiler.h"
#include "analytics/trajectory_stats.h"

namespace semitri::analytics {
namespace {

TEST(LabeledDistributionTest, CountsAndFractions) {
  LabeledDistribution d;
  d.Add("1.2", 83);
  d.Add("1.3", 10);
  d.Add("1.2", 7);
  EXPECT_EQ(d.total(), 100u);
  EXPECT_EQ(d.CountOf("1.2"), 90u);
  EXPECT_DOUBLE_EQ(d.Fraction("1.2"), 0.9);
  EXPECT_DOUBLE_EQ(d.Fraction("9.9"), 0.0);
}

TEST(LabeledDistributionTest, TopK) {
  LabeledDistribution d;
  d.Add("a", 5);
  d.Add("b", 30);
  d.Add("c", 15);
  auto top = d.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "b");
  EXPECT_DOUBLE_EQ(top[0].second, 0.6);
  EXPECT_EQ(top[1].first, "c");
  // k larger than size.
  EXPECT_EQ(d.TopK(10).size(), 3u);
}

TEST(LabeledDistributionTest, EmptyDistribution) {
  LabeledDistribution d;
  EXPECT_EQ(d.total(), 0u);
  EXPECT_DOUBLE_EQ(d.Fraction("x"), 0.0);
  EXPECT_TRUE(d.TopK(3).empty());
}

TEST(LogHistogramTest, BinsByDecade) {
  LogHistogram h(1);  // one bin per decade
  h.Add(5);     // [1, 10)
  h.Add(50);    // [10, 100)
  h.Add(70);    // [10, 100)
  h.Add(500);   // [100, 1000)
  h.Add(0.1);   // clamps to 1 -> [1, 10)
  auto bins = h.bins();
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins[0].count, 2u);
  EXPECT_EQ(bins[1].count, 2u);
  EXPECT_EQ(bins[2].count, 1u);
  EXPECT_DOUBLE_EQ(bins[0].lo, 1.0);
  EXPECT_DOUBLE_EQ(bins[0].hi, 10.0);
  EXPECT_EQ(h.total(), 5u);
}

TEST(TrajectoryCategoryTest, Eq8PicksMaxStopTime) {
  core::StructuredSemanticTrajectory t;
  t.interpretation = "point";
  auto add_stop = [&](int category, double duration) {
    core::SemanticEpisode ep;
    ep.kind = core::EpisodeKind::kStop;
    ep.time_in = 0;
    ep.time_out = duration;
    ep.AddAnnotation("poi_category_id", std::to_string(category));
    t.episodes.push_back(ep);
  };
  add_stop(2, 3600);  // item sale, 1 h
  add_stop(3, 1800);  // person life, 0.5 h
  add_stop(2, 600);   // item sale, +10 min
  EXPECT_EQ(TrajectoryCategory(t, 5), 2);
}

TEST(TrajectoryCategoryTest, NoStopsReturnsMinusOne) {
  core::StructuredSemanticTrajectory t;
  EXPECT_EQ(TrajectoryCategory(t, 5), -1);
  core::SemanticEpisode move;
  move.kind = core::EpisodeKind::kMove;
  t.episodes.push_back(move);
  EXPECT_EQ(TrajectoryCategory(t, 5), -1);
}

TEST(CompressionStatsTest, Ratio) {
  CompressionStats s;
  s.raw_records = 3000000;
  s.semantic_tuples = 8385;
  EXPECT_NEAR(s.CompressionRatio(), 0.997, 0.001);
  CompressionStats empty;
  EXPECT_DOUBLE_EQ(empty.CompressionRatio(), 0.0);
}

TEST(ContextCountsTest, Accumulates) {
  ContextCounts counts;
  core::RawTrajectory t;
  for (int i = 0; i < 100; ++i) {
    t.points.push_back({{0, 0}, static_cast<double>(i)});
  }
  core::Episode stop;
  stop.kind = core::EpisodeKind::kStop;
  stop.begin = 0;
  stop.end = 60;
  core::Episode move;
  move.kind = core::EpisodeKind::kMove;
  move.begin = 60;
  move.end = 100;
  counts.Accumulate(t, {stop, move});
  counts.Accumulate(t, {move});
  EXPECT_EQ(counts.num_trajectories, 2u);
  EXPECT_EQ(counts.num_gps_records, 200u);
  EXPECT_EQ(counts.num_stops, 1u);
  EXPECT_EQ(counts.num_moves, 2u);
  EXPECT_EQ(counts.trajectory_sizes.total(), 2u);
}

TEST(LanduseBreakdownTest, SplitsByMotionContext) {
  region::RegionSet regions;
  regions.AddCell(geo::BoundingBox({0, 0}, {100, 100}),
                  region::LanduseCategory::kBuilding);
  regions.AddCell(geo::BoundingBox({100, 0}, {200, 100}),
                  region::LanduseCategory::kTransportation);
  region::RegionAnnotator annotator(&regions);
  core::RawTrajectory t;
  // 10 stop points in building cell; 10 move points in transport cell;
  // 5 uncovered points.
  for (int i = 0; i < 10; ++i) {
    t.points.push_back({{50, 50}, static_cast<double>(i)});
  }
  for (int i = 10; i < 20; ++i) {
    t.points.push_back({{150, 50}, static_cast<double>(i)});
  }
  for (int i = 20; i < 25; ++i) {
    t.points.push_back({{500, 500}, static_cast<double>(i)});
  }
  core::Episode stop;
  stop.kind = core::EpisodeKind::kStop;
  stop.begin = 0;
  stop.end = 10;
  core::Episode move;
  move.kind = core::EpisodeKind::kMove;
  move.begin = 10;
  move.end = 25;
  LanduseBreakdown breakdown =
      ComputeLanduseBreakdown(t, {stop, move}, annotator, regions);
  EXPECT_EQ(breakdown.trajectory.total(), 20u);
  EXPECT_EQ(breakdown.stop.CountOf("1.2"), 10u);
  EXPECT_EQ(breakdown.move.CountOf("1.3"), 10u);
  EXPECT_EQ(breakdown.uncovered_points, 5u);
}

TEST(LatencyProfilerTest, MeanTotalCount) {
  LatencyProfiler profiler;
  profiler.Record("store", 1.0);
  profiler.Record("store", 3.0);
  profiler.Record("compute", 0.5);
  EXPECT_EQ(profiler.Count("store"), 2u);
  EXPECT_DOUBLE_EQ(profiler.Total("store"), 4.0);
  EXPECT_DOUBLE_EQ(profiler.Mean("store"), 2.0);
  EXPECT_DOUBLE_EQ(profiler.Mean("missing"), 0.0);
  EXPECT_EQ(profiler.Stages().size(), 2u);
}

TEST(LatencyProfilerTest, Percentiles) {
  LatencyProfiler profiler;
  for (int i = 1; i <= 100; ++i) {
    profiler.Record("x", static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(profiler.Percentile("x", 0.5), 50.0);
  EXPECT_DOUBLE_EQ(profiler.Percentile("x", 0.99), 99.0);
  EXPECT_DOUBLE_EQ(profiler.Percentile("x", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(profiler.Percentile("x", 1.0), 100.0);
  EXPECT_DOUBLE_EQ(profiler.Percentile("missing", 0.5), 0.0);
}

TEST(LatencyProfilerTest, ScopeRecords) {
  LatencyProfiler profiler;
  {
    LatencyProfiler::Scope scope(&profiler, "scoped");
  }
  EXPECT_EQ(profiler.Count("scoped"), 1u);
  EXPECT_GE(profiler.Total("scoped"), 0.0);
  profiler.Clear();
  EXPECT_EQ(profiler.Count("scoped"), 0u);
}

}  // namespace
}  // namespace semitri::analytics
