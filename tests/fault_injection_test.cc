// Tests for the deterministic fault injector: policy semantics
// (fail-once / fail-nth / always / probabilistic), hit accounting, site
// registration, and determinism across runs with the same seed.
//
// These tests drive FaultInjector directly, so they run in every build;
// only the macro expansion (SEMITRI_FAULT_FIRE) depends on the
// SEMITRI_FAULT_INJECTION option.

#include "common/fault_injection.h"

#include <vector>

#include <gtest/gtest.h>

namespace semitri::common {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(FaultInjectionTest, UnarmedSiteNeverTriggers) {
  FaultInjector& fi = FaultInjector::Global();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fi.Fire("test_site"), FaultAction::kNone);
  }
  EXPECT_EQ(fi.HitCount("test_site"), 10u);
}

TEST_F(FaultInjectionTest, FailOnceTriggersExactlyOnce) {
  FaultInjector& fi = FaultInjector::Global();
  fi.Arm("s", FaultPolicy::FailOnce());
  EXPECT_EQ(fi.Fire("s"), FaultAction::kFail);
  EXPECT_EQ(fi.Fire("s"), FaultAction::kNone);
  EXPECT_EQ(fi.Fire("s"), FaultAction::kNone);
}

TEST_F(FaultInjectionTest, FailNthCountsFromArming) {
  FaultInjector& fi = FaultInjector::Global();
  // Pre-arm hits must not count toward the policy.
  EXPECT_EQ(fi.Fire("s"), FaultAction::kNone);
  EXPECT_EQ(fi.Fire("s"), FaultAction::kNone);
  fi.Arm("s", FaultPolicy::FailNth(3));
  EXPECT_EQ(fi.Fire("s"), FaultAction::kNone);
  EXPECT_EQ(fi.Fire("s"), FaultAction::kNone);
  EXPECT_EQ(fi.Fire("s"), FaultAction::kFail);
  EXPECT_EQ(fi.Fire("s"), FaultAction::kNone);
}

TEST_F(FaultInjectionTest, FailAlwaysRepeats) {
  FaultInjector& fi = FaultInjector::Global();
  fi.Arm("s", FaultPolicy::FailAlways());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(fi.Fire("s"), FaultAction::kFail);
  }
}

TEST_F(FaultInjectionTest, CrashNthReturnsCrash) {
  FaultInjector& fi = FaultInjector::Global();
  fi.Arm("s", FaultPolicy::CrashNth(2));
  EXPECT_EQ(fi.Fire("s"), FaultAction::kNone);
  EXPECT_EQ(fi.Fire("s"), FaultAction::kCrash);
  EXPECT_EQ(fi.Fire("s"), FaultAction::kNone);
}

TEST_F(FaultInjectionTest, DisarmStopsTriggering) {
  FaultInjector& fi = FaultInjector::Global();
  fi.Arm("s", FaultPolicy::FailAlways());
  EXPECT_EQ(fi.Fire("s"), FaultAction::kFail);
  fi.Disarm("s");
  EXPECT_EQ(fi.Fire("s"), FaultAction::kNone);
  EXPECT_EQ(fi.HitCount("s"), 2u);  // hit stats survive disarm
}

TEST_F(FaultInjectionTest, RearmRestartsPolicyCount) {
  FaultInjector& fi = FaultInjector::Global();
  fi.Arm("s", FaultPolicy::FailNth(2));
  EXPECT_EQ(fi.Fire("s"), FaultAction::kNone);
  fi.Arm("s", FaultPolicy::FailNth(2));  // restart: next hit is post-arm #1
  EXPECT_EQ(fi.Fire("s"), FaultAction::kNone);
  EXPECT_EQ(fi.Fire("s"), FaultAction::kFail);
}

TEST_F(FaultInjectionTest, ProbabilisticIsDeterministicPerSeed) {
  FaultInjector& fi = FaultInjector::Global();
  auto run = [&](uint64_t seed) {
    fi.Reset();
    fi.Arm("p", FaultPolicy::Probabilistic(0.3, seed));
    std::vector<int> pattern;
    for (int i = 0; i < 64; ++i) {
      pattern.push_back(fi.Fire("p") == FaultAction::kFail ? 1 : 0);
    }
    return pattern;
  };
  std::vector<int> a = run(42);
  std::vector<int> b = run(42);
  std::vector<int> c = run(43);
  EXPECT_EQ(a, b);       // same seed, same injection pattern
  EXPECT_NE(a, c);       // different seed diverges (overwhelmingly likely)
  int fired = 0;
  for (int x : a) fired += x;
  EXPECT_GT(fired, 0);   // p=0.3 over 64 hits: some fire...
  EXPECT_LT(fired, 64);  // ...but not all
}

TEST_F(FaultInjectionTest, SitesRegisterOnFirstFire) {
  FaultInjector& fi = FaultInjector::Global();
  fi.Fire("b_site");
  fi.Fire("a_site");
  fi.Fire("b_site");
  std::vector<std::string> sites = fi.Sites();
  ASSERT_GE(sites.size(), 2u);
  EXPECT_TRUE(std::find(sites.begin(), sites.end(), "a_site") != sites.end());
  EXPECT_TRUE(std::find(sites.begin(), sites.end(), "b_site") != sites.end());
  EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
}

TEST_F(FaultInjectionTest, ResetClearsHitsAndPolicies) {
  FaultInjector& fi = FaultInjector::Global();
  fi.Arm("s", FaultPolicy::FailAlways());
  fi.Fire("s");
  fi.Reset();
  EXPECT_EQ(fi.HitCount("s"), 0u);
  EXPECT_EQ(fi.Fire("s"), FaultAction::kNone);  // disarmed
  // Registered names survive Reset so discovery runs stay valid.
  std::vector<std::string> sites = fi.Sites();
  EXPECT_TRUE(std::find(sites.begin(), sites.end(), "s") != sites.end());
}

TEST_F(FaultInjectionTest, MacroComplilesToNoopWhenDisabled) {
#if SEMITRI_FAULT_INJECTION_ENABLED
  GTEST_SKIP() << "fault injection compiled in; macro is live";
#else
  FaultInjector& fi = FaultInjector::Global();
  fi.Arm("macro_site", FaultPolicy::FailAlways());
  // The macro must not consult the injector at all when compiled out.
  EXPECT_EQ(SEMITRI_FAULT_FIRE("macro_site"), FaultAction::kNone);
  EXPECT_EQ(fi.HitCount("macro_site"), 0u);
#endif
}

}  // namespace
}  // namespace semitri::common
