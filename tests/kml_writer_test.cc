// Tests for the KML exporter (the web-interface data product).

#include "export/kml_writer.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace semitri::export_ {
namespace {

geo::LocalProjection Lausanne() { return geo::LocalProjection({46.52, 6.63}); }

core::RawTrajectory SmallTrajectory() {
  core::RawTrajectory t;
  t.id = 1;
  for (int i = 0; i < 5; ++i) {
    t.points.push_back({{i * 100.0, i * 50.0}, i * 10.0});
  }
  return t;
}

TEST(KmlWriterTest, DocumentSkeleton) {
  KmlWriter writer(Lausanne());
  std::string kml = writer.ToString();
  EXPECT_NE(kml.find("<?xml version=\"1.0\""), std::string::npos);
  EXPECT_NE(kml.find("<kml xmlns"), std::string::npos);
  EXPECT_NE(kml.find("</Document>"), std::string::npos);
}

TEST(KmlWriterTest, TrajectoryBecomesLineString) {
  KmlWriter writer(Lausanne());
  writer.AddTrajectory(SmallTrajectory(), "my trace");
  std::string kml = writer.ToString();
  EXPECT_NE(kml.find("<LineString>"), std::string::npos);
  EXPECT_NE(kml.find("<name>my trace</name>"), std::string::npos);
  // Coordinates around the reference point (lon ~6.63, lat ~46.52).
  EXPECT_NE(kml.find("6.63"), std::string::npos);
  EXPECT_NE(kml.find("46.52"), std::string::npos);
}

TEST(KmlWriterTest, StopsBecomePoints) {
  KmlWriter writer(Lausanne());
  core::RawTrajectory t = SmallTrajectory();
  core::Episode stop;
  stop.kind = core::EpisodeKind::kStop;
  stop.begin = 0;
  stop.end = 2;
  stop.time_in = 0;
  stop.time_out = 10;
  stop.center = {50, 25};
  core::Episode move = stop;
  move.kind = core::EpisodeKind::kMove;
  writer.AddStops(t, {stop, move, stop});
  std::string kml = writer.ToString();
  EXPECT_NE(kml.find("<name>stop 0</name>"), std::string::npos);
  EXPECT_NE(kml.find("<name>stop 1</name>"), std::string::npos);
  EXPECT_EQ(kml.find("<name>stop 2</name>"), std::string::npos);
}

TEST(KmlWriterTest, SemanticEpisodesCarryAnnotations) {
  KmlWriter writer(Lausanne());
  core::StructuredSemanticTrajectory t;
  t.interpretation = "line";
  core::SemanticEpisode ep;
  ep.kind = core::EpisodeKind::kMove;
  ep.time_in = 0;
  ep.time_out = 60;
  ep.AddAnnotation("transport_mode", "metro");
  ep.AddAnnotation("road_name", "M1 <east>");
  t.episodes.push_back(ep);
  writer.AddSemanticEpisodes(t, {{10, 10}});
  std::string kml = writer.ToString();
  EXPECT_NE(kml.find("transport_mode=metro"), std::string::npos);
  // XML escaping.
  EXPECT_NE(kml.find("M1 &lt;east&gt;"), std::string::npos);
  EXPECT_EQ(kml.find("<east>"), std::string::npos);
}

TEST(KmlWriterTest, WritesFile) {
  namespace fs = std::filesystem;
  std::string path =
      (fs::temp_directory_path() / "semitri_test.kml").string();
  fs::remove(path);
  KmlWriter writer(Lausanne());
  writer.AddTrajectory(SmallTrajectory(), "t");
  ASSERT_TRUE(writer.WriteFile(path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, writer.ToString());
  fs::remove(path);
}

TEST(KmlWriterTest, WriteFileFailsOnBadPath) {
  KmlWriter writer(Lausanne());
  EXPECT_EQ(writer.WriteFile("/nonexistent/dir/x.kml").code(),
            common::StatusCode::kIoError);
}


TEST(KmlWriterTest, SimplifiedTrajectoryHasFewerCoordinates) {
  KmlWriter full(Lausanne());
  KmlWriter simplified(Lausanne());
  core::RawTrajectory t;
  // Straight line with tiny noise: simplification collapses it.
  for (int i = 0; i < 100; ++i) {
    t.points.push_back({{i * 10.0, (i % 2) * 0.5}, i * 1.0});
  }
  full.AddTrajectory(t, "full");
  simplified.AddTrajectory(t, "simplified", /*simplify_tolerance_meters=*/5.0);
  auto count_coords = [](const std::string& kml) {
    size_t n = 0;
    for (char c : kml) {
      if (c == ',') ++n;
    }
    return n;
  };
  EXPECT_LT(count_coords(simplified.ToString()),
            count_coords(full.ToString()) / 10);
}

}  // namespace
}  // namespace semitri::export_
