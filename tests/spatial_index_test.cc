// Conformance suite for the unified SpatialIndex interface: every
// backend must agree with brute force (and therefore with every other
// backend) on box, point, radius, and nearest-neighbor queries, whether
// loaded incrementally or in bulk. Backend-specific structural tests
// stay in rstar_tree_test.cc / grid_index_test.cc.

#include "index/spatial_index.h"

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/box.h"

namespace semitri::index {
namespace {

using geo::BoundingBox;
using geo::Point;

BoundingBox RandomBox(common::Rng& rng, double extent, double max_size) {
  Point min{rng.Uniform(0.0, extent), rng.Uniform(0.0, extent)};
  Point size{rng.Uniform(0.0, max_size), rng.Uniform(0.0, max_size)};
  return {min, min + size};
}

class SpatialIndexConformance
    : public ::testing::TestWithParam<IndexBackend> {
 protected:
  std::unique_ptr<SpatialIndex<int>> MakeIndex() const {
    SpatialIndexConfig config;
    config.backend = GetParam();
    return MakeSpatialIndex<int>(config);
  }
};

TEST_P(SpatialIndexConformance, EmptyIndex) {
  auto index = MakeIndex();
  EXPECT_EQ(index->backend(), GetParam());
  EXPECT_EQ(index->size(), 0u);
  EXPECT_TRUE(index->empty());
  EXPECT_TRUE(index->Query(BoundingBox({0, 0}, {100, 100})).empty());
  EXPECT_TRUE(index->QueryRadius({50, 50}, 10.0).empty());
  EXPECT_TRUE(index->NearestNeighbors({0, 0}, 3).empty());
}

TEST_P(SpatialIndexConformance, BoxQueryMatchesBruteForce) {
  common::Rng rng(7);
  auto index = MakeIndex();
  std::vector<BoundingBox> boxes;
  for (int i = 0; i < 2000; ++i) {
    BoundingBox b = RandomBox(rng, 1000.0, 20.0);
    boxes.push_back(b);
    index->Insert(b, i);
  }
  EXPECT_EQ(index->size(), 2000u);
  for (int q = 0; q < 50; ++q) {
    BoundingBox query = RandomBox(rng, 1000.0, 80.0);
    std::vector<int> got = index->Query(query);
    std::sort(got.begin(), got.end());
    std::vector<int> expected;
    for (int i = 0; i < 2000; ++i) {
      if (boxes[static_cast<size_t>(i)].Intersects(query)) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(got, expected) << "query " << q;
  }
}

TEST_P(SpatialIndexConformance, PointQueryMatchesBruteForce) {
  common::Rng rng(11);
  auto index = MakeIndex();
  std::vector<BoundingBox> boxes;
  for (int i = 0; i < 500; ++i) {
    BoundingBox b = RandomBox(rng, 200.0, 15.0);
    boxes.push_back(b);
    index->Insert(b, i);
  }
  for (int q = 0; q < 100; ++q) {
    Point p{rng.Uniform(0.0, 220.0), rng.Uniform(0.0, 220.0)};
    std::vector<int> got = index->QueryPoint(p);
    std::sort(got.begin(), got.end());
    std::vector<int> expected;
    for (int i = 0; i < 500; ++i) {
      if (boxes[static_cast<size_t>(i)].Contains(p)) expected.push_back(i);
    }
    EXPECT_EQ(got, expected);
  }
}

TEST_P(SpatialIndexConformance, RadiusQueryMatchesBruteForce) {
  common::Rng rng(17);
  auto index = MakeIndex();
  std::vector<Point> points;
  for (int i = 0; i < 600; ++i) {
    Point p{rng.Uniform(0.0, 300.0), rng.Uniform(0.0, 300.0)};
    points.push_back(p);
    index->Insert(BoundingBox::FromPoint(p), i);
  }
  for (int q = 0; q < 30; ++q) {
    Point query{rng.Uniform(0.0, 300.0), rng.Uniform(0.0, 300.0)};
    double radius = rng.Uniform(5.0, 60.0);
    std::vector<int> got = index->QueryRadius(query, radius);
    std::sort(got.begin(), got.end());
    std::vector<int> expected;
    for (int i = 0; i < 600; ++i) {
      if (points[static_cast<size_t>(i)].DistanceTo(query) <= radius) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(got, expected);
  }
}

TEST_P(SpatialIndexConformance, NearestNeighborsOrderedAndCorrect) {
  common::Rng rng(13);
  auto index = MakeIndex();
  std::vector<Point> points;
  for (int i = 0; i < 800; ++i) {
    Point p{rng.Uniform(0.0, 500.0), rng.Uniform(0.0, 500.0)};
    points.push_back(p);
    index->Insert(BoundingBox::FromPoint(p), i);
  }
  for (int q = 0; q < 20; ++q) {
    Point query{rng.Uniform(0.0, 500.0), rng.Uniform(0.0, 500.0)};
    auto nn = index->NearestNeighbors(query, 10);
    ASSERT_EQ(nn.size(), 10u);
    // Returned in nondecreasing distance order.
    for (size_t i = 1; i < nn.size(); ++i) {
      EXPECT_LE(nn[i - 1].box.DistanceTo(query),
                nn[i].box.DistanceTo(query) + 1e-12);
    }
    // Matches brute-force k-th distance.
    std::vector<double> dists;
    for (const Point& p : points) dists.push_back(p.DistanceTo(query));
    std::sort(dists.begin(), dists.end());
    EXPECT_NEAR(nn.back().box.DistanceTo(query), dists[9], 1e-9);
  }
}

TEST_P(SpatialIndexConformance, NearestNeighborsWithFewerEntriesThanK) {
  auto index = MakeIndex();
  index->Insert(BoundingBox::FromPoint({1, 1}), 0);
  index->Insert(BoundingBox::FromPoint({2, 2}), 1);
  auto nn = index->NearestNeighbors({0, 0}, 10);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0].value, 0);
  EXPECT_EQ(nn[1].value, 1);
}

TEST_P(SpatialIndexConformance, BulkLoadAgreesWithIncrementalInsert) {
  common::Rng rng(19);
  std::vector<SpatialEntry<int>> entries;
  auto incremental = MakeIndex();
  for (int i = 0; i < 1200; ++i) {
    BoundingBox b = RandomBox(rng, 400.0, 10.0);
    entries.push_back({b, i});
    incremental->Insert(b, i);
  }
  auto bulk = MakeIndex();
  bulk->BulkLoad(entries);
  EXPECT_EQ(bulk->size(), incremental->size());
  for (int q = 0; q < 40; ++q) {
    BoundingBox query = RandomBox(rng, 400.0, 40.0);
    std::vector<int> a = bulk->Query(query);
    std::vector<int> b = incremental->Query(query);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
  for (int q = 0; q < 20; ++q) {
    Point p{rng.Uniform(0.0, 400.0), rng.Uniform(0.0, 400.0)};
    auto a = bulk->NearestNeighbors(p, 5);
    auto b = incremental->NearestNeighbors(p, 5);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i].box.DistanceTo(p), b[i].box.DistanceTo(p), 1e-9);
    }
  }
}

TEST_P(SpatialIndexConformance, InsertOutsideInitialExtentStillFound) {
  auto index = MakeIndex();
  for (int i = 0; i < 50; ++i) {
    index->Insert(BoundingBox::FromPoint({double(i), double(i)}), i);
  }
  // Far outside everything inserted so far (exercises the grid
  // backend's extent-growth path).
  index->Insert(BoundingBox::FromPoint({1e5, -1e5}), 999);
  auto hits = index->QueryPoint({1e5, -1e5});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 999);
  auto nn = index->NearestNeighbors({1e5, -1e5}, 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].value, 999);
  EXPECT_TRUE(index->Bounds().Contains({1e5, -1e5}));
}

TEST_P(SpatialIndexConformance, DuplicateBoxesAllRetrievable) {
  auto index = MakeIndex();
  BoundingBox b({5, 5}, {6, 6});
  for (int i = 0; i < 50; ++i) index->Insert(b, i);
  EXPECT_EQ(index->Query(b).size(), 50u);
}

INSTANTIATE_TEST_SUITE_P(Backends, SpatialIndexConformance,
                         ::testing::Values(IndexBackend::kRStarTree,
                                           IndexBackend::kUniformGrid),
                         [](const auto& info) {
                           return std::string(IndexBackendName(info.param));
                         });

// The two backends must agree with each other, not just with brute
// force — the repositories treat them as interchangeable.
TEST(SpatialIndexCrossBackend, BackendsAgreeOnRandomWorkload) {
  common::Rng rng(29);
  SpatialIndexConfig rstar_config;
  rstar_config.backend = IndexBackend::kRStarTree;
  SpatialIndexConfig grid_config;
  grid_config.backend = IndexBackend::kUniformGrid;
  auto rstar = MakeSpatialIndex<int>(rstar_config);
  auto grid = MakeSpatialIndex<int>(grid_config);
  for (int i = 0; i < 1500; ++i) {
    BoundingBox b = RandomBox(rng, 800.0, 15.0);
    rstar->Insert(b, i);
    grid->Insert(b, i);
  }
  for (int q = 0; q < 50; ++q) {
    BoundingBox query = RandomBox(rng, 800.0, 60.0);
    std::vector<int> a = rstar->Query(query);
    std::vector<int> b = grid->Query(query);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
  for (int q = 0; q < 25; ++q) {
    Point p{rng.Uniform(0.0, 800.0), rng.Uniform(0.0, 800.0)};
    double radius = rng.Uniform(5.0, 80.0);
    std::vector<int> a = rstar->QueryRadius(p, radius);
    std::vector<int> b = grid->QueryRadius(p, radius);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    auto na = rstar->NearestNeighbors(p, 7);
    auto nb = grid->NearestNeighbors(p, 7);
    ASSERT_EQ(na.size(), nb.size());
    for (size_t i = 0; i < na.size(); ++i) {
      EXPECT_NEAR(na[i].box.DistanceTo(p), nb[i].box.DistanceTo(p), 1e-9);
    }
  }
}

}  // namespace
}  // namespace semitri::index
