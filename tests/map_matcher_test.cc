// Tests for the global map matcher (Algorithm 2): localScore/globalScore
// behaviour, robustness on parallel roads and at crossings, superiority
// over the geometric point-to-curve baseline, accuracy on a simulated
// ground-truth drive.

#include "road/map_matcher.h"

#include <gtest/gtest.h>

#include "traj/point_batch.h"

#include "common/rng.h"
#include "datagen/movement.h"
#include "datagen/presets.h"
#include "datagen/world.h"

namespace semitri::road {
namespace {

using geo::Point;

// Adapts AoS test fixtures to the SoA data plane.
traj::PointBatch Batch(const std::vector<core::GpsPoint>& points) {
  traj::PointBatch batch;
  batch.BuildFrom(points);
  return batch;
}

// A long straight street with a parallel street 20 m away.
RoadNetwork ParallelStreets() {
  RoadNetwork net;
  NodeId a0 = net.AddNode({0, 0});
  NodeId a1 = net.AddNode({500, 0});
  NodeId a2 = net.AddNode({1000, 0});
  NodeId b0 = net.AddNode({0, 20});
  NodeId b1 = net.AddNode({500, 20});
  NodeId b2 = net.AddNode({1000, 20});
  net.AddSegment(a0, a1, RoadType::kArterial, "main-1");   // 0
  net.AddSegment(a1, a2, RoadType::kArterial, "main-2");   // 1
  net.AddSegment(b0, b1, RoadType::kResidential, "par-1");  // 2
  net.AddSegment(b1, b2, RoadType::kResidential, "par-2");  // 3
  return net;
}

std::vector<core::GpsPoint> DriveAlongY(double y, double noise_sigma,
                                        uint64_t seed, double speed = 10.0) {
  common::Rng rng(seed);
  std::vector<core::GpsPoint> points;
  for (int i = 0; i * speed < 1000.0; ++i) {
    points.push_back({{i * speed + rng.Gaussian(0, noise_sigma),
                       y + rng.Gaussian(0, noise_sigma)},
                      static_cast<double>(i)});
  }
  return points;
}

TEST(GlobalMapMatcherTest, CleanTraceMatchesPerfectly) {
  RoadNetwork net = ParallelStreets();
  GlobalMapMatcher matcher(&net);
  auto points = DriveAlongY(0.0, 0.0, 1);
  auto matches = matcher.MatchPoints(Batch(points).View());
  for (size_t i = 0; i < matches.size(); ++i) {
    double x = points[i].position.x;
    core::PlaceId expected = x <= 500.0 ? 0 : 1;
    // Points exactly at the junction may match either main segment.
    if (std::abs(x - 500.0) < 1.0) continue;
    EXPECT_EQ(matches[i].segment, expected) << "i=" << i;
  }
}

TEST(GlobalMapMatcherTest, NoisyTraceStaysOnCorrectParallelRoad) {
  RoadNetwork net = ParallelStreets();
  GlobalMatchConfig config;
  config.view_radius = 3.0;
  config.sigma_ratio = 1.0;
  GlobalMapMatcher matcher(&net, config);
  // Drive on the main road (y=0) with 6 m noise: individual points may
  // be closer to the parallel road, but context should keep the match.
  auto points = DriveAlongY(0.0, 6.0, 7);
  auto matches = matcher.MatchPoints(Batch(points).View());
  size_t on_main = 0;
  for (const auto& m : matches) {
    if (m.segment == 0 || m.segment == 1) ++on_main;
  }
  EXPECT_GT(static_cast<double>(on_main) / matches.size(), 0.9);
}

TEST(GlobalMapMatcherTest, BeatsGeometricBaselineUnderNoise) {
  RoadNetwork net = ParallelStreets();
  GlobalMapMatcher global(&net);
  GeometricMapMatcher baseline(&net);
  // Heavy noise biased toward the parallel street.
  common::Rng rng(11);
  std::vector<core::GpsPoint> points;
  std::vector<core::PlaceId> truth;
  for (int i = 0; i * 10.0 < 1000.0; ++i) {
    double x = i * 10.0;
    points.push_back({{x + rng.Gaussian(0, 5.0),
                       rng.Gaussian(0, 5.0) + 6.0},  // bias toward y=20? no: +6
                      static_cast<double>(i)});
    truth.push_back(x <= 500.0 ? 0 : 1);
  }
  traj::PointBatch batch = Batch(points);
  double acc_global = MatchingAccuracy(global.MatchPoints(batch.View()), truth);
  double acc_baseline =
      MatchingAccuracy(baseline.MatchPoints(batch.View()), truth);
  EXPECT_GE(acc_global, acc_baseline);
}

TEST(GlobalMapMatcherTest, PointsFarFromAnyRoadUnmatched) {
  RoadNetwork net = ParallelStreets();
  GlobalMapMatcher matcher(&net);
  std::vector<core::GpsPoint> points = {{{5000, 5000}, 0.0}};
  auto matches = matcher.MatchPoints(Batch(points).View());
  EXPECT_EQ(matches[0].segment, core::kInvalidPlaceId);
  EXPECT_EQ(matches[0].snapped, Point(5000, 5000));
}

TEST(GlobalMapMatcherTest, SnappedPositionLiesOnMatchedSegment) {
  RoadNetwork net = ParallelStreets();
  GlobalMapMatcher matcher(&net);
  auto points = DriveAlongY(2.0, 1.0, 13);
  auto matches = matcher.MatchPoints(Batch(points).View());
  for (const auto& m : matches) {
    if (m.segment == core::kInvalidPlaceId) continue;
    EXPECT_LT(net.segment(m.segment).shape.DistanceTo(m.snapped), 1e-9);
  }
}

TEST(GlobalMapMatcherTest, MedianSpacing) {
  std::vector<core::GpsPoint> points = {
      {{0, 0}, 0}, {{10, 0}, 1}, {{20, 0}, 2}, {{35, 0}, 3}};
  EXPECT_DOUBLE_EQ(GlobalMapMatcher::MedianSpacing(Batch(points).View()),
                   10.0);
  std::vector<core::GpsPoint> single = {{{0, 0}, 0}};
  EXPECT_DOUBLE_EQ(GlobalMapMatcher::MedianSpacing(Batch(single).View()),
                   1.0);
}

TEST(GlobalMapMatcherTest, EmptyInput) {
  RoadNetwork net = ParallelStreets();
  GlobalMapMatcher matcher(&net);
  EXPECT_TRUE(matcher.MatchPoints(traj::PointView{}).empty());
}

TEST(MatchingAccuracyTest, SkipsInvalidTruth) {
  std::vector<MatchedPoint> matches(4);
  matches[0].segment = 1;
  matches[1].segment = 2;
  matches[2].segment = 3;
  matches[3].segment = 4;
  std::vector<core::PlaceId> truth = {1, core::kInvalidPlaceId, 99, 4};
  EXPECT_DOUBLE_EQ(MatchingAccuracy(matches, truth), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(MatchingAccuracy({}, {}), 0.0);
}

// End-to-end: accuracy on a simulated ground-truth drive through the
// synthetic city must be high at the paper's tuned parameters (Fig. 10
// reports ~95 % at R=2, σ=0.5R on Krumm's benchmark).
TEST(GlobalMapMatcherTest, HighAccuracyOnSimulatedDrive) {
  datagen::WorldConfig wc;
  wc.seed = 17;
  wc.extent_meters = 4000.0;
  wc.num_pois = 200;
  datagen::World world = datagen::WorldGenerator(wc).Generate();
  datagen::DatasetFactory factory(&world, 23);
  datagen::Dataset drive = factory.SeattleDrive(/*hours=*/0.5);
  ASSERT_FALSE(drive.tracks.empty());
  const datagen::SimulatedTrack& track = drive.tracks[0];
  ASSERT_GT(track.points.size(), 300u);

  GlobalMatchConfig config;
  config.view_radius = 2.0;
  config.sigma_ratio = 0.5;
  GlobalMapMatcher matcher(&world.roads, config);
  auto matches = matcher.MatchPoints(Batch(track.points).View());
  std::vector<core::PlaceId> truth;
  for (const auto& s : track.truth) truth.push_back(s.segment);
  double accuracy = MatchingAccuracy(matches, truth);
  EXPECT_GT(accuracy, 0.85);
}

}  // namespace
}  // namespace semitri::road
