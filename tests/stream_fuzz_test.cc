// Streaming-vs-offline equivalence fuzzing: adversarial synthetic
// streams (random gaps across the split threshold, duplicated
// timestamps, outlier jumps, out-of-order fixes) across both stop
// policies and several cleaning configurations must drain through
// stream::EpisodeDetector into exactly the trajectories the offline
// identify -> clean -> segment pipeline produces on the accepted
// subsequence.

#include "stream/episode_detector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datagen/presets.h"
#include "datagen/world.h"
#include "traj/identification.h"
#include "traj/preprocess.h"
#include "traj/segmentation.h"

namespace semitri::stream {
namespace {

struct OfflineReference {
  std::vector<core::RawTrajectory> cleaned;
  std::vector<std::vector<core::Episode>> episodes;
};

OfflineReference OfflineCompute(core::ObjectId object_id,
                                const std::vector<core::GpsPoint>& stream,
                                const EpisodeDetectorConfig& config) {
  traj::TrajectoryIdentifier identifier(config.identification);
  traj::Preprocessor preprocessor(config.preprocess);
  traj::StopMoveSegmenter segmenter(config.segmentation);
  OfflineReference ref;
  for (const core::RawTrajectory& raw :
       identifier.Identify(object_id, stream, 0)) {
    core::RawTrajectory cleaned = preprocessor.Clean(raw);
    ref.episodes.push_back(segmenter.Segment(cleaned));
    ref.cleaned.push_back(std::move(cleaned));
  }
  return ref;
}

// Feeds `stream` (which may contain out-of-order fixes) and returns the
// closed trajectories plus the subsequence the detector accepted.
struct DrainResult {
  std::vector<ClosedTrajectory> closed;
  std::vector<core::GpsPoint> accepted;
};

DrainResult Drain(core::ObjectId object_id,
                  const std::vector<core::GpsPoint>& stream,
                  const EpisodeDetectorConfig& config) {
  EpisodeDetector detector(object_id, config);
  DrainResult out;
  DetectorEvents events;
  for (const core::GpsPoint& fix : stream) {
    detector.Feed(fix, &events);
    if (events.accepted) out.accepted.push_back(fix);
    if (events.closed_trajectory.has_value()) {
      out.closed.push_back(std::move(*events.closed_trajectory));
    }
  }
  detector.Close(&events);
  if (events.closed_trajectory.has_value()) {
    out.closed.push_back(std::move(*events.closed_trajectory));
  }
  return out;
}

void ExpectEquivalent(core::ObjectId object_id,
                      const std::vector<core::GpsPoint>& stream,
                      const EpisodeDetectorConfig& config,
                      const std::string& trace) {
  SCOPED_TRACE(trace);
  DrainResult drained = Drain(object_id, stream, config);
  // Offline reference runs on the fixes the detector accepted: the
  // offline Identify contract assumes a time-ordered stream, and the
  // detector enforces it by rejection.
  OfflineReference ref = OfflineCompute(object_id, drained.accepted, config);
  ASSERT_EQ(drained.closed.size(), ref.cleaned.size());
  for (size_t t = 0; t < ref.cleaned.size(); ++t) {
    ASSERT_EQ(drained.closed[t].cleaned, ref.cleaned[t])
        << "cleaned mismatch, trajectory " << t;
    ASSERT_EQ(drained.closed[t].episodes, ref.episodes[t])
        << "episodes mismatch, trajectory " << t;
  }
}

// An adversarial stream: alternating dwell clusters and moves, with
// occasional duplicate timestamps, teleport jumps (outlier fodder),
// long gaps straddling the split threshold, and out-of-order fixes.
std::vector<core::GpsPoint> MakeAdversarialStream(uint64_t seed,
                                                  size_t num_phases) {
  common::Rng rng(seed);
  std::vector<core::GpsPoint> stream;
  double t = rng.Uniform(0.0, 3600.0);
  geo::Point pos{rng.Uniform(-500.0, 500.0), rng.Uniform(-500.0, 500.0)};
  for (size_t phase = 0; phase < num_phases; ++phase) {
    bool dwell = rng.Bernoulli(0.5);
    int n = static_cast<int>(rng.UniformInt(5, 60));
    for (int i = 0; i < n; ++i) {
      double dt = rng.Uniform(1.0, 30.0);
      if (rng.Bernoulli(0.03)) dt = 0.0;  // duplicated timestamp
      if (rng.Bernoulli(0.01)) {
        // Gap near the 30 min split threshold, either side of it.
        dt = rng.Uniform(1500.0, 2100.0);
      }
      t += dt;
      if (dwell) {
        pos = pos + geo::Point{rng.Gaussian(0.0, 4.0), rng.Gaussian(0.0, 4.0)};
      } else {
        double speed = rng.Uniform(2.0, 20.0);
        double heading = rng.Uniform(0.0, 6.28318);
        pos = pos + geo::Point{std::cos(heading), std::sin(heading)} *
                        (speed * std::max(dt, 1.0));
      }
      core::GpsPoint fix{pos, t};
      if (rng.Bernoulli(0.02)) {
        fix.time = t - rng.Uniform(1.0, 500.0);  // out of order: rejected
      }
      if (rng.Bernoulli(0.01)) {
        // Teleport: implied speed far above the outlier gate.
        fix.position = fix.position + geo::Point{1.0e5, -1.0e5};
      }
      stream.push_back(fix);
    }
  }
  return stream;
}

TEST(StreamFuzzTest, AdversarialStreamsBothPolicies) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    std::vector<core::GpsPoint> stream = MakeAdversarialStream(seed, 40);
    EpisodeDetectorConfig velocity;
    ExpectEquivalent(static_cast<core::ObjectId>(seed), stream, velocity,
                     "velocity seed " + std::to_string(seed));
    EpisodeDetectorConfig density;
    density.segmentation.policy = traj::StopPolicy::kDensity;
    ExpectEquivalent(static_cast<core::ObjectId>(seed), stream, density,
                     "density seed " + std::to_string(seed));
  }
}

TEST(StreamFuzzTest, ConfigMatrix) {
  // Degenerate and shifted knobs: smoothing off, tiny smoothing window,
  // instantaneous speeds, spatial-gap splitting, markers on, aggressive
  // dwell thresholds.
  std::vector<EpisodeDetectorConfig> configs;
  {
    EpisodeDetectorConfig c;
    c.preprocess.smoothing_bandwidth_seconds = 0.0;
    configs.push_back(c);
  }
  {
    EpisodeDetectorConfig c;
    c.preprocess.smoothing_half_window = 1;
    c.segmentation.speed_smoothing_half_window = 0;
    configs.push_back(c);
  }
  {
    EpisodeDetectorConfig c;
    c.identification.max_spatial_gap_meters = 5000.0;
    c.preprocess.max_speed_mps = 0.0;  // outlier gate off
    c.segmentation.emit_begin_end = true;
    configs.push_back(c);
  }
  {
    EpisodeDetectorConfig c;
    c.segmentation.min_stop_duration_seconds = 30.0;
    c.segmentation.min_move_duration_seconds = 120.0;
    c.segmentation.min_move_displacement_meters = 120.0;
    configs.push_back(c);
  }
  {
    EpisodeDetectorConfig c;
    c.segmentation.policy = traj::StopPolicy::kDensity;
    c.segmentation.density_radius_meters = 20.0;
    c.segmentation.emit_begin_end = true;
    configs.push_back(c);
  }
  for (size_t ci = 0; ci < configs.size(); ++ci) {
    for (uint64_t seed = 100; seed < 104; ++seed) {
      std::vector<core::GpsPoint> stream = MakeAdversarialStream(seed, 30);
      ExpectEquivalent(7, stream, configs[ci],
                       "config " + std::to_string(ci) + " seed " +
                           std::to_string(seed));
    }
  }
}

TEST(StreamFuzzTest, DatasetPresetSweep) {
  datagen::WorldConfig wc;
  wc.seed = 77;
  wc.extent_meters = 4000.0;
  wc.num_pois = 600;
  datagen::World world = datagen::WorldGenerator(wc).Generate();
  datagen::DatasetFactory factory(&world, 91);

  std::vector<datagen::Dataset> datasets;
  datasets.push_back(factory.LausanneTaxis(1, 2));
  datasets.push_back(factory.MilanPrivateCars(2, 2));
  datasets.push_back(factory.SeattleDrive(0.5));
  datasets.push_back(factory.NokiaPeople(2, 2));

  for (const datagen::Dataset& dataset : datasets) {
    for (const datagen::SimulatedTrack& track : dataset.tracks) {
      EpisodeDetectorConfig velocity;
      ExpectEquivalent(track.object_id, track.points, velocity,
                       dataset.name + " velocity object " +
                           std::to_string(track.object_id));
      EpisodeDetectorConfig density;
      density.segmentation.policy = traj::StopPolicy::kDensity;
      ExpectEquivalent(track.object_id, track.points, density,
                       dataset.name + " density object " +
                           std::to_string(track.object_id));
    }
  }
}

}  // namespace
}  // namespace semitri::stream
