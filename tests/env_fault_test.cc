// Disk-fault resilience harness for the common::Env plumbing.
//
// The storage-fault contract under test: a disk fault injected at ANY
// Env operation — open, append, sync, rename, ... — leaves the store
// either fully recovered (ContentEquals a clean run, after reopening
// the directory through a healthy Env) or loudly in read-only degraded
// mode with the fault surfaced; never silently acknowledging writes
// the disk may not hold.
//
// Three groups:
//  - always-on tests driving a hand-rolled FlakyEnv: WAL-writer
//    poisoning, read-only degraded entry/exit, health surfacing;
//  - always-on WalShipper hygiene tests (tmp-orphan sweep);
//  - the fault-at-every-Env-site sweep, which needs the injector hooks
//    compiled in and skips itself unless SEMITRI_FAULT_INJECTION=ON.
//    Like tests/recovery_test.cc it discovers the "env:" sites
//    dynamically (FaultFs registers them on first fire), so a new Env
//    operation is covered automatically, and it closes the loop
//    against the checked-in registry in common/fault_sites.h.

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/fault_fs.h"
#include "common/fault_injection.h"
#include "common/fault_sites.h"
#include "core/health.h"
#include "shard/wal_shipper.h"
#include "store/semantic_trajectory_store.h"
#include "store/wal.h"

namespace semitri {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// FlakyEnv: an always-compiled failing-disk decorator. Unlike FaultFs
// (whose faults fire through the injector and vanish in production
// builds) this one fails unconditionally while a flag is set, so the
// poisoning / degraded-mode contracts are exercised in every build.
// ---------------------------------------------------------------------

class FlakyEnv;

class FlakyFile final : public common::WritableFile {
 public:
  FlakyFile(FlakyEnv* env, std::unique_ptr<common::WritableFile> base)
      : env_(env), base_(std::move(base)) {}
  common::Status Append(std::string_view data) override;
  common::Status Sync() override;
  common::Status Truncate(uint64_t size) override {
    return base_->Truncate(size);
  }
  common::Status Close() override { return base_->Close(); }

 private:
  FlakyEnv* const env_;
  const std::unique_ptr<common::WritableFile> base_;
};

class FlakyEnv final : public common::Env {
 public:
  FlakyEnv() : base_(common::Env::Default()) {}

  bool fail_appends = false;
  bool fail_syncs = false;

  common::Result<std::unique_ptr<common::WritableFile>> NewWritableFile(
      const std::string& path, common::WriteMode mode) override {
    auto base = base_->NewWritableFile(path, mode);
    if (!base.ok()) return base.status();
    return std::unique_ptr<common::WritableFile>(
        new FlakyFile(this, std::move(*base)));
  }
  common::Status ReadFileToString(const std::string& path,
                                  std::string* out) override {
    return base_->ReadFileToString(path, out);
  }
  common::Status WriteStringToFile(const std::string& path,
                                   std::string_view data, bool sync) override {
    if (fail_appends) {
      return common::Status::IoError("flaky: write failed on " + path);
    }
    return base_->WriteStringToFile(path, data, sync);
  }
  common::Status RenameFile(const std::string& from,
                            const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  common::Status SyncDir(const std::string& dir) override {
    return base_->SyncDir(dir);
  }
  common::Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  common::Status CreateDirs(const std::string& dir) override {
    return base_->CreateDirs(dir);
  }
  common::Status RemoveDirRecursive(const std::string& dir) override {
    return base_->RemoveDirRecursive(dir);
  }
  common::Result<std::vector<std::string>> ListDir(
      const std::string& dir) override {
    return base_->ListDir(dir);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  bool IsDirectory(const std::string& path) override {
    return base_->IsDirectory(path);
  }
  common::Result<uint64_t> FileSize(const std::string& path) override {
    return base_->FileSize(path);
  }
  common::Status TruncateFile(const std::string& path,
                              uint64_t size) override {
    return base_->TruncateFile(path, size);
  }

 private:
  common::Env* const base_;
};

common::Status FlakyFile::Append(std::string_view data) {
  if (env_->fail_appends) {
    return common::Status::IoError("flaky: injected append failure (ENOSPC)");
  }
  return base_->Append(data);
}

common::Status FlakyFile::Sync() {
  if (env_->fail_syncs) {
    return common::Status::IoError("flaky: injected fsync failure");
  }
  return base_->Sync();
}

// ---------------------------------------------------------------------
// Workload: direct store puts with a checkpoint, a segment seal, and
// periodic syncs folded in, so one pass crosses every Env operation
// the store can issue. Every Put is a keyed overwrite, so re-running
// the workload after a recovery converges.
// ---------------------------------------------------------------------

core::RawTrajectory MakeTrajectory(core::TrajectoryId id,
                                   core::ObjectId object, int n) {
  core::RawTrajectory t;
  t.id = id;
  t.object_id = object;
  for (int i = 0; i < n; ++i) {
    t.points.push_back({{i * 2.0 + id, i * 3.0}, i * 10.0});
  }
  return t;
}

std::vector<core::Episode> MakeEpisodes(const core::RawTrajectory& t) {
  core::Episode stop;
  stop.kind = core::EpisodeKind::kStop;
  stop.begin = 0;
  stop.end = t.size() / 2;
  stop.time_in = 0;
  stop.time_out = 40;
  stop.center = {1, 1};
  stop.bounds = geo::BoundingBox({0, 0}, {2, 2});
  core::Episode move = stop;
  move.kind = core::EpisodeKind::kMove;
  move.begin = t.size() / 2;
  move.end = t.size();
  return {stop, move};
}

core::StructuredSemanticTrajectory MakeInterpretation(
    core::TrajectoryId id, const std::string& name) {
  core::StructuredSemanticTrajectory t;
  t.trajectory_id = id;
  t.object_id = 9;
  t.interpretation = name;
  core::SemanticEpisode ep;
  ep.kind = core::EpisodeKind::kStop;
  ep.place = {core::PlaceKind::kRegion, 42};
  ep.time_in = 5;
  ep.time_out = 15;
  ep.AddAnnotation("poi_category", "restaurant");
  t.episodes.push_back(ep);
  return t;
}

common::Status RunStoreWorkload(store::SemanticTrajectoryStore* s) {
  for (int i = 0; i < 12; ++i) {
    core::RawTrajectory t =
        MakeTrajectory(static_cast<core::TrajectoryId>(i), 9, 6 + i % 3);
    SEMITRI_RETURN_IF_ERROR(s->PutRawTrajectory(t));
    SEMITRI_RETURN_IF_ERROR(s->PutEpisodes(t.id, MakeEpisodes(t)));
    SEMITRI_RETURN_IF_ERROR(
        s->PutInterpretation(MakeInterpretation(t.id, "region")));
    if (i == 4) SEMITRI_RETURN_IF_ERROR(s->Checkpoint());
    if (i == 7) {
      auto sealed = s->SealWalSegment();
      if (!sealed.ok()) return sealed.status();
    }
    if (i % 3 == 0) SEMITRI_RETURN_IF_ERROR(s->Sync());
  }
  return s->Sync();
}

std::string TempDir(const std::string& name) {
  std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------
// WAL-writer poisoning (satellite: fsyncgate discipline) — every build.
// ---------------------------------------------------------------------

TEST(WalPoisonTest, FailedSyncPoisonsTheWriterForGood) {
  std::string dir = TempDir("semitri_wal_poison_sync");
  ASSERT_TRUE(common::Env::Default()->CreateDirs(dir).ok());
  FlakyEnv env;
  auto opened = store::WalWriter::Open(dir + "/wal.log", &env);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<store::WalWriter> wal = std::move(*opened);

  ASSERT_TRUE(wal->Append(store::WalRecordType::kPutRawTrajectory, "a").ok());
  env.fail_syncs = true;
  EXPECT_FALSE(wal->Sync().ok());
  EXPECT_TRUE(wal->poisoned());

  // The disk "recovers" — but the dropped dirty pages do not. A Sync
  // retry succeeding here would be the fsyncgate durability lie, so
  // every later operation keeps failing and names the original cause.
  env.fail_syncs = false;
  common::Status retry = wal->Sync();
  EXPECT_FALSE(retry.ok());
  EXPECT_NE(retry.message().find("poisoned"), std::string::npos);
  EXPECT_NE(retry.message().find("fsync"), std::string::npos);
  EXPECT_FALSE(
      wal->Append(store::WalRecordType::kPutRawTrajectory, "b").ok());
  fs::remove_all(dir);
}

TEST(WalPoisonTest, FailedAppendPoisonsTheWriterForGood) {
  std::string dir = TempDir("semitri_wal_poison_append");
  ASSERT_TRUE(common::Env::Default()->CreateDirs(dir).ok());
  FlakyEnv env;
  auto opened = store::WalWriter::Open(dir + "/wal.log", &env);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<store::WalWriter> wal = std::move(*opened);

  env.fail_appends = true;
  EXPECT_FALSE(
      wal->Append(store::WalRecordType::kPutRawTrajectory, "a").ok());
  EXPECT_TRUE(wal->poisoned());
  env.fail_appends = false;
  common::Status retry =
      wal->Append(store::WalRecordType::kPutRawTrajectory, "b");
  EXPECT_FALSE(retry.ok());
  EXPECT_NE(retry.message().find("poisoned"), std::string::npos);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Read-only degraded mode — every build.
// ---------------------------------------------------------------------

TEST(DegradedModeTest, WalFailureFlipsStoreReadOnlyAndExitRecovers) {
  std::string dir = TempDir("semitri_degraded_rw");
  FlakyEnv env;
  store::StoreConfig config;
  config.durable_dir = dir;
  config.env = &env;
  store::SemanticTrajectoryStore durable(config);

  core::RawTrajectory first = MakeTrajectory(1, 9, 6);
  ASSERT_TRUE(durable.PutRawTrajectory(first).ok());
  ASSERT_TRUE(durable.Sync().ok());

  // The disk goes bad: the Put fails and the store flips read-only.
  env.fail_appends = true;
  EXPECT_FALSE(durable.PutRawTrajectory(MakeTrajectory(2, 9, 6)).ok());
  EXPECT_TRUE(durable.storage_degraded());
  EXPECT_FALSE(durable.degraded_reason().empty());

  // Reads keep serving already-durable data...
  auto got = durable.GetRawTrajectory(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->points.size(), first.points.size());

  // ...while every write-path call refuses loudly, whatever the disk
  // does now: accepting a write it may not hold would be a lie.
  env.fail_appends = false;
  common::Status put = durable.PutRawTrajectory(MakeTrajectory(3, 9, 6));
  ASSERT_FALSE(put.ok());
  EXPECT_EQ(put.code(), common::StatusCode::kUnavailable);
  EXPECT_NE(put.message().find("read-only degraded"), std::string::npos);
  EXPECT_FALSE(durable.Sync().ok());
  EXPECT_FALSE(durable.Checkpoint().ok());
  EXPECT_FALSE(durable.SealWalSegment().ok());

  // Explicit operator action rotates the log and re-probes the disk;
  // with the disk healthy again, writes resume and recovery round-trips.
  ASSERT_TRUE(durable.ExitDegradedMode().ok());
  EXPECT_FALSE(durable.storage_degraded());
  EXPECT_TRUE(durable.degraded_reason().empty());
  ASSERT_TRUE(durable.PutRawTrajectory(MakeTrajectory(4, 9, 6)).ok());
  ASSERT_TRUE(durable.Sync().ok());

  store::SemanticTrajectoryStore recovered;
  auto stats = recovered.Recover(dir);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(recovered.ContentEquals(durable));
  fs::remove_all(dir);
}

TEST(DegradedModeTest, ExitStaysDegradedWhileTheDiskIsStillBad) {
  std::string dir = TempDir("semitri_degraded_stuck");
  FlakyEnv env;
  store::StoreConfig config;
  config.durable_dir = dir;
  config.env = &env;
  store::SemanticTrajectoryStore durable(config);
  ASSERT_TRUE(durable.PutRawTrajectory(MakeTrajectory(1, 9, 6)).ok());

  env.fail_appends = true;
  EXPECT_FALSE(durable.PutRawTrajectory(MakeTrajectory(2, 9, 6)).ok());
  ASSERT_TRUE(durable.storage_degraded());

  // The rotation probe fsyncs the fresh writer; a still-bad disk fails
  // the probe and the store must stay read-only.
  env.fail_appends = false;
  env.fail_syncs = true;
  EXPECT_FALSE(durable.ExitDegradedMode().ok());
  EXPECT_TRUE(durable.storage_degraded());

  env.fail_syncs = false;
  EXPECT_TRUE(durable.ExitDegradedMode().ok());
  EXPECT_FALSE(durable.storage_degraded());
  fs::remove_all(dir);
}

TEST(DegradedModeTest, HealthSnapshotSurfacesStorageAndScrubState) {
  core::HealthSnapshot snapshot;
  EXPECT_FALSE(snapshot.degraded());

  snapshot.storage_degraded = true;
  snapshot.storage_fault = "injected ENOSPC at env:append";
  EXPECT_TRUE(snapshot.degraded());
  std::string rendered = snapshot.ToString();
  EXPECT_NE(rendered.find("READ-ONLY"), std::string::npos);
  EXPECT_NE(rendered.find("injected ENOSPC"), std::string::npos);

  // A quarantined file is durably lost data: degraded even with the
  // write path healthy.
  core::HealthSnapshot quarantine;
  quarantine.scrub_quarantined = 1;
  EXPECT_TRUE(quarantine.degraded());

  core::HealthSnapshot shard_level;
  core::ShardHealth sick;
  sick.storage_degraded = true;
  sick.storage_fault = "wal append failed";
  shard_level.shards.push_back(sick);
  EXPECT_TRUE(shard_level.degraded());
  EXPECT_NE(shard_level.ToString().find("READ-ONLY"), std::string::npos);
}

// ---------------------------------------------------------------------
// WalShipper hygiene — every build.
// ---------------------------------------------------------------------

TEST(ShipperHygieneTest, OrphanedTmpFilesAreSweptOnFirstShipOnly) {
  std::string source = TempDir("semitri_ship_sweep_src");
  std::string standby = TempDir("semitri_ship_sweep_standby");
  common::Env* env = common::Env::Default();

  // A primary with one sealed segment to ship.
  {
    store::StoreConfig config;
    config.durable_dir = source;
    store::SemanticTrajectoryStore primary(config);
    ASSERT_TRUE(primary.PutRawTrajectory(MakeTrajectory(1, 9, 6)).ok());
    auto sealed = primary.SealWalSegment();
    ASSERT_TRUE(sealed.ok());
    ASSERT_FALSE(sealed->empty());
  }

  // The staging leftovers of a shipper that crashed mid-copy.
  ASSERT_TRUE(env->CreateDirs(standby).ok());
  ASSERT_TRUE(
      env->WriteStringToFile(standby + "/wal-000042.log.tmp", "torn", false)
          .ok());
  ASSERT_TRUE(
      env->WriteStringToFile(standby + "/mgr.ckpt.tmp", "torn", false).ok());

  shard::WalShipper shipper(source, standby);
  auto shipped = shipper.ShipSealedSegments();
  ASSERT_TRUE(shipped.ok()) << shipped.status().ToString();
  EXPECT_GE(shipped->segments_shipped, 1u);
  EXPECT_EQ(shipper.tmp_orphans_removed(), 2u);
  EXPECT_FALSE(env->FileExists(standby + "/wal-000042.log.tmp"));
  EXPECT_FALSE(env->FileExists(standby + "/mgr.ckpt.tmp"));

  // The sweep runs once per shipper lifetime: a tmp appearing later
  // (a concurrent shipper's live staging file) is not ours to reap.
  ASSERT_TRUE(
      env->WriteStringToFile(standby + "/later.tmp", "live", false).ok());
  ASSERT_TRUE(shipper.ShipSealedSegments().ok());
  EXPECT_EQ(shipper.tmp_orphans_removed(), 2u);
  EXPECT_TRUE(env->FileExists(standby + "/later.tmp"));

  fs::remove_all(source);
  fs::remove_all(standby);
}

// ---------------------------------------------------------------------
// Fault-at-every-Env-site sweep (SEMITRI_FAULT_INJECTION=ON only).
// ---------------------------------------------------------------------

class EnvFaultSweep : public ::testing::Test {
 protected:
  void SetUp() override { common::FaultInjector::Global().Reset(); }
  void TearDown() override { common::FaultInjector::Global().Reset(); }

  // The failure shapes worth sweeping per operation; every FaultKind
  // appears at least once at the operation it models.
  static std::vector<common::FaultKind> KindsFor(const std::string& site) {
    if (site == "env:append") {
      return {common::FaultKind::kEnospc, common::FaultKind::kShortWrite};
    }
    if (site == "env:sync" || site == "env:sync_dir") {
      return {common::FaultKind::kFsyncFail};
    }
    if (site == "env:rename") return {common::FaultKind::kTornRename};
    return {common::FaultKind::kEio};
  }
};

TEST_F(EnvFaultSweep, EveryEnvSiteFaultRecoversOrDegradesLoudly) {
  if (!common::FaultInjector::enabled()) {
    GTEST_SKIP() << "built without SEMITRI_FAULT_INJECTION";
  }
  common::FaultInjector& fi = common::FaultInjector::Global();

  store::SemanticTrajectoryStore reference;
  ASSERT_TRUE(RunStoreWorkload(&reference).ok());

  // Discovery: the durable workload through an enabled-but-unarmed
  // FaultFs registers every env: site it crosses, with hit counts.
  {
    std::string dir = TempDir("semitri_env_discover");
    common::FaultFs ffs(nullptr);
    store::StoreConfig config;
    config.durable_dir = dir;
    config.env = &ffs;
    store::SemanticTrajectoryStore durable(config);
    ASSERT_TRUE(RunStoreWorkload(&durable).ok());
    ASSERT_TRUE(durable.ContentEquals(reference));
    fs::remove_all(dir);
  }
  std::vector<std::string> env_sites;
  std::map<std::string, uint64_t> hits;
  for (const std::string& site : fi.Sites()) {
    if (site.rfind("env:", 0) != 0) continue;
    env_sites.push_back(site);
    hits[site] = fi.HitCount(site);
  }
  ASSERT_FALSE(env_sites.empty());
  // The headline operations of the durable write path must all have
  // registered — a refactor that stops routing one of them through Env
  // fails here, not silently.
  for (const char* expected :
       {"env:open", "env:append", "env:sync", "env:rename", "env:mkdir"}) {
    EXPECT_TRUE(std::find(env_sites.begin(), env_sites.end(), expected) !=
                env_sites.end())
        << "env site never fired: " << expected;
  }
  // Registry closure, mirroring recovery_test: every discovered env:
  // site must match an entry in common/fault_sites.h.
  for (const std::string& site : env_sites) {
    bool registered = false;
    for (const common::FaultSiteInfo& info : common::kFaultSites) {
      if (common::FaultSiteMatches(info, site.c_str())) {
        registered = true;
        break;
      }
    }
    EXPECT_TRUE(registered)
        << "fault site `" << site
        << "` is not in common/fault_sites.h — register it so the sweep "
           "and semitri_lint both know about it";
  }

  for (const std::string& site : env_sites) {
    std::vector<uint64_t> fire_points = {1};
    if (hits[site] / 2 > 1) fire_points.push_back(hits[site] / 2);
    for (uint64_t n : fire_points) {
      for (common::FaultKind kind : KindsFor(site)) {
        SCOPED_TRACE(site + " fault at hit " + std::to_string(n) + " kind " +
                     std::to_string(static_cast<int>(kind)));
        std::string dir = TempDir(
            "semitri_env_fault_" +
            std::to_string(std::hash<std::string>{}(
                site + std::to_string(n) +
                std::to_string(static_cast<int>(kind)))));
        fi.Reset();
        common::FaultFs ffs(nullptr);
        ffs.SetFaultKind(site, kind);
        fi.Arm(site, common::FaultPolicy::FailNth(n));
        {
          store::StoreConfig config;
          config.durable_dir = dir;
          config.env = &ffs;
          store::SemanticTrajectoryStore durable(config);
          common::Status faulted = RunStoreWorkload(&durable);
          if (faulted.ok()) {
            // The fault was absorbed (GC cleanup, best-effort dir
            // sync, ...). Absorption is only legal when nothing was
            // lost: the tables must match the clean run.
            EXPECT_TRUE(durable.ContentEquals(reference))
                << "fault at " << site << " was swallowed but the store "
                << "diverged — a silent durability lie";
          } else if (durable.storage_degraded()) {
            // Loud stance, part 1: reads still serve, writes refuse.
            EXPECT_FALSE(durable.degraded_reason().empty());
            common::Status put =
                durable.PutRawTrajectory(MakeTrajectory(900, 9, 4));
            ASSERT_FALSE(put.ok());
            EXPECT_EQ(put.code(), common::StatusCode::kUnavailable);
            // Reads stay up (possibly empty, if the fault hit before
            // the first Put landed).
            (void)durable.ListTrajectories();
          }
        }
        // "Reboot": the fault is gone, the directory is reopened
        // through a healthy Env, and the workload re-runs. Whatever
        // the fault tore — half-written frames, stranded tmp files,
        // an unflipped CURRENT — recovery must converge.
        fi.Reset();
        store::SemanticTrajectoryStore recovered;
        auto stats = recovered.Recover(dir);
        ASSERT_TRUE(stats.ok()) << stats.status().ToString();
        ASSERT_TRUE(RunStoreWorkload(&recovered).ok());
        EXPECT_TRUE(recovered.ContentEquals(reference))
            << "store diverged after fault at " << site << " hit " << n;
        fs::remove_all(dir);
      }
    }
  }
}

TEST_F(EnvFaultSweep, PersistentDiskFailureDegradesInsteadOfLying) {
  if (!common::FaultInjector::enabled()) {
    GTEST_SKIP() << "built without SEMITRI_FAULT_INJECTION";
  }
  common::FaultInjector& fi = common::FaultInjector::Global();
  std::string dir = TempDir("semitri_env_fault_always");
  common::FaultFs ffs(nullptr);
  ffs.SetFaultKind("env:append", common::FaultKind::kEnospc);
  store::StoreConfig config;
  config.durable_dir = dir;
  config.env = &ffs;
  store::SemanticTrajectoryStore durable(config);
  ASSERT_TRUE(durable.PutRawTrajectory(MakeTrajectory(1, 9, 6)).ok());
  ASSERT_TRUE(durable.Sync().ok());

  // The disk fills up and stays full: first failing Put degrades.
  fi.Arm("env:append", common::FaultPolicy::FailAlways());
  EXPECT_FALSE(durable.PutRawTrajectory(MakeTrajectory(2, 9, 6)).ok());
  EXPECT_TRUE(durable.storage_degraded());
  EXPECT_NE(durable.degraded_reason().find("ENOSPC"), std::string::npos);
  EXPECT_TRUE(durable.GetRawTrajectory(1).ok());

  // Space freed: one explicit rotation brings the store back.
  fi.Disarm("env:append");
  ASSERT_TRUE(durable.ExitDegradedMode().ok());
  ASSERT_TRUE(durable.PutRawTrajectory(MakeTrajectory(2, 9, 6)).ok());
  ASSERT_TRUE(durable.Sync().ok());
  store::SemanticTrajectoryStore recovered;
  ASSERT_TRUE(recovered.Recover(dir).ok());
  EXPECT_TRUE(recovered.ContentEquals(durable));
  fs::remove_all(dir);
}

TEST_F(EnvFaultSweep, FailedShipCleansItsTmpAndRetries) {
  if (!common::FaultInjector::enabled()) {
    GTEST_SKIP() << "built without SEMITRI_FAULT_INJECTION";
  }
  common::FaultInjector& fi = common::FaultInjector::Global();
  std::string source = TempDir("semitri_ship_tmp_src");
  std::string standby = TempDir("semitri_ship_tmp_standby");
  {
    store::StoreConfig config;
    config.durable_dir = source;
    store::SemanticTrajectoryStore primary(config);
    ASSERT_TRUE(primary.PutRawTrajectory(MakeTrajectory(1, 9, 6)).ok());
    ASSERT_TRUE(primary.SealWalSegment().ok());
  }

  // The copy's rename into place tears: the staged .tmp must not
  // survive as clutter the next ship trips over.
  common::FaultFs ffs(nullptr);
  ffs.SetFaultKind("env:rename", common::FaultKind::kTornRename);
  ffs.SetPathFilter(standby);
  shard::WalShipper shipper(source, standby, &ffs);
  fi.Arm("env:rename", common::FaultPolicy::FailOnce());
  EXPECT_FALSE(shipper.ShipSealedSegments().ok());
  fi.Disarm("env:rename");
  EXPECT_GE(shipper.tmp_orphans_removed(), 1u);
  auto leftover = common::Env::Default()->ListDir(standby);
  ASSERT_TRUE(leftover.ok());
  for (const std::string& name : *leftover) {
    EXPECT_EQ(name.find(".tmp"), std::string::npos)
        << "stranded staging file: " << name;
  }

  // The retry ships cleanly and the standby replays intact.
  auto shipped = shipper.ShipSealedSegments();
  ASSERT_TRUE(shipped.ok()) << shipped.status().ToString();
  EXPECT_GE(shipped->segments_shipped, 1u);
  store::SemanticTrajectoryStore standby_store;
  EXPECT_TRUE(standby_store.Recover(standby).ok());
  fs::remove_all(source);
  fs::remove_all(standby);
}

}  // namespace
}  // namespace semitri
