// Geometry substrate tests: points, boxes, segments (paper Eq. 1),
// polygons, polylines, WGS-84 projection.

#include <gtest/gtest.h>

#include "geo/box.h"
#include "geo/latlon.h"
#include "geo/point.h"
#include "geo/polygon.h"
#include "geo/polyline.h"
#include "geo/segment.h"

namespace semitri::geo {
namespace {

TEST(PointTest, Arithmetic) {
  Point a{3.0, 4.0};
  Point b{1.0, -2.0};
  EXPECT_EQ(a + b, Point(4.0, 2.0));
  EXPECT_EQ(a - b, Point(2.0, 6.0));
  EXPECT_EQ(a * 2.0, Point(6.0, 8.0));
  EXPECT_EQ(2.0 * a, Point(6.0, 8.0));
  EXPECT_EQ(a / 2.0, Point(1.5, 2.0));
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.Dot(b), 3.0 - 8.0);
  EXPECT_DOUBLE_EQ(a.Cross(b), -6.0 - 4.0);
  EXPECT_DOUBLE_EQ(a.DistanceTo(b), std::hypot(2.0, 6.0));
}

TEST(BoxTest, EmptyBoxSemantics) {
  BoundingBox box;
  EXPECT_TRUE(box.IsEmpty());
  EXPECT_DOUBLE_EQ(box.Area(), 0.0);
  EXPECT_FALSE(box.Intersects(BoundingBox({0, 0}, {1, 1})));
  box.ExpandToInclude(Point{2, 3});
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_EQ(box.min, Point(2, 3));
  EXPECT_EQ(box.max, Point(2, 3));
}

TEST(BoxTest, ContainsAndIntersects) {
  BoundingBox a({0, 0}, {10, 10});
  BoundingBox b({5, 5}, {15, 15});
  BoundingBox c({11, 11}, {12, 12});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Contains(Point{10, 10}));  // boundary inclusive
  EXPECT_FALSE(a.Contains(Point{10.01, 10}));
  EXPECT_TRUE(a.Contains(BoundingBox({1, 1}, {9, 9})));
  EXPECT_FALSE(a.Contains(b));
  // Touching boxes intersect.
  EXPECT_TRUE(a.Intersects(BoundingBox({10, 0}, {20, 10})));
}

TEST(BoxTest, OverlapAndEnlargement) {
  BoundingBox a({0, 0}, {10, 10});
  BoundingBox b({5, 5}, {15, 15});
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 25.0);
  EXPECT_DOUBLE_EQ(a.OverlapArea(BoundingBox({20, 20}, {30, 30})), 0.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 15.0 * 15.0 - 100.0);
  EXPECT_DOUBLE_EQ(a.Margin(), 20.0);
  EXPECT_EQ(a.Center(), Point(5, 5));
}

TEST(BoxTest, DistanceToPoint) {
  BoundingBox a({0, 0}, {10, 10});
  EXPECT_DOUBLE_EQ(a.DistanceTo(Point{5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(a.DistanceTo(Point{13, 5}), 3.0);
  EXPECT_DOUBLE_EQ(a.DistanceTo(Point{13, 14}), 5.0);
}

// Eq. 1 of the paper: perpendicular distance when the projection falls
// on the segment, nearest-endpoint distance otherwise.
TEST(SegmentTest, PointSegmentDistanceEq1) {
  Segment s({0, 0}, {10, 0});
  // Projection inside: perpendicular distance.
  EXPECT_DOUBLE_EQ(s.DistanceTo(Point{5, 3}), 3.0);
  // Projection beyond endpoints: endpoint distance (Eq. 1 second case).
  EXPECT_DOUBLE_EQ(s.DistanceTo(Point{-4, 3}), 5.0);
  EXPECT_DOUBLE_EQ(s.DistanceTo(Point{14, 3}), 5.0);
  // On the segment.
  EXPECT_DOUBLE_EQ(s.DistanceTo(Point{7, 0}), 0.0);
}

TEST(SegmentTest, ClosestPointAndParameter) {
  Segment s({0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(s.ClosestParameter(Point{5, 3}), 0.5);
  EXPECT_DOUBLE_EQ(s.ClosestParameter(Point{-100, 0}), 0.0);
  EXPECT_DOUBLE_EQ(s.ClosestParameter(Point{100, 0}), 1.0);
  EXPECT_EQ(s.ClosestPoint(Point{7, -2}), Point(7, 0));
  EXPECT_EQ(s.Interpolate(0.3), Point(3, 0));
}

TEST(SegmentTest, DegenerateSegment) {
  Segment s({5, 5}, {5, 5});
  EXPECT_DOUBLE_EQ(s.Length(), 0.0);
  EXPECT_DOUBLE_EQ(s.DistanceTo(Point{8, 9}), 5.0);
  EXPECT_EQ(s.ClosestPoint(Point{8, 9}), Point(5, 5));
}

TEST(PolygonTest, ContainsConvex) {
  Polygon square({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  EXPECT_TRUE(square.Contains(Point{5, 5}));
  EXPECT_FALSE(square.Contains(Point{15, 5}));
  EXPECT_FALSE(square.Contains(Point{-1, 5}));
  EXPECT_DOUBLE_EQ(square.Area(), 100.0);
}

TEST(PolygonTest, ContainsConcave) {
  // L-shaped polygon.
  Polygon ell({{0, 0}, {10, 0}, {10, 4}, {4, 4}, {4, 10}, {0, 10}});
  EXPECT_TRUE(ell.Contains(Point{2, 8}));
  EXPECT_TRUE(ell.Contains(Point{8, 2}));
  EXPECT_FALSE(ell.Contains(Point{8, 8}));  // the notch
  EXPECT_DOUBLE_EQ(ell.Area(), 100.0 - 36.0);
}

TEST(PolygonTest, SignedAreaOrientation) {
  Polygon ccw({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  Polygon cw({{0, 0}, {0, 4}, {4, 4}, {4, 0}});
  EXPECT_GT(ccw.SignedArea(), 0.0);
  EXPECT_LT(cw.SignedArea(), 0.0);
  EXPECT_DOUBLE_EQ(ccw.Area(), cw.Area());
}

TEST(PolygonTest, FromBoxAndBounds) {
  BoundingBox box({1, 2}, {5, 7});
  Polygon p = Polygon::FromBox(box);
  EXPECT_EQ(p.size(), 4u);
  BoundingBox back = p.Bounds();
  EXPECT_EQ(back.min, box.min);
  EXPECT_EQ(back.max, box.max);
  EXPECT_TRUE(p.Contains(Point{3, 5}));
}

TEST(PolylineTest, LengthAndArcInterpolation) {
  Polyline line({{0, 0}, {10, 0}, {10, 10}});
  EXPECT_DOUBLE_EQ(line.Length(), 20.0);
  EXPECT_EQ(line.AtArcLength(0.0), Point(0, 0));
  EXPECT_EQ(line.AtArcLength(5.0), Point(5, 0));
  EXPECT_EQ(line.AtArcLength(15.0), Point(10, 5));
  EXPECT_EQ(line.AtArcLength(100.0), Point(10, 10));
}

TEST(PolylineTest, DistanceToNearestSegment) {
  Polyline line({{0, 0}, {10, 0}, {10, 10}});
  EXPECT_DOUBLE_EQ(line.DistanceTo(Point{5, 2}), 2.0);
  EXPECT_DOUBLE_EQ(line.DistanceTo(Point{12, 5}), 2.0);
}

TEST(LatLonTest, HaversineKnownDistance) {
  // One degree of latitude is ~111.2 km.
  LatLon a{46.5, 6.6};
  LatLon b{47.5, 6.6};
  EXPECT_NEAR(HaversineDistance(a, b), 111195.0, 200.0);
  EXPECT_DOUBLE_EQ(HaversineDistance(a, a), 0.0);
}

TEST(LatLonTest, ProjectionRoundTrip) {
  LocalProjection proj({46.52, 6.63});  // Lausanne
  for (double dlat = -0.05; dlat <= 0.05; dlat += 0.025) {
    for (double dlon = -0.05; dlon <= 0.05; dlon += 0.025) {
      LatLon ll{46.52 + dlat, 6.63 + dlon};
      LatLon back = proj.ToLatLon(proj.ToLocal(ll));
      EXPECT_NEAR(back.lat, ll.lat, 1e-9);
      EXPECT_NEAR(back.lon, ll.lon, 1e-9);
    }
  }
}

TEST(LatLonTest, ProjectionAgreesWithHaversine) {
  LocalProjection proj({46.52, 6.63});
  LatLon a{46.53, 6.64};
  LatLon b{46.51, 6.60};
  double planar = proj.ToLocal(a).DistanceTo(proj.ToLocal(b));
  double sphere = HaversineDistance(a, b);
  // Equirectangular error is far below GPS noise at city scale.
  EXPECT_NEAR(planar, sphere, sphere * 0.001);
}

}  // namespace
}  // namespace semitri::geo
