// Tests for the spatial predicate vocabulary (paper §4.1's directional /
// distance / topological join predicates) and semantic sequence
// similarity.

#include <gtest/gtest.h>

#include "analytics/similarity.h"
#include "geo/relations.h"

namespace semitri {
namespace {

using geo::BoundingBox;
using geo::Point;

const BoundingBox kUnit({0, 0}, {10, 10});

TEST(SpatialRelationsTest, Topological) {
  BoundingBox inner({2, 2}, {8, 8});
  BoundingBox overlapping({5, 5}, {15, 15});
  BoundingBox far({20, 20}, {30, 30});
  BoundingBox touching({10, 0}, {20, 10});

  EXPECT_TRUE(geo::Contains(kUnit, inner));
  EXPECT_TRUE(geo::Within(inner, kUnit));
  EXPECT_FALSE(geo::Within(kUnit, inner));

  EXPECT_TRUE(geo::Overlaps(kUnit, overlapping));
  EXPECT_FALSE(geo::Overlaps(kUnit, inner));  // containment, not overlap
  EXPECT_FALSE(geo::Overlaps(kUnit, far));

  EXPECT_TRUE(geo::Touches(kUnit, touching));
  EXPECT_FALSE(geo::Touches(kUnit, overlapping));
  EXPECT_FALSE(geo::Touches(kUnit, far));

  EXPECT_TRUE(geo::Disjoint(kUnit, far));
  EXPECT_FALSE(geo::Disjoint(kUnit, touching));

  EXPECT_TRUE(geo::Equals(kUnit, BoundingBox({0, 0}, {10, 10})));
  EXPECT_FALSE(geo::Equals(kUnit, inner));
}

TEST(SpatialRelationsTest, SelfRelations) {
  EXPECT_TRUE(geo::Contains(kUnit, kUnit));
  EXPECT_TRUE(geo::Within(kUnit, kUnit));
  EXPECT_FALSE(geo::Overlaps(kUnit, kUnit));
  EXPECT_TRUE(geo::Equals(kUnit, kUnit));
}

TEST(SpatialRelationsTest, Distance) {
  BoundingBox right({13, 0}, {20, 10});
  BoundingBox diagonal({13, 14}, {20, 20});
  EXPECT_DOUBLE_EQ(geo::MinDistance(kUnit, right), 3.0);
  EXPECT_DOUBLE_EQ(geo::MinDistance(kUnit, diagonal), 5.0);
  EXPECT_DOUBLE_EQ(geo::MinDistance(kUnit, kUnit), 0.0);
  EXPECT_TRUE(geo::WithinDistance(kUnit, right, 3.0));
  EXPECT_FALSE(geo::WithinDistance(kUnit, right, 2.9));
}

TEST(SpatialRelationsTest, Directional) {
  BoundingBox north({0, 20}, {10, 30});
  BoundingBox east({20, 0}, {30, 10});
  EXPECT_TRUE(geo::NorthOf(north, kUnit));
  EXPECT_TRUE(geo::SouthOf(kUnit, north));
  EXPECT_FALSE(geo::NorthOf(kUnit, north));
  EXPECT_TRUE(geo::EastOf(east, kUnit));
  EXPECT_TRUE(geo::WestOf(kUnit, east));
}

TEST(SpatialRelationsTest, EvaluateByName) {
  BoundingBox inner({2, 2}, {8, 8});
  EXPECT_TRUE(geo::EvaluatePredicate(geo::SpatialPredicate::kContains,
                                     kUnit, inner));
  EXPECT_FALSE(geo::EvaluatePredicate(geo::SpatialPredicate::kDisjoint,
                                      kUnit, inner));
  EXPECT_STREQ(
      geo::SpatialPredicateName(geo::SpatialPredicate::kNorthOf),
      "north_of");
}

using Labels = std::vector<std::string>;

TEST(SimilarityTest, EditDistanceBasics) {
  EXPECT_EQ(analytics::SequenceEditDistance({}, {}), 0u);
  EXPECT_EQ(analytics::SequenceEditDistance({"a"}, {}), 1u);
  EXPECT_EQ(analytics::SequenceEditDistance({"a", "b", "c"},
                                            {"a", "x", "c"}),
            1u);
  EXPECT_EQ(analytics::SequenceEditDistance({"a", "b"}, {"b", "a"}), 2u);
  EXPECT_EQ(analytics::SequenceEditDistance({"home", "work", "home"},
                                            {"home", "work", "shop",
                                             "home"}),
            1u);
}

TEST(SimilarityTest, EditSimilarityNormalized) {
  EXPECT_DOUBLE_EQ(analytics::EditSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(
      analytics::EditSimilarity({"a", "b"}, {"a", "b"}), 1.0);
  EXPECT_DOUBLE_EQ(analytics::EditSimilarity({"a"}, {"b"}), 0.0);
  EXPECT_DOUBLE_EQ(
      analytics::EditSimilarity({"a", "b", "c", "d"}, {"a", "b", "c",
                                                       "x"}),
      0.75);
}

TEST(SimilarityTest, Lcs) {
  EXPECT_EQ(analytics::LongestCommonSubsequence({"h", "w", "s", "h"},
                                                {"h", "s", "h"}),
            3u);
  EXPECT_DOUBLE_EQ(analytics::LcsSimilarity({"h", "w", "s", "h"},
                                            {"h", "s", "h"}),
                   0.75);
  EXPECT_DOUBLE_EQ(analytics::LcsSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(analytics::LcsSimilarity({"a"}, {"b"}), 0.0);
}

TEST(SimilarityTest, RoutineDaysMoreSimilarThanOddDays) {
  Labels monday = {"home", "work", "restaurant", "work", "home"};
  Labels tuesday = {"home", "work", "restaurant", "work", "shop", "home"};
  Labels sunday = {"home", "park", "lake", "home"};
  EXPECT_GT(analytics::EditSimilarity(monday, tuesday),
            analytics::EditSimilarity(monday, sunday));
  EXPECT_GT(analytics::LcsSimilarity(monday, tuesday),
            analytics::LcsSimilarity(monday, sunday));
}

TEST(SimilarityTest, MatrixSymmetricUnitDiagonal) {
  std::vector<Labels> days = {
      {"home", "work", "home"},
      {"home", "work", "shop", "home"},
      {"home", "park", "home"},
  };
  auto matrix = analytics::SimilarityMatrix(days);
  ASSERT_EQ(matrix.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(matrix[i][i], 1.0);
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(matrix[i][j], matrix[j][i]);
      EXPECT_GE(matrix[i][j], 0.0);
      EXPECT_LE(matrix[i][j], 1.0);
    }
  }
  EXPECT_GT(matrix[0][1], matrix[0][2]);
}

}  // namespace
}  // namespace semitri
