// Tests for the HTML/SVG report writer.

#include "export/html_report.h"

#include <filesystem>

#include <gtest/gtest.h>

namespace semitri::export_ {
namespace {

core::PipelineResult SmallResult() {
  core::PipelineResult result;
  for (int i = 0; i < 20; ++i) {
    result.cleaned.points.push_back(
        {{i * 10.0, i * 5.0}, static_cast<double>(i * 10)});
  }
  core::Episode stop;
  stop.kind = core::EpisodeKind::kStop;
  stop.begin = 0;
  stop.end = 5;
  stop.time_in = 0;
  stop.time_out = 40;
  stop.center = {20, 10};
  core::Episode move;
  move.kind = core::EpisodeKind::kMove;
  move.begin = 5;
  move.end = 20;
  move.time_in = 50;
  move.time_out = 190;
  result.episodes = {stop, move};

  core::StructuredSemanticTrajectory line;
  line.interpretation = "line";
  core::SemanticEpisode ep;
  ep.kind = core::EpisodeKind::kMove;
  ep.time_in = 50;
  ep.time_out = 190;
  ep.source_episode = 1;
  ep.AddAnnotation("transport_mode", "metro");
  line.episodes.push_back(ep);
  result.line_layer = line;
  return result;
}

TEST(HtmlReportTest, MapPanelContainsSvgElements) {
  HtmlReportWriter report("test");
  report.AddTrajectoryMap(SmallResult(), "my map");
  std::string html = report.ToString();
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("<polyline"), std::string::npos);
  EXPECT_NE(html.find("<circle"), std::string::npos);  // the stop
  // Metro-colored run present.
  EXPECT_NE(html.find(ModeColor("metro")), std::string::npos);
  EXPECT_NE(html.find("my map"), std::string::npos);
}

TEST(HtmlReportTest, TimelineTableRendersRows) {
  HtmlReportWriter report("test");
  std::vector<analytics::TimelineEntry> timeline = {
      {core::EpisodeKind::kStop, 0, 3600, "home", ""},
      {core::EpisodeKind::kMove, 3600, 4000, "road", "walk & <metro>"},
  };
  report.AddTimelineTable(timeline, "day");
  std::string html = report.ToString();
  EXPECT_NE(html.find("<td>home</td>"), std::string::npos);
  EXPECT_NE(html.find("walk &amp; &lt;metro&gt;"), std::string::npos);
  EXPECT_NE(html.find("<td>00:00 - 01:00</td>"), std::string::npos);
  // Empty annotation renders as "-".
  EXPECT_NE(html.find("<td>-</td>"), std::string::npos);
}

TEST(HtmlReportTest, DistributionChartBars) {
  HtmlReportWriter report("test");
  analytics::LabeledDistribution dist;
  dist.Add("walk", 75);
  dist.Add("metro", 25);
  report.AddDistributionChart(dist, "modes");
  std::string html = report.ToString();
  EXPECT_NE(html.find("75.0%"), std::string::npos);
  EXPECT_NE(html.find("25.0%"), std::string::npos);
  EXPECT_NE(html.find("width:300.0px"), std::string::npos);  // 0.75*400
}

TEST(HtmlReportTest, WellFormedDocument) {
  HtmlReportWriter report("A & B <report>");
  std::string html = report.ToString();
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  EXPECT_NE(html.find("A &amp; B &lt;report&gt;"), std::string::npos);
}

TEST(HtmlReportTest, WriteFile) {
  namespace fs = std::filesystem;
  std::string path =
      (fs::temp_directory_path() / "semitri_report_test.html").string();
  fs::remove(path);
  HtmlReportWriter report("t");
  report.AddTrajectoryMap(SmallResult(), "m");
  ASSERT_TRUE(report.WriteFile(path).ok());
  EXPECT_GT(fs::file_size(path), 500u);
  fs::remove(path);
  EXPECT_FALSE(report.WriteFile("/nonexistent/x.html").ok());
}

TEST(HtmlReportTest, EmptyTrajectoryDoesNotCrash) {
  HtmlReportWriter report("t");
  core::PipelineResult empty;
  report.AddTrajectoryMap(empty, "empty");
  EXPECT_NE(report.ToString().find("<svg"), std::string::npos);
}

}  // namespace
}  // namespace semitri::export_
