// Tests for motion features and the transportation-mode classifier.

#include "road/transport_mode.h"

#include <gtest/gtest.h>

#include "traj/point_batch.h"

#include "common/rng.h"

namespace semitri::road {
namespace {

// Adapts AoS test fixtures to the SoA data plane.
traj::PointBatch Batch(const std::vector<core::GpsPoint>& points) {
  traj::PointBatch batch;
  batch.BuildFrom(points);
  return batch;
}

// Constant-speed straight run sampled at 1 Hz.
std::vector<core::GpsPoint> MakeRun(double speed, double seconds,
                                double accel_wobble = 0.0,
                                uint64_t seed = 1) {
  common::Rng rng(seed);
  std::vector<core::GpsPoint> points;
  double x = 0.0;
  double v = speed;
  for (double t = 0; t <= seconds; t += 1.0) {
    points.push_back({{x, 0.0}, t});
    v = std::max(0.0, speed + rng.Gaussian(0, accel_wobble));
    x += v;
  }
  return points;
}

TEST(MotionFeaturesTest, ConstantSpeed) {
  auto f = ComputeMotionFeatures(Batch(MakeRun(10.0, 60.0)).View());
  EXPECT_NEAR(f.mean_speed_mps, 10.0, 1e-9);
  EXPECT_NEAR(f.speed_stddev, 0.0, 1e-9);
  EXPECT_NEAR(f.mean_abs_acceleration, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(f.duration_seconds, 60.0);
}

TEST(MotionFeaturesTest, WobbleRaisesAcceleration) {
  auto smooth = ComputeMotionFeatures(Batch(MakeRun(8.0, 120.0, 0.0)).View());
  auto jerky =
      ComputeMotionFeatures(Batch(MakeRun(8.0, 120.0, 3.0, 5)).View());
  EXPECT_GT(jerky.mean_abs_acceleration, smooth.mean_abs_acceleration);
  EXPECT_GT(jerky.speed_stddev, smooth.speed_stddev);
}

TEST(MotionFeaturesTest, DegenerateInputs) {
  MotionFeatures empty = ComputeMotionFeatures(traj::PointView{});
  EXPECT_DOUBLE_EQ(empty.mean_speed_mps, 0.0);
  std::vector<core::GpsPoint> one = {{{0, 0}, 0}};
  EXPECT_DOUBLE_EQ(ComputeMotionFeatures(Batch(one).View()).mean_speed_mps,
                   0.0);
}

TEST(ClassifierTest, RailAlwaysMetro) {
  TransportModeClassifier classifier;
  MotionFeatures slow;
  slow.mean_speed_mps = 1.0;  // even stopped at a station
  EXPECT_EQ(classifier.Classify(slow, RoadType::kRailMetro),
            TransportMode::kMetro);
}

TEST(ClassifierTest, SlowIsWalk) {
  TransportModeClassifier classifier;
  MotionFeatures f;
  f.mean_speed_mps = 1.3;
  EXPECT_EQ(classifier.Classify(f, RoadType::kResidential),
            TransportMode::kWalk);
  EXPECT_EQ(classifier.Classify(f, RoadType::kFootway),
            TransportMode::kWalk);
}

TEST(ClassifierTest, CyclewayMidSpeedIsBicycle) {
  TransportModeClassifier classifier;
  MotionFeatures f;
  f.mean_speed_mps = 4.5;
  f.mean_abs_acceleration = 0.2;
  EXPECT_EQ(classifier.Classify(f, RoadType::kCycleway),
            TransportMode::kBicycle);
  // Smooth mid-speed on a road also reads as bicycle.
  EXPECT_EQ(classifier.Classify(f, RoadType::kResidential),
            TransportMode::kBicycle);
}

TEST(ClassifierTest, StopAndGoMidSpeedIsBus) {
  TransportModeClassifier classifier;
  MotionFeatures f;
  f.mean_speed_mps = 5.5;
  f.mean_abs_acceleration = 0.8;  // stop-and-go
  EXPECT_EQ(classifier.Classify(f, RoadType::kArterial),
            TransportMode::kBus);
}

TEST(ClassifierTest, FastOnRoadIsBus) {
  TransportModeClassifier classifier;
  MotionFeatures f;
  f.mean_speed_mps = 9.0;
  f.mean_abs_acceleration = 0.5;
  EXPECT_EQ(classifier.Classify(f, RoadType::kArterial),
            TransportMode::kBus);
}

TEST(ClassifierTest, EndToEndFromPoints) {
  TransportModeClassifier classifier;
  EXPECT_EQ(classifier.Classify(Batch(MakeRun(1.3, 120.0, 0.1, 3)).View(),
                                RoadType::kFootway),
            TransportMode::kWalk);
  EXPECT_EQ(classifier.Classify(Batch(MakeRun(12.0, 120.0, 1.0, 3)).View(),
                                RoadType::kRailMetro),
            TransportMode::kMetro);
}

TEST(ClassifierTest, ConfigurableThresholds) {
  ModeInferenceConfig config;
  config.walk_max_speed_mps = 5.0;  // generous walk band
  TransportModeClassifier classifier(config);
  MotionFeatures f;
  f.mean_speed_mps = 4.0;
  EXPECT_EQ(classifier.Classify(f, RoadType::kResidential),
            TransportMode::kWalk);
}

TEST(TransportModeTest, Names) {
  EXPECT_STREQ(TransportModeName(TransportMode::kWalk), "walk");
  EXPECT_STREQ(TransportModeName(TransportMode::kBicycle), "bicycle");
  EXPECT_STREQ(TransportModeName(TransportMode::kBus), "bus");
  EXPECT_STREQ(TransportModeName(TransportMode::kMetro), "metro");
  EXPECT_STREQ(TransportModeName(TransportMode::kCar), "car");
}

}  // namespace
}  // namespace semitri::road
