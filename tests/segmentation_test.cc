// Tests for stop/move segmentation under both computing policies
// (velocity threshold and density/dwell clustering).

#include "traj/segmentation.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace semitri::traj {
namespace {

// Trajectory that moves at `speed` for `move_s` seconds, dwells (with
// jitter) for `stop_s`, then moves again. 1 Hz sampling.
core::RawTrajectory MoveStopMove(double speed, double move_s, double stop_s,
                                 double jitter = 0.5, uint64_t seed = 1) {
  common::Rng rng(seed);
  core::RawTrajectory t;
  double x = 0.0;
  double time = 0.0;
  for (; time < move_s; time += 1.0) {
    x += speed;
    t.points.push_back({{x, rng.Gaussian(0, jitter)}, time});
  }
  double stop_x = x;
  for (; time < move_s + stop_s; time += 1.0) {
    t.points.push_back({{stop_x + rng.Gaussian(0, jitter),
                         rng.Gaussian(0, jitter)},
                        time});
  }
  for (; time < 2 * move_s + stop_s; time += 1.0) {
    x += speed;
    t.points.push_back({{x, rng.Gaussian(0, jitter)}, time});
  }
  return t;
}

SegmentationConfig VelocityConfig() {
  SegmentationConfig c;
  c.policy = StopPolicy::kVelocity;
  c.velocity_threshold_mps = 1.5;
  c.min_stop_duration_seconds = 60.0;
  c.min_move_duration_seconds = 10.0;
  return c;
}

SegmentationConfig DensityConfig() {
  SegmentationConfig c;
  c.policy = StopPolicy::kDensity;
  c.density_radius_meters = 30.0;
  c.min_stop_duration_seconds = 60.0;
  c.min_move_duration_seconds = 10.0;
  return c;
}

class SegmenterPolicyTest
    : public ::testing::TestWithParam<StopPolicy> {
 protected:
  SegmentationConfig Config() const {
    return GetParam() == StopPolicy::kVelocity ? VelocityConfig()
                                               : DensityConfig();
  }
};

TEST_P(SegmenterPolicyTest, DetectsMoveStopMove) {
  StopMoveSegmenter segmenter(Config());
  core::RawTrajectory t = MoveStopMove(10.0, 300.0, 200.0);
  auto episodes = segmenter.Segment(t);
  ASSERT_EQ(episodes.size(), 3u);
  EXPECT_EQ(episodes[0].kind, core::EpisodeKind::kMove);
  EXPECT_EQ(episodes[1].kind, core::EpisodeKind::kStop);
  EXPECT_EQ(episodes[2].kind, core::EpisodeKind::kMove);
  // Stop duration approximately matches the simulated dwell.
  EXPECT_NEAR(episodes[1].DurationSeconds(), 200.0, 40.0);
}

TEST_P(SegmenterPolicyTest, PartitionCoversAllPoints) {
  StopMoveSegmenter segmenter(Config());
  core::RawTrajectory t = MoveStopMove(8.0, 240.0, 180.0, 1.0, 7);
  auto episodes = segmenter.Segment(t);
  size_t covered = 0;
  size_t expected_begin = 0;
  for (const core::Episode& ep : episodes) {
    EXPECT_EQ(ep.begin, expected_begin);
    EXPECT_GT(ep.end, ep.begin);
    covered += ep.num_points();
    expected_begin = ep.end;
  }
  EXPECT_EQ(covered, t.size());
}

TEST_P(SegmenterPolicyTest, ShortPauseIsNotAStop) {
  StopMoveSegmenter segmenter(Config());
  // 20 s pause < 60 s minimum dwell.
  core::RawTrajectory t = MoveStopMove(10.0, 200.0, 20.0);
  auto episodes = segmenter.Segment(t);
  for (const core::Episode& ep : episodes) {
    EXPECT_EQ(ep.kind, core::EpisodeKind::kMove);
  }
}

TEST_P(SegmenterPolicyTest, AllStationaryIsOneStop) {
  StopMoveSegmenter segmenter(Config());
  core::RawTrajectory t = MoveStopMove(0.0, 0.0, 600.0);
  auto episodes = segmenter.Segment(t);
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_EQ(episodes[0].kind, core::EpisodeKind::kStop);
}

INSTANTIATE_TEST_SUITE_P(Policies, SegmenterPolicyTest,
                         ::testing::Values(StopPolicy::kVelocity,
                                           StopPolicy::kDensity),
                         [](const auto& info) {
                           return info.param == StopPolicy::kVelocity
                                      ? "Velocity"
                                      : "Density";
                         });

TEST(SegmentationTest, PointSpeeds) {
  core::RawTrajectory t;
  t.points = {{{0, 0}, 0}, {{10, 0}, 1}, {{30, 0}, 2}, {{30, 0}, 3}};
  auto speeds = StopMoveSegmenter::PointSpeeds(t);
  ASSERT_EQ(speeds.size(), 4u);
  EXPECT_DOUBLE_EQ(speeds[0], 10.0);  // copies element 1
  EXPECT_DOUBLE_EQ(speeds[1], 10.0);
  EXPECT_DOUBLE_EQ(speeds[2], 20.0);
  EXPECT_DOUBLE_EQ(speeds[3], 0.0);
}

TEST(SegmentationTest, EpisodeSummariesAreConsistent) {
  StopMoveSegmenter segmenter(VelocityConfig());
  core::RawTrajectory t = MoveStopMove(10.0, 120.0, 180.0);
  auto episodes = segmenter.Segment(t);
  for (const core::Episode& ep : episodes) {
    EXPECT_DOUBLE_EQ(ep.time_in, t.points[ep.begin].time);
    EXPECT_DOUBLE_EQ(ep.time_out, t.points[ep.end - 1].time);
    EXPECT_TRUE(ep.bounds.Contains(ep.center));
    for (size_t i = ep.begin; i < ep.end; ++i) {
      EXPECT_TRUE(ep.bounds.Contains(t.points[i].position));
    }
  }
}

TEST(SegmentationTest, StopCenterNearTrueDwellLocation) {
  StopMoveSegmenter segmenter(VelocityConfig());
  core::RawTrajectory t = MoveStopMove(10.0, 100.0, 300.0, 0.5, 11);
  auto episodes = segmenter.Segment(t);
  const core::Episode* stop = nullptr;
  for (const auto& ep : episodes) {
    if (ep.kind == core::EpisodeKind::kStop) stop = &ep;
  }
  ASSERT_NE(stop, nullptr);
  // The dwell happened at x = 100 * 10 = 1000.
  EXPECT_NEAR(stop->center.x, 1000.0, 15.0);
  EXPECT_NEAR(stop->center.y, 0.0, 5.0);
}

TEST(SegmentationTest, BeginEndEpisodesEmitted) {
  SegmentationConfig config = VelocityConfig();
  config.emit_begin_end = true;
  StopMoveSegmenter segmenter(config);
  core::RawTrajectory t = MoveStopMove(10.0, 120.0, 120.0);
  auto episodes = segmenter.Segment(t);
  ASSERT_GE(episodes.size(), 3u);
  EXPECT_EQ(episodes.front().kind, core::EpisodeKind::kBegin);
  EXPECT_EQ(episodes.back().kind, core::EpisodeKind::kEnd);
  EXPECT_EQ(episodes.front().num_points(), 1u);
}

TEST(SegmentationTest, EmptyTrajectory) {
  StopMoveSegmenter segmenter(VelocityConfig());
  core::RawTrajectory t;
  EXPECT_TRUE(segmenter.Segment(t).empty());
}

TEST(SegmentationTest, GpsNoiseAtStopDoesNotFragment) {
  // Even with 3 m noise, a dwell should remain one stop episode thanks
  // to speed smoothing.
  SegmentationConfig config = VelocityConfig();
  StopMoveSegmenter segmenter(config);
  core::RawTrajectory t = MoveStopMove(12.0, 200.0, 400.0, 1.5, 23);
  auto episodes = segmenter.Segment(t);
  size_t stops = 0;
  for (const auto& ep : episodes) {
    if (ep.kind == core::EpisodeKind::kStop) ++stops;
  }
  EXPECT_EQ(stops, 1u);
}

}  // namespace
}  // namespace semitri::traj
