#include "region/landuse.h"

namespace semitri::region {

const char* LanduseCategoryCode(LanduseCategory category) {
  switch (category) {
    case LanduseCategory::kIndustrialCommercial: return "1.1";
    case LanduseCategory::kBuilding: return "1.2";
    case LanduseCategory::kTransportation: return "1.3";
    case LanduseCategory::kSpecialUrban: return "1.4";
    case LanduseCategory::kRecreational: return "1.5";
    case LanduseCategory::kOrchard: return "2.6";
    case LanduseCategory::kArable: return "2.7";
    case LanduseCategory::kMeadows: return "2.8";
    case LanduseCategory::kAlpineAgricultural: return "2.9";
    case LanduseCategory::kForest: return "3.10";
    case LanduseCategory::kBrushForest: return "3.11";
    case LanduseCategory::kWoods: return "3.12";
    case LanduseCategory::kLakes: return "4.13";
    case LanduseCategory::kRivers: return "4.14";
    case LanduseCategory::kUnproductiveVegetation: return "4.15";
    case LanduseCategory::kBareLand: return "4.16";
    case LanduseCategory::kGlaciers: return "4.17";
  }
  return "?";
}

const char* LanduseCategoryName(LanduseCategory category) {
  switch (category) {
    case LanduseCategory::kIndustrialCommercial:
      return "industrial and commercial area";
    case LanduseCategory::kBuilding: return "building areas";
    case LanduseCategory::kTransportation: return "transportation areas";
    case LanduseCategory::kSpecialUrban: return "special urban areas";
    case LanduseCategory::kRecreational:
      return "recreational areas and cemeteries";
    case LanduseCategory::kOrchard:
      return "orchard, vineyard and horticulture areas";
    case LanduseCategory::kArable: return "arable land";
    case LanduseCategory::kMeadows: return "meadows, farm pastures";
    case LanduseCategory::kAlpineAgricultural:
      return "alpine agricultural areas";
    case LanduseCategory::kForest: return "forest (except brush forest)";
    case LanduseCategory::kBrushForest: return "brush forest";
    case LanduseCategory::kWoods: return "woods";
    case LanduseCategory::kLakes: return "lakes";
    case LanduseCategory::kRivers: return "rivers";
    case LanduseCategory::kUnproductiveVegetation:
      return "unproductive vegetation";
    case LanduseCategory::kBareLand: return "bare land";
    case LanduseCategory::kGlaciers: return "glaciers, perpetual snow";
  }
  return "unknown";
}

LanduseGroup LanduseGroupOf(LanduseCategory category) {
  int index = static_cast<int>(category);
  if (index <= static_cast<int>(LanduseCategory::kRecreational)) {
    return LanduseGroup::kSettlement;
  }
  if (index <= static_cast<int>(LanduseCategory::kAlpineAgricultural)) {
    return LanduseGroup::kAgricultural;
  }
  if (index <= static_cast<int>(LanduseCategory::kWoods)) {
    return LanduseGroup::kWooded;
  }
  return LanduseGroup::kUnproductive;
}

const char* LanduseGroupName(LanduseGroup group) {
  switch (group) {
    case LanduseGroup::kSettlement: return "Settlement and urban areas";
    case LanduseGroup::kAgricultural: return "Agricultural areas";
    case LanduseGroup::kWooded: return "Wooded areas";
    case LanduseGroup::kUnproductive: return "Unproductive areas";
  }
  return "unknown";
}

}  // namespace semitri::region
