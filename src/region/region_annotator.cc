#include "region/region_annotator.h"

#include <array>

#include "common/check.h"

namespace semitri::region {

namespace {

// Merge key for Algorithm 1 tuple merging: category id or region id, with
// -1 for uncovered points.
int64_t MergeKeyOf(const RegionSet& regions, core::PlaceId id,
                   RegionAnnotatorConfig::MergePolicy policy) {
  if (id == core::kInvalidPlaceId) return -1;
  if (policy == RegionAnnotatorConfig::MergePolicy::kByRegion) return id;
  return static_cast<int64_t>(regions.Get(id).category);
}

}  // namespace

core::PlaceId RegionAnnotator::BestRegionFor(const geo::Point& p) const {
  std::vector<core::PlaceId> hits = regions_->FindContaining(p);
  if (hits.empty()) return core::kInvalidPlaceId;
  if (config_.prefer_named_regions) {
    for (core::PlaceId id : hits) {
      if (!regions_->Get(id).name.empty()) return id;
    }
  }
  return hits.front();
}

std::vector<core::PlaceId> RegionAnnotator::ClassifyPoints(
    const core::RawTrajectory& trajectory) const {
  std::vector<core::PlaceId> out;
  out.reserve(trajectory.points.size());
  // semitri-lint: allow(exec-checkpoint-coverage) — const helper with
  // no ExecControl in scope; the deadline-aware Annotate entry point
  // polls per point before and after this classification pass.
  for (const core::GpsPoint& p : trajectory.points) {
    out.push_back(BestRegionFor(p.position));
  }
  return out;
}

void RegionAnnotator::AttachRegionAnnotations(
    core::PlaceId region_id, core::SemanticEpisode* episode) const {
  episode->place = {core::PlaceKind::kRegion, region_id};
  if (region_id == core::kInvalidPlaceId) return;
  const SemanticRegion& r = regions_->Get(region_id);
  episode->AddAnnotation("landuse", LanduseCategoryCode(r.category));
  episode->AddAnnotation("landuse_name", LanduseCategoryName(r.category));
  if (!r.name.empty()) episode->AddAnnotation("region_name", r.name);
}

core::StructuredSemanticTrajectory RegionAnnotator::AnnotateTrajectory(
    const core::RawTrajectory& trajectory) const {
  common::Result<core::StructuredSemanticTrajectory> result =
      AnnotateTrajectory(trajectory, /*exec=*/nullptr);
  // Unbounded runs cannot hit the only error path (DeadlineExceeded).
  SEMITRI_CHECK(result.ok()) << result.status().message();
  return std::move(result).value();
}

common::Result<core::StructuredSemanticTrajectory>
RegionAnnotator::AnnotateTrajectory(const core::RawTrajectory& trajectory,
                                    const common::ExecControl* exec) const {
  core::StructuredSemanticTrajectory out;
  out.trajectory_id = trajectory.id;
  out.object_id = trajectory.object_id;
  out.interpretation = "region";
  if (trajectory.points.empty()) return out;

  // Per-point spatial join (the R*-tree bulk queries) with deadline
  // checkpoints.
  common::ExecCheckpoint checkpoint(exec);
  std::vector<core::PlaceId> point_regions;
  point_regions.reserve(trajectory.points.size());
  for (const core::GpsPoint& p : trajectory.points) {
    SEMITRI_RETURN_IF_ERROR(checkpoint.Check("region_classify_points"));
    point_regions.push_back(BestRegionFor(p.position));
  }

  // Group continuous points with the same merge key into tuples
  // (Algorithm 1 lines 6–11).
  size_t group_start = 0;
  int64_t group_key =
      MergeKeyOf(*regions_, point_regions[0], config_.merge_policy);
  auto emit = [&](size_t begin, size_t end) {
    core::SemanticEpisode ep;
    ep.time_in = trajectory.points[begin].time;
    ep.time_out = trajectory.points[end - 1].time;
    AttachRegionAnnotations(point_regions[begin], &ep);
    out.episodes.push_back(std::move(ep));
  };
  // semitri-lint: allow(exec-checkpoint-coverage) — episode grouping
  // is one linear pass over the precomputed point_regions vector.
  for (size_t i = 1; i < trajectory.points.size(); ++i) {
    int64_t key =
        MergeKeyOf(*regions_, point_regions[i], config_.merge_policy);
    if (key != group_key) {
      emit(group_start, i);
      group_start = i;
      group_key = key;
    }
  }
  emit(group_start, trajectory.points.size());
  return out;
}

core::StructuredSemanticTrajectory RegionAnnotator::AnnotateEpisodes(
    const core::RawTrajectory& trajectory,
    const std::vector<core::Episode>& episodes) const {
  common::Result<core::StructuredSemanticTrajectory> result =
      AnnotateEpisodes(trajectory, episodes, /*exec=*/nullptr);
  SEMITRI_CHECK(result.ok()) << result.status().message();
  return std::move(result).value();
}

common::Result<core::StructuredSemanticTrajectory>
RegionAnnotator::AnnotateEpisodes(const core::RawTrajectory& trajectory,
                                  const std::vector<core::Episode>& episodes,
                                  const common::ExecControl* exec) const {
  core::StructuredSemanticTrajectory out;
  out.trajectory_id = trajectory.id;
  out.object_id = trajectory.object_id;
  out.interpretation = "region";

  common::ExecCheckpoint checkpoint(exec);
  for (size_t e = 0; e < episodes.size(); ++e) {
    const core::Episode& episode = episodes[e];
    if (exec != nullptr) {
      SEMITRI_RETURN_IF_ERROR(exec->Check("region_annotate_episodes"));
    }
    core::SemanticEpisode ep;
    ep.kind = episode.kind;
    ep.time_in = episode.time_in;
    ep.time_out = episode.time_out;
    ep.source_episode = e;

    core::PlaceId chosen = core::kInvalidPlaceId;
    if (episode.kind == core::EpisodeKind::kStop ||
        episode.kind == core::EpisodeKind::kBegin ||
        episode.kind == core::EpisodeKind::kEnd) {
      // Stops: spatial subsumption of the episode center (§4.1: "for stop
      // episodes, we found spatial subsumption as the most used
      // predicate" — using the stop center).
      chosen = BestRegionFor(episode.center);
    } else {
      // Moves: join the bounding rectangle, then pick the per-point
      // majority region among intersecting candidates.
      std::vector<core::PlaceId> candidates =
          regions_->FindIntersecting(episode.bounds);
      if (!candidates.empty()) {
        std::vector<size_t> votes(candidates.size(), 0);
        for (size_t i = episode.begin; i < episode.end; ++i) {
          SEMITRI_RETURN_IF_ERROR(checkpoint.Check("region_majority_vote"));
          const geo::Point& p = trajectory.points[i].position;
          for (size_t c = 0; c < candidates.size(); ++c) {
            if (regions_->Get(candidates[c]).Contains(p)) {
              ++votes[c];
              break;
            }
          }
        }
        size_t best = 0;
        for (size_t c = 1; c < candidates.size(); ++c) {
          if (votes[c] > votes[best]) best = c;
        }
        if (votes[best] > 0) chosen = candidates[best];
      }
    }
    AttachRegionAnnotations(chosen, &ep);
    out.episodes.push_back(std::move(ep));
  }
  return out;
}

}  // namespace semitri::region
