#ifndef SEMITRI_REGION_LANDUSE_H_
#define SEMITRI_REGION_LANDUSE_H_

// The Swisstopo landuse ontology of paper Fig. 4: 4 top-level groups and
// 17 sub-categories (codes 1.1 … 4.17) used to label 100 m × 100 m cells.

#include <cstdint>

namespace semitri::region {

enum class LanduseGroup : uint8_t {
  kSettlement = 1,    // L1 Settlement and urban areas
  kAgricultural = 2,  // L2 Agricultural areas
  kWooded = 3,        // L3 Wooded areas
  kUnproductive = 4,  // L4 Unproductive areas
};

enum class LanduseCategory : uint8_t {
  kIndustrialCommercial = 0,   // 1.1
  kBuilding = 1,               // 1.2
  kTransportation = 2,         // 1.3
  kSpecialUrban = 3,           // 1.4
  kRecreational = 4,           // 1.5
  kOrchard = 5,                // 2.6
  kArable = 6,                 // 2.7
  kMeadows = 7,                // 2.8
  kAlpineAgricultural = 8,     // 2.9
  kForest = 9,                 // 3.10
  kBrushForest = 10,           // 3.11
  kWoods = 11,                 // 3.12
  kLakes = 12,                 // 4.13
  kRivers = 13,                // 4.14
  kUnproductiveVegetation = 14,  // 4.15
  kBareLand = 15,              // 4.16
  kGlaciers = 16,              // 4.17
};

inline constexpr int kNumLanduseCategories = 17;

// Paper code like "1.2" for kBuilding.
const char* LanduseCategoryCode(LanduseCategory category);

// Human-readable name like "building areas".
const char* LanduseCategoryName(LanduseCategory category);

LanduseGroup LanduseGroupOf(LanduseCategory category);

const char* LanduseGroupName(LanduseGroup group);

}  // namespace semitri::region

#endif  // SEMITRI_REGION_LANDUSE_H_
