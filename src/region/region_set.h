#ifndef SEMITRI_REGION_REGION_SET_H_
#define SEMITRI_REGION_REGION_SET_H_

// Semantic regions (P_region, Def. 2) and their indexed repository.
//
// Two shapes back a region: an axis-aligned cell (the common case —
// landuse grids like Swisstopo's 100 m cells) and a free-form polygon
// (campus, park, swimming pool). The repository answers point/box
// queries through an R*-tree over region bounds, exactly how the paper
// accelerates its spatial joins ([2]).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/types.h"
#include "geo/polygon.h"
#include "geo/relations.h"
#include "index/spatial_index.h"
#include "region/landuse.h"

namespace semitri::region {

struct SemanticRegion {
  core::PlaceId id = core::kInvalidPlaceId;
  LanduseCategory category = LanduseCategory::kBuilding;
  std::string name;  // free-form label ("EPFL campus"); empty for cells
  geo::BoundingBox bounds;
  // Present only for free-form regions; cells use `bounds` directly.
  std::optional<geo::Polygon> polygon;

  bool Contains(const geo::Point& p) const {
    if (!bounds.Contains(p)) return false;
    return !polygon.has_value() || polygon->Contains(p);
  }

  bool Intersects(const geo::BoundingBox& box) const {
    // Bounds test; for polygons this is the standard filter step (exact
    // refinement is the caller's choice — Algorithm 1 works per point).
    return bounds.Intersects(box);
  }
};

class RegionSet {
 public:
  // `index_config` selects the spatial-index backend for the repository.
  explicit RegionSet(index::SpatialIndexConfig index_config = {});

  // Adds a rectangular cell region. Returns its id.
  core::PlaceId AddCell(const geo::BoundingBox& cell,
                        LanduseCategory category, std::string name = "");

  // Adds a free-form polygonal region. Returns its id.
  core::PlaceId AddPolygon(geo::Polygon polygon, LanduseCategory category,
                           std::string name);

  size_t size() const { return regions_.size(); }
  bool empty() const { return regions_.empty(); }
  const SemanticRegion& Get(core::PlaceId id) const {
    return regions_[static_cast<size_t>(id)];
  }

  // Regions whose shape contains the point (filter via R*-tree, refine
  // via exact containment).
  std::vector<core::PlaceId> FindContaining(const geo::Point& p) const;

  // Regions whose bounds intersect the box.
  std::vector<core::PlaceId> FindIntersecting(
      const geo::BoundingBox& box) const;

  // Regions whose bounds satisfy `predicate(region_bounds, box)` — the
  // configurable join predicates of paper §4.1 (geo/relations.h).
  // Containment-like predicates are index-accelerated; others fall back
  // to a scan.
  std::vector<core::PlaceId> FindByPredicate(
      geo::SpatialPredicate predicate, const geo::BoundingBox& box) const;

  geo::BoundingBox Bounds() const { return index_->Bounds(); }

  const index::SpatialIndex<core::PlaceId>& spatial_index() const {
    return *index_;
  }

 private:
  std::vector<SemanticRegion> regions_;
  std::unique_ptr<index::SpatialIndex<core::PlaceId>> index_;
};

}  // namespace semitri::region

#endif  // SEMITRI_REGION_REGION_SET_H_
