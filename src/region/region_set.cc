#include "region/region_set.h"

#include <algorithm>

namespace semitri::region {

RegionSet::RegionSet(index::SpatialIndexConfig index_config)
    : index_(index::MakeSpatialIndex<core::PlaceId>(index_config)) {}

core::PlaceId RegionSet::AddCell(const geo::BoundingBox& cell,
                                 LanduseCategory category, std::string name) {
  SemanticRegion r;
  r.id = static_cast<core::PlaceId>(regions_.size());
  r.category = category;
  r.name = std::move(name);
  r.bounds = cell;
  regions_.push_back(std::move(r));
  index_->Insert(cell, regions_.back().id);
  return regions_.back().id;
}

core::PlaceId RegionSet::AddPolygon(geo::Polygon polygon,
                                    LanduseCategory category,
                                    std::string name) {
  SemanticRegion r;
  r.id = static_cast<core::PlaceId>(regions_.size());
  r.category = category;
  r.name = std::move(name);
  r.bounds = polygon.Bounds();
  r.polygon = std::move(polygon);
  regions_.push_back(std::move(r));
  index_->Insert(regions_.back().bounds, regions_.back().id);
  return regions_.back().id;
}

std::vector<core::PlaceId> RegionSet::FindContaining(
    const geo::Point& p) const {
  std::vector<core::PlaceId> out;
  for (core::PlaceId id : index_->QueryPoint(p)) {
    if (Get(id).Contains(p)) out.push_back(id);
  }
  return out;
}

std::vector<core::PlaceId> RegionSet::FindIntersecting(
    const geo::BoundingBox& box) const {
  return index_->Query(box);
}

std::vector<core::PlaceId> RegionSet::FindByPredicate(
    geo::SpatialPredicate predicate, const geo::BoundingBox& box) const {
  std::vector<core::PlaceId> out;
  switch (predicate) {
    // Predicates implying intersection: filter through the index.
    case geo::SpatialPredicate::kIntersects:
    case geo::SpatialPredicate::kWithin:
    case geo::SpatialPredicate::kContains:
    case geo::SpatialPredicate::kOverlaps:
    case geo::SpatialPredicate::kTouches:
    case geo::SpatialPredicate::kEquals: {
      for (core::PlaceId id : index_->Query(box)) {
        if (geo::EvaluatePredicate(predicate, Get(id).bounds, box)) {
          out.push_back(id);
        }
      }
      std::sort(out.begin(), out.end());
      return out;
    }
    // Non-local predicates (disjoint, directional): full scan.
    default:
      for (const SemanticRegion& r : regions_) {
        if (geo::EvaluatePredicate(predicate, r.bounds, box)) {
          out.push_back(r.id);
        }
      }
      return out;
  }
}

}  // namespace semitri::region
