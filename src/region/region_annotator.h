#ifndef SEMITRI_REGION_REGION_ANNOTATOR_H_
#define SEMITRI_REGION_REGION_ANNOTATOR_H_

// Semantic Region Annotation Layer — paper §4.1, Algorithm 1.
//
// Computes the topological correlation (spatial join) between a
// trajectory and the semantic regions, groups continuous GPS points that
// fall into the same region, and merges consecutive tuples with the same
// region type into single semantic episodes. Works both per GPS point
// (Algorithm 1 as printed) and per stop/move episode (center containment
// for stops, bounding-rectangle join + per-point majority for moves).

#include <vector>

#include "common/exec_control.h"
#include "common/status.h"
#include "core/types.h"
#include "region/region_set.h"

namespace semitri::region {

struct RegionAnnotatorConfig {
  // Algorithm 1 line 10 merges consecutive tuples when "current regtype =
  // previous regtype". kByCategory reproduces that; kByRegion merges only
  // identical regions (finer interpretation, less compression).
  enum class MergePolicy { kByCategory, kByRegion };
  MergePolicy merge_policy = MergePolicy::kByCategory;
  // When a point lies in both a named free-form region (campus, park) and
  // an underlying landuse cell, prefer the named region.
  bool prefer_named_regions = true;
  // Layer granularity: per-stop/move-episode join (the default) or
  // per-GPS-point Algorithm 1 as printed.
  enum class Granularity { kPerEpisode, kPerPoint };
  Granularity granularity = Granularity::kPerEpisode;
};

class RegionAnnotator {
 public:
  // `regions` must outlive the annotator.
  explicit RegionAnnotator(const RegionSet* regions,
                           RegionAnnotatorConfig config = {})
      : regions_(regions), config_(config) {}

  // The most relevant region containing p (kInvalidPlaceId if none).
  core::PlaceId BestRegionFor(const geo::Point& p) const;

  // Region of every GPS point (kInvalidPlaceId where uncovered).
  std::vector<core::PlaceId> ClassifyPoints(
      const core::RawTrajectory& trajectory) const;

  // Algorithm 1: per-point spatial join + tuple merging. The resulting
  // interpretation is named "region".
  core::StructuredSemanticTrajectory AnnotateTrajectory(
      const core::RawTrajectory& trajectory) const;

  // Episode-level variant: annotates each stop/move episode with its
  // dominant region; stop episodes use center containment first.
  core::StructuredSemanticTrajectory AnnotateEpisodes(
      const core::RawTrajectory& trajectory,
      const std::vector<core::Episode>& episodes) const;

  // Dispatches on the configured granularity: AnnotateTrajectory for
  // kPerPoint, AnnotateEpisodes for kPerEpisode.
  core::StructuredSemanticTrajectory Annotate(
      const core::RawTrajectory& trajectory,
      const std::vector<core::Episode>& episodes) const {
    return config_.granularity == RegionAnnotatorConfig::Granularity::kPerPoint
               ? AnnotateTrajectory(trajectory)
               : AnnotateEpisodes(trajectory, episodes);
  }

  // Deadline-aware variants: the per-point classification and the
  // per-episode R*-tree join loops consult `exec` every
  // exec->check_interval iterations and abort with DeadlineExceeded.
  [[nodiscard]] common::Result<core::StructuredSemanticTrajectory> AnnotateTrajectory(
      const core::RawTrajectory& trajectory,
      const common::ExecControl* exec) const;
  [[nodiscard]] common::Result<core::StructuredSemanticTrajectory> AnnotateEpisodes(
      const core::RawTrajectory& trajectory,
      const std::vector<core::Episode>& episodes,
      const common::ExecControl* exec) const;
  [[nodiscard]] common::Result<core::StructuredSemanticTrajectory> Annotate(
      const core::RawTrajectory& trajectory,
      const std::vector<core::Episode>& episodes,
      const common::ExecControl* exec) const {
    return config_.granularity == RegionAnnotatorConfig::Granularity::kPerPoint
               ? AnnotateTrajectory(trajectory, exec)
               : AnnotateEpisodes(trajectory, episodes, exec);
  }

 private:
  void AttachRegionAnnotations(core::PlaceId region_id,
                               core::SemanticEpisode* episode) const;

  const RegionSet* regions_;
  RegionAnnotatorConfig config_;
};

}  // namespace semitri::region

#endif  // SEMITRI_REGION_REGION_ANNOTATOR_H_
