#ifndef SEMITRI_TRAJ_POINT_BATCH_H_
#define SEMITRI_TRAJ_POINT_BATCH_H_

// Structure-of-arrays view of a cleaned trajectory.
//
// The annotation kernels (candidate distances, context-window weights,
// motion features) sweep coordinates and timestamps independently; the
// AoS GpsPoint layout makes every such sweep a strided gather. A
// PointBatch is built once per trajectory run from RawTrajectory and
// threaded through the stage graph (core::AnnotationContext::
// PointsBatch), so the kernels read three contiguous double arrays.
// BuildFrom reuses capacity: a streaming session rebuilds into the same
// storage trajectory after trajectory (the zero steady-state-allocation
// contract, see DESIGN.md "Data plane layout").

#include <cstddef>
#include <span>
#include <vector>

#include "core/types.h"
#include "geo/point.h"

namespace semitri::traj {

// A contiguous [offset, offset + size) window over a PointBatch — the
// per-episode unit the line-annotation kernels operate on. Non-owning;
// valid while the batch is.
struct PointView {
  const double* xs = nullptr;
  const double* ys = nullptr;
  const double* ts = nullptr;
  size_t size = 0;

  bool empty() const { return size == 0; }
  geo::Point point(size_t i) const { return {xs[i], ys[i]}; }
  double time(size_t i) const { return ts[i]; }

  PointView Slice(size_t offset, size_t count) const {
    return {xs + offset, ys + offset, ts + offset, count};
  }
};

class PointBatch {
 public:
  // Rebuilds from `trajectory`, reusing the arrays' capacity.
  void BuildFrom(const core::RawTrajectory& trajectory);

  // Same, from a bare point span (tests, benches); id/object_id are
  // carried through for callers that have them.
  void BuildFrom(std::span<const core::GpsPoint> points,
                 core::TrajectoryId id = 0, core::ObjectId object_id = 0);

  core::TrajectoryId id() const { return id_; }
  core::ObjectId object_id() const { return object_id_; }

  size_t size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }

  std::span<const double> xs() const { return xs_; }
  std::span<const double> ys() const { return ys_; }
  std::span<const double> ts() const { return ts_; }

  geo::Point point(size_t i) const { return {xs_[i], ys_[i]}; }
  double time(size_t i) const { return ts_[i]; }

  PointView View() const { return {xs_.data(), ys_.data(), ts_.data(), size()}; }
  PointView View(size_t offset, size_t count) const {
    return View().Slice(offset, count);
  }

  // Combined capacity currently reserved (steady-state allocation
  // accounting in tests).
  size_t capacity() const {
    return xs_.capacity() + ys_.capacity() + ts_.capacity();
  }

 private:
  core::TrajectoryId id_ = 0;
  core::ObjectId object_id_ = 0;
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<double> ts_;
};

}  // namespace semitri::traj

#endif  // SEMITRI_TRAJ_POINT_BATCH_H_
