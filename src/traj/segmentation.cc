#include "traj/segmentation.h"

#include <algorithm>

#include "common/check.h"

namespace semitri::traj {

std::vector<double> StopMoveSegmenter::PointSpeeds(
    const core::RawTrajectory& t) {
  const auto& pts = t.points;
  std::vector<double> speeds(pts.size(), 0.0);
  for (size_t i = 1; i < pts.size(); ++i) {
    double dt = pts[i].time - pts[i - 1].time;
    speeds[i] =
        dt > 0.0 ? pts[i].position.DistanceTo(pts[i - 1].position) / dt : 0.0;
  }
  if (pts.size() > 1) speeds[0] = speeds[1];
  return speeds;
}

std::vector<bool> StopMoveSegmenter::ClassifyStopsVelocity(
    const core::RawTrajectory& t) const {
  const auto& pts = t.points;
  const size_t n = pts.size();
  std::vector<bool> is_stop(n, false);
  const size_t half = config_.speed_smoothing_half_window;
  std::vector<double> instantaneous;
  if (half == 0) instantaneous = PointSpeeds(t);
  for (size_t i = 0; i < n; ++i) {
    double speed;
    if (half == 0) {
      // Instantaneous consecutive-point speed.
      speed = instantaneous[i];
    } else {
      // Windowed displacement speed: net displacement over ±half
      // samples. Stationary GPS jitter produces near-zero displacement,
      // so dwells do not fragment into spurious micro-moves.
      size_t lo = i >= half ? i - half : 0;
      size_t hi = std::min(n - 1, i + half);
      double dt = pts[hi].time - pts[lo].time;
      speed = dt > 0.0
                  ? pts[hi].position.DistanceTo(pts[lo].position) / dt
                  : 0.0;
    }
    is_stop[i] = speed < config_.velocity_threshold_mps;
  }
  return is_stop;
}

std::vector<bool> StopMoveSegmenter::ClassifyStopsDensity(
    const core::RawTrajectory& t) const {
  const auto& pts = t.points;
  const size_t n = pts.size();
  std::vector<bool> is_stop(n, false);
  size_t i = 0;
  while (i < n) {
    // Grow a cluster [i, j] while every new point stays within the radius
    // of the running centroid.
    geo::Point centroid = pts[i].position;
    size_t j = i;
    while (j + 1 < n) {
      size_t count = j - i + 1;
      if (pts[j + 1].position.DistanceTo(centroid) >
          config_.density_radius_meters) {
        break;
      }
      centroid =
          (centroid * static_cast<double>(count) + pts[j + 1].position) /
          static_cast<double>(count + 1);
      ++j;
    }
    double dwell = pts[j].time - pts[i].time;
    if (dwell >= config_.min_stop_duration_seconds) {
      for (size_t k = i; k <= j; ++k) is_stop[k] = true;
      i = j + 1;
    } else {
      ++i;
    }
  }
  return is_stop;
}

void FinalizeEpisode(const core::RawTrajectory& trajectory,
                     core::Episode* episode) {
  SEMITRI_CHECK(episode->begin < episode->end)
      << "episode [" << episode->begin << ", " << episode->end
      << ") must cover at least one point";
  SEMITRI_CHECK(episode->end <= trajectory.points.size())
      << "episode end " << episode->end << " exceeds trajectory size "
      << trajectory.points.size();
  const auto& pts = trajectory.points;
  episode->time_in = pts[episode->begin].time;
  episode->time_out = pts[episode->end - 1].time;
  geo::Point acc{0.0, 0.0};
  geo::BoundingBox bounds;
  for (size_t i = episode->begin; i < episode->end; ++i) {
    acc = acc + pts[i].position;
    bounds.ExpandToInclude(pts[i].position);
  }
  episode->center = acc / static_cast<double>(episode->num_points());
  episode->bounds = bounds;
}

std::vector<core::Episode> StopMoveSegmenter::Segment(
    const core::RawTrajectory& trajectory) const {
  std::vector<core::Episode> episodes;
  const size_t n = trajectory.points.size();
  if (n == 0) return episodes;

  std::vector<bool> is_stop = config_.policy == StopPolicy::kVelocity
                                  ? ClassifyStopsVelocity(trajectory)
                                  : ClassifyStopsDensity(trajectory);

  // Build maximal runs of identical classification.
  struct Run {
    bool stop;
    size_t begin;
    size_t end;  // exclusive
  };
  std::vector<Run> runs;
  for (size_t i = 0; i < n;) {
    size_t j = i + 1;
    while (j < n && is_stop[j] == is_stop[i]) ++j;
    runs.push_back({is_stop[i], i, j});
    i = j;
  }

  auto run_duration = [&](const Run& r) {
    return trajectory.points[r.end - 1].time - trajectory.points[r.begin].time;
  };
  auto merge_adjacent = [](std::vector<Run>& rs) {
    std::vector<Run> merged;
    for (const Run& r : rs) {
      if (!merged.empty() && merged.back().stop == r.stop) {
        merged.back().end = r.end;
      } else {
        merged.push_back(r);
      }
    }
    rs.swap(merged);
  };

  // Smooth the run sequence to a fixpoint (bounded passes):
  //   1. absorb spurious "move" bursts sandwiched between stop runs
  //      (too short, or going nowhere) so fragmented dwells coalesce;
  //   2. demote stop runs that still do not dwell long enough
  //      (velocity policy only; density enforces dwell while clustering).
  for (int pass = 0; pass < 3; ++pass) {
    merge_adjacent(runs);
    bool changed = false;
    for (size_t i = 0; i < runs.size(); ++i) {
      if (runs[i].stop || i == 0 || i + 1 >= runs.size() ||
          !runs[i - 1].stop || !runs[i + 1].stop) {
        continue;
      }
      double displacement =
          trajectory.points[runs[i].end - 1].position.DistanceTo(
              trajectory.points[runs[i].begin].position);
      if (run_duration(runs[i]) < config_.min_move_duration_seconds ||
          displacement < config_.min_move_displacement_meters) {
        runs[i].stop = true;
        changed = true;
      }
    }
    merge_adjacent(runs);
    if (config_.policy == StopPolicy::kVelocity) {
      for (Run& r : runs) {
        if (r.stop && run_duration(r) < config_.min_stop_duration_seconds) {
          r.stop = false;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  merge_adjacent(runs);
  std::vector<Run>& merged = runs;

  if (config_.emit_begin_end) {
    core::Episode begin;
    begin.kind = core::EpisodeKind::kBegin;
    begin.begin = 0;
    begin.end = 1;
    FinalizeEpisode(trajectory, &begin);
    episodes.push_back(begin);
  }
  for (const Run& r : merged) {
    core::Episode ep;
    ep.kind = r.stop ? core::EpisodeKind::kStop : core::EpisodeKind::kMove;
    ep.begin = r.begin;
    ep.end = r.end;
    FinalizeEpisode(trajectory, &ep);
    episodes.push_back(ep);
  }
  if (config_.emit_begin_end) {
    core::Episode end;
    end.kind = core::EpisodeKind::kEnd;
    end.begin = n - 1;
    end.end = n;
    FinalizeEpisode(trajectory, &end);
    episodes.push_back(end);
  }
  return episodes;
}

}  // namespace semitri::traj
