#include "traj/segmentation.h"

#include <algorithm>

#include "common/check.h"

namespace semitri::traj {

std::vector<double> StopMoveSegmenter::PointSpeeds(
    const core::RawTrajectory& t) {
  const auto& pts = t.points;
  std::vector<double> speeds(pts.size(), 0.0);
  for (size_t i = 1; i < pts.size(); ++i) {
    double dt = pts[i].time - pts[i - 1].time;
    speeds[i] =
        dt > 0.0 ? pts[i].position.DistanceTo(pts[i - 1].position) / dt : 0.0;
  }
  if (pts.size() > 1) speeds[0] = speeds[1];
  return speeds;
}

double WindowedSpeed(const std::vector<core::GpsPoint>& points, size_t lo,
                     size_t hi) {
  double dt = points[hi].time - points[lo].time;
  return dt > 0.0 ? points[hi].position.DistanceTo(points[lo].position) / dt
                  : 0.0;
}

std::vector<bool> StopMoveSegmenter::ClassifyStopsVelocity(
    const core::RawTrajectory& t) const {
  const auto& pts = t.points;
  const size_t n = pts.size();
  std::vector<bool> is_stop(n, false);
  const size_t half = config_.speed_smoothing_half_window;
  std::vector<double> instantaneous;
  if (half == 0) instantaneous = PointSpeeds(t);
  for (size_t i = 0; i < n; ++i) {
    double speed;
    if (half == 0) {
      // Instantaneous consecutive-point speed.
      speed = instantaneous[i];
    } else {
      // Windowed displacement speed: net displacement over ±half
      // samples. Stationary GPS jitter produces near-zero displacement,
      // so dwells do not fragment into spurious micro-moves.
      size_t lo = i >= half ? i - half : 0;
      size_t hi = std::min(n - 1, i + half);
      speed = WindowedSpeed(pts, lo, hi);
    }
    is_stop[i] = speed < config_.velocity_threshold_mps;
  }
  return is_stop;
}

void DensityStopClassifier::Advance(const std::vector<core::GpsPoint>& pts,
                                    size_t available, bool end_of_data) {
  SEMITRI_DCHECK(available <= pts.size());
  while (true) {
    const size_t i = flags_.size();  // start of the current cluster
    if (!growing_) {
      if (i >= available) return;
      // Start a cluster [i, j] at the next undecided point.
      centroid_ = pts[i].position;
      cluster_end_ = i;
      growing_ = true;
    }
    // Grow while every new point stays within the radius of the running
    // centroid — exactly the offline greedy pass, but pausable at the
    // data frontier.
    bool radius_break = false;
    while (cluster_end_ + 1 < available) {
      size_t count = cluster_end_ - i + 1;
      if (pts[cluster_end_ + 1].position.DistanceTo(centroid_) >
          config_.density_radius_meters) {
        radius_break = true;
        break;
      }
      centroid_ = (centroid_ * static_cast<double>(count) +
                   pts[cluster_end_ + 1].position) /
                  static_cast<double>(count + 1);
      ++cluster_end_;
    }
    // Without a radius break the cluster is still open: future points
    // may join it (or end-of-data closes it).
    if (!radius_break && !end_of_data) return;
    double dwell = pts[cluster_end_].time - pts[i].time;
    if (dwell >= config_.min_stop_duration_seconds) {
      flags_.insert(flags_.end(), cluster_end_ - i + 1, true);
    } else {
      // Too-short cluster: only its first point is decided (a move);
      // the scan restarts one point later, as offline.
      flags_.push_back(false);
    }
    growing_ = false;
  }
}

std::vector<bool> StopMoveSegmenter::ClassifyStopsDensity(
    const core::RawTrajectory& t) const {
  DensityStopClassifier classifier(config_);
  classifier.Advance(t.points, t.points.size(), /*end_of_data=*/true);
  return classifier.flags();
}

void FinalizeEpisode(const std::vector<core::GpsPoint>& pts,
                     core::Episode* episode) {
  SEMITRI_CHECK(episode->begin < episode->end)
      << "episode [" << episode->begin << ", " << episode->end
      << ") must cover at least one point";
  SEMITRI_CHECK(episode->end <= pts.size())
      << "episode end " << episode->end << " exceeds trajectory size "
      << pts.size();
  episode->time_in = pts[episode->begin].time;
  episode->time_out = pts[episode->end - 1].time;
  geo::Point acc{0.0, 0.0};
  geo::BoundingBox bounds;
  for (size_t i = episode->begin; i < episode->end; ++i) {
    acc = acc + pts[i].position;
    bounds.ExpandToInclude(pts[i].position);
  }
  episode->center = acc / static_cast<double>(episode->num_points());
  episode->bounds = bounds;
}

void FinalizeEpisode(const core::RawTrajectory& trajectory,
                     core::Episode* episode) {
  FinalizeEpisode(trajectory.points, episode);
}

void SmoothClassifiedRuns(const std::vector<core::GpsPoint>& points,
                          const SegmentationConfig& config,
                          std::vector<ClassifiedRun>* runs_io) {
  std::vector<ClassifiedRun>& runs = *runs_io;
  auto run_duration = [&](const ClassifiedRun& r) {
    return points[r.end - 1].time - points[r.begin].time;
  };
  auto merge_adjacent = [](std::vector<ClassifiedRun>& rs) {
    std::vector<ClassifiedRun> merged;
    for (const ClassifiedRun& r : rs) {
      if (!merged.empty() && merged.back().stop == r.stop) {
        merged.back().end = r.end;
      } else {
        merged.push_back(r);
      }
    }
    rs.swap(merged);
  };

  // Smooth the run sequence to a fixpoint (bounded passes):
  //   1. absorb spurious "move" bursts sandwiched between stop runs
  //      (too short, or going nowhere) so fragmented dwells coalesce;
  //   2. demote stop runs that still do not dwell long enough
  //      (velocity policy only; density enforces dwell while clustering).
  for (int pass = 0; pass < 3; ++pass) {
    merge_adjacent(runs);
    bool changed = false;
    for (size_t i = 0; i < runs.size(); ++i) {
      if (runs[i].stop || i == 0 || i + 1 >= runs.size() ||
          !runs[i - 1].stop || !runs[i + 1].stop) {
        continue;
      }
      double displacement = points[runs[i].end - 1].position.DistanceTo(
          points[runs[i].begin].position);
      if (run_duration(runs[i]) < config.min_move_duration_seconds ||
          displacement < config.min_move_displacement_meters) {
        runs[i].stop = true;
        changed = true;
      }
    }
    merge_adjacent(runs);
    if (config.policy == StopPolicy::kVelocity) {
      for (ClassifiedRun& r : runs) {
        if (r.stop && run_duration(r) < config.min_stop_duration_seconds) {
          r.stop = false;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  merge_adjacent(runs);
}

std::vector<core::Episode> StopMoveSegmenter::Segment(
    const core::RawTrajectory& trajectory) const {
  std::vector<core::Episode> episodes;
  const size_t n = trajectory.points.size();
  if (n == 0) return episodes;

  std::vector<bool> is_stop = config_.policy == StopPolicy::kVelocity
                                  ? ClassifyStopsVelocity(trajectory)
                                  : ClassifyStopsDensity(trajectory);

  // Build maximal runs of identical classification.
  std::vector<ClassifiedRun> runs;
  for (size_t i = 0; i < n;) {
    size_t j = i + 1;
    while (j < n && is_stop[j] == is_stop[i]) ++j;
    runs.push_back({is_stop[i], i, j});
    i = j;
  }

  SmoothClassifiedRuns(trajectory.points, config_, &runs);

  if (config_.emit_begin_end) {
    core::Episode begin;
    begin.kind = core::EpisodeKind::kBegin;
    begin.begin = 0;
    begin.end = 1;
    FinalizeEpisode(trajectory, &begin);
    episodes.push_back(begin);
  }
  for (const ClassifiedRun& r : runs) {
    core::Episode ep;
    ep.kind = r.stop ? core::EpisodeKind::kStop : core::EpisodeKind::kMove;
    ep.begin = r.begin;
    ep.end = r.end;
    FinalizeEpisode(trajectory, &ep);
    episodes.push_back(ep);
  }
  if (config_.emit_begin_end) {
    core::Episode end;
    end.kind = core::EpisodeKind::kEnd;
    end.begin = n - 1;
    end.end = n;
    FinalizeEpisode(trajectory, &end);
    episodes.push_back(end);
  }
  return episodes;
}

void DensityStopClassifier::SaveState(common::StateWriter* w) const {
  w->PutU64(flags_.size());
  for (bool flag : flags_) w->PutBool(flag);
  w->PutBool(growing_);
  w->PutU64(cluster_end_);
  w->PutDouble(centroid_.x);
  w->PutDouble(centroid_.y);
}

common::Status DensityStopClassifier::RestoreState(common::StateReader* r) {
  uint64_t n = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&n));
  if (n > r->remaining()) {
    return common::Status::Corruption("classifier flag count exceeds data");
  }
  flags_.clear();
  flags_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    bool flag = false;
    SEMITRI_RETURN_IF_ERROR(r->GetBool(&flag));
    flags_.push_back(flag);
  }
  SEMITRI_RETURN_IF_ERROR(r->GetBool(&growing_));
  uint64_t cluster_end = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&cluster_end));
  cluster_end_ = static_cast<size_t>(cluster_end);
  SEMITRI_RETURN_IF_ERROR(r->GetDouble(&centroid_.x));
  return r->GetDouble(&centroid_.y);
}

}  // namespace semitri::traj
