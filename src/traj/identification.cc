#include "traj/identification.h"

#include <cmath>

namespace semitri::traj {

std::vector<core::RawTrajectory> TrajectoryIdentifier::Identify(
    core::ObjectId object_id, const std::vector<core::GpsPoint>& stream,
    core::TrajectoryId first_id) const {
  std::vector<core::RawTrajectory> out;
  core::RawTrajectory current;
  current.object_id = object_id;

  auto flush = [&]() {
    if (current.points.size() >= config_.min_points &&
        current.DurationSeconds() >= config_.min_duration_seconds) {
      current.id = first_id + static_cast<core::TrajectoryId>(out.size());
      out.push_back(std::move(current));
    }
    current = core::RawTrajectory();
    current.object_id = object_id;
  };

  for (const core::GpsPoint& p : stream) {
    if (!current.points.empty()) {
      const core::GpsPoint& prev = current.points.back();
      bool gap = config_.max_gap_seconds > 0.0 &&
                 p.time - prev.time > config_.max_gap_seconds;
      bool jump = config_.max_spatial_gap_meters > 0.0 &&
                  p.position.DistanceTo(prev.position) >
                      config_.max_spatial_gap_meters;
      bool new_period =
          config_.period_seconds > 0.0 &&
          PeriodIndex(p.time, config_.period_seconds) !=
              PeriodIndex(prev.time, config_.period_seconds);
      if (gap || jump || new_period) flush();
    }
    current.points.push_back(p);
  }
  flush();
  return out;
}

}  // namespace semitri::traj
