#ifndef SEMITRI_TRAJ_SEGMENTATION_H_
#define SEMITRI_TRAJ_SEGMENTATION_H_

// Stop/move episode computation (Trajectory Computation Layer, step 3).
//
// The paper segments raw trajectories into episodes by "computing
// policies of spatio-temporal co-relations like density, velocity,
// direction" (§3.3). Two policies are implemented:
//
//   * kVelocity — points whose (smoothed) instantaneous speed is below a
//     threshold δ form stop candidates; a candidate run must dwell for a
//     minimum duration to become a stop (the §3.1 example predicate).
//   * kDensity  — a stop is a maximal run of points that stays within a
//     given radius of the run centroid for a minimum duration (the
//     clustering-style policy of Palma et al. / [30]).
//
// Both produce a partition of the trajectory into stop and move episodes
// with merged neighbors and per-episode spatial summaries.

#include <vector>

#include "core/types.h"

namespace semitri::traj {

enum class StopPolicy { kVelocity, kDensity };

struct SegmentationConfig {
  StopPolicy policy = StopPolicy::kVelocity;

  // kVelocity policy: speed threshold δ and minimum dwell.
  double velocity_threshold_mps = 1.0;
  double min_stop_duration_seconds = 120.0;
  // Moving-average half window (samples) applied to speeds before
  // thresholding; 0 disables.
  size_t speed_smoothing_half_window = 2;

  // kDensity policy: spatial radius of a stop cluster.
  double density_radius_meters = 50.0;

  // Moves sandwiched between stops are absorbed into the stop when they
  // are shorter than this...
  double min_move_duration_seconds = 30.0;
  // ...or when their net displacement stays below this (noise bursts
  // during a dwell look like motion but go nowhere).
  double min_move_displacement_meters = 30.0;

  // Emit zero-length Begin/End episodes delimiting the trajectory.
  bool emit_begin_end = false;
};

class StopMoveSegmenter {
 public:
  explicit StopMoveSegmenter(SegmentationConfig config = {})
      : config_(config) {}

  // Partitions `trajectory` into episodes ordered by time. Every point
  // index belongs to exactly one stop or move episode.
  std::vector<core::Episode> Segment(
      const core::RawTrajectory& trajectory) const;

  // Instantaneous speed (m/s) per point; element 0 copies element 1.
  static std::vector<double> PointSpeeds(const core::RawTrajectory& t);

  const SegmentationConfig& config() const { return config_; }

 private:
  std::vector<bool> ClassifyStopsVelocity(
      const core::RawTrajectory& t) const;
  std::vector<bool> ClassifyStopsDensity(const core::RawTrajectory& t) const;

  SegmentationConfig config_;
};

// Fills time_in/time_out/center/bounds of an episode covering
// [episode.begin, episode.end) of `trajectory`.
void FinalizeEpisode(const core::RawTrajectory& trajectory,
                     core::Episode* episode);

}  // namespace semitri::traj

#endif  // SEMITRI_TRAJ_SEGMENTATION_H_
