#ifndef SEMITRI_TRAJ_SEGMENTATION_H_
#define SEMITRI_TRAJ_SEGMENTATION_H_

// Stop/move episode computation (Trajectory Computation Layer, step 3).
//
// The paper segments raw trajectories into episodes by "computing
// policies of spatio-temporal co-relations like density, velocity,
// direction" (§3.3). Two policies are implemented:
//
//   * kVelocity — points whose (smoothed) instantaneous speed is below a
//     threshold δ form stop candidates; a candidate run must dwell for a
//     minimum duration to become a stop (the §3.1 example predicate).
//   * kDensity  — a stop is a maximal run of points that stays within a
//     given radius of the run centroid for a minimum duration (the
//     clustering-style policy of Palma et al. / [30]).
//
// Both produce a partition of the trajectory into stop and move episodes
// with merged neighbors and per-episode spatial summaries.
//
// The building blocks (per-point classification, run assembly, run-level
// smoothing) are exposed so the streaming subsystem
// (stream::EpisodeDetector) can run the *same code* incrementally and
// stay bit-identical to the offline Segment().

#include <vector>

#include "common/serial.h"
#include "common/status.h"
#include "core/types.h"

namespace semitri::traj {

enum class StopPolicy { kVelocity, kDensity };

struct SegmentationConfig {
  StopPolicy policy = StopPolicy::kVelocity;

  // kVelocity policy: speed threshold δ and minimum dwell.
  double velocity_threshold_mps = 1.0;
  double min_stop_duration_seconds = 120.0;
  // Moving-average half window (samples) applied to speeds before
  // thresholding; 0 disables.
  size_t speed_smoothing_half_window = 2;

  // kDensity policy: spatial radius of a stop cluster.
  double density_radius_meters = 50.0;

  // Moves sandwiched between stops are absorbed into the stop when they
  // are shorter than this...
  double min_move_duration_seconds = 30.0;
  // ...or when their net displacement stays below this (noise bursts
  // during a dwell look like motion but go nowhere).
  double min_move_displacement_meters = 30.0;

  // Emit zero-length Begin/End episodes delimiting the trajectory.
  bool emit_begin_end = false;
};

// A maximal run of identically classified points, covering the index
// range [begin, end) of a cleaned trajectory.
struct ClassifiedRun {
  bool stop = false;
  size_t begin = 0;
  size_t end = 0;  // exclusive
};

// Net-displacement speed over the point window [lo, hi]: the kVelocity
// windowed measure (0 when the window spans no time).
double WindowedSpeed(const std::vector<core::GpsPoint>& points, size_t lo,
                     size_t hi);

// Run-level smoothing applied after per-point classification, in place:
// bounded absorb/demote passes that (1) absorb spurious "move" bursts
// sandwiched between stop runs (too short, or going nowhere) so
// fragmented dwells coalesce, and (2) demote stop runs that still do not
// dwell long enough (velocity policy only; density enforces dwell while
// clustering), merging equal neighbors between steps. Shared verbatim by
// the offline Segment() and the incremental stream::EpisodeDetector, so
// both produce the same partition.
void SmoothClassifiedRuns(const std::vector<core::GpsPoint>& points,
                          const SegmentationConfig& config,
                          std::vector<ClassifiedRun>* runs);

// Resumable version of the kDensity per-point classification: grows
// greedy centroid clusters exactly like the offline single pass, but can
// suspend at the end of the currently available prefix and resume when
// more points arrive. Feeding a whole trajectory in one Advance(n, true)
// call reproduces the offline classification bit-for-bit.
class DensityStopClassifier {
 public:
  explicit DensityStopClassifier(const SegmentationConfig& config)
      : config_(config) {}

  // Extends the decided classification using points [0, available) of
  // `points` (which must only ever grow between calls). A point's class
  // is decided once it cannot change regardless of future points; with
  // `end_of_data` the prefix is treated as the whole trajectory and
  // everything is decided.
  void Advance(const std::vector<core::GpsPoint>& points, size_t available,
               bool end_of_data);

  // Decided per-point stop flags ([0, decided())).
  const std::vector<bool>& flags() const { return flags_; }
  size_t decided() const { return flags_.size(); }

  void Reset() {
    flags_.clear();
    growing_ = false;
  }

  // Checkpoint support (stream::EpisodeDetector state): serializes the
  // resumable cluster state bit-exactly — not the config, which the
  // owner reconstructs — so a restored classifier continues the
  // suspended greedy scan exactly where the saved one stopped.
  void SaveState(common::StateWriter* w) const;
  [[nodiscard]] common::Status RestoreState(common::StateReader* r);

 private:
  SegmentationConfig config_;
  std::vector<bool> flags_;
  // In-progress cluster [decided(), cluster_end_] with running centroid,
  // suspended at the data frontier.
  bool growing_ = false;
  size_t cluster_end_ = 0;
  geo::Point centroid_;
};

class StopMoveSegmenter {
 public:
  explicit StopMoveSegmenter(SegmentationConfig config = {})
      : config_(config) {}

  // Partitions `trajectory` into episodes ordered by time. Every point
  // index belongs to exactly one stop or move episode.
  std::vector<core::Episode> Segment(
      const core::RawTrajectory& trajectory) const;

  // Instantaneous speed (m/s) per point; element 0 copies element 1.
  static std::vector<double> PointSpeeds(const core::RawTrajectory& t);

  const SegmentationConfig& config() const { return config_; }

 private:
  std::vector<bool> ClassifyStopsVelocity(
      const core::RawTrajectory& t) const;
  std::vector<bool> ClassifyStopsDensity(const core::RawTrajectory& t) const;

  SegmentationConfig config_;
};

// Fills time_in/time_out/center/bounds of an episode covering
// [episode.begin, episode.end) of `points`.
void FinalizeEpisode(const std::vector<core::GpsPoint>& points,
                     core::Episode* episode);
void FinalizeEpisode(const core::RawTrajectory& trajectory,
                     core::Episode* episode);

}  // namespace semitri::traj

#endif  // SEMITRI_TRAJ_SEGMENTATION_H_
