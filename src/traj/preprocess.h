#ifndef SEMITRI_TRAJ_PREPROCESS_H_
#define SEMITRI_TRAJ_PREPROCESS_H_

// GPS data cleansing (Trajectory Computation Layer, step 1): removal of
// outlier fixes and kernel smoothing of random errors, following the
// hybrid spatio-semantic model the paper builds on ([30], Yan et al.
// ESWC 2010).

#include <vector>

#include "core/types.h"

namespace semitri::traj {

struct PreprocessConfig {
  // A fix implying a speed above this w.r.t. the last kept fix is an
  // outlier ("GPS jump") and is dropped. 0 disables the gate.
  double max_speed_mps = 69.0;  // ~250 km/h
  // Gaussian kernel smoothing over neighboring samples; the kernel is
  // evaluated on time offsets with this bandwidth. 0 disables smoothing.
  double smoothing_bandwidth_seconds = 10.0;
  // Samples on each side entering the smoothing kernel.
  size_t smoothing_half_window = 3;
  // Fixes closer in time than this to their predecessor are duplicates.
  double min_time_step_seconds = 1e-9;
};

// Stateless cleaning operator: duplicate removal, speed-gate outlier
// rejection, Gaussian position smoothing. Timestamps are never modified.
class Preprocessor {
 public:
  explicit Preprocessor(PreprocessConfig config = {}) : config_(config) {}

  core::RawTrajectory Clean(const core::RawTrajectory& input) const;

  // Cleaning stages, exposed for targeted testing.
  std::vector<core::GpsPoint> RemoveDuplicates(
      const std::vector<core::GpsPoint>& points) const;
  std::vector<core::GpsPoint> RemoveOutliers(
      const std::vector<core::GpsPoint>& points) const;
  std::vector<core::GpsPoint> Smooth(
      const std::vector<core::GpsPoint>& points) const;

  const PreprocessConfig& config() const { return config_; }

 private:
  PreprocessConfig config_;
};

}  // namespace semitri::traj

#endif  // SEMITRI_TRAJ_PREPROCESS_H_
