#include "traj/point_batch.h"

namespace semitri::traj {

namespace {

void FillArrays(std::span<const core::GpsPoint> points,
                std::vector<double>* xs, std::vector<double>* ys,
                std::vector<double>* ts) {
  xs->clear();
  ys->clear();
  ts->clear();
  xs->reserve(points.size());
  ys->reserve(points.size());
  ts->reserve(points.size());
  // semitri-lint: allow(exec-checkpoint-coverage) — one O(n) transpose
  // per trajectory at batch-build time, before any governed stage loop.
  for (const core::GpsPoint& p : points) {
    xs->push_back(p.position.x);
    ys->push_back(p.position.y);
    ts->push_back(p.time);
  }
}

}  // namespace

void PointBatch::BuildFrom(const core::RawTrajectory& trajectory) {
  id_ = trajectory.id;
  object_id_ = trajectory.object_id;
  FillArrays(trajectory.points, &xs_, &ys_, &ts_);
}

void PointBatch::BuildFrom(std::span<const core::GpsPoint> points,
                           core::TrajectoryId id, core::ObjectId object_id) {
  id_ = id;
  object_id_ = object_id;
  FillArrays(points, &xs_, &ys_, &ts_);
}

}  // namespace semitri::traj
