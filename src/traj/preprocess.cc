#include "traj/preprocess.h"

#include <cmath>

namespace semitri::traj {

core::RawTrajectory Preprocessor::Clean(
    const core::RawTrajectory& input) const {
  core::RawTrajectory out;
  out.id = input.id;
  out.object_id = input.object_id;
  out.points = Smooth(RemoveOutliers(RemoveDuplicates(input.points)));
  return out;
}

std::vector<core::GpsPoint> Preprocessor::RemoveDuplicates(
    const std::vector<core::GpsPoint>& points) const {
  std::vector<core::GpsPoint> out;
  out.reserve(points.size());
  for (const core::GpsPoint& p : points) {
    if (!out.empty() &&
        p.time - out.back().time < config_.min_time_step_seconds) {
      continue;
    }
    out.push_back(p);
  }
  return out;
}

std::vector<core::GpsPoint> Preprocessor::RemoveOutliers(
    const std::vector<core::GpsPoint>& points) const {
  if (config_.max_speed_mps <= 0.0 || points.size() < 2) return points;
  std::vector<core::GpsPoint> out;
  out.reserve(points.size());
  for (const core::GpsPoint& p : points) {
    if (out.empty()) {
      out.push_back(p);
      continue;
    }
    const core::GpsPoint& prev = out.back();
    double dt = p.time - prev.time;
    if (dt <= 0.0) continue;
    double speed = p.position.DistanceTo(prev.position) / dt;
    if (speed <= config_.max_speed_mps) out.push_back(p);
  }
  return out;
}

std::vector<core::GpsPoint> Preprocessor::Smooth(
    const std::vector<core::GpsPoint>& points) const {
  if (config_.smoothing_bandwidth_seconds <= 0.0 ||
      config_.smoothing_half_window == 0 || points.size() < 3) {
    return points;
  }
  const double two_sigma2 = 2.0 * config_.smoothing_bandwidth_seconds *
                            config_.smoothing_bandwidth_seconds;
  std::vector<core::GpsPoint> out = points;
  const size_t n = points.size();
  const size_t half = config_.smoothing_half_window;
  for (size_t i = 0; i < n; ++i) {
    size_t lo = i >= half ? i - half : 0;
    size_t hi = std::min(n - 1, i + half);
    geo::Point acc{0.0, 0.0};
    double weight_sum = 0.0;
    for (size_t j = lo; j <= hi; ++j) {
      double dt = points[j].time - points[i].time;
      double w = std::exp(-(dt * dt) / two_sigma2);
      acc = acc + points[j].position * w;
      weight_sum += w;
    }
    out[i].position = acc / weight_sum;
  }
  return out;
}

}  // namespace semitri::traj
