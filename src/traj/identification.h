#ifndef SEMITRI_TRAJ_IDENTIFICATION_H_
#define SEMITRI_TRAJ_IDENTIFICATION_H_

// Raw-trajectory identification (Trajectory Computation Layer, step 2):
// splits an object's GPS stream into finite, application-meaningful raw
// trajectories. SeMiTri's experiments use *daily* trajectories with
// additional splitting at long signal gaps.

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/types.h"

namespace semitri::traj {

// Index of the period (e.g. day number) a timestamp falls into. Shared
// by the offline identifier and stream::EpisodeDetector so both split at
// identical period boundaries.
inline int64_t PeriodIndex(double time, double period) {
  return static_cast<int64_t>(std::floor(time / period));
}

struct IdentificationConfig {
  // A recording gap longer than this starts a new raw trajectory
  // (Fig. 2 "Temporal Separations"). 0 disables gap splitting.
  double max_gap_seconds = 30.0 * 60.0;
  // A spatial jump larger than this between consecutive fixes starts a
  // new raw trajectory (Fig. 2 "Spatial Separations" — e.g. the
  // receiver was off during a flight/train leg). 0 disables.
  double max_spatial_gap_meters = 0.0;
  // Split at multiples of this period (daily trajectories). 0 disables.
  double period_seconds = 86400.0;
  // Trajectories with fewer points are discarded as noise.
  size_t min_points = 10;
  // Trajectories shorter than this (seconds) are discarded.
  double min_duration_seconds = 60.0;
};

class TrajectoryIdentifier {
 public:
  explicit TrajectoryIdentifier(IdentificationConfig config = {})
      : config_(config) {}

  // Splits a time-ordered stream into raw trajectories. Trajectory ids
  // are assigned sequentially starting from `first_id`.
  std::vector<core::RawTrajectory> Identify(
      core::ObjectId object_id, const std::vector<core::GpsPoint>& stream,
      core::TrajectoryId first_id = 0) const;

  const IdentificationConfig& config() const { return config_; }

 private:
  IdentificationConfig config_;
};

}  // namespace semitri::traj

#endif  // SEMITRI_TRAJ_IDENTIFICATION_H_
