#ifndef SEMITRI_SEMITRI_H_
#define SEMITRI_SEMITRI_H_

// Umbrella header: the public API of the SeMiTri library (EDBT 2011
// reproduction). Include individual headers for faster builds; include
// this for exploration and prototyping.

// Error model & utilities.
#include "common/clock.h"
#include "common/exec_control.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

// Geometry substrate.
#include "geo/box.h"
#include "geo/latlon.h"
#include "geo/point.h"
#include "geo/polygon.h"
#include "geo/polyline.h"
#include "geo/relations.h"
#include "geo/segment.h"
#include "geo/simplify.h"

// Spatial indexing.
#include "index/grid_index.h"
#include "index/rstar_tree.h"
#include "index/spatial_index.h"

// Data model and pipeline.
#include "core/annotation_context.h"
#include "core/batch.h"
#include "core/circuit_breaker.h"
#include "core/health.h"
#include "core/ingest.h"
#include "core/pipeline.h"
#include "core/stage.h"
#include "core/stages.h"
#include "core/types.h"
#include "core/watchdog.h"

// Trajectory Computation Layer.
#include "traj/identification.h"
#include "traj/preprocess.h"
#include "traj/segmentation.h"

// Online streaming annotation.
#include "stream/annotation_session.h"
#include "stream/episode_detector.h"
#include "stream/session_manager.h"

// Semantic Region Annotation Layer.
#include "region/landuse.h"
#include "region/region_annotator.h"
#include "region/region_set.h"

// Semantic Line Annotation Layer.
#include "road/line_annotator.h"
#include "road/map_matcher.h"
#include "road/road_network.h"
#include "road/router.h"
#include "road/transport_mode.h"

// Semantic Point Annotation Layer.
#include "hmm/hmm.h"
#include "poi/observation_model.h"
#include "poi/point_annotator.h"
#include "poi/poi_set.h"

// Analytics.
#include "analytics/distribution.h"
#include "analytics/latency_profiler.h"
#include "analytics/personal_places.h"
#include "analytics/sequence_mining.h"
#include "analytics/similarity.h"
#include "analytics/timeline.h"
#include "analytics/trajectory_stats.h"

// Storage, I/O and export.
#include "export/html_report.h"
#include "export/kml_writer.h"
#include "io/world_io.h"
#include "store/semantic_trajectory_store.h"

// Synthetic worlds & workloads.
#include "datagen/movement.h"
#include "datagen/presets.h"
#include "datagen/world.h"

#endif  // SEMITRI_SEMITRI_H_
