#include "geo/kernels.h"

#include <cmath>

namespace semitri::geo {

void DistancesToSegments(const double* ax, const double* ay,
                         const double* bx, const double* by, size_t n,
                         double qx, double qy, double* out) {
  // semitri-lint: allow(exec-checkpoint-coverage) — leaf kernel over a
  // caller-bounded candidate batch; the owning matcher loop polls its
  // checkpoint per point.
  for (size_t i = 0; i < n; ++i) {
    // Segment::ClosestParameter, unrolled per lane.
    const double dx = bx[i] - ax[i];
    const double dy = by[i] - ay[i];
    const double len2 = dx * dx + dy * dy;
    double t = 0.0;
    if (len2 != 0.0) {
      t = ((qx - ax[i]) * dx + (qy - ay[i]) * dy) / len2;
      if (t < 0.0) t = 0.0;
      if (t > 1.0) t = 1.0;
    }
    // Segment::ClosestPoint (a + d * t), then Point::DistanceTo.
    const double cx = ax[i] + dx * t;
    const double cy = ay[i] + dy * t;
    out[i] = std::hypot(qx - cx, qy - cy);
  }
}

void DistancesToPoints(const double* xs, const double* ys, size_t n,
                       double qx, double qy, double* out) {
  // semitri-lint: allow(exec-checkpoint-coverage) — leaf kernel over a
  // caller-bounded point batch; governed loops poll around it.
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::hypot(qx - xs[i], qy - ys[i]);
  }
}

}  // namespace semitri::geo
