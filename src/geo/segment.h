#ifndef SEMITRI_GEO_SEGMENT_H_
#define SEMITRI_GEO_SEGMENT_H_

// Line segments and the point–segment distance of SeMiTri Eq. (1):
//
//   d(Q, AiAj) = d(Q, Q')                       if Q' lies on AiAj
//              = min{ d(Q, Ai), d(Q, Aj) }      otherwise
//
// where Q' is the perpendicular projection of Q on the supporting line.
// This metric (rather than raw perpendicular distance) is what makes the
// map matcher robust on dense networks and arbitrary crossings.

#include "geo/box.h"
#include "geo/point.h"

namespace semitri::geo {

struct Segment {
  Point a;
  Point b;

  constexpr Segment() = default;
  constexpr Segment(Point a_in, Point b_in) : a(a_in), b(b_in) {}

  double Length() const { return a.DistanceTo(b); }

  BoundingBox Bounds() const { return BoundingBox::FromPoints(a, b); }

  // Parameter t in [0,1] of the point on the segment closest to q.
  double ClosestParameter(const Point& q) const {
    Point d = b - a;
    double len2 = d.SquaredNorm();
    if (len2 == 0.0) return 0.0;
    double t = (q - a).Dot(d) / len2;
    if (t < 0.0) return 0.0;
    if (t > 1.0) return 1.0;
    return t;
  }

  Point ClosestPoint(const Point& q) const {
    double t = ClosestParameter(q);
    return a + (b - a) * t;
  }

  Point Interpolate(double t) const { return a + (b - a) * t; }

  // SeMiTri Eq. (1): perpendicular distance when the projection falls on
  // the segment, else the distance to the nearer endpoint. Equivalent to
  // the distance to ClosestPoint, implemented directly for clarity.
  double DistanceTo(const Point& q) const { return q.DistanceTo(ClosestPoint(q)); }
};

}  // namespace semitri::geo

#endif  // SEMITRI_GEO_SEGMENT_H_
