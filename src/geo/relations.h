#ifndef SEMITRI_GEO_RELATIONS_H_
#define SEMITRI_GEO_RELATIONS_H_

// Spatial predicates for the region-annotation joins — the paper's §4.1
// mentions that the join predicate θ can combine "directional, distance,
// and topological spatial relations" ([5], Brinkhoff et al.). This
// header provides the standard vocabulary over bounding boxes (the
// filter-step geometry of the join) so applications can configure
// joins beyond plain intersection.

#include "geo/box.h"
#include "geo/point.h"

namespace semitri::geo {

// --- topological (RCC-style over boxes) --------------------------------

// a and b share at least one point.
bool Intersects(const BoundingBox& a, const BoundingBox& b);

// a and b share no point.
bool Disjoint(const BoundingBox& a, const BoundingBox& b);

// a lies entirely inside b (boundary contact allowed).
bool Within(const BoundingBox& a, const BoundingBox& b);

// b lies entirely inside a (the paper's "spatial subsumption").
bool Contains(const BoundingBox& a, const BoundingBox& b);

// a and b intersect, but neither contains the other.
bool Overlaps(const BoundingBox& a, const BoundingBox& b);

// a and b share boundary points only (no interior intersection).
bool Touches(const BoundingBox& a, const BoundingBox& b);

// Equal extents.
bool Equals(const BoundingBox& a, const BoundingBox& b);

// --- distance ----------------------------------------------------------

// Minimum distance between the two boxes (0 when intersecting).
double MinDistance(const BoundingBox& a, const BoundingBox& b);

// True when the boxes lie within `range` meters of each other.
bool WithinDistance(const BoundingBox& a, const BoundingBox& b,
                    double range);

// --- directional (center-based, as usual for extended objects) ----------

bool NorthOf(const BoundingBox& a, const BoundingBox& b);
bool SouthOf(const BoundingBox& a, const BoundingBox& b);
bool EastOf(const BoundingBox& a, const BoundingBox& b);
bool WestOf(const BoundingBox& a, const BoundingBox& b);

// --- combinators ---------------------------------------------------------

enum class SpatialPredicate {
  kIntersects,
  kDisjoint,
  kWithin,
  kContains,
  kOverlaps,
  kTouches,
  kEquals,
  kNorthOf,
  kSouthOf,
  kEastOf,
  kWestOf,
};

const char* SpatialPredicateName(SpatialPredicate predicate);

// Evaluates a named predicate (distance predicates take the separate
// WithinDistance entry point).
bool EvaluatePredicate(SpatialPredicate predicate, const BoundingBox& a,
                       const BoundingBox& b);

}  // namespace semitri::geo

#endif  // SEMITRI_GEO_RELATIONS_H_
