#include "geo/relations.h"

#include <algorithm>

namespace semitri::geo {

bool Intersects(const BoundingBox& a, const BoundingBox& b) {
  return a.Intersects(b);
}

bool Disjoint(const BoundingBox& a, const BoundingBox& b) {
  return !a.Intersects(b);
}

bool Within(const BoundingBox& a, const BoundingBox& b) {
  return b.Contains(a);
}

bool Contains(const BoundingBox& a, const BoundingBox& b) {
  return a.Contains(b);
}

bool Overlaps(const BoundingBox& a, const BoundingBox& b) {
  return a.Intersects(b) && !a.Contains(b) && !b.Contains(a);
}

bool Touches(const BoundingBox& a, const BoundingBox& b) {
  if (!a.Intersects(b)) return false;
  // Interiors intersect iff the overlap has positive area.
  return a.OverlapArea(b) == 0.0;
}

bool Equals(const BoundingBox& a, const BoundingBox& b) {
  return a.min == b.min && a.max == b.max;
}

double MinDistance(const BoundingBox& a, const BoundingBox& b) {
  if (a.Intersects(b)) return 0.0;
  double dx = std::max({a.min.x - b.max.x, 0.0, b.min.x - a.max.x});
  double dy = std::max({a.min.y - b.max.y, 0.0, b.min.y - a.max.y});
  return std::hypot(dx, dy);
}

bool WithinDistance(const BoundingBox& a, const BoundingBox& b,
                    double range) {
  return MinDistance(a, b) <= range;
}

bool NorthOf(const BoundingBox& a, const BoundingBox& b) {
  return a.Center().y > b.Center().y;
}

bool SouthOf(const BoundingBox& a, const BoundingBox& b) {
  return a.Center().y < b.Center().y;
}

bool EastOf(const BoundingBox& a, const BoundingBox& b) {
  return a.Center().x > b.Center().x;
}

bool WestOf(const BoundingBox& a, const BoundingBox& b) {
  return a.Center().x < b.Center().x;
}

const char* SpatialPredicateName(SpatialPredicate predicate) {
  switch (predicate) {
    case SpatialPredicate::kIntersects: return "intersects";
    case SpatialPredicate::kDisjoint: return "disjoint";
    case SpatialPredicate::kWithin: return "within";
    case SpatialPredicate::kContains: return "contains";
    case SpatialPredicate::kOverlaps: return "overlaps";
    case SpatialPredicate::kTouches: return "touches";
    case SpatialPredicate::kEquals: return "equals";
    case SpatialPredicate::kNorthOf: return "north_of";
    case SpatialPredicate::kSouthOf: return "south_of";
    case SpatialPredicate::kEastOf: return "east_of";
    case SpatialPredicate::kWestOf: return "west_of";
  }
  return "unknown";
}

bool EvaluatePredicate(SpatialPredicate predicate, const BoundingBox& a,
                       const BoundingBox& b) {
  switch (predicate) {
    case SpatialPredicate::kIntersects: return Intersects(a, b);
    case SpatialPredicate::kDisjoint: return Disjoint(a, b);
    case SpatialPredicate::kWithin: return Within(a, b);
    case SpatialPredicate::kContains: return Contains(a, b);
    case SpatialPredicate::kOverlaps: return Overlaps(a, b);
    case SpatialPredicate::kTouches: return Touches(a, b);
    case SpatialPredicate::kEquals: return Equals(a, b);
    case SpatialPredicate::kNorthOf: return NorthOf(a, b);
    case SpatialPredicate::kSouthOf: return SouthOf(a, b);
    case SpatialPredicate::kEastOf: return EastOf(a, b);
    case SpatialPredicate::kWestOf: return WestOf(a, b);
  }
  return false;
}

}  // namespace semitri::geo
