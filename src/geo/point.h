#ifndef SEMITRI_GEO_POINT_H_
#define SEMITRI_GEO_POINT_H_

// Planar geometry primitives. SeMiTri's annotation algorithms operate in a
// local metric frame (meters); `geo/latlon.h` converts to/from WGS-84.

#include <cmath>

namespace semitri::geo {

// A point (or vector) in a local planar metric frame, in meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr Point() = default;
  constexpr Point(double x_in, double y_in) : x(x_in), y(y_in) {}

  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  constexpr Point operator*(double s) const { return {x * s, y * s}; }
  constexpr Point operator/(double s) const { return {x / s, y / s}; }
  constexpr bool operator==(const Point& o) const {
    return x == o.x && y == o.y;
  }

  constexpr double Dot(const Point& o) const { return x * o.x + y * o.y; }
  // z-component of the 3-D cross product; >0 when `o` is counter-clockwise
  // of *this.
  constexpr double Cross(const Point& o) const { return x * o.y - y * o.x; }

  double Norm() const { return std::hypot(x, y); }
  constexpr double SquaredNorm() const { return x * x + y * y; }

  double DistanceTo(const Point& o) const { return (*this - o).Norm(); }
  constexpr double SquaredDistanceTo(const Point& o) const {
    return (*this - o).SquaredNorm();
  }
};

constexpr Point operator*(double s, const Point& p) { return p * s; }

}  // namespace semitri::geo

#endif  // SEMITRI_GEO_POINT_H_
