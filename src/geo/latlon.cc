#include "geo/latlon.h"

namespace semitri::geo {

double HaversineDistance(const LatLon& a, const LatLon& b) {
  double lat1 = a.lat * kDegToRad;
  double lat2 = b.lat * kDegToRad;
  double dlat = (b.lat - a.lat) * kDegToRad;
  double dlon = (b.lon - a.lon) * kDegToRad;
  double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
             std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                 std::sin(dlon / 2);
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(s)));
}

}  // namespace semitri::geo
