#ifndef SEMITRI_GEO_POLYLINE_H_
#define SEMITRI_GEO_POLYLINE_H_

// Polylines — road geometries and trajectory traces.

#include <vector>

#include "geo/box.h"
#include "geo/point.h"
#include "geo/segment.h"

namespace semitri::geo {

class Polyline {
 public:
  Polyline() = default;
  explicit Polyline(std::vector<Point> points) : points_(std::move(points)) {}

  const std::vector<Point>& points() const { return points_; }
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const Point& operator[](size_t i) const { return points_[i]; }

  void Append(const Point& p) { points_.push_back(p); }

  double Length() const {
    double len = 0.0;
    for (size_t i = 1; i < points_.size(); ++i) {
      len += points_[i - 1].DistanceTo(points_[i]);
    }
    return len;
  }

  BoundingBox Bounds() const {
    BoundingBox box;
    for (const Point& p : points_) box.ExpandToInclude(p);
    return box;
  }

  // Minimum distance from q to any constituent segment.
  double DistanceTo(const Point& q) const {
    if (points_.empty()) return std::numeric_limits<double>::infinity();
    if (points_.size() == 1) return points_[0].DistanceTo(q);
    double best = std::numeric_limits<double>::infinity();
    for (size_t i = 1; i < points_.size(); ++i) {
      best = std::min(best, Segment(points_[i - 1], points_[i]).DistanceTo(q));
    }
    return best;
  }

  // Point at arc-length `s` from the start (clamped to the ends).
  Point AtArcLength(double s) const {
    if (points_.empty()) return Point();
    if (s <= 0.0) return points_.front();
    for (size_t i = 1; i < points_.size(); ++i) {
      double seg_len = points_[i - 1].DistanceTo(points_[i]);
      if (s <= seg_len && seg_len > 0.0) {
        return Segment(points_[i - 1], points_[i]).Interpolate(s / seg_len);
      }
      s -= seg_len;
    }
    return points_.back();
  }

 private:
  std::vector<Point> points_;
};

}  // namespace semitri::geo

#endif  // SEMITRI_GEO_POLYLINE_H_
