#ifndef SEMITRI_GEO_LATLON_H_
#define SEMITRI_GEO_LATLON_H_

// WGS-84 coordinates and a local equirectangular projection.
//
// The annotation algorithms run in a planar meter frame; raw GPS input is
// (longitude, latitude). LocalProjection converts between them around a
// reference point — accurate to well under GPS noise at city scale, which
// matches how the paper's PostGIS setup treated metric distances.

#include <cmath>

#include "geo/point.h"

namespace semitri::geo {

inline constexpr double kEarthRadiusMeters = 6371008.8;
inline constexpr double kDegToRad = M_PI / 180.0;
inline constexpr double kRadToDeg = 180.0 / M_PI;

struct LatLon {
  double lat = 0.0;  // degrees
  double lon = 0.0;  // degrees
};

// Great-circle distance in meters.
double HaversineDistance(const LatLon& a, const LatLon& b);

// Equirectangular projection centered on a reference coordinate.
class LocalProjection {
 public:
  explicit LocalProjection(LatLon reference)
      : reference_(reference),
        cos_lat_(std::cos(reference.lat * kDegToRad)) {}

  Point ToLocal(const LatLon& ll) const {
    double dx = (ll.lon - reference_.lon) * kDegToRad * cos_lat_ *
                kEarthRadiusMeters;
    double dy = (ll.lat - reference_.lat) * kDegToRad * kEarthRadiusMeters;
    return {dx, dy};
  }

  LatLon ToLatLon(const Point& p) const {
    LatLon ll;
    ll.lat = reference_.lat + (p.y / kEarthRadiusMeters) * kRadToDeg;
    ll.lon = reference_.lon +
             (p.x / (kEarthRadiusMeters * cos_lat_)) * kRadToDeg;
    return ll;
  }

  const LatLon& reference() const { return reference_; }

 private:
  LatLon reference_;
  double cos_lat_;
};

}  // namespace semitri::geo

#endif  // SEMITRI_GEO_LATLON_H_
