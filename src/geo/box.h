#ifndef SEMITRI_GEO_BOX_H_
#define SEMITRI_GEO_BOX_H_

// Axis-aligned bounding boxes, the workhorse of the R*-tree and of the
// spatial-join region annotation (Algorithm 1 uses the episode's bounding
// rectangle or center as its spatial extent).

#include <algorithm>
#include <limits>

#include "geo/point.h"

namespace semitri::geo {

struct BoundingBox {
  Point min{std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity()};
  Point max{-std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity()};

  constexpr BoundingBox() = default;
  constexpr BoundingBox(Point min_in, Point max_in)
      : min(min_in), max(max_in) {}

  static constexpr BoundingBox FromPoint(const Point& p) { return {p, p}; }

  static BoundingBox FromPoints(const Point& a, const Point& b) {
    return {{std::min(a.x, b.x), std::min(a.y, b.y)},
            {std::max(a.x, b.x), std::max(a.y, b.y)}};
  }

  // Exact corner-wise equality (two empty boxes with different inverted
  // corners compare unequal; canonicalize first if that matters).
  constexpr bool operator==(const BoundingBox&) const = default;

  // True for a default-constructed (inverted) box that covers nothing.
  constexpr bool IsEmpty() const { return min.x > max.x || min.y > max.y; }

  constexpr double Width() const { return IsEmpty() ? 0.0 : max.x - min.x; }
  constexpr double Height() const { return IsEmpty() ? 0.0 : max.y - min.y; }
  constexpr double Area() const { return Width() * Height(); }
  // Perimeter / 2; the R*-tree split heuristic minimizes this "margin".
  constexpr double Margin() const { return Width() + Height(); }

  constexpr Point Center() const {
    return {(min.x + max.x) * 0.5, (min.y + max.y) * 0.5};
  }

  constexpr bool Contains(const Point& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  constexpr bool Contains(const BoundingBox& o) const {
    return !o.IsEmpty() && o.min.x >= min.x && o.max.x <= max.x &&
           o.min.y >= min.y && o.max.y <= max.y;
  }

  constexpr bool Intersects(const BoundingBox& o) const {
    return !IsEmpty() && !o.IsEmpty() && min.x <= o.max.x &&
           o.min.x <= max.x && min.y <= o.max.y && o.min.y <= max.y;
  }

  void ExpandToInclude(const Point& p) {
    min.x = std::min(min.x, p.x);
    min.y = std::min(min.y, p.y);
    max.x = std::max(max.x, p.x);
    max.y = std::max(max.y, p.y);
  }

  void ExpandToInclude(const BoundingBox& o) {
    if (o.IsEmpty()) return;
    ExpandToInclude(o.min);
    ExpandToInclude(o.max);
  }

  // Grows the box by `margin` meters on every side.
  BoundingBox Inflated(double margin) const {
    return {{min.x - margin, min.y - margin}, {max.x + margin, max.y + margin}};
  }

  BoundingBox Union(const BoundingBox& o) const {
    BoundingBox out = *this;
    out.ExpandToInclude(o);
    return out;
  }

  // Area of the intersection (0 when disjoint).
  double OverlapArea(const BoundingBox& o) const {
    if (!Intersects(o)) return 0.0;
    double w = std::min(max.x, o.max.x) - std::max(min.x, o.min.x);
    double h = std::min(max.y, o.max.y) - std::max(min.y, o.min.y);
    return w * h;
  }

  // Area increase caused by extending this box to include `o`.
  double Enlargement(const BoundingBox& o) const {
    return Union(o).Area() - Area();
  }

  // Minimum distance from a point to the box (0 when inside).
  double DistanceTo(const Point& p) const {
    double dx = std::max({min.x - p.x, 0.0, p.x - max.x});
    double dy = std::max({min.y - p.y, 0.0, p.y - max.y});
    return std::hypot(dx, dy);
  }
};

}  // namespace semitri::geo

#endif  // SEMITRI_GEO_BOX_H_
