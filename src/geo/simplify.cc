#include "geo/simplify.h"

#include <stack>

#include "geo/segment.h"

namespace semitri::geo {

std::vector<size_t> DouglasPeuckerIndices(const std::vector<Point>& points,
                                          double tolerance_meters) {
  const size_t n = points.size();
  if (n <= 2) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  std::vector<bool> keep(n, false);
  keep.front() = keep.back() = true;

  // Iterative stack form (GPS moves can be long; avoid deep recursion).
  std::stack<std::pair<size_t, size_t>> ranges;
  ranges.push({0, n - 1});
  while (!ranges.empty()) {
    auto [first, last] = ranges.top();
    ranges.pop();
    if (last <= first + 1) continue;
    Segment chord(points[first], points[last]);
    double max_dist = -1.0;
    size_t max_index = first;
    for (size_t i = first + 1; i < last; ++i) {
      double d = chord.DistanceTo(points[i]);
      if (d > max_dist) {
        max_dist = d;
        max_index = i;
      }
    }
    if (max_dist > tolerance_meters) {
      keep[max_index] = true;
      ranges.push({first, max_index});
      ranges.push({max_index, last});
    }
  }
  std::vector<size_t> out;
  for (size_t i = 0; i < n; ++i) {
    if (keep[i]) out.push_back(i);
  }
  return out;
}

Polyline SimplifyPolyline(const Polyline& line, double tolerance_meters) {
  std::vector<size_t> indices =
      DouglasPeuckerIndices(line.points(), tolerance_meters);
  std::vector<Point> kept;
  kept.reserve(indices.size());
  for (size_t i : indices) kept.push_back(line[i]);
  return Polyline(std::move(kept));
}

}  // namespace semitri::geo
