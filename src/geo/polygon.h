#ifndef SEMITRI_GEO_POLYGON_H_
#define SEMITRI_GEO_POLYGON_H_

// Simple polygons (single ring, no holes) — the spatial extent of
// free-form semantic regions (campus, park). Landuse cells use
// BoundingBox directly.

#include <vector>

#include "geo/box.h"
#include "geo/point.h"
#include "geo/segment.h"

namespace semitri::geo {

class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> ring) : ring_(std::move(ring)) {}

  // Axis-aligned rectangle polygon.
  static Polygon FromBox(const BoundingBox& box) {
    return Polygon({box.min,
                    {box.max.x, box.min.y},
                    box.max,
                    {box.min.x, box.max.y}});
  }

  const std::vector<Point>& ring() const { return ring_; }
  size_t size() const { return ring_.size(); }
  bool empty() const { return ring_.empty(); }

  BoundingBox Bounds() const {
    BoundingBox box;
    for (const Point& p : ring_) box.ExpandToInclude(p);
    return box;
  }

  // Signed area (positive when the ring is counter-clockwise).
  double SignedArea() const {
    double twice = 0.0;
    for (size_t i = 0, n = ring_.size(); i < n; ++i) {
      const Point& p = ring_[i];
      const Point& q = ring_[(i + 1) % n];
      twice += p.Cross(q);
    }
    return twice * 0.5;
  }

  double Area() const { return std::abs(SignedArea()); }

  // Even–odd (ray casting) containment test; boundary points count as
  // inside for the vertical-edge crossings this rule covers.
  bool Contains(const Point& p) const {
    bool inside = false;
    for (size_t i = 0, n = ring_.size(), j = n - 1; i < n; j = i++) {
      const Point& pi = ring_[i];
      const Point& pj = ring_[j];
      bool crosses = (pi.y > p.y) != (pj.y > p.y);
      if (crosses) {
        double x_at_y = pj.x + (pi.x - pj.x) * (p.y - pj.y) / (pi.y - pj.y);
        if (p.x < x_at_y) inside = !inside;
      }
    }
    return inside;
  }

  // Distance from a point to the polygon boundary (0 if on it).
  double BoundaryDistanceTo(const Point& p) const {
    double best = std::numeric_limits<double>::infinity();
    for (size_t i = 0, n = ring_.size(); i < n; ++i) {
      Segment edge(ring_[i], ring_[(i + 1) % n]);
      best = std::min(best, edge.DistanceTo(p));
    }
    return best;
  }

 private:
  std::vector<Point> ring_;
};

}  // namespace semitri::geo

#endif  // SEMITRI_GEO_POLYGON_H_
