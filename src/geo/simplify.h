#ifndef SEMITRI_GEO_SIMPLIFY_H_
#define SEMITRI_GEO_SIMPLIFY_H_

// Polyline simplification (Douglas-Peucker). Used to compress move
// episodes for storage/export: the semantic trajectory store keeps the
// semantic episodes, and the raw geometry of a move can be thinned to a
// tolerance without affecting its annotations.

#include <vector>

#include "geo/point.h"
#include "geo/polyline.h"

namespace semitri::geo {

// Indices (into `points`, ascending, always including first and last)
// of the Douglas-Peucker simplification with the given tolerance in
// meters.
std::vector<size_t> DouglasPeuckerIndices(const std::vector<Point>& points,
                                          double tolerance_meters);

// Convenience: the simplified polyline itself.
Polyline SimplifyPolyline(const Polyline& line, double tolerance_meters);

}  // namespace semitri::geo

#endif  // SEMITRI_GEO_SIMPLIFY_H_
