#ifndef SEMITRI_GEO_KERNELS_H_
#define SEMITRI_GEO_KERNELS_H_

// Batched geometry kernels over structure-of-arrays inputs.
//
// These are the contiguous-loop forms of the scalar primitives in
// point.h / segment.h, written so the per-lane arithmetic is
// bit-identical to the scalar code (same operations, same order, same
// std::hypot for the final norm). Callers gather their working set into
// flat arrays (see road::MatchScratch) and sweep once; see DESIGN.md
// "Data plane layout" for the kernel-writing rules.

#include <cstddef>

namespace semitri::geo {

// Eq. (1) point-to-segment distance from (qx, qy) to each of the n
// segments (ax[i], ay[i])–(bx[i], by[i]); out[i] = d(Q, AiBi). Exactly
// Segment::DistanceTo(q) per lane: projection parameter clamped to
// [0, 1], then std::hypot to the closest point.
void DistancesToSegments(const double* ax, const double* ay,
                         const double* bx, const double* by, size_t n,
                         double qx, double qy, double* out);

// Euclidean distance from (qx, qy) to each of the n points
// (xs[i], ys[i]); out[i] = std::hypot(qx - xs[i], qy - ys[i]),
// bit-identical to Point::DistanceTo per lane.
void DistancesToPoints(const double* xs, const double* ys, size_t n,
                       double qx, double qy, double* out);

}  // namespace semitri::geo

#endif  // SEMITRI_GEO_KERNELS_H_
