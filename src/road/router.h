#ifndef SEMITRI_ROAD_ROUTER_H_
#define SEMITRI_ROAD_ROUTER_H_

// Shortest-path routing over a RoadNetwork (Dijkstra with a per-query
// segment filter). The movement simulator plans trips with it — walk
// legs on walkable segments, metro legs on rail, bus legs on the road
// network — and downstream code uses it for reachability checks.

#include <functional>
#include <vector>

#include "common/status.h"
#include "road/road_network.h"

namespace semitri::road {

// Returns true when a segment may be traversed by the current query.
using SegmentFilter = std::function<bool(const RoadSegment&)>;

struct RoutePath {
  // Node sequence from origin to destination (inclusive).
  std::vector<NodeId> nodes;
  // Segment traversed between nodes[i] and nodes[i+1].
  std::vector<core::PlaceId> segments;
  double length_meters = 0.0;

  bool empty() const { return nodes.empty(); }
};

class Router {
 public:
  // `network` must outlive the router.
  explicit Router(const RoadNetwork* network) : network_(network) {}

  // Dijkstra from `from` to `to` over segments passing `filter`
  // (nullptr = all). NotFound when unreachable.
  [[nodiscard]] common::Result<RoutePath> ShortestPath(NodeId from, NodeId to,
                                         const SegmentFilter& filter) const;

  [[nodiscard]] common::Result<RoutePath> ShortestPath(NodeId from, NodeId to) const {
    return ShortestPath(from, to, nullptr);
  }

  // Nearest network node to `p` among nodes incident to at least one
  // segment passing `filter` (nullptr = all). -1 when none.
  NodeId NearestNode(const geo::Point& p, const SegmentFilter& filter) const;

  NodeId NearestNode(const geo::Point& p) const {
    return NearestNode(p, nullptr);
  }

 private:
  const RoadNetwork* network_;
};

// Standard filters for the four paper modes.
SegmentFilter WalkFilter();
SegmentFilter BicycleFilter();
SegmentFilter BusFilter();
SegmentFilter MetroFilter();
SegmentFilter CarFilter();

}  // namespace semitri::road

#endif  // SEMITRI_ROAD_ROUTER_H_
