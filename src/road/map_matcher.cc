#include "road/map_matcher.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"

namespace semitri::road {

double GlobalMapMatcher::MedianSpacing(
    std::span<const core::GpsPoint> points) {
  if (points.size() < 2) return 1.0;
  std::vector<double> spacings;
  spacings.reserve(points.size() - 1);
  // semitri-lint: allow(exec-checkpoint-coverage) — one O(n) spacing
  // scan during setup, before the deadline-governed matching starts.
  for (size_t i = 1; i < points.size(); ++i) {
    spacings.push_back(
        points[i].position.DistanceTo(points[i - 1].position));
  }
  size_t mid = spacings.size() / 2;
  std::nth_element(spacings.begin(), spacings.begin() + mid, spacings.end());
  double median = spacings[mid];
  return median > 1e-6 ? median : 1.0;
}

std::vector<MatchedPoint> GlobalMapMatcher::MatchPoints(
    std::span<const core::GpsPoint> points) const {
  common::Result<std::vector<MatchedPoint>> result =
      MatchPoints(points, /*exec=*/nullptr);
  // Unbounded runs cannot hit the only error path (DeadlineExceeded).
  SEMITRI_CHECK(result.ok()) << result.status().message();
  return std::move(result).value();
}

common::Result<std::vector<MatchedPoint>> GlobalMapMatcher::MatchPoints(
    std::span<const core::GpsPoint> points,
    const common::ExecControl* exec) const {
  const size_t n = points.size();
  common::ExecCheckpoint checkpoint(exec);
  std::vector<MatchedPoint> out(n);
  if (n == 0) return out;

  const double spacing = MedianSpacing(points);
  const double radius_m = config_.view_radius * spacing;
  const double sigma_m = config_.sigma_ratio * radius_m;
  const double two_sigma2 = 2.0 * sigma_m * sigma_m;

  // Per-point candidate sets and localScores (Eq. 2). localScore is
  // dmin/d in (0, 1], 1 for the closest candidate.
  std::vector<std::unordered_map<core::PlaceId, double>> local(n);
  for (size_t i = 0; i < n; ++i) {
    SEMITRI_RETURN_IF_ERROR(checkpoint.Check("map_match_candidates"));
    std::vector<core::PlaceId> candidates = network_->CandidateSegments(
        points[i].position, config_.candidate_radius_meters);
    if (candidates.empty()) continue;
    double dmin = std::numeric_limits<double>::infinity();
    std::vector<double> dists(candidates.size());
    for (size_t c = 0; c < candidates.size(); ++c) {
      // Floor d so a point exactly on a segment still yields the finite
      // ratio dmin/d = 1 for that segment (Eq. 2 is undefined at d = 0).
      dists[c] = std::max(
          network_->segment(candidates[c]).shape.DistanceTo(
              points[i].position),
          1e-3);
      dmin = std::min(dmin, dists[c]);
    }
    auto& scores = local[i];
    for (size_t c = 0; c < candidates.size(); ++c) {
      scores[candidates[c]] = dmin / dists[c];
    }
  }

  // globalScore per point over its candidates (Eq. 3–4).
  for (size_t i = 0; i < n; ++i) {
    SEMITRI_RETURN_IF_ERROR(checkpoint.Check("map_match_global_score"));
    if (local[i].empty()) {
      out[i].snapped = points[i].position;
      continue;
    }
    // Context window: neighbors within spatial radius R of Q (bounded).
    struct Neighbor {
      size_t index;
      double weight;
    };
    std::vector<Neighbor> window;
    window.push_back({i, 1.0});  // w0 = exp(0) = 1
    for (size_t k = 1; k <= config_.max_window_points; ++k) {
      bool any = false;
      if (i >= k) {
        double d = points[i].position.DistanceTo(points[i - k].position);
        if (d < radius_m) {
          window.push_back(
              {i - k, std::exp(-(d * d) / two_sigma2)});
          any = true;
        }
      }
      if (i + k < n) {
        double d = points[i].position.DistanceTo(points[i + k].position);
        if (d < radius_m) {
          window.push_back({i + k, std::exp(-(d * d) / two_sigma2)});
          any = true;
        }
      }
      if (!any) break;  // both directions left the view radius
    }

    core::PlaceId best_seg = core::kInvalidPlaceId;
    double best_score = -1.0;
    for (const auto& [seg, local_score] : local[i]) {
      double num = 0.0;
      double den = 0.0;
      for (const Neighbor& nb : window) {
        den += nb.weight;
        auto it = local[nb.index].find(seg);
        if (it != local[nb.index].end()) num += nb.weight * it->second;
      }
      double score = den > 0.0 ? num / den : local_score;
      if (score > best_score ||
          (score == best_score && seg < best_seg)) {
        best_score = score;
        best_seg = seg;
      }
    }
    // local[i] is non-empty here, so some candidate must have won: the
    // segment lookup below would be out of bounds on the sentinel id.
    SEMITRI_CHECK(best_seg != core::kInvalidPlaceId)
        << "globalScore selected no segment for point " << i << " with "
        << local[i].size() << " candidates";
    out[i].segment = best_seg;
    out[i].score = best_score;
    out[i].snapped =
        network_->segment(best_seg).shape.ClosestPoint(points[i].position);
  }
  return out;
}

std::vector<MatchedPoint> GeometricMapMatcher::MatchPoints(
    std::span<const core::GpsPoint> points) const {
  std::vector<MatchedPoint> out(points.size());
  // semitri-lint: allow(exec-checkpoint-coverage) — const helper with
  // no ExecControl in scope; the deadline-aware Match() entry point
  // polls around each window before delegating here.
  for (size_t i = 0; i < points.size(); ++i) {
    core::PlaceId seg = network_->NearestSegment(points[i].position);
    out[i].segment = seg;
    if (seg != core::kInvalidPlaceId) {
      out[i].snapped =
          network_->segment(seg).shape.ClosestPoint(points[i].position);
      out[i].score = 1.0;
    } else {
      out[i].snapped = points[i].position;
    }
  }
  return out;
}

double MatchingAccuracy(const std::vector<MatchedPoint>& matches,
                        const std::vector<core::PlaceId>& ground_truth) {
  size_t considered = 0;
  size_t correct = 0;
  size_t n = std::min(matches.size(), ground_truth.size());
  for (size_t i = 0; i < n; ++i) {
    if (ground_truth[i] == core::kInvalidPlaceId) continue;
    ++considered;
    if (matches[i].segment == ground_truth[i]) ++correct;
  }
  return considered == 0
             ? 0.0
             : static_cast<double>(correct) / static_cast<double>(considered);
}

}  // namespace semitri::road
