#include "road/map_matcher.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "geo/kernels.h"

namespace semitri::road {

double GlobalMapMatcher::MedianSpacing(const traj::PointView& pts,
                                       std::vector<double>* scratch) {
  if (pts.size < 2) return 1.0;
  std::vector<double> local;
  std::vector<double>& spacings = scratch != nullptr ? *scratch : local;
  spacings.clear();
  spacings.reserve(pts.size - 1);
  // semitri-lint: allow(exec-checkpoint-coverage) — one O(n) spacing
  // scan during setup, before the deadline-governed matching starts.
  for (size_t i = 1; i < pts.size; ++i) {
    spacings.push_back(
        std::hypot(pts.xs[i] - pts.xs[i - 1], pts.ys[i] - pts.ys[i - 1]));
  }
  size_t mid = spacings.size() / 2;
  std::nth_element(spacings.begin(), spacings.begin() + mid, spacings.end());
  double median = spacings[mid];
  return median > 1e-6 ? median : 1.0;
}

std::vector<MatchedPoint> GlobalMapMatcher::MatchPoints(
    const traj::PointView& pts) const {
  std::vector<MatchedPoint> out;
  common::Status status =
      MatchPoints(pts, /*exec=*/nullptr, /*scratch=*/nullptr, &out);
  // Unbounded runs cannot hit the only error path (DeadlineExceeded).
  SEMITRI_CHECK(status.ok()) << status.message();
  return out;
}

common::Status GlobalMapMatcher::MatchPoints(
    const traj::PointView& pts, const common::ExecControl* exec,
    MatchScratch* scratch, std::vector<MatchedPoint>* out) const {
  const size_t n = pts.size;
  common::ExecCheckpoint checkpoint(exec);
  out->clear();
  out->resize(n);
  if (n == 0) return common::Status::OK();

  MatchScratch local;
  MatchScratch& s = scratch != nullptr ? *scratch : local;

  const double spacing = MedianSpacing(pts, &s.spacings);
  const double radius_m = config_.view_radius * spacing;
  const double sigma_m = config_.sigma_ratio * radius_m;
  const double two_sigma2 = 2.0 * sigma_m * sigma_m;

  // Pass 1 — per-point candidate sets and localScores (Eq. 2) into the
  // CSR table. localScore is dmin/d in (0, 1], 1 for the closest
  // candidate. Rows are sorted by segment id so pass 2 can look
  // neighbors' scores up by binary search.
  const std::span<const double> net_ax = network_->seg_ax();
  const std::span<const double> net_ay = network_->seg_ay();
  const std::span<const double> net_bx = network_->seg_bx();
  const std::span<const double> net_by = network_->seg_by();
  // Consecutive points share one spatial-index query: a group of points
  // within `radius` of its anchor is served by a single anchor query
  // with the radius inflated by the group spread (triangle inequality
  // on the point-to-segment metric, plus a 1e-6 m guard against
  // boundary rounding), then refined per point with the exact batched
  // distances. Row membership, score values and their order are
  // bit-identical to a query-per-point pass.
  s.row_begin.clear();
  s.cand_ids.clear();
  s.cand_scores.clear();
  const double radius = config_.candidate_radius_meters;
  constexpr size_t kMaxGroupPoints = 16;
  size_t group_start = 0;
  while (group_start < n) {
    size_t group_end = group_start + 1;
    double spread = 0.0;
    while (group_end < n && group_end - group_start < kMaxGroupPoints) {
      double d = std::hypot(pts.xs[group_end] - pts.xs[group_start],
                            pts.ys[group_end] - pts.ys[group_start]);
      if (d > radius) break;
      spread = std::max(spread, d);
      ++group_end;
    }
    network_->CandidateSegments(pts.point(group_start),
                                radius + spread + 1e-6, &s.candidates);
    std::sort(s.candidates.begin(), s.candidates.end());
    const size_t m = s.candidates.size();
    s.ax.resize(m);
    s.ay.resize(m);
    s.bx.resize(m);
    s.by.resize(m);
    s.dists.resize(m);
    for (size_t c = 0; c < m; ++c) {
      const size_t seg = static_cast<size_t>(s.candidates[c]);
      s.ax[c] = net_ax[seg];
      s.ay[c] = net_ay[seg];
      s.bx[c] = net_bx[seg];
      s.by[c] = net_by[seg];
    }
    for (size_t i = group_start; i < group_end; ++i) {
      SEMITRI_RETURN_IF_ERROR(checkpoint.Check("map_match_candidates"));
      s.row_begin.push_back(s.cand_ids.size());
      if (m == 0) continue;
      geo::DistancesToSegments(s.ax.data(), s.ay.data(), s.bx.data(),
                               s.by.data(), m, pts.xs[i], pts.ys[i],
                               s.dists.data());
      const size_t row_first = s.cand_ids.size();
      double dmin = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < m; ++c) {
        // Keep only this point's true neighbors (Algorithm 2's
        // candidateSegs), then floor d so a point exactly on a segment
        // still yields the finite ratio dmin/d = 1 for that segment
        // (Eq. 2 is undefined at d = 0).
        if (s.dists[c] > radius) continue;
        double d = std::max(s.dists[c], 1e-3);
        dmin = std::min(dmin, d);
        s.cand_ids.push_back(s.candidates[c]);
        s.cand_scores.push_back(d);
      }
      for (size_t c = row_first; c < s.cand_scores.size(); ++c) {
        s.cand_scores[c] = dmin / s.cand_scores[c];
      }
    }
    group_start = group_end;
  }
  s.row_begin.push_back(s.cand_ids.size());

  // Pass 2 — globalScore per point over its candidates (Eq. 3–4).
  for (size_t i = 0; i < n; ++i) {
    SEMITRI_RETURN_IF_ERROR(checkpoint.Check("map_match_global_score"));
    const size_t row_first = s.row_begin[i];
    const size_t row_last = s.row_begin[i + 1];
    if (row_first == row_last) {
      (*out)[i].snapped = pts.point(i);
      continue;
    }
    // Context window: neighbors within spatial radius R of Q (bounded).
    s.window_index.clear();
    s.window_weight.clear();
    s.window_index.push_back(i);
    s.window_weight.push_back(1.0);  // w0 = exp(0) = 1
    for (size_t k = 1; k <= config_.max_window_points; ++k) {
      bool any = false;
      if (i >= k) {
        double d = std::hypot(pts.xs[i] - pts.xs[i - k],
                              pts.ys[i] - pts.ys[i - k]);
        if (d < radius_m) {
          s.window_index.push_back(i - k);
          s.window_weight.push_back(std::exp(-(d * d) / two_sigma2));
          any = true;
        }
      }
      if (i + k < n) {
        double d = std::hypot(pts.xs[i] - pts.xs[i + k],
                              pts.ys[i] - pts.ys[i + k]);
        if (d < radius_m) {
          s.window_index.push_back(i + k);
          s.window_weight.push_back(std::exp(-(d * d) / two_sigma2));
          any = true;
        }
      }
      if (!any) break;  // both directions left the view radius
    }

    // Accumulate every candidate's Eq. 3 numerator in one sorted-row
    // merge per window neighbor instead of a binary search per
    // (candidate, neighbor) pair. Each num[c] still receives its
    // contributions in window order and den is the same window-order
    // sum, so the floating-point result is bit-identical to the
    // per-candidate inner loop this replaces.
    const size_t row_size = row_last - row_first;
    const size_t window_size = s.window_index.size();
    s.num.assign(row_size, 0.0);
    double den = 0.0;
    for (size_t w = 0; w < window_size; ++w) {
      const double weight = s.window_weight[w];
      den += weight;
      size_t a = row_first;
      size_t b = s.row_begin[s.window_index[w]];
      const size_t b_end = s.row_begin[s.window_index[w] + 1];
      while (a < row_last && b < b_end) {
        if (s.cand_ids[a] < s.cand_ids[b]) {
          ++a;
        } else if (s.cand_ids[b] < s.cand_ids[a]) {
          ++b;
        } else {
          s.num[a - row_first] += weight * s.cand_scores[b];
          ++a;
          ++b;
        }
      }
    }
    core::PlaceId best_seg = core::kInvalidPlaceId;
    double best_score = -1.0;
    for (size_t c = 0; c < row_size; ++c) {
      const core::PlaceId seg = s.cand_ids[row_first + c];
      double score =
          den > 0.0 ? s.num[c] / den : s.cand_scores[row_first + c];
      if (score > best_score || (score == best_score && seg < best_seg)) {
        best_score = score;
        best_seg = seg;
      }
    }
    // The row is non-empty here, so some candidate must have won: the
    // segment lookup below would be out of bounds on the sentinel id.
    SEMITRI_CHECK(best_seg != core::kInvalidPlaceId)
        << "globalScore selected no segment for point " << i << " with "
        << (row_last - row_first) << " candidates";
    (*out)[i].segment = best_seg;
    (*out)[i].score = best_score;
    (*out)[i].snapped =
        network_->segment(best_seg).shape.ClosestPoint(pts.point(i));
  }
  return common::Status::OK();
}

std::vector<MatchedPoint> GeometricMapMatcher::MatchPoints(
    const traj::PointView& pts) const {
  std::vector<MatchedPoint> out(pts.size);
  // semitri-lint: allow(exec-checkpoint-coverage) — const helper with
  // no ExecControl in scope; the deadline-aware Match() entry point
  // polls around each window before delegating here.
  for (size_t i = 0; i < pts.size; ++i) {
    core::PlaceId seg = network_->NearestSegment(pts.point(i));
    out[i].segment = seg;
    if (seg != core::kInvalidPlaceId) {
      out[i].snapped =
          network_->segment(seg).shape.ClosestPoint(pts.point(i));
      out[i].score = 1.0;
    } else {
      out[i].snapped = pts.point(i);
    }
  }
  return out;
}

double MatchingAccuracy(const std::vector<MatchedPoint>& matches,
                        const std::vector<core::PlaceId>& ground_truth) {
  size_t considered = 0;
  size_t correct = 0;
  size_t n = std::min(matches.size(), ground_truth.size());
  for (size_t i = 0; i < n; ++i) {
    if (ground_truth[i] == core::kInvalidPlaceId) continue;
    ++considered;
    if (matches[i].segment == ground_truth[i]) ++correct;
  }
  return considered == 0
             ? 0.0
             : static_cast<double>(correct) / static_cast<double>(considered);
}

}  // namespace semitri::road
