#include "road/router.h"

#include <limits>
#include <queue>

namespace semitri::road {

common::Result<RoutePath> Router::ShortestPath(
    NodeId from, NodeId to, const SegmentFilter& filter) const {
  const size_t n = network_->num_nodes();
  if (from < 0 || to < 0 || static_cast<size_t>(from) >= n ||
      static_cast<size_t>(to) >= n) {
    return common::Status::InvalidArgument("node id out of range");
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<NodeId> prev_node(n, -1);
  std::vector<core::PlaceId> prev_segment(n, core::kInvalidPlaceId);

  using QueueItem = std::pair<double, NodeId>;
  std::priority_queue<QueueItem, std::vector<QueueItem>,
                      std::greater<QueueItem>>
      frontier;
  dist[static_cast<size_t>(from)] = 0.0;
  frontier.push({0.0, from});
  while (!frontier.empty()) {
    auto [d, u] = frontier.top();
    frontier.pop();
    if (d > dist[static_cast<size_t>(u)]) continue;
    if (u == to) break;
    for (core::PlaceId seg_id : network_->SegmentsAtNode(u)) {
      const RoadSegment& seg = network_->segment(seg_id);
      if (filter && !filter(seg)) continue;
      NodeId v = seg.from == u ? seg.to : seg.from;
      double nd = d + seg.Length();
      if (nd < dist[static_cast<size_t>(v)]) {
        dist[static_cast<size_t>(v)] = nd;
        prev_node[static_cast<size_t>(v)] = u;
        prev_segment[static_cast<size_t>(v)] = seg_id;
        frontier.push({nd, v});
      }
    }
  }
  if (dist[static_cast<size_t>(to)] == kInf) {
    return common::Status::NotFound("destination unreachable");
  }
  RoutePath path;
  path.length_meters = dist[static_cast<size_t>(to)];
  for (NodeId v = to; v != from; v = prev_node[static_cast<size_t>(v)]) {
    path.nodes.push_back(v);
    path.segments.push_back(prev_segment[static_cast<size_t>(v)]);
  }
  path.nodes.push_back(from);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.segments.begin(), path.segments.end());
  return path;
}

NodeId Router::NearestNode(const geo::Point& p,
                           const SegmentFilter& filter) const {
  NodeId best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < network_->num_nodes(); ++i) {
    NodeId id = static_cast<NodeId>(i);
    if (filter) {
      bool usable = false;
      for (core::PlaceId seg_id : network_->SegmentsAtNode(id)) {
        if (filter(network_->segment(seg_id))) {
          usable = true;
          break;
        }
      }
      if (!usable) continue;
    } else if (network_->SegmentsAtNode(id).empty()) {
      continue;
    }
    double d = network_->node(id).SquaredDistanceTo(p);
    if (d < best_dist) {
      best_dist = d;
      best = id;
    }
  }
  return best;
}

SegmentFilter WalkFilter() {
  return [](const RoadSegment& s) { return IsRoadTypeWalkable(s.type); };
}

SegmentFilter BicycleFilter() {
  return [](const RoadSegment& s) {
    return s.type != RoadType::kHighway && s.type != RoadType::kRailMetro;
  };
}

SegmentFilter BusFilter() {
  return [](const RoadSegment& s) {
    return s.type == RoadType::kHighway || s.type == RoadType::kArterial ||
           s.type == RoadType::kResidential;
  };
}

SegmentFilter MetroFilter() {
  return [](const RoadSegment& s) { return s.type == RoadType::kRailMetro; };
}

SegmentFilter CarFilter() {
  return [](const RoadSegment& s) {
    return s.type == RoadType::kHighway || s.type == RoadType::kArterial ||
           s.type == RoadType::kResidential;
  };
}

}  // namespace semitri::road
