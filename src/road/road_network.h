#ifndef SEMITRI_ROAD_ROAD_NETWORK_H_
#define SEMITRI_ROAD_ROAD_NETWORK_H_

// Road networks (P_line, Def. 2): typed, connected segment sets indexed
// by an R*-tree, supporting the candidate-segment retrieval of the
// global map matcher (Algorithm 2 selects only neighboring segments).

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/types.h"
#include "geo/segment.h"
#include "index/spatial_index.h"

namespace semitri::road {

using NodeId = int64_t;

// Road classes; chosen to cover what transport-mode inference needs
// (which network a walker / cyclist / bus / metro can use).
enum class RoadType {
  kHighway,      // motorways — cars/buses, high speed
  kArterial,     // major city roads — cars, bus routes
  kResidential,  // minor roads
  kFootway,      // pedestrian paths (parks, campus walkways)
  kCycleway,     // bicycle paths
  kRailMetro,    // metro / light-rail tracks
};

const char* RoadTypeName(RoadType type);

// Whether a transport network of this type is reachable on foot (used by
// mode inference to sanity-check walking on rail).
bool IsRoadTypeWalkable(RoadType type);

struct RoadSegment {
  core::PlaceId id = core::kInvalidPlaceId;
  NodeId from = -1;
  NodeId to = -1;
  RoadType type = RoadType::kResidential;
  std::string name;  // street name ("Ch. Veilloud"); may repeat per street
  geo::Segment shape;

  double Length() const { return shape.Length(); }
};

class RoadNetwork {
 public:
  // `index_config` selects the spatial-index backend for the network.
  explicit RoadNetwork(index::SpatialIndexConfig index_config = {});

  NodeId AddNode(const geo::Point& position);
  core::PlaceId AddSegment(NodeId from, NodeId to, RoadType type,
                           std::string name = "");

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_segments() const { return segments_.size(); }
  const geo::Point& node(NodeId id) const {
    return nodes_[static_cast<size_t>(id)];
  }
  const RoadSegment& segment(core::PlaceId id) const {
    return segments_[static_cast<size_t>(id)];
  }
  const std::vector<RoadSegment>& segments() const { return segments_; }

  double TotalLengthMeters() const;

  // Segments whose bounds lie within `radius` of p (R*-tree filtered) —
  // candidateSegs(Q) of Algorithm 2.
  std::vector<core::PlaceId> CandidateSegments(const geo::Point& p,
                                               double radius) const;

  // Allocation-free form: clears and refills `out`, reusing its
  // capacity (the map-matcher hot loop calls this once per point).
  void CandidateSegments(const geo::Point& p, double radius,
                         std::vector<core::PlaceId>* out) const;

  // Flat endpoint arrays (SoA mirror of segments()[id].shape), indexed
  // by segment id: segment id runs (seg_ax()[id], seg_ay()[id]) to
  // (seg_bx()[id], seg_by()[id]). The batched distance kernel
  // (geo::DistancesToSegments) gathers from these.
  std::span<const double> seg_ax() const { return seg_ax_; }
  std::span<const double> seg_ay() const { return seg_ay_; }
  std::span<const double> seg_bx() const { return seg_bx_; }
  std::span<const double> seg_by() const { return seg_by_; }

  // Exhaustive nearest segment (linear scan; baseline & tests).
  core::PlaceId NearestSegmentLinear(const geo::Point& p) const;

  // Nearest segment via the index (kNN on boxes + exact refinement).
  core::PlaceId NearestSegment(const geo::Point& p) const;

  // Segments incident to a node (graph connectivity).
  const std::vector<core::PlaceId>& SegmentsAtNode(NodeId node) const;

  // Segments sharing an endpoint with `id` (excluding itself).
  std::vector<core::PlaceId> AdjacentSegments(core::PlaceId id) const;

  geo::BoundingBox Bounds() const { return index_->Bounds(); }

  const index::SpatialIndex<core::PlaceId>& spatial_index() const {
    return *index_;
  }

 private:
  std::vector<geo::Point> nodes_;
  std::vector<RoadSegment> segments_;
  // Endpoint SoA kept in lockstep with segments_ (see seg_ax()).
  std::vector<double> seg_ax_, seg_ay_, seg_bx_, seg_by_;
  std::vector<std::vector<core::PlaceId>> node_segments_;
  std::unique_ptr<index::SpatialIndex<core::PlaceId>> index_;
};

}  // namespace semitri::road

#endif  // SEMITRI_ROAD_ROAD_NETWORK_H_
