#ifndef SEMITRI_ROAD_MAP_MATCHER_H_
#define SEMITRI_ROAD_MAP_MATCHER_H_

// Global map matching — paper §4.2, Algorithm 2.
//
// For each GPS point Q of a move episode:
//   1. select candidate road segments near Q (R*-tree);
//   2. point–segment distance d(Q, AiAj)   (Eq. 1, geo::Segment);
//   3. localScore(Q, seg)  = dmin(Q) / d(Q, seg)            (Eq. 2);
//   4. globalScore(Q, seg) = Σk wk · localScore(Qk, seg)/Σk wk  (Eq. 3)
//      with Gaussian kernel weights wk over the spatial distance
//      d(Q0, Qk), cut off at the global view radius R          (Eq. 4);
//   5. match Q to the highest-scoring segment; optionally snap.
//
// R and σ are expressed in units of the trace's median point spacing so
// the sweep R ∈ {1..5}, σ ∈ {0.5R .. 2R} of paper Fig. 10 transfers
// across sampling rates (the paper tunes them per input source).
//
// Data plane: points arrive as a traj::PointView (SoA), candidate
// distances run through the batched geo::DistancesToSegments kernel over
// endpoints gathered from the network's segment SoA, and the per-point
// candidate sets live in one flat CSR table (MatchScratch) with rows
// sorted by segment id — the Eq. 3 neighbor lookup is a binary search
// instead of a per-point hash map. All working memory comes from the
// caller's MatchScratch, so steady-state matching allocates nothing.
//
// GeometricMapMatcher is the classical point-to-curve baseline
// (Bernstein & Kornhauser, [3]) used in the ablation bench.

#include <vector>

#include "common/exec_control.h"
#include "common/status.h"
#include "core/types.h"
#include "road/road_network.h"
#include "traj/point_batch.h"

namespace semitri::road {

struct MatchedPoint {
  core::PlaceId segment = core::kInvalidPlaceId;
  double score = 0.0;       // winning globalScore (localScore for baseline)
  geo::Point snapped;       // corrected position on the matched segment
};

struct GlobalMatchConfig {
  // Global view radius R, in units of median point spacing.
  double view_radius = 2.0;
  // Kernel bandwidth σ as a fraction of R (σ = sigma_ratio * R).
  double sigma_ratio = 0.5;
  // Candidate-segment search radius around each point, meters.
  double candidate_radius_meters = 60.0;
  // Hard cap on context-window points on each side.
  size_t max_window_points = 64;
};

// Reusable working set of one matching pass. Owned by the caller (one
// per annotation run/session — see core::AnnotationScratch) so repeated
// passes reuse capacity instead of reallocating per trajectory.
struct MatchScratch {
  // Per-point candidate query buffer (sorted by segment id before use).
  std::vector<core::PlaceId> candidates;
  // CSR candidate table over all points of the pass: row i is
  // cand_ids[row_begin[i] .. row_begin[i+1]), ascending, with the Eq. 2
  // localScore alongside.
  std::vector<size_t> row_begin;
  std::vector<core::PlaceId> cand_ids;
  std::vector<double> cand_scores;
  // Batched-kernel staging: gathered candidate endpoints + distances.
  std::vector<double> ax, ay, bx, by, dists;
  // Eq. 3 context window (point index + Gaussian weight).
  std::vector<size_t> window_index;
  std::vector<double> window_weight;
  // Per-candidate Eq. 3 numerators of the point being scored.
  std::vector<double> num;
  // MedianSpacing working set.
  std::vector<double> spacings;

  // Total reserved capacity in bytes across all buffers — the
  // steady-state allocation contract is asserted on this (see
  // tests/stream_scratch_test.cc).
  size_t capacity_bytes() const {
    return candidates.capacity() * sizeof(core::PlaceId) +
           row_begin.capacity() * sizeof(size_t) +
           cand_ids.capacity() * sizeof(core::PlaceId) +
           (cand_scores.capacity() + ax.capacity() + ay.capacity() +
            bx.capacity() + by.capacity() + dists.capacity() +
            window_weight.capacity() + spacings.capacity() +
            num.capacity()) *
               sizeof(double) +
           window_index.capacity() * sizeof(size_t);
  }
};

class GlobalMapMatcher {
 public:
  // `network` must outlive the matcher.
  explicit GlobalMapMatcher(const RoadNetwork* network,
                            GlobalMatchConfig config = {})
      : network_(network), config_(config) {}

  // Matches every point of `pts` (Algorithm 2 steps 1–5) into `out`
  // (cleared and resized). Points with no candidate segment get
  // segment == kInvalidPlaceId and keep their raw position. Both passes
  // consult `exec` (when non-null) every exec->check_interval points and
  // abort with DeadlineExceeded, discarding partial matches. `scratch`
  // (when non-null) supplies all working memory.
  [[nodiscard]] common::Status MatchPoints(const traj::PointView& pts,
                                           const common::ExecControl* exec,
                                           MatchScratch* scratch,
                                           std::vector<MatchedPoint>* out) const;

  // Convenience: unbounded run with local scratch.
  std::vector<MatchedPoint> MatchPoints(const traj::PointView& pts) const;

  // Median spacing (m) between consecutive points; the unit behind R/σ.
  // `scratch` (when non-null) holds the spacing working set.
  static double MedianSpacing(const traj::PointView& pts,
                              std::vector<double>* scratch = nullptr);

  const GlobalMatchConfig& config() const { return config_; }

 private:
  const RoadNetwork* network_;
  GlobalMatchConfig config_;
};

// Baseline: independently snaps each point to the nearest segment
// (point-to-curve geometric matching).
class GeometricMapMatcher {
 public:
  explicit GeometricMapMatcher(const RoadNetwork* network)
      : network_(network) {}

  std::vector<MatchedPoint> MatchPoints(const traj::PointView& pts) const;

 private:
  const RoadNetwork* network_;
};

// Fraction of points whose matched segment equals the ground truth
// (points with invalid ground truth are skipped).
double MatchingAccuracy(const std::vector<MatchedPoint>& matches,
                        const std::vector<core::PlaceId>& ground_truth);

}  // namespace semitri::road

#endif  // SEMITRI_ROAD_MAP_MATCHER_H_
