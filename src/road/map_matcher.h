#ifndef SEMITRI_ROAD_MAP_MATCHER_H_
#define SEMITRI_ROAD_MAP_MATCHER_H_

// Global map matching — paper §4.2, Algorithm 2.
//
// For each GPS point Q of a move episode:
//   1. select candidate road segments near Q (R*-tree);
//   2. point–segment distance d(Q, AiAj)   (Eq. 1, geo::Segment);
//   3. localScore(Q, seg)  = dmin(Q) / d(Q, seg)            (Eq. 2);
//   4. globalScore(Q, seg) = Σk wk · localScore(Qk, seg)/Σk wk  (Eq. 3)
//      with Gaussian kernel weights wk over the spatial distance
//      d(Q0, Qk), cut off at the global view radius R          (Eq. 4);
//   5. match Q to the highest-scoring segment; optionally snap.
//
// R and σ are expressed in units of the trace's median point spacing so
// the sweep R ∈ {1..5}, σ ∈ {0.5R .. 2R} of paper Fig. 10 transfers
// across sampling rates (the paper tunes them per input source).
//
// GeometricMapMatcher is the classical point-to-curve baseline
// (Bernstein & Kornhauser, [3]) used in the ablation bench.

#include <span>
#include <vector>

#include "common/exec_control.h"
#include "common/status.h"
#include "core/types.h"
#include "road/road_network.h"

namespace semitri::road {

struct MatchedPoint {
  core::PlaceId segment = core::kInvalidPlaceId;
  double score = 0.0;       // winning globalScore (localScore for baseline)
  geo::Point snapped;       // corrected position on the matched segment
};

struct GlobalMatchConfig {
  // Global view radius R, in units of median point spacing.
  double view_radius = 2.0;
  // Kernel bandwidth σ as a fraction of R (σ = sigma_ratio * R).
  double sigma_ratio = 0.5;
  // Candidate-segment search radius around each point, meters.
  double candidate_radius_meters = 60.0;
  // Hard cap on context-window points on each side.
  size_t max_window_points = 64;
};

class GlobalMapMatcher {
 public:
  // `network` must outlive the matcher.
  explicit GlobalMapMatcher(const RoadNetwork* network,
                            GlobalMatchConfig config = {})
      : network_(network), config_(config) {}

  // Matches every GPS point (Algorithm 2 steps 1–5). Points with no
  // candidate segment get segment == kInvalidPlaceId and keep their raw
  // position.
  std::vector<MatchedPoint> MatchPoints(
      std::span<const core::GpsPoint> points) const;

  // Deadline-aware variant: both passes (candidate scan and global-score
  // sweep) consult `exec` every exec->check_interval points and abort
  // with DeadlineExceeded, discarding partial matches.
  [[nodiscard]] common::Result<std::vector<MatchedPoint>> MatchPoints(
      std::span<const core::GpsPoint> points,
      const common::ExecControl* exec) const;

  // Median spacing (m) between consecutive points; the unit behind R/σ.
  static double MedianSpacing(std::span<const core::GpsPoint> points);

  const GlobalMatchConfig& config() const { return config_; }

 private:
  const RoadNetwork* network_;
  GlobalMatchConfig config_;
};

// Baseline: independently snaps each point to the nearest segment
// (point-to-curve geometric matching).
class GeometricMapMatcher {
 public:
  explicit GeometricMapMatcher(const RoadNetwork* network)
      : network_(network) {}

  std::vector<MatchedPoint> MatchPoints(
      std::span<const core::GpsPoint> points) const;

 private:
  const RoadNetwork* network_;
};

// Fraction of points whose matched segment equals the ground truth
// (points with invalid ground truth are skipped).
double MatchingAccuracy(const std::vector<MatchedPoint>& matches,
                        const std::vector<core::PlaceId>& ground_truth);

}  // namespace semitri::road

#endif  // SEMITRI_ROAD_MAP_MATCHER_H_
