#ifndef SEMITRI_ROAD_TRANSPORT_MODE_H_
#define SEMITRI_ROAD_TRANSPORT_MODE_H_

// Transportation-mode inference (second half of the Semantic Line
// Annotation Layer, §4.2). The paper infers one of four modes — walking,
// bicycle, bus, metro — per matched road run, from "average velocity,
// average acceleration, road type etc.".

#include <vector>

#include "core/types.h"
#include "road/road_network.h"
#include "traj/point_batch.h"

namespace semitri::road {

// kWalk/kBicycle/kBus/kMetro are the four modes the paper infers for
// people trajectories; kCar exists for vehicle simulation (the paper
// treats vehicle mode as trivially known) and is never inferred.
enum class TransportMode { kWalk, kBicycle, kBus, kMetro, kCar, kUnknown };

const char* TransportModeName(TransportMode mode);

// Motion features of a run of GPS points (the points matched to one road
// segment, or a whole move episode).
struct MotionFeatures {
  double mean_speed_mps = 0.0;
  double max_speed_mps = 0.0;
  double speed_stddev = 0.0;
  // Mean |dv/dt| — buses stop-and-go, metros are smooth.
  double mean_abs_acceleration = 0.0;
  double duration_seconds = 0.0;
};

// Reusable working set for ComputeMotionFeatures (windowed speeds and
// their timestamps), caller-owned so per-run feature extraction
// allocates nothing in steady state.
struct MotionScratch {
  std::vector<double> speeds;
  std::vector<double> times;

  size_t capacity_bytes() const {
    return (speeds.capacity() + times.capacity()) * sizeof(double);
  }
};

MotionFeatures ComputeMotionFeatures(const traj::PointView& pts,
                                     MotionScratch* scratch = nullptr);

struct ModeInferenceConfig {
  // Speed below which a run is walking.
  double walk_max_speed_mps = 2.2;
  // Bicycle band (above walking, below motorized).
  double bicycle_max_speed_mps = 6.5;
  // Buses show strong stop-and-go: |a| above this separates bus from
  // metro when both are fast and off-rail is ambiguous.
  double bus_min_abs_acceleration = 0.35;
};

// Rule-based classifier combining matched road type with motion features:
//   rail segment                        -> metro
//   mean speed < walk threshold         -> walk
//   cycleway, or speed in bicycle band  -> bicycle
//   otherwise                           -> bus
class TransportModeClassifier {
 public:
  explicit TransportModeClassifier(ModeInferenceConfig config = {})
      : config_(config) {}

  TransportMode Classify(const MotionFeatures& features,
                         RoadType road_type) const;

  // Convenience: features computed from the points.
  TransportMode Classify(const traj::PointView& pts, RoadType road_type,
                         MotionScratch* scratch = nullptr) const {
    return Classify(ComputeMotionFeatures(pts, scratch), road_type);
  }

  const ModeInferenceConfig& config() const { return config_; }

 private:
  ModeInferenceConfig config_;
};

}  // namespace semitri::road

#endif  // SEMITRI_ROAD_TRANSPORT_MODE_H_
