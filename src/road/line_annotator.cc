#include "road/line_annotator.h"

#include "common/check.h"
#include "common/strings.h"

namespace semitri::road {

std::vector<core::SemanticEpisode> LineAnnotator::AnnotateMove(
    std::span<const core::GpsPoint> points, size_t source_episode) const {
  common::Result<std::vector<core::SemanticEpisode>> result =
      AnnotateMove(points, source_episode, /*exec=*/nullptr);
  // Unbounded runs cannot hit the only error path (DeadlineExceeded).
  SEMITRI_CHECK(result.ok()) << result.status().message();
  return std::move(result).value();
}

common::Result<std::vector<core::SemanticEpisode>> LineAnnotator::AnnotateMove(
    std::span<const core::GpsPoint> points, size_t source_episode,
    const common::ExecControl* exec) const {
  std::vector<core::SemanticEpisode> out;
  if (points.empty()) return out;

  common::Result<std::vector<MatchedPoint>> matched =
      matcher_.MatchPoints(points, exec);
  if (!matched.ok()) return matched.status();
  std::vector<MatchedPoint> matches = std::move(matched).value();

  // Build runs of consecutive points matched to the same segment
  // (Algorithm 2's preSeg grouping). Unmatched points form their own
  // runs with an invalid place.
  struct Run {
    core::PlaceId segment;
    size_t begin;
    size_t end;  // exclusive
  };
  std::vector<Run> runs;
  for (size_t i = 0; i < matches.size();) {
    size_t j = i + 1;
    while (j < matches.size() && matches[j].segment == matches[i].segment) {
      ++j;
    }
    runs.push_back({matches[i].segment, i, j});
    i = j;
  }
  // Absorb sub-minimum runs into the longer neighbor (match flicker at
  // crossings produces 1-point runs).
  if (config_.min_run_points > 1 && runs.size() > 1) {
    std::vector<Run> filtered;
    for (const Run& r : runs) {
      if (r.end - r.begin >= config_.min_run_points || runs.size() == 1) {
        filtered.push_back(r);
      } else if (!filtered.empty()) {
        filtered.back().end = r.end;
      } else {
        filtered.push_back(r);
      }
    }
    // Re-merge neighbors that became equal after absorption.
    std::vector<Run> merged;
    for (const Run& r : filtered) {
      if (!merged.empty() && merged.back().segment == r.segment) {
        merged.back().end = r.end;
      } else {
        merged.push_back(r);
      }
    }
    runs.swap(merged);
  }

  for (const Run& r : runs) {
    core::SemanticEpisode ep;
    ep.kind = core::EpisodeKind::kMove;
    ep.time_in = points[r.begin].time;
    ep.time_out = points[r.end - 1].time;
    ep.source_episode = source_episode;
    ep.place = {core::PlaceKind::kLine, r.segment};
    if (r.segment != core::kInvalidPlaceId) {
      const RoadSegment& seg = network_->segment(r.segment);
      std::span<const core::GpsPoint> run_points =
          points.subspan(r.begin, r.end - r.begin);
      TransportMode mode = classifier_.Classify(run_points, seg.type);
      ep.AddAnnotation("transport_mode", TransportModeName(mode));
      ep.AddAnnotation("road_type", RoadTypeName(seg.type));
      if (!seg.name.empty()) ep.AddAnnotation("road_name", seg.name);
      double mean_score = 0.0;
      for (size_t i = r.begin; i < r.end; ++i) mean_score += matches[i].score;
      mean_score /= static_cast<double>(r.end - r.begin);
      ep.AddAnnotation("match_score",
                       common::StrFormat("%.3f", mean_score));
    }
    out.push_back(std::move(ep));
  }
  return out;
}

core::StructuredSemanticTrajectory LineAnnotator::Annotate(
    const core::RawTrajectory& trajectory,
    const std::vector<core::Episode>& episodes) const {
  common::Result<core::StructuredSemanticTrajectory> result =
      Annotate(trajectory, episodes, /*exec=*/nullptr);
  SEMITRI_CHECK(result.ok()) << result.status().message();
  return std::move(result).value();
}

common::Result<core::StructuredSemanticTrajectory> LineAnnotator::Annotate(
    const core::RawTrajectory& trajectory,
    const std::vector<core::Episode>& episodes,
    const common::ExecControl* exec) const {
  core::StructuredSemanticTrajectory out;
  out.trajectory_id = trajectory.id;
  out.object_id = trajectory.object_id;
  out.interpretation = "line";
  for (size_t e = 0; e < episodes.size(); ++e) {
    if (episodes[e].kind != core::EpisodeKind::kMove) continue;
    if (exec != nullptr) {
      SEMITRI_RETURN_IF_ERROR(exec->Check("line_annotate"));
    }
    std::span<const core::GpsPoint> points(
        trajectory.points.data() + episodes[e].begin,
        episodes[e].num_points());
    common::Result<std::vector<core::SemanticEpisode>> annotated =
        AnnotateMove(points, e, exec);
    if (!annotated.ok()) return annotated.status();
    for (auto& ep : annotated.value()) out.episodes.push_back(std::move(ep));
  }
  return out;
}

}  // namespace semitri::road
