#include "road/line_annotator.h"

#include "common/check.h"
#include "common/strings.h"

namespace semitri::road {

std::vector<core::SemanticEpisode> LineAnnotator::AnnotateMove(
    const traj::PointView& pts, size_t source_episode) const {
  std::vector<core::SemanticEpisode> out;
  common::Status status = AnnotateMove(pts, source_episode, /*exec=*/nullptr,
                                       /*scratch=*/nullptr, &out);
  // Unbounded runs cannot hit the only error path (DeadlineExceeded).
  SEMITRI_CHECK(status.ok()) << status.message();
  return out;
}

common::Status LineAnnotator::AnnotateMove(
    const traj::PointView& pts, size_t source_episode,
    const common::ExecControl* exec, LineScratch* scratch,
    std::vector<core::SemanticEpisode>* out) const {
  if (pts.size == 0) return common::Status::OK();

  LineScratch local;
  LineScratch& s = scratch != nullptr ? *scratch : local;

  SEMITRI_RETURN_IF_ERROR(
      matcher_.MatchPoints(pts, exec, &s.match, &s.matches));

  // Build runs of consecutive points matched to the same segment
  // (Algorithm 2's preSeg grouping). Unmatched points form their own
  // runs with an invalid place.
  s.runs.clear();
  for (size_t i = 0; i < s.matches.size();) {
    size_t j = i + 1;
    while (j < s.matches.size() &&
           s.matches[j].segment == s.matches[i].segment) {
      ++j;
    }
    s.runs.push_back({s.matches[i].segment, i, j});
    i = j;
  }
  // Absorb sub-minimum runs into the longer neighbor (match flicker at
  // crossings produces 1-point runs).
  if (config_.min_run_points > 1 && s.runs.size() > 1) {
    std::vector<MatchRun>& filtered = s.runs_tmp;
    filtered.clear();
    for (const MatchRun& r : s.runs) {
      if (r.end - r.begin >= config_.min_run_points) {
        filtered.push_back(r);
      } else if (!filtered.empty()) {
        filtered.back().end = r.end;
      } else {
        filtered.push_back(r);
      }
    }
    // Re-merge neighbors that became equal after absorption, back into
    // the (now free) runs buffer.
    s.runs.clear();
    for (const MatchRun& r : filtered) {
      if (!s.runs.empty() && s.runs.back().segment == r.segment) {
        s.runs.back().end = r.end;
      } else {
        s.runs.push_back(r);
      }
    }
  }

  for (const MatchRun& r : s.runs) {
    core::SemanticEpisode ep;
    ep.kind = core::EpisodeKind::kMove;
    ep.time_in = pts.ts[r.begin];
    ep.time_out = pts.ts[r.end - 1];
    ep.source_episode = source_episode;
    ep.place = {core::PlaceKind::kLine, r.segment};
    if (r.segment != core::kInvalidPlaceId) {
      const RoadSegment& seg = network_->segment(r.segment);
      TransportMode mode = classifier_.Classify(
          pts.Slice(r.begin, r.end - r.begin), seg.type, &s.motion);
      ep.AddAnnotation("transport_mode", TransportModeName(mode));
      ep.AddAnnotation("road_type", RoadTypeName(seg.type));
      if (!seg.name.empty()) ep.AddAnnotation("road_name", seg.name);
      double mean_score = 0.0;
      for (size_t i = r.begin; i < r.end; ++i) mean_score += s.matches[i].score;
      mean_score /= static_cast<double>(r.end - r.begin);
      ep.AddAnnotation("match_score",
                       common::StrFormat("%.3f", mean_score));
    }
    out->push_back(std::move(ep));
  }
  return common::Status::OK();
}

core::StructuredSemanticTrajectory LineAnnotator::Annotate(
    const traj::PointBatch& batch,
    const std::vector<core::Episode>& episodes) const {
  common::Result<core::StructuredSemanticTrajectory> result =
      Annotate(batch, episodes, /*exec=*/nullptr);
  SEMITRI_CHECK(result.ok()) << result.status().message();
  return std::move(result).value();
}

common::Result<core::StructuredSemanticTrajectory> LineAnnotator::Annotate(
    const traj::PointBatch& batch, const std::vector<core::Episode>& episodes,
    const common::ExecControl* exec, LineScratch* scratch) const {
  core::StructuredSemanticTrajectory out;
  out.trajectory_id = batch.id();
  out.object_id = batch.object_id();
  out.interpretation = "line";
  LineScratch local;
  LineScratch& s = scratch != nullptr ? *scratch : local;
  for (size_t e = 0; e < episodes.size(); ++e) {
    if (episodes[e].kind != core::EpisodeKind::kMove) continue;
    if (exec != nullptr) {
      SEMITRI_RETURN_IF_ERROR(exec->Check("line_annotate"));
    }
    SEMITRI_RETURN_IF_ERROR(
        AnnotateMove(batch.View(episodes[e].begin, episodes[e].num_points()),
                     e, exec, &s, &out.episodes));
  }
  return out;
}

}  // namespace semitri::road
