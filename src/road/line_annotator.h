#ifndef SEMITRI_ROAD_LINE_ANNOTATOR_H_
#define SEMITRI_ROAD_LINE_ANNOTATOR_H_

// Semantic Line Annotation Layer — paper §4.2, Algorithm 2 end-to-end.
//
// Runs the global map matcher over the move episodes of a trajectory,
// groups consecutive points matched to the same road segment into
// semantic episodes (segmentId, time_in, time_out, mode), and infers
// the transportation mode of each run from motion features and the
// matched road type.

#include <span>
#include <vector>

#include "common/exec_control.h"
#include "common/status.h"
#include "core/types.h"
#include "road/map_matcher.h"
#include "road/road_network.h"
#include "road/transport_mode.h"

namespace semitri::road {

struct LineAnnotatorConfig {
  GlobalMatchConfig match;
  ModeInferenceConfig mode;
  // Runs shorter than this many points are merged into their successor
  // run (suppresses single-point match flicker). 1 keeps all runs.
  size_t min_run_points = 2;
};

class LineAnnotator {
 public:
  // `network` must outlive the annotator.
  explicit LineAnnotator(const RoadNetwork* network,
                         LineAnnotatorConfig config = {})
      : network_(network),
        matcher_(network, config.match),
        classifier_(config.mode),
        config_(config) {}

  // Annotates one move episode's points. `source_episode` tags the
  // emitted episodes with their origin. Returns one semantic episode per
  // matched road-segment run (Algorithm 2 lines 18–24).
  std::vector<core::SemanticEpisode> AnnotateMove(
      std::span<const core::GpsPoint> points, size_t source_episode) const;

  // Deadline-aware variant: the map-matching passes consult `exec` and
  // the whole episode aborts with DeadlineExceeded once it expires.
  [[nodiscard]] common::Result<std::vector<core::SemanticEpisode>> AnnotateMove(
      std::span<const core::GpsPoint> points, size_t source_episode,
      const common::ExecControl* exec) const;

  // Annotates every kMove episode; interpretation "line".
  core::StructuredSemanticTrajectory Annotate(
      const core::RawTrajectory& trajectory,
      const std::vector<core::Episode>& episodes) const;

  // Deadline-aware variant of Annotate (checks between episodes and
  // inside the per-episode matching loops).
  [[nodiscard]] common::Result<core::StructuredSemanticTrajectory> Annotate(
      const core::RawTrajectory& trajectory,
      const std::vector<core::Episode>& episodes,
      const common::ExecControl* exec) const;

  const GlobalMapMatcher& matcher() const { return matcher_; }
  const TransportModeClassifier& classifier() const { return classifier_; }

 private:
  const RoadNetwork* network_;
  GlobalMapMatcher matcher_;
  TransportModeClassifier classifier_;
  LineAnnotatorConfig config_;
};

}  // namespace semitri::road

#endif  // SEMITRI_ROAD_LINE_ANNOTATOR_H_
