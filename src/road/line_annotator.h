#ifndef SEMITRI_ROAD_LINE_ANNOTATOR_H_
#define SEMITRI_ROAD_LINE_ANNOTATOR_H_

// Semantic Line Annotation Layer — paper §4.2, Algorithm 2 end-to-end.
//
// Runs the global map matcher over the move episodes of a trajectory,
// groups consecutive points matched to the same road segment into
// semantic episodes (segmentId, time_in, time_out, mode), and infers
// the transportation mode of each run from motion features and the
// matched road type.
//
// Data plane: the trajectory arrives as a traj::PointBatch; each move
// episode is a zero-copy PointView slice of it. All working memory
// (map-matching CSR table, matched points, run grouping, motion
// features) lives in the caller's LineScratch so repeated annotation
// runs allocate nothing in steady state.

#include <vector>

#include "common/exec_control.h"
#include "common/status.h"
#include "core/types.h"
#include "road/map_matcher.h"
#include "road/road_network.h"
#include "road/transport_mode.h"
#include "traj/point_batch.h"

namespace semitri::road {

struct LineAnnotatorConfig {
  GlobalMatchConfig match;
  ModeInferenceConfig mode;
  // Runs shorter than this many points are merged into their successor
  // run (suppresses single-point match flicker). 1 keeps all runs.
  size_t min_run_points = 2;
};

// A run of consecutive points matched to the same road segment
// (Algorithm 2's preSeg grouping); `end` is exclusive.
struct MatchRun {
  core::PlaceId segment;
  size_t begin;
  size_t end;
};

// Reusable working set of one line-annotation pass, owned by the caller
// (one per annotation run/session — see core::AnnotationScratch).
struct LineScratch {
  MatchScratch match;
  MotionScratch motion;
  std::vector<MatchedPoint> matches;
  std::vector<MatchRun> runs;
  std::vector<MatchRun> runs_tmp;

  size_t capacity_bytes() const {
    return match.capacity_bytes() + motion.capacity_bytes() +
           matches.capacity() * sizeof(MatchedPoint) +
           (runs.capacity() + runs_tmp.capacity()) * sizeof(MatchRun);
  }
};

class LineAnnotator {
 public:
  // `network` must outlive the annotator.
  explicit LineAnnotator(const RoadNetwork* network,
                         LineAnnotatorConfig config = {})
      : network_(network),
        matcher_(network, config.match),
        classifier_(config.mode),
        config_(config) {}

  // Annotates one move episode's points, appending one semantic episode
  // per matched road-segment run (Algorithm 2 lines 18–24) to `out`.
  // `source_episode` tags the emitted episodes with their origin. The
  // map-matching passes consult `exec` (when non-null) and the whole
  // episode aborts with DeadlineExceeded once it expires, leaving `out`
  // unchanged. `scratch` (when non-null) supplies all working memory.
  [[nodiscard]] common::Status AnnotateMove(
      const traj::PointView& pts, size_t source_episode,
      const common::ExecControl* exec, LineScratch* scratch,
      std::vector<core::SemanticEpisode>* out) const;

  // Convenience: unbounded run with local scratch.
  std::vector<core::SemanticEpisode> AnnotateMove(const traj::PointView& pts,
                                                  size_t source_episode) const;

  // Annotates every kMove episode of the batch; interpretation "line".
  // Checks `exec` between episodes and inside the per-episode matching
  // loops.
  [[nodiscard]] common::Result<core::StructuredSemanticTrajectory> Annotate(
      const traj::PointBatch& batch, const std::vector<core::Episode>& episodes,
      const common::ExecControl* exec, LineScratch* scratch = nullptr) const;

  // Convenience: unbounded run with local scratch.
  core::StructuredSemanticTrajectory Annotate(
      const traj::PointBatch& batch,
      const std::vector<core::Episode>& episodes) const;

  const GlobalMapMatcher& matcher() const { return matcher_; }
  const TransportModeClassifier& classifier() const { return classifier_; }

 private:
  const RoadNetwork* network_;
  GlobalMapMatcher matcher_;
  TransportModeClassifier classifier_;
  LineAnnotatorConfig config_;
};

}  // namespace semitri::road

#endif  // SEMITRI_ROAD_LINE_ANNOTATOR_H_
