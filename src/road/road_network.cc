#include "road/road_network.h"

#include <limits>

namespace semitri::road {

const char* RoadTypeName(RoadType type) {
  switch (type) {
    case RoadType::kHighway: return "highway";
    case RoadType::kArterial: return "arterial";
    case RoadType::kResidential: return "residential";
    case RoadType::kFootway: return "footway";
    case RoadType::kCycleway: return "cycleway";
    case RoadType::kRailMetro: return "rail_metro";
  }
  return "unknown";
}

bool IsRoadTypeWalkable(RoadType type) {
  return type != RoadType::kHighway && type != RoadType::kRailMetro;
}

RoadNetwork::RoadNetwork(index::SpatialIndexConfig index_config)
    : index_(index::MakeSpatialIndex<core::PlaceId>(index_config)) {}

NodeId RoadNetwork::AddNode(const geo::Point& position) {
  nodes_.push_back(position);
  node_segments_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

core::PlaceId RoadNetwork::AddSegment(NodeId from, NodeId to, RoadType type,
                                      std::string name) {
  RoadSegment seg;
  seg.id = static_cast<core::PlaceId>(segments_.size());
  seg.from = from;
  seg.to = to;
  seg.type = type;
  seg.name = std::move(name);
  seg.shape = geo::Segment(node(from), node(to));
  segments_.push_back(std::move(seg));
  const RoadSegment& stored = segments_.back();
  seg_ax_.push_back(stored.shape.a.x);
  seg_ay_.push_back(stored.shape.a.y);
  seg_bx_.push_back(stored.shape.b.x);
  seg_by_.push_back(stored.shape.b.y);
  index_->Insert(stored.shape.Bounds(), stored.id);
  node_segments_[static_cast<size_t>(from)].push_back(stored.id);
  node_segments_[static_cast<size_t>(to)].push_back(stored.id);
  return stored.id;
}

double RoadNetwork::TotalLengthMeters() const {
  double total = 0.0;
  for (const RoadSegment& s : segments_) total += s.Length();
  return total;
}

std::vector<core::PlaceId> RoadNetwork::CandidateSegments(
    const geo::Point& p, double radius) const {
  std::vector<core::PlaceId> out;
  CandidateSegments(p, radius, &out);
  return out;
}

void RoadNetwork::CandidateSegments(const geo::Point& p, double radius,
                                    std::vector<core::PlaceId>* out) const {
  out->clear();
  index_->QueryRadiusInto(p, radius, out);
  // Refine the box-distance prefilter by exact segment distance, in
  // place (Algorithm 2's candidateSegs keeps only true neighbors).
  size_t kept = 0;
  for (core::PlaceId id : *out) {
    if (segment(id).shape.DistanceTo(p) <= radius) (*out)[kept++] = id;
  }
  out->resize(kept);
}

core::PlaceId RoadNetwork::NearestSegmentLinear(const geo::Point& p) const {
  core::PlaceId best = core::kInvalidPlaceId;
  double best_dist = std::numeric_limits<double>::infinity();
  for (const RoadSegment& s : segments_) {
    double d = s.shape.DistanceTo(p);
    if (d < best_dist) {
      best_dist = d;
      best = s.id;
    }
  }
  return best;
}

core::PlaceId RoadNetwork::NearestSegment(const geo::Point& p) const {
  if (segments_.empty()) return core::kInvalidPlaceId;
  // Best-first over box distance, refined by exact segment distance: pull
  // a few nearest boxes and verify against the true metric.
  core::PlaceId best = core::kInvalidPlaceId;
  double best_dist = std::numeric_limits<double>::infinity();
  size_t k = 8;
  while (k <= segments_.size() * 2) {
    auto nearest = index_->NearestNeighbors(p, std::min(k, segments_.size()));
    for (const auto& entry : nearest) {
      double d = segment(entry.value).shape.DistanceTo(p);
      if (d < best_dist) {
        best_dist = d;
        best = entry.value;
      }
    }
    // Sound if the farthest retrieved *box* is farther than the best
    // exact distance (box distance lower-bounds segment distance).
    if (!nearest.empty() &&
        (nearest.size() == segments_.size() ||
         nearest.back().box.DistanceTo(p) >= best_dist)) {
      break;
    }
    k *= 2;
  }
  return best;
}

const std::vector<core::PlaceId>& RoadNetwork::SegmentsAtNode(
    NodeId node) const {
  return node_segments_[static_cast<size_t>(node)];
}

std::vector<core::PlaceId> RoadNetwork::AdjacentSegments(
    core::PlaceId id) const {
  const RoadSegment& s = segment(id);
  std::vector<core::PlaceId> out;
  for (core::PlaceId other : SegmentsAtNode(s.from)) {
    if (other != id) out.push_back(other);
  }
  for (core::PlaceId other : SegmentsAtNode(s.to)) {
    if (other != id) out.push_back(other);
  }
  return out;
}

}  // namespace semitri::road
