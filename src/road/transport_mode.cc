#include "road/transport_mode.h"

#include <cmath>

namespace semitri::road {

const char* TransportModeName(TransportMode mode) {
  switch (mode) {
    case TransportMode::kWalk: return "walk";
    case TransportMode::kBicycle: return "bicycle";
    case TransportMode::kBus: return "bus";
    case TransportMode::kMetro: return "metro";
    case TransportMode::kCar: return "car";
    case TransportMode::kUnknown: return "unknown";
  }
  return "unknown";
}

MotionFeatures ComputeMotionFeatures(const traj::PointView& pts,
                                     MotionScratch* scratch) {
  MotionFeatures f;
  if (pts.size < 2) return f;
  // Windowed displacement speeds: |p[i+k] - p[i-k]| over the elapsed
  // time, with k up to 2. GPS noise between *consecutive* fixes inflates
  // apparent speed (≈ sigma·sqrt(2)/dt) enough to push walking into the
  // vehicle band; net displacement over a wider window cancels it.
  const size_t n = pts.size;
  const size_t half = n >= 5 ? 2 : 1;
  MotionScratch local;
  MotionScratch& s = scratch != nullptr ? *scratch : local;
  std::vector<double>& speeds = s.speeds;
  std::vector<double>& times = s.times;
  speeds.clear();
  times.clear();
  speeds.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    size_t lo = i >= half ? i - half : 0;
    size_t hi = std::min(n - 1, i + half);
    double dt = pts.ts[hi] - pts.ts[lo];
    if (dt <= 0.0) continue;
    speeds.push_back(std::hypot(pts.xs[hi] - pts.xs[lo],
                                pts.ys[hi] - pts.ys[lo]) /
                     dt);
    times.push_back(pts.ts[i]);
  }
  if (speeds.empty()) return f;
  double sum = 0.0;
  for (double v : speeds) {
    sum += v;
    f.max_speed_mps = std::max(f.max_speed_mps, v);
  }
  f.mean_speed_mps = sum / static_cast<double>(speeds.size());
  double var = 0.0;
  for (double v : speeds) {
    var += (v - f.mean_speed_mps) * (v - f.mean_speed_mps);
  }
  f.speed_stddev = std::sqrt(var / static_cast<double>(speeds.size()));
  double acc_sum = 0.0;
  size_t acc_count = 0;
  for (size_t i = 1; i < speeds.size(); ++i) {
    double dt = times[i] - times[i - 1];
    if (dt <= 0.0) continue;
    acc_sum += std::abs(speeds[i] - speeds[i - 1]) / dt;
    ++acc_count;
  }
  if (acc_count > 0) {
    f.mean_abs_acceleration = acc_sum / static_cast<double>(acc_count);
  }
  f.duration_seconds = pts.ts[n - 1] - pts.ts[0];
  return f;
}

TransportMode TransportModeClassifier::Classify(const MotionFeatures& f,
                                                RoadType road_type) const {
  // Road type is the strongest signal (the paper's "which type of road"):
  // only metros run on rail.
  if (road_type == RoadType::kRailMetro) return TransportMode::kMetro;
  if (f.mean_speed_mps < config_.walk_max_speed_mps) {
    return TransportMode::kWalk;
  }
  if (road_type == RoadType::kCycleway ||
      (f.mean_speed_mps < config_.bicycle_max_speed_mps &&
       f.mean_abs_acceleration < config_.bus_min_abs_acceleration)) {
    return TransportMode::kBicycle;
  }
  if (f.mean_speed_mps < config_.bicycle_max_speed_mps &&
      road_type == RoadType::kFootway) {
    // Fast on a footpath but not on a cycleway network: running/cycling;
    // bicycle is the closest of the four paper modes.
    return TransportMode::kBicycle;
  }
  return TransportMode::kBus;
}

}  // namespace semitri::road
