#include "common/strings.h"

#include <charconv>
#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace semitri::common {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string CsvEscape(std::string_view field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

namespace {

// Shared from_chars driver: whole trimmed field or nothing.
template <typename T>
bool ParseWith(std::string_view text, T* out) {
  std::string_view trimmed = StripWhitespace(text);
  if (trimmed.empty()) return false;
  T value{};
  const char* begin = trimmed.data();
  const char* end = begin + trimmed.size();
  // from_chars rejects a leading '+', which CSV written by humans may
  // carry; skip it for a nonempty remainder.
  if (trimmed.front() == '+' && trimmed.size() > 1) ++begin;
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return false;
  *out = value;
  return true;
}

}  // namespace

bool ParseDouble(std::string_view text, double* out) {
  double value = 0.0;
  if (!ParseWith(text, &value)) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  return ParseWith(text, out);
}

bool ParseSizeT(std::string_view text, size_t* out) {
  return ParseWith(text, out);
}

std::vector<std::string> CsvParseLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace semitri::common
