#ifndef SEMITRI_COMMON_SERIAL_H_
#define SEMITRI_COMMON_SERIAL_H_

// Bit-exact binary state serialization, used by the durability layer:
// write-ahead-log record payloads (store/wal.h) and streaming
// checkpoints (stream::SessionManager::Checkpoint). Doubles are encoded
// as their IEEE-754 bit pattern, so a round trip restores every value
// bit-identically — the streaming/offline equivalence contracts are
// checked with exact floating-point equality, and a recovered object
// must keep honoring them.
//
// Encoding: fixed-width little-endian integers, bit-cast doubles,
// u32-length-prefixed strings. StateReader getters return Corruption on
// truncated input and never read past the buffer, so checkpoints and
// WAL payloads are safe to parse from untrusted / torn files.

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace semitri::common {

// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip one) — integrity frame
// for WAL records and checkpoint files. `seed` chains incremental
// computations: Crc32(b, Crc32(a)) == Crc32(a + b).
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

class StateWriter {
 public:
  void PutU8(uint8_t value) { buffer_.push_back(static_cast<char>(value)); }
  void PutBool(bool value) { PutU8(value ? 1 : 0); }
  void PutU32(uint32_t value);
  void PutU64(uint64_t value);
  void PutI64(int64_t value) { PutU64(static_cast<uint64_t>(value)); }
  void PutDouble(double value);  // IEEE-754 bit pattern
  void PutString(std::string_view value);  // u32 length + bytes

  const std::string& data() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

class StateReader {
 public:
  explicit StateReader(std::string_view data) : data_(data) {}

  [[nodiscard]] Status GetU8(uint8_t* out);
  [[nodiscard]] Status GetBool(bool* out);
  [[nodiscard]] Status GetU32(uint32_t* out);
  [[nodiscard]] Status GetU64(uint64_t* out);
  [[nodiscard]] Status GetI64(int64_t* out);
  [[nodiscard]] Status GetDouble(double* out);
  [[nodiscard]] Status GetString(std::string* out);

  // All bytes consumed — checkpoint loaders verify this to reject
  // trailing garbage.
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  [[nodiscard]] Status Take(size_t n, const char** out);

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace semitri::common

#endif  // SEMITRI_COMMON_SERIAL_H_
